// Multiprocessor example: runs a lock-heavy PARSEC-like kernel on the
// 8-core machine under every defense and both memory models, showing the
// coherence- and consistency-level behaviour InvisiSpec was designed around
// (validations, exposures, early squashes on invalidations).
//
//	go run ./examples/parsec-multicore
package main

import (
	"fmt"

	"invisispec/internal/config"
	"invisispec/internal/harness"
	"invisispec/internal/stats"
)

func main() {
	const kernel = "fluidanimate" // fine-grained ticket locks, 8 threads
	fmt.Printf("%s on the 8-core Table IV machine (40k instructions measured)\n\n", kernel)
	fmt.Printf("%-6s %-4s %8s %10s %12s %12s %12s\n",
		"config", "mdl", "CPI", "squash/Mi", "validations", "exposures", "early-sq")
	for _, cm := range []config.Consistency{config.TSO, config.RC} {
		for _, d := range config.AllDefenses() {
			r, err := harness.MeasurePARSEC(kernel, d, cm, 10000, 40000)
			if err != nil {
				panic(err)
			}
			c := r.Core
			fmt.Printf("%-6s %-4s %8.2f %10.0f %12d %12d %12d\n",
				d, cm, r.CPI(), c.SquashesPerMInst(),
				c.Validations(), c.Exposures, c.Squashes[stats.SquashEarly])
		}
		fmt.Println()
	}
	fmt.Println("A lock kernel validates a lot under BOTH models: spin loads that")
	fmt.Println("reuse an older USL's SB line must validate (a stale snapshot could")
	fmt.Println("otherwise retire — see DESIGN.md), and under RC the acquire")
	fmt.Println("barriers force validations that plain data-parallel code avoids.")
}
