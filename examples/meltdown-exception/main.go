// Meltdown-style exception attack: shows why the paper defines the
// Futuristic attack model. A privileged load's value is forwarded to
// transient instructions before the fault squashes them. IS-Spectre, which
// only guards branch speculation, does NOT stop this (§IV); IS-Future does.
//
//	go run ./examples/meltdown-exception
package main

import (
	"fmt"

	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/workload"
)

const secret = 0x5A

func main() {
	fmt.Println("Meltdown-style attack: a privileged load faults at retirement,")
	fmt.Println("but its dependent transient instructions touch a probe line first.")
	fmt.Printf("The secret byte is %#x.\n\n", secret)

	for _, d := range []config.Defense{config.Base, config.ISSpectre, config.ISFuture} {
		run := config.Run{Machine: config.Default(1), Defense: d, Consistency: config.TSO}
		m := sim.MustNew(run, []*isa.Program{workload.Meltdown(secret)})
		if err := m.RunToCompletion(30_000_000); err != nil {
			panic(err)
		}
		idx, lat := workload.MeltdownLeakedByte(m.Mem)
		leaked := idx == secret && lat < 20
		switch {
		case leaked && d == config.ISSpectre:
			fmt.Printf("%-6s leaked %#x — exceptions are OUTSIDE the Spectre attack model\n", d.String(), idx)
		case leaked:
			fmt.Printf("%-6s leaked %#x\n", d.String(), idx)
		default:
			fmt.Printf("%-6s attack defeated\n", d.String())
		}
	}
	fmt.Println()
	fmt.Println("This is the paper's motivation for the Futuristic model: any")
	fmt.Println("squashable load is a threat, not just loads behind branches.")
}
