// Spectre attack walk-through: mounts the paper's Figure 1 attack on every
// defense configuration and reports whether the secret leaks — the
// paper's proof-of-concept analysis (§IX-A) extended to all of Table V.
//
//	go run ./examples/spectre-attack
package main

import (
	"fmt"
	"sort"

	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/workload"
)

const secret = 84 // the paper's value

func main() {
	fmt.Println("Spectre variant 1 (Figure 1): the attacker trains the victim's")
	fmt.Println("bounds check, calls it out of bounds, and times probe lines.")
	fmt.Printf("The secret byte is %d.\n\n", secret)

	for _, d := range config.AllDefenses() {
		run := config.Run{Machine: config.Default(1), Defense: d, Consistency: config.TSO}
		m := sim.MustNew(run, []*isa.Program{workload.SpectreV1(secret)})
		if err := m.RunToCompletion(30_000_000); err != nil {
			panic(err)
		}
		idx, lat := workload.LeakedByte(m.Mem)
		all := workload.SpectreScanLatencies(m.Mem)
		med := median(all[:])
		leaked := idx == secret && lat*2 < med
		verdict := "attack DEFEATED (no probe line stands out)"
		if leaked {
			verdict = fmt.Sprintf("attack SUCCEEDED (recovered %d, %d vs median %d cycles)", idx, lat, med)
		}
		fmt.Printf("%-6s %s\n", d.String(), verdict)
	}
	fmt.Println()
	fmt.Println("Base leaks; both fence designs and both InvisiSpec designs block")
	fmt.Println("the leak — InvisiSpec at a fraction of the fences' cost (Figure 4).")
}

func median(lat []uint64) uint64 {
	s := append([]uint64(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
