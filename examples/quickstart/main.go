// Quickstart: assemble a small program with the ISA builder, run it on the
// simulated out-of-order machine under the insecure baseline and under
// InvisiSpec-Future, and compare the results and costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
)

func main() {
	// A little program: sum a 512-element array through a data-dependent
	// branch, then store the result.
	b := isa.NewBuilder("quickstart")
	values := make([]uint64, 512)
	for i := range values {
		values[i] = uint64(i * i % 97)
	}
	b.DataU64(0x10000, values...)
	b.Li(1, 0x10000). // array pointer
				Li(2, 512). // loop counter
				Li(3, 0).   // sum
				Li(4, 0).   // odd-element count
				Label("loop").
				Ld(8, 5, 1, 0).
				Add(3, 3, 5).
				AndI(6, 5, 1).
				Beq(6, 0, "even").
				AddI(4, 4, 1).
				Label("even").
				AddI(1, 1, 8).
				AddI(2, 2, -1).
				Bne(2, 0, "loop").
				Li(7, 0x20000).
				St(8, 7, 0, 3).
				Halt()
	prog := b.MustBuild()

	for _, d := range []config.Defense{config.Base, config.ISFuture} {
		run := config.Run{
			Machine:     config.Default(1), // the paper's Table IV machine
			Defense:     d,
			Consistency: config.TSO,
		}
		m := sim.MustNew(run, []*isa.Program{prog})
		if err := m.RunToCompletion(10_000_000); err != nil {
			panic(err)
		}
		c := m.Stats.Cores[0]
		fmt.Printf("=== %s ===\n", run)
		fmt.Printf("sum = %d, odd elements = %d (stored sum = %d)\n",
			m.Cores[0].Regs()[3], m.Cores[0].Regs()[4], m.Mem.Read(0x20000, 8))
		fmt.Printf("cycles %d   IPC %.2f   mispredict rate %.1f%%\n",
			m.Cycle(), c.IPC(), 100*c.MispredictRate())
		if d.UsesInvisiSpec() {
			fmt.Printf("USLs %d   exposures %d   validations %d (failures %d)\n",
				c.USLsIssued, c.Exposures, c.Validations(), c.ValidationFailures)
		}
		fmt.Println()
	}
}
