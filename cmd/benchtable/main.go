// Command benchtable regenerates every figure and table of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index):
//
//	benchtable -fig 4      SPEC normalized execution time (5 configs, TSO + RC average)
//	benchtable -fig 5      Spectre PoC latencies (delegates to the attack)
//	benchtable -fig 6      SPEC normalized network traffic with SpecLoad/Expose-Validate split
//	benchtable -fig 7      PARSEC normalized execution time
//	benchtable -fig 8      PARSEC normalized network traffic
//	benchtable -table 6    InvisiSpec operation characterization
//	benchtable -table 7    L1-SB / LLC-SB hardware overhead
//
// -measure scales the per-run instruction budget. The experiment matrix is
// sharded across -jobs workers (default: all host CPUs) by internal/runner;
// each run is an isolated single-goroutine machine, and the aggregated
// output is byte-identical to a -jobs 1 run. -benchjson additionally writes
// the schema-versioned BENCH artifact that cmd/benchdiff gates CI with.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"invisispec/internal/artifact"
	"invisispec/internal/campaign"
	"invisispec/internal/config"
	"invisispec/internal/engine"
	"invisispec/internal/harness"
	"invisispec/internal/hwcost"
	"invisispec/internal/runner"
	"invisispec/internal/stats"
	"invisispec/internal/workload"
)

var (
	figure  = flag.Int("fig", 0, "figure to regenerate (4, 6, 7 or 8); 5 is cmd/spectre-poc")
	table   = flag.Int("table", 0, "table to regenerate (6 or 7)")
	warmup  = flag.Uint64("warmup", 20000, "warmup instructions per run")
	measure = flag.Uint64("measure", 100000, "measured instructions per run")
	names   = flag.String("names", "", "comma-separated workload subset (default: all)")
	defsF   = flag.String("defenses", "", "comma-separated defense-scheme subset (default: all registered; see invisisim -listdefenses); figures need Base in the subset for normalization")
	csvPath = flag.String("csv", "", "also write every raw measurement to this CSV file")
	jobsN   = flag.Int("jobs", runtime.NumCPU(), "parallel simulation jobs (worker pool size)")
	seedsF  = flag.String("faultseeds", "", "comma-separated fault-injection seeds: adds a seed axis to the matrix (0 or empty = fault-free)")
	bjPath  = flag.String("benchjson", "", "also write the aggregated measurements as a bench-JSON artifact to this file")
	bjName  = flag.String("benchname", "", "artifact name inside -benchjson (default: fig<N>/table<N>)")
	bjHost  = flag.Bool("benchhost", true, "include the host wall-time block in -benchjson output (disable for committed baselines)")
	cmpK    = flag.Bool("comparekernels", false, "re-run the matrix under the cycle-by-cycle stepped kernel, fail unless its results are byte-identical to the fast kernel's, and record both wall times in the -benchjson host block")
	impDir  = flag.String("import", "", "import *.trace files from this directory as workloads (selectable via -names)")
	quiet   = flag.Bool("quiet", false, "suppress per-job progress lines on stderr")

	// campaignFlags registers the uniform -journal/-resume/-retries/-isolate
	// resilience flags (internal/campaign).
	campaignFlags = campaign.AddFlags(flag.CommandLine)

	csvW *csv.Writer
)

// fail prints the error and exits non-zero.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchtable:", err)
	os.Exit(1)
}

// csvOpen starts the raw-measurement CSV if requested. The returned closer
// flushes and surfaces any buffered write error: CI must not be able to
// upload a silently truncated CSV.
func csvOpen() func() {
	if *csvPath == "" {
		return func() {}
	}
	f, err := os.Create(*csvPath)
	if err != nil {
		fail(err)
	}
	csvW = csv.NewWriter(f)
	csvW.Write([]string{
		"workload", "defense", "consistency", "fault_seed", "instructions",
		"cycles", "cpi",
		"traffic_total", "traffic_normal", "traffic_specload", "traffic_valexp",
		"traffic_writeback", "traffic_fetch", "exposures", "validations_l1hit",
		"validations_l1miss", "validation_failures", "squashes_per_minst",
		"llcsb_hit_rate", "dram_reads",
	})
	return func() {
		csvW.Flush()
		if err := csvW.Error(); err != nil {
			f.Close()
			fail(fmt.Errorf("writing %s: %w", *csvPath, err))
		}
		if err := f.Close(); err != nil {
			fail(fmt.Errorf("closing %s: %w", *csvPath, err))
		}
	}
}

func csvRow(jr runner.JobResult) {
	if csvW == nil {
		return
	}
	r := jr.Result
	c := r.Core
	csvW.Write([]string{
		r.Workload, r.Run.Defense.String(), r.Run.Consistency.String(),
		fmt.Sprint(jr.Job.FaultSeed),
		fmt.Sprint(r.Instructions), fmt.Sprint(r.Cycles),
		fmt.Sprintf("%.4f", r.CPI()),
		fmt.Sprint(r.TotalTraffic()),
		fmt.Sprint(r.Traffic[stats.TrafficNormal]),
		fmt.Sprint(r.Traffic[stats.TrafficSpecLoad]),
		fmt.Sprint(r.Traffic[stats.TrafficValExp]),
		fmt.Sprint(r.Traffic[stats.TrafficWriteback]),
		fmt.Sprint(r.Traffic[stats.TrafficFetch]),
		fmt.Sprint(c.Exposures), fmt.Sprint(c.ValidationsL1Hit),
		fmt.Sprint(c.ValidationsL1Miss), fmt.Sprint(c.ValidationFailures),
		fmt.Sprintf("%.1f", c.SquashesPerMInst()),
		fmt.Sprintf("%.4f", r.LLCSBRate),
		fmt.Sprint(r.DRAMReads),
	})
}

func main() {
	// Imported workloads must exist before any cell runs — including in
	// re-executed -cellworker children, which inherit the parent's
	// INVISISPEC_IMPORT environment (set below when -import is given).
	if err := workload.ImportFromEnv(); err != nil {
		fail(err)
	}
	if code, served := campaign.WorkerMain(os.Args, func(ctx context.Context, name string, spec json.RawMessage) (any, error) {
		s, err := campaign.DecodeSpec[campaign.JobSpec](spec)
		if err != nil {
			return nil, err
		}
		return campaign.RunJobSpec(ctx, s)
	}); served {
		os.Exit(code)
	}
	flag.Parse()
	if *impDir != "" {
		if _, err := workload.ImportDir(*impDir); err != nil {
			fail(err)
		}
		if err := workload.SetImportDirs(*impDir); err != nil {
			fail(err)
		}
	}
	csvClose = csvOpen()
	switch {
	case *figure == 4:
		execTimeFigure(false)
	case *figure == 6:
		trafficFigure(false)
	case *figure == 7:
		execTimeFigure(true)
	case *figure == 8:
		trafficFigure(true)
	case *table == 6:
		table6()
	case *table == 7:
		table7()
	default:
		fmt.Fprintln(os.Stderr, "benchtable: pick one of -fig 4|6|7|8 or -table 6|7")
		os.Exit(2)
	}
	csvClose()
}

// csvClose flushes the CSV sink; set by main, also invoked by the degraded
// exit path so a sweep that completes with failed cells still lands its CSV.
var csvClose = func() {}

// reproFor builds the ready-to-run command reproducing one degraded cell.
func reproFor(name string, j runner.Job) string {
	var sel string
	switch {
	case strings.HasPrefix(name, "fig"):
		sel = "-fig " + strings.TrimPrefix(name, "fig")
	case strings.HasPrefix(name, "table"):
		sel = "-table " + strings.TrimPrefix(name, "table")
	default:
		sel = "-fig 4"
	}
	cmd := fmt.Sprintf("go run ./cmd/benchtable %s -names %s -warmup %d -measure %d -jobs 1",
		sel, j.Workload, j.Warmup, j.Measure)
	if j.FaultSeed != 0 {
		cmd += fmt.Sprintf(" -faultseeds %d", j.FaultSeed)
	}
	return cmd
}

// runMatrix shards the jobs across the campaign layer (checkpoint journal,
// typed retries, optional isolation — see the -journal/-resume/-retries/
// -isolate flags), records every measurement in the CSV and bench-JSON
// sinks, and degrades gracefully: cells that fail permanently land in the
// artifact's degraded block with a repro command and the sweep exits
// non-zero after writing everything, instead of aborting on first error.
func runMatrix(jobs []runner.Job, name string) []runner.JobResult {
	copts := campaignFlags()
	copts.Workers = *jobsN
	if !*quiet {
		copts.Progress = os.Stderr
	}
	start := time.Now()
	outcomes, err := campaign.Run(context.Background(), "benchtable-"+name,
		campaign.JobCells(jobs, engine.KernelFast, 0), copts)
	if err != nil {
		fail(err)
	}
	results, err := campaign.JobResults(jobs, outcomes)
	if err != nil {
		fail(err)
	}
	wall := time.Since(start)
	degraded := campaign.Degraded(outcomes, func(o campaign.Outcome) string {
		return reproFor(name, jobs[o.Index])
	})
	for _, r := range results {
		if r.Err == nil {
			csvRow(r)
		}
	}
	var kernelWall map[string]time.Duration
	if *cmpK {
		if len(degraded) > 0 {
			fail(fmt.Errorf("-comparekernels: %d cell(s) degraded, cannot certify kernel equivalence", len(degraded)))
		}
		opts := runner.Options{Jobs: *jobsN}
		if !*quiet {
			opts.Progress = os.Stderr
		}
		kernelWall = compareKernels(jobs, results, wall, opts)
	}
	writeBenchJSON(results, name, degraded, wall, kernelWall)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "runner: %d jobs in %s at -jobs %d\n",
			len(jobs), wall.Round(time.Millisecond), *jobsN)
	}
	if campaign.PrintDegraded(os.Stderr, "benchtable", degraded) {
		// The artifact and CSV are complete (minus the degraded cells);
		// the human-readable tables would just divide by missing baselines.
		csvClose()
		os.Exit(1)
	}
	return results
}

// compareKernels is the CI-level half of the kernel-equivalence oracle (the
// unit-level half is internal/sim's TestKernelEquivalence): it re-runs the
// exact job matrix under the cycle-by-cycle reference stepper and fails the
// sweep unless the deterministic bench payload — every counter of every run —
// is byte-identical to the fast kernel's. On success it returns both sweeps'
// wall times for the artifact's quarantined host block, so benchdiff
// trajectories record the fast-forward speedup without gating on it.
func compareKernels(jobs []runner.Job, fast []runner.JobResult, fastWall time.Duration, opts runner.Options) map[string]time.Duration {
	opts.Harness = append([]harness.Option{}, opts.Harness...)
	opts.Harness = append(opts.Harness, harness.WithKernel(engine.KernelStepped))
	start := time.Now()
	stepped := runner.Run(context.Background(), jobs, opts)
	steppedWall := time.Since(start)
	if err := runner.FirstError(stepped); err != nil {
		fail(fmt.Errorf("stepped-kernel rerun: %w", err))
	}
	fastPayload, err := runner.NewBench("kernelcheck", *warmup, *measure, fast).DeterministicPayload()
	if err != nil {
		fail(err)
	}
	steppedPayload, err := runner.NewBench("kernelcheck", *warmup, *measure, stepped).DeterministicPayload()
	if err != nil {
		fail(err)
	}
	if !bytes.Equal(fastPayload, steppedPayload) {
		fail(fmt.Errorf("kernel equivalence violated: stepped and fast payloads differ over %d jobs\n--- fast ---\n%s\n--- stepped ---\n%s",
			len(jobs), fastPayload, steppedPayload))
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "kernels: %d jobs byte-identical; fast %s vs stepped %s (%.2fx)\n",
			len(jobs), fastWall.Round(time.Millisecond), steppedWall.Round(time.Millisecond),
			float64(steppedWall)/float64(fastWall))
	}
	return map[string]time.Duration{
		engine.KernelFast.String():    fastWall,
		engine.KernelStepped.String(): steppedWall,
	}
}

// writeBenchJSON emits the -benchjson artifact, if requested.
func writeBenchJSON(results []runner.JobResult, name string, degraded []artifact.DegradedCell, wall time.Duration, kernelWall map[string]time.Duration) {
	if *bjPath == "" {
		return
	}
	if *bjName != "" {
		name = *bjName
	}
	b := runner.NewBench(name, *warmup, *measure, results)
	b.Degraded = degraded
	if *bjHost {
		b.WithHost(wall, *jobsN, results)
		for k, w := range kernelWall {
			b.WithKernelWall(k, w)
		}
	}
	if err := artifact.Write(*bjPath, func(w io.Writer) error {
		return runner.WriteBenchJSON(w, b)
	}); err != nil {
		fail(err)
	}
}

// seedAxis parses -faultseeds. Empty means the fault-free single-seed
// matrix (seed 0). With several seeds, every run repeats once per seed:
// the printed tables show the first seed's rows, while the CSV and
// bench-JSON artifacts carry the full seed axis (benchdiff groups by seed).
func seedAxis() []int64 {
	if *seedsF == "" {
		return nil
	}
	var out []int64
	for _, s := range strings.Split(*seedsF, ",") {
		var v int64
		if _, err := fmt.Sscan(strings.TrimSpace(s), &v); err != nil {
			fail(fmt.Errorf("bad -faultseeds entry %q: %w", s, err))
		}
		out = append(out, v)
	}
	return out
}

// firstSeed is the seed whose rows the human-readable tables print.
func firstSeed() int64 {
	if s := seedAxis(); len(s) > 0 {
		return s[0]
	}
	return 0
}

// selectDefenses resolves -defenses through the registry. The figures
// normalize against Base, so the subset must include it there.
func selectDefenses(needBase bool) []config.Defense {
	defs, err := config.ParseDefenses(*defsF)
	if err != nil {
		fail(err)
	}
	if needBase {
		hasBase := false
		for _, d := range defs {
			hasBase = hasBase || d == config.Base
		}
		if !hasBase {
			fail(fmt.Errorf("-defenses %q: figures normalize against Base; include it in the subset", *defsF))
		}
	}
	return defs
}

// selectNames resolves -names through the workload registry: the default
// is the figure's bench suite, and an explicit subset is validated up
// front so an unknown name fails with the sorted-suggestion error before
// any simulation runs, instead of mid-sweep.
func selectNames(parsec bool) []string {
	if *names == "" {
		return workload.SuiteNames(parsec)
	}
	var out []string
	for _, n := range strings.Split(*names, ",") {
		n = strings.TrimSpace(n)
		if _, err := workload.Lookup(n); err != nil {
			fail(err)
		}
		out = append(out, n)
	}
	return out
}

// colWidth sizes a column for its heading: the classic 8-character figure
// column unless the defense name (e.g. BasicBlocker) needs more.
func colWidth(c string) int {
	if len(c)+1 > 8 {
		return len(c) + 1
	}
	return 8
}

func header(cols []string) {
	fmt.Printf("%-12s", "workload")
	for _, c := range cols {
		fmt.Printf("%*s", colWidth(c), c)
	}
	fmt.Println()
}

// groupKey buckets aggregated results the way the figures read them.
type groupKey struct {
	name string
	cm   config.Consistency
	seed int64
}

// group indexes results by (workload, consistency, seed) and defense.
func group(results []runner.JobResult) map[groupKey]map[config.Defense]harness.Result {
	out := make(map[groupKey]map[config.Defense]harness.Result)
	for _, r := range results {
		k := groupKey{r.Job.Workload, r.Job.Consistency, r.Job.FaultSeed}
		if out[k] == nil {
			out[k] = make(map[config.Defense]harness.Result, len(config.AllDefenses()))
		}
		out[k][r.Job.Defense] = r.Result
	}
	return out
}

var bothModels = []config.Consistency{config.TSO, config.RC}

// execTimeFigure prints Figure 4 (SPEC) or Figure 7 (PARSEC): per-workload
// execution time under each defense normalized to Base, under TSO, plus
// the RC-average row. The whole name x model x defense matrix runs through
// the worker pool before anything prints.
func execTimeFigure(parsec bool) {
	which := 4
	suite := "SPEC"
	if parsec {
		which = 7
		suite = "PARSEC"
	}
	defs := selectDefenses(true)
	ns := selectNames(parsec)
	res := group(runMatrix(
		runner.Matrix(ns, parsec, bothModels, defs, seedAxis(), *warmup, *measure),
		fmt.Sprintf("fig%d", which)))

	fmt.Printf("Figure %d: normalized execution time, %s (higher is slower)\n\n", which, suite)
	cols := make([]string, len(defs))
	for i, d := range defs {
		cols[i] = d.String()
	}
	header(cols)

	sums := map[config.Consistency]map[config.Defense]float64{
		config.TSO: {}, config.RC: {},
	}
	for _, name := range ns {
		for _, cm := range bothModels {
			norm := harness.NormalizedTime(res[groupKey{name, cm, firstSeed()}])
			for _, d := range defs {
				sums[cm][d] += norm[d]
			}
			if cm == config.TSO {
				fmt.Printf("%-12s", name)
				for _, d := range defs {
					fmt.Printf("%*.2f", colWidth(d.String()), norm[d])
				}
				fmt.Println()
			}
		}
	}
	printAverages(defs, sums, float64(len(ns)))
}

// trafficFigure prints Figure 6 (SPEC) or Figure 8 (PARSEC): per-workload
// network traffic normalized to Base, with the InvisiSpec columns split
// into Spec-GetS and expose/validate shares.
func trafficFigure(parsec bool) {
	which := 6
	suite := "SPEC"
	if parsec {
		which = 8
		suite = "PARSEC"
	}
	defs := selectDefenses(true)
	ns := selectNames(parsec)
	res := group(runMatrix(
		runner.Matrix(ns, parsec, bothModels, defs, seedAxis(), *warmup, *measure),
		fmt.Sprintf("fig%d", which)))

	fmt.Printf("Figure %d: normalized network traffic, %s\n", which, suite)
	fmt.Printf("(spec%%/ve%% = share of the invisible-load config's bytes from Spec-GetS / expose+validate;\n")
	fmt.Printf(" rows where the baseline moves almost no bytes — fully cache-resident kernels —\n")
	fmt.Printf(" normalize against a floor of 1/16 B/instr and read as ~0)\n\n")
	// Column layout follows the defense axis: every invisible-load scheme
	// gets its Spec-GetS and expose/validate share columns right after its
	// normalized-traffic column, so a newly registered scheme lands in the
	// figure without a layout edit.
	var cols []string
	for _, d := range defs {
		cols = append(cols, d.String())
		if d.UsesInvisiSpec() {
			cols = append(cols, "spec%", "ve%")
		}
	}
	header(cols)

	sums := map[config.Consistency]map[config.Defense]float64{
		config.TSO: {}, config.RC: {},
	}
	for _, name := range ns {
		for _, cm := range bothModels {
			byDef := res[groupKey{name, cm, firstSeed()}]
			norm := harness.NormalizedTraffic(byDef)
			for _, d := range defs {
				sums[cm][d] += norm[d]
			}
			if cm == config.TSO {
				share := func(d config.Defense, tc stats.TrafficClass) float64 {
					r := byDef[d]
					if r.TotalTraffic() == 0 {
						return 0
					}
					return 100 * float64(r.Traffic[tc]) / float64(r.TotalTraffic())
				}
				fmt.Printf("%-12s", name)
				for _, d := range defs {
					fmt.Printf("%*.2f", colWidth(d.String()), norm[d])
					if d.UsesInvisiSpec() {
						fmt.Printf("%8.1f%8.1f",
							share(d, stats.TrafficSpecLoad),
							share(d, stats.TrafficValExp))
					}
				}
				fmt.Println()
			}
		}
	}
	printAverages(defs, sums, float64(len(ns)))
}

func printAverages(defs []config.Defense, sums map[config.Consistency]map[config.Defense]float64, n float64) {
	fmt.Printf("%-12s", "average")
	for _, d := range defs {
		fmt.Printf("%*.2f", colWidth(d.String()), sums[config.TSO][d]/n)
	}
	fmt.Println()
	fmt.Printf("%-12s", "RC-average")
	for _, d := range defs {
		fmt.Printf("%*.2f", colWidth(d.String()), sums[config.RC][d]/n)
	}
	fmt.Println()
}

// table6 prints the InvisiSpec operation characterization (paper Table VI)
// for IS-Sp and IS-Fu under TSO, both suites through one pool run.
func table6() {
	isDefs := []config.Defense{config.ISSpectre, config.ISFuture}
	tso := []config.Consistency{config.TSO}
	jobs := runner.Matrix(selectNames(false), false, tso, isDefs, seedAxis(), *warmup, *measure)
	jobs = append(jobs, runner.Matrix(selectNames(true), true, tso, isDefs, seedAxis(), *warmup, *measure)...)
	results := runMatrix(jobs, "table6")

	fmt.Println("Table VI: characterization of InvisiSpec's operation under TSO")
	fmt.Println("(Sp = IS-Spectre, Fu = IS-Future)")
	fmt.Println()
	fmt.Printf("%-14s %-6s %7s %7s %7s %9s %7s %7s %7s %7s %7s\n",
		"workload", "cfg", "expo%", "valL1h%", "valL1m%", "sq/Minst",
		"br%", "cons%", "vfail%", "SBhit%", "LLCSB%")
	for _, r := range results {
		printTable6Row(r.Job.Workload, r.Job.Defense, r.Result)
	}
}

func printTable6Row(name string, d config.Defense, r harness.Result) {
	c := r.Core
	cfg := "Sp"
	if d == config.ISFuture {
		cfg = "Fu"
	}
	ve := float64(c.Exposures + c.Validations())
	if ve == 0 {
		ve = 1
	}
	squashes := float64(c.TotalSquashes())
	if squashes == 0 {
		squashes = 1
	}
	sbTotal := float64(c.SBReuseHits + c.SBReuseMisses)
	if sbTotal == 0 {
		sbTotal = 1
	}
	fmt.Printf("%-14s %-6s %7.1f %7.1f %7.1f %9.0f %7.1f %7.1f %7.1f %7.1f %7.1f\n",
		name, cfg,
		100*float64(c.Exposures)/ve,
		100*float64(c.ValidationsL1Hit)/ve,
		100*float64(c.ValidationsL1Miss)/ve,
		c.SquashesPerMInst(),
		100*float64(c.Squashes[stats.SquashBranch])/squashes,
		100*float64(c.Squashes[stats.SquashConsistency]+c.Squashes[stats.SquashEarly])/squashes,
		100*float64(c.Squashes[stats.SquashValidation])/squashes,
		100*float64(c.SBReuseHits)/sbTotal,
		100*r.LLCSBRate)
}

// table7 prints the hardware-overhead estimates (paper Table VII).
func table7() {
	m := config.Default(1)
	fmt.Println("Table VII: per-core hardware overhead of InvisiSpec (16 nm)")
	fmt.Println()
	fmt.Printf("%-28s %10s %10s\n", "Metric", "L1-SB", "LLC-SB")
	l1 := hwcost.L1SB(m).Estimate()
	llc := hwcost.LLCSB(m).Estimate()
	fmt.Printf("%-28s %10.4f %10.4f\n", "Area (mm^2)", l1.AreaMM2, llc.AreaMM2)
	fmt.Printf("%-28s %10.1f %10.1f\n", "Access time (ps)", l1.AccessPS, llc.AccessPS)
	fmt.Printf("%-28s %10.1f %10.1f\n", "Dynamic read energy (pJ)", l1.ReadPJ, llc.ReadPJ)
	fmt.Printf("%-28s %10.1f %10.1f\n", "Dynamic write energy (pJ)", l1.WritePJ, llc.WritePJ)
	fmt.Printf("%-28s %10.2f %10.2f\n", "Leakage power (mW)", l1.LeakMW, llc.LeakMW)
}
