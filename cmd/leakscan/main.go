// Command leakscan is the security regression gate: it scans a corpus of
// transient-attack variants (internal/leakage) against every defense
// configuration, prints the attack x defense verdict table, optionally
// writes the deterministic leakage-report/v1 JSON artifact, and exits
// non-zero when any cell violates the defense-outcome matrix — a secure
// configuration that leaks, an undefended baseline that fails to leak
// (the corpus went stale), or a trial that errored.
//
// Corpora:
//
//	-corpus smoke  the fixed six-variant CI corpus (default)
//	-corpus fuzz   -n variants generated deterministically from -seed
//
// The scan runs on the resilient execution layer (internal/campaign):
// -journal checkpoints every finished trial, -resume skips trials a
// previous (possibly killed) run already finished and replays their
// latencies byte-identically, -retries re-runs transient failures, and
// -isolate shards trials into kill-on-hang child worker processes (the
// same binary re-exec'd in -cellworker mode).
//
// The report's deterministic payload is byte-identical at any -jobs
// width; host facts (wall time, worker count) are quarantined in the
// optional host block (-host).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"invisispec/internal/artifact"
	"invisispec/internal/campaign"
	"invisispec/internal/config"
	"invisispec/internal/leakage"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

func main() {
	// Imported workloads register before any trial runs — in -cellworker
	// children too, via the inherited INVISISPEC_IMPORT environment.
	if err := workload.ImportFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "leakscan:", err)
		os.Exit(2)
	}
	if code, served := campaign.WorkerMain(os.Args, func(ctx context.Context, name string, spec json.RawMessage) (any, error) {
		s, err := campaign.DecodeSpec[leakage.TrialSpec](spec)
		if err != nil {
			return nil, err
		}
		return leakage.RunTrialSpec(ctx, s)
	}); served {
		os.Exit(code)
	}

	var (
		corpus   = flag.String("corpus", "smoke", "attack corpus: smoke, fuzz, or none (imported cells only)")
		seed     = flag.Int64("seed", 1, "fuzz corpus seed (-corpus fuzz)")
		n        = flag.Int("n", 12, "fuzz corpus size (-corpus fuzz)")
		trials   = flag.Int("trials", 3, "trials per (attack, defense) cell")
		jobs     = flag.Int("jobs", 0, "parallel workers (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-trial wall-clock timeout (0 = none)")
		jsonPath = flag.String("json", "", "write the leakage-report/v1 JSON artifact here")
		name     = flag.String("name", "", "report name (defaults to the corpus name)")
		host     = flag.Bool("host", false, "include the nondeterministic host block in the JSON artifact")
		verbose  = flag.Bool("v", false, "print per-cell progress lines to stderr")
		defsF    = flag.String("defenses", "", "comma-separated defense-scheme subset for the matrix columns (default: all registered; see invisisim -listdefenses)")
		impDir   = flag.String("import", "", "import *.trace files from this directory as workloads before the scan")
		imported = flag.String("imported", "", "comma-separated imported-attack cells, each name[:secret] (secret defaults to 84, the canonical Spectre); scanned as canonical-Spectre specs replaying the named workload")

		search       = flag.Bool("search", false, "run the feedback-driven attack search instead of a corpus scan (seeded hill-climb over template parameters; see -search-budget)")
		searchBudget = flag.Int("search-budget", 8, "candidates evaluated per search lane, including the seed (-search)")
		searchSeeds  = flag.String("search-classes", "", "comma-separated template classes to search (spectre, spectre-btb, spectre-rsb, ssb, llcsb-contend); default: all")
		blind        = flag.Bool("blind", false, "mutate from the immutable seed instead of hill-climbing (the fuzz baseline; -search)")
		promoteDir   = flag.String("promote", "", "write minimized find reproducers as replayable *.trace files into this directory (-search)")
		shrinkBudget = flag.Int("shrink-budget", 0, "ddmin oracle evaluations per find minimization (0 = default 512; -search)")
	)
	copts := campaign.AddFlags(flag.CommandLine)
	flag.Parse()

	if *search {
		defs, err := config.ParseDefenses(*defsF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leakscan:", err)
			os.Exit(2)
		}
		searchName := *name
		if searchName == "" {
			searchName = "search"
		}
		os.Exit(runSearch(searchConfig{
			seed:         *seed,
			budget:       *searchBudget,
			classes:      *searchSeeds,
			blind:        *blind,
			defenses:     defs,
			trials:       *trials,
			jobs:         *jobs,
			timeout:      *timeout,
			jsonPath:     *jsonPath,
			promoteDir:   *promoteDir,
			shrinkBudget: *shrinkBudget,
			name:         searchName,
			verbose:      *verbose,
			campaign:     copts(),
		}))
	}

	if *impDir != "" {
		if _, err := workload.ImportDir(*impDir); err != nil {
			fmt.Fprintln(os.Stderr, "leakscan:", err)
			os.Exit(2)
		}
		if err := workload.SetImportDirs(*impDir); err != nil {
			fmt.Fprintln(os.Stderr, "leakscan:", err)
			os.Exit(2)
		}
	}

	defs, err := config.ParseDefenses(*defsF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakscan:", err)
		os.Exit(2)
	}

	var specs []leakage.AttackSpec
	switch *corpus {
	case "smoke":
		specs = leakage.SmokeCorpus()
	case "fuzz":
		specs = leakage.Corpus(*seed, *n)
	case "none":
		// Imported cells only (-imported).
	default:
		fmt.Fprintf(os.Stderr, "leakscan: unknown corpus %q (want smoke, fuzz, or none)\n", *corpus)
		os.Exit(2)
	}
	importedSpecs, err := parseImported(*imported)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakscan:", err)
		os.Exit(2)
	}
	specs = append(specs, importedSpecs...)
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "leakscan: empty scan (-corpus none needs -imported cells)")
		os.Exit(2)
	}
	reportName := *name
	if reportName == "" {
		reportName = *corpus
	}

	opts := leakage.ScanOptions{
		Defenses: defs,
		Trials:   *trials,
		Jobs:     *jobs,
		Timeout:  *timeout,
		Name:     reportName,
		Campaign: copts(),
		Repro: func(ts leakage.TrialSpec) string {
			// One scan of just the failing attack reproduces all its trials
			// (the per-trial fault seeds derive from the cell identity, not
			// from which trials ran).
			if *corpus == "fuzz" {
				return fmt.Sprintf("go run ./cmd/leakscan -corpus fuzz -seed %d -n %d -trials %d -v", *seed, *n, *trials)
			}
			return fmt.Sprintf("go run ./cmd/leakscan -corpus smoke -trials %d -v", *trials)
		},
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	start := time.Now()
	rep, err := leakage.Scan(context.Background(), specs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakscan:", err)
		os.Exit(2)
	}
	if *corpus == "fuzz" {
		rep.Seed, rep.Count = *seed, *n
	}
	if *host {
		rep.Host = &leakage.ReportHost{
			WallMS: float64(time.Since(start).Microseconds()) / 1000,
			Jobs:   *jobs,
			CPUs:   runtime.NumCPU(),
			GoOS:   runtime.GOOS,
			GoVer:  runtime.Version(),
		}
	}

	fmt.Printf("leakscan: %d attacks x %d defenses, %d trials each\n\n",
		len(specs), len(rep.Defenses), rep.Trials)
	rep.WriteTable(os.Stdout)

	if *jsonPath != "" {
		if err := artifact.Write(*jsonPath, func(w io.Writer) error {
			return leakage.WriteJSON(w, rep)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "leakscan:", err)
			os.Exit(2)
		}
		fmt.Printf("\nreport written to %s\n", *jsonPath)
	}

	degraded := campaign.PrintDegraded(os.Stderr, "leakscan", rep.Degraded)
	if v := rep.Violations(); len(v) > 0 {
		fmt.Fprintf(os.Stderr, "\nleakscan: %d VIOLATION(S):\n", len(v))
		for _, c := range v {
			detail := fmt.Sprintf("observed %s, expected %s", c.Verdict, c.Expected)
			if c.Error != "" {
				detail = "trial error: " + c.Error
			} else if c.Expected == leakage.VerdictLeak && c.Verdict == leakage.VerdictLeak {
				detail = fmt.Sprintf("leak recovered byte %d, want %d", c.RecoveredByte, c.Secret)
			}
			fmt.Fprintf(os.Stderr, "  %s under %s: %s\n", c.Attack, c.Defense, detail)
		}
		os.Exit(1)
	}
	if degraded {
		os.Exit(1)
	}
	fmt.Println("\nleakscan: PASS — every defense blocks what it claims to block, every expected leak observed")
}

// searchConfig carries the parsed -search flags.
type searchConfig struct {
	seed         int64
	budget       int
	classes      string
	blind        bool
	defenses     []config.Defense
	trials       int
	jobs         int
	timeout      time.Duration
	jsonPath     string
	promoteDir   string
	shrinkBudget int
	name         string
	verbose      bool
	campaign     campaign.Options
}

// runSearch drives the feedback-driven attack search (-search): seeded
// hill-climb lanes over the template classes, every candidate scanned
// against the defense matrix, finds (a defense leaking where the matrix
// says blocked) ddmin-minimized and promoted to replayable traces. The
// exit code mirrors the scan gate: 1 when the search broke a defense, 0
// when every candidate behaved as the matrix predicts.
func runSearch(cfg searchConfig) int {
	seeds, err := searchSeedSpecs(cfg.classes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakscan:", err)
		return 2
	}
	opts := leakage.SearchOptions{
		Seed:         cfg.seed,
		Budget:       cfg.budget,
		Seeds:        seeds,
		Defenses:     cfg.defenses,
		Trials:       cfg.trials,
		Jobs:         cfg.jobs,
		Timeout:      cfg.timeout,
		Campaign:     cfg.campaign,
		Name:         cfg.name,
		Blind:        cfg.blind,
		ShrinkBudget: cfg.shrinkBudget,
	}
	if cfg.verbose {
		opts.Progress = os.Stderr
	}
	rep, traces, err := leakage.Search(context.Background(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakscan:", err)
		return 2
	}

	mode := "hill-climb"
	if rep.Blind {
		mode = "blind fuzz"
	}
	fmt.Printf("leakscan search: %d lanes x %d candidates (%s, seed %d), %d trials/cell vs %s\n\n",
		len(rep.Best), rep.Budget, mode, rep.Seed, rep.Trials, strings.Join(rep.Defenses, ","))
	for _, s := range rep.Steps {
		marks := ""
		if s.Accepted {
			marks += " *"
		}
		if s.Repeat {
			marks += " (repeat)"
		}
		fmt.Printf("  [%s] iter %d: %-36s snr %7.2f best %7.2f%s\n",
			s.Class, s.Iter, s.Attack, s.Score, s.Best, marks)
	}
	fmt.Println("\nlane bests:")
	for _, b := range rep.Best {
		fmt.Printf("  %-32s -> %-36s snr %.2f\n", b.Class, b.Attack, b.Score)
	}

	if cfg.jsonPath != "" {
		if err := artifact.Write(cfg.jsonPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "leakscan:", err)
			return 2
		}
		fmt.Printf("\nsearch report written to %s\n", cfg.jsonPath)
	}
	if cfg.promoteDir != "" && len(traces) > 0 {
		if err := os.MkdirAll(cfg.promoteDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "leakscan:", err)
			return 2
		}
		for _, tr := range traces {
			path := filepath.Join(cfg.promoteDir, tr.Name+".trace")
			if err := trace.WriteFile(path, tr); err != nil {
				fmt.Fprintln(os.Stderr, "leakscan:", err)
				return 2
			}
			fmt.Printf("promoted reproducer written to %s\n", path)
		}
	}

	if len(rep.Finds) > 0 {
		fmt.Fprintf(os.Stderr, "\nleakscan search: %d FIND(S) — defenses broken by searched attacks:\n", len(rep.Finds))
		for _, f := range rep.Finds {
			detail := fmt.Sprintf("snr %.2f", f.SNR)
			if f.Minimized {
				detail += fmt.Sprintf(", minimized %d -> %d insts", f.ShrinkFrom, f.ShrinkTo)
			}
			if f.TraceName != "" {
				detail += ", trace " + f.TraceName
			}
			if f.Note != "" {
				detail += " (" + f.Note + ")"
			}
			fmt.Fprintf(os.Stderr, "  %s leaks under %s: %s\n", f.Attack, f.Defense, detail)
		}
		return 1
	}
	fmt.Println("\nleakscan search: PASS — no searched candidate broke a defense")
	return 0
}

// searchSeedSpecs resolves -search-classes to lane seed specs: empty means
// every searchable class, otherwise a comma-separated template-name subset
// of the canonical seeds.
func searchSeedSpecs(classes string) ([]leakage.AttackSpec, error) {
	all := leakage.DefaultSearchSeeds()
	if classes == "" {
		return all, nil
	}
	byTemplate := map[string]leakage.AttackSpec{}
	var names []string
	for _, s := range all {
		byTemplate[s.Template.String()] = s
		names = append(names, s.Template.String())
	}
	var seeds []leakage.AttackSpec
	for _, c := range strings.Split(classes, ",") {
		c = strings.TrimSpace(c)
		s, ok := byTemplate[c]
		if !ok {
			return nil, fmt.Errorf("unknown -search-classes entry %q (want a subset of %s)", c, strings.Join(names, ","))
		}
		seeds = append(seeds, s)
	}
	return seeds, nil
}

// parseImported turns the -imported list into attack specs: each entry is
// name[:secret], scanned as the canonical Spectre spec (16 rounds, 256x64
// probe, both flushes) replaying the named imported workload — the
// recording this matches is `traceconv -record spectre` (secret 84) or a
// re-parameterized SpectreV1With dump whose secret is given after the
// colon. The expected-outcome matrix is driven by those spec parameters,
// so a mismatched recording shows up as a verdict violation.
func parseImported(list string) ([]leakage.AttackSpec, error) {
	if list == "" {
		return nil, nil
	}
	var specs []leakage.AttackSpec
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		name, secretStr, hasSecret := strings.Cut(item, ":")
		secret := 84
		if hasSecret {
			v, err := strconv.Atoi(secretStr)
			if err != nil || v < 1 || v > 255 {
				return nil, fmt.Errorf("bad -imported entry %q: secret must be 1..255", item)
			}
			secret = v
		}
		if _, err := workload.Lookup(name); err != nil {
			return nil, err
		}
		specs = append(specs, leakage.CanonicalSpectreSpec(byte(secret)).ViaWorkload(name))
	}
	return specs, nil
}
