// Command conformfuzz runs the differential conformance fuzzing campaign:
// seeded random programs executed on the golden interpreter and on the
// simulator under every defense × consistency × kernel configuration, with
// final architectural state compared byte for byte. Diverging programs are
// optionally auto-shrunk to minimized reproducers.
//
// The campaign runs on the resilient execution layer (internal/campaign):
// -journal checkpoints every finished program, -resume skips programs a
// previous (possibly killed) run already finished and replays their results
// byte-identically, -retries re-runs transient failures, and -isolate
// shards programs into kill-on-hang child worker processes (the same binary
// re-exec'd in -cellworker mode).
//
// Exit status: 0 when every program conforms, 1 when any program diverged,
// errored, or degraded, 2 on usage or I/O failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"invisispec/internal/artifact"
	"invisispec/internal/campaign"
	"invisispec/internal/config"
	"invisispec/internal/conform"
)

func main() {
	os.Exit(run())
}

func run() int {
	if code, served := campaign.WorkerMain(os.Args, func(ctx context.Context, name string, spec json.RawMessage) (any, error) {
		s, err := campaign.DecodeSpec[conform.ProgSpec](spec)
		if err != nil {
			return nil, err
		}
		return conform.RunProgSpec(ctx, s)
	}); served {
		return code
	}

	var (
		seed    = flag.Uint64("seed", 1, "campaign seed; program i uses Mix(seed, i)")
		n       = flag.Int("n", 200, "number of programs")
		only    = flag.Int("only", -1, "check a single program index (repro mode; -1 = all)")
		jobs    = flag.Int("jobs", 0, "worker count (0: GOMAXPROCS)")
		shrink  = flag.Bool("shrink", false, "minimize diverging programs and emit reproducers")
		evals   = flag.Int("shrink-evals", 2000, "oracle budget per shrink")
		jsonOut = flag.String("json", "", "write the full report artifact to this file")
		quiet   = flag.Bool("q", false, "suppress per-program progress")
		defsF   = flag.String("defenses", "", "comma-separated defense-scheme subset for the configuration matrix (default: all registered; see invisisim -listdefenses)")
	)
	copts := campaign.AddFlags(flag.CommandLine)
	flag.Parse()
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "conformfuzz: -n must be positive")
		return 2
	}
	if *only >= *n {
		fmt.Fprintf(os.Stderr, "conformfuzz: -only %d out of range (n=%d)\n", *only, *n)
		return 2
	}
	defs, err := config.ParseDefenses(*defsF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conformfuzz:", err)
		return 2
	}

	opts := conform.Options{
		Seed:           *seed,
		N:              *n,
		Jobs:           *jobs,
		Shrink:         *shrink,
		MaxShrinkEvals: *evals,
		Campaign:       copts(),
	}
	if *defsF != "" {
		opts.Defenses = defs
	}
	if *only >= 0 {
		opts.Indices = []int{*only}
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	rep, err := conform.Campaign(context.Background(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conformfuzz: %v\n", err)
		return 2
	}

	if *jsonOut != "" {
		if err := artifact.Write(*jsonOut, func(w io.Writer) error {
			return conform.WriteReportJSON(w, rep)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "conformfuzz: %v\n", err)
			return 2
		}
	}

	for _, r := range rep.Runs {
		if r.Error != "" {
			fmt.Printf("program %d (seed %#x): ERROR %s\n", r.Index, r.Seed, r.Error)
		}
		for _, d := range r.Divergences {
			fmt.Printf("program %d (seed %#x): DIVERGES %s: %s\n", r.Index, r.Seed, d.Config, d.Reason)
		}
		if r.MinimizedLen > 0 {
			fmt.Printf("program %d: minimized to %d instructions (%d oracle evals)\n",
				r.Index, r.MinimizedLen, r.ShrinkEvals)
			for _, l := range r.Minimized {
				fmt.Println("  " + l)
			}
			fmt.Println("--- reproducer (commit under internal/conform/corpus/) ---")
			fmt.Print(r.ReproGo)
			fmt.Println("--- end reproducer ---")
		}
	}
	degraded := campaign.PrintDegraded(os.Stderr, "conformfuzz", rep.Degraded)
	fmt.Printf("conformfuzz: %d programs × %d configs, %d diverging, %d errors (seed %d)\n",
		rep.Programs, len(rep.Configs), rep.Diverging, rep.Errors, rep.Seed)
	if rep.Diverging > 0 || rep.Errors > 0 || degraded {
		return 1
	}
	return 0
}
