// Command conformfuzz runs the differential conformance fuzzing campaign:
// seeded random programs executed on the golden interpreter and on the
// simulator under every defense × consistency × kernel configuration, with
// final architectural state compared byte for byte. Diverging programs are
// optionally auto-shrunk to minimized reproducers.
//
// The campaign runs on the resilient execution layer (internal/campaign):
// -journal checkpoints every finished program, -resume skips programs a
// previous (possibly killed) run already finished and replays their results
// byte-identically, -retries re-runs transient failures, and -isolate
// shards programs into kill-on-hang child worker processes (the same binary
// re-exec'd in -cellworker mode).
//
// Imported traces join the gate too: -import DIR replays every *.trace
// admitted by the workload registry under the full configuration matrix
// and diffs the committed stream against the recording (-n 0 runs just
// that check, skipping the fuzz campaign). -emittrace DIR promotes each
// conforming generated program to a replayable trace in DIR, feeding the
// import corpus.
//
// Exit status: 0 when every program conforms, 1 when any program diverged,
// errored, or degraded, 2 on usage or I/O failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"invisispec/internal/artifact"
	"invisispec/internal/campaign"
	"invisispec/internal/config"
	"invisispec/internal/conform"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	// Imported workloads register before any program runs — in -cellworker
	// children too, via the inherited INVISISPEC_IMPORT environment.
	if err := workload.ImportFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "conformfuzz:", err)
		return 2
	}
	if code, served := campaign.WorkerMain(os.Args, func(ctx context.Context, name string, spec json.RawMessage) (any, error) {
		s, err := campaign.DecodeSpec[conform.ProgSpec](spec)
		if err != nil {
			return nil, err
		}
		return conform.RunProgSpec(ctx, s)
	}); served {
		return code
	}

	var (
		seed    = flag.Uint64("seed", 1, "campaign seed; program i uses Mix(seed, i)")
		n       = flag.Int("n", 200, "number of programs")
		only    = flag.Int("only", -1, "check a single program index (repro mode; -1 = all)")
		jobs    = flag.Int("jobs", 0, "worker count (0: GOMAXPROCS)")
		shrink  = flag.Bool("shrink", false, "minimize diverging programs and emit reproducers")
		evals   = flag.Int("shrink-evals", 2000, "oracle budget per shrink")
		jsonOut = flag.String("json", "", "write the full report artifact to this file")
		quiet   = flag.Bool("q", false, "suppress per-program progress")
		defsF   = flag.String("defenses", "", "comma-separated defense-scheme subset for the configuration matrix (default: all registered; see invisisim -listdefenses)")
		impDir  = flag.String("import", "", "replay-check every *.trace in this directory against the configuration matrix (combine with -n 0 to run only that check)")
		emitDir = flag.String("emittrace", "", "write each conforming generated program to this directory as a replayable .trace")
	)
	copts := campaign.AddFlags(flag.CommandLine)
	flag.Parse()
	if *n <= 0 && !(*n == 0 && *impDir != "") {
		fmt.Fprintln(os.Stderr, "conformfuzz: -n must be positive (-n 0 is allowed only with -import)")
		return 2
	}
	if *only >= *n {
		fmt.Fprintf(os.Stderr, "conformfuzz: -only %d out of range (n=%d)\n", *only, *n)
		return 2
	}
	defs, err := config.ParseDefenses(*defsF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conformfuzz:", err)
		return 2
	}

	importBad := 0
	if *impDir != "" {
		names, err := workload.ImportDir(*impDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "conformfuzz:", err)
			return 2
		}
		cfgs := conform.ConfigsFor(defs)
		for _, wname := range names {
			w, err := workload.Lookup(wname)
			if err != nil {
				fmt.Fprintln(os.Stderr, "conformfuzz:", err)
				return 2
			}
			tw, ok := w.(*workload.TraceWorkload)
			if !ok {
				continue
			}
			divs := conform.CheckImportedTrace(tw.Trace(), cfgs)
			for _, d := range divs {
				fmt.Printf("imported %s: DIVERGES %s: %s\n", wname, d.Config, d.Reason)
			}
			if len(divs) > 0 {
				importBad++
			} else if !*quiet {
				fmt.Fprintf(os.Stderr, "imported %s: replays byte-identically across %d configs\n", wname, len(cfgs))
			}
		}
		fmt.Printf("conformfuzz: %d imported trace(s), %d diverging\n", len(names), importBad)
	}
	if *n == 0 {
		if importBad > 0 {
			return 1
		}
		return 0
	}

	opts := conform.Options{
		Seed:           *seed,
		N:              *n,
		Jobs:           *jobs,
		Shrink:         *shrink,
		MaxShrinkEvals: *evals,
		Campaign:       copts(),
	}
	if *defsF != "" {
		opts.Defenses = defs
	}
	if *only >= 0 {
		opts.Indices = []int{*only}
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	rep, err := conform.Campaign(context.Background(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conformfuzz: %v\n", err)
		return 2
	}

	if *jsonOut != "" {
		if err := artifact.Write(*jsonOut, func(w io.Writer) error {
			return conform.WriteReportJSON(w, rep)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "conformfuzz: %v\n", err)
			return 2
		}
	}

	for _, r := range rep.Runs {
		if r.Error != "" {
			fmt.Printf("program %d (seed %#x): ERROR %s\n", r.Index, r.Seed, r.Error)
		}
		for _, d := range r.Divergences {
			fmt.Printf("program %d (seed %#x): DIVERGES %s: %s\n", r.Index, r.Seed, d.Config, d.Reason)
		}
		if r.MinimizedLen > 0 {
			fmt.Printf("program %d: minimized to %d instructions (%d oracle evals)\n",
				r.Index, r.MinimizedLen, r.ShrinkEvals)
			for _, l := range r.Minimized {
				fmt.Println("  " + l)
			}
			fmt.Println("--- reproducer (commit under internal/conform/corpus/) ---")
			fmt.Print(r.ReproGo)
			fmt.Println("--- end reproducer ---")
		}
	}
	if *emitDir != "" {
		if err := emitTraces(*emitDir, rep); err != nil {
			fmt.Fprintf(os.Stderr, "conformfuzz: %v\n", err)
			return 2
		}
	}

	degraded := campaign.PrintDegraded(os.Stderr, "conformfuzz", rep.Degraded)
	fmt.Printf("conformfuzz: %d programs × %d configs, %d diverging, %d errors (seed %d)\n",
		rep.Programs, len(rep.Configs), rep.Diverging, rep.Errors, rep.Seed)
	if rep.Diverging > 0 || rep.Errors > 0 || degraded || importBad > 0 {
		return 1
	}
	return 0
}

// emitTraces promotes every conforming campaign program to a replayable
// .trace in dir, named exactly as the campaign named it (conform-INDEX-SEED),
// so a later -import run's divergence reports point back at the same
// program identity.
func emitTraces(dir string, rep *conform.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	emitted := 0
	for _, r := range rep.Runs {
		if r.Error != "" || len(r.Divergences) > 0 {
			continue
		}
		p := conform.Generate(r.Seed)
		p.Name = fmt.Sprintf("conform-%d-%x", r.Index, r.Seed)
		t, err := conform.EmitTrace(p)
		if err != nil {
			return err
		}
		if err := trace.WriteFile(filepath.Join(dir, p.Name+".trace"), t); err != nil {
			return err
		}
		emitted++
	}
	fmt.Printf("conformfuzz: %d conforming trace(s) written to %s\n", emitted, dir)
	return nil
}
