// Command spectre-poc reproduces the paper's proof-of-concept defense
// analysis (Figure 5): it mounts the Spectre variant-1 attack of Figure 1
// with secret value 84 on the insecure baseline and on InvisiSpec-Spectre,
// and prints the attacker's measured access latency for every probe line.
// On Base, only the secret-indexed line is a cache hit; under IS-Sp every
// probe misses and the secret is not recoverable.
//
// The verdict comes from the statistical distinguisher in internal/leakage
// (repeated trials, hot-line test against the scan's median), not a bare
// argmin, and the process exits non-zero when the outcome contradicts the
// paper's claim: Base must recover the secret and IS-Sp must not. That
// makes the PoC itself a regression test.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"invisispec/internal/config"
	"invisispec/internal/leakage"
)

func main() {
	var (
		secret = flag.Int("secret", 84, "secret byte value, 1-255 (the paper uses 84)")
		full   = flag.Bool("full", false, "print all probe latencies from a single fault-free run, not a summary")
		trials = flag.Int("trials", 3, "trials per configuration fed to the distinguisher")
	)
	flag.Parse()
	if *secret < 1 || *secret > 255 {
		fmt.Fprintln(os.Stderr, "spectre-poc: secret must be 1-255 (probe line 0 collects training residue)")
		os.Exit(1)
	}

	spec := leakage.CanonicalSpectreSpec(byte(*secret))
	defenses := []config.Defense{config.Base, config.ISSpectre}
	rep, err := leakage.Scan(context.Background(), []leakage.AttackSpec{spec}, leakage.ScanOptions{
		Defenses: defenses,
		Trials:   *trials,
		Name:     "spectre-poc",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spectre-poc:", err)
		os.Exit(1)
	}

	fmt.Printf("Spectre variant-1 PoC, secret value %d (paper Figure 5)\n\n", *secret)
	failed := false
	for i, d := range defenses {
		c := rep.Cells[i]
		fmt.Printf("=== %s ===\n", d)
		if *full {
			lats, err := leakage.SingleTrialLatencies(context.Background(), spec, d)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spectre-poc:", err)
				os.Exit(1)
			}
			for i := 0; i < len(lats); i += 8 {
				for j := i; j < i+8 && j < len(lats); j++ {
					fmt.Printf("%3d:%4d ", j, lats[j])
				}
				fmt.Println()
			}
		}
		fmt.Printf("median probe latency %.0f cycles; secret line at %.0f cycles; hit rate %.0f%% over %d trials\n",
			c.MedianLatency, c.SecretLatency, 100*c.HitRate, c.Trials)
		switch {
		case d == config.Base && c.Verdict == leakage.VerdictLeak && c.RecoveredByte == *secret:
			fmt.Printf("=> ATTACK SUCCEEDED: recovered secret %d (confidence %.2f)\n\n", c.RecoveredByte, c.Confidence)
		case d != config.Base && c.Verdict == leakage.VerdictBlocked:
			fmt.Printf("=> attack defeated: no probe line stands out (confidence %.2f)\n\n", c.Confidence)
		default:
			failed = true
			fmt.Printf("=> UNEXPECTED OUTCOME: verdict %s, recovered byte %d\n\n", c.Verdict, c.RecoveredByte)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "spectre-poc: outcome contradicts the paper's defense claim")
		os.Exit(1)
	}
}
