// Command spectre-poc reproduces the paper's proof-of-concept defense
// analysis (Figure 5): it mounts the Spectre variant-1 attack of Figure 1
// with secret value 84 on the insecure baseline and on InvisiSpec-Spectre,
// and prints the attacker's measured access latency for every probe line.
// On Base, only the secret-indexed line is a cache hit; under IS-Sp every
// probe misses and the secret is not recoverable.
package main

import (
	"flag"
	"fmt"
	"os"

	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/workload"
)

func main() {
	var (
		secret = flag.Int("secret", 84, "secret byte value (the paper uses 84)")
		full   = flag.Bool("full", false, "print all 256 probe latencies, not a summary")
	)
	flag.Parse()
	if *secret < 0 || *secret > 255 {
		fmt.Fprintln(os.Stderr, "spectre-poc: secret must be a byte")
		os.Exit(1)
	}

	fmt.Printf("Spectre variant-1 PoC, secret value %d (paper Figure 5)\n\n", *secret)
	for _, d := range []config.Defense{config.Base, config.ISSpectre} {
		lat := attack(d, byte(*secret))
		idx, best := argmin(lat)
		fmt.Printf("=== %s ===\n", d)
		if *full {
			for i := 0; i < 256; i += 8 {
				for j := i; j < i+8; j++ {
					fmt.Printf("%3d:%4d ", j, lat[j])
				}
				fmt.Println()
			}
		}
		med := median(lat)
		fmt.Printf("median probe latency %d cycles; fastest line %d at %d cycles\n", med, idx, best)
		switch {
		case d == config.Base && idx == *secret && best*2 < med:
			fmt.Printf("=> ATTACK SUCCEEDED: recovered secret %d\n\n", idx)
		case d != config.Base && (idx != *secret || best*2 >= med):
			fmt.Printf("=> attack defeated: no probe line stands out\n\n")
		default:
			fmt.Printf("=> unexpected outcome\n\n")
		}
	}
}

func attack(d config.Defense, secret byte) [workload.SpectreProbeLines]uint64 {
	run := config.Run{Machine: config.Default(1), Defense: d, Consistency: config.TSO}
	m := sim.MustNew(run, []*isa.Program{workload.SpectreV1(secret)})
	if err := m.RunToCompletion(20_000_000); err != nil {
		fmt.Fprintln(os.Stderr, "spectre-poc:", err)
		os.Exit(1)
	}
	return workload.SpectreScanLatencies(m.Mem)
}

func argmin(lat [workload.SpectreProbeLines]uint64) (int, uint64) {
	best := 0
	for i := range lat {
		if lat[i] < lat[best] {
			best = i
		}
	}
	return best, lat[best]
}

func median(lat [workload.SpectreProbeLines]uint64) uint64 {
	s := append([]uint64(nil), lat[:]...)
	for i := 1; i < len(s); i++ { // insertion sort; n is tiny
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
