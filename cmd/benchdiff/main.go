// Command benchdiff is the CI regression gate: it compares two bench-JSON
// artifacts (see internal/runner) and exits non-zero when the candidate's
// results are unacceptable against the baseline.
//
//	benchdiff [-tol 0.10] [-eps 0.02] [-json out.json] BENCH_baseline.json BENCH_candidate.json
//
// Two families of checks run (runner.CompareBench):
//
//   - Shape fidelity (candidate only): within every (workload, consistency,
//     fault-seed) group that carries every registered defense, the insecure
//     Base must be the fastest config; and averaged across each
//     consistency model's complete groups (the figures' bottom rows),
//     InvisiSpec-Spectre must beat Fence-Spectre and InvisiSpec-Future must
//     beat Fence-Future. The IS-vs-fence ordering is checked on the average
//     rather than per workload because the paper's own per-benchmark bars
//     invert on memory-bound kernels (validation-heavy mcf/omnetpp-style
//     rows) while the headline average holds. A shape inversion means the
//     reproduction no longer reproduces, no matter how fast it got. -eps is
//     the slack ratio for near-ties.
//
//   - Performance regression (candidate vs baseline): every baseline run
//     must exist in the candidate, must have succeeded, and its CPI must
//     not exceed the baseline's by more than -tol. The simulator is fully
//     deterministic, so on unchanged timing models the CPIs match exactly;
//     the tolerance only admits intentional model changes small enough to
//     keep the figures honest.
//
// All violations are reported (not just the first) before the non-zero exit.
// -json additionally writes the machine-readable benchdiff-verdict/v1
// document — every check with its pass/fail and CPI deltas — to a file, or
// to stdout with "-json -", so the dashboard and CI consume gate results
// without parsing text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"invisispec/internal/artifact"
	"invisispec/internal/runner"
)

var (
	tol      = flag.Float64("tol", 0.10, "maximum allowed relative CPI regression vs the baseline")
	eps      = flag.Float64("eps", 0.02, "slack ratio for shape (ordering) comparisons")
	jsonPath = flag.String("json", "", "write the benchdiff-verdict/v1 JSON document here (\"-\" = stdout)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol f] [-eps f] [-json out.json] baseline.json candidate.json")
		os.Exit(2)
	}
	base := load(flag.Arg(0))
	cand := load(flag.Arg(1))

	v := runner.CompareBench(base, cand, *tol, *eps)
	writeVerdict(v)

	if failed := v.Failed(); len(failed) > 0 {
		for _, c := range failed {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL: %s: %s\n", c.Key, c.Detail)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %d problem(s) comparing %q against baseline %q\n",
			v.Problems, cand.Name, base.Name)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok — %d candidate runs, %d baseline runs, %d checks, shape holds, CPI within %.0f%%\n",
		len(cand.Runs), len(base.Runs), len(v.Checks), *tol*100)
}

func load(path string) *runner.Bench {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	defer f.Close()
	b, err := runner.ReadBenchJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
		os.Exit(1)
	}
	return b
}

// writeVerdict emits the -json document. It is written before the text
// report and the exit decision so a failing gate still lands its verdict
// artifact (CI uploads it either way).
func writeVerdict(v *runner.DiffVerdict) {
	if *jsonPath == "" {
		return
	}
	emit := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	var err error
	if *jsonPath == "-" {
		err = emit(os.Stdout)
	} else {
		err = artifact.Write(*jsonPath, emit)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
