// Command benchdiff is the CI regression gate: it compares two bench-JSON
// artifacts (see internal/runner) and exits non-zero when the candidate's
// results are unacceptable against the baseline.
//
//	benchdiff [-tol 0.10] [-eps 0.02] BENCH_baseline.json BENCH_candidate.json
//
// Two families of checks run:
//
//   - Shape fidelity (candidate only): within every (workload, consistency,
//     fault-seed) group that carries every registered defense, the insecure
//     Base must be the fastest config; and averaged across each
//     consistency model's complete groups (the figures' bottom rows),
//     InvisiSpec-Spectre must beat Fence-Spectre and InvisiSpec-Future must
//     beat Fence-Future. The IS-vs-fence ordering is checked on the average
//     rather than per workload because the paper's own per-benchmark bars
//     invert on memory-bound kernels (validation-heavy mcf/omnetpp-style
//     rows) while the headline average holds. A shape inversion means the
//     reproduction no longer reproduces, no matter how fast it got. -eps is
//     the slack ratio for near-ties.
//
//   - Performance regression (candidate vs baseline): every baseline run
//     must exist in the candidate, must have succeeded, and its CPI must
//     not exceed the baseline's by more than -tol. The simulator is fully
//     deterministic, so on unchanged timing models the CPIs match exactly;
//     the tolerance only admits intentional model changes small enough to
//     keep the figures honest.
//
// All violations are reported (not just the first) before the non-zero exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"invisispec/internal/config"
	"invisispec/internal/runner"
)

var (
	tol = flag.Float64("tol", 0.10, "maximum allowed relative CPI regression vs the baseline")
	eps = flag.Float64("eps", 0.02, "slack ratio for shape (ordering) comparisons")
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol f] [-eps f] baseline.json candidate.json")
		os.Exit(2)
	}
	base := load(flag.Arg(0))
	cand := load(flag.Arg(1))

	var problems []string
	problems = append(problems, shapeProblems(cand)...)
	problems = append(problems, regressionProblems(base, cand)...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", p)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %d problem(s) comparing %q against baseline %q\n",
			len(problems), cand.Name, base.Name)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok — %d candidate runs, %d baseline runs, shape holds, CPI within %.0f%%\n",
		len(cand.Runs), len(base.Runs), *tol*100)
}

func load(path string) *runner.Bench {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	defer f.Close()
	b, err := runner.ReadBenchJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
		os.Exit(1)
	}
	return b
}

// groupKey is one normalization group.
type groupKey struct {
	workload, cm string
	seed         int64
}

func (k groupKey) String() string {
	return fmt.Sprintf("%s/%s/seed%d", k.workload, k.cm, k.seed)
}

// shapeProblems verifies the paper's qualitative ordering inside the
// candidate artifact.
func shapeProblems(cand *runner.Bench) []string {
	groups := make(map[groupKey]map[string]runner.BenchRun)
	for _, r := range cand.Runs {
		if r.Error != "" {
			continue // reported by the regression pass
		}
		k := groupKey{r.Workload, r.Consistency, r.FaultSeed}
		if groups[k] == nil {
			groups[k] = make(map[string]runner.BenchRun, 5)
		}
		groups[k][r.Defense] = r
	}
	var problems []string
	// Per consistency model: sum of normalized times per defense and the
	// number of complete groups, for the figures' average rows.
	avgSum := make(map[string]map[config.Defense]float64)
	avgN := make(map[string]int)
	for _, k := range sortedGroupKeys(groups) {
		g := groups[k]
		if len(g) < len(config.AllDefenses()) {
			continue // partial matrix (e.g. table6 artifacts): nothing to order
		}
		base := g[config.Base.String()]
		if avgSum[k.cm] == nil {
			avgSum[k.cm] = make(map[config.Defense]float64, 5)
		}
		avgN[k.cm]++
		for _, d := range config.AllDefenses() {
			r := g[d.String()]
			if base.CPI > 0 {
				avgSum[k.cm][d] += r.CPI / base.CPI
			}
			if d != config.Base && base.CPI > r.CPI*(1+*eps) {
				problems = append(problems, fmt.Sprintf(
					"%s: shape inverted: insecure Base (CPI %.4f) slower than %s (CPI %.4f)",
					k, base.CPI, d, r.CPI))
			}
		}
	}
	for _, cm := range []string{config.TSO.String(), config.RC.String()} {
		n := avgN[cm]
		if n == 0 {
			continue
		}
		avg := func(d config.Defense) float64 { return avgSum[cm][d] / float64(n) }
		check := func(is, fence config.Defense, why string) {
			if avg(is) > avg(fence)*(1+*eps) {
				problems = append(problems, fmt.Sprintf(
					"%s average over %d workloads: shape inverted: %s (%.3fx) slower than %s (%.3fx) — %s",
					cm, n, is, avg(is), fence, avg(fence), why))
			}
		}
		check(config.ISSpectre, config.FenceSpectre, "InvisiSpec must beat fences for the Spectre threat model")
		check(config.ISFuture, config.FenceFuture, "InvisiSpec must beat fences for the futuristic threat model")
	}
	return problems
}

// regressionProblems compares the candidate's runs against the baseline's.
func regressionProblems(base, cand *runner.Bench) []string {
	var problems []string
	candByKey := cand.RunsByKey()
	baseByKey := base.RunsByKey()
	for _, key := range base.SortedRunKeys() {
		b := baseByKey[key]
		if b.Error != "" {
			continue // a broken baseline run gates nothing
		}
		c, ok := candByKey[key]
		switch {
		case !ok:
			problems = append(problems, fmt.Sprintf("%s: present in baseline, missing from candidate", key))
		case c.Error != "":
			problems = append(problems, fmt.Sprintf("%s: candidate run failed: %s", key, c.Error))
		case c.Instructions == 0:
			problems = append(problems, fmt.Sprintf("%s: candidate run retired no instructions", key))
		case c.CPI > b.CPI*(1+*tol):
			problems = append(problems, fmt.Sprintf(
				"%s: CPI regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
				key, b.CPI, c.CPI, 100*(c.CPI/b.CPI-1), *tol*100))
		}
	}
	return problems
}

// sortedGroupKeys returns the groups in deterministic report order.
func sortedGroupKeys(groups map[groupKey]map[string]runner.BenchRun) []groupKey {
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}
