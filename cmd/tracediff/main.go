// Command tracediff records the committed-instruction stream of one
// registered workload under two processor configurations and verifies
// they are architecturally identical — the defenses must change timing,
// never semantics. It can also persist replayable ispectr2 traces for
// offline regression pinning, and diff a live run against a saved trace.
//
//	tracediff -workload sjeng -a Base -b IS-Fu -n 20000
//	tracediff -workload canneal -a Base -record canneal.trace
//	tracediff -workload hmmer -a Base -record base.trace
//	tracediff -workload hmmer -a IS-Fu -file base.trace
//
// Any registry workload works — built-in SPEC/PARSEC kernels, attack
// gadgets, or traces imported with -import (see traceconv). Multi-core
// workloads diff core by core; note that a racy multi-core program's
// architectural stream depends on the interleaving, so a cross-config
// divergence on one is a property of the program, not a simulator bug —
// the single-core kernels are the semantics gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"invisispec/internal/config"
	"invisispec/internal/harness"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "sjeng", "registered workload name (see invisisim -list)")
		cfgA   = flag.String("a", "Base", "first defense configuration")
		cfgB   = flag.String("b", "IS-Fu", "second defense configuration (ignored with -record or -file)")
		cmName = flag.String("consistency", "TSO", "consistency model: TSO | RC")
		n      = flag.Uint64("n", 20000, "instructions to record per core")
		record = flag.String("record", "", "write configuration A's replayable trace to this file and exit")
		file   = flag.String("file", "", "diff configuration A against this saved trace instead of a second live run")
		impDir = flag.String("import", "", "import *.trace files from this directory as workloads first")
	)
	check(workload.ImportFromEnv())
	flag.Parse()

	if *impDir != "" {
		_, err := workload.ImportDir(*impDir)
		check(err)
	}
	w, err := workload.Lookup(*name)
	check(err)
	cm, err := config.ParseConsistency(*cmName)
	check(err)

	a, err := recordTrace(w, *cfgA, cm, *n)
	check(err)

	switch {
	case *record != "":
		check(trace.WriteFile(*record, a))
		fmt.Printf("recorded %d commits of %s under %s to %s\n", total(a), w.Name(), *cfgA, *record)
	case *file != "":
		b, err := trace.ReadFile(*file)
		check(err)
		diff(a, b, *cfgA, *file)
	default:
		b, err := recordTrace(w, *cfgB, cm, *n)
		check(err)
		diff(a, b, *cfgA, *cfgB)
	}
}

// diff compares the two traces' architectural streams core by core over
// their common prefix and exits non-zero on the first divergence.
func diff(a, b *trace.Trace, nameA, nameB string) {
	if len(a.Events) != len(b.Events) {
		check(fmt.Errorf("core-count mismatch: %s has %d, %s has %d",
			nameA, len(a.Events), nameB, len(b.Events)))
	}
	compared := 0
	for c := range a.Events {
		ea, eb := a.Events[c], b.Events[c]
		m := len(ea)
		if len(eb) < m {
			m = len(eb)
		}
		if i, why := trace.Diff(ea[:m], eb[:m]); i != -1 {
			fmt.Printf("DIVERGENCE core %d commit %d: %s\n", c, i, why)
			os.Exit(1)
		}
		compared += m
	}
	fmt.Printf("%s: %s and %s commit identical architectural streams (%d instructions compared)\n",
		a.Name, nameA, nameB, compared)
}

// recordTrace runs the workload live under the named defense and captures
// its replayable trace via the shared harness recorder.
func recordTrace(w workload.Workload, cfg string, cm config.Consistency, n uint64) (*trace.Trace, error) {
	d, err := config.ParseDefense(cfg)
	if err != nil {
		return nil, err
	}
	cores := w.DefaultCores()
	progs, err := w.Programs(cores)
	if err != nil {
		return nil, err
	}
	run := config.Run{Machine: config.Default(cores), Defense: d, Consistency: cm}
	return harness.Record(run, w.Name(), progs, n)
}

func total(t *trace.Trace) int {
	n := 0
	for _, evs := range t.Events {
		n += len(evs)
	}
	return n
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(1)
	}
}
