// Command tracediff records the committed-instruction stream of one
// workload under two processor configurations and verifies they are
// architecturally identical — the defenses must change timing, never
// semantics. It can also persist traces for offline regression pinning.
//
//	tracediff -workload sjeng -a Base -b IS-Fu -n 20000
//	tracediff -workload hmmer -a Base -record base.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "sjeng", "SPEC kernel name")
		cfgA   = flag.String("a", "Base", "first configuration")
		cfgB   = flag.String("b", "IS-Fu", "second configuration (ignored with -record)")
		n      = flag.Uint64("n", 20000, "instructions to record")
		record = flag.String("record", "", "write configuration A's trace to this file and exit")
	)
	flag.Parse()

	prog, err := workload.SPEC(*name)
	check(err)

	a, err := recordTrace(*cfgA, prog, *n)
	check(err)

	if *record != "" {
		f, err := os.Create(*record)
		check(err)
		w, err := trace.NewWriter(f)
		check(err)
		for _, ev := range a {
			w.Append(core.CommitEvent{
				Cycle: ev.Cycle, PC: ev.PC, Inst: isa.Inst{Op: ev.Op},
				WroteReg: ev.WroteReg, Reg: ev.Reg, RegValue: ev.RegValue,
				Fault: ev.Fault,
			})
		}
		check(w.Flush())
		check(f.Close())
		fmt.Printf("recorded %d commits of %s under %s to %s\n", len(a), *name, *cfgA, *record)
		return
	}

	b, err := recordTrace(*cfgB, prog, *n)
	check(err)
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	if i, why := trace.Diff(a[:m], b[:m]); i != -1 {
		fmt.Printf("DIVERGENCE at commit %d: %s\n", i, why)
		os.Exit(1)
	}
	fmt.Printf("%s: %s and %s commit identical architectural streams (%d instructions compared)\n",
		*name, *cfgA, *cfgB, m)
}

func recordTrace(cfg string, prog *isa.Program, n uint64) ([]trace.Event, error) {
	var d config.Defense
	found := false
	for _, c := range config.AllDefenses() {
		if c.String() == cfg {
			d, found = c, true
		}
	}
	if !found {
		return nil, fmt.Errorf("unknown configuration %q", cfg)
	}
	run := config.Run{Machine: config.Default(1), Defense: d, Consistency: config.TSO}
	m, err := sim.New(run, []*isa.Program{prog})
	if err != nil {
		return nil, err
	}
	var out []trace.Event
	m.Cores[0].SetTracer(func(ev core.CommitEvent) {
		out = append(out, trace.Event{
			Cycle: ev.Cycle, PC: ev.PC, Op: ev.Inst.Op,
			WroteReg: ev.WroteReg, Reg: ev.Reg, RegValue: ev.RegValue,
			Fault: ev.Fault,
		})
	})
	if err := m.RunInstructions(n, n*600); err != nil {
		return nil, err
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(1)
	}
}
