// Command invisisim runs one workload on one simulated processor
// configuration and prints an execution report: cycles, IPC, squash
// breakdown, InvisiSpec validation/exposure statistics, traffic by class.
//
// Examples:
//
//	invisisim -workload sjeng -defense IS-Fu -consistency TSO
//	invisisim -workload canneal -cores 8 -defense Base
//	invisisim -workload mcf -defense IS-Sp -check -faultseed 7
//	invisisim -print-config
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/engine"
	"invisispec/internal/harness"
	"invisispec/internal/invariant"
	"invisispec/internal/sim"
	"invisispec/internal/stats"
	"invisispec/internal/workload"
)

func main() {
	var (
		name        = flag.String("workload", "sjeng", "SPEC or PARSEC kernel name (see -list)")
		defense     = flag.String("defense", "Base", "defense scheme name (see -listdefenses)")
		consistency = flag.String("consistency", "TSO", "TSO | RC")
		warmup      = flag.Uint64("warmup", 20000, "warmup instructions (excluded from stats)")
		measure     = flag.Uint64("measure", 100000, "measured instructions")
		list        = flag.Bool("list", false, "list workloads and exit")
		listDef     = flag.Bool("listdefenses", false, "list registered defense schemes (one name per line) and exit")
		printConfig = flag.Bool("print-config", false, "print the Table IV machine parameters and exit")
		traceN      = flag.Int("trace", 0, "print the first N committed instructions of core 0")
		jsonOut     = flag.Bool("json", false, "emit the measured counters as JSON instead of text")
		doCheck     = flag.Bool("check", false, "run the hardening layer's invariant checkers and forward-progress watchdog during the run")
		checkEvery  = flag.Uint64("checkevery", 4096, "cycles between invariant sweeps (with -check)")
		faultSeed   = flag.Int64("faultseed", 0, "non-zero: inject deterministic NoC/DRAM timing faults with this seed")
		timeout     = flag.Duration("timeout", 0, "non-zero: abort the run after this much host wall-clock time (cooperative, via the simulation loop)")
		kernelName  = flag.String("kernel", "fast", "simulation kernel: fast (quiescence-aware fast-forward) | stepped (cycle-by-cycle reference); both produce identical results")
		importDir   = flag.String("import", "", "import *.trace files from this directory as workloads before resolving -workload")
	)
	check(workload.ImportFromEnv())
	flag.Parse()

	if *importDir != "" {
		_, err := workload.ImportDir(*importDir)
		check(err)
	}
	if *list {
		fmt.Println("SPEC-like kernels (1 core):")
		for _, n := range workload.SuiteNames(false) {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("PARSEC-like kernels (8 cores):")
		for _, n := range workload.SuiteNames(true) {
			fmt.Printf("  %s\n", n)
		}
		var rest []workload.Workload
		for _, w := range workload.All() {
			if w.Class() != workload.ClassBench {
				rest = append(rest, w)
			}
		}
		if len(rest) > 0 {
			fmt.Println("other workloads:")
			for _, w := range rest {
				fmt.Printf("  %s (%s, %d core(s))\n", w.Name(), w.Class(), w.DefaultCores())
			}
		}
		return
	}
	if *listDef {
		// Bare names on stdout: CI generates its defense-matrix strategy
		// from this output, so it must stay machine-readable.
		for _, d := range config.AllDefenses() {
			fmt.Println(d)
		}
		return
	}
	if *printConfig {
		printMachine(config.Default(1))
		return
	}

	d, err := parseDefense(*defense)
	check(err)
	cm, err := parseConsistency(*consistency)
	check(err)
	kernel, err := engine.ParseKernel(*kernelName)
	check(err)

	w, err := workload.Lookup(*name)
	check(err)

	if *traceN > 0 {
		// The trace loop steps one cycle at a time by construction (it needs
		// every commit event in order), so -kernel does not apply there.
		check(traceRun(w, d, cm, *traceN, *doCheck, *checkEvery, *faultSeed, *timeout))
		return
	}
	opts := []harness.Option{harness.WithKernel(kernel)}
	if *doCheck {
		opts = append(opts, harness.WithChecking(invariant.Options{Interval: *checkEvery}))
	}
	if *faultSeed != 0 {
		opts = append(opts, harness.WithFaultSeed(*faultSeed))
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts = append(opts, harness.WithContext(ctx))
	}
	r, err := harness.MeasureWorkload(*name, d, cm, *warmup, *measure, opts...)
	check(err)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(struct {
			Workload     string
			Defense      string
			Consistency  string
			Cycles       uint64
			Instructions uint64
			CPI          float64
			Traffic      [stats.NumTrafficClasses]uint64
			Core         stats.Core
			DRAMReads    uint64
			LLCSBRate    float64
		}{
			Workload: r.Workload, Defense: d.String(), Consistency: cm.String(),
			Cycles: r.Cycles, Instructions: r.Instructions, CPI: r.CPI(),
			Traffic: r.Traffic, Core: r.Core, DRAMReads: r.DRAMReads,
			LLCSBRate: r.LLCSBRate,
		}))
		return
	}
	report(r)
}

// traceRun executes the workload printing core 0's first n committed
// instructions — a quick way to see the architectural execution. The
// hardening flags apply here too (a violation aborts the trace), as does
// -timeout (the manual step loop polls the deadline at the same stride the
// harness path does).
func traceRun(w workload.Workload, d config.Defense, cm config.Consistency, n int, doCheck bool, checkEvery uint64, faultSeed int64, timeout time.Duration) error {
	cores := w.DefaultCores()
	progs, err := w.Programs(cores)
	if err != nil {
		return err
	}
	run := config.Run{Machine: config.Default(cores), Defense: d, Consistency: cm}
	m, err := sim.New(run, progs)
	if err != nil {
		return err
	}
	if faultSeed != 0 {
		m.SeedFaults(faultSeed)
	}
	stride := uint64(0)
	if doCheck {
		// The trace loop steps manually, so sweep at the registry's stride
		// by hand (the run-loop helpers do this themselves).
		stride = m.EnableChecking(invariant.Options{Interval: checkEvery}).Interval()
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	left := n
	m.Cores[0].SetTracer(func(ev core.CommitEvent) {
		if left <= 0 {
			return
		}
		left--
		w := ""
		if ev.WroteReg {
			w = fmt.Sprintf("   r%d <- %#x", ev.Reg, ev.RegValue)
		}
		if ev.Fault {
			w = "   FAULT"
		}
		fmt.Printf("cyc %8d  #%-6d pc %4d  %-28s%s"+"\n", ev.Cycle, ev.Seq, ev.PC, ev.Inst.String(), w)
	})
	for left > 0 && !m.Done() && m.Cycle() < 10_000_000 {
		m.Step()
		if m.Cycle()%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("trace aborted at cycle %d: %w", m.Cycle(), err)
			}
		}
		if stride > 0 && m.Cycle()%stride == 0 {
			if err := m.CheckNow(); err != nil {
				return err
			}
		}
	}
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "invisisim:", err)
		os.Exit(1)
	}
}

func parseDefense(s string) (config.Defense, error) {
	return config.ParseDefense(s)
}

func parseConsistency(s string) (config.Consistency, error) {
	switch s {
	case "TSO":
		return config.TSO, nil
	case "RC":
		return config.RC, nil
	}
	return 0, fmt.Errorf("unknown consistency model %q", s)
}

func report(r harness.Result) {
	c := r.Core
	fmt.Printf("workload      %s on %s\n", r.Workload, r.Run)
	fmt.Printf("instructions  %d (measured window)\n", r.Instructions)
	fmt.Printf("cycles        %d   CPI %.3f\n", r.Cycles, r.CPI())
	fmt.Printf("branches      %d retired, %.2f%% mispredicted\n",
		c.CondBranches, 100*c.MispredictRate())
	fmt.Printf("loads/stores  %d / %d   L1D miss rate %.2f%%   TLB misses %d (%d walks delayed)\n",
		c.LoadsRetired, c.StoresRetired,
		100*float64(c.L1DMisses)/float64(maxu(c.L1DHits+c.L1DMisses, 1)),
		c.TLBMisses, c.TLBWalksDelayed)
	fmt.Printf("squashes      %.0f per 1M instructions:\n", c.SquashesPerMInst())
	for rn := stats.SquashReason(0); rn < stats.NumSquashReasons; rn++ {
		if c.Squashes[rn] > 0 {
			fmt.Printf("  %-22s %d\n", rn.String(), c.Squashes[rn])
		}
	}
	if r.Run.Defense.UsesInvisiSpec() {
		total := c.Exposures + c.Validations()
		fmt.Printf("invisispec    %d USLs issued, %d SB reuses\n", c.USLsIssued, c.SBReuseHits)
		fmt.Printf("  exposures %d (%.1f%%)  validations %d L1-hit / %d L1-miss  failures %d\n",
			c.Exposures, 100*float64(c.Exposures)/float64(maxu(total, 1)),
			c.ValidationsL1Hit, c.ValidationsL1Miss, c.ValidationFailures)
		fmt.Printf("  validation stall %d cycles   LLC-SB hit rate %.1f%%   interrupts delayed %d\n",
			c.ValidationStall, 100*r.LLCSBRate, c.InterruptsDelayed)
	}
	fmt.Printf("traffic       %d bytes total (%.1f B/instr)\n",
		r.TotalTraffic(), float64(r.TotalTraffic())/float64(r.Instructions))
	for tc := stats.TrafficClass(0); tc < stats.NumTrafficClasses; tc++ {
		if r.Traffic[tc] > 0 {
			fmt.Printf("  %-16s %12d bytes\n", tc.String(), r.Traffic[tc])
		}
	}
	fmt.Printf("dram reads    %d\n", r.DRAMReads)
}

func printMachine(m config.Machine) {
	fmt.Printf("Simulated architecture (paper Table IV)\n")
	fmt.Printf("  cores             %d at %.1f GHz\n", m.Cores, m.ClockGHz)
	fmt.Printf("  core              %d-issue OoO, %d-entry ROB, %d LQ, %d SQ, %d WB\n",
		m.IssueWidth, m.ROBEntries, m.LQEntries, m.SQEntries, m.WBEntries)
	fmt.Printf("  branch predictor  tournament, %d BTB entries, %d RAS entries\n",
		m.Bpred.BTBEntries, m.Bpred.RASEntries)
	fmt.Printf("  L1I               %dKB %d-way, %d-cycle RT\n", m.L1I.SizeBytes>>10, m.L1I.Ways, m.L1I.LatencyRT)
	fmt.Printf("  L1D               %dKB %d-way, %d-cycle RT, %d ports\n", m.L1D.SizeBytes>>10, m.L1D.Ways, m.L1D.LatencyRT, m.L1D.Ports)
	fmt.Printf("  L2 (shared)       %dMB/bank %d-way, %d-cycle local RT\n", m.L2.SizeBytes>>20, m.L2.Ways, m.L2LocalRT)
	fmt.Printf("  network           %dx%d mesh, %d-bit links, %d cycle/hop\n", m.MeshW, m.MeshH, m.LinkBytes*8, m.HopLatency)
	fmt.Printf("  coherence         directory-based MESI (+ Spec-GetS)\n")
	fmt.Printf("  DRAM              %d-cycle RT after L2\n", m.DRAMLatency)
	fmt.Printf("  D-TLB             %d entries, %d-cycle walk\n", m.TLBEntries, m.PageWalkLatency)
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
