// Command traceconv records, inspects, and verifies replayable ispectr2
// traces — the import/export frontend of the workload registry.
//
// Record a workload from the golden interpreter (the default source: the
// architectural reference, independent of any timing model):
//
//	traceconv -record hmmer -name hmmer-replay -n 8000 -o corpus/hmmer-replay.trace
//
// Record from a live simulator run instead (captures real commit cycles,
// and is the only source for multi-core workloads):
//
//	traceconv -record canneal -live -defense IS-Fu -consistency RC -n 5000 -o canneal.trace
//
// Inspect and admission-check existing traces:
//
//	traceconv -info corpus/*.trace
//	traceconv -verify corpus/*.trace
//
// A verified trace imports via -import on benchtable, leakscan,
// conformfuzz, simserver, or invisisim (workload.ImportDir), joining
// every matrix as a first-class workload under its recorded name.
package main

import (
	"flag"
	"fmt"
	"os"

	"invisispec/internal/config"
	"invisispec/internal/engine"
	"invisispec/internal/harness"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

func main() {
	var (
		record      = flag.String("record", "", "record this registered workload (see invisisim -list) as a trace")
		name        = flag.String("name", "", "trace/workload name to record under (default: the source workload's name; pick a distinct name to import alongside the built-in)")
		n           = flag.Uint64("n", 20000, "instructions to record per core (looping kernels record exactly this many; halting programs may record fewer)")
		out         = flag.String("o", "", "output file (default: <name>.trace)")
		live        = flag.Bool("live", false, "record from a live simulator run instead of the golden interpreter (required for multi-core workloads)")
		defense     = flag.String("defense", "Base", "defense scheme for -live recording")
		consistency = flag.String("consistency", "TSO", "consistency model for -live recording: TSO | RC")
		kernelName  = flag.String("kernel", "fast", "simulation kernel for -live recording: fast | stepped")
		info        = flag.Bool("info", false, "print a summary of each trace file argument and exit")
		verify      = flag.Bool("verify", false, "run the import admission gates on each trace file argument and exit")
	)
	check(workload.ImportFromEnv())
	flag.Parse()

	switch {
	case *info:
		for _, path := range flag.Args() {
			t, err := trace.ReadFile(path)
			check(err)
			printInfo(path, t)
		}
	case *verify:
		if flag.NArg() == 0 {
			check(fmt.Errorf("-verify needs trace file arguments"))
		}
		for _, path := range flag.Args() {
			if _, err := workload.LoadTraceFile(path); err != nil {
				check(err)
			}
			fmt.Printf("%s: ok\n", path)
		}
	case *record != "":
		check(doRecord(*record, *name, *out, *n, *live, *defense, *consistency, *kernelName))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(source, name, out string, n uint64, live bool, defense, consistency, kernelName string) error {
	w, err := workload.Lookup(source)
	if err != nil {
		return err
	}
	if name == "" {
		name = w.Name()
	}
	if out == "" {
		out = name + ".trace"
	}
	cores := w.DefaultCores()
	progs, err := w.Programs(cores)
	if err != nil {
		return err
	}
	var t *trace.Trace
	if live {
		d, err := config.ParseDefense(defense)
		if err != nil {
			return err
		}
		cm, err := config.ParseConsistency(consistency)
		if err != nil {
			return err
		}
		kernel, err := engine.ParseKernel(kernelName)
		if err != nil {
			return err
		}
		run := config.Run{Machine: config.Default(cores), Defense: d, Consistency: cm}
		t, err = harness.Record(run, name, progs, n, harness.WithKernel(kernel))
		if err != nil {
			return err
		}
	} else {
		if cores != 1 {
			return fmt.Errorf("traceconv: %q is %d-core; the golden interpreter records single-core workloads only (use -live)", source, cores)
		}
		t, _ = trace.RecordInterp(name, progs[0], n)
	}
	if err := trace.WriteFile(out, t); err != nil {
		return err
	}
	// Round-trip the admission gates immediately: a recording traceconv
	// cannot re-import is a bug worth failing loudly at record time.
	if _, err := workload.LoadTraceFile(out); err != nil {
		return fmt.Errorf("recorded trace fails its own import gates: %w", err)
	}
	total := 0
	for _, evs := range t.Events {
		total += len(evs)
	}
	fmt.Printf("%s: %d core(s), %d committed instruction(s) -> %s\n", name, len(t.Programs), total, out)
	return nil
}

func printInfo(path string, t *trace.Trace) {
	if t.Programs == nil {
		fmt.Printf("%s: ispectr1 (events only, not replayable), %d event(s)\n", path, len(t.Events[0]))
		return
	}
	fmt.Printf("%s: ispectr2 %q, %d core(s)\n", path, t.Name, len(t.Programs))
	for c, p := range t.Programs {
		var memBytes int
		for _, ch := range p.InitMem {
			memBytes += len(ch.Data)
		}
		evs := t.Events[c]
		last := uint64(0)
		if len(evs) > 0 {
			last = evs[len(evs)-1].Cycle
		}
		fmt.Printf("  core %d: program %q, %d inst(s), %d init-mem byte(s); %d event(s), last cycle %d\n",
			c, p.Name, len(p.Insts), memBytes, len(evs), last)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}
