package main

// The graceful-shutdown test uses the exec-helper pattern (like the campaign
// isolation tests): the test binary re-execs itself into realMain, the
// parent submits a job over HTTP, sends SIGTERM mid-job, and asserts the
// drain semantics — clean exit, persisted cache index, and a warm restart
// that re-runs only the refused cells.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestHelperServer is not a test: it is the server process body.
func TestHelperServer(t *testing.T) {
	if os.Getenv("SIMSERVER_TEST_MAIN") == "" {
		t.Skip("server-process helper; runs only via re-exec")
	}
	args := strings.Split(os.Getenv("SIMSERVER_TEST_ARGS"), "\x1f")
	os.Exit(realMain(args, os.Stdout, os.Stderr))
}

// server wraps one re-exec'd simserver process.
type server struct {
	cmd  *exec.Cmd
	addr string
	errb *bytes.Buffer
}

func startServer(t *testing.T, cacheDir string) *server {
	t.Helper()
	args := []string{"-addr", "127.0.0.1:0", "-cache", cacheDir, "-workers", "1",
		"-journal-dir", filepath.Join(cacheDir, "journals")}
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperServer$")
	cmd.Env = append(os.Environ(),
		"SIMSERVER_TEST_MAIN=1",
		"SIMSERVER_TEST_ARGS="+strings.Join(args, "\x1f"))
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errb := &bytes.Buffer{}
	cmd.Stderr = errb
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting server process: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		cmd.Wait()
		t.Fatalf("no startup line; stderr:\n%s", errb)
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	go func() { // keep draining stdout so the child never blocks on it
		for sc.Scan() {
		}
	}()
	return &server{cmd: cmd, addr: line[i+len(marker):], errb: errb}
}

func (s *server) url(path string) string { return "http://" + s.addr + path }

// slowSweep is a 3-cell matrix with a budget big enough that SIGTERM lands
// mid-job (workers=1 runs the cells sequentially).
const slowSweep = `{"type":"sweep","name":"t","workloads":["bzip2"],` +
	`"defenses":["Base","Fe-Sp","IS-Sp"],"consistency":["TSO"],` +
	`"warmup":1000,"measure":100000}`

type status struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Progress struct {
		Completed int `json:"completed"`
		Total     int `json:"total"`
	} `json:"progress"`
	Cache struct {
		Hits   int `json:"hits"`
		Misses int `json:"misses"`
	} `json:"cache"`
	Error string `json:"error"`
}

func (s *server) submit(t *testing.T, body string) status {
	t.Helper()
	resp, err := http.Post(s.url("/api/v1/jobs"), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	return st
}

func (s *server) status(t *testing.T, id string) status {
	t.Helper()
	resp, err := http.Get(s.url("/api/v1/jobs/" + id))
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func TestGracefulShutdownMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec server test")
	}
	cacheDir := t.TempDir()
	srv := startServer(t, cacheDir)

	job := srv.submit(t, slowSweep)

	// Wait until the first cell has completed — the job is mid-flight — then
	// signal.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("first cell never completed; stderr:\n%s", srv.errb)
		}
		if st := srv.status(t, job.ID); st.Progress.Completed >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv.cmd.Wait(); err != nil {
		t.Fatalf("server exit: %v; stderr:\n%s", err, srv.errb)
	}

	// The drain persisted the cache index and journaled the finished cells.
	if _, err := os.Stat(filepath.Join(cacheDir, "index.json")); err != nil {
		t.Errorf("cache index not persisted: %v", err)
	}
	if _, err := os.Stat(filepath.Join(cacheDir, "journals", job.ID+".jsonl")); err != nil {
		t.Errorf("job journal not written: %v", err)
	}

	// Warm restart over the same cache: the resubmitted job re-runs only the
	// refused cells; everything that finished before the drain is a hit.
	srv2 := startServer(t, cacheDir)
	job2 := srv2.submit(t, slowSweep)
	for {
		st := srv2.status(t, job2.ID)
		switch st.State {
		case "done":
			if st.Cache.Hits < 1 {
				t.Errorf("warm restart hits = %d, want >=1", st.Cache.Hits)
			}
			if st.Cache.Hits+st.Cache.Misses != 3 {
				t.Errorf("hits+misses = %d+%d, want 3", st.Cache.Hits, st.Cache.Misses)
			}
			goto shutdown
		case "failed", "interrupted":
			t.Fatalf("resubmitted job %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline.Add(3 * time.Minute)) {
			t.Fatalf("resubmitted job never finished; stderr:\n%s", srv2.errb)
		}
		time.Sleep(20 * time.Millisecond)
	}
shutdown:
	// Idle SIGTERM: clean, prompt exit.
	if err := srv2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv2.cmd.Wait(); err != nil {
		t.Fatalf("idle shutdown exit: %v; stderr:\n%s", err, srv2.errb)
	}
	if !bytes.Contains(srv2.errb.Bytes(), []byte("draining")) {
		t.Error("drain log line missing")
	}
}
