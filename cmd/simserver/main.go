// Command simserver runs the simulation-as-a-service HTTP job server
// (internal/serve): clients POST sweep, leakage-scan, or conformance job
// requests, the server shards cells across a bounded worker pool, memoizes
// every cell in a content-addressed on-disk cache, and serves artifacts,
// benchdiff verdicts, metrics, and the HTML dashboard.
//
//	simserver -addr :8080 -cache /var/cache/invisispec -baseline BENCH_baseline.json
//
// Quick start:
//
//	curl -s -X POST localhost:8080/api/v1/jobs -d '{"type":"sweep","name":"smoke"}'
//	curl -s localhost:8080/api/v1/jobs/j1
//	curl -s localhost:8080/api/v1/jobs/j1/artifact > BENCH_smoke.json
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops, new
// submissions get 503, in-flight cells finish and journal, fresh cell
// computations are refused (they re-run — mostly from cache — on
// resubmission after restart), and the cache index is persisted.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"invisispec/internal/serve"
	"invisispec/internal/workload"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable body: the signal test re-execs the test binary
// into this function and kills it mid-job.
func realMain(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("simserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cacheDir   = fs.String("cache", "simcache", "content-addressed memo cache directory")
		maxEntries = fs.Int("max-entries", 0, "cache entry bound (LRU eviction; 0 = unlimited)")
		workers    = fs.Int("workers", 0, "global compute slots (0 = GOMAXPROCS)")
		journalDir = fs.String("journal-dir", "", "per-job campaign journal directory (empty = no journals)")
		history    = fs.String("history", "", "directory of committed BENCH_*.json artifacts for the trends page")
		baseline   = fs.String("baseline", "", "bench artifact to gate sweep jobs against (benchdiff verdict)")
		retries    = fs.Int("retries", 0, "transient-failure retries per cell")
		timeout    = fs.Duration("cell-timeout", 5*time.Minute, "per-cell wall-clock timeout (0 = none)")
		drainWait  = fs.Duration("drain-timeout", 10*time.Minute, "max wait for in-flight cells on shutdown")
		impDir     = fs.String("import", "", "import *.trace files from this directory as workloads before serving")
	)
	if err := workload.ImportFromEnv(); err != nil {
		fmt.Fprintln(stderr, "simserver:", err)
		return 1
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *impDir != "" {
		if _, err := workload.ImportDir(*impDir); err != nil {
			fmt.Fprintln(stderr, "simserver:", err)
			return 1
		}
		if err := workload.SetImportDirs(*impDir); err != nil {
			fmt.Fprintln(stderr, "simserver:", err)
			return 1
		}
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "simserver:", err)
			return 1
		}
	}

	srv, err := serve.New(serve.Options{
		Workers:         *workers,
		CacheDir:        *cacheDir,
		MaxCacheEntries: *maxEntries,
		JournalDir:      *journalDir,
		HistoryDir:      *history,
		Baseline:        *baseline,
		Retries:         *retries,
		CellTimeout:     *timeout,
		LogWriter:       stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "simserver:", err)
		return 1
	}
	expvar.Publish("simserver", expvar.Func(func() any { return srv.Metrics() }))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "simserver:", err)
		return 1
	}
	// The parseable startup line: tests and scripts read the bound address
	// from it (the -addr may be :0).
	fmt.Fprintf(stdout, "simserver listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var code int
	select {
	case <-ctx.Done():
		// Stop accepting connections, then drain: in-flight cells finish
		// and journal, the cache index is persisted.
		fmt.Fprintln(stderr, "simserver: signal received, draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "simserver:", err)
			code = 1
		}
		if err := srv.Drain(shutCtx); err != nil {
			fmt.Fprintln(stderr, "simserver:", err)
			code = 1
		}
		fmt.Fprintln(stdout, "simserver drained")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "simserver:", err)
			code = 1
		}
	}
	return code
}
