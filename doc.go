// Package invisispec is a from-scratch Go reproduction of "InvisiSpec:
// Making Speculative Execution Invisible in the Cache Hierarchy" (MICRO
// 2018): a cycle-level multicore simulator with an out-of-order core that
// executes wrong paths, a directory-MESI cache hierarchy, and the paper's
// speculative-buffer defense. See README.md for a tour, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for paper-vs-measured results.
//
// The simulator itself lives under internal/; the executables under cmd/
// (invisisim, spectre-poc, benchtable) and the programs under examples/ are
// the public surface.
package invisispec
