// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table/figure (DESIGN.md §3). Each run reports paper-comparable custom
// metrics:
//
//	cyc/instr    cycles per instruction (Figures 4 and 7 bars are the
//	             ratio of a config's cyc/instr to Base's)
//	B/instr      NoC+memory bytes per instruction (Figures 6 and 8)
//	spec-B/i     bytes from Spec-GetS transactions
//	ve-B/i       bytes from expose/validate transactions
//
// The instruction budgets are kept small so `go test -bench=.` finishes in
// minutes; cmd/benchtable runs the full-size sweeps and prints the figures
// directly.
package invisispec_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/engine"
	"invisispec/internal/harness"
	"invisispec/internal/hwcost"
	"invisispec/internal/isa"
	"invisispec/internal/runner"
	"invisispec/internal/sim"
	"invisispec/internal/stats"
	"invisispec/internal/workload"
)

const (
	benchWarmup  = 10000
	benchMeasure = 25000
)

func reportRun(b *testing.B, r harness.Result) {
	b.ReportMetric(r.CPI(), "cyc/instr")
	b.ReportMetric(float64(r.TotalTraffic())/float64(r.Instructions), "B/instr")
	b.ReportMetric(float64(r.Traffic[stats.TrafficSpecLoad])/float64(r.Instructions), "spec-B/i")
	b.ReportMetric(float64(r.Traffic[stats.TrafficValExp])/float64(r.Instructions), "ve-B/i")
	b.ReportMetric(0, "ns/op") // simulated time is the metric, not host time
}

// benchSuite runs workload x defense sub-benchmarks for one suite. Each
// sub-benchmark goes through the experiment runner (a one-job matrix), the
// same path cmd/benchtable uses, so the benches exercise what the figures
// measure.
func benchSuite(b *testing.B, names []string, parsec bool) {
	for _, name := range names {
		for _, d := range config.AllDefenses() {
			b.Run(fmt.Sprintf("%s/%s", name, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					jobs := []runner.Job{{
						Workload: name, Parsec: parsec, Defense: d,
						Consistency: config.TSO,
						Warmup:      benchWarmup, Measure: benchMeasure,
					}}
					results := runner.Run(context.Background(), jobs, runner.Options{Jobs: 1})
					if err := runner.FirstError(results); err != nil {
						b.Fatal(err)
					}
					reportRun(b, results[0].Result)
				}
			})
		}
	}
}

// BenchmarkRunnerFig4 runs the full Figure-4 TSO matrix (all SPEC kernels x
// every registered defense) through the worker pool. Host time is the metric: run with
// -cpu 1,4,8 to see the pool's wall-clock scaling on the exact workload the
// figure generator shards (the ISSUE-2 acceptance measurement).
func BenchmarkRunnerFig4(b *testing.B) {
	jobs := runner.Matrix(workload.SPECNames(), false,
		[]config.Consistency{config.TSO}, config.AllDefenses(), nil,
		benchWarmup, benchMeasure)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := runner.Run(context.Background(), jobs, runner.Options{Jobs: runtime.GOMAXPROCS(0)})
		if err := runner.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkFig4SPECTime regenerates Figure 4: per-kernel execution cost
// under the five Table V configurations (TSO). The same runs yield the
// Figure 6 traffic metrics.
func BenchmarkFig4SPECTime(b *testing.B) {
	benchSuite(b, workload.SPECNames(), false)
}

// BenchmarkFig7PARSECTime regenerates Figure 7 (and Figure 8's traffic
// metrics): the nine PARSEC-like kernels on the 8-core machine.
func BenchmarkFig7PARSECTime(b *testing.B) {
	benchSuite(b, workload.PARSECNames(), true)
}

// BenchmarkFig5Attack regenerates Figure 5: the Spectre PoC's probe-latency
// gap on Base, and its absence under IS-Sp. Metrics: secret-line and
// median probe latencies in cycles.
func BenchmarkFig5Attack(b *testing.B) {
	const secret = 84
	for _, d := range []config.Defense{config.Base, config.ISSpectre} {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run := config.Run{Machine: config.Default(1), Defense: d, Consistency: config.TSO}
				m := sim.MustNew(run, []*isa.Program{workload.SpectreV1(secret)})
				if err := m.RunToCompletion(30_000_000); err != nil {
					b.Fatal(err)
				}
				lat := workload.SpectreScanLatencies(m.Mem)
				b.ReportMetric(float64(lat[secret]), "secret-cyc")
				var sum float64
				for _, l := range lat {
					sum += float64(l)
				}
				b.ReportMetric(sum/float64(len(lat)), "mean-cyc")
				b.ReportMetric(0, "ns/op")
			}
		})
	}
}

// BenchmarkTable6Characterization reports the Table VI statistics for a
// representative kernel subset under IS-Sp and IS-Fu (TSO): exposure
// share, validation L1-hit share, squashes per 1M instructions, and the
// LLC-SB hit rate.
func BenchmarkTable6Characterization(b *testing.B) {
	names := []string{"sjeng", "libquantum", "omnetpp"}
	for _, name := range names {
		for _, d := range []config.Defense{config.ISSpectre, config.ISFuture} {
			b.Run(fmt.Sprintf("%s/%s", name, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := harness.MeasureSPEC(name, d, config.TSO, benchWarmup, benchMeasure)
					if err != nil {
						b.Fatal(err)
					}
					c := r.Core
					ve := float64(c.Exposures + c.Validations())
					if ve == 0 {
						ve = 1
					}
					b.ReportMetric(100*float64(c.Exposures)/ve, "expo%")
					b.ReportMetric(100*float64(c.ValidationsL1Hit)/ve, "valL1hit%")
					b.ReportMetric(c.SquashesPerMInst(), "sq/Minst")
					b.ReportMetric(100*r.LLCSBRate, "llcsb%")
					b.ReportMetric(0, "ns/op")
				}
			})
		}
	}
}

// BenchmarkTable7Hardware reports the analytical hardware-cost estimates
// for the two added structures.
func BenchmarkTable7Hardware(b *testing.B) {
	m := config.Default(1)
	for _, arr := range []hwcost.Array{hwcost.L1SB(m), hwcost.LLCSB(m)} {
		arr := arr
		b.Run(arr.Name, func(b *testing.B) {
			var e hwcost.Estimate
			for i := 0; i < b.N; i++ {
				e = arr.Estimate()
			}
			b.ReportMetric(e.AreaMM2*1000, "area-um2x1000")
			b.ReportMetric(e.AccessPS, "access-ps")
			b.ReportMetric(e.ReadPJ, "read-pJ")
			b.ReportMetric(e.LeakMW, "leak-mW")
		})
	}
}

// BenchmarkTable3SBPrimitives grounds Table III: the Speculative Buffer's
// primitive operations (fill an entry, validate an entry against incoming
// data, copy entry to entry) are simple line-sized moves and compares.
func BenchmarkTable3SBPrimitives(b *testing.B) {
	var sb [32][64]byte
	incoming := [64]byte{1: 7, 13: 9}
	mask := uint64(0x00FF)
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sb[i%32] = incoming
		}
	})
	b.Run("validate", func(b *testing.B) {
		match := true
		for i := 0; i < b.N; i++ {
			e := &sb[i%32]
			for bit := 0; bit < 64; bit++ {
				if mask&(1<<bit) != 0 && e[bit] != incoming[bit] {
					match = false
				}
			}
		}
		_ = match
	})
	b.Run("copy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sb[(i+1)%32] = sb[i%32]
		}
	})
}

// BenchmarkAblations quantifies the design choices DESIGN.md §5 lists by
// disabling each InvisiSpec mechanism on a memory-intensive kernel under
// IS-Fu/TSO and reporting the resulting cycles per instruction.
func BenchmarkAblations(b *testing.B) {
	mods := []struct {
		name string
		mod  func(*config.Machine)
	}{
		{"paper-design", func(m *config.Machine) {}},
		{"no-LLC-SB", func(m *config.Machine) { m.LLCSBEnabled = false }},
		{"no-VtoE-transform", func(m *config.Machine) { m.VToETransform = false }},
		{"no-early-squash", func(m *config.Machine) { m.EarlySquash = false }},
		{"no-SB-reuse", func(m *config.Machine) { m.SBReuse = false }},
		{"no-overlap", func(m *config.Machine) { m.OverlapValExp = false }},
		{"with-hw-prefetch", func(m *config.Machine) { m.HWPrefetch = true }},
		{"safe-load-annotations", func(m *config.Machine) { m.TrustSafeAnnotations = true }},
	}
	for _, mm := range mods {
		b.Run(mm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				machine := config.Default(1)
				mm.mod(&machine)
				run := config.Run{Machine: machine, Defense: config.ISFuture, Consistency: config.TSO}
				prog := workload.MustSPEC("libquantum")
				r, err := harness.Measure(run, "libquantum", []*isa.Program{prog}, benchWarmup, benchMeasure)
				if err != nil {
					b.Fatal(err)
				}
				reportRun(b, r)
			}
		})
	}
}

// BenchmarkKernelFastForward measures host wall-time of the two simulation
// kernels on a memory-bound workload (mcf: dependent pointer chase, mostly
// DRAM-latency-bound), where the quiescence-aware scheduler should skip the
// bulk of simulated cycles. Compare the fast and stepped sub-benchmarks'
// ns/op directly; the skip%% metric reports the fraction of simulated cycles
// the fast kernel jumped over. The ISSUE-4 acceptance target is fast ≥ 1.5x
// faster than stepped here.
func BenchmarkKernelFastForward(b *testing.B) {
	prog := workload.MustSPEC("mcf")
	run := config.Run{Machine: config.Default(1), Defense: config.Base, Consistency: config.TSO}
	for _, k := range []engine.Kernel{engine.KernelFast, engine.KernelStepped} {
		b.Run(k.String(), func(b *testing.B) {
			var cycles, skipped uint64
			for i := 0; i < b.N; i++ {
				m := sim.MustNew(run, []*isa.Program{prog})
				m.SetKernel(k)
				if err := m.RunInstructions(benchWarmup+benchMeasure, 50_000_000); err != nil {
					b.Fatal(err)
				}
				cycles += m.Cycle()
				_, sk := m.FastForwardStats()
				skipped += sk
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "sim-cyc/op")
			b.ReportMetric(100*float64(skipped)/float64(cycles), "skip%")
		})
	}
}

// BenchmarkSimulatorSpeed reports raw simulator throughput (host-time
// metric is meaningful here, unlike the figure benches).
func BenchmarkSimulatorSpeed(b *testing.B) {
	prog := workload.MustSPEC("hmmer")
	run := config.Run{Machine: config.Default(1), Defense: config.Base, Consistency: config.TSO}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m := sim.MustNew(run, []*isa.Program{prog})
		if err := m.RunInstructions(50000, 50_000_000); err != nil {
			b.Fatal(err)
		}
		instrs += m.Stats.TotalRetired()
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instr/s")
}
