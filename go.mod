module invisispec

go 1.22
