# Build/verification entry points. The tier-1 gate is `make check`:
# build + vet + full test suite, then the suite again under the race
# detector (the simulator is single-goroutine by design; the race run
# guards the test harnesses and any future parallelism).

GO ?= go

.PHONY: all build test vet race check bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem .
