# Build/verification entry points. The tier-1 gate is `make check`:
# build + vet + the full test suite under the race detector. The race run
# is the canonical test run — it executes every test exactly once (the
# simulator is single-goroutine by design; the race detector guards the
# parallel experiment runner and the test harnesses). `make test` remains
# for quick iteration without race instrumentation.

GO ?= go
JOBS ?= 4
BIN = bin
SMOKE_FLAGS = -fig 4 -warmup 5000 -measure 20000 -jobs $(JOBS) -quiet

.PHONY: all build tools test vet lint race check ci bench smoke benchdiff baseline leakscan leaksearch kernelcheck conform chaos serve

all: build

build:
	$(GO) build ./...

# Build the CLI gates once into $(BIN); the leakscan/conform/smoke targets
# run these binaries instead of `go run`, so one compile serves every gate.
tools:
	$(GO) build -o $(BIN)/ ./cmd/benchtable ./cmd/benchdiff ./cmd/leakscan ./cmd/conformfuzz ./cmd/simserver ./cmd/traceconv ./cmd/tracediff

vet:
	$(GO) vet ./...

# Static analysis gate: vet + gofmt cleanliness + staticcheck. staticcheck
# is skipped with a notice when the binary is absent (local machines without
# it); CI installs a pinned version so the job always runs it.
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs the pinned version)"; \
	fi

# Fast, race-free test run for local iteration.
test:
	$(GO) test ./...

# Canonical test run: the full suite under the race detector. This single
# pass already includes the kernel-equivalence oracle and the chaos
# self-tests; the kernelcheck/chaos targets below re-run just those subsets
# for focused iteration.
race:
	$(GO) test -race ./...

check: build vet race

# What CI invokes; kept separate from `check` so CI-only steps can be
# attached without changing the local gate. One race-instrumented suite
# pass (inside check) covers kernelcheck and chaos; the CLI gates reuse
# the binaries `tools` built.
ci: check lint leakscan leaksearch conform

# Resilience gate: the seeded chaos self-tests kill journaled bench,
# leakage, and conformance campaigns at randomized checkpoint appends
# (torn tail included), inject transient faults, resume, and assert the
# final deterministic payload is byte-identical to an uninterrupted run
# at 1 and 4 workers. (Also runs as part of `make race`.)
chaos:
	$(GO) test -run 'TestChaos' -count=1 ./internal/campaign ./internal/leakage ./internal/conform

bench:
	$(GO) test -bench=. -benchmem .

# Kernel-equivalence gate: the fast-forward scheduler must produce
# byte-identical fingerprints to the cycle-by-cycle reference stepper across
# the whole equivalence matrix (fault seeds, checking, interrupts included).
# (Also runs as part of `make race`.)
kernelcheck:
	$(GO) test -run 'TestKernelEquivalence|TestKernelSwitchMidRun' -count=1 ./internal/sim

# Short-budget Figure-4 sweep producing the BENCH_smoke.json artifact the
# CI regression gate compares against the committed baseline.
# -comparekernels re-runs the sweep under the stepped kernel, fails on any
# divergence, and records both kernels' wall time in the artifact's host
# block so benchdiff trajectories show the fast-forward speedup.
smoke: tools
	$(BIN)/benchtable $(SMOKE_FLAGS) -comparekernels -benchjson BENCH_smoke.json -benchname smoke

benchdiff: smoke
	$(BIN)/benchdiff BENCH_baseline.json BENCH_smoke.json

# Security regression gate: scan the fixed smoke corpus of transient
# attacks against every registered defense and fail if any secure
# configuration leaks, any expected leak (undefended Base, designed
# threat-model gaps) stops leaking, or any trial errors. Writes the
# deterministic leakage-report/v1 artifact CI uploads next to the bench
# artifact.
leakscan: tools
	$(BIN)/leakscan -corpus smoke -trials 3 -jobs $(JOBS) -json LEAKAGE_smoke.json

# Feedback-driven attack search smoke: a fixed-seed, small-budget
# hill-climb over every template class against the full defense matrix.
# Fails (exit 1) if any searched candidate leaks through a defense the
# expected-outcome matrix says blocks it. The nightly workflow runs the
# same search at a deep budget with a journaled -resume.
leaksearch: tools
	$(BIN)/leakscan -search -search-budget 3 -seed 1 -trials 2 -jobs $(JOBS) -json SEARCH_smoke.json

# Conformance-fuzzing gate: a fixed-seed campaign of generated programs
# differentially checked against the golden interpreter across the full
# defense × consistency × kernel matrix. Fails on any divergence and writes
# the deterministic conform-report/v1 artifact CI uploads. Minimized
# reproducers for past finds live in internal/conform/corpus and run with
# the normal test suite.
conform: tools
	$(BIN)/conformfuzz -seed 1 -n 200 -jobs $(JOBS) -q -shrink -json CONFORM_smoke.json

# Regenerate the committed baseline (host block omitted so the artifact is
# byte-stable across machines). Run after intentional timing-model changes,
# and sanity-check the diff before committing.
baseline: tools
	$(BIN)/benchtable $(SMOKE_FLAGS) -benchjson BENCH_baseline.json -benchname smoke -benchhost=false

# Simulation-as-a-service (DESIGN.md §14): a long-running HTTP job server
# with content-addressed cell memoization and the HTML dashboard. Sweep
# jobs are gated against the committed baseline; the trends page reads the
# committed BENCH_*.json artifacts in the repo root.
serve: tools
	$(BIN)/simserver -addr :8080 -cache .simcache -journal-dir .simcache/journals \
		-history . -baseline BENCH_baseline.json
