package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		if err := Default(n).Validate(); err != nil {
			t.Errorf("Default(%d): %v", n, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Machine)
		want string
	}{
		{"zero cores", func(m *Machine) { m.Cores = 0 }, "Cores"},
		{"too many cores", func(m *Machine) { m.Cores = 9 }, "mesh"},
		{"bad line size", func(m *Machine) { m.LineSize = 48 }, "LineSize"},
		{"zero rob", func(m *Machine) { m.ROBEntries = 0 }, "queue sizes"},
		{"lq over rob", func(m *Machine) { m.LQEntries = 500 }, "cannot exceed ROB"},
		{"bad sets", func(m *Machine) { m.L1D.SizeBytes = 3000 }, "sets"},
		{"no mshrs", func(m *Machine) { m.L1D.MSHRs = 0 }, "MSHRs"},
	}
	for _, c := range cases {
		m := Default(1)
		c.mod(&m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDefenseClassification(t *testing.T) {
	if len(AllDefenses()) != 7 {
		t.Fatalf("defense count = %d", len(AllDefenses()))
	}
	// The five Table V configurations must come first, in figure order,
	// so committed artifacts and figure columns stay stable.
	wantOrder := []Defense{Base, FenceSpectre, ISSpectre, FenceFuture, ISFuture, SpecBox, BasicBlocker}
	for i, d := range AllDefenses() {
		if d != wantOrder[i] {
			t.Errorf("AllDefenses()[%d] = %v, want %v", i, d, wantOrder[i])
		}
	}
	wantIS := map[Defense]bool{ISSpectre: true, ISFuture: true, SpecBox: true}
	wantFence := map[Defense]bool{FenceSpectre: true, FenceFuture: true}
	for _, d := range AllDefenses() {
		if d.UsesInvisiSpec() != wantIS[d] {
			t.Errorf("%v UsesInvisiSpec = %v", d, d.UsesInvisiSpec())
		}
		if d.UsesFences() != wantFence[d] {
			t.Errorf("%v UsesFences = %v", d, d.UsesFences())
		}
	}
}

func TestParseDefense(t *testing.T) {
	for _, d := range AllDefenses() {
		got, err := ParseDefense(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDefense(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDefense("NoSuchScheme"); err == nil {
		t.Error("ParseDefense accepted an unregistered name")
	}
	if _, err := Defense("NoSuchScheme").Scheme(); err == nil {
		t.Error("Scheme() resolved an unregistered name")
	}
	all, err := ParseDefenses("")
	if err != nil || len(all) != len(AllDefenses()) {
		t.Errorf("ParseDefenses(\"\") = %v, %v", all, err)
	}
	got, err := ParseDefenses(" Base , IS-Fu ")
	if err != nil || len(got) != 2 || got[0] != Base || got[1] != ISFuture {
		t.Errorf("ParseDefenses(\" Base , IS-Fu \") = %v, %v", got, err)
	}
	if _, err := ParseDefenses("Base,NoSuchScheme"); err == nil {
		t.Error("ParseDefenses accepted an unregistered name")
	}
}

func TestStrings(t *testing.T) {
	names := map[string]bool{}
	for _, d := range AllDefenses() {
		s := d.String()
		if s == "" || names[s] {
			t.Errorf("bad or duplicate defense name %q", s)
		}
		names[s] = true
	}
	if TSO.String() != "TSO" || RC.String() != "RC" {
		t.Error("consistency names wrong")
	}
	if Defense("").String() == "" || Consistency(99).String() == "" {
		t.Error("out-of-range values must still print")
	}
	r := Run{Machine: Default(1), Defense: ISFuture, Consistency: RC}
	if r.String() != "IS-Fu/RC" {
		t.Errorf("Run.String() = %q", r.String())
	}
}

func TestCacheParamsSets(t *testing.T) {
	p := CacheParams{SizeBytes: 64 << 10, Ways: 8}
	if got := p.Sets(64); got != 128 {
		t.Fatalf("Sets = %d, want 128", got)
	}
}

func TestTableIVParameters(t *testing.T) {
	// Pin the paper's Table IV values so accidental edits are caught.
	m := Default(8)
	if m.ROBEntries != 192 || m.LQEntries != 32 || m.SQEntries != 32 {
		t.Error("core queue sizes diverge from Table IV")
	}
	if m.L1D.SizeBytes != 64<<10 || m.L1D.Ways != 8 || m.L1D.Ports != 3 {
		t.Error("L1D diverges from Table IV")
	}
	if m.L1I.SizeBytes != 32<<10 || m.L1I.Ways != 4 {
		t.Error("L1I diverges from Table IV")
	}
	if m.L2.SizeBytes != 2<<20 || m.L2.Ways != 16 || m.L2LocalRT != 8 {
		t.Error("L2 diverges from Table IV")
	}
	if m.MeshW != 4 || m.MeshH != 2 || m.LinkBytes != 16 {
		t.Error("mesh diverges from Table IV")
	}
	if m.DRAMLatency != 100 {
		t.Error("DRAM latency diverges from Table IV (50 ns at 2 GHz)")
	}
	if m.Bpred.BTBEntries != 4096 || m.Bpred.RASEntries != 16 {
		t.Error("predictor diverges from Table IV")
	}
	if m.HWPrefetch {
		t.Error("Table IV lists no hardware prefetcher; default must be off")
	}
	if m.TrustSafeAnnotations {
		t.Error("the §XI optimization must be off by default")
	}
}
