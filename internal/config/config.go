// Package config defines the simulated machine parameters (Table IV of the
// paper) and the five processor configurations evaluated (Table V), plus the
// memory consistency model selection and InvisiSpec feature toggles used by
// the ablation benchmarks.
package config

import (
	"fmt"

	"invisispec/internal/bpred"
)

// Consistency selects the memory consistency model the core implements.
type Consistency int

// Consistency models evaluated in the paper.
const (
	TSO Consistency = iota // total store order (x86-like)
	RC                     // release consistency
)

// String returns the model name.
func (c Consistency) String() string {
	switch c {
	case TSO:
		return "TSO"
	case RC:
		return "RC"
	}
	return fmt.Sprintf("Consistency(%d)", int(c))
}

// Defense selects the processor configuration (Table V).
type Defense int

// The five processor configurations of Table V.
const (
	Base         Defense = iota // conventional, insecure baseline
	FenceSpectre                // fence after every indirect/conditional branch
	ISSpectre                   // InvisiSpec-Spectre
	FenceFuture                 // fence before every load
	ISFuture                    // InvisiSpec-Future
)

// String returns the short name used in the paper's figures.
func (d Defense) String() string {
	switch d {
	case Base:
		return "Base"
	case FenceSpectre:
		return "Fe-Sp"
	case ISSpectre:
		return "IS-Sp"
	case FenceFuture:
		return "Fe-Fu"
	case ISFuture:
		return "IS-Fu"
	}
	return fmt.Sprintf("Defense(%d)", int(d))
}

// AllDefenses lists the configurations in figure order.
func AllDefenses() []Defense {
	return []Defense{Base, FenceSpectre, ISSpectre, FenceFuture, ISFuture}
}

// UsesInvisiSpec reports whether the configuration uses speculative buffers.
func (d Defense) UsesInvisiSpec() bool { return d == ISSpectre || d == ISFuture }

// UsesFences reports whether the configuration inserts defensive fences.
func (d Defense) UsesFences() bool { return d == FenceSpectre || d == FenceFuture }

// CacheParams sizes one cache level.
type CacheParams struct {
	SizeBytes int
	Ways      int
	// LatencyRT is the round-trip hit latency in cycles.
	LatencyRT int
	Ports     int // accesses accepted per cycle
	MSHRs     int
}

// Sets returns the number of sets given the machine line size.
func (p CacheParams) Sets(lineSize int) int {
	return p.SizeBytes / (p.Ways * lineSize)
}

// Machine holds every structural parameter of the simulated system.
type Machine struct {
	Name     string
	Cores    int
	ClockGHz float64

	// Core (8-issue OoO per Table IV).
	FetchWidth  int
	IssueWidth  int
	RetireWidth int
	ROBEntries  int
	LQEntries   int
	SQEntries   int
	WBEntries   int // write buffer depth
	IntALUs     int
	MulDivUnits int
	// RedirectPenalty is the front-end refill bubble after a squash
	// (approximates the paper's deeper fetch pipeline).
	RedirectPenalty int
	Bpred           bpred.Config

	// Memory structure.
	LineSize int
	L1I      CacheParams
	L1D      CacheParams
	// L2 is the shared, inclusive LLC; one bank per core.
	L2            CacheParams
	L2LocalRT     int // round-trip latency to the local bank
	DRAMLatency   int // cycles after the L2 (50 ns at 2 GHz = 100)
	DRAMBandwidth int // bytes per cycle per channel

	// NoC: MeshW x MeshH mesh, 128-bit links, 1 cycle per hop.
	MeshW        int
	MeshH        int
	LinkBytes    int // bytes transferred per link per cycle
	HopLatency   int
	CtrlMsgBytes int // size of a control message on the NoC
	DataMsgBytes int // size of a data-carrying message (ctrl + line)

	// Hardware prefetcher: a confidence-ramped stream prefetcher at the
	// L1D (tagged re-arm, max distance PrefetchDegree). The paper's Table
	// IV machine has none (default false); when enabled, InvisiSpec gates
	// it on visibility (§VI-B): Spec-GetS accesses never train or trigger
	// it; demand misses, validations and exposures do.
	HWPrefetch     bool
	PrefetchDegree int

	// TLB.
	TLBEntries      int
	PageWalkLatency int

	// Execution latencies.
	LatALU, LatMul, LatDiv int

	// Interrupts: if > 0, a timer interrupt fires every this many cycles
	// (squashing the pipeline). Models the "interrupts" squash source.
	InterruptInterval int

	// InvisiSpec feature toggles (all true for the paper's design; the
	// ablation benches flip them individually).
	LLCSBEnabled  bool // per-core LLC speculative buffer (§V-F)
	VToETransform bool // validation-to-exposure transform (§V-C1)
	EarlySquash   bool // squash V-state USLs on invalidation (§V-C2)
	SBReuse       bool // reuse SB lines across USLs (§V-E)
	OverlapValExp bool // overlap rules of §V-D (false = fully serialized)
	DelayTLBMiss  bool // delay D-TLB miss service to visibility (§VI-E3)
	// TrustSafeAnnotations implements the paper's §XI future-work
	// optimization: loads statically proven safe (isa.Inst.Safe) bypass
	// the USL machinery entirely. Off by default — it extends the trusted
	// computing base to whatever produced the proofs.
	TrustSafeAnnotations bool
	// ProtectICache implements the extension sketched in the paper's
	// footnote 2: speculative instruction fetches read through an
	// invisible path (no L1I/LLC install, no replacement update) and a
	// line only becomes visible — is installed — once an instruction from
	// it retires. Off by default (the paper scopes it out "for
	// simplicity").
	ProtectICache bool
}

// Default returns the Table IV machine for n cores (1 for SPEC runs, 8 for
// PARSEC runs).
func Default(n int) Machine {
	return Machine{
		Name:            fmt.Sprintf("%d-core Table IV machine", n),
		Cores:           n,
		ClockGHz:        2.0,
		FetchWidth:      8,
		IssueWidth:      8,
		RetireWidth:     8,
		ROBEntries:      192,
		LQEntries:       32,
		SQEntries:       32,
		WBEntries:       32,
		IntALUs:         6,
		MulDivUnits:     2,
		RedirectPenalty: 6,
		Bpred:           bpred.DefaultConfig(),

		LineSize: 64,
		L1I:      CacheParams{SizeBytes: 32 << 10, Ways: 4, LatencyRT: 1, Ports: 1, MSHRs: 8},
		L1D:      CacheParams{SizeBytes: 64 << 10, Ways: 8, LatencyRT: 1, Ports: 3, MSHRs: 32},
		L2:       CacheParams{SizeBytes: 2 << 20, Ways: 16, LatencyRT: 8, Ports: 1, MSHRs: 32},

		L2LocalRT:     8,
		DRAMLatency:   100, // 50 ns at 2 GHz
		DRAMBandwidth: 16,

		MeshW:        4,
		MeshH:        2,
		LinkBytes:    16, // 128-bit links
		HopLatency:   1,
		CtrlMsgBytes: 8,
		DataMsgBytes: 72, // 8B header + 64B line

		HWPrefetch:     false, // Table IV lists none; see the ablation bench
		PrefetchDegree: 16,

		TLBEntries:      64,
		PageWalkLatency: 40,

		LatALU: 1,
		LatMul: 3,
		LatDiv: 12,

		LLCSBEnabled:  true,
		VToETransform: true,
		EarlySquash:   true,
		SBReuse:       true,
		OverlapValExp: true,
		DelayTLBMiss:  true,
	}
}

// Validate checks structural consistency and returns a descriptive error for
// the first problem found.
func (m Machine) Validate() error {
	switch {
	case m.Cores <= 0:
		return fmt.Errorf("config: Cores = %d, must be positive", m.Cores)
	case m.Cores > m.MeshW*m.MeshH:
		return fmt.Errorf("config: %d cores exceed %dx%d mesh", m.Cores, m.MeshW, m.MeshH)
	case m.LineSize <= 0 || m.LineSize&(m.LineSize-1) != 0:
		return fmt.Errorf("config: LineSize %d must be a power of two", m.LineSize)
	case m.ROBEntries <= 0 || m.LQEntries <= 0 || m.SQEntries <= 0:
		return fmt.Errorf("config: queue sizes must be positive")
	case m.LQEntries > m.ROBEntries || m.SQEntries > m.ROBEntries:
		return fmt.Errorf("config: LQ/SQ cannot exceed ROB")
	}
	for _, c := range []struct {
		name string
		p    CacheParams
	}{{"L1I", m.L1I}, {"L1D", m.L1D}, {"L2", m.L2}} {
		sets := c.p.Sets(m.LineSize)
		if sets <= 0 || sets&(sets-1) != 0 {
			return fmt.Errorf("config: %s has %d sets, must be a positive power of two", c.name, sets)
		}
		if c.p.MSHRs <= 0 || c.p.Ports <= 0 {
			return fmt.Errorf("config: %s needs positive MSHRs and ports", c.name)
		}
	}
	return nil
}

// Run couples a machine with the defense and consistency model under test.
type Run struct {
	Machine     Machine
	Defense     Defense
	Consistency Consistency
}

// String names the run the way the paper labels its bars.
func (r Run) String() string {
	return fmt.Sprintf("%s/%s", r.Defense, r.Consistency)
}
