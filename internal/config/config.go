// Package config defines the simulated machine parameters (Table IV of the
// paper) and the processor-configuration selection, plus the memory
// consistency model selection and InvisiSpec feature toggles used by the
// ablation benchmarks. Defense names resolve through the internal/defense
// registry: the paper's five Table V configurations plus every registered
// countermeasure scheme.
package config

import (
	"fmt"
	"strings"

	"invisispec/internal/bpred"
	"invisispec/internal/defense"
)

// Consistency selects the memory consistency model the core implements.
type Consistency int

// Consistency models evaluated in the paper.
const (
	TSO Consistency = iota // total store order (x86-like)
	RC                     // release consistency
)

// String returns the model name.
func (c Consistency) String() string {
	switch c {
	case TSO:
		return "TSO"
	case RC:
		return "RC"
	}
	return fmt.Sprintf("Consistency(%d)", int(c))
}

// ParseConsistency resolves a consistency-model name from external input
// (CLI flags, simulation-server job requests). Matching is case-insensitive.
func ParseConsistency(s string) (Consistency, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "TSO":
		return TSO, nil
	case "RC":
		return RC, nil
	}
	return TSO, fmt.Errorf("config: unknown consistency model %q (want TSO or RC)", s)
}

// ParseConsistencies resolves a list of model names; an empty list means
// both evaluated models, in matrix order (TSO then RC).
func ParseConsistencies(names []string) ([]Consistency, error) {
	if len(names) == 0 {
		return []Consistency{TSO, RC}, nil
	}
	out := make([]Consistency, len(names))
	for i, n := range names {
		cm, err := ParseConsistency(n)
		if err != nil {
			return nil, err
		}
		out[i] = cm
	}
	return out, nil
}

// Defense selects the processor configuration by registered scheme name.
// The value is the internal/defense registry key; the constants below name
// the built-in schemes. An unregistered value fails Scheme() (and so
// sim.New) with the registry's descriptive error.
type Defense string

// The five processor configurations of Table V, plus the two drop-in
// countermeasures that prove the framework.
const (
	Base         Defense = "Base"         // conventional, insecure baseline
	FenceSpectre Defense = "Fe-Sp"        // fence after every indirect/conditional branch
	ISSpectre    Defense = "IS-Sp"        // InvisiSpec-Spectre
	FenceFuture  Defense = "Fe-Fu"        // fence before every load
	ISFuture     Defense = "IS-Fu"        // InvisiSpec-Future
	SpecBox      Defense = "SpecBox"      // label-based speculative-fill quarantine
	BasicBlocker Defense = "BasicBlocker" // ISA-assisted basic-block speculation control
)

// String returns the short name used in the paper's figures (the registry
// key itself).
func (d Defense) String() string {
	if d == "" {
		return "Defense(unset)"
	}
	return string(d)
}

// Scheme resolves the defense through the registry.
func (d Defense) Scheme() (defense.Defense, error) {
	return defense.Lookup(string(d))
}

// MustScheme resolves the defense, panicking on unregistered names.
// Construction paths that accept external input (sim.New, the CLIs)
// validate with Scheme or ParseDefense first.
func (d Defense) MustScheme() defense.Defense {
	s, err := d.Scheme()
	if err != nil {
		panic(err)
	}
	return s
}

// AllDefenses lists every registered configuration in matrix order: the
// five Table V configurations first, then later-registered schemes.
func AllDefenses() []Defense {
	all := defense.All()
	out := make([]Defense, len(all))
	for i, s := range all {
		out[i] = Defense(s.Name())
	}
	return out
}

// ParseDefense resolves a scheme name from a CLI flag, with the registry's
// known-names error on failure.
func ParseDefense(s string) (Defense, error) {
	if _, err := defense.Lookup(s); err != nil {
		return "", err
	}
	return Defense(s), nil
}

// ParseDefenses resolves a comma-separated list of scheme names; an empty
// list means every registered defense. Order and duplicates are preserved
// (a sweep may deliberately repeat a scheme).
func ParseDefenses(csv string) ([]Defense, error) {
	if strings.TrimSpace(csv) == "" {
		return AllDefenses(), nil
	}
	var out []Defense
	for _, part := range strings.Split(csv, ",") {
		d, err := ParseDefense(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// UsesInvisiSpec reports whether the configuration issues speculative
// loads through the speculative-buffer machinery. Unregistered values
// report false.
func (d Defense) UsesInvisiSpec() bool {
	s, err := d.Scheme()
	return err == nil && s.UsesInvisibleLoads()
}

// UsesFences reports whether the configuration inserts defensive fences.
func (d Defense) UsesFences() bool {
	s, err := d.Scheme()
	return err == nil && (s.FenceBeforeLoads() || s.FenceAfterBranches())
}

// CacheParams sizes one cache level.
type CacheParams struct {
	SizeBytes int
	Ways      int
	// LatencyRT is the round-trip hit latency in cycles.
	LatencyRT int
	Ports     int // accesses accepted per cycle
	MSHRs     int
}

// Sets returns the number of sets given the machine line size.
func (p CacheParams) Sets(lineSize int) int {
	return p.SizeBytes / (p.Ways * lineSize)
}

// Machine holds every structural parameter of the simulated system.
type Machine struct {
	Name     string
	Cores    int
	ClockGHz float64

	// Core (8-issue OoO per Table IV).
	FetchWidth  int
	IssueWidth  int
	RetireWidth int
	ROBEntries  int
	LQEntries   int
	SQEntries   int
	WBEntries   int // write buffer depth
	IntALUs     int
	MulDivUnits int
	// RedirectPenalty is the front-end refill bubble after a squash
	// (approximates the paper's deeper fetch pipeline).
	RedirectPenalty int
	Bpred           bpred.Config

	// Memory structure.
	LineSize int
	L1I      CacheParams
	L1D      CacheParams
	// L2 is the shared, inclusive LLC; one bank per core.
	L2            CacheParams
	L2LocalRT     int // round-trip latency to the local bank
	DRAMLatency   int // cycles after the L2 (50 ns at 2 GHz = 100)
	DRAMBandwidth int // bytes per cycle per channel

	// NoC: MeshW x MeshH mesh, 128-bit links, 1 cycle per hop.
	MeshW        int
	MeshH        int
	LinkBytes    int // bytes transferred per link per cycle
	HopLatency   int
	CtrlMsgBytes int // size of a control message on the NoC
	DataMsgBytes int // size of a data-carrying message (ctrl + line)

	// Hardware prefetcher: a confidence-ramped stream prefetcher at the
	// L1D (tagged re-arm, max distance PrefetchDegree). The paper's Table
	// IV machine has none (default false); when enabled, InvisiSpec gates
	// it on visibility (§VI-B): Spec-GetS accesses never train or trigger
	// it; demand misses, validations and exposures do.
	HWPrefetch     bool
	PrefetchDegree int

	// TLB.
	TLBEntries      int
	PageWalkLatency int

	// Execution latencies.
	LatALU, LatMul, LatDiv int

	// Interrupts: if > 0, a timer interrupt fires every this many cycles
	// (squashing the pipeline). Models the "interrupts" squash source.
	InterruptInterval int

	// InvisiSpec feature toggles (all true for the paper's design; the
	// ablation benches flip them individually).
	LLCSBEnabled  bool // per-core LLC speculative buffer (§V-F)
	VToETransform bool // validation-to-exposure transform (§V-C1)
	EarlySquash   bool // squash V-state USLs on invalidation (§V-C2)
	SBReuse       bool // reuse SB lines across USLs (§V-E)
	OverlapValExp bool // overlap rules of §V-D (false = fully serialized)
	DelayTLBMiss  bool // delay D-TLB miss service to visibility (§VI-E3)
	// TrustSafeAnnotations implements the paper's §XI future-work
	// optimization: loads statically proven safe (isa.Inst.Safe) bypass
	// the USL machinery entirely. Off by default — it extends the trusted
	// computing base to whatever produced the proofs.
	TrustSafeAnnotations bool
	// ProtectICache implements the extension sketched in the paper's
	// footnote 2: speculative instruction fetches read through an
	// invisible path (no L1I/LLC install, no replacement update) and a
	// line only becomes visible — is installed — once an instruction from
	// it retires. Off by default (the paper scopes it out "for
	// simplicity").
	ProtectICache bool
}

// Default returns the Table IV machine for n cores (1 for SPEC runs, 8 for
// PARSEC runs).
func Default(n int) Machine {
	return Machine{
		Name:            fmt.Sprintf("%d-core Table IV machine", n),
		Cores:           n,
		ClockGHz:        2.0,
		FetchWidth:      8,
		IssueWidth:      8,
		RetireWidth:     8,
		ROBEntries:      192,
		LQEntries:       32,
		SQEntries:       32,
		WBEntries:       32,
		IntALUs:         6,
		MulDivUnits:     2,
		RedirectPenalty: 6,
		Bpred:           bpred.DefaultConfig(),

		LineSize: 64,
		L1I:      CacheParams{SizeBytes: 32 << 10, Ways: 4, LatencyRT: 1, Ports: 1, MSHRs: 8},
		L1D:      CacheParams{SizeBytes: 64 << 10, Ways: 8, LatencyRT: 1, Ports: 3, MSHRs: 32},
		L2:       CacheParams{SizeBytes: 2 << 20, Ways: 16, LatencyRT: 8, Ports: 1, MSHRs: 32},

		L2LocalRT:     8,
		DRAMLatency:   100, // 50 ns at 2 GHz
		DRAMBandwidth: 16,

		MeshW:        4,
		MeshH:        2,
		LinkBytes:    16, // 128-bit links
		HopLatency:   1,
		CtrlMsgBytes: 8,
		DataMsgBytes: 72, // 8B header + 64B line

		HWPrefetch:     false, // Table IV lists none; see the ablation bench
		PrefetchDegree: 16,

		TLBEntries:      64,
		PageWalkLatency: 40,

		LatALU: 1,
		LatMul: 3,
		LatDiv: 12,

		LLCSBEnabled:  true,
		VToETransform: true,
		EarlySquash:   true,
		SBReuse:       true,
		OverlapValExp: true,
		DelayTLBMiss:  true,
	}
}

// Validate checks structural consistency and returns a descriptive error for
// the first problem found.
func (m Machine) Validate() error {
	switch {
	case m.Cores <= 0:
		return fmt.Errorf("config: Cores = %d, must be positive", m.Cores)
	case m.Cores > m.MeshW*m.MeshH:
		return fmt.Errorf("config: %d cores exceed %dx%d mesh", m.Cores, m.MeshW, m.MeshH)
	case m.LineSize <= 0 || m.LineSize&(m.LineSize-1) != 0:
		return fmt.Errorf("config: LineSize %d must be a power of two", m.LineSize)
	case m.ROBEntries <= 0 || m.LQEntries <= 0 || m.SQEntries <= 0:
		return fmt.Errorf("config: queue sizes must be positive")
	case m.LQEntries > m.ROBEntries || m.SQEntries > m.ROBEntries:
		return fmt.Errorf("config: LQ/SQ cannot exceed ROB")
	}
	for _, c := range []struct {
		name string
		p    CacheParams
	}{{"L1I", m.L1I}, {"L1D", m.L1D}, {"L2", m.L2}} {
		sets := c.p.Sets(m.LineSize)
		if sets <= 0 || sets&(sets-1) != 0 {
			return fmt.Errorf("config: %s has %d sets, must be a positive power of two", c.name, sets)
		}
		if c.p.MSHRs <= 0 || c.p.Ports <= 0 {
			return fmt.Errorf("config: %s needs positive MSHRs and ports", c.name)
		}
	}
	return nil
}

// Run couples a machine with the defense and consistency model under test.
type Run struct {
	Machine     Machine
	Defense     Defense
	Consistency Consistency
}

// String names the run the way the paper labels its bars.
func (r Run) String() string {
	return fmt.Sprintf("%s/%s", r.Defense, r.Consistency)
}
