package trace_test

// ispectr2 format tests: canonical-encoding round trips, corruption
// rejection, v1 backward compatibility, and the record -> replay ->
// re-record fixed-point property across the full defense x consistency x
// kernel matrix.

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/engine"
	"invisispec/internal/harness"
	"invisispec/internal/isa"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

func TestV2RoundTrip(t *testing.T) {
	orig := workload.MustSPEC("sjeng")
	tr, _ := trace.RecordInterp("v2-roundtrip", orig, 800)
	raw, err := trace.EncodeBytes(tr)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := trace.DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != "v2-roundtrip" || len(dec.Programs) != 1 {
		t.Fatalf("decoded header: name %q, %d core(s)", dec.Name, len(dec.Programs))
	}
	if !reflect.DeepEqual(dec.Events, tr.Events) {
		t.Error("decoded events differ from the recording")
	}
	p := dec.Programs[0]
	if !reflect.DeepEqual(p.Insts, orig.Insts) || !reflect.DeepEqual(p.InitMem, orig.InitMem) {
		t.Error("decoded program image differs from the original")
	}
	if p.Entry != orig.Entry || p.Handler != orig.Handler {
		t.Errorf("decoded entry/handler = %d/%d, want %d/%d", p.Entry, p.Handler, orig.Entry, orig.Handler)
	}
	// Labels are dropped, so decoded programs must carry materialised
	// basic-block metadata instead of depending on recomputation.
	if len(p.BlockLen) != len(p.Insts) {
		t.Errorf("decoded BlockLen has %d entries for %d instructions", len(p.BlockLen), len(p.Insts))
	}
	// Canonical encoding: re-encoding the decoded trace is a fixed point.
	again, err := trace.EncodeBytes(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again) {
		t.Error("re-encoding a decoded trace changed its bytes")
	}
}

func TestValidateRejections(t *testing.T) {
	prog := workload.MustSPEC("hmmer")
	cases := []struct {
		label string
		t     *trace.Trace
	}{
		{"no programs (v1)", &trace.Trace{Events: [][]trace.Event{{}}}},
		{"zero cores", &trace.Trace{Programs: []*isa.Program{}, Events: [][]trace.Event{}}},
		{"core-count mismatch", &trace.Trace{Programs: []*isa.Program{prog}, Events: [][]trace.Event{{}, {}}}},
		{"backwards clock", &trace.Trace{
			Programs: []*isa.Program{prog},
			Events:   [][]trace.Event{{{Cycle: 9, Op: isa.OpNop}, {Cycle: 3, Op: isa.OpNop}}},
		}},
	}
	for _, c := range cases {
		if err := c.t.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", c.label)
		}
		if _, err := trace.EncodeBytes(c.t); err == nil {
			t.Errorf("%s: EncodeBytes accepted", c.label)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tr, _ := trace.RecordInterp("v2-corrupt", workload.MustSPEC("hmmer"), 200)
	raw, err := trace.EncodeBytes(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Body flip: CRC trailer no longer matches.
	flipped := append([]byte(nil), raw...)
	flipped[12] ^= 0x80
	if _, err := trace.DecodeBytes(flipped); !errors.Is(err, trace.ErrBadCRC) {
		t.Errorf("body flip: err = %v, want ErrBadCRC", err)
	}
	// Truncation anywhere must error, never decode to a shorter trace.
	for _, cut := range []int{4, 8, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := trace.DecodeBytes(raw[:cut]); err == nil {
			t.Errorf("truncation at %d bytes decoded", cut)
		}
	}
	if _, err := trace.DecodeBytes([]byte("xxxxxxxxxxxxxxxx")); !errors.Is(err, trace.ErrBadMagic) {
		t.Errorf("wrong magic: err = %v, want ErrBadMagic", err)
	}
}

// Legacy v1 streams stay readable through the unified decoder: events only,
// Programs nil, so they can be diffed but never imported as workloads.
func TestV1BackwardCompatRead(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []core.CommitEvent{
		{Cycle: 7, PC: 1, Inst: isa.Inst{Op: isa.OpAdd, Rd: 2}, WroteReg: true, Reg: 2, RegValue: 99},
		{Cycle: 9, PC: 2, Inst: isa.Inst{Op: isa.OpLoad}, Fault: true},
	}
	for _, ev := range in {
		w.Append(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	dec, err := trace.DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Programs != nil {
		t.Error("v1 stream decoded with programs")
	}
	if len(dec.Events) != 1 || len(dec.Events[0]) != len(in) {
		t.Fatalf("v1 stream decoded to %d core(s)", len(dec.Events))
	}
	for i, ev := range in {
		got := dec.Events[0][i]
		if got.Cycle != ev.Cycle || got.PC != ev.PC || got.Op != ev.Inst.Op ||
			got.Fault != ev.Fault || got.WroteReg != ev.WroteReg ||
			got.Reg != ev.Reg || got.RegValue != ev.RegValue {
			t.Errorf("event %d: %+v != %+v", i, got, ev)
		}
	}
	if err := dec.Validate(); err == nil {
		t.Error("v1 decode passed Validate (must be rejected for replay)")
	}
}

// The replay fixed point, over the full configuration matrix: recording a
// live run, replaying the decoded trace's program under the same
// configuration, and re-recording must reproduce the trace byte for byte.
// Within one (defense, consistency) cell the stepped and fast kernels must
// also agree byte for byte — the encoding includes commit cycles, so this
// doubles as a kernel-equivalence fingerprint check.
func TestRecordReplayRerecord(t *testing.T) {
	if testing.Short() {
		t.Skip("full defense x consistency x kernel sweep")
	}
	prog := workload.MustSPEC("hmmer")
	const n = 1000
	for _, d := range config.AllDefenses() {
		for _, cm := range []config.Consistency{config.TSO, config.RC} {
			perKernel := map[engine.Kernel][]byte{}
			for _, k := range []engine.Kernel{engine.KernelStepped, engine.KernelFast} {
				label := fmt.Sprintf("%s/%s/%s", d, cm, k)
				run := config.Run{Machine: config.Default(1), Defense: d, Consistency: cm}
				rec, err := harness.Record(run, "replay-fixed-point", []*isa.Program{prog}, n, harness.WithKernel(k))
				if err != nil {
					t.Fatalf("%s: record: %v", label, err)
				}
				if len(rec.Events[0]) < n {
					t.Fatalf("%s: recorded %d of %d commits", label, len(rec.Events[0]), n)
				}
				enc, err := trace.EncodeBytes(rec)
				if err != nil {
					t.Fatalf("%s: encode: %v", label, err)
				}
				dec, err := trace.DecodeBytes(enc)
				if err != nil {
					t.Fatalf("%s: decode: %v", label, err)
				}
				rerec, err := harness.Record(run, "replay-fixed-point", dec.Programs, n, harness.WithKernel(k))
				if err != nil {
					t.Fatalf("%s: re-record: %v", label, err)
				}
				reenc, err := trace.EncodeBytes(rerec)
				if err != nil {
					t.Fatalf("%s: re-encode: %v", label, err)
				}
				if !bytes.Equal(enc, reenc) {
					t.Errorf("%s: replay-of-replay is not byte-identical", label)
				}
				perKernel[k] = enc
			}
			if !bytes.Equal(perKernel[engine.KernelStepped], perKernel[engine.KernelFast]) {
				t.Errorf("%s/%s: stepped and fast kernels record different trace bytes", d, cm)
			}
		}
	}
}
