// Package trace provides a compact binary format for committed-instruction
// streams (see internal/core.CommitEvent), plus a differ. Recorded traces
// serve three purposes: debugging (inspect exactly what retired and when),
// regression pinning (a golden trace diff catches any architectural
// behaviour change), and cross-configuration comparison (every defense must
// commit the same architectural stream for the same program).
//
// Format: a 8-byte magic/version header, then one varint-encoded record per
// event: cycle delta, pc, op byte, flags, and (if present) the register
// write. Little observed state, high compression via deltas.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"invisispec/internal/core"
	"invisispec/internal/isa"
)

var magic = [8]byte{'i', 's', 'p', 'e', 'c', 't', 'r', '1'}

// Flag bits per record.
const (
	flagWroteReg = 1 << 0
	flagFault    = 1 << 1
)

// Writer streams commit events to an io.Writer.
type Writer struct {
	w         *bufio.Writer
	lastCycle uint64
	started   bool
	count     uint64
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Tracer returns a core.Tracer that records into the writer. Encoding
// errors surface at Flush.
func (w *Writer) Tracer() core.Tracer {
	return func(ev core.CommitEvent) { w.Append(ev) }
}

// Append encodes one event.
func (w *Writer) Append(ev core.CommitEvent) {
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		w.w.Write(buf[:n])
	}
	delta := ev.Cycle - w.lastCycle
	if !w.started {
		delta = ev.Cycle
		w.started = true
	}
	w.lastCycle = ev.Cycle
	put(delta)
	put(uint64(ev.PC))
	flags := byte(0)
	if ev.WroteReg {
		flags |= flagWroteReg
	}
	if ev.Fault {
		flags |= flagFault
	}
	w.w.WriteByte(byte(ev.Inst.Op))
	w.w.WriteByte(flags)
	if ev.WroteReg {
		w.w.WriteByte(ev.Reg)
		put(ev.RegValue)
	}
	w.count++
}

// Count returns the number of events appended.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Event is one decoded record.
type Event struct {
	Cycle    uint64
	PC       int
	Op       isa.Op
	WroteReg bool
	Reg      uint8
	RegValue uint64
	Fault    bool
}

// ErrBadMagic reports a stream that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic")

// Reader decodes a trace stream.
type Reader struct {
	r     *bufio.Reader
	cycle uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, err
	}
	if got != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next decodes one event; io.EOF marks a clean end.
func (r *Reader) Next() (Event, error) {
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, err // io.EOF at a record boundary is the clean end
	}
	r.cycle += delta
	pc, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, fmt.Errorf("trace: truncated pc: %w", err)
	}
	opB, err := r.r.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("trace: truncated op: %w", err)
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("trace: truncated flags: %w", err)
	}
	ev := Event{
		Cycle: r.cycle,
		PC:    int(pc),
		Op:    isa.Op(opB),
		Fault: flags&flagFault != 0,
	}
	if flags&flagWroteReg != 0 {
		reg, err := r.r.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated reg: %w", err)
		}
		val, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated value: %w", err)
		}
		ev.WroteReg = true
		ev.Reg = reg
		ev.RegValue = val
	}
	return ev, nil
}

// ReadAll decodes the whole stream.
func ReadAll(r io.Reader) ([]Event, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Event
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

// Diff compares two traces ARCHITECTURALLY (pc, op, register writes —
// cycles are timing, not architecture, and are ignored). It returns the
// index of the first divergence and a description, or -1 and "".
func Diff(a, b []Event) (int, string) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		x, y := a[i], b[i]
		switch {
		case x.PC != y.PC:
			return i, fmt.Sprintf("pc %d vs %d", x.PC, y.PC)
		case x.Op != y.Op:
			return i, fmt.Sprintf("op %v vs %v", x.Op, y.Op)
		case x.Fault != y.Fault:
			return i, fmt.Sprintf("fault %v vs %v", x.Fault, y.Fault)
		case x.WroteReg != y.WroteReg:
			return i, fmt.Sprintf("wrote-reg %v vs %v", x.WroteReg, y.WroteReg)
		case x.WroteReg && (x.Reg != y.Reg || x.RegValue != y.RegValue):
			// OpCycle values are timing-defined, not architectural.
			if x.Op == isa.OpCycle {
				continue
			}
			return i, fmt.Sprintf("r%d=%#x vs r%d=%#x", x.Reg, x.RegValue, y.Reg, y.RegValue)
		}
	}
	if len(a) != len(b) {
		return n, fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	return -1, ""
}
