package trace_test

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

func roundTrip(t *testing.T, evs []core.CommitEvent) []trace.Event {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		w.Append(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	in := []core.CommitEvent{
		{Cycle: 10, Seq: 0, PC: 0, Inst: isa.Inst{Op: isa.OpLui, Rd: 3}, WroteReg: true, Reg: 3, RegValue: 0xDEADBEEF},
		{Cycle: 10, Seq: 1, PC: 1, Inst: isa.Inst{Op: isa.OpNop}},
		{Cycle: 12, Seq: 2, PC: 2, Inst: isa.Inst{Op: isa.OpLoad}, Fault: true},
		{Cycle: 99, Seq: 3, PC: 7, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1}, WroteReg: true, Reg: 1, RegValue: ^uint64(0)},
	}
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i, ev := range in {
		got := out[i]
		if got.Cycle != ev.Cycle || got.PC != ev.PC || got.Op != ev.Inst.Op ||
			got.Fault != ev.Fault || got.WroteReg != ev.WroteReg ||
			got.Reg != ev.Reg || got.RegValue != ev.RegValue {
			t.Fatalf("event %d: %+v != %+v", i, got, ev)
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := trace.NewReader(bytes.NewReader([]byte("not a trace!"))); err != trace.ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf)
	w.Append(core.CommitEvent{Cycle: 5, PC: 3, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1}, WroteReg: true, Reg: 1, RegValue: 1 << 40})
	w.Flush()
	full := buf.Bytes()
	// Chop mid-record: must error (not io.EOF) somewhere.
	r, err := trace.NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record: err = %v, want decode error", err)
	}
}

func TestDiff(t *testing.T) {
	a := []trace.Event{{PC: 1, Op: isa.OpAdd}, {PC: 2, Op: isa.OpNop}}
	if i, _ := trace.Diff(a, a); i != -1 {
		t.Fatalf("identical traces diff at %d", i)
	}
	b := []trace.Event{{PC: 1, Op: isa.OpAdd}, {PC: 3, Op: isa.OpNop}}
	if i, why := trace.Diff(a, b); i != 1 || why == "" {
		t.Fatalf("diff = %d %q", i, why)
	}
	c := a[:1]
	if i, _ := trace.Diff(a, c); i != 1 {
		t.Fatal("length divergence missed")
	}
	// Cycle-count differences are not architectural.
	d := []trace.Event{{PC: 1, Op: isa.OpAdd, Cycle: 500}, {PC: 2, Op: isa.OpNop, Cycle: 900}}
	if i, _ := trace.Diff(a, d); i != -1 {
		t.Fatal("cycle difference treated as divergence")
	}
	// OpCycle register values are timing-defined.
	e := []trace.Event{{PC: 1, Op: isa.OpCycle, WroteReg: true, Reg: 2, RegValue: 7}}
	f := []trace.Event{{PC: 1, Op: isa.OpCycle, WroteReg: true, Reg: 2, RegValue: 9}}
	if i, _ := trace.Diff(e, f); i != -1 {
		t.Fatal("OpCycle value difference treated as divergence")
	}
}

// Every defense must commit the same architectural stream for the same
// program: record every registered scheme and diff them pairwise.
func TestAllDefensesCommitIdenticalStreams(t *testing.T) {
	prog := workload.MustSPEC("hmmer")
	record := func(d config.Defense) []trace.Event {
		r := config.Run{Machine: config.Default(1), Defense: d, Consistency: config.TSO}
		m := sim.MustNew(r, []*isa.Program{prog})
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		m.Cores[0].SetTracer(w.Tracer())
		if err := m.RunInstructions(3000, 3_000_000); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		evs, err := trace.ReadAll(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	ref := record(config.Base)
	if len(ref) < 3000 {
		t.Fatalf("reference trace has %d events", len(ref))
	}
	for _, d := range config.AllDefenses()[1:] {
		got := record(d)
		n := len(ref)
		if len(got) < n {
			n = len(got)
		}
		if i, why := trace.Diff(ref[:n], got[:n]); i != -1 {
			t.Errorf("%v diverges from Base at commit %d: %s", d, i, why)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(cycles []uint16, pcs []uint16, ops []uint8, vals []uint64) bool {
		n := len(cycles)
		for _, s := range []int{len(pcs), len(ops), len(vals)} {
			if s < n {
				n = s
			}
		}
		var evs []core.CommitEvent
		cyc := uint64(0)
		for i := 0; i < n; i++ {
			cyc += uint64(cycles[i]) // monotone, as real commits are
			op := isa.Op(ops[i] % 30)
			ev := core.CommitEvent{Cycle: cyc, PC: int(pcs[i]), Inst: isa.Inst{Op: op}}
			if op.HasDest() {
				ev.WroteReg = true
				ev.Reg = uint8(vals[i] % 32)
				ev.RegValue = vals[i]
			}
			evs = append(evs, ev)
		}
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, ev := range evs {
			w.Append(ev)
		}
		if w.Flush() != nil || w.Count() != uint64(len(evs)) {
			return false
		}
		out, err := trace.ReadAll(&buf)
		if err != nil || len(out) != len(evs) {
			return false
		}
		for i, ev := range evs {
			g := out[i]
			if g.Cycle != ev.Cycle || g.PC != ev.PC || g.Op != ev.Inst.Op ||
				g.WroteReg != ev.WroteReg || g.Reg != ev.Reg || g.RegValue != ev.RegValue {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
