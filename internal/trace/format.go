// Trace format v2 ("ispectr2"): a self-contained, replayable trace. Where
// v1 carries only a committed-event stream, v2 adds the full program image
// per core — instructions, entry/handler, InitMem windows, and basic-block
// metadata — so a decoded trace reconstructs an isa.Program-equivalent
// drive for the OoO core. Encoding is canonical (one byte sequence per
// trace value), which is what makes byte-identical replay-of-replay a
// checkable import invariant rather than a hope.
//
// Byte-level layout (all varints are unsigned LEB128 via encoding/binary
// unless marked zigzag, which is binary.PutVarint's signed encoding):
//
//	magic    8 bytes "ispectr2"
//	body:
//	  name       uvarint length + bytes (trace/workload name)
//	  ncores     uvarint (= program count = event-stream count)
//	  per core:
//	    program:
//	      name     uvarint length + bytes
//	      entry    uvarint
//	      handler  zigzag varint (may be -1: halt on exceptions)
//	      ninsts   uvarint
//	      per instruction:
//	        op, rd, rs1, rs2, size   5 raw bytes
//	        flags                    1 byte (bit0 priv, bit1 safe)
//	        imm                      zigzag varint
//	        target                   zigzag varint
//	      nblock   uvarint (basic-block metadata length; always ninsts for
//	               encoder output — materialised before labels are dropped)
//	      per block entry: uvarint
//	      nchunks  uvarint
//	      per InitMem chunk: addr uvarint, length uvarint, raw bytes
//	    events:
//	      nevents  uvarint
//	      per event: the v1 record encoding (cycle delta uvarint — reset
//	                 per core — pc uvarint, op byte, flags byte, and if
//	                 flagWroteReg: reg byte + value uvarint)
//	trailer  4 bytes little-endian CRC-32 (IEEE) over the body
//
// Program labels are NOT serialised: the encoder materialises BlockLen
// (which the builder derives from labels) first, so every decoded program
// carries explicit bb metadata and re-encoding it reproduces the input
// bytes exactly.
package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"invisispec/internal/core"
	"invisispec/internal/isa"
)

var magic2 = [8]byte{'i', 's', 'p', 'e', 'c', 't', 'r', '2'}

// Instruction flag bits (distinct from the per-event record flags).
const (
	instFlagPriv = 1 << 0
	instFlagSafe = 1 << 1
)

// ErrBadCRC reports a v2 stream whose body does not match its trailer.
var ErrBadCRC = errors.New("trace: checksum mismatch")

// Trace is a decoded (or to-be-encoded) replayable trace: one program and
// one committed-event stream per core. Programs is nil for legacy v1
// streams, which carry events only and therefore cannot be imported as
// workloads (only diffed).
type Trace struct {
	Name     string
	Programs []*isa.Program
	Events   [][]Event
}

// Validate checks the structural invariants encoding and import rely on:
// matching program/event core counts, and per-core clock monotonicity
// (commit cycles never run backwards — the delta encoding could not even
// represent that, so a violating in-memory trace must be rejected before
// it is mangled into a different trace on disk).
func (t *Trace) Validate() error {
	if t.Programs == nil {
		return errors.New("trace: no programs (v1 streams are not replayable; re-record as v2)")
	}
	if len(t.Programs) == 0 {
		return errors.New("trace: zero cores")
	}
	if len(t.Events) != len(t.Programs) {
		return fmt.Errorf("trace: %d program(s) but %d event stream(s)", len(t.Programs), len(t.Events))
	}
	for c, evs := range t.Events {
		for i := 1; i < len(evs); i++ {
			if evs[i].Cycle < evs[i-1].Cycle {
				return fmt.Errorf("trace: core %d: clock runs backwards at event %d (%d -> %d)",
					c, i, evs[i-1].Cycle, evs[i].Cycle)
			}
		}
	}
	return nil
}

// Encode writes the canonical v2 byte sequence for t.
func Encode(w io.Writer, t *Trace) error {
	raw, err := EncodeBytes(t)
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// EncodeBytes returns the canonical v2 byte sequence for t. The encoding
// is a pure function of the trace value, so re-encoding a decoded trace
// reproduces the original bytes (the replay-of-replay import gate).
func EncodeBytes(t *Trace) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var body bytes.Buffer
	putUvarint(&body, uint64(len(t.Name)))
	body.WriteString(t.Name)
	putUvarint(&body, uint64(len(t.Programs)))
	for c, p := range t.Programs {
		encodeProgram(&body, p)
		evs := t.Events[c]
		putUvarint(&body, uint64(len(evs)))
		last := uint64(0)
		for i, ev := range evs {
			delta := ev.Cycle - last
			if i == 0 {
				delta = ev.Cycle
			}
			last = ev.Cycle
			putUvarint(&body, delta)
			putUvarint(&body, uint64(ev.PC))
			body.WriteByte(byte(ev.Op))
			flags := byte(0)
			if ev.WroteReg {
				flags |= flagWroteReg
			}
			if ev.Fault {
				flags |= flagFault
			}
			body.WriteByte(flags)
			if ev.WroteReg {
				body.WriteByte(ev.Reg)
				putUvarint(&body, ev.RegValue)
			}
		}
	}
	out := make([]byte, 0, 8+body.Len()+4)
	out = append(out, magic2[:]...)
	out = append(out, body.Bytes()...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body.Bytes()))
	return append(out, crc[:]...), nil
}

// encodeProgram serialises one program. BlockLen is always written: when
// the program carries none (hand-built), it is materialised from static
// control flow on a copy first, so decoded programs never depend on the
// dropped Labels map for basic-block identity.
func encodeProgram(w *bytes.Buffer, p *isa.Program) {
	if p.BlockLen == nil {
		p2 := *p
		p2.ComputeBB()
		p = &p2
	}
	putUvarint(w, uint64(len(p.Name)))
	w.WriteString(p.Name)
	putUvarint(w, uint64(p.Entry))
	putVarint(w, int64(p.Handler))
	putUvarint(w, uint64(len(p.Insts)))
	for _, in := range p.Insts {
		w.WriteByte(byte(in.Op))
		w.WriteByte(in.Rd)
		w.WriteByte(in.Rs1)
		w.WriteByte(in.Rs2)
		w.WriteByte(in.Size)
		flags := byte(0)
		if in.Priv {
			flags |= instFlagPriv
		}
		if in.Safe {
			flags |= instFlagSafe
		}
		w.WriteByte(flags)
		putVarint(w, in.Imm)
		putVarint(w, int64(in.Target))
	}
	putUvarint(w, uint64(len(p.BlockLen)))
	for _, bl := range p.BlockLen {
		putUvarint(w, uint64(bl))
	}
	putUvarint(w, uint64(len(p.InitMem)))
	for _, ch := range p.InitMem {
		putUvarint(w, ch.Addr)
		putUvarint(w, uint64(len(ch.Data)))
		w.Write(ch.Data)
	}
}

// Decode reads a trace from r, accepting both formats: v2 streams decode
// fully (programs + events, CRC-verified), v1 streams decode as a
// single-core event-only trace (Programs nil) so old recordings remain
// diffable.
func Decode(r io.Reader) (*Trace, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(raw)
}

// DecodeBytes is Decode over an in-memory stream.
func DecodeBytes(raw []byte) (*Trace, error) {
	if len(raw) < 8 {
		return nil, ErrBadMagic
	}
	var got [8]byte
	copy(got[:], raw[:8])
	if got == magic {
		evs, err := ReadAll(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		return &Trace{Events: [][]Event{evs}}, nil
	}
	if got != magic2 {
		return nil, ErrBadMagic
	}
	if len(raw) < 8+4 {
		return nil, fmt.Errorf("trace: truncated trailer")
	}
	body := raw[8 : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, ErrBadCRC
	}
	d := &decoder{r: bytes.NewReader(body)}
	t := &Trace{}
	t.Name = d.str("name")
	ncores := d.uv("core count")
	for c := uint64(0); c < ncores && d.err == nil; c++ {
		t.Programs = append(t.Programs, d.program())
		nev := d.uv("event count")
		evs := make([]Event, 0, nev)
		cycle := uint64(0)
		for i := uint64(0); i < nev && d.err == nil; i++ {
			cycle += d.uv("cycle delta")
			ev := Event{Cycle: cycle, PC: int(d.uv("pc"))}
			ev.Op = isa.Op(d.byte("op"))
			flags := d.byte("flags")
			ev.Fault = flags&flagFault != 0
			if flags&flagWroteReg != 0 {
				ev.WroteReg = true
				ev.Reg = d.byte("reg")
				ev.RegValue = d.uv("value")
			}
			evs = append(evs, ev)
		}
		t.Events = append(t.Events, evs)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.r.Len() != 0 {
		return nil, fmt.Errorf("trace: %d trailing byte(s) after last core", d.r.Len())
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteFile encodes t to path.
func WriteFile(path string, t *Trace) error {
	raw, err := EncodeBytes(t)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// ReadFile decodes the trace at path (either format).
func ReadFile(path string) (*Trace, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(raw)
}

// FromCommit converts a live commit event to its trace record.
func FromCommit(ev core.CommitEvent) Event {
	out := Event{
		Cycle:    ev.Cycle,
		PC:       ev.PC,
		Op:       ev.Inst.Op,
		Fault:    ev.Fault,
		WroteReg: ev.WroteReg,
	}
	if ev.WroteReg {
		out.Reg = ev.Reg
		out.RegValue = ev.RegValue
	}
	return out
}

// RecordInterp runs p on the golden interpreter for at most maxSteps
// retired instructions and returns the committed stream as a single-core
// replayable trace, with the retirement index standing in for the cycle
// (the interpreter has no clock; Diff ignores cycles anyway). The second
// result reports whether the program halted within the budget — bench
// kernels loop forever by design, so a full-budget recording is the
// normal outcome for them, while attack recordings usually want halted.
func RecordInterp(name string, p *isa.Program, maxSteps uint64) (*Trace, bool) {
	it := isa.NewInterp(p)
	var events []Event
	for uint64(len(events)) < maxSteps && !it.Halted {
		pc := it.PC
		in := p.At(pc)
		faults := it.Faults
		it.Step()
		ev := Event{Cycle: uint64(len(events)), PC: pc, Op: in.Op}
		switch {
		case it.Faults > faults:
			ev.Fault = true
		case in.Op.HasDest():
			ev.WroteReg = true
			ev.Reg = in.Rd
			ev.RegValue = it.Regs[in.Rd]
		}
		events = append(events, ev)
	}
	return &Trace{Name: name, Programs: []*isa.Program{p}, Events: [][]Event{events}}, it.Halted
}

// decoder carries the error through a sequence of reads so call sites
// stay linear; the first failure sticks.
type decoder struct {
	r   *bytes.Reader
	err error
}

func (d *decoder) uv(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("trace: truncated %s: %w", what, err)
	}
	return v
}

func (d *decoder) sv(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("trace: truncated %s: %w", what, err)
	}
	return v
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = fmt.Errorf("trace: truncated %s: %w", what, err)
	}
	return b
}

func (d *decoder) str(what string) string {
	n := d.uv(what + " length")
	if d.err != nil {
		return ""
	}
	if n > uint64(d.r.Len()) {
		d.err = fmt.Errorf("trace: truncated %s: length %d exceeds remaining %d", what, n, d.r.Len())
		return ""
	}
	buf := make([]byte, n)
	io.ReadFull(d.r, buf)
	return string(buf)
}

func (d *decoder) program() *isa.Program {
	p := &isa.Program{}
	p.Name = d.str("program name")
	p.Entry = int(d.uv("entry"))
	p.Handler = int(d.sv("handler"))
	ninsts := d.uv("instruction count")
	if d.err == nil && ninsts > uint64(d.r.Len()) {
		// Each instruction takes >= 8 bytes; a count past the remaining
		// body is corruption, not a huge program.
		d.err = fmt.Errorf("trace: instruction count %d exceeds remaining body", ninsts)
	}
	for i := uint64(0); i < ninsts && d.err == nil; i++ {
		in := isa.Inst{
			Op:   isa.Op(d.byte("op")),
			Rd:   d.byte("rd"),
			Rs1:  d.byte("rs1"),
			Rs2:  d.byte("rs2"),
			Size: d.byte("size"),
		}
		flags := d.byte("inst flags")
		in.Priv = flags&instFlagPriv != 0
		in.Safe = flags&instFlagSafe != 0
		in.Imm = d.sv("imm")
		in.Target = int(d.sv("target"))
		p.Insts = append(p.Insts, in)
	}
	nblock := d.uv("block metadata length")
	if d.err == nil && nblock > uint64(d.r.Len()) {
		d.err = fmt.Errorf("trace: block metadata length %d exceeds remaining body", nblock)
	}
	for i := uint64(0); i < nblock && d.err == nil; i++ {
		p.BlockLen = append(p.BlockLen, int(d.uv("block length")))
	}
	nchunks := d.uv("chunk count")
	for i := uint64(0); i < nchunks && d.err == nil; i++ {
		addr := d.uv("chunk addr")
		n := d.uv("chunk length")
		if d.err != nil {
			break
		}
		if n > uint64(d.r.Len()) {
			d.err = fmt.Errorf("trace: truncated chunk data: length %d exceeds remaining %d", n, d.r.Len())
			break
		}
		data := make([]byte, n)
		io.ReadFull(d.r, data)
		p.InitMem = append(p.InitMem, isa.InitChunk{Addr: addr, Data: data})
	}
	return p
}

func putUvarint(w *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putVarint(w *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}
