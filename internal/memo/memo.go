// Package memo is the content-addressed result store behind the simulation
// service (internal/serve): a deterministic cell's canonical JSON value,
// keyed by the content hash of its spec (campaign.Key over workload, defense,
// consistency, seed, budget, kernel). Because every simulation in this repo
// is proven byte-deterministic, a memoized value is byte-exact — a cache hit
// is indistinguishable from a fresh run, so repeated traffic for the same
// cell costs one disk read instead of one simulation.
//
// Three layers of protection keep the cache trustworthy:
//
//   - Integrity: every entry file carries a header with the sha256 and length
//     of its value bytes. A truncated, torn, or bit-flipped entry fails the
//     check on read and is deleted and recomputed — corruption can degrade a
//     hit into a miss, never into a wrong answer.
//   - Atomicity: entries are written to a temp file and renamed into place,
//     so a crash mid-write leaves either no entry or a whole one (the rename
//     is atomic on POSIX filesystems).
//   - In-flight deduplication (singleflight): concurrent Do calls for the
//     same key run the compute function once; followers wait and share the
//     leader's bytes. Identical requests from many users cost one simulation
//     even before the value reaches disk.
//
// The store is bounded: past MaxEntries, the least-recently-used entry is
// evicted. Recency is a persisted logical sequence number (never wall-clock),
// so eviction order is reproducible. Close persists the index (keys, sizes,
// recency) to index.json; Open reloads it and reconciles against the entry
// files actually on disk, so a SIGKILL between index writes costs nothing
// but a cold recency order.
package memo

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// IndexSchema identifies the persisted index format; Open ignores others and
// falls back to a directory scan.
const IndexSchema = "simcache-index/v1"

// entrySchema identifies the per-entry header format.
const entrySchema = "simcache/v1"

// indexName is the persisted index file inside the store directory.
const indexName = "index.json"

// entrySuffix marks entry files; everything else in the directory is ignored.
const entrySuffix = ".cell"

// Options tunes a store.
type Options struct {
	// MaxEntries bounds the store; 0 means unlimited. When a Put would
	// exceed it, least-recently-used entries are evicted first.
	MaxEntries int
}

// Stats is a snapshot of the store's counters. Hits counts disk hits plus
// in-flight dedup hits (FlightHits is the dedup share of that total);
// Corrupt counts entries that failed their integrity check and were
// discarded.
type Stats struct {
	Hits       uint64 `json:"hits"`
	FlightHits uint64 `json:"flight_hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Corrupt    uint64 `json:"corrupt"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
}

// HitRate is hits over total lookups (0 when the store is untouched).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached value's index record.
type entry struct {
	Size int64  `json:"size"`
	Seq  uint64 `json:"seq"` // logical recency; higher = more recent
}

// entryHeader is the first line of an entry file; the value bytes follow the
// newline.
type entryHeader struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
	Len    int64  `json:"len"`
}

// flight is one in-progress computation other callers can wait on.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Store is the on-disk content-addressed cache. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	entries map[string]*entry
	flights map[string]*flight
	seq     uint64
	stats   Stats
}

// persistedIndex is the index.json format.
type persistedIndex struct {
	Schema  string `json:"schema"`
	Seq     uint64 `json:"seq"`
	Entries []struct {
		Key  string `json:"key"`
		Size int64  `json:"size"`
		Seq  uint64 `json:"seq"`
	} `json:"entries"`
}

// Open creates (or reopens) the store rooted at dir. An existing index.json
// seeds the recency order; entry files on disk that the index does not know
// about (a crash before the last Close) are adopted with cold recency, and
// index records whose files vanished are dropped.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: creating store dir %s: %w", dir, err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		entries: make(map[string]*entry),
		flights: make(map[string]*flight),
	}
	// Seed from the persisted index, if one survives and parses. Any
	// problem falls through to the directory scan — the index is a recency
	// optimization, never the source of truth.
	if data, err := os.ReadFile(filepath.Join(dir, indexName)); err == nil {
		var idx persistedIndex
		if json.Unmarshal(data, &idx) == nil && idx.Schema == IndexSchema {
			s.seq = idx.Seq
			for _, e := range idx.Entries {
				s.entries[e.Key] = &entry{Size: e.Size, Seq: e.Seq}
			}
		}
	}
	// Reconcile against the files actually present.
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("memo: scanning store dir %s: %w", dir, err)
	}
	onDisk := make(map[string]int64)
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), entrySuffix) {
			continue
		}
		key := strings.TrimSuffix(de.Name(), entrySuffix)
		info, err := de.Info()
		if err != nil {
			continue
		}
		onDisk[key] = info.Size()
	}
	for key := range s.entries {
		if _, ok := onDisk[key]; !ok {
			delete(s.entries, key)
		}
	}
	// Adopt orphans in sorted order so their relative recency is
	// deterministic.
	var orphans []string
	for key := range onDisk {
		if _, ok := s.entries[key]; !ok {
			orphans = append(orphans, key)
		}
	}
	sort.Strings(orphans)
	for _, key := range orphans {
		s.seq++
		s.entries[key] = &entry{Size: onDisk[key], Seq: s.seq}
	}
	s.recountLocked()
	return s, nil
}

// recountLocked refreshes the entry-count/byte-size stats. Callers hold mu.
func (s *Store) recountLocked() {
	s.stats.Entries = len(s.entries)
	s.stats.Bytes = 0
	for _, e := range s.entries {
		s.stats.Bytes += e.Size
	}
}

// path returns the entry file for a key.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+entrySuffix)
}

// Get returns the cached value for key, verifying its integrity. A missing,
// truncated, or corrupted entry counts as a miss (and is removed so the next
// Put rewrites it cleanly).
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	val, ok := s.getLocked(key)
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return val, ok
}

// getLocked is Get without the hit/miss accounting, for Do. Callers hold mu.
func (s *Store) getLocked(key string) ([]byte, bool) {
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	val, err := readEntry(s.path(key), key)
	if err != nil {
		// Integrity failure: drop the entry so it is recomputed. The
		// distinction between "file vanished" and "file corrupt" does not
		// matter to the caller — both are a miss.
		s.stats.Corrupt++
		delete(s.entries, key)
		os.Remove(s.path(key))
		s.recountLocked()
		return nil, false
	}
	s.seq++
	e.Seq = s.seq
	return val, true
}

// readEntry loads and verifies one entry file.
func readEntry(path, key string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, errors.New("memo: entry has no header line")
	}
	var h entryHeader
	if err := json.Unmarshal(data[:nl], &h); err != nil {
		return nil, fmt.Errorf("memo: entry header corrupt: %w", err)
	}
	if h.Schema != entrySchema {
		return nil, fmt.Errorf("memo: entry schema %q, want %q", h.Schema, entrySchema)
	}
	if h.Key != key {
		return nil, fmt.Errorf("memo: entry key %q under file for %q", h.Key, key)
	}
	val := data[nl+1:]
	if int64(len(val)) != h.Len {
		return nil, fmt.Errorf("memo: entry value %d bytes, header says %d", len(val), h.Len)
	}
	sum := sha256.Sum256(val)
	if hex.EncodeToString(sum[:]) != h.SHA256 {
		return nil, errors.New("memo: entry value hash mismatch")
	}
	return val, nil
}

// Put stores val under key (atomically: temp file + rename) and evicts the
// least-recently-used entries if the store exceeds its bound.
func (s *Store) Put(key string, val []byte) error {
	sum := sha256.Sum256(val)
	header, err := json.Marshal(entryHeader{
		Schema: entrySchema,
		Key:    key,
		SHA256: hex.EncodeToString(sum[:]),
		Len:    int64(len(val)),
	})
	if err != nil {
		return fmt.Errorf("memo: marshaling entry header: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("memo: creating temp entry: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(append(header, '\n'), val...)); err != nil {
		tmp.Close()
		return fmt.Errorf("memo: writing entry for %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("memo: closing entry for %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("memo: installing entry for %s: %w", key, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	// Size matches what Open's directory scan will see: header + \n + value.
	s.entries[key] = &entry{Size: int64(len(header)) + 1 + int64(len(val)), Seq: s.seq}
	s.evictLocked(key)
	s.recountLocked()
	return nil
}

// evictLocked removes least-recently-used entries until the store fits its
// bound, never evicting the just-written key. Callers hold mu.
func (s *Store) evictLocked(justPut string) {
	if s.opts.MaxEntries <= 0 {
		return
	}
	for len(s.entries) > s.opts.MaxEntries {
		victim, minSeq := "", ^uint64(0)
		for key, e := range s.entries {
			if key != justPut && e.Seq < minSeq {
				victim, minSeq = key, e.Seq
			}
		}
		if victim == "" {
			return
		}
		delete(s.entries, victim)
		os.Remove(s.path(victim))
		s.stats.Evictions++
	}
}

// Do returns the value for key, computing it at most once across concurrent
// callers (singleflight): the first caller runs compute, followers wait and
// share the result. hit reports whether the value came from the cache or a
// concurrent computation rather than this call's own compute. A compute
// failure is returned to the leader and every follower, and nothing is
// cached, so a later Do retries. A failed Put does not fail Do — the value
// is correct, only its durability is lost — but the error is counted in
// Corrupt and surfaces on the next miss.
func (s *Store) Do(ctx context.Context, key string, compute func(ctx context.Context) ([]byte, error)) (val []byte, hit bool, err error) {
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.stats.Hits++
		s.stats.FlightHits++
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	if v, ok := s.getLocked(key); ok {
		s.stats.Hits++
		s.mu.Unlock()
		return v, true, nil
	}
	s.stats.Misses++
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	f.val, f.err = compute(ctx)
	if f.err == nil {
		// Best-effort durability; the in-memory result is already correct.
		_ = s.Put(key, f.val)
	}
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close persists the index so the next Open restores the recency order
// without a cold scan. The entry files themselves are already durable; a
// crash that skips Close loses only recency, never values.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := persistedIndex{Schema: IndexSchema, Seq: s.seq}
	keys := make([]string, 0, len(s.entries))
	for key := range s.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		e := s.entries[key]
		idx.Entries = append(idx.Entries, struct {
			Key  string `json:"key"`
			Size int64  `json:"size"`
			Seq  uint64 `json:"seq"`
		}{Key: key, Size: e.Size, Seq: e.Seq})
	}
	out, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("memo: marshaling index: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-index-*")
	if err != nil {
		return fmt.Errorf("memo: creating index temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(out, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("memo: writing index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("memo: closing index: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, indexName)); err != nil {
		return fmt.Errorf("memo: installing index: %w", err)
	}
	return nil
}
