package memo

// Satellite coverage for the content-addressed memo cache: concurrent
// identical submissions execute once (singleflight), a cache hit returns
// bytes identical to a fresh computation, and corrupted or truncated entries
// are detected by the integrity header and recomputed rather than served.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDoSingleflight: N concurrent Do calls for the same key run compute
// exactly once; every caller sees the same bytes, and exactly one caller is
// the (miss-counted) leader.
func TestDoSingleflight(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(ctx context.Context) ([]byte, error) {
		computes.Add(1)
		close(started)
		<-release // hold the flight open until every follower has joined
		return []byte(`{"v":42}`), nil
	}

	const callers = 8
	var (
		wg   sync.WaitGroup
		vals [callers][]byte
		hits [callers]bool
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], hits[0], _ = s.Do(context.Background(), "k", compute)
	}()
	<-started // the leader owns the flight; followers must join it
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], hits[i], _ = s.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
				t.Error("follower ran compute despite in-flight leader")
				return nil, nil
			})
		}(i)
	}
	// Wait until all followers are parked on the flight before releasing.
	for {
		st := s.Stats()
		if st.FlightHits == callers-1 {
			break
		}
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	leader := 0
	for i := range vals {
		if !bytes.Equal(vals[i], []byte(`{"v":42}`)) {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
		if !hits[i] {
			leader++
		}
	}
	if leader != 1 {
		t.Fatalf("%d callers reported a miss, want exactly 1 (the leader)", leader)
	}
	st := s.Stats()
	if st.Misses != 1 || st.FlightHits != callers-1 {
		t.Fatalf("stats misses=%d flightHits=%d, want 1 and %d", st.Misses, st.FlightHits, callers-1)
	}
}

// TestHitBytesIdentical: the bytes served by a hit — same store and after a
// reopen — are byte-identical to the fresh computation's.
func TestHitBytesIdentical(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	fresh := []byte(`{"workload":"mcf","cycles":123456,"cpi":1.2345678901234567}`)
	got, hit, err := s.Do(context.Background(), "cell", func(ctx context.Context) ([]byte, error) {
		return fresh, nil
	})
	if err != nil || hit || !bytes.Equal(got, fresh) {
		t.Fatalf("fresh Do: val=%q hit=%v err=%v", got, hit, err)
	}
	again, hit, err := s.Do(context.Background(), "cell", func(ctx context.Context) ([]byte, error) {
		t.Error("compute ran on a warm key")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(again, fresh) {
		t.Fatalf("warm Do: val=%q hit=%v err=%v", again, hit, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A reopened store (fresh process) serves the same bytes from disk.
	s2 := mustOpen(t, dir, Options{})
	reopened, ok := s2.Get("cell")
	if !ok || !bytes.Equal(reopened, fresh) {
		t.Fatalf("reopened Get: val=%q ok=%v", reopened, ok)
	}
}

// TestCorruptionDetected: truncated values, flipped bits, mangled headers,
// and empty files all fail the integrity check, count as misses, and are
// recomputed.
func TestCorruptionDetected(t *testing.T) {
	val := []byte(`{"v":"payload-that-matters"}`)
	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"header-mangled", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("{not json\n"+string(val)), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			if _, _, err := s.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
				return val, nil
			}); err != nil {
				t.Fatal(err)
			}
			c.corrupt(t, filepath.Join(dir, "k"+entrySuffix))
			var recomputed atomic.Int64
			got, hit, err := s.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
				recomputed.Add(1)
				return val, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if hit || recomputed.Load() != 1 {
				t.Fatalf("corrupted entry served as a hit (hit=%v recomputed=%d)", hit, recomputed.Load())
			}
			if !bytes.Equal(got, val) {
				t.Fatalf("recompute returned %q, want %q", got, val)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt counter %d, want 1", st.Corrupt)
			}
			// The rewritten entry must verify again.
			if fixed, ok := s.Get("k"); !ok || !bytes.Equal(fixed, val) {
				t.Fatalf("rewritten entry: val=%q ok=%v", fixed, ok)
			}
		})
	}
}

// TestComputeErrorNotCached: a failed compute caches nothing; the next Do
// retries and can succeed.
func TestComputeErrorNotCached(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	boom := fmt.Errorf("transient blip")
	if _, _, err := s.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		return nil, boom
	}); err != boom {
		t.Fatalf("err = %v, want the compute error", err)
	}
	got, hit, err := s.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		return []byte(`{"ok":true}`), nil
	})
	if err != nil || hit || string(got) != `{"ok":true}` {
		t.Fatalf("retry Do: val=%q hit=%v err=%v", got, hit, err)
	}
}

// TestEvictionLRU: past MaxEntries the least-recently-used entry is evicted,
// and touching an entry protects it.
func TestEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxEntries: 2})
	put := func(key string) {
		t.Helper()
		if err := s.Put(key, []byte(`{"k":"`+key+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	if _, ok := s.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	put("c")
	if _, ok := s.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a evicted despite recent touch")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats evictions=%d entries=%d, want 1 and 2", st.Evictions, st.Entries)
	}
	if _, err := os.Stat(filepath.Join(dir, "b"+entrySuffix)); !os.IsNotExist(err) {
		t.Fatalf("evicted entry file still on disk (err=%v)", err)
	}
}

// TestIndexRoundTrip: Close persists the index; Open restores entries and
// recency, and reconciles against files added or removed behind its back.
func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for _, key := range []string{"a", "b", "c"} {
		if err := s.Put(key, []byte(`{"k":"`+key+`"}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate out-of-band changes: one entry vanishes, the reopened store
	// must drop it; the others must still verify.
	if err := os.Remove(filepath.Join(dir, "b"+entrySuffix)); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if st := s2.Stats(); st.Entries != 2 {
		t.Fatalf("reopened entries = %d, want 2", st.Entries)
	}
	if _, ok := s2.Get("a"); !ok {
		t.Fatal("a missing after reopen")
	}
	if _, ok := s2.Get("b"); ok {
		t.Fatal("b resurrected after out-of-band delete")
	}
	// A store dir with entry files but no index (crash before Close) still
	// opens and serves.
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	if got, ok := s3.Get("c"); !ok || string(got) != `{"k":"c"}` {
		t.Fatalf("index-less reopen: val=%q ok=%v", got, ok)
	}
}
