package defense

// The registry maps scheme names to implementations. Registration order
// is preserved: All() is the canonical defense enumeration every matrix
// (bench sweep, leakage scan, conformance fuzz, kernel oracle) iterates,
// so its order is part of every deterministic artifact's byte layout.

import (
	"fmt"
	"sort"
	"strings"
)

var registry struct {
	byName map[string]Defense
	order  []Defense
}

// Register adds a scheme to the registry, rejecting empty and duplicate
// names. Ordinary schemes register from init via MustRegister; the error
// form exists so tests can exercise the rejection paths without panics.
func Register(d Defense) error {
	name := d.Name()
	if name == "" {
		return fmt.Errorf("defense: Register: scheme has empty name")
	}
	if strings.ContainsAny(name, ", \t\n") {
		return fmt.Errorf("defense: Register: name %q contains separator characters", name)
	}
	if _, dup := registry.byName[name]; dup {
		return fmt.Errorf("defense: Register: duplicate scheme name %q", name)
	}
	if registry.byName == nil {
		registry.byName = make(map[string]Defense)
	}
	registry.byName[name] = d
	registry.order = append(registry.order, d)
	return nil
}

// MustRegister is Register for init-time use; a bad registration is a
// programming error and panics.
func MustRegister(d Defense) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// All returns every registered scheme in registration order (the five
// paper configurations first, then later additions). The returned slice
// is a copy.
func All() []Defense {
	out := make([]Defense, len(registry.order))
	copy(out, registry.order)
	return out
}

// Names returns every registered scheme name in registration order.
func Names() []string {
	names := make([]string, len(registry.order))
	for i, d := range registry.order {
		names[i] = d.Name()
	}
	return names
}

// Lookup resolves a scheme by name. The error lists the registered names
// so CLI messages are self-documenting.
func Lookup(name string) (Defense, error) {
	if d, ok := registry.byName[name]; ok {
		return d, nil
	}
	known := Names()
	sort.Strings(known)
	return nil, fmt.Errorf("defense: unknown scheme %q (registered: %s)",
		name, strings.Join(known, ", "))
}
