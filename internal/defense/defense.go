// Package defense is the pluggable countermeasure framework: every
// speculative-execution defense the simulator models is a Defense
// implementation registered by name, and every consumer — config, the
// harness sweeps, the leakage scanner, the conformance fuzzer, the
// kernel-equivalence oracle, all four CLIs — resolves schemes through the
// registry instead of switching on an enum. Registering a new scheme is
// sufficient for every matrix and CI gate to pick it up.
//
// The interface deliberately exposes only the narrow decision points the
// paper's five configurations reach into the pipeline for; everything a
// hook may observe about machine state comes through the read-only View.
// A scheme therefore cannot mutate the core, reorder its stages, or see
// anything a real hardware policy block could not see — which is what
// keeps the stepped/fast kernel equivalence and the golden-interpreter
// conformance proofs valid for every registered scheme at once.
//
// Hook ordering over an instruction's lifetime (see DESIGN.md §13):
//
//	dispatch:  StallDispatch → FenceBeforeLoads/FenceAfterBranches
//	issue:     UsesInvisibleLoads → LoadSafeNow (safe load vs USL)
//	visible:   LoadVisible → validation/exposure (ValidationBlocksYounger)
//	retire:    OnRetireLoad; DefersInterrupts gates interrupt delivery
//	squash:    OnSquash
package defense

import "invisispec/internal/stats"

// View is the read-only window a policy hook gets into the querying
// core's state. The core implements it; schemes may only ask the
// questions below — each corresponds to a piece of tracking hardware a
// real implementation of the scheme would carry.
type View interface {
	// OlderUnresolvedBranch reports whether any conditional branch or
	// mispredictable indirect jump older than the instruction at logical
	// ROB index rl is still unresolved — the paper's Spectre-model
	// visibility point test.
	OlderUnresolvedBranch(rl int) bool
	// FutureVisible reports whether the instruction at logical ROB index
	// rl has reached the Futuristic-model visibility point: nothing older
	// can squash it (no unresolved branch, no possibly-faulting or
	// unperformed memory op, no fence ahead of it).
	FutureVisible(rl int) bool
	// OlderUnresolvedControl reports whether any mispredictable
	// control-flow instruction (conditional branch, indirect jump,
	// return) anywhere in the ROB is still unresolved — the
	// BasicBlocker-style "may the front end run past a block boundary"
	// test, independent of any particular younger instruction.
	OlderUnresolvedControl() bool
}

// Defense is one speculation countermeasure. Implementations must be
// stateless value types: the same scheme instance is shared by every
// core of every concurrently-running machine, so all per-run state lives
// in the core and the hooks must be pure functions of (View, arguments).
type Defense interface {
	// Name is the registry key and the label every artifact, report and
	// CLI flag uses ("Base", "IS-Fu", "SpecBox", ...).
	Name() string
	// Description is a one-line summary for -listdefenses and docs.
	Description() string
	// ThreatModel names what the scheme defends against ("none",
	// "Spectre", "Futuristic", ...), for reports and the README table.
	ThreatModel() string

	// UsesInvisibleLoads reports whether speculative loads issue as USLs
	// through the speculative-buffer machinery (invisible fills,
	// validation/exposure at the visibility point). False means loads
	// issue as ordinary cache accesses.
	UsesInvisibleLoads() bool
	// FenceBeforeLoads inserts a synthetic fence before every load at
	// dispatch (the paper's Fe-Fu baseline).
	FenceBeforeLoads() bool
	// FenceAfterBranches inserts a synthetic fence after every
	// mispredictable control instruction at dispatch (the paper's Fe-Sp
	// baseline).
	FenceAfterBranches() bool

	// LoadSafeNow reports whether the load at logical ROB index rl may
	// issue as an ordinary (visible) access right now. Only consulted
	// when UsesInvisibleLoads is true; returning false makes the load an
	// USL. Loads carrying a trusted §XI safe annotation bypass this hook
	// entirely (the core handles that threat-model carve-out before
	// asking the scheme).
	LoadSafeNow(v View, rl int) bool
	// LoadVisible reports whether the USL at logical ROB index rl has
	// reached its visibility point and may start validation/exposure.
	// Must eventually return true for the ROB head (rl == 0) on every
	// scheme, or retirement deadlocks.
	LoadVisible(v View, rl int) bool
	// ValidationBlocksYounger reports whether an USL awaiting validation
	// blocks younger USLs from starting their own validation/exposure
	// (the Futuristic model's ordering requirement; overridable per
	// machine by config.Machine.OverlapValExp for Spectre-model runs).
	ValidationBlocksYounger() bool
	// DefersInterrupts reports whether external interrupts are held off
	// while USLs are in flight (§VI-D: an interrupt would squash
	// speculatively-performed loads whose effects must stay invisible).
	DefersInterrupts() bool

	// StallDispatch reports whether dispatch must stall before the next
	// instruction. blockStart is true when that instruction is a basic
	// block leader per the program's bb metadata. Stalls must be
	// transient: the condition has to clear once older instructions
	// resolve, or the machine deadlocks (the watchdog will flag it).
	StallDispatch(v View, blockStart bool) bool

	// OnRetireLoad is the retire-time cleanup hook, called once per
	// retired load or prefetch; wasSpec reports whether the entry went
	// through the speculative (USL) path. Schemes use it for per-class
	// accounting (e.g. SpecBox label clearing).
	OnRetireLoad(st *stats.Core, wasSpec bool)
	// OnSquash is the squash-time cleanup hook, called once per pipeline
	// squash with the number of speculative (USL) load-queue entries the
	// squash invalidated.
	OnSquash(st *stats.Core, specFlushed int)
}

// Unprotected is the embeddable no-op policy: every hook returns the
// permissive default (loads issue and perform visibly, nothing stalls,
// nothing is counted). Schemes embed it and override only the hooks they
// implement, so adding a hook to the interface does not break existing
// schemes.
type Unprotected struct{}

// UsesInvisibleLoads returns false: loads are ordinary cache accesses.
func (Unprotected) UsesInvisibleLoads() bool { return false }

// FenceBeforeLoads returns false: no fences inserted before loads.
func (Unprotected) FenceBeforeLoads() bool { return false }

// FenceAfterBranches returns false: no fences inserted after branches.
func (Unprotected) FenceAfterBranches() bool { return false }

// LoadSafeNow returns true: every load may issue visibly at once.
func (Unprotected) LoadSafeNow(View, int) bool { return true }

// LoadVisible returns true: an USL is immediately at its visibility point.
func (Unprotected) LoadVisible(View, int) bool { return true }

// ValidationBlocksYounger returns false: validations overlap freely.
func (Unprotected) ValidationBlocksYounger() bool { return false }

// DefersInterrupts returns false: interrupts deliver immediately.
func (Unprotected) DefersInterrupts() bool { return false }

// StallDispatch returns false: the front end never stalls for the scheme.
func (Unprotected) StallDispatch(View, bool) bool { return false }

// OnRetireLoad counts nothing.
func (Unprotected) OnRetireLoad(*stats.Core, bool) {}

// OnSquash counts nothing.
func (Unprotected) OnSquash(*stats.Core, int) {}
