package defense

// The built-in schemes: the paper's five configurations plus the two
// drop-in countermeasures that prove the framework (SpecBox-style label
// quarantine, BasicBlocker-style ISA-assisted block speculation
// control). Registration order here is the canonical matrix order.

import "invisispec/internal/stats"

func init() {
	MustRegister(baseScheme{})
	MustRegister(fenceSpectre{})
	MustRegister(isSpectre{})
	MustRegister(fenceFuture{})
	MustRegister(isFuture{})
	MustRegister(specBox{})
	MustRegister(basicBlocker{})
}

// baseScheme is the undefended out-of-order baseline every figure
// normalizes against.
type baseScheme struct{ Unprotected }

func (baseScheme) Name() string        { return "Base" }
func (baseScheme) Description() string { return "undefended out-of-order baseline" }
func (baseScheme) ThreatModel() string { return "none" }

// fenceSpectre is the paper's Fe-Sp: a fence after every mispredictable
// control instruction, so nothing speculates past an unresolved branch.
type fenceSpectre struct{ Unprotected }

func (fenceSpectre) Name() string { return "Fe-Sp" }
func (fenceSpectre) Description() string {
	return "fence after every mispredictable control instruction"
}
func (fenceSpectre) ThreatModel() string      { return "Spectre" }
func (fenceSpectre) FenceAfterBranches() bool { return true }

// isSpectre is InvisiSpec under the Spectre threat model: loads with an
// older unresolved branch issue invisibly and become visible when every
// older branch has resolved.
type isSpectre struct{ Unprotected }

func (isSpectre) Name() string { return "IS-Sp" }
func (isSpectre) Description() string {
	return "InvisiSpec, Spectre model: invisible until older branches resolve"
}
func (isSpectre) ThreatModel() string      { return "Spectre" }
func (isSpectre) UsesInvisibleLoads() bool { return true }
func (isSpectre) LoadSafeNow(v View, rl int) bool {
	return !v.OlderUnresolvedBranch(rl)
}
func (isSpectre) LoadVisible(v View, rl int) bool {
	return !v.OlderUnresolvedBranch(rl)
}

// fenceFuture is the paper's Fe-Fu: a fence before every load, the
// conservative baseline for the Futuristic model.
type fenceFuture struct{ Unprotected }

func (fenceFuture) Name() string           { return "Fe-Fu" }
func (fenceFuture) Description() string    { return "fence before every load" }
func (fenceFuture) ThreatModel() string    { return "Futuristic" }
func (fenceFuture) FenceBeforeLoads() bool { return true }

// isFuture is InvisiSpec under the Futuristic threat model: loads are
// invisible until nothing older can squash them, validations block
// younger validations, and interrupts are deferred while USLs are in
// flight.
type isFuture struct{ Unprotected }

func (isFuture) Name() string { return "IS-Fu" }
func (isFuture) Description() string {
	return "InvisiSpec, Futuristic model: invisible until no older squash source remains"
}
func (isFuture) ThreatModel() string      { return "Futuristic" }
func (isFuture) UsesInvisibleLoads() bool { return true }
func (isFuture) LoadSafeNow(v View, rl int) bool {
	return v.FutureVisible(rl)
}
func (isFuture) LoadVisible(v View, rl int) bool {
	return rl == 0 || v.FutureVisible(rl)
}
func (isFuture) ValidationBlocksYounger() bool { return true }
func (isFuture) DefersInterrupts() bool        { return true }

// specBox is the SpecBox-style label-based design: every speculative
// fill is tagged and quarantined in a shadow structure (the speculative
// buffer plays that role) and only merges into the visible hierarchy
// when the load reaches the head of the ROB — the strictest visibility
// point, so no transient load of any squash cause ever perturbs the
// caches. Labels are cleared as loads retire and flushed wholesale on
// squash; the scheme counts both transitions.
type specBox struct{ Unprotected }

func (specBox) Name() string { return "SpecBox" }
func (specBox) Description() string {
	return "label-based quarantine: speculative fills invisible until ROB head"
}
func (specBox) ThreatModel() string      { return "Futuristic" }
func (specBox) UsesInvisibleLoads() bool { return true }
func (specBox) LoadSafeNow(v View, rl int) bool {
	return rl == 0
}
func (specBox) LoadVisible(v View, rl int) bool {
	return rl == 0
}
func (specBox) ValidationBlocksYounger() bool { return true }
func (specBox) DefersInterrupts() bool        { return true }
func (specBox) OnRetireLoad(st *stats.Core, wasSpec bool) {
	if wasSpec {
		st.SpecLabelsCleared++
	}
}
func (specBox) OnSquash(st *stats.Core, specFlushed int) {
	st.SpecLabelsFlushed += uint64(specFlushed)
}

// basicBlocker is the BasicBlocker-style ISA-assisted scheme: the
// program carries bb metadata marking basic-block leaders (computed by
// the builder, conservatively every instruction when absent), and the
// front end refuses to dispatch past a block boundary while any
// mispredictable control instruction is unresolved. Loads inside the
// current block execute visibly — the scheme trades same-block
// (Meltdown-style) exposure for zero load-path hardware.
type basicBlocker struct{ Unprotected }

func (basicBlocker) Name() string { return "BasicBlocker" }
func (basicBlocker) Description() string {
	return "ISA-assisted: dispatch stalls at block boundaries until control resolves"
}
func (basicBlocker) ThreatModel() string { return "Spectre" }
func (basicBlocker) StallDispatch(v View, blockStart bool) bool {
	return blockStart && v.OlderUnresolvedControl()
}
