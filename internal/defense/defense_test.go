package defense

import (
	"strings"
	"testing"

	"invisispec/internal/stats"
)

// named is a minimal registrable scheme for registry-error tests.
type named struct {
	Unprotected
	name string
}

func (n named) Name() string        { return n.name }
func (n named) Description() string { return "test scheme" }
func (n named) ThreatModel() string { return "none" }

func TestBuiltinRegistrations(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("registry has %d schemes, want 7", len(all))
	}
	// Registration order is the paper's figure order followed by the two
	// post-paper schemes; All() must preserve it so every matrix (bench
	// columns, leakage report, conformance sweep) stays stable.
	wantOrder := []string{"Base", "Fe-Sp", "IS-Sp", "Fe-Fu", "IS-Fu", "SpecBox", "BasicBlocker"}
	for i, d := range all {
		if d.Name() != wantOrder[i] {
			t.Errorf("All()[%d] = %q, want %q", i, d.Name(), wantOrder[i])
		}
	}
	names := Names()
	for i, n := range names {
		if n != wantOrder[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, n, wantOrder[i])
		}
	}
	for _, d := range all {
		if d.Description() == "" || d.ThreatModel() == "" {
			t.Errorf("%s: empty description or threat model", d.Name())
		}
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0] = named{name: "clobbered"}
	if All()[0].Name() != "Base" {
		t.Fatal("mutating All()'s result corrupted the registry")
	}
}

func TestRegisterRejections(t *testing.T) {
	cases := []struct {
		label string
		d     Defense
		want  string
	}{
		{"duplicate", named{name: "Base"}, "duplicate"},
		{"empty", named{name: ""}, "empty name"},
		{"comma", named{name: "a,b"}, "name"},
		{"space", named{name: "a b"}, "name"},
		{"tab", named{name: "a\tb"}, "name"},
		{"newline", named{name: "a\nb"}, "name"},
	}
	for _, c := range cases {
		err := Register(c.d)
		if err == nil {
			t.Errorf("%s: Register(%q) accepted", c.label, c.d.Name())
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.label, err, c.want)
		}
	}
	if len(All()) != 7 {
		t.Fatalf("rejected registrations leaked into the registry: %v", Names())
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister(duplicate) did not panic")
		}
	}()
	MustRegister(named{name: "Base"})
}

func TestLookup(t *testing.T) {
	for _, n := range Names() {
		d, err := Lookup(n)
		if err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
			continue
		}
		if d.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, d.Name())
		}
	}
	_, err := Lookup("NoSuchScheme")
	if err == nil {
		t.Fatal("Lookup resolved an unregistered name")
	}
	// The error must list the registered names so a CLI typo is
	// self-diagnosing.
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("Lookup error %q does not list %q", err, n)
		}
	}
}

func TestUnprotectedDefaults(t *testing.T) {
	var u Unprotected
	if u.UsesInvisibleLoads() || u.FenceBeforeLoads() || u.FenceAfterBranches() {
		t.Error("Unprotected must not enable any mechanism")
	}
	if !u.LoadSafeNow(nil, 3) || !u.LoadVisible(nil, 3) {
		t.Error("Unprotected loads must always be safe and visible")
	}
	if u.ValidationBlocksYounger() || u.DefersInterrupts() {
		t.Error("Unprotected must not constrain retirement")
	}
	if u.StallDispatch(nil, true) {
		t.Error("Unprotected must never stall dispatch")
	}
	var st stats.Core
	u.OnRetireLoad(&st, true)
	u.OnSquash(&st, 4)
	if st != (stats.Core{}) {
		t.Error("Unprotected hooks must not touch stats")
	}
}

func TestSchemeContracts(t *testing.T) {
	// Cross-scheme sanity: every invisible-load scheme must let the ROB-head
	// load become visible unconditionally (rl == 0), or retirement deadlocks.
	view := stuckView{}
	for _, d := range All() {
		if !d.UsesInvisibleLoads() {
			continue
		}
		if !d.LoadVisible(view, 0) {
			t.Errorf("%s: ROB-head load never becomes visible (deadlock)", d.Name())
		}
	}
	// SpecBox accounting hooks must feed the label counters.
	sb, err := Lookup("SpecBox")
	if err != nil {
		t.Fatal(err)
	}
	var st stats.Core
	sb.OnRetireLoad(&st, true)
	sb.OnRetireLoad(&st, false)
	sb.OnSquash(&st, 3)
	if st.SpecLabelsCleared != 1 || st.SpecLabelsFlushed != 3 {
		t.Errorf("SpecBox accounting: cleared=%d flushed=%d, want 1, 3",
			st.SpecLabelsCleared, st.SpecLabelsFlushed)
	}
}

// stuckView reports maximally-pessimistic speculation state consistent with
// the core's structural invariants: every older branch unresolved (but
// nothing can be older than the ROB head, so rl == 0 has no older branches),
// nothing future-visible, unresolved control in flight.
type stuckView struct{}

func (stuckView) OlderUnresolvedBranch(rl int) bool { return rl > 0 }
func (stuckView) FutureVisible(int) bool            { return false }
func (stuckView) OlderUnresolvedControl() bool      { return true }
