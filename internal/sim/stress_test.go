package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/invariant"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
)

// Coherence/consistency stress: four cores hammer a shared region with a
// random mix of atomic increments, plain read-modify-writes under ticket
// locks, and racy reads — then machine-wide invariants are checked:
//
//  1. every atomic counter equals exactly the number of RMWs retired on it;
//  2. every lock-protected counter equals its critical-section count;
//  3. racy readers only ever observed values that some writer produced.
//
// This runs under a sample of defense x consistency configurations and is
// the closest thing to a protocol fuzzer the deterministic engine allows:
// different seeds produce different interleavings of the same guarantees.
func TestSharedMemoryStress(t *testing.T) {
	seeds := []int64{1, 7, 1234}
	cfgs := []config.Run{
		{Defense: config.Base, Consistency: config.TSO},
		{Defense: config.ISSpectre, Consistency: config.TSO},
		{Defense: config.ISFuture, Consistency: config.TSO},
		{Defense: config.ISFuture, Consistency: config.RC},
		{Defense: config.FenceFuture, Consistency: config.TSO},
	}
	for _, seed := range seeds {
		for _, c := range cfgs {
			c := c
			t.Run(fmt.Sprintf("seed%d/%v-%v", seed, c.Defense, c.Consistency), func(t *testing.T) {
				stressOnce(t, seed, c.Defense, c.Consistency, 0)
			})
		}
	}
}

// The same stress guarantees must hold under deterministic fault injection:
// delays and modelled drops change interleavings, never outcomes. Three
// fault seeds over the two most demanding configurations.
func TestSharedMemoryStressUnderFaults(t *testing.T) {
	cfgs := []config.Run{
		{Defense: config.ISSpectre, Consistency: config.TSO},
		{Defense: config.ISFuture, Consistency: config.RC},
	}
	for _, faultSeed := range []int64{5, 50, 500} {
		for _, c := range cfgs {
			c := c
			faultSeed := faultSeed
			t.Run(fmt.Sprintf("fault%d/%v-%v", faultSeed, c.Defense, c.Consistency), func(t *testing.T) {
				stressOnce(t, 7, c.Defense, c.Consistency, faultSeed)
			})
		}
	}
}

const (
	stCounters   = 0x800000 // 4 atomic counters, one line apart
	stLockBase   = 0x810000 // ticket lock (ticket, serving on separate lines)
	stProtected  = 0x820000 // lock-protected counter
	stRacyBase   = 0x830000 // racy cell written with distinctive values
	stDoneBase   = 0x840000 // per-core completion markers
	stIterations = 30
)

func stressOnce(t *testing.T, seed int64, d config.Defense, cm config.Consistency, faultSeed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const cores = 4
	progs := make([]*isa.Program, cores)
	rmwPerCounter := make([]int, 4)
	csPerCore := make([]int, cores)
	for core := 0; core < cores; core++ {
		progs[core], rmwPerCounter, csPerCore[core] = stressProgram(rng, core, rmwPerCounter)
	}
	r := config.Run{Machine: config.Default(cores), Defense: d, Consistency: cm}
	m := sim.MustNew(r, progs)
	if faultSeed != 0 {
		m.SeedFaults(faultSeed)
	}
	// The hardening layer audits structural, coherence, and InvisiSpec
	// invariants throughout the run; a violation fails the test with a dump.
	m.EnableChecking(invariant.Options{Interval: 1024})
	if err := m.RunToCompletion(80_000_000); err != nil {
		t.Fatal(err)
	}
	// Invariant 1: atomic counters.
	for i, want := range rmwPerCounter {
		if got := m.Mem.Read(stCounters+uint64(i*64), 8); got != uint64(want) {
			t.Errorf("atomic counter %d = %d, want %d", i, got, want)
		}
	}
	// Invariant 2: the lock-protected plain counter.
	totalCS := 0
	for _, n := range csPerCore {
		totalCS += n
	}
	if got := m.Mem.Read(stProtected, 8); got != uint64(totalCS) {
		t.Errorf("protected counter = %d, want %d", got, totalCS)
	}
	// Invariant 3: racy observations are values some writer stored
	// (core*1000 + iteration) or zero.
	for core := 0; core < cores; core++ {
		for i := 0; i < stIterations; i++ {
			v := m.Mem.Read(stDoneBase+uint64(core)*4096+uint64(i*8), 8)
			if v == 0 {
				continue
			}
			w := v % 1000
			who := v / 1000
			if who >= cores || w >= stIterations {
				t.Errorf("core %d observed impossible racy value %d", core, v)
			}
		}
	}
}

// stressProgram builds one core's random operation mix. It returns the
// updated per-counter RMW totals and this core's critical-section count.
func stressProgram(rng *rand.Rand, core int, rmwTotals []int) (*isa.Program, []int, int) {
	const (
		rPtr    = 1
		rVal    = 2
		rOne    = 3
		rTicket = 4
		rServe  = 5
		rTmp    = 6
		rObs    = 7
		rIter   = 8
	)
	b := isa.NewBuilder(fmt.Sprintf("stress-c%d", core))
	b.Li(rOne, 1).Li(rIter, 0)
	cs := 0
	for i := 0; i < stIterations; i++ {
		switch rng.Intn(4) {
		case 0: // atomic increment of a random counter
			c := rng.Intn(4)
			rmwTotals[c]++
			b.Li(rPtr, stCounters+uint64(c*64)).
				RMW(8, rVal, rPtr, rOne)
		case 1: // lock-protected increment of the plain counter
			cs++
			lbl := fmt.Sprintf("spin%d", i)
			b.Li(rPtr, stLockBase).
				RMW(8, rTicket, rPtr, rOne).
				Label(lbl).
				Li(rPtr, stLockBase+64).
				Ld(8, rServe, rPtr, 0).
				Bne(rServe, rTicket, lbl).
				Acquire().
				Li(rPtr, stProtected).
				Ld(8, rTmp, rPtr, 0).
				AddI(rTmp, rTmp, 1).
				St(8, rPtr, 0, rTmp).
				Release().
				Li(rPtr, stLockBase+64).
				RMW(8, rTmp, rPtr, rOne)
		case 2: // racy distinctive write
			b.Li(rPtr, stRacyBase).
				Li(rVal, uint64(core*1000+i)).
				St(8, rPtr, 0, rVal)
		default: // racy read, recorded for the invariant check
			b.Li(rPtr, stRacyBase).
				Ld(8, rObs, rPtr, 0).
				Li(rPtr, stDoneBase+uint64(core)*4096+uint64(i*8)).
				St(8, rPtr, 0, rObs)
		}
	}
	b.Halt()
	return b.MustBuild(), rmwTotals, cs
}
