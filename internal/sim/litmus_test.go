package sim_test

import (
	"fmt"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/invariant"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
)

// Classic multiprocessor litmus tests, run under every defense and both
// memory models. Outcomes architecturally forbidden by the model (or by
// cache coherence itself) must never appear — InvisiSpec explicitly claims
// to preserve the memory model (paper §V-A3, Appendix), so these tests
// guard the validation/exposure machinery as much as the baseline.

// litmusRun executes per-core programs — with the hardening layer's
// invariant checkers and watchdog enabled, so a protocol bug surfaces as a
// typed violation with a dump rather than as a wrong litmus outcome — and
// returns a result-reading helper.
func litmusRun(t *testing.T, d config.Defense, cm config.Consistency, progs []*isa.Program) func(addr uint64) uint64 {
	return litmusRunFaulty(t, d, cm, progs, 0)
}

// litmusRunFaulty is litmusRun with deterministic fault injection (seed 0 =
// no faults).
func litmusRunFaulty(t *testing.T, d config.Defense, cm config.Consistency, progs []*isa.Program, faultSeed int64) func(addr uint64) uint64 {
	t.Helper()
	r := config.Run{Machine: config.Default(len(progs)), Defense: d, Consistency: cm}
	m := sim.MustNew(r, progs)
	if faultSeed != 0 {
		m.SeedFaults(faultSeed)
	}
	m.EnableChecking(invariant.Options{Interval: 512})
	if err := m.RunToCompletion(12_000_000); err != nil {
		t.Fatalf("%v/%v: %v", d, cm, err)
	}
	return func(addr uint64) uint64 { return m.Mem.Read(addr, 8) }
}

func allConfigs() []config.Run {
	var out []config.Run
	for _, d := range config.AllDefenses() {
		for _, cm := range []config.Consistency{config.TSO, config.RC} {
			out = append(out, config.Run{Defense: d, Consistency: cm})
		}
	}
	return out
}

// CoRR (coherence read-read): two reads of the same location by the same
// core must not see values going backwards in coherence order. With a
// single writer writing 1 then 2, a reader that sees 2 then (program-order
// later) 1 violates cache coherence — forbidden under EVERY model.
func TestLitmusCoRR(t *testing.T) {
	const x, r1, r2 = 0x10000, 0x30000, 0x30040
	writer := isa.NewBuilder("w").
		Li(1, x).Li(2, 1).Li(3, 2).
		St(8, 1, 0, 2).
		St(8, 1, 0, 3).
		Halt().MustBuild()
	reader := isa.NewBuilder("r").
		Li(1, x).Li(4, r1).Li(5, r2).
		// Delay a little so the writes race the reads interestingly.
		Li(9, 40).
		Label("d").AddI(9, 9, -1).Bne(9, 0, "d").
		Ld(8, 2, 1, 0).
		Ld(8, 3, 1, 0).
		St(8, 4, 0, 2).
		St(8, 5, 0, 3).
		Halt().MustBuild()
	for _, c := range allConfigs() {
		read := litmusRun(t, c.Defense, c.Consistency, []*isa.Program{writer, reader})
		v1, v2 := read(r1), read(r2)
		if v1 > v2 && v2 != 0 || v1 == 2 && v2 == 1 || v1 == 2 && v2 == 0 ||
			v1 == 1 && v2 == 0 {
			t.Errorf("%v/%v: CoRR violation: read %d then %d", c.Defense, c.Consistency, v1, v2)
		}
	}
}

// LB (load buffering): r1 = x; y = 1  ||  r2 = y; x = 1. The outcome
// r1 == 1 && r2 == 1 requires loads to take values from stores that are
// ordered after them — forbidden under TSO (and under RC without
// speculation across the data being forwarded out of thin air; our
// pipeline never forwards unperformed stores to other cores).
func TestLitmusLoadBuffering(t *testing.T) {
	const x, y, r1, r2 = 0x11000, 0x12000, 0x31000, 0x31040
	p0 := isa.NewBuilder("p0").
		Li(1, x).Li(2, y).Li(3, 1).Li(4, r1).
		Ld(8, 5, 1, 0).
		St(8, 2, 0, 3).
		St(8, 4, 0, 5).
		Halt().MustBuild()
	p1 := isa.NewBuilder("p1").
		Li(1, y).Li(2, x).Li(3, 1).Li(4, r2).
		Ld(8, 5, 1, 0).
		St(8, 2, 0, 3).
		St(8, 4, 0, 5).
		Halt().MustBuild()
	for _, c := range allConfigs() {
		read := litmusRun(t, c.Defense, c.Consistency, []*isa.Program{p0, p1})
		if read(r1) == 1 && read(r2) == 1 {
			t.Errorf("%v/%v: load-buffering outcome (1,1) observed", c.Defense, c.Consistency)
		}
	}
}

// WRC (write-to-read causality): P0 writes x; P1 reads x then writes y
// (with a release); P2 reads y (with an acquire) then reads x. If P2 sees
// y==1 it must also see x==1 — causality must not be broken by InvisiSpec's
// deferred visibility.
func TestLitmusWRC(t *testing.T) {
	const x, y, ry, rx = 0x13000, 0x14000, 0x32000, 0x32040
	p0 := isa.NewBuilder("p0").
		Li(1, x).Li(2, 1).
		St(8, 1, 0, 2).
		Halt().MustBuild()
	p1b := isa.NewBuilder("p1").
		Li(1, x).Li(2, y).Li(3, 1).
		Label("spin").
		Ld(8, 4, 1, 0).
		Beq(4, 0, "spin").
		Release() // order the x observation before the y publication
	p1 := p1b.St(8, 2, 0, 3).Halt().MustBuild()
	p2 := isa.NewBuilder("p2").
		Li(1, y).Li(2, x).Li(5, ry).Li(6, rx).
		Label("spin").
		Ld(8, 3, 1, 0).
		Beq(3, 0, "spin").
		Acquire().
		Ld(8, 4, 2, 0).
		St(8, 5, 0, 3).
		St(8, 6, 0, 4).
		Halt().MustBuild()
	for _, c := range allConfigs() {
		read := litmusRun(t, c.Defense, c.Consistency, []*isa.Program{p0, p1, p2})
		if read(ry) == 1 && read(rx) != 1 {
			t.Errorf("%v/%v: WRC causality violated (y=1 seen, x=%d)",
				c.Defense, c.Consistency, read(rx))
		}
	}
}

// IRIW (independent reads of independent writes) with full fences between
// the reader loads: both readers must agree on the order of the two
// independent writes. Forbidden outcome: r1=1,r2=0,r3=1,r4=0.
func TestLitmusIRIWWithFences(t *testing.T) {
	const x, y = 0x15000, 0x16000
	res := uint64(0x33000)
	w := func(addr uint64) *isa.Program {
		return isa.NewBuilder("w").
			Li(1, addr).Li(2, 1).
			St(8, 1, 0, 2).
			Halt().MustBuild()
	}
	reader := func(first, second uint64, slot uint64) *isa.Program {
		return isa.NewBuilder("r").
			Li(1, first).Li(2, second).Li(3, slot).
			Li(9, 30).
			Label("d").AddI(9, 9, -1).Bne(9, 0, "d").
			Ld(8, 4, 1, 0).
			Fence().
			Ld(8, 5, 2, 0).
			St(8, 3, 0, 4).
			St(8, 3, 64, 5).
			Halt().MustBuild()
	}
	for _, c := range allConfigs() {
		progs := []*isa.Program{
			w(x), w(y),
			reader(x, y, res),
			reader(y, x, res+128),
		}
		read := litmusRun(t, c.Defense, c.Consistency, progs)
		r1, r2 := read(res), read(res+64)      // saw x then y
		r3, r4 := read(res+128), read(res+192) // saw y then x
		if r1 == 1 && r2 == 0 && r3 == 1 && r4 == 0 {
			t.Errorf("%v/%v: IRIW readers disagree on write order", c.Defense, c.Consistency)
		}
	}
}

// MP with a data dependency instead of a fence: the reader's second load
// address depends on the flag value, which orders them on any machine that
// respects dependencies (ours resolves addresses before issuing).
func TestLitmusMPDataDependency(t *testing.T) {
	const data, flag, out = 0x17000, 0x18000, 0x34000
	w := isa.NewBuilder("w").
		Li(1, data).Li(2, flag).Li(3, 42).Li(4, 1).
		St(8, 1, 0, 3).
		Release().
		St(8, 2, 0, 4).
		Halt().MustBuild()
	r := isa.NewBuilder("r").
		Li(2, flag).Li(5, out).
		Label("spin").
		Ld(8, 3, 2, 0). // 1 when published
		Beq(3, 0, "spin").
		// addr = data + (flag-1): a true data dependency on the flag load.
		Li(6, data-1).
		Add(6, 6, 3).
		Ld(8, 7, 6, 0).
		St(8, 5, 0, 7).
		Halt().MustBuild()
	for _, c := range allConfigs() {
		read := litmusRun(t, c.Defense, c.Consistency, []*isa.Program{w, r})
		if got := read(out); got != 42 {
			t.Errorf("%v/%v: dependent load read %d, want 42", c.Defense, c.Consistency, got)
		}
	}
}

// Litmus outcomes and machine invariants must survive deterministic fault
// injection: NoC jitter, modelled drops with backoff, and DRAM noise stretch
// timing but may not break the memory model or the protocol. MP-dep is the
// most timing-sensitive of the suite (a spin loop racing a publication), so
// it runs under every configuration for three distinct fault seeds.
func TestLitmusMPDataDependencyUnderFaults(t *testing.T) {
	const data, flag, out = 0x17000, 0x18000, 0x34000
	w := isa.NewBuilder("w").
		Li(1, data).Li(2, flag).Li(3, 42).Li(4, 1).
		St(8, 1, 0, 3).
		Release().
		St(8, 2, 0, 4).
		Halt().MustBuild()
	r := isa.NewBuilder("r").
		Li(2, flag).Li(5, out).
		Label("spin").
		Ld(8, 3, 2, 0).
		Beq(3, 0, "spin").
		Li(6, data-1).
		Add(6, 6, 3).
		Ld(8, 7, 6, 0).
		St(8, 5, 0, 7).
		Halt().MustBuild()
	for _, seed := range []int64{11, 22, 33} {
		for _, c := range allConfigs() {
			read := litmusRunFaulty(t, c.Defense, c.Consistency, []*isa.Program{w, r}, seed)
			if got := read(out); got != 42 {
				t.Errorf("seed %d %v/%v: dependent load read %d, want 42",
					seed, c.Defense, c.Consistency, got)
			}
		}
	}
}

func TestLitmusNamesArePrintable(t *testing.T) {
	// Keep the helper honest (and covered).
	for i, c := range allConfigs() {
		if fmt.Sprintf("%v/%v", c.Defense, c.Consistency) == "" {
			t.Fatalf("config %d unprintable", i)
		}
	}
}
