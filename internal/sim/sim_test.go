package sim_test

import (
	"fmt"
	"sort"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/workload"
)

func run(t *testing.T, d config.Defense, c config.Consistency, cores int, progs []*isa.Program, budget uint64) *sim.Machine {
	t.Helper()
	r := config.Run{Machine: config.Default(cores), Defense: d, Consistency: c}
	m := sim.MustNew(r, progs)
	if err := m.RunToCompletion(budget); err != nil {
		t.Fatalf("%v/%v: %v", d, c, err)
	}
	return m
}

func median(lat [workload.SpectreProbeLines]uint64) uint64 {
	s := append([]uint64(nil), lat[:]...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

const secret = 84 // the paper's Figure 5 secret value

func TestSpectreLeaksOnBaseline(t *testing.T) {
	m := run(t, config.Base, config.TSO, 1, []*isa.Program{workload.SpectreV1(secret)}, 3_000_000)
	idx, lat := workload.LeakedByte(m.Mem)
	if idx != secret {
		t.Fatalf("attack on Base recovered %d, want %d", idx, secret)
	}
	med := median(workload.SpectreScanLatencies(m.Mem))
	if lat*2 >= med {
		t.Fatalf("leaked line latency %d not clearly below median %d", lat, med)
	}
}

func TestSpectreBlockedByInvisiSpec(t *testing.T) {
	for _, d := range []config.Defense{config.ISSpectre, config.ISFuture} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			m := run(t, d, config.TSO, 1, []*isa.Program{workload.SpectreV1(secret)}, 6_000_000)
			lat := workload.SpectreScanLatencies(m.Mem)
			med := median(lat)
			// The secret-indexed line must NOT stand out as a cache hit.
			if lat[secret]*2 < med {
				t.Fatalf("%v: secret line latency %d is an outlier below median %d — leak!",
					d, lat[secret], med)
			}
		})
	}
}

func TestSpectreBlockedByFences(t *testing.T) {
	m := run(t, config.FenceSpectre, config.TSO, 1, []*isa.Program{workload.SpectreV1(secret)}, 8_000_000)
	lat := workload.SpectreScanLatencies(m.Mem)
	med := median(lat)
	if lat[secret]*2 < med {
		t.Fatalf("Fe-Sp: secret line latency %d below median %d — leak!", lat[secret], med)
	}
}

func TestMeltdownLeaksOnBaseAndISSpectre(t *testing.T) {
	// Exception-sourced transient leaks are out of the Spectre threat
	// model: Base leaks, and IS-Spectre (by design, §IV) does not stop it.
	for _, d := range []config.Defense{config.Base, config.ISSpectre} {
		m := run(t, d, config.TSO, 1, []*isa.Program{workload.Meltdown(0x5A)}, 3_000_000)
		idx, _ := workload.MeltdownLeakedByte(m.Mem)
		if idx != 0x5A {
			t.Fatalf("%v: meltdown recovered %#x, want 0x5a", d, idx)
		}
	}
}

func TestMeltdownBlockedByISFuture(t *testing.T) {
	m := run(t, config.ISFuture, config.TSO, 1, []*isa.Program{workload.Meltdown(0x5A)}, 6_000_000)
	var lats []uint64
	var secretLat uint64
	for i := 0; i < 256; i++ {
		l := m.Mem.Read(workload.MeltdownResultsBase+uint64(8*i), 8)
		lats = append(lats, l)
		if i == 0x5A {
			secretLat = l
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	med := lats[len(lats)/2]
	if secretLat*2 < med {
		t.Fatalf("IS-Fu: secret line latency %d below median %d — leak!", secretLat, med)
	}
}

// --- Multiprocessor consistency litmus tests ---

// mpWriter/mpReader implement the message-passing litmus test:
// writer: data = 42; flag = 1.  reader: while flag == 0 {}; r = data.
func mpProgs(useAcquire bool) []*isa.Program {
	const dataAddr, flagAddr = 0x10000, 0x20000
	w := isa.NewBuilder("mp-writer").
		Li(1, dataAddr).
		Li(2, flagAddr).
		Li(3, 42).
		Li(4, 1).
		St(8, 1, 0, 3)
	w.Release() // no-op under TSO; orders the stores under RC
	w.St(8, 2, 0, 4).
		Halt()
	rb := isa.NewBuilder("mp-reader").
		Li(1, dataAddr).
		Li(2, flagAddr).
		Label("spin").
		Ld(8, 5, 2, 0).
		Beq(5, 0, "spin")
	if useAcquire {
		rb.Acquire()
	}
	rb.Ld(8, 6, 1, 0).
		Li(7, 0x30000).
		St(8, 7, 0, 6). // publish observed data
		Halt()
	return []*isa.Program{w.MustBuild(), rb.MustBuild()}
}

func TestMessagePassingTSO(t *testing.T) {
	for _, d := range config.AllDefenses() {
		m := run(t, d, config.TSO, 2, mpProgs(false), 4_000_000)
		if got := m.Mem.Read(0x30000, 8); got != 42 {
			t.Fatalf("%v/TSO: reader observed data=%d after flag, want 42", d, got)
		}
	}
}

func TestMessagePassingRCWithAcquire(t *testing.T) {
	for _, d := range config.AllDefenses() {
		m := run(t, d, config.RC, 2, mpProgs(true), 4_000_000)
		if got := m.Mem.Read(0x30000, 8); got != 42 {
			t.Fatalf("%v/RC+acquire: reader observed data=%d, want 42", d, got)
		}
	}
}

func TestStoreBufferingLitmus(t *testing.T) {
	// SB litmus: both-zero is legal under TSO (store->load reordering);
	// anything architecturally impossible (r1=1 while x never written...)
	// cannot occur. We assert only that results are in range and the run
	// completes under every defense.
	const xAddr, yAddr = 0x11000, 0x12000
	p0 := isa.NewBuilder("sb0").
		Li(1, xAddr).Li(2, yAddr).Li(3, 1).
		St(8, 1, 0, 3).
		Ld(8, 4, 2, 0).
		Li(5, 0x31000).
		St(8, 5, 0, 4).
		Halt().MustBuild()
	p1 := isa.NewBuilder("sb1").
		Li(1, yAddr).Li(2, xAddr).Li(3, 1).
		St(8, 1, 0, 3).
		Ld(8, 4, 2, 0).
		Li(5, 0x32000).
		St(8, 5, 0, 4).
		Halt().MustBuild()
	for _, d := range config.AllDefenses() {
		m := run(t, d, config.TSO, 2, []*isa.Program{p0, p1}, 4_000_000)
		a := m.Mem.Read(0x31000, 8)
		b := m.Mem.Read(0x32000, 8)
		if a > 1 || b > 1 {
			t.Fatalf("%v: impossible SB litmus outcome (%d,%d)", d, a, b)
		}
	}
}

func TestAtomicCountersEightCores(t *testing.T) {
	// Eight cores each atomically increment a shared counter 50 times:
	// the final value must be exactly 400 under every defense and model.
	const counter = 0x40000
	prog := isa.NewBuilder("inc").
		Li(1, counter).
		Li(2, 1).
		Li(3, 50).
		Label("loop").
		RMW(8, 4, 1, 2).
		AddI(3, 3, -1).
		Bne(3, 0, "loop").
		Halt().MustBuild()
	progs := make([]*isa.Program, 8)
	for i := range progs {
		progs[i] = prog
	}
	for _, d := range config.AllDefenses() {
		for _, cm := range []config.Consistency{config.TSO, config.RC} {
			m := run(t, d, cm, 8, progs, 8_000_000)
			if got := m.Mem.Read(counter, 8); got != 400 {
				t.Fatalf("%v/%v: counter = %d, want 400", d, cm, got)
			}
		}
	}
}

func TestSpinlockCriticalSection(t *testing.T) {
	// A ticket lock built from fetch-and-add protects a non-atomic
	// read-modify-write of a shared counter: mutual exclusion must make
	// the total exact. Exercises coherence, fences and InvisiSpec under
	// contention.
	const (
		nextTicket = 0x50000
		nowServing = 0x50040 // separate line to avoid false sharing
		counter    = 0x50080
		iters      = 20
	)
	b := isa.NewBuilder("spinlock")
	b.Li(1, nextTicket).
		Li(2, nowServing).
		Li(3, counter).
		Li(4, 1).
		Li(5, iters).
		Label("loop").
		RMW(8, 6, 1, 4). // my ticket
		Label("spin").
		Ld(8, 7, 2, 0). // now serving
		Bne(7, 6, "spin").
		Acquire().
		Ld(8, 8, 3, 0). // critical section: counter++
		AddI(8, 8, 1).
		St(8, 3, 0, 8).
		Release().
		RMW(8, 9, 2, 4). // now-serving++ releases the lock
		AddI(5, 5, -1).
		Bne(5, 0, "loop").
		Halt()
	prog := b.MustBuild()
	progs := []*isa.Program{prog, prog, prog, prog}
	// The full 5x2 configuration matrix is covered for atomics by
	// TestAtomicCountersEightCores; the (much slower) contended-spinlock
	// runs cover the interesting corners.
	cases := []config.Run{
		{Machine: config.Default(4), Defense: config.Base, Consistency: config.TSO},
		{Machine: config.Default(4), Defense: config.ISSpectre, Consistency: config.TSO},
		{Machine: config.Default(4), Defense: config.ISFuture, Consistency: config.TSO},
		{Machine: config.Default(4), Defense: config.ISFuture, Consistency: config.RC},
	}
	for _, r := range cases {
		m := sim.MustNew(r, progs)
		if err := m.RunToCompletion(30_000_000); err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if got := m.Mem.Read(counter, 8); got != 4*iters {
			t.Fatalf("%v: counter = %d, want %d", r, got, 4*iters)
		}
	}
}

func TestFencesSlowerThanInvisiSpec(t *testing.T) {
	// The paper's headline: fence defenses cost far more than InvisiSpec.
	// A branchy, load-heavy kernel must order Base < IS-Sp and
	// Fe-Fu must be the slowest of all.
	p := branchyKernel()
	cycles := map[config.Defense]uint64{}
	for _, d := range config.AllDefenses() {
		m := run(t, d, config.TSO, 1, []*isa.Program{p}, 30_000_000)
		cycles[d] = m.Cycle()
	}
	if cycles[config.ISSpectre] < cycles[config.Base] {
		t.Errorf("IS-Sp (%d) faster than Base (%d)?", cycles[config.ISSpectre], cycles[config.Base])
	}
	if cycles[config.FenceSpectre] <= cycles[config.ISSpectre] {
		t.Errorf("Fe-Sp (%d) not slower than IS-Sp (%d)", cycles[config.FenceSpectre], cycles[config.ISSpectre])
	}
	if cycles[config.FenceFuture] <= cycles[config.ISFuture] {
		t.Errorf("Fe-Fu (%d) not slower than IS-Fu (%d)", cycles[config.FenceFuture], cycles[config.ISFuture])
	}
	// On a load-dominated kernel (many loads per branch), a fence before
	// every load must cost far more than a fence after every branch — the
	// structural reason Fe-Fu is the paper's most expensive configuration.
	p2 := loadHeavyKernel()
	feSp := run(t, config.FenceSpectre, config.TSO, 1, []*isa.Program{p2}, 60_000_000).Cycle()
	feFu := run(t, config.FenceFuture, config.TSO, 1, []*isa.Program{p2}, 60_000_000).Cycle()
	if feFu <= feSp {
		t.Errorf("load-heavy kernel: Fe-Fu (%d) not slower than Fe-Sp (%d)", feFu, feSp)
	}
}

// loadHeavyKernel: eight independent loads per loop branch.
func loadHeavyKernel() *isa.Program {
	b := isa.NewBuilder("loadheavy")
	b.Li(20, 0x80000).
		Li(1, 0).
		Li(3, 3000)
	b.Label("loop").
		AndI(4, 1, 1023).
		ShlI(4, 4, 3).
		Add(4, 4, 20)
	for i := 0; i < 8; i++ {
		b.Ld(8, uint8(5+i), 4, int64(8*i))
	}
	for i := 0; i < 8; i++ {
		b.Add(2, 2, uint8(5+i))
	}
	b.AddI(1, 1, 13).
		AddI(3, 3, -1).
		Bne(3, 0, "loop").
		Halt()
	return b.MustBuild()
}

// branchyKernel: data-dependent branches over a table plus loads, the shape
// fences hurt most.
func branchyKernel() *isa.Program {
	b := isa.NewBuilder("branchy")
	words := make([]uint64, 512)
	st := uint64(12345)
	for i := range words {
		st = st*6364136223846793005 + 1442695040888963407
		words[i] = st >> 33
	}
	b.DataU64(0x60000, words...)
	b.Li(20, 0x60000).
		Li(1, 0). // index
		Li(2, 0). // accumulator
		Li(3, 2000)
	b.Label("loop").
		AndI(4, 1, 511).
		ShlI(4, 4, 3).
		Add(4, 4, 20).
		Ld(8, 5, 4, 0).
		Ld(8, 9, 4, 8).
		Ld(8, 10, 4, 16).
		Add(5, 5, 9).
		Add(5, 5, 10).
		AndI(6, 5, 1).
		Bne(6, 0, "odd").
		Add(2, 2, 5).
		Jmp("next")
	b.Label("odd").
		Xor(2, 2, 5)
	b.Label("next").
		AddI(1, 1, 7).
		AddI(3, 3, -1).
		Bne(3, 0, "loop").
		Li(7, 0x70000).
		St(8, 7, 0, 2).
		Halt()
	return b.MustBuild()
}

func TestRunInstructionsBudget(t *testing.T) {
	p := branchyKernel()
	r := config.Run{Machine: config.Default(1), Defense: config.Base, Consistency: config.TSO}
	m := sim.MustNew(r, []*isa.Program{p})
	if err := m.RunInstructions(500, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.TotalRetired() < 500 {
		t.Fatalf("retired %d < 500", m.Stats.TotalRetired())
	}
	if m.Cores[0].Halted() {
		t.Fatal("halted before the budget was reached")
	}
}

func TestNewValidation(t *testing.T) {
	r := config.Run{Machine: config.Default(2), Defense: config.Base, Consistency: config.TSO}
	if _, err := sim.New(r, []*isa.Program{branchyKernel()}); err == nil {
		t.Fatal("program/core count mismatch not rejected")
	}
	bad := r
	bad.Machine.Cores = 0
	if _, err := sim.New(bad, nil); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

// TestDisjointMulticoreMatchesInterpreter runs independent random programs
// on two cores (disjoint data regions) under every defense and checks each
// core's architectural result against the golden model — the multicore
// pipeline must not perturb single-thread semantics.
func TestDisjointMulticoreMatchesInterpreter(t *testing.T) {
	progs := []*isa.Program{
		disjointKernel(0, 0x100000),
		disjointKernel(1, 0x900000),
	}
	refs := make([][32]uint64, 2)
	for i, p := range progs {
		it := isa.NewInterp(p)
		if err := it.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		refs[i] = it.Regs
	}
	for _, d := range config.AllDefenses() {
		for _, cm := range []config.Consistency{config.TSO, config.RC} {
			r := config.Run{Machine: config.Default(2), Defense: d, Consistency: cm}
			m := sim.MustNew(r, progs)
			if err := m.RunToCompletion(20_000_000); err != nil {
				t.Fatalf("%v/%v: %v", d, cm, err)
			}
			for core := 0; core < 2; core++ {
				got := m.Cores[core].Regs()
				for reg := 0; reg < 32; reg++ {
					if got[reg] != refs[core][reg] {
						t.Fatalf("%v/%v core %d: r%d = %#x, interp %#x",
							d, cm, core, reg, got[reg], refs[core][reg])
					}
				}
			}
		}
	}
}

// disjointKernel builds a deterministic mixed kernel over a private region.
func disjointKernel(seed int, base uint64) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("disjoint%d", seed))
	words := make([]uint64, 128)
	st := uint64(seed)*2654435761 + 99991
	for i := range words {
		st = st*6364136223846793005 + 1442695040888963407
		words[i] = st >> 30
	}
	b.DataU64(base, words...)
	b.Li(20, base).
		Li(1, 0).
		Li(2, 0).
		Li(3, 400)
	b.Label("loop").
		AndI(4, 1, 127).
		ShlI(4, 4, 3).
		Add(4, 4, 20).
		Ld(8, 5, 4, 0).
		AndI(6, 5, 3).
		Bne(6, 0, "skip").
		Xor(2, 2, 5).
		St(8, 4, 0, 2)
	b.Label("skip").
		Add(2, 2, 5).
		AddI(1, 1, 11).
		AddI(3, 3, -1).
		Bne(3, 0, "loop").
		Halt()
	return b.MustBuild()
}

// PRIME+PROBE in the CrossCore setting (§III-C): an attacker core monitors
// LLC occupancy. Base leaks the victim's transient access; InvisiSpec does
// not — covering the LLC-level (not just L1-level) invisibility claim.
func TestPrimeProbeCrossCore(t *testing.T) {
	runPP := func(d config.Defense) int {
		r := config.Run{Machine: config.Default(2), Defense: d, Consistency: config.TSO}
		m := sim.MustNew(r, []*isa.Program{
			workload.PrimeProbeVictim(),
			workload.PrimeProbeAttacker(),
		})
		if err := m.RunToCompletion(10_000_000); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		return workload.PPSlowProbes(m.Mem)
	}
	base := runPP(config.Base)
	if base < 2 {
		t.Errorf("Base: attacker failed to observe the transient LLC fill (%d slow probes)", base)
	}
	for _, d := range []config.Defense{config.ISSpectre, config.ISFuture} {
		n := runPP(d)
		if n >= 2 {
			t.Errorf("%v: transient access visible to the cross-core attacker (%d slow probes)", d, n)
		}
		if n >= base {
			t.Errorf("%v: no contrast with Base (%d vs %d slow probes)", d, n, base)
		}
	}
}
