package sim_test

import (
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
)

// icacheVictim builds a program whose RAS-mispredicted return transiently
// fetches a "shadow" code region that is never architecturally executed:
// the function returns through a register that (slowly) resolves to code
// far from the call site, while the RAS predicts the call site's successor.
func icacheVictim() (prog *isa.Program, shadowPC int) {
	b := isa.NewBuilder("icache-victim")
	b.Jmp("main")
	b.Label("f").
		// Compute the real return target slowly, so the wrong-path fetch
		// of the shadow region has a wide window.
		Li(1, 6400).
		Li(2, 10).
		Div(1, 1, 2).
		Div(1, 1, 2).
		Div(1, 1, 2). // 6, slowly
		Li(3, 0).     // patched below to the "real" label
		Add(3, 3, 1).
		AddI(3, 3, -6).
		Ret(3)
	b.Label("main").
		Call(30, "f")
	// Shadow region: the RAS-predicted (wrong) return path. 80 nops span
	// several instruction lines that only a transient fetch would touch.
	shadow := b.PC()
	for i := 0; i < 80; i++ {
		b.Nop()
	}
	b.Label("real").
		Li(9, 42).
		Halt()
	prog = b.MustBuild()
	// Patch the Li with the real return target.
	for i, in := range prog.Insts {
		if in.Op == isa.OpLui && in.Rd == 3 && in.Imm == 0 {
			prog.Insts[i].Imm = int64(prog.Labels["real"])
			break
		}
	}
	return prog, shadow
}

// TestProtectICacheHidesWrongPathFetches covers the footnote-2 extension:
// without it, transiently fetched instruction lines land in the L1I/LLC;
// with it, they leave no trace while execution stays correct.
func TestProtectICacheHidesWrongPathFetches(t *testing.T) {
	prog, shadow := icacheVictim()
	// The first full instruction line inside the shadow region (clear of
	// the call site's own line and of the "real" continuation): the
	// transient fetch requests it, the squash outlives the request, and
	// on an unprotected machine the in-flight fill still installs it.
	shadowLineStart := (shadow/16 + 1) * 16
	shadowAddr := core.IBase + uint64(shadowLineStart)*core.InstBytes

	run := func(protect bool) *sim.Machine {
		r := config.Run{Machine: config.Default(1), Defense: config.ISFuture, Consistency: config.TSO}
		r.Machine.ProtectICache = protect
		m := sim.MustNew(r, []*isa.Program{prog})
		if err := m.RunToCompletion(4_000_000); err != nil {
			t.Fatal(err)
		}
		if got := m.Cores[0].Regs()[9]; got != 42 {
			t.Fatalf("protect=%v: wrong architectural result r9=%d", protect, got)
		}
		return m
	}

	m := run(false)
	if !m.Hier.L1IPresent(0, shadowAddr) && !m.Hier.LLCPresent(shadowAddr) {
		t.Fatal("baseline did not transiently fetch the shadow region")
	}
	m = run(true)
	if m.Hier.L1IPresent(0, shadowAddr) {
		t.Error("ProtectICache: transient shadow line installed in the L1I")
	}
	if m.Hier.LLCPresent(shadowAddr) {
		t.Error("ProtectICache: transient shadow line installed in the LLC")
	}
}

// TestProtectICacheCorrectness cross-checks architectural results with the
// golden model under the extension.
func TestProtectICacheCorrectness(t *testing.T) {
	prog, _ := icacheVictim()
	ref := isa.NewInterp(prog)
	if err := ref.Run(100000); err != nil {
		t.Fatal(err)
	}
	for _, d := range []config.Defense{config.ISSpectre, config.ISFuture} {
		r := config.Run{Machine: config.Default(1), Defense: d, Consistency: config.TSO}
		r.Machine.ProtectICache = true
		m := sim.MustNew(r, []*isa.Program{prog})
		if err := m.RunToCompletion(4_000_000); err != nil {
			t.Fatal(err)
		}
		regs := m.Cores[0].Regs()
		for i := 0; i < isa.NumRegs; i++ {
			if regs[i] != ref.Regs[i] {
				t.Fatalf("%v: r%d = %#x, interp %#x", d, i, regs[i], ref.Regs[i])
			}
		}
	}
}
