package sim_test

// Golden-equivalence oracle for the simulation kernels: the quiescence-aware
// fast-forward scheduler must be observationally identical to the seed's
// cycle-by-cycle reference stepper. Identity is checked at the strictest
// available granularity — a byte-for-byte fingerprint of the full stats
// block (global cycles, per-core retired/squash/InvisiSpec/TLB/L1D counters,
// traffic by class, LLC/DRAM counters) plus final cycle, architectural
// registers, fault-injector counters, and the run's error text — across the
// workload x defense x consistency smoke matrix, under fault seeds, with
// invariant checking enabled, with timer interrupts, and on budget
// exhaustion.

import (
	"fmt"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/engine"
	"invisispec/internal/invariant"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/workload"
)

type kernelCase struct {
	workload string
	parsec   bool
	defense  config.Defense
	cm       config.Consistency

	faultSeed  int64  // non-zero: deterministic fault injection
	checkEvery uint64 // non-zero: invariant checking at this stride
	intrEvery  int    // non-zero: timer interrupt interval
	protectI   bool   // enable ProtectICache
	instrs     uint64 // instruction budget (default 4000)
	budget     uint64 // cycle budget (default instrs*600)
}

func (kc kernelCase) String() string {
	s := fmt.Sprintf("%s/%s/%s", kc.workload, kc.defense, kc.cm)
	if kc.faultSeed != 0 {
		s += fmt.Sprintf("/seed%d", kc.faultSeed)
	}
	if kc.checkEvery > 0 {
		s += fmt.Sprintf("/check%d", kc.checkEvery)
	}
	if kc.intrEvery > 0 {
		s += fmt.Sprintf("/intr%d", kc.intrEvery)
	}
	if kc.protectI {
		s += "/picache"
	}
	return s
}

// runKernelCase executes the case under kernel k and returns the observable
// fingerprint (and the machine, for skip-count assertions).
func runKernelCase(t *testing.T, kc kernelCase, k engine.Kernel) (string, *sim.Machine) {
	t.Helper()
	cores := 1
	var progs []*isa.Program
	if kc.parsec {
		cores = 8
		progs = workload.MustPARSEC(kc.workload, cores)
	} else {
		progs = []*isa.Program{workload.MustSPEC(kc.workload)}
	}
	mc := config.Default(cores)
	if kc.intrEvery > 0 {
		mc.InterruptInterval = kc.intrEvery
	}
	if kc.protectI {
		mc.ProtectICache = true
	}
	run := config.Run{Machine: mc, Defense: kc.defense, Consistency: kc.cm}
	m := sim.MustNew(run, progs)
	m.SetKernel(k)
	if m.Kernel() != k {
		t.Fatalf("SetKernel(%v) not reflected by Kernel()", k)
	}
	if kc.faultSeed != 0 {
		m.SeedFaults(kc.faultSeed)
	}
	if kc.checkEvery > 0 {
		m.EnableChecking(invariant.Options{Interval: kc.checkEvery})
	}
	instrs := kc.instrs
	if instrs == 0 {
		instrs = 4000
	}
	budget := kc.budget
	if budget == 0 {
		budget = instrs * 600
	}
	err := m.RunInstructions(instrs, budget)
	errText := "<nil>"
	if err != nil {
		errText = err.Error()
	}
	regs := ""
	for i, c := range m.Cores {
		regs += fmt.Sprintf("core%d=%v halted=%v\n", i, c.Regs(), c.Halted())
	}
	fp := fmt.Sprintf("cycle=%d err=%q faults=%+v\n%sstats=%s",
		m.Cycle(), errText, m.FaultStats(), regs, m.Stats.Fingerprint())
	return fp, m
}

// kernelMatrix is the equivalence table: the smoke matrix plus hardening
// layers (fault seeds, checking, interrupts, ProtectICache) and a multicore
// coherence-heavy case.
func kernelMatrix() []kernelCase {
	var cases []kernelCase
	// Smoke matrix: memory-bound (mcf: pointer chase, libquantum: stream)
	// and compute/branchy (sjeng) kernels under every defense and both
	// consistency models.
	for _, wl := range []string{"mcf", "libquantum", "sjeng"} {
		for _, d := range config.AllDefenses() {
			for _, cm := range []config.Consistency{config.TSO, config.RC} {
				cases = append(cases, kernelCase{workload: wl, defense: d, cm: cm})
			}
		}
	}
	// Fault seeds stretch NoC/DRAM timing; the injector's rng is consumed in
	// simulation order, so equivalence also proves event order is identical.
	for _, seed := range []int64{1, 7, 13} {
		cases = append(cases,
			kernelCase{workload: "mcf", defense: config.ISSpectre, cm: config.TSO, faultSeed: seed})
	}
	// Invariant checking: sweeps must land on identical cycles (the fast
	// kernel caps jumps at the sweep stride), with and without faults.
	cases = append(cases,
		kernelCase{workload: "libquantum", defense: config.ISFuture, cm: config.TSO, checkEvery: 256},
		kernelCase{workload: "sjeng", defense: config.Base, cm: config.TSO, checkEvery: 512},
		kernelCase{workload: "mcf", defense: config.ISFuture, cm: config.RC, checkEvery: 256, faultSeed: 7},
	)
	// Timer interrupts fire on fixed cycle boundaries the fast kernel must
	// never hop over (including the §VI-D deferred-interrupt accounting).
	cases = append(cases,
		kernelCase{workload: "sjeng", defense: config.ISFuture, cm: config.TSO, intrEvery: 2500},
		kernelCase{workload: "mcf", defense: config.Base, cm: config.TSO, intrEvery: 1000},
	)
	// ProtectICache changes the fetch path (invisible ifetches + exposure
	// installs at retirement).
	cases = append(cases,
		kernelCase{workload: "libquantum", defense: config.ISSpectre, cm: config.TSO, protectI: true})
	// Multicore: cross-core invalidations, recalls, and shared-LLC traffic.
	cases = append(cases,
		kernelCase{workload: "canneal", parsec: true, defense: config.Base, cm: config.TSO, instrs: 2000},
		kernelCase{workload: "canneal", parsec: true, defense: config.ISFuture, cm: config.RC, instrs: 2000},
	)
	// Budget exhaustion: both kernels must report the identical BudgetError
	// (same cycle, same per-core progress snapshot).
	cases = append(cases,
		kernelCase{workload: "mcf", defense: config.ISFuture, cm: config.TSO, instrs: 4000, budget: 3000})
	return cases
}

func TestKernelEquivalence(t *testing.T) {
	for _, kc := range kernelMatrix() {
		kc := kc
		t.Run(kc.String(), func(t *testing.T) {
			stepped, _ := runKernelCase(t, kc, engine.KernelStepped)
			fast, _ := runKernelCase(t, kc, engine.KernelFast)
			if stepped != fast {
				t.Errorf("kernel fingerprints diverge\n--- stepped ---\n%s\n--- fast ---\n%s", stepped, fast)
			}
		})
	}
}

// The oracle is only meaningful if the fast kernel actually jumps: a
// memory-bound pointer chase spends most of its time with every component
// quiescent, so a substantial fraction of simulated cycles must be skipped.
func TestFastKernelActuallySkips(t *testing.T) {
	kc := kernelCase{workload: "mcf", defense: config.Base, cm: config.TSO}
	_, m := runKernelCase(t, kc, engine.KernelFast)
	jumps, skipped := m.FastForwardStats()
	if jumps == 0 || skipped == 0 {
		t.Fatalf("fast kernel never jumped on a memory-bound workload (jumps=%d skipped=%d)", jumps, skipped)
	}
	if frac := float64(skipped) / float64(m.Cycle()); frac < 0.2 {
		t.Errorf("fast kernel skipped only %.1f%% of cycles on mcf; fast-forward is not engaging", 100*frac)
	}
	t.Logf("mcf/Base: %d cycles, %d jumps skipping %d cycles (%.1f%%)",
		m.Cycle(), jumps, skipped, 100*float64(skipped)/float64(m.Cycle()))
}

// The reference stepper must never jump, by construction.
func TestReferenceKernelNeverSkips(t *testing.T) {
	kc := kernelCase{workload: "mcf", defense: config.Base, cm: config.TSO, instrs: 500}
	_, m := runKernelCase(t, kc, engine.KernelStepped)
	if jumps, skipped := m.FastForwardStats(); jumps != 0 || skipped != 0 {
		t.Fatalf("reference stepper reported jumps (%d/%d)", jumps, skipped)
	}
}

// Switching kernels mid-run keeps the cycle position and stays equivalent:
// warm up under the stepped kernel, finish under the fast one, and compare
// with an all-stepped run.
func TestKernelSwitchMidRun(t *testing.T) {
	build := func() *sim.Machine {
		run := config.Run{Machine: config.Default(1), Defense: config.ISSpectre, Consistency: config.TSO}
		return sim.MustNew(run, []*isa.Program{workload.MustSPEC("libquantum")})
	}
	ref := build()
	ref.SetKernel(engine.KernelStepped)
	if err := ref.RunInstructions(4000, 4000*600); err != nil {
		t.Fatal(err)
	}
	mix := build()
	mix.SetKernel(engine.KernelStepped)
	if err := mix.RunInstructions(1000, 4000*600); err != nil {
		t.Fatal(err)
	}
	mix.SetKernel(engine.KernelFast)
	if err := mix.RunInstructions(4000, 4000*600); err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Fingerprint() != mix.Stats.Fingerprint() {
		t.Errorf("mid-run kernel switch diverged\n--- stepped ---\n%s\n--- mixed ---\n%s",
			ref.Stats.Fingerprint(), mix.Stats.Fingerprint())
	}
}
