// Package sim is the top-level simulation assembly: it builds the cores,
// the memory hierarchy and the functional memory image into a Machine and
// drives them through the internal/engine kernel, deterministically
// (component tick order is fixed; there is no wall-clock or random input
// anywhere in the simulator). Two kernels are available (see SetKernel):
// the cycle-by-cycle reference stepper, and the default quiescence-aware
// fast-forward scheduler, which jumps over globally-idle windows (all cores
// stalled on memory) while producing byte-identical statistics — the
// kernel-equivalence tests in this package hold the two to the same stats
// fingerprint across the smoke matrix, under fault seeds, and with
// invariant checking enabled.
package sim

import (
	"context"
	"errors"
	"fmt"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/engine"
	"invisispec/internal/faultinject"
	"invisispec/internal/invariant"
	"invisispec/internal/isa"
	"invisispec/internal/memsys"
	"invisispec/internal/stats"
)

// ErrCycleBudget is returned when a run does not finish within its budget.
// Returned errors are *BudgetError values wrapping this sentinel, so callers
// can either errors.Is-match the condition or errors.As-extract the per-core
// progress snapshot.
var ErrCycleBudget = errors.New("sim: cycle budget exhausted")

// BudgetError is a cycle-budget exhaustion with enough per-core progress
// context (retired counts, PCs) to diagnose which core stopped making
// progress without rerunning the simulation.
type BudgetError struct {
	Cycle   uint64   // cycle at which the budget ran out
	Budget  uint64   // the configured budget
	Retired []uint64 // per-core retired instruction counts
	PCs     []int    // per-core fetch PCs
	Halted  []bool   // per-core halt flags
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: cycle budget exhausted at cycle %d (budget %d; retired=%v pcs=%v halted=%v)",
		e.Cycle, e.Budget, e.Retired, e.PCs, e.Halted)
}

// Unwrap makes errors.Is(err, ErrCycleBudget) true.
func (e *BudgetError) Unwrap() error { return ErrCycleBudget }

// Machine is one simulated system executing a set of per-core programs.
type Machine struct {
	Run   config.Run
	Mem   *isa.Memory
	Hier  *memsys.Hierarchy
	Cores []*core.Core
	Stats *stats.Machine

	cycle   uint64
	kernel  engine.Kernel
	eng     engine.Stepper
	checker *invariant.Registry
	faults  *faultinject.Injector

	// nextCtxPoll is the next cycle at (or after) which the run loops poll
	// the context. A monotone threshold rather than a modulo so fast-forward
	// jumps cannot hop over poll points indefinitely.
	nextCtxPoll uint64
}

// New builds a machine running progs[i] on core i. len(progs) must equal
// the configured core count; every program's data image is loaded into the
// shared functional memory.
func New(run config.Run, progs []*isa.Program) (*Machine, error) {
	if err := run.Machine.Validate(); err != nil {
		return nil, err
	}
	if _, err := run.Defense.Scheme(); err != nil {
		// Unregistered defense names fail here, before core construction
		// (core.New resolves the scheme with MustScheme and would panic).
		return nil, err
	}
	if len(progs) != run.Machine.Cores {
		return nil, fmt.Errorf("sim: %d programs for %d cores", len(progs), run.Machine.Cores)
	}
	st := stats.NewMachine(run.Machine.Cores)
	mem := isa.NewMemory()
	hier := memsys.New(run.Machine, st)
	m := &Machine{Run: run, Mem: mem, Hier: hier, Stats: st}
	for i, p := range progs {
		mem.LoadProgramImage(p)
		m.Cores = append(m.Cores, core.New(i, run, p, mem, hier, &st.Cores[i]))
	}
	m.SetKernel(engine.KernelFast)
	return m, nil
}

// MustNew is New that panics on configuration errors (for tests/examples
// with static configs).
func MustNew(run config.Run, progs []*isa.Program) *Machine {
	m, err := New(run, progs)
	if err != nil {
		panic(err)
	}
	return m
}

// Cycle returns the current cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// SetKernel selects the simulation kernel (engine.KernelFast by default).
// Both kernels tick the hierarchy first (delivering the cycle's responses),
// then each core in index order; the fast kernel additionally jumps the
// clock over windows where every component reports quiescence. Switching
// kernels mid-run is allowed and keeps the current cycle position.
func (m *Machine) SetKernel(k engine.Kernel) {
	m.kernel = k
	comps := make([]engine.Component, 0, len(m.Cores)+1)
	comps = append(comps, m.Hier)
	for _, c := range m.Cores {
		comps = append(comps, c)
	}
	m.eng = engine.NewStepper(k, m.cycle, comps...)
}

// Kernel returns the active simulation kernel.
func (m *Machine) Kernel() engine.Kernel { return m.kernel }

// FastForwardStats reports how many clock jumps the fast kernel performed
// and how many idle cycles they skipped (both zero under the reference
// stepper). Diagnostics only; not part of simulated state.
func (m *Machine) FastForwardStats() (jumps, skippedCycles uint64) {
	if s, ok := m.eng.(*engine.Scheduler); ok {
		return s.SkipStats()
	}
	return 0, 0
}

// Step advances the machine exactly one cycle (no fast-forwarding,
// regardless of kernel): hierarchy first, then each core in index order.
// Manual driver loops (tracing, tests) rely on the single-cycle guarantee.
func (m *Machine) Step() {
	m.cycle = m.eng.StepTo(m.cycle + 1)
	m.Stats.Cycles = m.cycle
}

// advance moves time forward by at least one cycle, letting the fast kernel
// jump idle windows. Jumps are capped at every boundary whose side effects
// must land on exact cycles: the caller's cycle budget, and the invariant
// checker's sweep stride (so sweeps — and the forward-progress watchdog's
// windows — observe identical cycles under both kernels).
func (m *Machine) advance(maxCycles uint64) {
	limit := maxCycles
	if m.checker != nil {
		iv := m.checker.Interval()
		if b := m.cycle + iv - m.cycle%iv; b < limit {
			limit = b
		}
	}
	if limit <= m.cycle {
		limit = m.cycle + 1
	}
	m.cycle = m.eng.StepTo(limit)
	m.Stats.Cycles = m.cycle
}

// Done reports whether every core has halted and all buffered work drained.
func (m *Machine) Done() bool {
	for _, c := range m.Cores {
		if c.PendingWork() {
			return false
		}
	}
	return true
}

// ctxCheckStride is how many cycles pass between context polls in the
// context-aware run loops. The simulator itself stays wall-clock-free and
// deterministic: the context only decides whether the loop keeps going, never
// what it computes, so two runs of the same machine retire identical state
// regardless of when (or whether) cancellation lands between strides.
const ctxCheckStride = 1 << 10

// RunToCompletion steps until every core halts (and write buffers drain) or
// the cycle budget runs out. With checking enabled, a failed invariant or a
// tripped forward-progress watchdog aborts the run with the typed error.
func (m *Machine) RunToCompletion(maxCycles uint64) error {
	return m.RunToCompletionCtx(context.Background(), maxCycles)
}

// RunToCompletionCtx is RunToCompletion with cooperative cancellation: the
// context is polled every ctxCheckStride cycles and a cancelled or expired
// context aborts the run with an error wrapping ctx.Err().
func (m *Machine) RunToCompletionCtx(ctx context.Context, maxCycles uint64) error {
	for !m.Done() {
		if m.cycle >= maxCycles {
			return m.budgetError(maxCycles)
		}
		if err := m.ctxTick(ctx); err != nil {
			return err
		}
		m.advance(maxCycles)
		if err := m.checkTick(); err != nil {
			return err
		}
	}
	return nil
}

// RunInstructions steps until the machine has retired at least n
// instructions in total, every core halted, or the cycle budget ran out.
// It is the fixed-work mode the figure harnesses use. With checking enabled,
// invariant violations and deadlocks abort the run like RunToCompletion.
func (m *Machine) RunInstructions(n uint64, maxCycles uint64) error {
	return m.RunInstructionsCtx(context.Background(), n, maxCycles)
}

// RunInstructionsCtx is RunInstructions with cooperative cancellation (see
// RunToCompletionCtx). The parallel experiment runner uses it to enforce
// per-job wall-clock timeouts without leaking goroutines: the deadline
// surfaces here, in the worker's own call stack.
func (m *Machine) RunInstructionsCtx(ctx context.Context, n uint64, maxCycles uint64) error {
	for m.Stats.TotalRetired() < n && !m.Done() {
		if m.cycle >= maxCycles {
			return m.budgetError(maxCycles)
		}
		if err := m.ctxTick(ctx); err != nil {
			return err
		}
		m.advance(maxCycles)
		if err := m.checkTick(); err != nil {
			return err
		}
	}
	return nil
}

// ctxTick polls the context once the monotone threshold is reached. Under
// the reference stepper this degenerates to the seed's modulo stride (every
// cycle hits the loop top, so the first cycle >= threshold is the threshold
// itself); under the fast kernel a jump that hops the threshold triggers the
// poll at the landing cycle, keeping cancellation latency bounded by one
// stride of simulated progress regardless of jump width.
func (m *Machine) ctxTick(ctx context.Context) error {
	if m.cycle < m.nextCtxPoll {
		return nil
	}
	m.nextCtxPoll = m.cycle + ctxCheckStride
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sim: run aborted at cycle %d: %w", m.cycle, err)
	}
	return nil
}

// budgetError snapshots per-core progress into a BudgetError.
func (m *Machine) budgetError(budget uint64) error {
	e := &BudgetError{
		Cycle: m.cycle, Budget: budget,
		Retired: make([]uint64, len(m.Cores)),
		PCs:     make([]int, len(m.Cores)),
		Halted:  make([]bool, len(m.Cores)),
	}
	for i, c := range m.Cores {
		e.Retired[i], e.PCs[i], e.Halted[i] = c.Progress()
	}
	return e
}

// EnableChecking attaches an invariant-checker registry (see
// internal/invariant) that the run loops sweep every opts.Interval cycles.
// Violations and watchdog deadlocks surface as the run's error.
func (m *Machine) EnableChecking(opts invariant.Options) *invariant.Registry {
	m.checker = invariant.NewRegistry(opts)
	return m.checker
}

// Checking reports whether invariant checking is enabled.
func (m *Machine) Checking() bool { return m.checker != nil }

// checkTick runs the invariant sweep and watchdog at the registry's stride.
func (m *Machine) checkTick() error {
	if m.checker == nil || m.cycle%m.checker.Interval() != 0 {
		return nil
	}
	return m.CheckNow()
}

// CheckNow runs the full invariant sweep and the forward-progress watchdog
// immediately, regardless of the stride. No-op without EnableChecking.
func (m *Machine) CheckNow() error {
	if m.checker == nil {
		return nil
	}
	t := &invariant.Target{Cycle: m.cycle, Run: m.Run, Cores: m.Cores, Hier: m.Hier}
	t.FFJumps, t.FFSkipped = m.FastForwardStats()
	if err := m.checker.Check(t); err != nil {
		return err
	}
	return m.checker.Watch(t, m.Done())
}

// SeedFaults installs a deterministic fault injector (see
// internal/faultinject, default rates) perturbing NoC and DRAM timing. Call
// before the first Step; the same seed reproduces the same perturbation.
func (m *Machine) SeedFaults(seed int64) {
	m.faults = faultinject.New(seed)
	m.Hier.SetFaultInjector(m.faults)
}

// FaultStats returns the injected-fault counts (zero value if SeedFaults was
// never called).
func (m *Machine) FaultStats() faultinject.Stats {
	if m.faults == nil {
		return faultinject.Stats{}
	}
	return m.faults.Stats()
}
