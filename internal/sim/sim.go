// Package sim is the top-level simulation engine: it assembles the cores,
// the memory hierarchy and the functional memory image into a Machine, and
// steps them cycle by cycle, deterministically (component tick order is
// fixed; there is no wall-clock or random input anywhere in the simulator).
package sim

import (
	"errors"
	"fmt"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/isa"
	"invisispec/internal/memsys"
	"invisispec/internal/stats"
)

// ErrCycleBudget is returned when a run does not finish within its budget.
var ErrCycleBudget = errors.New("sim: cycle budget exhausted")

// Machine is one simulated system executing a set of per-core programs.
type Machine struct {
	Run   config.Run
	Mem   *isa.Memory
	Hier  *memsys.Hierarchy
	Cores []*core.Core
	Stats *stats.Machine

	cycle uint64
}

// New builds a machine running progs[i] on core i. len(progs) must equal
// the configured core count; every program's data image is loaded into the
// shared functional memory.
func New(run config.Run, progs []*isa.Program) (*Machine, error) {
	if err := run.Machine.Validate(); err != nil {
		return nil, err
	}
	if len(progs) != run.Machine.Cores {
		return nil, fmt.Errorf("sim: %d programs for %d cores", len(progs), run.Machine.Cores)
	}
	st := stats.NewMachine(run.Machine.Cores)
	mem := isa.NewMemory()
	hier := memsys.New(run.Machine, st)
	m := &Machine{Run: run, Mem: mem, Hier: hier, Stats: st}
	for i, p := range progs {
		mem.LoadProgramImage(p)
		m.Cores = append(m.Cores, core.New(i, run, p, mem, hier, &st.Cores[i]))
	}
	return m, nil
}

// MustNew is New that panics on configuration errors (for tests/examples
// with static configs).
func MustNew(run config.Run, progs []*isa.Program) *Machine {
	m, err := New(run, progs)
	if err != nil {
		panic(err)
	}
	return m
}

// Cycle returns the current cycle.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Step advances the machine one cycle: hierarchy first (delivering this
// cycle's responses), then each core in index order.
func (m *Machine) Step() {
	m.cycle++
	m.Hier.Tick(m.cycle)
	for _, c := range m.Cores {
		c.Tick(m.cycle)
	}
	m.Stats.Cycles = m.cycle
}

// Done reports whether every core has halted and all buffered work drained.
func (m *Machine) Done() bool {
	for _, c := range m.Cores {
		if c.PendingWork() {
			return false
		}
	}
	return true
}

// RunToCompletion steps until every core halts (and write buffers drain) or
// the cycle budget runs out.
func (m *Machine) RunToCompletion(maxCycles uint64) error {
	for !m.Done() {
		if m.cycle >= maxCycles {
			return ErrCycleBudget
		}
		m.Step()
	}
	return nil
}

// RunInstructions steps until the machine has retired at least n
// instructions in total, every core halted, or the cycle budget ran out.
// It is the fixed-work mode the figure harnesses use.
func (m *Machine) RunInstructions(n uint64, maxCycles uint64) error {
	for m.Stats.TotalRetired() < n && !m.Done() {
		if m.cycle >= maxCycles {
			return ErrCycleBudget
		}
		m.Step()
	}
	return nil
}
