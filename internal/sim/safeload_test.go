package sim_test

import (
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/workload"
)

// The §XI safe-load-annotation extension: annotated loads bypass the USL
// machinery when (and only when) the machine is configured to trust them.
func TestSafeAnnotationsBypassUSLMachinery(t *testing.T) {
	// A loop of annotated loads behind data-dependent branches.
	b := isa.NewBuilder("safe")
	b.DataU64(0x10000, 5, 6, 7, 8)
	b.Li(1, 0x10000).
		Li(2, 2000).
		Li(3, 0)
	b.Label("loop").
		LdSafe(8, 4, 1, 0).
		Add(3, 3, 4).
		AndI(5, 3, 3).
		Bne(5, 0, "skip").
		Xor(3, 3, 4)
	b.Label("skip").
		AddI(2, 2, -1).
		Bne(2, 0, "loop").
		Halt()
	p := b.MustBuild()

	for _, trust := range []bool{false, true} {
		run := config.Run{Machine: config.Default(1), Defense: config.ISFuture, Consistency: config.TSO}
		run.Machine.TrustSafeAnnotations = trust
		m := sim.MustNew(run, []*isa.Program{p})
		if err := m.RunToCompletion(4_000_000); err != nil {
			t.Fatal(err)
		}
		c := m.Stats.Cores[0]
		usls := c.USLsIssued + c.SBReuseHits
		if trust && usls != 0 {
			t.Errorf("trusted annotations still issued %d USLs", usls)
		}
		if !trust && usls == 0 {
			t.Error("untrusted annotations issued no USLs — flag leaking?")
		}
	}
}

// The attack's loads are NOT annotated, so turning the optimization on must
// not re-open the Spectre leak.
func TestSafeAnnotationsDoNotWeakenDefense(t *testing.T) {
	run := config.Run{Machine: config.Default(1), Defense: config.ISFuture, Consistency: config.TSO}
	run.Machine.TrustSafeAnnotations = true
	m := sim.MustNew(run, []*isa.Program{workload.SpectreV1(secret)})
	if err := m.RunToCompletion(20_000_000); err != nil {
		t.Fatal(err)
	}
	lat := workload.SpectreScanLatencies(m.Mem)
	med := median(lat)
	if lat[secret]*2 < med {
		t.Fatalf("secret line latency %d below median %d — annotations re-opened the leak", lat[secret], med)
	}
}

// A maliciously annotated transmit load WOULD leak — demonstrating exactly
// why the optimization expands the trusted computing base (the test pins
// down the documented threat-model boundary).
func TestMaliciousSafeAnnotationLeaks(t *testing.T) {
	p := workload.SpectreV1Annotated(84)
	run := config.Run{Machine: config.Default(1), Defense: config.ISFuture, Consistency: config.TSO}
	run.Machine.TrustSafeAnnotations = true
	m := sim.MustNew(run, []*isa.Program{p})
	if err := m.RunToCompletion(20_000_000); err != nil {
		t.Fatal(err)
	}
	idx, lat := workload.LeakedByte(m.Mem)
	med := median(workload.SpectreScanLatencies(m.Mem))
	if idx != 84 || lat*2 >= med {
		t.Fatalf("malicious annotations should leak (got idx %d lat %d med %d)", idx, lat, med)
	}
}
