package conform

// This file is the differential harness: one golden-interpreter run
// (RunRef) against a simulator run per configuration (CheckConfig),
// comparing final architectural state byte for byte. The comparison set is
// the full register file plus every InitMem-covered window; generated
// programs confine all architectural stores to those windows, so the set is
// complete for them, and handcrafted reproducers follow the same rule.

import (
	"fmt"
	"strings"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/engine"
	"invisispec/internal/harness"
	"invisispec/internal/isa"
)

// Config is one simulator configuration of the conformance matrix.
type Config struct {
	Defense     config.Defense
	Consistency config.Consistency
	Kernel      engine.Kernel
}

// String names the configuration in reports, e.g. "IS-Fu/RC/fast".
func (c Config) String() string {
	return fmt.Sprintf("%s/%s/%s", c.Defense, c.Consistency, c.Kernel)
}

// Configs lists the full matrix in deterministic order: every registered
// defense scheme (config.AllDefenses, registry order) × 2 consistency
// models × 2 simulation kernels. A newly registered scheme joins the
// conformance matrix with no edit here.
func Configs() []Config {
	return ConfigsFor(config.AllDefenses())
}

// ConfigsFor lists the matrix restricted to a defense subset, preserving the
// subset's order and the full matrix's per-defense expansion (both
// consistency models, both kernels). The campaign's -defenses filter goes
// through here.
func ConfigsFor(defs []config.Defense) []Config {
	var out []Config
	for _, d := range defs {
		for _, cm := range []config.Consistency{config.TSO, config.RC} {
			for _, k := range []engine.Kernel{engine.KernelFast, engine.KernelStepped} {
				out = append(out, Config{Defense: d, Consistency: cm, Kernel: k})
			}
		}
	}
	return out
}

// RefState is the golden model's final architectural state.
type RefState struct {
	Regs    [isa.NumRegs]uint64
	Mem     [][]byte // one snapshot per InitMem chunk, in chunk order
	Retired uint64
	Faults  uint64
}

// RunRef executes the program on the golden interpreter. An error means the
// program is not a valid conformance input (it did not terminate within the
// interpreter budget), not a divergence.
func RunRef(p *isa.Program) (*RefState, error) {
	it := isa.NewInterp(p)
	if err := it.Run(interpBudget); err != nil {
		return nil, fmt.Errorf("conform: %s: golden run: %w", p.Name, err)
	}
	ref := &RefState{Regs: it.Regs, Retired: it.Retired, Faults: it.Faults}
	for _, ch := range p.InitMem {
		ref.Mem = append(ref.Mem, it.Mem.ReadBytes(ch.Addr, len(ch.Data)))
	}
	return ref, nil
}

// maxCyclesFor sizes a simulator run's cycle budget from the golden run's
// retired-instruction count, mirroring the harness's per-instruction budget:
// exhaustion means the simulator stopped making progress, which the harness
// reports as an error and the differ flags as a divergence.
func maxCyclesFor(retired uint64) uint64 {
	return 100_000 + 600*retired
}

// Divergence records one configuration disagreeing with the golden model.
type Divergence struct {
	Config string `json:"config"`
	Reason string `json:"reason"`
}

// CheckConfig runs p under one configuration and compares final state with
// the golden run. It returns "" on conformance, else a deterministic
// divergence reason (a state mismatch, or a simulator error — panic,
// deadlock, exhausted budget — which is equally a conformance failure).
func CheckConfig(p *isa.Program, cfg Config, ref *RefState) string {
	run := config.Run{Machine: config.Default(1), Defense: cfg.Defense, Consistency: cfg.Consistency}
	m, err := harness.Complete(run, p.Name, []*isa.Program{p}, maxCyclesFor(ref.Retired),
		harness.WithKernel(cfg.Kernel))
	if err != nil {
		return "simulator error: " + firstLine(err.Error())
	}
	regs := m.Cores[0].Regs()
	for i := range ref.Regs {
		if regs[i] != ref.Regs[i] {
			return fmt.Sprintf("r%d = %#x, golden %#x", i, regs[i], ref.Regs[i])
		}
	}
	for ci, ch := range p.InitMem {
		got := m.Mem.ReadBytes(ch.Addr, len(ch.Data))
		for b := range got {
			if got[b] != ref.Mem[ci][b] {
				return fmt.Sprintf("mem[%#x] = %#x, golden %#x",
					ch.Addr+uint64(b), got[b], ref.Mem[ci][b])
			}
		}
	}
	return ""
}

// firstLine truncates multi-line error text (panic reports carry a full
// machine dump) to its first line for reports; the line includes the cycle
// number and panic value, which is deterministic per configuration.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// CheckAll runs the whole matrix and returns every diverging configuration
// in matrix order.
func CheckAll(p *isa.Program, ref *RefState) []Divergence {
	var divs []Divergence
	for _, cfg := range Configs() {
		if reason := CheckConfig(p, cfg, ref); reason != "" {
			divs = append(divs, Divergence{Config: cfg.String(), Reason: reason})
		}
	}
	return divs
}

// RequireConformance asserts p conforms under the full matrix. Corpus
// reproducers call it so every fixed bug stays fixed in every
// configuration.
func RequireConformance(t *testing.T, p *isa.Program) {
	t.Helper()
	ref, err := RunRef(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range CheckAll(p, ref) {
		t.Errorf("%s: %s diverges: %s", p.Name, d.Config, d.Reason)
	}
}

// OracleFor builds a shrinking oracle that reports whether a candidate
// still diverges on any of the given configurations. Candidates that no
// longer terminate in the golden model are rejected (they are invalid
// inputs, not divergences), which keeps shrinking sound: every kept
// reduction is itself a valid failing conformance input.
func OracleFor(cfgs []Config) Oracle {
	return func(p *isa.Program) (bool, string) {
		ref, err := RunRef(p)
		if err != nil {
			return false, ""
		}
		for _, cfg := range cfgs {
			if reason := CheckConfig(p, cfg, ref); reason != "" {
				return true, reason
			}
		}
		return false, ""
	}
}
