package conform

import (
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/engine"
)

// TestMatrixCoversAllRegisteredDefenses pins the auto-expansion property:
// every registered defense scheme appears in the conformance matrix under
// both consistency models and both simulation kernels, with no per-matrix
// edit when a scheme registers.
func TestMatrixCoversAllRegisteredDefenses(t *testing.T) {
	all := config.AllDefenses()
	want := len(all) * 2 * 2
	cfgs := Configs()
	if len(cfgs) != want {
		t.Fatalf("matrix has %d configs, want %d (%d defenses x 2 models x 2 kernels)",
			len(cfgs), want, len(all))
	}
	type cell struct {
		d config.Defense
		c config.Consistency
		k engine.Kernel
	}
	seen := map[cell]bool{}
	for _, cfg := range cfgs {
		seen[cell{cfg.Defense, cfg.Consistency, cfg.Kernel}] = true
	}
	for _, d := range all {
		for _, cm := range []config.Consistency{config.TSO, config.RC} {
			for _, k := range []engine.Kernel{engine.KernelFast, engine.KernelStepped} {
				if !seen[cell{d, cm, k}] {
					t.Errorf("matrix is missing %s/%s/%s", d, cm, k)
				}
			}
		}
	}
}

// TestNewSchemesConformOnFixedCorpus runs the post-paper schemes (SpecBox,
// BasicBlocker) explicitly against the golden interpreter on a fixed set of
// generated programs, under TSO/RC x stepped/fast. RequireConformance in the
// corpus reproducers covers them too (via the expanded matrix), but this
// test keeps the guarantee visible even if the matrix iteration changes:
// speculation-window policy must never alter architectural results.
func TestNewSchemesConformOnFixedCorpus(t *testing.T) {
	for _, d := range []config.Defense{config.SpecBox, config.BasicBlocker} {
		if _, err := d.Scheme(); err != nil {
			t.Fatalf("%s is not registered: %v", d, err)
		}
	}
	for seed := uint64(11); seed <= 14; seed++ {
		p := Generate(seed)
		ref, err := RunRef(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []config.Defense{config.SpecBox, config.BasicBlocker} {
			for _, cm := range []config.Consistency{config.TSO, config.RC} {
				for _, k := range []engine.Kernel{engine.KernelFast, engine.KernelStepped} {
					cfg := Config{Defense: d, Consistency: cm, Kernel: k}
					if reason := CheckConfig(p, cfg, ref); reason != "" {
						t.Errorf("%s: %s diverges: %s", p.Name, cfg, reason)
					}
				}
			}
		}
	}
}
