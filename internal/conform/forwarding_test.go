package conform

// Regression programs for the store-to-load forwarding and squash
// interaction bugs fixed in this change, proven at the conformance level:
// each handcrafted program must match the golden interpreter under all 5
// defenses × {TSO, RC} × {stepped, fast} — not just the baseline config the
// core unit tests exercise. All architectural stores stay inside
// InitMem-covered windows so the differ's comparison set is complete.

import (
	"encoding/binary"
	"testing"

	"invisispec/internal/isa"
)

// squashForwardProgram builds a program where a store/load pair sits on one
// side of a data-dependent branch whose condition arrives late (a cold load
// from a different cache line). Whichever way the predictor guesses, one of
// the two polarities puts the pair on a mispredicted path: the load forwards
// from the in-flight speculative store, the branch resolves, the pair is
// squashed mid-flight, and execution re-runs down the other path. Final
// state must match the golden model in every configuration — the squashed
// store must never become visible, and the re-executed load must read the
// architectural value.
func squashForwardProgram(name string, condVal uint64) *isa.Program {
	base := uint64(0x3400)
	window := make([]byte, 136)
	binary.LittleEndian.PutUint64(window[128:], condVal)
	b := isa.NewBuilder(name)
	b.Data(base, window)
	b.Li(1, base).
		Li(2, 0xAA).
		Li(3, 0xBB).
		St(8, 1, 0, 3).   // architectural value at [base] = 0xBB
		Ld(8, 4, 1, 128). // cold line: the branch condition resolves late
		Li(5, 1).
		Beq(4, 5, "taken")
	// Fall-through side: speculative when condVal == 1 and the predictor
	// guesses taken... or architectural when condVal != 1.
	b.St(8, 1, 0, 2). // store 0xAA over [base]
				Ld(8, 6, 1, 0). // forwards 0xAA from the in-flight store
				Add(7, 6, 6).   // dependent consumer of the forwarded value
				Jmp("end")
	b.Label("taken").
		Ld(8, 6, 1, 0). // must read 0xBB if the fall-through was squashed
		Add(7, 6, 3)
	b.Label("end").Halt()
	return b.MustBuild()
}

// TestSquashDuringForwarding runs both branch polarities so the
// store+forwarded-load pair lands on a mispredicted path regardless of the
// predictor's initial guess (satellite: squash-during-forwarding regression
// under every registered defense).
func TestSquashDuringForwarding(t *testing.T) {
	RequireConformance(t, squashForwardProgram("squash-fwd-taken", 1))
	RequireConformance(t, squashForwardProgram("squash-fwd-nottaken", 0))
}

// TestPartialOverlapForwarding is the conformance-level reproducer for the
// store-to-load forwarding coverage bug: narrow loads fully contained in a
// wide store must forward, while wide loads only partially covered by a
// narrow store must wait for the store to perform and then merge — never
// forward a truncated value.
func TestPartialOverlapForwarding(t *testing.T) {
	base := uint64(0x3500)
	b := isa.NewBuilder("partial-fwd")
	b.Data(base, make([]byte, 64))
	b.Li(1, base).
		Li(2, 0x1122334455667788).
		St(8, 1, 0, 2).
		Ld(4, 3, 1, 0). // contained: low word forwards
		Ld(2, 4, 1, 6). // contained: bytes 6..7 forward
		Ld(1, 5, 1, 3). // contained: single byte forwards
		Li(6, 0x9999).
		St(2, 1, 4, 6). // narrow store over bytes 4..5
		Ld(8, 7, 1, 0). // partial overlap: must merge, not forward
		Ld(4, 8, 1, 4). // partial overlap (store covers only half)
		Ld(2, 9, 1, 4). // exact coverage: forwards from the narrow store
		Halt()
	RequireConformance(t, b.MustBuild())
}

// TestMisalignedAddressing pins the natural-alignment contract: unaligned
// effective addresses are aligned down identically by the interpreter and
// the core's address generation, so accesses never straddle a cache line
// and both models touch the same bytes.
func TestMisalignedAddressing(t *testing.T) {
	base := uint64(0x3600)
	b := isa.NewBuilder("misaligned")
	b.Data(base, make([]byte, 128))
	b.Li(1, base).
		Li(2, 0xDEADBEEFCAFEF00D).
		St(8, 1, 61, 2). // aligns to +56
		Ld(8, 3, 1, 63). // aligns to +56: reads the store
		St(4, 1, 70, 2). // aligns to +68
		Ld(4, 4, 1, 71). // aligns to +68
		Ld(2, 5, 1, 69). // aligns to +68: contained in the 4-byte store
		St(2, 1, 99, 2). // aligns to +98
		Ld(1, 6, 1, 99). // size-1 load: no alignment, reads byte 99
		Halt()
	RequireConformance(t, b.MustBuild())
}
