package conform

// Chaos self-test for the conformance campaign: a journaled fuzz campaign
// SIGKILLed at seeded random checkpoint appends must resume to a report
// whose deterministic payload is byte-identical to an uninterrupted run's,
// at 1 and 4 workers. Part of `make chaos`.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"invisispec/internal/campaign"
)

func TestChaosConformKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("conform chaos in -short")
	}
	base := Options{Seed: 77, N: 4}

	payload := func(r *Report) []byte {
		t.Helper()
		b, err := r.DeterministicPayload()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	clean, err := Campaign(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := payload(clean)

	for _, seed := range []int64{5, 6, 7} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed%d-w%d", seed, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				opts := base
				opts.Jobs = workers
				opts.Campaign = campaign.Options{
					Journal: filepath.Join(t.TempDir(), "j.jsonl"),
					Retries: 1,
					Seed:    seed,
				}
				opts.Campaign.Chaos = &campaign.ChaosOptions{
					Seed:         rng.Int63(),
					KillAtAppend: 1 + rng.Intn(base.N),
				}
				rep, err := Campaign(context.Background(), opts)
				if err != nil {
					if !errors.Is(err, campaign.ErrKilled) {
						t.Fatal(err)
					}
					resumed := opts
					resumed.Campaign.Chaos = nil
					resumed.Campaign.Resume = true
					rep, err = Campaign(context.Background(), resumed)
					if err != nil {
						t.Fatal(err)
					}
				}
				if got := payload(rep); !bytes.Equal(got, want) {
					t.Fatalf("resumed conform payload drifted from clean run:\n%s\n--- want ---\n%s", got, want)
				}
			})
		}
	}
}
