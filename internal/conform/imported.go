package conform

// Imported-trace conformance: where the generated-program campaign
// compares FINAL architectural state against the golden interpreter, an
// imported trace carries its whole committed stream, so the replay check
// is stronger — every configuration must commit the recorded stream
// event for event (trace.Diff semantics: cycles and OpCycle values are
// timing, everything else is architecture). conformfuzz -import runs this
// over a corpus directory; the same check also backs the conform-fuzzer
// reproducer promotion path (EmitTrace -> workload.ImportDir).

import (
	"fmt"

	"invisispec/internal/config"
	"invisispec/internal/harness"
	"invisispec/internal/isa"
	"invisispec/internal/trace"
)

// EmitTrace promotes a conformance program (a generated case or a
// minimized reproducer) to an importable replayable trace: the golden
// interpreter's committed stream plus the program image. The program must
// halt within the interpreter budget — the same admission rule the
// differential campaign applies to its inputs.
func EmitTrace(p *isa.Program) (*trace.Trace, error) {
	t, halted := trace.RecordInterp(p.Name, p, interpBudget)
	if !halted {
		return nil, fmt.Errorf("conform: %s: program did not halt within the %d-step interpreter budget", p.Name, interpBudget)
	}
	return t, nil
}

// CheckImportedTrace replays a single-core imported trace under every
// configuration in cfgs and diffs the committed stream against the
// recording. Multi-core traces return nil: their recorded interleaving is
// schedule-dependent, so only the structural import gates apply to them.
//
// Programs that derive register values from OpCycle reads (latency
// arithmetic in attack gadgets) are outside this check's scope: the
// derived values are timing, but the differ can only exempt the cycle
// reads themselves. Import such traces for sweeps and leakage scans, not
// for the conformance gate.
func CheckImportedTrace(t *trace.Trace, cfgs []Config) []Divergence {
	if len(t.Programs) != 1 {
		return nil
	}
	n := uint64(len(t.Events[0]))
	var divs []Divergence
	for _, cfg := range cfgs {
		run := config.Run{Machine: config.Default(1), Defense: cfg.Defense, Consistency: cfg.Consistency}
		rec, err := harness.Record(run, t.Name, t.Programs, n, harness.WithKernel(cfg.Kernel))
		if err != nil {
			divs = append(divs, Divergence{Config: cfg.String(), Reason: "simulator error: " + firstLine(err.Error())})
			continue
		}
		got := rec.Events[0]
		if uint64(len(got)) < n {
			divs = append(divs, Divergence{Config: cfg.String(),
				Reason: fmt.Sprintf("committed %d of %d recorded instructions", len(got), n)})
			continue
		}
		if i, why := trace.Diff(t.Events[0], got); i != -1 {
			divs = append(divs, Divergence{Config: cfg.String(),
				Reason: fmt.Sprintf("commit %d: %s", i, why)})
		}
	}
	return divs
}
