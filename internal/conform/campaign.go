package conform

// The campaign fans generated programs through the shared bounded worker
// pool (internal/runner): one task per program, each task running the full
// configuration matrix against the golden model. The report artifact
// follows the repo's bench/leakage pattern — a schema-versioned JSON whose
// deterministic payload is byte-identical for the same (seed, n) at any
// worker count, with all wall-clock data quarantined in a host block.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"invisispec/internal/runner"
)

// ReportSchema identifies the campaign artifact format.
const ReportSchema = "conform-report/v1"

// Options configures a campaign.
type Options struct {
	Seed uint64 // campaign seed; program i derives from Mix(Seed, i)
	N    int    // number of programs
	Jobs int    // worker count (<=0: GOMAXPROCS)
	// Shrink minimizes every diverging program and embeds the minimized
	// listing and a ready-to-commit corpus test in the report.
	Shrink         bool
	MaxShrinkEvals int       // oracle budget per shrink (default 2000)
	Progress       io.Writer // optional per-program progress lines
	Timeout        time.Duration
}

// ProgramResult is one program's deterministic outcome.
type ProgramResult struct {
	Index   int    `json:"index"`
	Seed    uint64 `json:"seed"`
	Insts   int    `json:"insts"`
	Retired uint64 `json:"retired"`
	Faults  uint64 `json:"faults,omitempty"`
	// Error records a harness-level failure (the task died before the
	// matrix completed); divergences are not errors.
	Error       string       `json:"error,omitempty"`
	Divergences []Divergence `json:"divergences,omitempty"`
	// Shrink output, present only for diverging programs when enabled.
	MinimizedLen int      `json:"minimized_len,omitempty"`
	ShrinkEvals  int      `json:"shrink_evals,omitempty"`
	Minimized    []string `json:"minimized_asm,omitempty"`
	ReproGo      string   `json:"repro_go,omitempty"`
}

// Host quarantines the nondeterministic side of the artifact.
type Host struct {
	WallMS float64 `json:"wall_ms"`
	Jobs   int     `json:"jobs"`
	CPUs   int     `json:"cpus"`
	GoOS   string  `json:"goos"`
	GoVer  string  `json:"go"`
}

// Report is a full campaign artifact.
type Report struct {
	Schema    string          `json:"schema"`
	Name      string          `json:"name"`
	Seed      uint64          `json:"seed"`
	Programs  int             `json:"programs"`
	Configs   []string        `json:"configs"`
	Diverging int             `json:"diverging"`
	Errors    int             `json:"errors"`
	Runs      []ProgramResult `json:"runs"`
	Host      *Host           `json:"host,omitempty"`
}

// checkOne generates and checks program i, shrinking on divergence.
func checkOne(ctx context.Context, opts Options, i int) ProgramResult {
	seed := Mix(opts.Seed, uint64(i))
	p := Generate(seed)
	p.Name = fmt.Sprintf("conform-%d-%x", i, seed)
	res := ProgramResult{Index: i, Seed: seed, Insts: len(p.Insts)}
	ref, err := RunRef(p)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Retired, res.Faults = ref.Retired, ref.Faults
	for _, cfg := range Configs() {
		if ctx.Err() != nil {
			res.Error = ctx.Err().Error()
			return res
		}
		if reason := CheckConfig(p, cfg, ref); reason != "" {
			res.Divergences = append(res.Divergences, Divergence{Config: cfg.String(), Reason: reason})
		}
	}
	if len(res.Divergences) == 0 || !opts.Shrink {
		return res
	}
	// Minimize against the first diverging configuration: one oracle
	// evaluation is then a single golden run plus a single simulation.
	var first Config
	for _, cfg := range Configs() {
		if cfg.String() == res.Divergences[0].Config {
			first = cfg
		}
	}
	budget := opts.MaxShrinkEvals
	if budget <= 0 {
		budget = 2000
	}
	min, st := Shrink(p, OracleFor([]Config{first}), budget)
	min.Name = p.Name + "-min"
	res.MinimizedLen = len(min.Insts)
	res.ShrinkEvals = st.Evals
	res.Minimized = Listing(min)
	res.ReproGo = EmitGoTest(fmt.Sprintf("Seed%x", seed), res.Divergences[0].Config+": "+res.Divergences[0].Reason, min)
	return res
}

// Campaign runs n programs through the matrix and assembles the report.
// Runs are indexed by program, so the deterministic payload is
// byte-identical regardless of worker count or scheduling.
func Campaign(ctx context.Context, opts Options) *Report {
	tasks := make([]runner.Task, opts.N)
	for i := range tasks {
		i := i
		tasks[i] = runner.Task{
			Name:    fmt.Sprintf("conform-%d", i),
			Timeout: opts.Timeout,
			Run: func(ctx context.Context) (any, error) {
				return checkOne(ctx, opts, i), nil
			},
		}
	}
	start := time.Now()
	results := runner.RunTasks(ctx, tasks, runner.Options{Jobs: opts.Jobs, Progress: opts.Progress})
	var cfgNames []string
	for _, c := range Configs() {
		cfgNames = append(cfgNames, c.String())
	}
	rep := &Report{
		Schema:   ReportSchema,
		Name:     fmt.Sprintf("conform-seed%d", opts.Seed),
		Seed:     opts.Seed,
		Programs: opts.N,
		Configs:  cfgNames,
		Runs:     make([]ProgramResult, opts.N),
	}
	for i, r := range results {
		switch {
		case r.Err != nil:
			// Pool-level failure (timeout, panic in the harness itself).
			rep.Runs[i] = ProgramResult{Index: i, Seed: Mix(opts.Seed, uint64(i)), Error: r.Err.Error()}
		default:
			rep.Runs[i] = r.Value.(ProgramResult)
		}
		if rep.Runs[i].Error != "" {
			rep.Errors++
		}
		if len(rep.Runs[i].Divergences) > 0 {
			rep.Diverging++
		}
	}
	rep.Host = &Host{
		WallMS: float64(time.Since(start).Nanoseconds()) / 1e6,
		Jobs:   opts.Jobs,
		CPUs:   runtime.NumCPU(),
		GoOS:   runtime.GOOS,
		GoVer:  runtime.Version(),
	}
	return rep
}

// DeterministicPayload renders the report without its host block, for
// byte-identity comparison across worker counts.
func (r *Report) DeterministicPayload() ([]byte, error) {
	stripped := *r
	stripped.Host = nil
	out, err := json.MarshalIndent(&stripped, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("conform: marshaling report payload: %w", err)
	}
	return out, nil
}

// WriteReportJSON writes the full artifact as indented JSON.
func WriteReportJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("conform: writing report JSON: %w", err)
	}
	return nil
}

// ReadReportJSON parses an artifact and validates its schema tag.
func ReadReportJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("conform: reading report JSON: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("conform: report schema %q, want %q", r.Schema, ReportSchema)
	}
	return &r, nil
}
