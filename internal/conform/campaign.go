package conform

// The campaign fans generated programs through the resilient execution
// layer (internal/campaign): one cell per program, each cell running the
// full configuration matrix against the golden model, with journaled
// checkpoints, transient-failure retries, and optional subprocess
// isolation. The report artifact follows the repo's bench/leakage pattern
// — a schema-versioned JSON whose deterministic payload is byte-identical
// for the same (seed, n) at any worker count, with all wall-clock data
// quarantined in a host block.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"invisispec/internal/artifact"
	"invisispec/internal/campaign"
	"invisispec/internal/config"
)

// ReportSchema identifies the campaign artifact format.
const ReportSchema = "conform-report/v1"

// Options configures a campaign.
type Options struct {
	Seed uint64 // campaign seed; program i derives from Mix(Seed, i)
	N    int    // number of programs
	Jobs int    // worker count (<=0: GOMAXPROCS)
	// Indices restricts the campaign to specific program indices (the
	// -only flag); nil means 0..N-1.
	Indices []int
	// Defenses restricts the per-program configuration matrix to a defense
	// subset (the -defenses flag); nil means every registered scheme.
	Defenses []config.Defense
	// Shrink minimizes every diverging program and embeds the minimized
	// listing and a ready-to-commit corpus test in the report.
	Shrink         bool
	MaxShrinkEvals int       // oracle budget per shrink (default 2000)
	Progress       io.Writer // optional per-program progress lines
	Timeout        time.Duration
	// Campaign carries the resilience knobs (journal/resume/retries/
	// isolation/chaos); Jobs, Timeout, and Progress above override its
	// pool fields.
	Campaign campaign.Options
	// Repro, when non-nil, overrides the default reproduction command
	// recorded for a degraded cell.
	Repro func(ProgSpec) string
}

// ProgSpec is one conformance cell's content identity: everything that
// determines the program's deterministic outcome. It is the journal hash
// key and the isolation wire format for conformance campaigns.
type ProgSpec struct {
	CampaignSeed   uint64 `json:"campaign_seed"`
	Index          int    `json:"index"`
	Shrink         bool   `json:"shrink,omitempty"`
	MaxShrinkEvals int    `json:"max_shrink_evals,omitempty"`
	// Defenses restricts the configuration matrix to these registry names
	// (nil: every registered scheme). Part of the spec — and therefore the
	// journal identity — because the cell's outcome depends on it.
	Defenses []string `json:"defenses,omitempty"`
}

// ProgramResult is one program's deterministic outcome.
type ProgramResult struct {
	Index   int    `json:"index"`
	Seed    uint64 `json:"seed"`
	Insts   int    `json:"insts"`
	Retired uint64 `json:"retired"`
	Faults  uint64 `json:"faults,omitempty"`
	// Error records a harness-level failure (the task died before the
	// matrix completed); divergences are not errors.
	Error       string       `json:"error,omitempty"`
	Divergences []Divergence `json:"divergences,omitempty"`
	// Shrink output, present only for diverging programs when enabled.
	MinimizedLen int      `json:"minimized_len,omitempty"`
	ShrinkEvals  int      `json:"shrink_evals,omitempty"`
	Minimized    []string `json:"minimized_asm,omitempty"`
	ReproGo      string   `json:"repro_go,omitempty"`
}

// Host quarantines the nondeterministic side of the artifact.
type Host struct {
	WallMS float64 `json:"wall_ms"`
	Jobs   int     `json:"jobs"`
	CPUs   int     `json:"cpus"`
	GoOS   string  `json:"goos"`
	GoVer  string  `json:"go"`
}

// Report is a full campaign artifact.
type Report struct {
	Schema    string          `json:"schema"`
	Name      string          `json:"name"`
	Seed      uint64          `json:"seed"`
	Programs  int             `json:"programs"`
	Configs   []string        `json:"configs"`
	Diverging int             `json:"diverging"`
	Errors    int             `json:"errors"`
	Runs      []ProgramResult `json:"runs"`
	// Degraded lists the cells whose runs exhausted their retry budget
	// (campaign graceful degradation): the campaign completed without
	// them, the CLI exits non-zero, and each entry carries a ready-to-run
	// repro command.
	Degraded []artifact.DegradedCell `json:"degraded,omitempty"`
	Host     *Host                   `json:"host,omitempty"`
}

// RunProgSpec generates and checks one program from its spec alone,
// shrinking on divergence — the in-process cell body and the -cellworker
// handler for isolation mode. Deterministic outcomes (golden-model
// failures, divergences) are embedded in the ProgramResult; only
// execution-layer failures (context cancellation or expiry) surface as
// the returned error, so the campaign's retry policy never re-runs a
// divergence but does re-run a timed-out cell.
func RunProgSpec(ctx context.Context, s ProgSpec) (ProgramResult, error) {
	seed := Mix(s.CampaignSeed, uint64(s.Index))
	p := Generate(seed)
	p.Name = fmt.Sprintf("conform-%d-%x", s.Index, seed)
	res := ProgramResult{Index: s.Index, Seed: seed, Insts: len(p.Insts)}
	ref, err := RunRef(p)
	if err != nil {
		res.Error = err.Error()
		return res, nil
	}
	res.Retired, res.Faults = ref.Retired, ref.Faults
	cfgs, err := s.configs()
	if err != nil {
		// A stale journal or hand-edited spec naming an unregistered
		// scheme is a deterministic input error, not a transient failure:
		// embed it so the retry policy never re-runs the cell.
		res.Error = err.Error()
		return res, nil
	}
	for _, cfg := range cfgs {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if reason := CheckConfig(p, cfg, ref); reason != "" {
			res.Divergences = append(res.Divergences, Divergence{Config: cfg.String(), Reason: reason})
		}
	}
	if len(res.Divergences) == 0 || !s.Shrink {
		return res, nil
	}
	// Minimize against the first diverging configuration: one oracle
	// evaluation is then a single golden run plus a single simulation.
	var first Config
	for _, cfg := range cfgs {
		if cfg.String() == res.Divergences[0].Config {
			first = cfg
		}
	}
	budget := s.MaxShrinkEvals
	if budget <= 0 {
		budget = 2000
	}
	min, st := Shrink(p, OracleFor([]Config{first}), budget)
	min.Name = p.Name + "-min"
	res.MinimizedLen = len(min.Insts)
	res.ShrinkEvals = st.Evals
	res.Minimized = Listing(min)
	res.ReproGo = EmitGoTest(fmt.Sprintf("Seed%x", seed), res.Divergences[0].Config+": "+res.Divergences[0].Reason, min)
	return res, nil
}

// configs resolves the spec's defense subset to the configuration matrix
// (nil: the full registered matrix).
func (s ProgSpec) configs() ([]Config, error) {
	if len(s.Defenses) == 0 {
		return Configs(), nil
	}
	defs := make([]config.Defense, len(s.Defenses))
	for i, n := range s.Defenses {
		d, err := config.ParseDefense(n)
		if err != nil {
			return nil, err
		}
		defs[i] = d
	}
	return ConfigsFor(defs), nil
}

// indices resolves Options.Indices (nil means every program).
func (o Options) indices() []int {
	if o.Indices != nil {
		return o.Indices
	}
	out := make([]int, o.N)
	for i := range out {
		out[i] = i
	}
	return out
}

// Campaign runs the selected programs through the matrix via the campaign
// layer and assembles the report. Runs are addressed by cell index, so the
// deterministic payload is byte-identical regardless of worker count,
// completion order, or whether cells were replayed from a resume journal.
// The returned error is execution-layer only (a journal failure or an
// injected chaos kill); per-program failures degrade into the report.
func Campaign(ctx context.Context, opts Options) (*Report, error) {
	idxs := opts.indices()
	var defNames []string
	for _, d := range opts.Defenses {
		if _, err := d.Scheme(); err != nil {
			return nil, err
		}
		defNames = append(defNames, d.String())
	}
	cells := make([]campaign.Cell, len(idxs))
	for i, idx := range idxs {
		spec := ProgSpec{CampaignSeed: opts.Seed, Index: idx, Shrink: opts.Shrink, MaxShrinkEvals: opts.MaxShrinkEvals, Defenses: defNames}
		cells[i] = campaign.Cell{
			Name:    fmt.Sprintf("conform-%d", idx),
			Spec:    spec,
			Timeout: opts.Timeout,
			Run: func(ctx context.Context) (any, error) {
				return RunProgSpec(ctx, spec)
			},
		}
	}
	copts := opts.Campaign
	copts.Workers = opts.Jobs
	copts.Progress = opts.Progress
	start := time.Now()
	name := fmt.Sprintf("conform-seed%d", opts.Seed)
	outcomes, err := campaign.Run(ctx, name, cells, copts)
	if err != nil {
		return nil, err
	}
	matrix := Configs()
	if len(opts.Defenses) > 0 {
		matrix = ConfigsFor(opts.Defenses)
	}
	var cfgNames []string
	for _, c := range matrix {
		cfgNames = append(cfgNames, c.String())
	}
	rep := &Report{
		Schema:   ReportSchema,
		Name:     name,
		Seed:     opts.Seed,
		Programs: len(idxs),
		Configs:  cfgNames,
		Runs:     make([]ProgramResult, len(idxs)),
	}
	for i, o := range outcomes {
		idx := idxs[i]
		switch {
		case o.Err != nil:
			// Execution-layer failure after the retry budget (timeout,
			// panic, worker crash); the cell also lands in Degraded.
			rep.Runs[i] = ProgramResult{Index: idx, Seed: Mix(opts.Seed, uint64(idx)), Error: o.Err.Error()}
		default:
			if err := json.Unmarshal(o.Value, &rep.Runs[i]); err != nil {
				return nil, fmt.Errorf("conform: decoding journaled result for %s: %w", o.Name, err)
			}
		}
		if rep.Runs[i].Error != "" {
			rep.Errors++
		}
		if len(rep.Runs[i].Divergences) > 0 {
			rep.Diverging++
		}
	}
	rep.Degraded = campaign.Degraded(outcomes, func(o campaign.Outcome) string {
		spec := ProgSpec{CampaignSeed: opts.Seed, Index: idxs[o.Index], Shrink: opts.Shrink, MaxShrinkEvals: opts.MaxShrinkEvals, Defenses: defNames}
		if opts.Repro != nil {
			return opts.Repro(spec)
		}
		return fmt.Sprintf("go run ./cmd/conformfuzz -seed %d -n %d -only %d -shrink", opts.Seed, opts.N, spec.Index)
	})
	rep.Host = &Host{
		WallMS: float64(time.Since(start).Nanoseconds()) / 1e6,
		Jobs:   opts.Jobs,
		CPUs:   runtime.NumCPU(),
		GoOS:   runtime.GOOS,
		GoVer:  runtime.Version(),
	}
	return rep, nil
}

// DeterministicPayload renders the report without its host block, for
// byte-identity comparison across worker counts.
func (r *Report) DeterministicPayload() ([]byte, error) {
	stripped := *r
	stripped.Host = nil
	out, err := json.MarshalIndent(&stripped, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("conform: marshaling report payload: %w", err)
	}
	return out, nil
}

// WriteReportJSON writes the full artifact as indented JSON.
func WriteReportJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("conform: writing report JSON: %w", err)
	}
	return nil
}

// ReadReportJSON parses an artifact and validates its schema tag.
func ReadReportJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("conform: reading report JSON: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("conform: report schema %q, want %q", r.Schema, ReportSchema)
	}
	return &r, nil
}
