// Package conform implements differential conformance fuzzing of the
// out-of-order core against the golden functional interpreter
// (isa.Interp). A seeded generator produces well-formed, terminating
// programs that stress the machinery most likely to diverge under
// squash-heavy transient execution — ALU/MUL/DIV edge cases, aliasing
// load/store mixes through the LSQ, fences and atomics, CALL/RET nests
// deeper than the 16-entry RAS, indirect jumps through data-dependent
// tables, and exception-raising privileged loads. Each program runs through
// the interpreter once and through the full simulator under every defense ×
// consistency model × simulation kernel, and the final architectural state
// (registers plus every initialized memory window) must be byte-identical.
// Failures auto-shrink to minimized reproducers committed under
// internal/conform/corpus.
package conform

import (
	"fmt"

	"invisispec/internal/isa"
)

// Memory map of generated programs. Every range is covered by InitMem, which
// doubles as the set of windows the differential harness compares, so all
// architectural stores land in compared memory by construction.
const (
	// DataBase anchors the random-access data window. Address registers are
	// confined to [DataBase, DataBase+dataMask] and offsets to [0, 63], so
	// with up-to-8-byte accesses the window below covers every reachable
	// byte.
	DataBase = 0x10000
	dataMask = 1023
	dataLen  = dataMask + 64 + 8 + 1 // 1096, rounded up below
	// StackBase holds the static spill slots of the generated call chain
	// (one 8-byte slot per nesting depth).
	StackBase = 0x20000
	// TableBase holds jump tables: 4 u64 instruction indices per table,
	// 32 bytes apart.
	TableBase  = 0x30000
	tableSlots = 4
	maxTables  = 8
)

// maxCallDepth bounds the generated CALL chain; it deliberately exceeds the
// 16-entry RAS so deep nests wrap the stack.
const maxCallDepth = 24

// interpBudget bounds the golden run. Generated programs terminate by
// construction (forward-only control flow, counted loops, static call
// chains); the budget is the certificate the generator checks before
// accepting a program.
const interpBudget = 200_000

// rng is a self-contained splitmix64 generator so program generation is
// reproducible from a single uint64 and independent of math/rand.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) n(n int) int         { return int(r.next() % uint64(n)) }
func (r *rng) chance(pct int) bool { return r.n(100) < pct }

// Mix derives a child seed; the campaign uses it so program i depends only
// on (campaign seed, i), never on worker scheduling.
func Mix(seed, i uint64) uint64 {
	r := rng{s: seed ^ (i+1)*0xd1342543de82ef95}
	return r.next()
}

// Register conventions. Generated code keeps a few registers with global
// invariants so exception continuations and address masking stay
// well-formed on every architectural path; everything else is clobbered
// freely.
const (
	rVal0    = 0  // r0..r7: value scratch
	rAddr0   = 8  // r8..r15: data-window addresses (always in-window)
	rCtr0    = 16 // r16..r19: loop counters
	rTmp0    = 20 // r20..r23: address/table temporaries
	rTable   = 24 // jump-table base
	rScratch = 25 // extra value scratch
	rFaults  = 26 // fault counter bumped by the exception handler
	rZero    = 27 // constant zero
	rLink    = 28 // link register for CALL/RET
	rCont    = 29 // exception continuation (next segment's index)
	rStack   = 30 // stack base
	rData    = 31 // data-window base
)

// Symbolic branch targets: instruction indices are unknown while segments
// are being emitted, so targets carry symbol ids resolved by a fixup pass.
// sym(i) for segment i, symFunc(k) for call-chain function k.
const symBase = 1 << 24

func sym(i int) int     { return symBase + i }
func symFunc(k int) int { return 2*symBase + k }

type segKind int

const (
	segALU segKind = iota
	segMem
	segLoop
	segBranch
	segTable
	segCall
	numSegKinds
)

type gen struct {
	r      rng
	insts  []isa.Inst
	immFix []int   // instructions whose Imm holds a symbolic index (Li rCont)
	seg    []int   // segment start indices; seg[nSegs] is the halt
	fn     []int   // function entry indices
	tables [][]int // per-table symbolic targets
	nSegs  int
	depth  int
}

func (g *gen) emit(in isa.Inst) int {
	g.insts = append(g.insts, in)
	return len(g.insts) - 1
}

func (g *gen) li(rd uint8, v uint64) { g.emit(isa.Inst{Op: isa.OpLui, Rd: rd, Imm: int64(v)}) }

// liSym emits a load of a symbolic instruction index, fixed up after layout.
func (g *gen) liSym(rd uint8, s int) {
	g.immFix = append(g.immFix, g.emit(isa.Inst{Op: isa.OpLui, Rd: rd, Imm: int64(s)}))
}

func (g *gen) valReg() uint8  { return uint8(rVal0 + g.r.n(8)) }
func (g *gen) addrReg() uint8 { return uint8(rAddr0 + g.r.n(8)) }
func (g *gen) size() uint8    { return []uint8{1, 2, 4, 8}[g.r.n(4)] }

// interesting constants steer ALU edge cases: divide-by-zero feeds, signed
// overflow, all-ones (-1) divisors, shift counts at and past the width.
func (g *gen) constant() uint64 {
	switch g.r.n(8) {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return ^uint64(0) // -1
	case 3:
		return 1 << 63 // MinInt64
	case 4:
		return uint64(g.r.n(128)) // small
	default:
		return g.r.next()
	}
}

func (g *gen) aluInst() isa.Inst {
	rd, a, b := g.valReg(), g.valReg(), g.valReg()
	switch g.r.n(12) {
	case 0:
		return isa.Inst{Op: isa.OpMul, Rd: rd, Rs1: a, Rs2: b}
	case 1:
		return isa.Inst{Op: isa.OpDiv, Rd: rd, Rs1: a, Rs2: b}
	case 2:
		// Signed divide, sometimes explicitly by the zero register.
		if g.r.chance(30) {
			b = rZero
		}
		return isa.Inst{Op: isa.OpDivS, Rd: rd, Rs1: a, Rs2: b}
	case 3:
		if g.r.chance(30) {
			b = rZero
		}
		return isa.Inst{Op: isa.OpRemU, Rd: rd, Rs1: a, Rs2: b}
	case 4:
		return isa.Inst{Op: isa.OpShl, Rd: rd, Rs1: a, Rs2: b}
	case 5:
		return isa.Inst{Op: isa.OpShr, Rd: rd, Rs1: a, Rs2: b}
	case 6:
		return isa.Inst{Op: isa.OpSlt, Rd: rd, Rs1: a, Rs2: b}
	case 7:
		return isa.Inst{Op: isa.OpAddI, Rd: rd, Rs1: a, Imm: int64(g.constant())}
	case 8:
		return isa.Inst{Op: isa.OpLui, Rd: rd, Imm: int64(g.constant())}
	case 9:
		return isa.Inst{Op: isa.OpXor, Rd: rd, Rs1: a, Rs2: b}
	case 10:
		return isa.Inst{Op: isa.OpSub, Rd: rd, Rs1: a, Rs2: b}
	default:
		return isa.Inst{Op: isa.OpAdd, Rd: rd, Rs1: a, Rs2: b}
	}
}

// memInst emits one data-window access. Offsets are drawn without alignment
// so the shared AlignAddr rule is exercised on every path.
func (g *gen) memInst(allowPriv bool) isa.Inst {
	a := g.addrReg()
	sz := g.size()
	imm := int64(g.r.n(64))
	switch g.r.n(10) {
	case 0, 1, 2:
		return isa.Inst{Op: isa.OpStore, Rs1: a, Rs2: g.valReg(), Imm: imm, Size: sz}
	case 3:
		return isa.Inst{Op: isa.OpRMW, Rd: g.valReg(), Rs1: a, Rs2: g.valReg(), Size: sz}
	case 4:
		if allowPriv && g.r.chance(50) {
			return isa.Inst{Op: isa.OpLoad, Rd: g.valReg(), Rs1: a, Imm: imm, Size: sz, Priv: true}
		}
		return isa.Inst{Op: isa.OpLoad, Rd: g.valReg(), Rs1: a, Imm: imm, Size: sz, Safe: true}
	case 5:
		return isa.Inst{Op: isa.OpPrefetch, Rs1: a, Imm: imm}
	case 6:
		return isa.Inst{Op: isa.OpFlush, Rs1: a, Imm: imm}
	default:
		return isa.Inst{Op: isa.OpLoad, Rd: g.valReg(), Rs1: a, Imm: imm, Size: sz}
	}
}

func (g *gen) fence() isa.Inst {
	switch g.r.n(3) {
	case 0:
		return isa.Inst{Op: isa.OpFence}
	case 1:
		return isa.Inst{Op: isa.OpAcquire}
	default:
		return isa.Inst{Op: isa.OpRelease}
	}
}

// retargetAddrReg re-points an address register, either statically or
// data-dependently (masked into the window, the Spectre-shaped pattern).
func (g *gen) retargetAddrReg() {
	a := g.addrReg()
	if g.r.chance(50) {
		g.li(a, DataBase+uint64(g.r.n(dataMask+1)))
		return
	}
	t := uint8(rTmp0 + g.r.n(4))
	g.emit(isa.Inst{Op: isa.OpAndI, Rd: t, Rs1: g.valReg(), Imm: dataMask})
	g.emit(isa.Inst{Op: isa.OpAdd, Rd: a, Rs1: t, Rs2: rData})
}

// segment emits one segment of the given kind. Each segment opens by setting
// the exception continuation to the next segment's start, so a privileged
// load faulting anywhere inside resumes at a well-defined forward point.
func (g *gen) segment(i int, kind segKind, forcePriv bool) {
	g.seg[i] = len(g.insts)
	g.liSym(rCont, sym(i+1))
	switch kind {
	case segALU:
		for n := 2 + g.r.n(6); n > 0; n-- {
			g.emit(g.aluInst())
		}
	case segMem:
		if g.r.chance(60) {
			g.retargetAddrReg()
		}
		for n := 3 + g.r.n(6); n > 0; n-- {
			g.emit(g.memInst(true))
		}
		if forcePriv {
			// The first mem segment guarantees the rarer constructs so
			// every program has an exception source, an atomic, and a fence.
			g.emit(isa.Inst{Op: isa.OpRMW, Rd: g.valReg(), Rs1: g.addrReg(),
				Rs2: g.valReg(), Size: g.size()})
			g.emit(g.fence())
			g.emit(isa.Inst{Op: isa.OpLoad, Rd: g.valReg(), Rs1: g.addrReg(),
				Imm: int64(g.r.n(64)), Size: g.size(), Priv: true})
		}
	case segLoop:
		ctr := uint8(rCtr0 + i%4)
		g.li(ctr, uint64(1+g.r.n(6)))
		top := len(g.insts)
		for n := 1 + g.r.n(4); n > 0; n-- {
			if g.r.chance(35) {
				g.emit(g.memInst(false))
			} else {
				g.emit(g.aluInst())
			}
		}
		g.emit(isa.Inst{Op: isa.OpAddI, Rd: ctr, Rs1: ctr, Imm: -1})
		// The only backward branch; the counter strictly decreases so the
		// loop terminates in at most 6 iterations.
		g.emit(isa.Inst{Op: isa.OpBne, Rs1: ctr, Rs2: rZero, Target: top})
	case segBranch:
		for n := 1 + g.r.n(3); n > 0; n-- {
			g.emit(g.aluInst())
		}
		ops := []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge}
		maxSkip := g.nSegs - i
		if maxSkip > 3 {
			maxSkip = 3
		}
		tgt := sym(i + 1 + g.r.n(maxSkip))
		if g.r.chance(15) {
			g.emit(isa.Inst{Op: isa.OpJmp, Target: tgt})
		} else {
			g.emit(isa.Inst{Op: ops[g.r.n(4)], Rs1: g.valReg(), Rs2: g.valReg(), Target: tgt})
		}
	case segTable:
		t := len(g.tables)
		maxSkip := g.nSegs - i
		if maxSkip > tableSlots {
			maxSkip = tableSlots
		}
		entries := make([]int, tableSlots)
		for e := range entries {
			entries[e] = sym(i + 1 + g.r.n(maxSkip))
		}
		g.tables = append(g.tables, entries)
		idx, ptr := uint8(rTmp0), uint8(rTmp0+1)
		g.emit(isa.Inst{Op: isa.OpAndI, Rd: idx, Rs1: g.valReg(), Imm: tableSlots - 1})
		g.emit(isa.Inst{Op: isa.OpShlI, Rd: idx, Rs1: idx, Imm: 3})
		g.emit(isa.Inst{Op: isa.OpAdd, Rd: ptr, Rs1: idx, Rs2: rTable})
		g.emit(isa.Inst{Op: isa.OpLoad, Rd: ptr, Rs1: ptr, Imm: int64(32 * t), Size: 8})
		g.emit(isa.Inst{Op: isa.OpJmpI, Rs1: ptr})
	case segCall:
		g.emit(isa.Inst{Op: isa.OpCall, Rd: rLink, Target: symFunc(0)})
	}
	if g.r.chance(25) {
		g.emit(g.fence())
	}
}

// function emits call-chain function k: spill the link register to a static
// stack slot, do a little work, call the next function in the chain, and
// return through the RAS. Function bodies never raise exceptions or jump
// indirectly, so the chain always unwinds.
func (g *gen) function(k int) {
	g.fn[k] = len(g.insts)
	g.emit(isa.Inst{Op: isa.OpStore, Rs1: rStack, Rs2: rLink, Imm: int64(8 * k), Size: 8})
	for n := 1 + g.r.n(3); n > 0; n-- {
		if g.r.chance(30) {
			g.emit(g.memInst(false))
		} else {
			g.emit(g.aluInst())
		}
	}
	if k+1 < g.depth {
		g.emit(isa.Inst{Op: isa.OpCall, Rd: rLink, Target: symFunc(k + 1)})
	}
	g.emit(isa.Inst{Op: isa.OpLoad, Rd: rLink, Rs1: rStack, Imm: int64(8 * k), Size: 8})
	g.emit(isa.Inst{Op: isa.OpRet, Rs1: rLink})
}

// genOnce builds one candidate program from the seed.
func genOnce(seed uint64, name string) *isa.Program {
	g := &gen{r: rng{s: seed}}
	g.nSegs = 8 + g.r.n(6)
	g.depth = 4 + g.r.n(maxCallDepth-3)
	g.seg = make([]int, g.nSegs+1)
	g.fn = make([]int, g.depth)

	// Preamble: pin the invariant registers, seed the value registers with
	// edge-case constants, and point every address register in-window.
	g.li(rData, DataBase)
	g.li(rStack, StackBase)
	g.li(rTable, TableBase)
	g.li(rZero, 0)
	g.li(rFaults, 0)
	g.li(rScratch, g.constant())
	for v := 0; v < 8; v++ {
		g.li(uint8(rVal0+v), g.constant())
	}
	for a := 0; a < 8; a++ {
		g.li(uint8(rAddr0+a), DataBase+uint64(g.r.n(dataMask+1)))
	}

	// One of each segment kind is mandatory (so every program exercises
	// loops, branches, tables, calls, and an exception-raising load); the
	// rest are drawn at random, then the order is shuffled.
	kinds := make([]segKind, g.nSegs)
	for i := 0; i < g.nSegs; i++ {
		if i < int(numSegKinds) {
			kinds[i] = segKind(i)
		} else {
			kinds[i] = segKind(g.r.n(int(numSegKinds)))
		}
	}
	for i := len(kinds) - 1; i > 0; i-- {
		j := g.r.n(i + 1)
		kinds[i], kinds[j] = kinds[j], kinds[i]
	}
	tablesUsed := 0
	privDone := false
	for i, k := range kinds {
		if k == segTable {
			if tablesUsed >= maxTables {
				k = segBranch
			} else {
				tablesUsed++
			}
		}
		force := k == segMem && !privDone
		if force {
			privDone = true
		}
		g.segment(i, k, force)
	}
	g.seg[g.nSegs] = g.emit(isa.Inst{Op: isa.OpHalt})
	for k := 0; k < g.depth; k++ {
		g.function(k)
	}
	handler := g.emit(isa.Inst{Op: isa.OpAddI, Rd: rFaults, Rs1: rFaults, Imm: 1})
	g.emit(isa.Inst{Op: isa.OpJmpI, Rs1: rCont})

	// Fixups: resolve symbolic branch targets and continuation immediates.
	resolve := func(s int) int {
		switch {
		case s >= 2*symBase:
			return g.fn[s-2*symBase]
		case s >= symBase:
			return g.seg[s-symBase]
		}
		return s
	}
	for i := range g.insts {
		in := &g.insts[i]
		if in.Op.IsBranch() && in.Target >= symBase {
			in.Target = resolve(in.Target)
		}
	}
	for _, i := range g.immFix {
		g.insts[i].Imm = int64(resolve(int(g.insts[i].Imm)))
	}

	// Initial memory image: random data window, zeroed stack, and the jump
	// tables. These chunks are also the windows the differential harness
	// compares, and they cover every architecturally reachable store.
	data := make([]byte, (dataLen+63)&^63)
	for i := range data {
		data[i] = byte(g.r.next())
	}
	initMem := []isa.InitChunk{
		{Addr: DataBase, Data: data},
		{Addr: StackBase, Data: make([]byte, 8*maxCallDepth)},
	}
	if tablesUsed > 0 {
		tab := make([]byte, 32*tablesUsed)
		for t, entries := range g.tables {
			for e, s := range entries {
				v := uint64(resolve(s))
				for b := 0; b < 8; b++ {
					tab[32*t+8*e+b] = byte(v >> (8 * b))
				}
			}
		}
		initMem = append(initMem, isa.InitChunk{Addr: TableBase, Data: tab})
	}

	return &isa.Program{
		Name:    name,
		Insts:   g.insts,
		Entry:   0,
		Handler: handler,
		InitMem: initMem,
	}
}

// Generate builds the program for a seed. Programs terminate by
// construction; the golden interpreter certifies it (and bounds the
// simulator cycle budgets downstream). A candidate that fails the
// certificate — which would indicate a generator bug — is resampled
// deterministically.
func Generate(seed uint64) *isa.Program {
	for attempt := 0; attempt < 100; attempt++ {
		p := genOnce(Mix(seed, uint64(attempt)), fmt.Sprintf("conform-%x", seed))
		it := isa.NewInterp(p)
		if err := it.Run(interpBudget); err == nil {
			return p
		}
	}
	panic(fmt.Sprintf("conform: seed %#x produced no terminating program in 100 attempts", seed))
}
