// Package corpus holds minimized reproducers for every divergence the
// conformance fuzzer has found. Each file is a generated Go test (see
// conform.EmitGoTest) replaying one minimized program through
// conform.RequireConformance, so a fixed bug is re-proven against the full
// defense × consistency × kernel matrix on every test run.
//
// Policy: a divergence found by the fuzzer is fixed in the same change that
// found it, and its minimized reproducer is committed here. Reproducers are
// never deleted; a reproducer that starts failing means a fixed bug has
// regressed.
package corpus
