package conform

// Auto-shrinking of diverging programs. The shrinker is deterministic and
// bounded: given the same program and oracle it always produces the same
// minimized reproducer, and it never evaluates the oracle more than the
// given budget. Three passes run in order:
//
//  1. Instruction deletion, ddmin-style: spans of instructions are replaced
//     with nops (keeping indices stable so branch targets and jump-table
//     entries stay valid), halving the span size down to single
//     instructions, repeated to a fixpoint.
//  2. Operand simplification: per surviving instruction, try zeroing the
//     immediate and dropping the Priv/Safe flags; per InitMem chunk, try
//     dropping the chunk and zeroing its data.
//  3. Compaction: strip the accumulated nops, remapping branch targets,
//     the entry point, and the handler. Indirect targets held in data
//     (jump tables) cannot be remapped, so the compacted candidate is
//     verified by the oracle like any other reduction and discarded if the
//     divergence does not survive.
//
// Every kept candidate re-proved the divergence through the oracle, so the
// final program is a genuine failing input, not an approximation.

import "invisispec/internal/isa"

// Oracle reports whether a candidate program still exhibits the divergence
// being minimized, with a reason for reporting. It must be deterministic.
type Oracle func(p *isa.Program) (diverges bool, reason string)

// ShrinkStats summarizes a shrink run.
type ShrinkStats struct {
	Evals int // oracle evaluations spent
	From  int // instruction count before
	To    int // instruction count after (excluding nops only if compacted)
}

func cloneProgram(p *isa.Program) *isa.Program {
	q := *p
	q.Insts = append([]isa.Inst(nil), p.Insts...)
	q.InitMem = make([]isa.InitChunk, len(p.InitMem))
	for i, ch := range p.InitMem {
		q.InitMem[i] = isa.InitChunk{Addr: ch.Addr, Data: append([]byte(nil), ch.Data...)}
	}
	return &q
}

// Shrink minimizes p with respect to oracle, spending at most maxEvals
// oracle evaluations. p must itself satisfy the oracle; Shrink never
// returns a program that does not.
func Shrink(p *isa.Program, oracle Oracle, maxEvals int) (*isa.Program, ShrinkStats) {
	cur := cloneProgram(p)
	st := ShrinkStats{From: len(p.Insts)}
	try := func(cand *isa.Program) bool {
		if st.Evals >= maxEvals {
			return false
		}
		st.Evals++
		if ok, _ := oracle(cand); ok {
			cur = cand
			return true
		}
		return false
	}

	// Pass 1: nop-out deletion to a fixpoint.
	for changed := true; changed && st.Evals < maxEvals; {
		changed = false
		for span := len(cur.Insts); span >= 1; span /= 2 {
			for start := 0; start < len(cur.Insts); start += span {
				end := start + span
				if end > len(cur.Insts) {
					end = len(cur.Insts)
				}
				if allNops(cur.Insts[start:end]) {
					continue
				}
				cand := cloneProgram(cur)
				for i := start; i < end; i++ {
					cand.Insts[i] = isa.Inst{Op: isa.OpNop}
				}
				if try(cand) {
					changed = true
				}
			}
		}
	}

	// Pass 2: operand simplification.
	for i := range cur.Insts {
		in := cur.Insts[i]
		if in.Op == isa.OpNop {
			continue
		}
		if in.Imm != 0 {
			cand := cloneProgram(cur)
			cand.Insts[i].Imm = 0
			try(cand)
		}
		if cur.Insts[i].Priv {
			cand := cloneProgram(cur)
			cand.Insts[i].Priv = false
			try(cand)
		}
		if cur.Insts[i].Safe {
			cand := cloneProgram(cur)
			cand.Insts[i].Safe = false
			try(cand)
		}
	}
	for ci := len(cur.InitMem) - 1; ci >= 0; ci-- {
		cand := cloneProgram(cur)
		cand.InitMem = append(cand.InitMem[:ci], cand.InitMem[ci+1:]...)
		if try(cand) {
			continue
		}
		cand = cloneProgram(cur)
		for b := range cand.InitMem[ci].Data {
			cand.InitMem[ci].Data[b] = 0
		}
		try(cand)
	}

	// Pass 3: compaction.
	if compacted := compact(cur); len(compacted.Insts) < len(cur.Insts) {
		try(compacted)
	}
	st.To = len(cur.Insts)
	return cur, st
}

func allNops(insts []isa.Inst) bool {
	for _, in := range insts {
		if in.Op != isa.OpNop {
			return false
		}
	}
	return true
}

// compact removes nop instructions, remapping direct targets, the entry
// point, and the handler. A target that pointed at a removed nop lands on
// the next surviving instruction, which is equivalent because nops fall
// through; targets past the end stay past the end (fetch off the end
// decodes a halt). Indirect targets living in data are NOT remapped — the
// caller verifies the compacted program through the oracle.
func compact(p *isa.Program) *isa.Program {
	newIdx := make([]int, len(p.Insts)+1)
	n := 0
	for i, in := range p.Insts {
		newIdx[i] = n
		if in.Op != isa.OpNop {
			n++
		}
	}
	newIdx[len(p.Insts)] = n
	remap := func(idx int) int {
		if idx < 0 {
			return idx
		}
		if idx >= len(p.Insts) {
			return n + (idx - len(p.Insts))
		}
		return newIdx[idx]
	}
	q := cloneProgram(p)
	q.Insts = q.Insts[:0]
	for _, in := range p.Insts {
		if in.Op == isa.OpNop {
			continue
		}
		if in.Op.IsBranch() {
			in.Target = remap(in.Target)
		}
		q.Insts = append(q.Insts, in)
	}
	q.Entry = remap(p.Entry)
	q.Handler = remap(p.Handler)
	return q
}
