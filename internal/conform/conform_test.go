package conform

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"invisispec/internal/isa"
)

// TestGeneratorDeterminism: the same seed must reproduce the identical
// program, and different seeds must differ (the campaign's per-index seeds
// rely on both).
func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(42)
	b := Generate(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate(42) is not deterministic")
	}
	c := Generate(43)
	if reflect.DeepEqual(a.Insts, c.Insts) {
		t.Fatal("Generate(42) and Generate(43) emitted identical code")
	}
}

// TestGeneratorTerminationAndCoverage: every generated program must
// terminate in the golden model and exercise the constructs the tentpole
// names — exception-raising loads, CALL/RET chains deeper than small
// programs would produce by chance, indirect jumps, bounded loops
// (backward branches), and the DIV edge-case ops.
func TestGeneratorTerminationAndCoverage(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		p := Generate(seed)
		it := isa.NewInterp(p)
		if err := it.Run(interpBudget); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var havePriv, haveCall, haveRet, haveJmpI, haveBack, haveDivS, haveRMW, haveFence bool
		for i, in := range p.Insts {
			switch {
			case in.Op == isa.OpLoad && in.Priv:
				havePriv = true
			case in.Op == isa.OpCall:
				haveCall = true
			case in.Op == isa.OpRet:
				haveRet = true
			case in.Op == isa.OpJmpI:
				haveJmpI = true
			case in.Op.IsCondBranch() && in.Target <= i:
				haveBack = true
			case in.Op == isa.OpDivS || in.Op == isa.OpRemU || in.Op == isa.OpDiv:
				haveDivS = true
			case in.Op == isa.OpRMW:
				haveRMW = true
			case in.Op.IsFence():
				haveFence = true
			}
		}
		for name, ok := range map[string]bool{
			"priv load": havePriv, "call": haveCall, "ret": haveRet,
			"indirect jump": haveJmpI, "backward loop branch": haveBack,
			"div-family op": haveDivS, "rmw or fence": haveRMW || haveFence,
		} {
			if !ok {
				t.Errorf("seed %d: generated program lacks %s", seed, name)
			}
		}
		// The call chain must be able to exceed the 16-entry RAS: check the
		// static chain depth across seeds rather than per seed.
	}
	// At least one of the 25 seeds must nest calls deeper than the RAS.
	deep := false
	for seed := uint64(1); seed <= 25; seed++ {
		calls := 0
		for _, in := range Generate(seed).Insts {
			if in.Op == isa.OpCall {
				calls++
			}
		}
		if calls > 16 {
			deep = true
		}
	}
	if !deep {
		t.Error("no seed in 1..25 produced a call chain deeper than the 16-entry RAS")
	}
}

// TestProgramsConform: a handful of generated programs must pass the full
// matrix — the core conformance property the campaign scales up.
func TestProgramsConform(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		RequireConformance(t, Generate(seed))
	}
}

// TestCampaignDeterministicAcrossJobs: the deterministic payload must be
// byte-identical no matter how many workers computed it.
func TestCampaignDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short")
	}
	opts := Options{Seed: 7, N: 6}
	opts.Jobs = 1
	r1, err := Campaign(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Jobs = 4
	r4, err := Campaign(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r1.DeterministicPayload()
	if err != nil {
		t.Fatal(err)
	}
	p4, err := r4.DeterministicPayload()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, p4) {
		t.Fatalf("payloads differ between 1 and 4 workers:\n%s\n----\n%s", p1, p4)
	}
	if r1.Diverging != 0 || r1.Errors != 0 {
		t.Fatalf("campaign found %d diverging, %d errors: %s", r1.Diverging, r1.Errors, p1)
	}
}

// TestReportRoundTrip: write → read preserves the artifact and validates
// the schema tag.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{Schema: ReportSchema, Name: "t", Seed: 1, Programs: 1,
		Runs: []ProgramResult{{Index: 0, Seed: 2, Insts: 3, Retired: 4}}}
	var buf bytes.Buffer
	if err := WriteReportJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rep)
	}
	buf.Reset()
	buf.WriteString(`{"schema":"bogus/v9"}`)
	if _, err := ReadReportJSON(&buf); err == nil {
		t.Fatal("bad schema accepted")
	}
}

// TestOpGoNameExhaustive: the emitter's opcode table must cover every
// defined opcode, or emitted reproducers would silently drop instructions.
func TestOpGoNameExhaustive(t *testing.T) {
	for op := 0; op < isa.NumOps; op++ {
		if opGoName[isa.Op(op)] == "" {
			t.Errorf("opGoName missing %v", isa.Op(op))
		}
	}
}

// TestEmitGoTestCompilesShape: sanity-check the emitted source mentions the
// program pieces (full compile coverage comes from the committed corpus).
func TestEmitGoTestShape(t *testing.T) {
	p := &isa.Program{Name: "x", Handler: -1,
		Insts:   []isa.Inst{{Op: isa.OpLui, Rd: 1, Imm: 7}, {Op: isa.OpHalt}},
		InitMem: []isa.InitChunk{{Addr: 0x10, Data: []byte{1, 2}}}}
	src := EmitGoTest("X", "r1 mismatch", p)
	for _, want := range []string{"func TestReproX", "isa.OpLui", "isa.OpHalt",
		"conform.RequireConformance", "Handler: -1", "0x10"} {
		if !bytes.Contains([]byte(src), []byte(want)) {
			t.Errorf("emitted source lacks %q:\n%s", want, src)
		}
	}
}
