package conform

import (
	"reflect"
	"testing"

	"invisispec/internal/isa"
)

// divsDecodeBugOracle simulates a decoder bug — every signed divide executes
// as an unsigned divide — by running the golden interpreter on the program
// and on a mutated copy. A candidate "diverges" when the two final
// architectural states differ, exactly the shape of oracle the campaign
// hands the shrinker (deterministic, rejects non-terminating candidates).
func divsDecodeBugOracle(p *isa.Program) (bool, string) {
	good, err := RunRef(p)
	if err != nil {
		return false, ""
	}
	mut := cloneProgram(p)
	for i := range mut.Insts {
		if mut.Insts[i].Op == isa.OpDivS {
			mut.Insts[i].Op = isa.OpDiv
		}
	}
	bad, err := RunRef(mut)
	if err != nil {
		return false, ""
	}
	if good.Regs != bad.Regs {
		return true, "registers differ under divs-as-div decode"
	}
	for ci := range good.Mem {
		for b := range good.Mem[ci] {
			if good.Mem[ci][b] != bad.Mem[ci][b] {
				return true, "memory differs under divs-as-div decode"
			}
		}
	}
	return false, ""
}

// TestShrinkerMinimizesInjectedBug is the shrinker self-test: seed the
// oracle with an injected DivS-decodes-as-Div bug, find a generated program
// that exposes it, and require the shrinker to cut it down to a handful of
// instructions while preserving the divergence.
func TestShrinkerMinimizesInjectedBug(t *testing.T) {
	var victim *isa.Program
	var seed uint64
	for s := uint64(1); s <= 200; s++ {
		p := Generate(s)
		if ok, _ := divsDecodeBugOracle(p); ok {
			victim, seed = p, s
			break
		}
	}
	if victim == nil {
		t.Fatal("no seed in 1..200 exposes the injected DivS bug; generator lost div coverage")
	}
	t.Logf("seed %d exposes the injected bug at %d instructions", seed, len(victim.Insts))

	min, st := Shrink(victim, divsDecodeBugOracle, 4000)
	if ok, _ := divsDecodeBugOracle(min); !ok {
		t.Fatal("shrinker returned a program that no longer diverges")
	}
	if real := nonNopCount(min); real > 12 {
		t.Errorf("minimized reproducer has %d instructions, want <= 12:\n%s",
			real, joinListing(min))
	}
	if st.Evals > 4000 {
		t.Errorf("shrinker spent %d evals, budget 4000", st.Evals)
	}
	t.Logf("shrunk %d -> %d instructions in %d evals", st.From, st.To, st.Evals)

	// Determinism: the same input and oracle must reproduce the identical
	// minimized program (campaign payloads depend on it).
	min2, st2 := Shrink(victim, divsDecodeBugOracle, 4000)
	if !reflect.DeepEqual(min, min2) || st != st2 {
		t.Error("shrinker is not deterministic across runs")
	}
}

// TestShrinkBudgetRespected: a tiny budget must bound oracle evaluations and
// still return a diverging program (the original, if nothing helped).
func TestShrinkBudgetRespected(t *testing.T) {
	var victim *isa.Program
	for s := uint64(1); s <= 200; s++ {
		if p := Generate(s); func() bool { ok, _ := divsDecodeBugOracle(p); return ok }() {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Skip("no diverging seed")
	}
	min, st := Shrink(victim, divsDecodeBugOracle, 5)
	if st.Evals > 5 {
		t.Errorf("spent %d evals, budget 5", st.Evals)
	}
	if ok, _ := divsDecodeBugOracle(min); !ok {
		t.Error("budget-limited shrink returned non-diverging program")
	}
}

// TestCompactRemapsTargets: compaction must strip nops and remap direct
// control flow; a branch over a nop run must land on the same instruction.
func TestCompactRemapsTargets(t *testing.T) {
	p := &isa.Program{Name: "compact", Handler: -1, Insts: []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: 1},             // 0
		{Op: isa.OpBeq, Rs1: 1, Rs2: 1, Target: 4}, // 1: skip the nops
		{Op: isa.OpNop},                            // 2
		{Op: isa.OpNop},                            // 3
		{Op: isa.OpLui, Rd: 2, Imm: 2},             // 4
		{Op: isa.OpHalt},                           // 5
	}}
	q := compact(p)
	if len(q.Insts) != 4 {
		t.Fatalf("compacted to %d instructions, want 4", len(q.Insts))
	}
	if q.Insts[1].Target != 2 {
		t.Errorf("branch target remapped to %d, want 2", q.Insts[1].Target)
	}
	refBefore, err := RunRef(p)
	if err != nil {
		t.Fatal(err)
	}
	refAfter, err := RunRef(q)
	if err != nil {
		t.Fatal(err)
	}
	if refBefore.Regs != refAfter.Regs {
		t.Error("compaction changed architectural behavior")
	}
}

func nonNopCount(p *isa.Program) int {
	n := 0
	for _, in := range p.Insts {
		if in.Op != isa.OpNop {
			n++
		}
	}
	return n
}

func joinListing(p *isa.Program) string {
	out := ""
	for _, l := range Listing(p) {
		out += l + "\n"
	}
	return out
}
