package campaign

// Shared CLI surface: every campaign CLI (benchtable, leakscan, conformfuzz)
// exposes the same resilience flags and the same -cellworker re-exec entry
// point, so the journaling/retry/isolation semantics are uniform across
// artifacts.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"invisispec/internal/artifact"
)

// AddFlags registers the uniform resilience flags on fs and returns a
// builder that assembles the Options they selected after fs.Parse.
func AddFlags(fs *flag.FlagSet) func() Options {
	var (
		journal = fs.String("journal", "", "append-only JSONL checkpoint journal path (\"\" = no checkpointing)")
		resume  = fs.Bool("resume", false, "skip cells already terminal in -journal and replay their values byte-identically")
		retries = fs.Int("retries", 2, "re-runs per cell after a transient failure (deterministic failures never retry)")
		isolate = fs.Bool("isolate", false, "run each cell attempt in a kill-on-hang child worker process")
		seed    = fs.Int64("retry-seed", 0, "seed for the deterministic retry-backoff jitter")
	)
	return func() Options {
		o := Options{Journal: *journal, Resume: *resume, Retries: *retries, Seed: *seed}
		if *isolate {
			o.Isolate = &IsolateOptions{}
		}
		return o
	}
}

// WorkerMain intercepts the -cellworker re-exec mode: when argv requests it,
// one wire-encoded cell is served on stdin/stdout via handler and WorkerMain
// returns (exit code, true); otherwise it returns (0, false) and the CLI
// proceeds normally. Call before flag.Parse — the worker mode takes no other
// arguments.
func WorkerMain(argv []string, handler func(ctx context.Context, name string, spec json.RawMessage) (any, error)) (int, bool) {
	if len(argv) < 2 || argv[1] != "-cellworker" {
		return 0, false
	}
	if err := ServeWorker(os.Stdin, os.Stdout, handler); err != nil {
		fmt.Fprintf(os.Stderr, "cellworker: %v\n", err)
		return 2, true
	}
	return 0, true
}

// DecodeSpec unmarshals a wire spec into the CLI's concrete spec type with a
// uniform error message.
func DecodeSpec[T any](spec json.RawMessage) (T, error) {
	var s T
	if err := json.Unmarshal(spec, &s); err != nil {
		return s, fmt.Errorf("campaign: decoding worker spec: %w", err)
	}
	return s, nil
}

// PrintDegraded renders an artifact's degraded block the way every campaign
// CLI reports it: one line per permanently failed cell plus its ready-to-run
// repro command. It returns true when anything was printed, which the CLIs
// turn into a non-zero exit.
func PrintDegraded(w io.Writer, prog string, cells []artifact.DegradedCell) bool {
	for _, d := range cells {
		fmt.Fprintf(w, "%s: DEGRADED %s (%s after %d attempts): %s\n", prog, d.Name, d.Class, d.Attempts, d.Error)
		if d.Repro != "" {
			fmt.Fprintf(w, "%s:   repro: %s\n", prog, d.Repro)
		}
	}
	return len(cells) > 0
}
