package campaign

// Bench adapter: turns the runner's experiment-matrix jobs into campaign
// cells whose content key is the (workload, defense, consistency, seed,
// budget, kernel) tuple, and maps campaign outcomes back into the JobResult
// shape the figure generators and bench-JSON writer consume. cmd/benchtable
// runs its whole matrix through this.

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"invisispec/internal/config"
	"invisispec/internal/engine"
	"invisispec/internal/harness"
	"invisispec/internal/runner"
)

// JobSpec is a bench cell's content identity: every input that determines
// the run's deterministic output, and nothing host-dependent (timeouts and
// worker counts deliberately excluded). It is the journal hash key and the
// isolation wire format for bench campaigns.
type JobSpec struct {
	Workload    string             `json:"workload"`
	Parsec      bool               `json:"parsec,omitempty"`
	Defense     config.Defense     `json:"defense"`
	Consistency config.Consistency `json:"consistency"`
	Warmup      uint64             `json:"warmup"`
	Measure     uint64             `json:"measure"`
	FaultSeed   int64              `json:"fault_seed,omitempty"`
	Kernel      string             `json:"kernel"`
}

// SpecForJob builds the content identity for one job under a kernel.
func SpecForJob(j runner.Job, kernel engine.Kernel) JobSpec {
	return JobSpec{
		Workload:    j.Workload,
		Parsec:      j.Parsec,
		Defense:     j.Defense,
		Consistency: j.Consistency,
		Warmup:      j.Warmup,
		Measure:     j.Measure,
		FaultSeed:   j.FaultSeed,
		Kernel:      kernel.String(),
	}
}

// RunJobSpec executes one bench cell from its spec alone — the in-process
// cell body and the -cellworker handler for isolation mode.
func RunJobSpec(ctx context.Context, s JobSpec) (harness.Result, error) {
	kernel, err := engine.ParseKernel(s.Kernel)
	if err != nil {
		return harness.Result{}, fmt.Errorf("campaign: job %s/%s/%s: %w", s.Workload, s.Defense, s.Consistency, err)
	}
	opts := []harness.Option{harness.WithContext(ctx), harness.WithKernel(kernel)}
	if s.FaultSeed != 0 {
		opts = append(opts, harness.WithFaultSeed(s.FaultSeed))
	}
	// s.Parsec stays part of the content identity (journal hashes predate
	// the registry) but dispatch is the registry's job now.
	return harness.MeasureWorkload(s.Workload, s.Defense, s.Consistency, s.Warmup, s.Measure, opts...)
}

// JobCells wraps an experiment matrix as campaign cells under one kernel.
func JobCells(jobs []runner.Job, kernel engine.Kernel, timeout time.Duration) []Cell {
	cells := make([]Cell, len(jobs))
	for i, j := range jobs {
		spec := SpecForJob(j, kernel)
		perCell := j.Timeout
		if perCell == 0 {
			perCell = timeout
		}
		cells[i] = Cell{
			Name:    j.String(),
			Spec:    spec,
			Timeout: perCell,
			Run: func(ctx context.Context) (any, error) {
				return RunJobSpec(ctx, spec)
			},
		}
	}
	return cells
}

// JobResults converts campaign outcomes (parallel to the jobs that built the
// cells) back into the runner's JobResult shape: journaled and fresh values
// decode identically, failed cells carry their terminal error.
func JobResults(jobs []runner.Job, outcomes []Outcome) ([]runner.JobResult, error) {
	if len(jobs) != len(outcomes) {
		return nil, fmt.Errorf("campaign: %d outcomes for %d jobs", len(outcomes), len(jobs))
	}
	results := make([]runner.JobResult, len(jobs))
	for i, o := range outcomes {
		results[i] = runner.JobResult{Job: jobs[i], Index: i, Err: o.Err, HostNS: o.HostNS}
		if o.Err != nil {
			continue
		}
		if err := json.Unmarshal(o.Value, &results[i].Result); err != nil {
			return nil, fmt.Errorf("campaign: decoding journaled result for %s: %w", o.Name, err)
		}
	}
	return results, nil
}
