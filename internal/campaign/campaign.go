// Package campaign is the resilient execution layer over the internal/runner
// task pool: it runs a matrix of deterministic cells with (1) an append-only
// JSONL checkpoint journal keyed by a content hash of each cell's identity,
// so a killed campaign resumes by skipping finished cells and produces a
// final artifact byte-identical to an uninterrupted run at any worker count;
// (2) a typed retry policy — transient host-side failures (subprocess crash,
// wall-clock timeout, fault-seeded I/O) re-run under capped exponential
// backoff with deterministic seeded jitter, while deterministic simulator
// outcomes (budget exhaustion, deadlock, divergence) fail fast; (3) an
// opt-in subprocess isolation mode that shards cells into kill-on-hang child
// worker processes, so a wedged or OOMed cell cannot take down the campaign;
// and (4) graceful degradation — cells that fail permanently are recorded in
// the artifact's degraded block with a ready-to-run repro command instead of
// aborting the campaign.
//
// Byte-identity across interruption is the design invariant everything hangs
// off: a cell's value is marshaled to canonical JSON exactly once, at the
// moment it completes, and both the journal and the caller see those same
// bytes — so resumed, re-sharded, and uninterrupted campaigns cannot drift.
// The seeded chaos harness (ChaosOptions, `make chaos`) proves it by killing
// campaigns at randomized journal appends and asserting resume-to-identity.
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"

	"invisispec/internal/artifact"
	"invisispec/internal/runner"
)

// Cell is one unit of campaign work.
type Cell struct {
	// Name labels the cell in journals, progress lines, and degraded blocks.
	Name string
	// Spec is the cell's JSON-serializable identity: everything that
	// determines its deterministic output (workload, defense, consistency,
	// seed, budget, kernel, ...). Its canonical JSON is content-hashed into
	// the journal key, and in isolation mode it is shipped to the worker
	// process, which must be able to reconstruct the work from it alone.
	Spec any
	// Timeout bounds each attempt's host wall-clock time (0 = Options.CellTimeout).
	Timeout time.Duration
	// Run does the work in-process. The returned value must marshal to JSON;
	// those bytes are what the journal and the caller both see.
	Run func(ctx context.Context) (any, error)
}

// Outcome is one cell's terminal result.
type Outcome struct {
	Index    int
	Name     string
	Key      string          // content hash of the cell's Spec
	Value    json.RawMessage // canonical JSON of the cell's value; nil when Err != nil
	Err      error           // terminal failure (degraded or cancelled cell)
	Class    Class           // Err's classification (ClassNone on success)
	Attempts int             // how many times the cell ran (0 if never started)
	// FromJournal marks a cell skipped because a prior run already
	// journaled its terminal outcome.
	FromJournal bool
	// HostNS is host wall-clock spent on the cell this run (0 for journaled
	// cells) — nondeterministic, for host blocks only.
	HostNS int64
}

// ChaosOptions is the seeded chaos harness: deterministic fault injection
// and kill points for the kill/resume self-tests (`make chaos`) and the CI
// chaos job. Zero value = no chaos.
type ChaosOptions struct {
	// Seed drives fault-site selection deterministically.
	Seed int64
	// KillAtAppend tears the Nth journal append mid-write and aborts the
	// campaign with ErrKilled, simulating a SIGKILL (0 = off).
	KillAtAppend int
	// FaultEveryN injects one transient failure into the first attempt of
	// every cell whose seeded hash lands on 0 mod N, exercising the retry
	// path under chaos (0 = off).
	FaultEveryN int
}

// Options tunes a campaign run.
type Options struct {
	// Workers is the pool width (<=0: GOMAXPROCS, capped at the cell count).
	Workers int
	// Retries is how many times a transient failure re-runs after its first
	// attempt. Deterministic failures are never retried regardless.
	Retries int
	// BackoffBase is the first retry's delay (default 100ms); each further
	// retry doubles it, capped at BackoffMax (default 5s). A deterministic
	// jitter in [0, delay/2) derived from (Seed, cell key, attempt) is
	// added so a herd of retrying cells decorrelates reproducibly.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed feeds the retry jitter (and nothing else): any value is fine,
	// the same value reproduces the same schedule.
	Seed int64
	// CellTimeout bounds each attempt of cells that don't set their own.
	CellTimeout time.Duration
	// Journal is the checkpoint path ("" = no checkpointing). Without
	// Resume an existing file is truncated; with Resume its terminal cells
	// are skipped and their journaled values replayed byte-identically.
	Journal string
	Resume  bool
	// Isolate, when non-nil, runs every attempt in a child worker process
	// with kill-on-hang semantics (see IsolateOptions).
	Isolate *IsolateOptions
	// Exec, when non-nil (and Isolate is nil), replaces the in-process
	// attempt: it receives the cell and its content key and returns the
	// cell's canonical JSON value. This is the memoization seam — the
	// simulation server points it at a content-addressed store whose Do
	// wraps c.Run, so a cached cell never re-runs. The returned RawMessage
	// is passed through to the journal and the Outcome byte-for-byte,
	// preserving the byte-identity invariant across cache hits. Exec runs
	// under the same per-attempt timeout, panic recovery, retry, and
	// journaling as an ordinary attempt.
	Exec func(ctx context.Context, c Cell, key string) (json.RawMessage, error)
	// Progress receives the pool's per-cell progress lines.
	Progress io.Writer
	// OnProgress receives the pool's structured per-cell completion events
	// (see runner.Options.OnProgress).
	OnProgress func(runner.ProgressEvent)
	// Chaos enables the seeded kill/fault harness.
	Chaos *ChaosOptions

	// sleep replaces the backoff sleep for tests. nil means ctxSleep.
	sleep func(ctx context.Context, d time.Duration) error
}

// Key content-hashes a cell spec's canonical JSON into the journal key.
func Key(spec any) (string, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("campaign: marshaling cell spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Run executes the cells on the bounded pool with checkpointing, retry, and
// (optionally) process isolation, returning one Outcome per cell in cell
// order. Per-cell failures degrade rather than abort: Run returns an error
// only for campaign-level problems — an invalid cell set, an unusable or
// unwritable journal, a cancelled context, or the chaos harness's ErrKilled.
func Run(ctx context.Context, name string, cells []Cell, opts Options) ([]Outcome, error) {
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 100 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	if opts.sleep == nil {
		opts.sleep = ctxSleep
	}

	outcomes := make([]Outcome, len(cells))
	seen := make(map[string]int, len(cells))
	for i, c := range cells {
		key, err := Key(c.Spec)
		if err != nil {
			return nil, fmt.Errorf("campaign: cell %s: %w", c.Name, err)
		}
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("campaign: cells %s and %s share content key %s — the journal cannot tell them apart",
				cells[prev].Name, c.Name, key)
		}
		seen[key] = i
		outcomes[i] = Outcome{Index: i, Name: c.Name, Key: key}
	}

	var j *journal
	if opts.Journal != "" {
		var err error
		if j, err = openJournal(opts.Journal, name, opts.Resume, opts.Chaos); err != nil {
			return nil, err
		}
		defer j.close()
	}

	// The campaign's own context: a chaos kill or a journal-write failure
	// cancels it so in-flight cells drain at their next cooperative poll,
	// mimicking sudden process death as closely as an in-process harness can.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		abortMu  sync.Mutex
		abortErr error
	)
	abort := func(err error) {
		abortMu.Lock()
		if abortErr == nil {
			abortErr = err
		}
		abortMu.Unlock()
		cancel()
	}

	var (
		tasks   []runner.Task
		taskIdx []int
	)
	for i := range cells {
		o := &outcomes[i]
		if j != nil {
			if rec, ok := j.prior[o.Key]; ok {
				o.FromJournal = true
				o.Attempts = rec.Attempts
				if rec.Error != "" {
					o.Class = parseClass(rec.Class)
					o.Err = &journaledError{msg: rec.Error, class: o.Class}
				} else {
					o.Value = rec.Value
				}
				continue
			}
		}
		i := i
		tasks = append(tasks, runner.Task{
			Name: cells[i].Name,
			Run: func(tctx context.Context) (any, error) {
				return runCell(tctx, cells[i], outcomes[i], opts, j, abort), nil
			},
		})
		taskIdx = append(taskIdx, i)
	}

	trs := runner.RunTasks(runCtx, tasks, runner.Options{Jobs: opts.Workers, Progress: opts.Progress, OnProgress: opts.OnProgress})
	for k, tr := range trs {
		i := taskIdx[k]
		if tr.Err != nil {
			// Pool-level failure: the cell never produced an Outcome (not
			// started before cancellation, or the campaign plumbing itself
			// panicked). Never journaled, so a resume re-runs it.
			outcomes[i].Err = tr.Err
			outcomes[i].Class = Classify(tr.Err)
		} else {
			outcomes[i] = tr.Value.(Outcome)
		}
		outcomes[i].HostNS = tr.HostNS
	}

	abortMu.Lock()
	err := abortErr
	abortMu.Unlock()
	if err != nil {
		return outcomes, err
	}
	if err := ctx.Err(); err != nil {
		return outcomes, fmt.Errorf("campaign: %s cancelled: %w", name, err)
	}
	return outcomes, nil
}

// runCell drives one cell to a terminal outcome: attempt, classify, retry
// transients under backoff, journal the terminal result.
func runCell(ctx context.Context, c Cell, o Outcome, opts Options, j *journal, abort func(error)) Outcome {
	for {
		o.Attempts++
		val, err := attempt(ctx, c, o.Key, opts)
		if err == nil && chaosFault(opts.Chaos, o.Key) && o.Attempts == 1 {
			err = fmt.Errorf("campaign: %s: chaos-injected fault: %w", c.Name, ErrTransient)
		}
		class := Classify(err)
		switch class {
		case ClassNone:
			// A value that is already canonical JSON (an Exec hook serving
			// memoized bytes) passes through untouched — re-marshaling would
			// be identity for compact JSON, but byte-identity is the
			// invariant, so we never rely on that.
			raw, ok := val.(json.RawMessage)
			if !ok {
				var merr error
				raw, merr = json.Marshal(val)
				if merr != nil {
					o.Err = fmt.Errorf("campaign: %s: marshaling cell value: %w", c.Name, merr)
					o.Class = ClassDeterministic
					journalOutcome(j, o, abort)
					return o
				}
			}
			o.Value = raw
			o.Err, o.Class = nil, ClassNone
			journalOutcome(j, o, abort)
			return o
		case ClassCancelled:
			// Not journaled: the campaign is going down, and a resume must
			// re-run this cell.
			o.Err, o.Class = err, class
			return o
		case ClassTransient:
			if o.Attempts <= opts.Retries {
				if serr := opts.sleep(ctx, backoffFor(opts, o.Key, o.Attempts)); serr != nil {
					o.Err, o.Class = serr, ClassCancelled
					return o
				}
				continue
			}
		}
		// Terminal failure: deterministic, or transient with the retry
		// budget exhausted. Journaled so a resume preserves the degraded
		// block byte-for-byte rather than silently re-litigating it.
		o.Err, o.Class = err, class
		journalOutcome(j, o, abort)
		return o
	}
}

// attempt runs one try of the cell, in-process or isolated, with its
// per-attempt wall-clock bound applied.
func attempt(ctx context.Context, c Cell, key string, opts Options) (val any, err error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = opts.CellTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if opts.Isolate != nil {
		return runIsolated(ctx, c, opts.Isolate)
	}
	defer func() {
		if r := recover(); r != nil {
			val, err = nil, &PanicError{Cell: c.Name, Value: r}
		}
	}()
	if opts.Exec != nil {
		return opts.Exec(ctx, c, key)
	}
	return c.Run(ctx)
}

// journalOutcome appends a terminal outcome; a refused append (chaos kill or
// write failure) aborts the whole campaign — continuing without durability
// would let a later crash silently lose work the caller believes journaled.
func journalOutcome(j *journal, o Outcome, abort func(error)) {
	if j == nil {
		return
	}
	rec := journalRecord{Kind: "cell", Key: o.Key, Name: o.Name, Attempts: o.Attempts, Value: o.Value}
	if o.Err != nil {
		rec.Value = nil
		rec.Error = o.Err.Error()
		rec.Class = o.Class.String()
	}
	if err := j.appendCell(rec); err != nil {
		abort(err)
	}
}

// backoffFor computes the capped exponential backoff plus deterministic
// jitter for a cell's next retry.
func backoffFor(opts Options, key string, attempt int) time.Duration {
	d := opts.BackoffBase
	for i := 1; i < attempt && d < opts.BackoffMax; i++ {
		d *= 2
	}
	if d > opts.BackoffMax {
		d = opts.BackoffMax
	}
	// Seeded jitter in [0, d/2): same (seed, key, attempt) -> same delay,
	// so retry schedules reproduce exactly.
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", opts.Seed, key, attempt)
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	if d+jitter > opts.BackoffMax {
		return opts.BackoffMax
	}
	return d + jitter
}

// chaosFault reports whether the chaos harness injects a transient fault
// into this cell's first attempt.
func chaosFault(c *ChaosOptions, key string) bool {
	if c == nil || c.FaultEveryN <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", c.Seed, key)
	return h.Sum64()%uint64(c.FaultEveryN) == 0
}

// ctxSleep sleeps for d or until the context dies, whichever comes first.
func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Degraded collects the cells that failed permanently, in cell order, for an
// artifact's degraded block. Cancelled cells are excluded — they are not a
// campaign outcome, just an aborted campaign. repro, when non-nil, supplies
// the per-cell ready-to-run reproduction command.
func Degraded(outcomes []Outcome, repro func(o Outcome) string) []artifact.DegradedCell {
	var out []artifact.DegradedCell
	for _, o := range outcomes {
		if o.Err == nil || o.Class == ClassCancelled {
			continue
		}
		d := artifact.DegradedCell{
			Name:     o.Name,
			Key:      o.Key,
			Error:    o.Err.Error(),
			Class:    o.Class.String(),
			Attempts: o.Attempts,
		}
		if repro != nil {
			d.Repro = repro(o)
		}
		out = append(out, d)
	}
	return out
}
