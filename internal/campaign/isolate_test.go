package campaign

// Isolation-mode tests use the exec-helper pattern: the test binary re-execs
// itself with -test.run=TestHelperCellWorker$ and an env marker, and the
// helper invocation calls ServeWorker exactly like a CLI's -cellworker mode.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// isoSpec is the wire spec the helper worker serves.
type isoSpec struct {
	X    int    `json:"x"`
	Fail string `json:"fail,omitempty"` // "", "transient", "deterministic", "panic", "hang"
}

// TestHelperCellWorker is not a test: it is the worker process body, entered
// only when the parent test re-execs the binary with the env marker set.
func TestHelperCellWorker(t *testing.T) {
	if os.Getenv("CAMPAIGN_TEST_WORKER") == "" {
		t.Skip("worker-process helper; runs only via re-exec")
	}
	if os.Getenv("CAMPAIGN_TEST_WORKER_MODE") == "crash" {
		os.Exit(3)
	}
	err := ServeWorker(os.Stdin, os.Stdout, func(ctx context.Context, name string, spec json.RawMessage) (any, error) {
		s, err := DecodeSpec[isoSpec](spec)
		if err != nil {
			return nil, err
		}
		switch s.Fail {
		case "transient":
			return nil, fmt.Errorf("flaky hardware: %w", ErrTransient)
		case "deterministic":
			return nil, errors.New("always diverges")
		case "panic":
			panic("worker kaboom")
		case "hang":
			time.Sleep(time.Hour)
		}
		return synthValue{I: s.X, Sq: s.X * s.X}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Exit(0) // suppress the test harness's PASS line on stdout
}

// helperIsolate re-execs this test binary as the worker.
func helperIsolate(mode string) *IsolateOptions {
	return &IsolateOptions{
		Argv: []string{os.Args[0], "-test.run", "TestHelperCellWorker$"},
		Env: []string{
			"CAMPAIGN_TEST_WORKER=1",
			"CAMPAIGN_TEST_WORKER_MODE=" + mode,
		},
		Grace: 2 * time.Second,
	}
}

// isoCells builds cells whose Run must never execute in-process when
// isolation is on (the body fails the test if invoked).
func isoCells(t *testing.T, name string, specs []isoSpec) []Cell {
	cells := make([]Cell, len(specs))
	for i, s := range specs {
		cells[i] = Cell{
			Name: fmt.Sprintf("%s-%d", name, i),
			Spec: s,
			Run: func(ctx context.Context) (any, error) {
				t.Error("cell ran in-process despite isolation mode")
				return nil, errors.New("in-process run")
			},
		}
	}
	return cells
}

// TestIsolateWorkerValues: isolated workers produce the same canonical value
// bytes as in-process runs — the whole point of the wire format.
func TestIsolateWorkerValues(t *testing.T) {
	if testing.Short() {
		t.Skip("process isolation in -short")
	}
	specs := []isoSpec{{X: 1}, {X: 2}, {X: 3}}
	cells := isoCells(t, "isoval", specs)
	outcomes, err := Run(context.Background(), "isoval", cells,
		Options{Workers: 2, Isolate: helperIsolate("")})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("cell %s: %v", o.Name, o.Err)
		}
		want, _ := json.Marshal(synthValue{I: specs[i].X, Sq: specs[i].X * specs[i].X})
		if string(o.Value) != string(want) {
			t.Fatalf("cell %s: value %s, want %s", o.Name, o.Value, want)
		}
	}
}

// TestIsolateWorkerCrashIsTransient: a worker that dies without answering is
// a WorkerCrashError — transient, so it consumes the whole retry budget.
func TestIsolateWorkerCrashIsTransient(t *testing.T) {
	if testing.Short() {
		t.Skip("process isolation in -short")
	}
	cells := isoCells(t, "isocrash", []isoSpec{{X: 1}})
	opts := Options{Retries: 2, Isolate: helperIsolate("crash")}
	noSleep(&opts)
	outcomes, err := Run(context.Background(), "isocrash", cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := outcomes[0]
	if o.Err == nil || o.Class != ClassTransient || o.Attempts != 3 {
		t.Fatalf("crash outcome: err=%v class=%v attempts=%d, want transient after 3 attempts", o.Err, o.Class, o.Attempts)
	}
	var wce *WorkerCrashError
	if !errors.As(o.Err, &wce) {
		t.Fatalf("err %T, want *WorkerCrashError", o.Err)
	}
}

// TestIsolateWorkerClassCrossesWire: the worker classifies its own failure
// and the class survives the process boundary — a deterministic remote
// failure is never retried, a transient one is.
func TestIsolateWorkerClassCrossesWire(t *testing.T) {
	if testing.Short() {
		t.Skip("process isolation in -short")
	}
	cases := []struct {
		fail         string
		wantClass    Class
		wantAttempts int
	}{
		{"deterministic", ClassDeterministic, 1},
		{"panic", ClassDeterministic, 1},
		{"transient", ClassTransient, 3},
	}
	for _, c := range cases {
		t.Run(c.fail, func(t *testing.T) {
			cells := isoCells(t, "isoclass-"+c.fail, []isoSpec{{X: 7, Fail: c.fail}})
			opts := Options{Retries: 2, Isolate: helperIsolate("")}
			noSleep(&opts)
			outcomes, err := Run(context.Background(), "isoclass-"+c.fail, cells, opts)
			if err != nil {
				t.Fatal(err)
			}
			o := outcomes[0]
			if o.Err == nil || o.Class != c.wantClass || o.Attempts != c.wantAttempts {
				t.Fatalf("outcome err=%v class=%v attempts=%d, want class %v after %d attempts",
					o.Err, o.Class, o.Attempts, c.wantClass, c.wantAttempts)
			}
			var re *RemoteError
			if !errors.As(o.Err, &re) {
				t.Fatalf("err %T, want *RemoteError", o.Err)
			}
		})
	}
}

// TestIsolateKillOnHang: a wedged worker is killed when the cell's
// wall-clock bound expires, and the kill classifies as a transient timeout.
func TestIsolateKillOnHang(t *testing.T) {
	if testing.Short() {
		t.Skip("process isolation in -short")
	}
	cells := isoCells(t, "isohang", []isoSpec{{X: 1, Fail: "hang"}})
	opts := Options{CellTimeout: 300 * time.Millisecond, Isolate: helperIsolate("")}
	noSleep(&opts)
	start := time.Now()
	outcomes, err := Run(context.Background(), "isohang", cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := outcomes[0]
	if o.Err == nil || !errors.Is(o.Err, context.DeadlineExceeded) || o.Class != ClassTransient {
		t.Fatalf("hang outcome: err=%v class=%v, want transient deadline", o.Err, o.Class)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("kill-on-hang took %v — the worker was not killed promptly", wall)
	}
}

// TestServeWorkerProtocol: the child-side protocol handles good cells,
// handler errors, and handler panics without protocol failures.
func TestServeWorkerProtocol(t *testing.T) {
	serve := func(t *testing.T, spec isoSpec) wireResult {
		t.Helper()
		raw, _ := json.Marshal(spec)
		req, _ := json.Marshal(wireCell{Name: "cell", Spec: raw})
		var out bytes.Buffer
		err := ServeWorker(bytes.NewReader(req), &out, func(ctx context.Context, name string, sp json.RawMessage) (any, error) {
			s, err := DecodeSpec[isoSpec](sp)
			if err != nil {
				return nil, err
			}
			switch s.Fail {
			case "transient":
				return nil, fmt.Errorf("blip: %w", ErrTransient)
			case "panic":
				panic("kaboom")
			}
			return synthValue{I: s.X, Sq: s.X * s.X}, nil
		})
		if err != nil {
			t.Fatalf("protocol error: %v", err)
		}
		var res wireResult
		if err := json.Unmarshal(out.Bytes(), &res); err != nil {
			t.Fatalf("unparsable wire result %q: %v", out.Bytes(), err)
		}
		return res
	}
	if res := serve(t, isoSpec{X: 4}); !res.OK || string(res.Value) != `{"i":4,"sq":16}` {
		t.Fatalf("success result: %+v", res)
	}
	if res := serve(t, isoSpec{Fail: "transient"}); res.OK || res.Class != "transient" {
		t.Fatalf("transient result: %+v", res)
	}
	if res := serve(t, isoSpec{Fail: "panic"}); res.OK || res.Class != "deterministic" || !strings.Contains(res.Error, "kaboom") {
		t.Fatalf("panic result: %+v", res)
	}
}
