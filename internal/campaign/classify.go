package campaign

// Failure classification: the retry policy's brain. Every cell failure is
// partitioned into exactly one class, and only ClassTransient is ever
// retried. The default for an unrecognized error is ClassDeterministic —
// the simulator is deterministic by construction, so an unknown failure is
// far more likely to reproduce identically than to vanish, and failing fast
// beats a retry storm that re-runs a guaranteed-to-fail cell N times.

import (
	"context"
	"errors"
	"fmt"
	"os/exec"

	"invisispec/internal/invariant"
	"invisispec/internal/sim"
)

// Class partitions cell failures by how the campaign reacts to them.
type Class int

const (
	// ClassNone: the cell succeeded.
	ClassNone Class = iota
	// ClassTransient is a host-side failure — subprocess crash, wall-clock
	// timeout, fault-seeded I/O — worth retrying under backoff: the
	// simulated outcome is unaffected by when or where the cell re-runs.
	ClassTransient
	// ClassDeterministic is a simulated outcome — budget exhaustion,
	// watchdog deadlock, invariant violation, divergence, panic inside the
	// deterministic simulator — that will reproduce identically on every
	// retry. The campaign fails the cell fast and records it as degraded.
	ClassDeterministic
	// ClassCancelled means the campaign itself was cancelled while the cell
	// ran (or before it started). Cancelled cells are neither retried nor
	// journaled, so a resumed campaign re-runs them.
	ClassCancelled
)

// String returns the class name used in journal records and wire results.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "ok"
	case ClassTransient:
		return "transient"
	case ClassDeterministic:
		return "deterministic"
	case ClassCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// parseClass is String's inverse for journal/wire records; unknown strings
// read as deterministic (the conservative, never-retry interpretation).
func parseClass(s string) Class {
	switch s {
	case "ok":
		return ClassNone
	case "transient":
		return ClassTransient
	case "cancelled":
		return ClassCancelled
	}
	return ClassDeterministic
}

// ErrTransient marks host-side failures the retry policy may re-run. Cell
// implementations wrap it (fmt.Errorf("...: %w", campaign.ErrTransient))
// to flag their own transient conditions — fault-seeded I/O in tests, for
// example — and the isolation layer's crash errors unwrap to it.
var ErrTransient = errors.New("transient failure")

// classer lets error types carry their own class through wrapping; Classify
// checks it before the sentinel rules.
type classer interface{ campaignClass() Class }

// WorkerCrashError reports an isolated worker process that died without
// delivering a result — killed, OOMed, crashed, or emitting garbage. Always
// transient: the simulated work is deterministic, so a re-run in a fresh
// process is safe and likely to succeed.
type WorkerCrashError struct {
	Cell   string
	Err    error  // the exec-level failure, when any
	Stderr string // tail of the worker's stderr, for diagnosis
}

func (e *WorkerCrashError) Error() string {
	msg := fmt.Sprintf("isolated worker for %s crashed", e.Cell)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	if e.Stderr != "" {
		msg += "\nworker stderr:\n" + e.Stderr
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrTransient) true.
func (e *WorkerCrashError) Unwrap() error { return ErrTransient }

// RemoteError is a failure an isolated worker reported over the wire,
// classified by the worker (which held the typed error) since only its text
// survives process boundaries.
type RemoteError struct {
	Msg   string
	Class Class
}

func (e *RemoteError) Error() string        { return e.Msg }
func (e *RemoteError) campaignClass() Class { return e.Class }

// PanicError is a panic recovered inside an in-process cell run. The
// simulator is deterministic, so a panic reproduces on retry: deterministic.
type PanicError struct {
	Cell  string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: panic: %v", e.Cell, e.Value)
}
func (e *PanicError) campaignClass() Class { return ClassDeterministic }

// journaledError replays a terminal failure recorded in the checkpoint
// journal, preserving its classification across the resume.
type journaledError struct {
	msg   string
	class Class
}

func (e *journaledError) Error() string        { return e.msg }
func (e *journaledError) campaignClass() Class { return e.class }

// Classify maps a cell failure to its retry class:
//
//	nil                                  -> ClassNone
//	carries its own class (RemoteError,
//	  PanicError, journaled failures)    -> that class
//	context.Canceled                     -> ClassCancelled (campaign shutdown)
//	context.DeadlineExceeded             -> ClassTransient (wall-clock timeout)
//	ErrTransient (WorkerCrashError,
//	  fault-seeded I/O wrappers)         -> ClassTransient
//	*exec.ExitError                      -> ClassTransient (subprocess died)
//	sim.ErrCycleBudget                   -> ClassDeterministic
//	invariant.ErrDeadlock / ErrViolation -> ClassDeterministic
//	anything else                        -> ClassDeterministic (fail fast)
//
// The explicit deterministic rules are redundant with the default but are
// listed (and table-tested) so the taxonomy is visible in one place.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	var c classer
	if errors.As(err, &c) {
		return c.campaignClass()
	}
	switch {
	case errors.Is(err, context.Canceled):
		return ClassCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTransient
	case errors.Is(err, ErrTransient):
		return ClassTransient
	}
	var exitErr *exec.ExitError
	if errors.As(err, &exitErr) {
		return ClassTransient
	}
	if errors.Is(err, sim.ErrCycleBudget) ||
		errors.Is(err, invariant.ErrDeadlock) ||
		errors.Is(err, invariant.ErrViolation) {
		return ClassDeterministic
	}
	return ClassDeterministic
}
