package campaign

// The checkpoint journal: an append-only JSONL file with one header line and
// one line per terminally-finished cell, keyed by the cell's content hash.
// Append-only is the crash-safety story — a SIGKILL can at worst tear the
// final line, which the reader tolerates and the next append overwrites
// nothing. Each line is written with a single Write call on an O_APPEND
// descriptor, so concurrent workers (serialized by the journal mutex) and
// abrupt death cannot interleave or half-order records; the only corruption
// mode is a torn tail.
//
// Determinism contract: the journal stores each cell's value as the exact
// JSON bytes the campaign handed to its client, so a resumed campaign
// replays byte-identical values and the final artifact cannot drift from an
// uninterrupted run's.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// JournalSchema identifies the checkpoint format; resume refuses others.
const JournalSchema = "campaign-journal/v1"

// ErrKilled is returned by a campaign whose chaos harness reached its
// configured kill point: the run aborted mid-flight as if SIGKILLed, leaving
// the journal for a resume.
var ErrKilled = errors.New("campaign: killed at chaos kill point")

// journalRecord is one journal line. Kind is "header" for the first line and
// "cell" for every terminal cell outcome.
type journalRecord struct {
	Kind     string          `json:"kind"`
	Schema   string          `json:"schema,omitempty"`   // header only
	Campaign string          `json:"campaign,omitempty"` // header only
	Key      string          `json:"key,omitempty"`
	Name     string          `json:"name,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Value    json.RawMessage `json:"value,omitempty"`
	Error    string          `json:"error,omitempty"`
	Class    string          `json:"class,omitempty"`
}

// journal is the open checkpoint file plus the records loaded from a resume.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	prior   map[string]journalRecord // key -> terminal record from a prior run
	appends int                      // successful cell appends this run
	chaos   *ChaosOptions
	killed  bool
	// tornAt is the byte offset where a torn final line starts (-1 when the
	// file is clean). Resume truncates it away before appending — otherwise
	// the first new record would concatenate onto the half-written line and
	// corrupt the journal for every later resume.
	tornAt int64
}

// openJournal opens the checkpoint at path. With resume, an existing file's
// records are loaded (after validating the header against the campaign name)
// and appends continue behind them; a missing file starts fresh. Without
// resume, any existing file is truncated.
func openJournal(path, campaign string, resume bool, chaos *ChaosOptions) (*journal, error) {
	j := &journal{prior: map[string]journalRecord{}, chaos: chaos}
	if resume {
		data, err := os.ReadFile(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume; fall through to a fresh journal.
		case err != nil:
			return nil, fmt.Errorf("campaign: reading journal %s: %w", path, err)
		default:
			if err := j.load(path, campaign, data); err != nil {
				return nil, err
			}
			if j.tornAt >= 0 {
				// Crash recovery: drop the half-written record (it was never
				// a complete checkpoint, so nothing is lost) so appends start
				// on a fresh line.
				if err := os.Truncate(path, j.tornAt); err != nil {
					return nil, fmt.Errorf("campaign: truncating torn journal tail in %s: %w", path, err)
				}
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("campaign: opening journal %s: %w", path, err)
			}
			j.f = f
			return j, nil
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: creating journal %s: %w", path, err)
	}
	j.f = f
	if err := j.write(journalRecord{Kind: "header", Schema: JournalSchema, Campaign: campaign}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load parses an existing journal's lines into prior records. A torn final
// line (SIGKILL mid-write) is tolerated and discarded; corruption anywhere
// else, a bad header, or a campaign-name mismatch is an error — silently
// resuming the wrong campaign would poison the artifact.
func (j *journal) load(path, campaign string, data []byte) error {
	lines := bytes.Split(data, []byte("\n"))
	sawHeader := false
	j.tornAt = -1
	offset := int64(0)
	for i, line := range lines {
		lineStart := offset
		offset += int64(len(line)) + 1
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				// Torn tail from an abrupt kill: the record never finished,
				// so its cell simply re-runs. Remember where it starts so
				// the resume path can truncate it away.
				j.tornAt = lineStart
				continue
			}
			return fmt.Errorf("campaign: journal %s corrupt at line %d: %w", path, i+1, err)
		}
		switch rec.Kind {
		case "header":
			if rec.Schema != JournalSchema {
				return fmt.Errorf("campaign: journal %s schema %q, want %q", path, rec.Schema, JournalSchema)
			}
			if rec.Campaign != campaign {
				return fmt.Errorf("campaign: journal %s belongs to campaign %q, not %q", path, rec.Campaign, campaign)
			}
			sawHeader = true
		case "cell":
			if rec.Key == "" {
				return fmt.Errorf("campaign: journal %s line %d: cell record without key", path, i+1)
			}
			j.prior[rec.Key] = rec // later records win (re-runs append)
		default:
			return fmt.Errorf("campaign: journal %s line %d: unknown record kind %q", path, i+1, rec.Kind)
		}
	}
	if !sawHeader {
		return fmt.Errorf("campaign: journal %s has no header", path)
	}
	return nil
}

// appendCell journals one terminal cell outcome. Under the chaos harness the
// configured append is torn mid-write and ErrKilled returned, simulating a
// SIGKILL landing inside the write syscall; all later appends are refused.
func (j *journal) appendCell(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.killed {
		return ErrKilled
	}
	if j.chaos != nil && j.chaos.KillAtAppend > 0 && j.appends+1 == j.chaos.KillAtAppend {
		j.killed = true
		line, err := json.Marshal(rec)
		if err == nil && len(line) > 2 {
			// Leave a torn half-line behind, the worst crash artifact an
			// append-only journal can produce; resume must shrug it off.
			j.f.Write(line[:len(line)/2])
		}
		return ErrKilled
	}
	if err := j.write(rec); err != nil {
		return err
	}
	j.appends++
	return nil
}

// write marshals rec and appends it as one line with a single Write call.
func (j *journal) write(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: marshaling journal record: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("campaign: appending to journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
