package campaign

// The seeded chaos harness self-tests: kill a journaled campaign at
// randomized checkpoint appends (torn final line included), resume it, and
// assert the final outcome stream is byte-identical to an uninterrupted
// run — at 1 and 4 workers, with transient fault injection layered on top.
// `make chaos` runs these plus the leakage/conform equivalents.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"invisispec/internal/config"
	"invisispec/internal/engine"
	"invisispec/internal/runner"
)

// runToCompletionViaKills drives a journaled campaign to completion through
// a sequence of chaos kills: each round kills at a seeded random append
// until a final run (no chaos) finishes. Returns the completed outcomes.
func runToCompletionViaKills(t *testing.T, rng *rand.Rand, name string, cells []Cell, opts Options, kills int) []Outcome {
	t.Helper()
	for k := 0; k < kills; k++ {
		chaos := opts
		chaos.Resume = k > 0
		chaos.Chaos = &ChaosOptions{Seed: rng.Int63(), KillAtAppend: 1 + rng.Intn(len(cells))}
		_, err := Run(context.Background(), name, cells, chaos)
		if err == nil {
			// The kill point landed beyond the appends this round needed
			// (earlier cells were already journaled); the campaign is done.
			break
		}
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("kill round %d: %v", k, err)
		}
	}
	final := opts
	final.Resume = true
	outcomes, err := Run(context.Background(), name, cells, final)
	if err != nil {
		t.Fatal(err)
	}
	return outcomes
}

// TestChaosKillResumeByteIdentity is the core resilience proof on synthetic
// cells: for three seeds, at 1 and 4 workers, a campaign SIGKILLed at
// randomized journal appends (including one permanently failing cell and
// injected transient faults) resumes to an outcome stream byte-identical to
// an uninterrupted run's.
func TestChaosKillResumeByteIdentity(t *testing.T) {
	boom := errors.New("cell 5 is deterministically broken")
	for _, seed := range []int64{101, 202, 303} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed%d-w%d", seed, workers), func(t *testing.T) {
				name := fmt.Sprintf("chaos-%d-%d", seed, workers)
				cells := synthCells(name, 8, map[int]error{5: boom})
				base := Options{Workers: workers, Retries: 2, Seed: seed}
				noSleep(&base)

				clean, err := Run(context.Background(), name, cells, base)
				if err != nil {
					t.Fatal(err)
				}
				cleanPayload := payload(t, clean)

				rng := rand.New(rand.NewSource(seed))
				opts := base
				opts.Journal = filepath.Join(t.TempDir(), "j.jsonl")
				opts.Chaos = &ChaosOptions{Seed: seed, FaultEveryN: 3}
				resumed := runToCompletionViaKills(t, rng, name, cells, opts, 2)

				if got := payload(t, resumed); got != cleanPayload {
					t.Fatalf("resumed payload drifted from clean run:\n--- clean ---\n%s--- resumed ---\n%s", cleanPayload, got)
				}
				replayed := 0
				for _, o := range resumed {
					if o.FromJournal {
						replayed++
					}
				}
				if replayed == 0 {
					t.Fatal("final resume replayed nothing from the journal — the kills never landed")
				}
				cleanDeg := Degraded(clean, nil)
				resumedDeg := Degraded(resumed, nil)
				if len(cleanDeg) != 1 || len(resumedDeg) != 1 || cleanDeg[0].Error != resumedDeg[0].Error {
					t.Fatalf("degraded block drifted: clean %+v vs resumed %+v", cleanDeg, resumedDeg)
				}
			})
		}
	}
}

// TestChaosFaultInjectionRetriesRecover: with a fault injected into every
// cell's first attempt, a retry budget of 1 recovers every cell and the
// payload matches the fault-free run exactly.
func TestChaosFaultInjectionRetriesRecover(t *testing.T) {
	cells := synthCells("chaosfault", 6, nil)
	base := Options{Workers: 2, Retries: 1}
	noSleep(&base)
	clean, err := Run(context.Background(), "chaosfault", cells, base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.Chaos = &ChaosOptions{Seed: 9, FaultEveryN: 1}
	injected, err := Run(context.Background(), "chaosfault", cells, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if payload(t, injected) != payload(t, clean) {
		t.Fatal("fault-injected payload drifted from clean run")
	}
	for _, o := range injected {
		if o.Attempts != 2 {
			t.Fatalf("cell %s survived on attempt %d, want 2 (one injected fault + one retry)", o.Name, o.Attempts)
		}
	}
}

// TestChaosBenchKillResume: the bench campaign (real harness.Measure cells
// through JobCells) killed at seeded checkpoints resumes to a bench-JSON
// deterministic payload byte-identical to an uninterrupted run, at 1 and 4
// workers.
func TestChaosBenchKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("bench chaos in -short")
	}
	jobs := runner.Matrix([]string{"libquantum"}, false, []config.Consistency{config.TSO},
		config.AllDefenses(), nil, 500, 2000)
	cells := JobCells(jobs, engine.KernelFast, time.Minute)

	benchPayload := func(outcomes []Outcome) []byte {
		t.Helper()
		results, err := JobResults(jobs, outcomes)
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.FirstError(results); err != nil {
			t.Fatal(err)
		}
		p, err := runner.NewBench("chaos", 500, 2000, results).DeterministicPayload()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	clean, err := Run(context.Background(), "bench-chaos", cells, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := benchPayload(clean)

	for _, seed := range []int64{1, 2, 3} {
		for _, workers := range []int{1, 4} {
			rng := rand.New(rand.NewSource(seed))
			opts := Options{Workers: workers, Retries: 1, Seed: seed,
				Journal: filepath.Join(t.TempDir(), "j.jsonl")}
			noSleep(&opts)
			outcomes := runToCompletionViaKills(t, rng, "bench-chaos", cells, opts, 1)
			if got := benchPayload(outcomes); !bytes.Equal(got, want) {
				t.Fatalf("seed %d workers %d: resumed bench payload drifted:\n%s\n--- want ---\n%s", seed, workers, got, want)
			}
		}
	}
}
