package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"invisispec/internal/invariant"
	"invisispec/internal/sim"
)

// synthSpec is the content identity of the synthetic cells the campaign
// tests run: cheap, deterministic, JSON-round-trippable.
type synthSpec struct {
	Campaign string `json:"campaign"`
	I        int    `json:"i"`
}

// synthValue is what a synthetic cell computes.
type synthValue struct {
	I  int `json:"i"`
	Sq int `json:"sq"`
}

// synthCells builds n deterministic cells; failAt maps cell indices to the
// error their Run always returns.
func synthCells(name string, n int, failAt map[int]error) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Name: fmt.Sprintf("%s-%d", name, i),
			Spec: synthSpec{Campaign: name, I: i},
			Run: func(ctx context.Context) (any, error) {
				if err := failAt[i]; err != nil {
					return nil, err
				}
				return synthValue{I: i, Sq: i * i}, nil
			},
		}
	}
	return cells
}

// payload concatenates the deterministic outcome bytes the way an artifact
// consumer would: value bytes for successes, error text for failures.
func payload(t *testing.T, outcomes []Outcome) string {
	t.Helper()
	var b strings.Builder
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(&b, "%s ERR %s\n", o.Name, o.Err.Error())
			continue
		}
		fmt.Fprintf(&b, "%s %s\n", o.Name, o.Value)
	}
	return b.String()
}

func noSleep(opts *Options) {
	opts.sleep = func(ctx context.Context, d time.Duration) error { return nil }
}

func TestRunBasicOrderAndValues(t *testing.T) {
	cells := synthCells("basic", 9, nil)
	outcomes, err := Run(context.Background(), "basic", cells, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(cells) {
		t.Fatalf("got %d outcomes for %d cells", len(outcomes), len(cells))
	}
	for i, o := range outcomes {
		if o.Index != i || o.Name != cells[i].Name {
			t.Errorf("outcome %d: index %d name %q", i, o.Index, o.Name)
		}
		if o.Err != nil || o.Attempts != 1 || o.FromJournal {
			t.Errorf("outcome %d: err=%v attempts=%d fromJournal=%v", i, o.Err, o.Attempts, o.FromJournal)
		}
		want, _ := json.Marshal(synthValue{I: i, Sq: i * i})
		if string(o.Value) != string(want) {
			t.Errorf("outcome %d: value %s, want %s", i, o.Value, want)
		}
	}
}

func TestRunRejectsDuplicateKeys(t *testing.T) {
	cells := synthCells("dup", 2, nil)
	cells[1].Spec = cells[0].Spec
	if _, err := Run(context.Background(), "dup", cells, Options{}); err == nil ||
		!strings.Contains(err.Error(), "share content key") {
		t.Fatalf("duplicate specs not rejected: %v", err)
	}
}

// TestClassifyTable pins the full retry taxonomy: exactly which failures are
// transient (retried), deterministic (fail fast), and cancelled.
func TestClassifyTable(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("outer: %w", err) }
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassNone},
		{"canceled", context.Canceled, ClassCancelled},
		{"canceled wrapped", wrap(context.Canceled), ClassCancelled},
		{"deadline", context.DeadlineExceeded, ClassTransient},
		{"deadline wrapped", wrap(context.DeadlineExceeded), ClassTransient},
		{"transient sentinel", ErrTransient, ClassTransient},
		{"transient wrapped", wrap(ErrTransient), ClassTransient},
		{"exec exit", wrap(&exec.ExitError{}), ClassTransient},
		{"worker crash", &WorkerCrashError{Cell: "c"}, ClassTransient},
		{"budget", &sim.BudgetError{}, ClassDeterministic},
		{"budget wrapped", wrap(&sim.BudgetError{}), ClassDeterministic},
		{"deadlock", &invariant.DeadlockError{}, ClassDeterministic},
		{"violation", &invariant.ViolationError{Err: errors.New("x")}, ClassDeterministic},
		{"panic", &PanicError{Cell: "c", Value: "boom"}, ClassDeterministic},
		{"remote transient", &RemoteError{Msg: "m", Class: ClassTransient}, ClassTransient},
		{"remote deterministic", &RemoteError{Msg: "m", Class: ClassDeterministic}, ClassDeterministic},
		{"journaled transient", &journaledError{msg: "m", class: ClassTransient}, ClassTransient},
		{"unknown", errors.New("mystery"), ClassDeterministic},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassStringRoundTrip(t *testing.T) {
	for _, c := range []Class{ClassNone, ClassTransient, ClassDeterministic, ClassCancelled} {
		if got := parseClass(c.String()); got != c {
			t.Errorf("parseClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if got := parseClass("garbage"); got != ClassDeterministic {
		t.Errorf("unknown class parsed as %v, want deterministic", got)
	}
}

// TestRetryPolicyNeverRetriesDeterministic: the acceptance-criteria table —
// deterministic failures run exactly once no matter the retry budget,
// transient failures consume the full budget, and a transient blip recovers.
func TestRetryPolicyNeverRetriesDeterministic(t *testing.T) {
	cases := []struct {
		name         string
		err          error
		wantAttempts int
		wantClass    Class
	}{
		{"budget error", &sim.BudgetError{}, 1, ClassDeterministic},
		{"deadlock", &invariant.DeadlockError{}, 1, ClassDeterministic},
		{"violation", &invariant.ViolationError{Err: errors.New("swmr")}, 1, ClassDeterministic},
		{"unknown", errors.New("mystery"), 1, ClassDeterministic},
		{"transient", fmt.Errorf("io blip: %w", ErrTransient), 4, ClassTransient},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var runs atomic.Int32
			cells := []Cell{{
				Name: "cell",
				Spec: synthSpec{Campaign: "retry-" + c.name, I: 0},
				Run: func(ctx context.Context) (any, error) {
					runs.Add(1)
					return nil, c.err
				},
			}}
			opts := Options{Retries: 3}
			noSleep(&opts)
			outcomes, err := Run(context.Background(), "retry", cells, opts)
			if err != nil {
				t.Fatal(err)
			}
			o := outcomes[0]
			if o.Err == nil || o.Class != c.wantClass {
				t.Fatalf("outcome err=%v class=%v, want class %v", o.Err, o.Class, c.wantClass)
			}
			if int(runs.Load()) != c.wantAttempts || o.Attempts != c.wantAttempts {
				t.Fatalf("ran %d times (outcome says %d), want %d", runs.Load(), o.Attempts, c.wantAttempts)
			}
		})
	}
}

func TestRetryRecoversFromTransientBlip(t *testing.T) {
	var runs atomic.Int32
	cells := []Cell{{
		Name: "flaky",
		Spec: synthSpec{Campaign: "blip", I: 0},
		Run: func(ctx context.Context) (any, error) {
			if runs.Add(1) < 3 {
				return nil, fmt.Errorf("blip %d: %w", runs.Load(), ErrTransient)
			}
			return synthValue{I: 0, Sq: 0}, nil
		},
	}}
	opts := Options{Retries: 3}
	noSleep(&opts)
	outcomes, err := Run(context.Background(), "blip", cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	if o := outcomes[0]; o.Err != nil || o.Attempts != 3 {
		t.Fatalf("outcome err=%v attempts=%d, want success on attempt 3", o.Err, o.Attempts)
	}
}

// TestBackoffDeterministicAndCapped: same (seed, key, attempt) -> same
// delay; delays grow from base and never exceed the cap.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	opts := Options{BackoffBase: 100 * time.Millisecond, BackoffMax: 1 * time.Second, Seed: 42}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := backoffFor(opts, "key", attempt)
		d2 := backoffFor(opts, "key", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 < opts.BackoffBase || d1 > opts.BackoffMax {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d1, opts.BackoffBase, opts.BackoffMax)
		}
		if d1 < prev && d1 != opts.BackoffMax {
			t.Fatalf("attempt %d: backoff %v shrank below %v before the cap", attempt, d1, prev)
		}
		prev = d1
	}
	if backoffFor(opts, "key", 1) == backoffFor(Options{BackoffBase: opts.BackoffBase, BackoffMax: opts.BackoffMax, Seed: 43}, "key", 1) {
		t.Log("seeds 42 and 43 collided on attempt 1 jitter (possible but suspicious)")
	}
}

// TestRetrySleepsObserveBackoff: the retry loop actually sleeps the
// scheduled backoff (captured via the test hook) between attempts.
func TestRetrySleepsObserveBackoff(t *testing.T) {
	var slept []time.Duration
	cells := []Cell{{
		Name: "flaky",
		Spec: synthSpec{Campaign: "sleeps", I: 0},
		Run: func(ctx context.Context) (any, error) {
			return nil, fmt.Errorf("blip: %w", ErrTransient)
		},
	}}
	opts := Options{Retries: 2, Seed: 7}
	opts.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	if _, err := Run(context.Background(), "sleeps", cells, opts); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (retries)", len(slept))
	}
	key, _ := Key(synthSpec{Campaign: "sleeps", I: 0})
	for i, d := range slept {
		if want := backoffFor(Options{BackoffBase: 100 * time.Millisecond, BackoffMax: 5 * time.Second, Seed: 7}, key, i+1); d != want {
			t.Errorf("sleep %d = %v, want %v", i, d, want)
		}
	}
}

// TestCancelledCellsNotJournaled: a cancelled campaign journals nothing for
// the interrupted cells, so a resume re-runs them.
func TestCancelledCellsNotJournaled(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "j.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells := synthCells("cancel", 4, nil)
	outcomes, err := Run(ctx, "cancel", cells, Options{Journal: journal})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v", err)
	}
	for _, o := range outcomes {
		if o.Err == nil {
			t.Fatalf("cell %s succeeded under a dead context", o.Name)
		}
		if o.Class != ClassCancelled {
			t.Fatalf("cell %s classified %v, want cancelled", o.Name, o.Class)
		}
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if rec.Kind == "cell" {
			t.Fatalf("cancelled cell journaled: %s", line)
		}
	}
	// Resume after the abort: every cell runs fresh.
	outcomes, err = Run(context.Background(), "cancel", cells, Options{Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Err != nil || o.FromJournal {
			t.Fatalf("cell %s after resume: err=%v fromJournal=%v", o.Name, o.Err, o.FromJournal)
		}
	}
}

// TestDegradedBlock: permanent failures land in the degraded list with their
// class, attempts, and repro command; successes and cancellations don't.
func TestDegradedBlock(t *testing.T) {
	boom := errors.New("permanently broken")
	cells := synthCells("degraded", 4, map[int]error{2: boom})
	opts := Options{Retries: 2}
	noSleep(&opts)
	outcomes, err := Run(context.Background(), "degraded", cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	deg := Degraded(outcomes, func(o Outcome) string { return fmt.Sprintf("rerun -only %d", o.Index) })
	if len(deg) != 1 {
		t.Fatalf("degraded block has %d cells, want 1: %+v", len(deg), deg)
	}
	d := deg[0]
	if d.Name != "degraded-2" || d.Class != "deterministic" || d.Attempts != 1 {
		t.Fatalf("degraded cell wrong: %+v", d)
	}
	if d.Repro != "rerun -only 2" {
		t.Fatalf("repro = %q", d.Repro)
	}
	if !strings.Contains(d.Error, "permanently broken") {
		t.Fatalf("error text lost: %q", d.Error)
	}
	// Cancelled outcomes are not degradations.
	if got := Degraded([]Outcome{{Name: "c", Err: context.Canceled, Class: ClassCancelled}}, nil); len(got) != 0 {
		t.Fatalf("cancelled outcome counted as degraded: %+v", got)
	}
}

// TestJournalTornTailTolerated: a SIGKILL mid-append leaves a half-written
// final line; resume must shrug it off and re-run only that cell.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	cells := synthCells("torn", 3, nil)
	outcomes, err := Run(context.Background(), "torn", cells, Options{Journal: path})
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final line in half.
	data, _ := os.ReadFile(path)
	trimmed := data[:len(data)-1] // drop trailing newline
	cut := len(trimmed) - len(trimmed)/4
	if err := os.WriteFile(path, trimmed[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(context.Background(), "torn", cells, Options{Journal: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	fromJournal := 0
	for i, o := range resumed {
		if o.Err != nil {
			t.Fatalf("cell %s failed on resume: %v", o.Name, o.Err)
		}
		if string(o.Value) != string(outcomes[i].Value) {
			t.Fatalf("cell %s drifted across torn-tail resume:\n%s\nvs\n%s", o.Name, o.Value, outcomes[i].Value)
		}
		if o.FromJournal {
			fromJournal++
		}
	}
	if fromJournal != 2 {
		t.Fatalf("%d cells replayed from torn journal, want 2", fromJournal)
	}
}

// TestJournalValidation: corrupt middle lines, missing headers, wrong
// schemas, and wrong campaign names all refuse to resume.
func TestJournalValidation(t *testing.T) {
	header := fmt.Sprintf(`{"kind":"header","schema":%q,"campaign":"c"}`, JournalSchema)
	cases := []struct {
		name, content, wantErr string
	}{
		{"corrupt middle", header + "\n{garbage}\n" + `{"kind":"cell","key":"k"}` + "\n", "corrupt at line 2"},
		{"no header", `{"kind":"cell","key":"k"}` + "\n", "no header"},
		{"bad schema", `{"kind":"header","schema":"other/v9","campaign":"c"}` + "\n", "schema"},
		{"wrong campaign", fmt.Sprintf(`{"kind":"header","schema":%q,"campaign":"other"}`, JournalSchema) + "\n", "belongs to campaign"},
		{"unknown kind", header + "\n" + `{"kind":"mystery"}` + "\n", "unknown record kind"},
		{"cell without key", header + "\n" + `{"kind":"cell"}` + "\n", "without key"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.jsonl")
			if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := openJournal(path, "c", true, nil)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

// TestJournalLaterDuplicateWins: when a key appears twice (a re-run appended
// behind an earlier record), resume uses the later record.
func TestJournalLaterDuplicateWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := fmt.Sprintf(`{"kind":"header","schema":%q,"campaign":"c"}`, JournalSchema) + "\n" +
		`{"kind":"cell","key":"k","name":"n","attempts":1,"error":"first try","class":"transient"}` + "\n" +
		`{"kind":"cell","key":"k","name":"n","attempts":2,"value":{"fixed":true}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := openJournal(path, "c", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	rec, ok := j.prior["k"]
	if !ok || rec.Error != "" || string(rec.Value) != `{"fixed":true}` || rec.Attempts != 2 {
		t.Fatalf("later record did not win: %+v", rec)
	}
}

// TestJournalFreshTruncates: without -resume an existing journal is
// truncated, not appended to.
func TestJournalFreshTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	cells := synthCells("fresh", 2, nil)
	if _, err := Run(context.Background(), "fresh", cells, Options{Journal: path}); err != nil {
		t.Fatal(err)
	}
	first, _ := os.ReadFile(path)
	if _, err := Run(context.Background(), "fresh", cells, Options{Journal: path}); err != nil {
		t.Fatal(err)
	}
	second, _ := os.ReadFile(path)
	if string(first) != string(second) {
		t.Fatalf("re-run without resume did not truncate:\n%s\nvs\n%s", first, second)
	}
}

// TestJournaledFailureReplaysOnResume: terminal failures are journaled too,
// so a resumed campaign preserves the degraded block byte-for-byte instead
// of silently re-running known-bad cells.
func TestJournaledFailureReplaysOnResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	boom := errors.New("deterministically broken")
	cells := synthCells("degjournal", 3, map[int]error{1: boom})
	opts := Options{Journal: path}
	noSleep(&opts)
	outcomes, err := Run(context.Background(), "degjournal", cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	var reruns atomic.Int32
	cells[1].Run = func(ctx context.Context) (any, error) {
		reruns.Add(1)
		return nil, boom
	}
	resumed, err := Run(context.Background(), "degjournal", cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reruns.Load() != 0 {
		t.Fatalf("journaled failure re-ran %d times on resume", reruns.Load())
	}
	if !resumed[1].FromJournal || resumed[1].Err == nil {
		t.Fatalf("failure not replayed from journal: %+v", resumed[1])
	}
	if resumed[1].Err.Error() != outcomes[1].Err.Error() || resumed[1].Class != outcomes[1].Class {
		t.Fatalf("degraded cell drifted across resume: %v (%v) vs %v (%v)",
			resumed[1].Err, resumed[1].Class, outcomes[1].Err, outcomes[1].Class)
	}
}
