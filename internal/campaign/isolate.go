package campaign

// Subprocess isolation: each attempt runs in a child worker process that
// receives one cell spec on stdin and answers with one result line on
// stdout. The parent enforces the wall-clock bound by killing the child —
// kill-on-hang, not ask-on-hang — so a wedged, runaway, or OOMed cell can
// take down only its own process, never the campaign. Because only error
// text survives the process boundary, the worker classifies its own failure
// (it holds the typed error) and ships the class over the wire; a child that
// dies without answering is a WorkerCrashError, transient by definition.
//
// The worker is the same binary re-exec'd: each campaign CLI registers a
// -cellworker mode that calls ServeWorker with a handler decoding its own
// spec type.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"
)

// IsolateOptions configures subprocess isolation.
type IsolateOptions struct {
	// Argv is the worker command line. Empty means re-exec the current
	// binary with a single "-cellworker" argument.
	Argv []string
	// Env is appended to the parent's environment for each worker.
	Env []string
	// Grace is how long after the kill signal the parent waits for the
	// child's pipes to drain before abandoning them (default 2s).
	Grace time.Duration
}

// wireCell is the parent->worker request: one cell's identity.
type wireCell struct {
	Name string          `json:"name"`
	Spec json.RawMessage `json:"spec"`
}

// wireResult is the worker->parent response.
type wireResult struct {
	OK    bool            `json:"ok"`
	Value json.RawMessage `json:"value,omitempty"`
	Error string          `json:"error,omitempty"`
	Class string          `json:"class,omitempty"`
}

// runIsolated executes one attempt of the cell in a worker process. The
// context carries the attempt's deadline; expiry kills the child and
// surfaces as a transient timeout.
func runIsolated(ctx context.Context, c Cell, iso *IsolateOptions) (any, error) {
	spec, err := json.Marshal(c.Spec)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: marshaling spec for worker: %w", c.Name, err)
	}
	req, err := json.Marshal(wireCell{Name: c.Name, Spec: spec})
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: marshaling worker request: %w", c.Name, err)
	}

	argv := iso.Argv
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("campaign: resolving worker binary: %w", err)
		}
		argv = []string{exe, "-cellworker"}
	}
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), iso.Env...)
	cmd.Stdin = bytes.NewReader(append(req, '\n'))
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	grace := iso.Grace
	if grace <= 0 {
		grace = 2 * time.Second
	}
	cmd.WaitDelay = grace // CommandContext kills on expiry; this bounds the pipe drain

	runErr := cmd.Run()
	if ctx.Err() != nil {
		// Deadline or cancellation killed the child; report the context's
		// verdict (DeadlineExceeded -> transient, Canceled -> cancelled)
		// rather than the child's SIGKILL exit.
		return nil, fmt.Errorf("campaign: %s: isolated worker killed: %w", c.Name, ctx.Err())
	}
	if runErr != nil {
		return nil, &WorkerCrashError{Cell: c.Name, Err: runErr, Stderr: tail(stderr.Bytes())}
	}
	var res wireResult
	if err := json.Unmarshal(bytes.TrimSpace(stdout.Bytes()), &res); err != nil {
		return nil, &WorkerCrashError{
			Cell:   c.Name,
			Err:    fmt.Errorf("unparsable worker output %q: %w", tail(stdout.Bytes()), err),
			Stderr: tail(stderr.Bytes()),
		}
	}
	if !res.OK {
		return nil, &RemoteError{Msg: res.Error, Class: parseClass(res.Class)}
	}
	return res.Value, nil
}

// tail returns the last portion of a worker stream for error messages.
func tail(b []byte) string {
	const max = 2048
	b = bytes.TrimSpace(b)
	if len(b) > max {
		b = b[len(b)-max:]
	}
	return string(b)
}

// ServeWorker is the child side of the isolation protocol: it reads one
// wire-encoded cell from r, runs handler on its spec, and writes the
// classified result to w. Campaign CLIs call it from their -cellworker mode;
// the handler decodes the CLI's own spec type and must be deterministic.
// A handler panic is captured and reported as a deterministic failure. The
// returned error covers protocol problems only (undecodable input, broken
// pipe) — handler failures travel inside the wire result.
func ServeWorker(r io.Reader, w io.Writer, handler func(ctx context.Context, name string, spec json.RawMessage) (any, error)) error {
	var req wireCell
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return fmt.Errorf("campaign: worker: decoding request: %w", err)
	}
	val, err := func() (val any, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				val, err = nil, &PanicError{Cell: req.Name, Value: rec}
			}
		}()
		return handler(context.Background(), req.Name, req.Spec)
	}()
	var res wireResult
	if err != nil {
		res = wireResult{Error: err.Error(), Class: Classify(err).String()}
	} else {
		raw, merr := json.Marshal(val)
		if merr != nil {
			res = wireResult{Error: fmt.Sprintf("marshaling cell value: %v", merr), Class: ClassDeterministic.String()}
		} else {
			res = wireResult{OK: true, Value: raw}
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&res); err != nil {
		return fmt.Errorf("campaign: worker: writing result: %w", err)
	}
	return nil
}
