package workload_test

// Registry contract tests, mirroring the defense registry's: the built-in
// registration order is part of the deterministic artifact byte layout, the
// rejection paths must never leak a partial registration, and Lookup errors
// must be self-documenting (sorted name listing).

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"invisispec/internal/isa"
	"invisispec/internal/workload"
)

// stub is a minimal registrable workload for registry-error tests. It is
// only ever passed to Register with names the registry must reject, so no
// test entry can pollute the global registration order.
type stub struct{ name string }

func (s stub) Name() string                         { return s.name }
func (s stub) Class() workload.Class                { return workload.ClassBench }
func (s stub) DefaultCores() int                    { return 1 }
func (s stub) Programs(int) ([]*isa.Program, error) { return nil, nil }

// builtinNames is the required registration-order prefix: the 23 SPEC
// kernels in Figure 4 order, the 9 PARSEC kernels in Figure 7 order, then
// the canonical attack programs. Runtime imports (other tests register
// some) append after this prefix and must never reorder it.
func builtinNames() []string {
	names := append([]string{}, workload.SPECNames()...)
	names = append(names, workload.PARSECNames()...)
	return append(names, "spectre", "meltdown")
}

func TestBuiltinRegistrationOrder(t *testing.T) {
	want := builtinNames()
	if len(want) != 34 {
		t.Fatalf("built-in workload count = %d, want 34 (23 SPEC + 9 PARSEC + 2 attacks)", len(want))
	}
	names := workload.Names()
	if len(names) < len(want) {
		t.Fatalf("registry has %d workloads, want at least %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
	all := workload.All()
	for i, n := range want {
		if all[i].Name() != n {
			t.Errorf("All()[%d].Name() = %q, want %q", i, all[i].Name(), n)
		}
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := workload.All()
	a[0] = stub{name: "clobbered"}
	if workload.All()[0].Name() != workload.SPECNames()[0] {
		t.Fatal("mutating All()'s result corrupted the registry")
	}
}

func TestSuiteNames(t *testing.T) {
	if got, want := workload.SuiteNames(false), workload.SPECNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("SuiteNames(false) = %v, want the SPEC suite %v", got, want)
	}
	if got, want := workload.SuiteNames(true), workload.PARSECNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("SuiteNames(true) = %v, want the PARSEC suite %v", got, want)
	}
}

func TestRegisterRejections(t *testing.T) {
	before := workload.Names()
	cases := []struct {
		label string
		w     workload.Workload
		want  string
	}{
		{"duplicate", stub{name: "hmmer"}, "duplicate"},
		{"empty", stub{name: ""}, "empty name"},
		{"comma", stub{name: "a,b"}, "separator"},
		{"space", stub{name: "a b"}, "separator"},
		{"tab", stub{name: "a\tb"}, "separator"},
		{"newline", stub{name: "a\nb"}, "separator"},
	}
	for _, c := range cases {
		err := workload.Register(c.w)
		if err == nil {
			t.Errorf("%s: Register(%q) accepted", c.label, c.w.Name())
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.label, err, c.want)
		}
	}
	if !reflect.DeepEqual(workload.Names(), before) {
		t.Fatalf("rejected registrations changed the registry: %v", workload.Names())
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister(duplicate) did not panic")
		}
	}()
	workload.MustRegister(stub{name: "hmmer"})
}

func TestLookup(t *testing.T) {
	for _, n := range builtinNames() {
		w, err := workload.Lookup(n)
		if err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
			continue
		}
		if w.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, w.Name())
		}
	}
	_, err := workload.Lookup("no-such-workload")
	if err == nil {
		t.Fatal("Lookup resolved an unregistered name")
	}
	// The error must list every registered name, sorted, so a CLI typo is
	// self-diagnosing.
	msg := err.Error()
	_, listing, ok := strings.Cut(msg, "registered: ")
	if !ok {
		t.Fatalf("Lookup error %q carries no registered-name listing", msg)
	}
	listed := strings.Split(listing, ", ")
	if !sort.StringsAreSorted(listed) {
		t.Errorf("Lookup error listing is not sorted: %q", listing)
	}
	for _, n := range workload.Names() {
		if !strings.Contains(msg, n) {
			t.Errorf("Lookup error does not list %q", n)
		}
	}
}

func TestBuiltinClassesAndPrograms(t *testing.T) {
	// SPEC: single-core bench kernels, byte-equivalent to SPEC(name).
	hmmer, err := workload.Lookup("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	if hmmer.Class() != workload.ClassBench || hmmer.DefaultCores() != 1 {
		t.Errorf("hmmer: class %v cores %d, want bench 1", hmmer.Class(), hmmer.DefaultCores())
	}
	progs, err := hmmer.Programs(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(progs[0], workload.MustSPEC("hmmer")) {
		t.Error("registry hmmer differs from SPEC(\"hmmer\")")
	}
	if _, err := hmmer.Programs(2); err == nil {
		t.Error("SPEC kernel accepted a 2-core build")
	}

	// PARSEC: multi-core bench kernels, byte-equivalent to PARSEC(name, n).
	canneal, err := workload.Lookup("canneal")
	if err != nil {
		t.Fatal(err)
	}
	if canneal.Class() != workload.ClassBench || canneal.DefaultCores() != 8 {
		t.Errorf("canneal: class %v cores %d, want bench 8", canneal.Class(), canneal.DefaultCores())
	}
	cprogs, err := canneal.Programs(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cprogs, workload.MustPARSEC("canneal", 4)) {
		t.Error("registry canneal differs from PARSEC(\"canneal\", 4)")
	}

	// Attacks: the smoke-corpus canonical builds.
	spectre, err := workload.Lookup("spectre")
	if err != nil {
		t.Fatal(err)
	}
	if spectre.Class() != workload.ClassAttack || spectre.DefaultCores() != 1 {
		t.Errorf("spectre: class %v cores %d, want attack 1", spectre.Class(), spectre.DefaultCores())
	}
	sprogs, err := spectre.Programs(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := workload.SpectreV1With(workload.CanonicalSpectre(84))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sprogs[0], want) {
		t.Error("registry spectre differs from the canonical secret-84 gadget")
	}
	meltdown, err := workload.Lookup("meltdown")
	if err != nil {
		t.Fatal(err)
	}
	mprogs, err := meltdown.Programs(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mprogs[0], workload.Meltdown(90)) {
		t.Error("registry meltdown differs from Meltdown(90)")
	}
}

func TestClassString(t *testing.T) {
	cases := map[workload.Class]string{
		workload.ClassBench:    "bench",
		workload.ClassAttack:   "attack",
		workload.ClassImported: "imported",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}
