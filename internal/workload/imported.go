package workload

// Imported workloads: replayable v2 traces loaded from disk and
// registered as first-class entries, so an externally recorded program
// participates in bench sweeps, leakage scans, conformance fuzzing, and
// simserver jobs identically to a built-in kernel. Admission is gated by
// spec-derived invariants — instruction conservation against the golden
// interpreter, clock monotonicity, byte-identical replay-of-replay —
// never by golden values, so an imported trace can exercise behaviour the
// built-in kernels do not without a baseline to compare against.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"invisispec/internal/isa"
	"invisispec/internal/trace"
)

// TraceWorkload replays a recorded trace: the decoded programs drive the
// OoO core exactly as the original programs did (the event stream rides
// along as the conformance oracle, see conform.CheckImportedTrace).
type TraceWorkload struct {
	t *trace.Trace
}

// Name is the trace header's name — the registry key and the journal
// identity, independent of the file path the trace was loaded from.
func (w *TraceWorkload) Name() string { return w.t.Name }

// Class marks the workload as a runtime import.
func (w *TraceWorkload) Class() Class { return ClassImported }

// DefaultCores is the recorded machine width.
func (w *TraceWorkload) DefaultCores() int { return len(w.t.Programs) }

// Programs returns the decoded per-core programs. A trace replays only at
// its recorded width: the programs were generated for specific core
// indices (private regions, pipeline stages), so any other width would be
// a different workload.
func (w *TraceWorkload) Programs(cores int) ([]*isa.Program, error) {
	if cores != len(w.t.Programs) {
		return nil, fmt.Errorf("workload: imported trace %q records %d core(s), not %d",
			w.t.Name, len(w.t.Programs), cores)
	}
	return append([]*isa.Program(nil), w.t.Programs...), nil
}

// Trace exposes the decoded trace (the recorded commit streams are the
// conformance oracle for the replay).
func (w *TraceWorkload) Trace() *trace.Trace { return w.t }

// LoadTraceFile decodes and admission-checks one trace file without
// registering it (traceconv -verify uses this directly). The gates, in
// order:
//
//  1. Structural: v2 format, CRC-verified, per-core clock monotonicity
//     (trace.DecodeBytes / Validate).
//  2. Replay-of-replay: re-encoding the decoded trace must reproduce the
//     file's bytes exactly — the canonical-encoding property that makes
//     "replay the replay" a fixed point instead of a drift vector.
//  3. Instruction conservation (single-core traces): the golden
//     interpreter, run for exactly the recorded event count, must commit
//     an architecturally identical stream (trace.Diff semantics: cycles
//     and OpCycle values are timing, everything else must match).
//     Multi-core recordings depend on an interleaving the single-threaded
//     interpreter cannot reproduce, so they pass on gates 1–2 only.
func LoadTraceFile(path string) (*trace.Trace, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := trace.DecodeBytes(raw)
	if err != nil {
		return nil, fmt.Errorf("workload: import %s: %w", path, err)
	}
	if t.Programs == nil {
		return nil, fmt.Errorf("workload: import %s: v1 stream carries no program; re-record as ispectr2", path)
	}
	reenc, err := trace.EncodeBytes(t)
	if err != nil {
		return nil, fmt.Errorf("workload: import %s: %w", path, err)
	}
	if !bytes.Equal(raw, reenc) {
		return nil, fmt.Errorf("workload: import %s: re-encoding differs from file (non-canonical bytes)", path)
	}
	if len(t.Programs) == 1 {
		n := uint64(len(t.Events[0]))
		ref, _ := trace.RecordInterp(t.Name, t.Programs[0], n)
		if uint64(len(ref.Events[0])) != n {
			return nil, fmt.Errorf("workload: import %s: interpreter halts after %d of %d recorded instructions",
				path, len(ref.Events[0]), n)
		}
		if i, why := trace.Diff(t.Events[0], ref.Events[0]); i != -1 {
			return nil, fmt.Errorf("workload: import %s: recorded stream diverges from golden interpreter at commit %d: %s",
				path, i, why)
		}
	}
	return t, nil
}

// ImportFile loads one trace file as a workload (without registering it).
func ImportFile(path string) (*TraceWorkload, error) {
	t, err := LoadTraceFile(path)
	if err != nil {
		return nil, err
	}
	return &TraceWorkload{t: t}, nil
}

// ImportDir loads every *.trace file in dir (non-recursive, sorted by
// file name for deterministic registration order) and registers each as a
// workload. It returns the registered names. A name collision — two trace
// headers with the same name, or a trace named after a built-in kernel —
// fails the import; record with a distinct name instead.
func ImportDir(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var names []string
	for _, path := range paths {
		w, err := ImportFile(path)
		if err != nil {
			return nil, err
		}
		if err := Register(w); err != nil {
			return nil, fmt.Errorf("workload: import %s: %w", path, err)
		}
		names = append(names, w.Name())
	}
	return names, nil
}

// EnvImportDirs is the environment variable through which import
// directories propagate to re-executed campaign cell workers: the parent
// process sets it (SetImportDirs) before spawning, the worker inherits
// the environment and calls ImportFromEnv before serving cells, and both
// sides end up with the identical registry the journal identities assume.
const EnvImportDirs = "INVISISPEC_IMPORT"

var importEnvOnce sync.Once

// SetImportDirs records dir in the process environment (appending to any
// existing list) so isolation-spawned workers import the same corpus.
func SetImportDirs(dir string) error {
	val := dir
	if prev := os.Getenv(EnvImportDirs); prev != "" {
		val = prev + string(os.PathListSeparator) + dir
	}
	return os.Setenv(EnvImportDirs, val)
}

// ImportFromEnv imports every directory listed in EnvImportDirs, once per
// process (idempotent across the campaign worker's cell loop). CLIs call
// it at startup, before flag handling: in the parent the variable is
// normally unset and this is a no-op; in a re-executed -cellworker child
// it reconstructs the parent's imported registry.
func ImportFromEnv() error {
	val := os.Getenv(EnvImportDirs)
	if val == "" {
		return nil
	}
	var err error
	importEnvOnce.Do(func() {
		for _, dir := range strings.Split(val, string(os.PathListSeparator)) {
			if dir == "" {
				continue
			}
			if _, e := ImportDir(dir); e != nil {
				err = e
				return
			}
		}
	})
	return err
}
