package workload

// Built-in registry entries: the 23 SPEC kernels and 9 PARSEC kernels in
// paper order (their registration order is part of the deterministic
// artifact byte layout, like the defense registry's), plus the canonical
// attack programs the leakage scanner assembles, registered so recorded
// attack traces have a named built-in counterpart to diff against.

import (
	"fmt"

	"invisispec/internal/isa"
)

func init() {
	for _, p := range specProfiles {
		MustRegister(specWorkload{p})
	}
	for _, p := range parsecProfiles {
		MustRegister(parsecWorkload{p})
	}
	// Attack entries use the smoke-corpus canonical parameters (see
	// leakage.SmokeCorpus): spectre is the canonical Spectre-V1 gadget
	// with secret byte 84, meltdown the user/kernel variant with secret
	// byte 90. Both halt, so they record end-to-end.
	MustRegister(attackWorkload{
		name:  "spectre",
		build: func() (*isa.Program, error) { return SpectreV1With(CanonicalSpectre(84)) },
	})
	MustRegister(attackWorkload{
		name:  "meltdown",
		build: func() (*isa.Program, error) { return Meltdown(90), nil },
	})
}

// specWorkload adapts a SpecProfile to the registry: a 1-core bench
// kernel built exactly as SPEC(name) builds it.
type specWorkload struct{ p SpecProfile }

func (w specWorkload) Name() string      { return w.p.Name }
func (w specWorkload) Class() Class      { return ClassBench }
func (w specWorkload) DefaultCores() int { return 1 }

func (w specWorkload) Programs(cores int) ([]*isa.Program, error) {
	if cores != 1 {
		return nil, fmt.Errorf("workload: SPEC kernel %q is single-core, not %d-core", w.p.Name, cores)
	}
	return []*isa.Program{buildSpecKernel(w.p)}, nil
}

// parsecWorkload adapts a ParsecProfile: a multi-core bench kernel built
// exactly as PARSEC(name, cores) builds it, defaulting to the paper's
// 8-core configuration.
type parsecWorkload struct{ p ParsecProfile }

func (w parsecWorkload) Name() string      { return w.p.Name }
func (w parsecWorkload) Class() Class      { return ClassBench }
func (w parsecWorkload) DefaultCores() int { return 8 }

func (w parsecWorkload) Programs(cores int) ([]*isa.Program, error) {
	if cores < 1 {
		return nil, fmt.Errorf("workload: PARSEC kernel %q needs at least one core", w.p.Name)
	}
	return PARSEC(w.p.Name, cores)
}

// attackWorkload wraps a single-core attack program builder.
type attackWorkload struct {
	name  string
	build func() (*isa.Program, error)
}

func (w attackWorkload) Name() string      { return w.name }
func (w attackWorkload) Class() Class      { return ClassAttack }
func (w attackWorkload) DefaultCores() int { return 1 }

func (w attackWorkload) Programs(cores int) ([]*isa.Program, error) {
	if cores != 1 {
		return nil, fmt.Errorf("workload: attack %q is single-core, not %d-core", w.name, cores)
	}
	p, err := w.build()
	if err != nil {
		return nil, err
	}
	return []*isa.Program{p}, nil
}
