package workload

// The registry maps workload names to program factories, mirroring the
// defense registry: registration order is preserved, All() is the
// canonical workload enumeration, and every matrix (bench sweep, leakage
// scan, conformance fuzz, simserver jobs) resolves names through Lookup
// instead of per-CLI switches. Imported traces register here at runtime
// and participate in every matrix identically to the built-in kernels.

import (
	"fmt"
	"sort"
	"strings"

	"invisispec/internal/isa"
)

// Class partitions the registry along the axes the matrices select on:
// the bench suites sweep ClassBench, the leakage scanner targets
// ClassAttack programs, and ClassImported marks trace-derived workloads
// loaded at runtime (never part of a default suite — their presence must
// not shift the byte layout of existing artifacts).
type Class int

// Workload classes.
const (
	ClassBench    Class = iota // synthetic SPEC/PARSEC-like kernels
	ClassAttack                // transient-execution attack programs
	ClassImported              // replayable traces loaded via ImportDir
)

// String names the class for listings and error messages.
func (c Class) String() string {
	switch c {
	case ClassBench:
		return "bench"
	case ClassAttack:
		return "attack"
	case ClassImported:
		return "imported"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Workload is one named entry every matrix can run: a factory for the
// per-core programs plus the metadata the harnesses need to size the
// machine. Programs must be deterministic — two calls with the same core
// count return byte-equivalent programs, which is what keeps bench
// artifacts identical across workers and journal identities stable.
type Workload interface {
	// Name is the registry key and the name campaign journals record;
	// it must stay stable across runs for memoization to hold.
	Name() string
	// Class selects which default suites and matrices include the entry.
	Class() Class
	// DefaultCores is the machine size the workload was designed (or
	// recorded) for; MeasureWorkload sizes config.Default with it.
	DefaultCores() int
	// Programs builds one program per core. Implementations reject core
	// counts they cannot honour (e.g. an imported trace replays only at
	// its recorded width).
	Programs(cores int) ([]*isa.Program, error)
}

var registry struct {
	byName map[string]Workload
	order  []Workload
}

// Register adds a workload to the registry, rejecting empty and duplicate
// names. Built-in kernels register from init via MustRegister; the error
// form exists for runtime registration (imported traces) and so tests can
// exercise the rejection paths without panics.
func Register(w Workload) error {
	name := w.Name()
	if name == "" {
		return fmt.Errorf("workload: Register: workload has empty name")
	}
	if strings.ContainsAny(name, ", \t\n") {
		return fmt.Errorf("workload: Register: name %q contains separator characters", name)
	}
	if _, dup := registry.byName[name]; dup {
		return fmt.Errorf("workload: Register: duplicate workload name %q", name)
	}
	if registry.byName == nil {
		registry.byName = make(map[string]Workload)
	}
	registry.byName[name] = w
	registry.order = append(registry.order, w)
	return nil
}

// MustRegister is Register for init-time use; a bad registration is a
// programming error and panics.
func MustRegister(w Workload) {
	if err := Register(w); err != nil {
		panic(err)
	}
}

// All returns every registered workload in registration order (the 23
// SPEC kernels, the 9 PARSEC kernels, the attack programs, then runtime
// imports in import order). The returned slice is a copy.
func All() []Workload {
	out := make([]Workload, len(registry.order))
	copy(out, registry.order)
	return out
}

// Names returns every registered workload name in registration order.
func Names() []string {
	names := make([]string, len(registry.order))
	for i, w := range registry.order {
		names[i] = w.Name()
	}
	return names
}

// Lookup resolves a workload by name. The error lists the registered
// names so CLI messages are self-documenting.
func Lookup(name string) (Workload, error) {
	if w, ok := registry.byName[name]; ok {
		return w, nil
	}
	known := Names()
	sort.Strings(known)
	return nil, fmt.Errorf("workload: unknown workload %q (registered: %s)",
		name, strings.Join(known, ", "))
}

// SuiteNames returns one figure axis of the bench suite in paper order:
// the single-core SPEC kernels (parsec=false) or the multi-core PARSEC
// kernels (parsec=true). Attack and imported workloads are part of
// neither default suite — they are selected explicitly by name — so
// runtime imports cannot shift default artifact layouts.
func SuiteNames(parsec bool) []string {
	var names []string
	for _, w := range registry.order {
		if w.Class() != ClassBench {
			continue
		}
		if (w.DefaultCores() > 1) == parsec {
			names = append(names, w.Name())
		}
	}
	return names
}
