package workload_test

import (
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/stats"
	"invisispec/internal/workload"
)

func TestSPECNamesMatchPaper(t *testing.T) {
	names := workload.SPECNames()
	if len(names) != 23 {
		t.Fatalf("SPEC kernel count = %d, want 23", len(names))
	}
	want := map[string]bool{
		"bzip2": true, "mcf": true, "gobmk": true, "hmmer": true,
		"sjeng": true, "libquantum": true, "h264ref": true, "omnetpp": true,
		"astar": true, "bwaves": true, "gamess": true, "milc": true,
		"zeusmp": true, "gromacs": true, "cactusADM": true, "leslie3d": true,
		"namd": true, "soplex": true, "calculix": true, "GemsFDTD": true,
		"tonto": true, "lbm": true, "sphinx3": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected kernel %q", n)
		}
	}
}

func TestPARSECNamesMatchPaper(t *testing.T) {
	names := workload.PARSECNames()
	if len(names) != 9 {
		t.Fatalf("PARSEC kernel count = %d, want 9", len(names))
	}
}

func TestUnknownNamesRejected(t *testing.T) {
	if _, err := workload.SPEC("perlbench"); err == nil {
		t.Error("unknown SPEC name accepted")
	}
	if _, err := workload.PARSEC("vips", 8); err == nil {
		t.Error("unknown PARSEC name accepted")
	}
}

// runBudget executes a workload for a fixed instruction budget on Base/TSO.
func runBudget(t *testing.T, progs []*isa.Program, cores int, instrs uint64) *sim.Machine {
	t.Helper()
	r := config.Run{Machine: config.Default(cores), Defense: config.Base, Consistency: config.TSO}
	m := sim.MustNew(r, progs)
	if err := m.RunInstructions(instrs, instrs*400); err != nil {
		t.Fatalf("%v (retired %d)", err, m.Stats.TotalRetired())
	}
	return m
}

func TestEverySPECKernelRuns(t *testing.T) {
	for _, name := range workload.SPECNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := runBudget(t, []*isa.Program{workload.MustSPEC(name)}, 1, 5000)
			c := m.Stats.Cores[0]
			if c.Retired < 5000 {
				t.Fatalf("retired only %d", c.Retired)
			}
			if c.LoadsRetired == 0 {
				t.Fatal("kernel retired no loads")
			}
		})
	}
}

func TestEveryPARSECKernelRuns(t *testing.T) {
	for _, name := range workload.PARSECNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m := runBudget(t, workload.MustPARSEC(name, 8), 8, 16000)
			for i := range m.Stats.Cores {
				if m.Stats.Cores[i].Retired == 0 {
					t.Fatalf("core %d retired nothing", i)
				}
			}
		})
	}
}

func TestProfilesShapeBehaviour(t *testing.T) {
	// The profiles must actually produce the behaviours they claim: sjeng
	// mispredicts far more than libquantum; libquantum misses far more
	// than namd; pointer-chasing mcf has a large TLB footprint.
	const budget = 200000
	get := func(name string) stats.Core {
		m := runBudget(t, []*isa.Program{workload.MustSPEC(name)}, 1, budget)
		return m.Stats.Cores[0]
	}
	sjeng := get("sjeng")
	libq := get("libquantum")
	namd := get("namd")
	mcf := get("mcf")

	if sjeng.MispredictRate() < 4*libq.MispredictRate() {
		t.Errorf("sjeng mispredict rate %.3f not >> libquantum %.3f",
			sjeng.MispredictRate(), libq.MispredictRate())
	}
	libqMPKI := float64(libq.L1DMisses) * 1000 / float64(libq.Retired)
	namdMPKI := float64(namd.L1DMisses) * 1000 / float64(namd.Retired)
	if libqMPKI < 5*namdMPKI {
		t.Errorf("libquantum MPKI %.1f not >> namd %.1f", libqMPKI, namdMPKI)
	}
	if mcf.TLBMisses == 0 {
		t.Error("mcf produced no TLB misses")
	}
}

func TestLocksKernelMutualExclusion(t *testing.T) {
	// Run a lock-based kernel under IS-Fu/TSO and verify the ticket locks
	// kept the shared counters consistent: total increments recorded in
	// memory must equal total lock acquisitions... we can't count
	// acquisitions directly, but each critical section adds exactly 1 to a
	// line-aligned counter, so every counter must be <= total retired RMWs
	// and the run must simply complete coherently.
	r := config.Run{Machine: config.Default(4), Defense: config.ISFuture, Consistency: config.TSO}
	m := sim.MustNew(r, workload.MustPARSEC("fluidanimate", 4))
	if err := m.RunInstructions(20000, 20_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.TotalRetired() < 20000 {
		t.Fatal("lock kernel made no progress under IS-Fu")
	}
}

func TestPipelineDeliversItems(t *testing.T) {
	r := config.Run{Machine: config.Default(4), Defense: config.Base, Consistency: config.TSO}
	m := sim.MustNew(r, workload.MustPARSEC("ferret", 4))
	if err := m.RunInstructions(20000, 20_000_000); err != nil {
		t.Fatal(err)
	}
	// The final stage must have consumed items: its retired loads include
	// ring reads, and every stage must progress.
	for i := range m.Stats.Cores {
		if m.Stats.Cores[i].Retired < 100 {
			t.Fatalf("pipeline stage %d starved (retired %d)", i, m.Stats.Cores[i].Retired)
		}
	}
}

func TestSpectreProgramAssembles(t *testing.T) {
	p := workload.SpectreV1(84)
	if len(p.Insts) == 0 || p.Labels["victim"] == 0 {
		t.Fatal("spectre program malformed")
	}
	// The golden model must run it to completion (timings are all zero).
	it := isa.NewInterp(p)
	if err := it.Run(200000); err != nil {
		t.Fatal(err)
	}
}

func TestMeltdownProgramAssembles(t *testing.T) {
	p := workload.Meltdown(1)
	it := isa.NewInterp(p)
	if err := it.Run(200000); err != nil {
		t.Fatal(err)
	}
	if it.Faults != 1 {
		t.Fatalf("faults = %d, want 1", it.Faults)
	}
}
