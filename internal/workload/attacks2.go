// This file holds the attack classes beyond Spectre v1 and Meltdown: the
// Spectre v2 (BTB poisoning) template, the RSB/return-based variant, the
// speculative store bypass through the LSQ forwarding path, and the
// cross-core LLC-SB contention pair targeting the speculative buffer.
// Each is parameterized by the same SpectreParams block the v1 templates
// use (the leakage corpus and the feedback-driven search mutate these
// axes), with per-class validation narrowing the ranges where the
// microarchitecture narrows them (BTB training depth, RAS capacity).
package workload

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"invisispec/internal/isa"
)

// Memory layout of the new attack classes. Kept clear of the Spectre v1
// regions (A at 0x100000, bounds at 0x180000 with the straggler-drain
// lines at 0x190000, B at 0x200000, results at 0x300000, cross-thread
// mailbox at 0x380000).
const (
	// SpectreSlotAddr holds the indirect-dispatch target the v2 and RSB
	// victims load and jump through: the analogue of v1's bounds value as
	// the window-opener the attacker flushes.
	SpectreSlotAddr = 0x1a0000
	// SSBSlotBase is the base of the store-bypass slot lines, one
	// cache line per bypass round, each seeded with the secret byte that
	// the round's late-address store then overwrites with zero.
	SSBSlotBase = 0x1b0000
	// LLCSBCtrlBase is the LLC-SB contention pair's mailbox, one cache
	// line per flag (trained, go, ready) so the spin loops contend on
	// nothing but the flag they watch.
	LLCSBCtrlBase    = 0x3a0000
	llcsbCtrlTrained = LLCSBCtrlBase
	llcsbCtrlGo      = LLCSBCtrlBase + 128
	llcsbCtrlRdy     = LLCSBCtrlBase + 192
)

// ssbColdSentinel is the latency written into skipped probe-scan result
// slots: comfortably above the hot-line threshold at any realistic cold
// floor, yet close enough to the DRAM latency that it barely moves the
// distinguisher's noise estimate.
const ssbColdSentinel = 200

// validateClass merges the base geometry checks with class-specific
// violations into one error whose clauses are sorted, so a bad parameter
// set always produces the same deterministic message regardless of which
// check tripped first — search mutations fail fast and reproducibly.
func (p SpectreParams) validateClass(class string, extra []string) error {
	var errs []string
	if err := p.Validate(); err != nil {
		errs = append(errs, strings.TrimPrefix(err.Error(), "workload: "))
	}
	errs = append(errs, extra...)
	if len(errs) == 0 {
		return nil
	}
	sort.Strings(errs)
	return fmt.Errorf("workload: %s: %s", class, strings.Join(errs, "; "))
}

// ValidateBTB checks the parameters for the Spectre v2 template. The BTB
// is trained through repeated indirect dispatches; a round count past 64
// buys nothing and only stretches the simulation.
func (p SpectreParams) ValidateBTB() error {
	var extra []string
	if p.TrainRounds < 1 || p.TrainRounds > 64 {
		extra = append(extra, fmt.Sprintf("TrainRounds %d outside [1,64] (BTB training rounds)", p.TrainRounds))
	}
	return p.validateClass("spectre-btb", extra)
}

// ValidateRSB checks the parameters for the return-based template, where
// TrainRounds is the nested CALL depth: the RAS holds 16 entries and the
// frame link registers cap the practical depth at 8.
func (p SpectreParams) ValidateRSB() error {
	var extra []string
	if p.TrainRounds < 1 || p.TrainRounds > 8 {
		extra = append(extra, fmt.Sprintf("TrainRounds %d outside [1,8] (nested call depth vs. RAS capacity)", p.TrainRounds))
	}
	return p.validateClass("spectre-rsb", extra)
}

// ValidateSSB checks the parameters for the store-bypass template, where
// TrainRounds is the number of bypass rounds (each with its own slot
// line). The class has no bounds value and no safe-annotation story, so
// the v1 control axes that toggle those are rejected rather than
// silently ignored — a spec the matrix cannot predict must not assemble.
func (p SpectreParams) ValidateSSB() error {
	var extra []string
	if p.TrainRounds < 1 || p.TrainRounds > 64 {
		extra = append(extra, fmt.Sprintf("TrainRounds %d outside [1,64] (bypass rounds)", p.TrainRounds))
	}
	if !p.FlushBounds {
		extra = append(extra, "FlushBounds must be set (no bounds value exists; the control axis is FlushProbe)")
	}
	if p.Annotate {
		extra = append(extra, "Annotate unsupported (no victim loads to annotate)")
	}
	return p.validateClass("ssb", extra)
}

// emitLateCopy emits rd = rs through a ~100-cycle dependent divide chain —
// the window-widening idiom of SpectreV1With generalized to an arbitrary
// value: the chain depends on rs, so rd cannot resolve before rs does,
// and eight serialized 12-cycle divides push resolution well past the
// cold loads the transient window must cover. Eight (not v1's two) because
// the v2/RSB victims have no training phase to pre-warm their I-lines: on
// the attack dive the gadget's fetch trails the window-opening slot load
// by one or two cold I-line fills (~75 cycles), and the window must
// outlast that skew PLUS the gadget's own cold secret load at every
// nesting depth. rTmp is clobbered; rTen must hold 10.
func emitLateCopy(b *isa.Builder, rd, rs, rTmp, rTen uint8) {
	b.AndI(rTmp, rs, 0). // 0, but depends on rs
				AddI(rTmp, rTmp, 6400)
	for i := 0; i < 8; i++ {
		b.Div(rTmp, rTmp, rTen) // 8 x 12 serialized cycles
	}
	b.AndI(rTmp, rTmp, 0). // 0 again, late
				Add(rd, rs, rTmp) // rs, ~100 cycles after rs arrived
}

// emitProbeScan emits the FLUSH+RELOAD timing scan shared by every
// single-program attacker (see SpectreV1With for the two exploit tricks:
// serialized probes, descending line order). rB and rRes must already
// hold the probe-array and results bases. Lines below skipLow are not
// probed — their result slots get the cold sentinel instead — because
// the store-bypass template re-touches line 0 architecturally when its
// squashed load replays, so probing it would only read back the replay's
// residue.
func emitProbeScan(b *isa.Builder, lines, skipLow int, shift int64) {
	const (
		rT0    = 3
		rVal   = 4
		rT1    = 5
		rDelta = 6
		rResP  = 7
		rIdx   = 8
		rLimit = 11
		rBPtr  = 15
		rB     = 21
		rRes   = 22
		rShuf  = 24
	)
	for i := 0; i < skipLow; i++ {
		b.Li(rVal, ssbColdSentinel).
			St(8, rRes, int64(8*i), rVal)
	}
	b.Li(rIdx, 0).
		Li(rVal, 0)
	b.Label("scan").
		Li(rShuf, uint64(lines-1)).
		Sub(rShuf, rShuf, rIdx). // descending probe index
		AndI(rDelta, rVal, 0).   // 0, but depends on the previous probe
		ShlI(rBPtr, rShuf, shift).
		Add(rBPtr, rBPtr, rB).
		Add(rBPtr, rBPtr, rDelta).
		Cycle(rT0, rBPtr).     // t0, ordered after the address
		Ld(1, rVal, rBPtr, 0). //
		Cycle(rT1, rVal).      // t1, ordered after the loaded value
		Sub(rDelta, rT1, rT0).
		ShlI(rResP, rShuf, 3).
		Add(rResP, rResP, rRes).
		St(8, rResP, 0, rDelta).
		AddI(rIdx, rIdx, 1).
		Li(rLimit, uint64(lines-skipLow)).
		Blt(rIdx, rLimit, "scan")
}

// emitProbeFlush emits the probe-array flush of SpectreV1With: the base
// line plus, per warmed page, the warming line and its next-line
// prefetch shadows.
func emitProbeFlush(b *isa.Builder, rB uint8, region int64) {
	b.Flush(rB, 0)
	for pg := int64(0); pg < region; pg += isa.PageSize {
		for d := int64(0); d <= 4; d++ {
			b.Flush(rB, pg+64*d)
		}
	}
}

// SpectreV2With assembles the same-thread Spectre variant-2 attack: the
// victim dispatches through a function pointer (an indirect jump whose
// target is loaded from memory), the attacker trains the BTB by calling
// the victim while the pointer names a secret-reading gadget, then
// re-points the pointer at a benign target and flushes it. The attack
// call's dispatch load goes to DRAM, the BTB still predicts the gadget,
// and the gadget transiently reads the secret and touches the
// secret-indexed probe line before the indirect jump resolves to the
// benign target and squashes it.
//
// FlushBounds here flushes the dispatch slot — the window-opener, exactly
// the role the bounds value plays in v1 — and FlushProbe keeps its v1
// meaning, so the corpus's control variants carry over unchanged.
func SpectreV2With(p SpectreParams) (*isa.Program, error) {
	if err := p.ValidateBTB(); err != nil {
		return nil, err
	}
	shift := int64(bits.TrailingZeros(uint(p.ProbeStride)))
	region := int64(p.ProbeLines * p.ProbeStride)
	const (
		rVal     = 4  // TLB warm / straggler drain scratch
		rRound   = 10 // training round counter
		rLimit   = 11 //
		rTgt     = 12 // victim: loaded dispatch target
		rSecPtr  = 13 // gadget: &A[a]
		rSec     = 14 // gadget: A[a]
		rJunk    = 16 // gadget: transmitted value
		rTen     = 18 // divide-chain constant
		rTmp     = 19 // emitLateCopy scratch
		rA       = 20 // &A
		rB       = 21 // &B
		rRes     = 22 // &results
		rSlotPtr = 23 // &dispatch slot
		rGad     = 25 // gadget entry index
		rBen     = 26 // benign entry index
		rTgt2    = 27 // victim: delayed dispatch target
		rLink    = 30 // return address
	)
	b := isa.NewBuilder("spectre-v2")
	// Victim data: A[0..9] = 0, the secret byte at A+offset.
	b.Data(SpectreABase, make([]byte, 10))
	b.Data(SpectreABase+SpectreSecretOffset, []byte{p.Secret})

	b.Li(rA, SpectreABase).
		Li(rB, SpectreBBase).
		Li(rRes, SpectreResultsBase).
		Li(rSlotPtr, SpectreSlotAddr).
		Li(rTen, 10)

	// Point the dispatch slot at the gadget and the access pointer at the
	// in-bounds byte A[0], then train: every call dispatches through the
	// slot and the BTB learns the gadget as the indirect target.
	b.LiLabel(rGad, "v2_gadget").
		St(8, rSlotPtr, 0, rGad).
		Fence().
		Li(rSecPtr, SpectreABase).
		Li(rRound, uint64(p.TrainRounds))
	b.Label("train").
		Call(rLink, "v2_victim").
		AddI(rRound, rRound, -1).
		Bne(rRound, 0, "train")

	// Re-point the slot at the benign target. The BTB still predicts the
	// gadget: the victim's dispatch is only retrained at resolution, one
	// attack call from now.
	b.LiLabel(rBen, "v2_benign").
		St(8, rSlotPtr, 0, rBen).
		Fence()

	// Warm the probe pages' D-TLB entries, drain wrong-path stragglers
	// from the mispredicted training-loop exit, then flush the attack
	// state (see SpectreV1With for both idioms).
	for pg := int64(0); pg < region; pg += isa.PageSize {
		b.Ld(1, rVal, rB, pg)
	}
	b.Li(rLimit, 0x190000).
		Fence().
		Ld(8, rVal, rLimit, 0).
		AndI(rVal, rVal, 0).
		Add(rLimit, rLimit, rVal).
		Ld(8, rVal, rLimit, 4096).
		Fence()
	if p.FlushBounds {
		b.Flush(rSlotPtr, 0)
	}
	if p.FlushProbe {
		emitProbeFlush(b, rB, region)
	}
	b.Fence()

	// The attack call: the access pointer now names the secret byte and
	// the dispatch load goes to DRAM, so the BTB-predicted gadget has a
	// ~190-cycle transient window.
	b.Li(rSecPtr, SpectreABase+SpectreSecretOffset).
		Call(rLink, "v2_victim").
		Fence()
	emitProbeScan(b, p.ProbeLines, 0, shift)
	b.Halt()

	// victim(): (*slot)() — load the dispatch target and jump through it.
	// The delayed copy keeps the indirect jump unresolved well past the
	// gadget's cold secret load even though the chain itself is cheap.
	b.Label("v2_victim").
		Ld(8, rTgt, rSlotPtr, 0)
	emitLateCopy(b, rTgt2, rTgt, rTmp, rTen)
	b.JmpI(rTgt2)

	// gadget: junk = B[stride * A[a]] — the v1 gadget body behind an
	// indirect dispatch instead of a bounds check.
	b.Label("v2_gadget")
	if p.Annotate {
		b.LdSafe(1, rSec, rSecPtr, 0). // the access instruction
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						LdSafe(1, rJunk, rBPtr2, 0) // the transmit instruction
	} else {
		b.Ld(1, rSec, rSecPtr, 0). // the access instruction
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						Ld(1, rJunk, rBPtr2, 0) // the transmit instruction
	}
	b.Ret(rLink)
	b.Label("v2_benign").
		Ret(rLink)
	return b.Build()
}

// SpectreRSBWith assembles the return-based (RSB/ret2spec) attack: the
// program dives TrainRounds nested calls deep, and the innermost frame
// returns through a return address loaded from a flushed memory slot
// instead of its link register. The RAS — pushed by the call chain —
// predicts a return to the instruction after the innermost call, where
// the attacker has placed the secret-reading gadget; the actual return
// target is a benign landing pad that jumps straight to the timing scan.
// While the slot load crawls back from DRAM the gadget runs transiently,
// exactly the deep CALL/RET + RAS-checkpoint machinery PR 5 stressed.
//
// No training phase exists (the RAS mispredicts on the first attack);
// TrainRounds doubles as the nesting depth, giving the fuzzer a
// class-meaningful axis. FlushBounds flushes the return slot (the
// window-opener), FlushProbe keeps its v1 meaning.
func SpectreRSBWith(p SpectreParams) (*isa.Program, error) {
	if err := p.ValidateRSB(); err != nil {
		return nil, err
	}
	depth := p.TrainRounds
	shift := int64(bits.TrailingZeros(uint(p.ProbeStride)))
	region := int64(p.ProbeLines * p.ProbeStride)
	const (
		rVal     = 4  // TLB warm scratch
		rLand    = 9  // landing-pad index
		rRet     = 12 // victim: loaded return target
		rRet2    = 13 // victim: delayed return target
		rSecPtr  = 14 // gadget: &secret
		rSec     = 16 // gadget: secret byte
		rTen     = 18 // divide-chain constant
		rTmp     = 19 // emitLateCopy scratch
		rA       = 20 // &A
		rB       = 21 // &B
		rRes     = 22 // &results
		rSlotPtr = 23 // &return slot
		rJunk    = 10 // gadget: transmitted value
	)
	// Per-frame link registers; depth is capped at len(links).
	links := []uint8{25, 26, 27, 28, 29, 30, 1, 2}

	b := isa.NewBuilder("spectre-rsb")
	b.Data(SpectreABase, make([]byte, 10))
	b.Data(SpectreABase+SpectreSecretOffset, []byte{p.Secret})

	b.Li(rA, SpectreABase).
		Li(rB, SpectreBBase).
		Li(rRes, SpectreResultsBase).
		Li(rSlotPtr, SpectreSlotAddr).
		Li(rTen, 10)

	// Aim the return slot at the landing pad.
	b.LiLabel(rLand, "rsb_landing").
		St(8, rSlotPtr, 0, rLand).
		Fence()

	// Warm the probe pages' D-TLB entries plus the secret's page (v1's
	// training loop warms the latter as a side effect; here nothing else
	// touches A's page before the transient access).
	for pg := int64(0); pg < region; pg += isa.PageSize {
		b.Ld(1, rVal, rB, pg)
	}
	b.Ld(1, rVal, rA, 0).
		Fence()
	if p.FlushBounds {
		b.Flush(rSlotPtr, 0)
	}
	if p.FlushProbe {
		emitProbeFlush(b, rB, region)
	}
	b.Fence()

	// Dive into the call chain. The instruction after the innermost call
	// is what the RAS will predict the victim's return to — the gadget.
	b.Li(rSecPtr, SpectreABase+SpectreSecretOffset).
		Call(links[0], "rsb_f1")
	if depth == 1 {
		emitRSBGadget(b, p, rSecPtr, rSec, rJunk, shift)
	}
	b.Label("rsb_after").
		Fence()
	emitProbeScan(b, p.ProbeLines, 0, shift)
	b.Halt()

	for i := 1; i < depth; i++ {
		b.Label(fmt.Sprintf("rsb_f%d", i)).
			Call(links[i], fmt.Sprintf("rsb_f%d", i+1))
		if i == depth-1 {
			emitRSBGadget(b, p, rSecPtr, rSec, rJunk, shift)
		}
		// Architecturally dead (the landing pad exits the whole chain in
		// one jump), but keeps the fall-through path well-formed.
		b.Ret(links[i])
	}

	// The victim frame: return through the flushed slot. The RAS top
	// still names the gadget; the delayed copy keeps the return
	// unresolved past the gadget's cold secret load.
	b.Label(fmt.Sprintf("rsb_f%d", depth)).
		Ld(8, rRet, rSlotPtr, 0)
	emitLateCopy(b, rRet2, rRet, rTmp, rTen)
	b.Ret(rRet2)

	// The landing pad: a direct (never-mispredicted) jump over every
	// stale frame straight to the scan. The leftover RAS entries are
	// never consulted again.
	b.Label("rsb_landing").
		Jmp("rsb_after")
	return b.Build()
}

// emitRSBGadget emits the transient gadget at a predicted-return site:
// read the secret, touch the secret-indexed probe line.
func emitRSBGadget(b *isa.Builder, p SpectreParams, rSecPtr, rSec, rJunk uint8, shift int64) {
	const rB = 21
	if p.Annotate {
		b.LdSafe(1, rSec, rSecPtr, 0). // the access instruction
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						LdSafe(1, rJunk, rBPtr2, 0) // the transmit instruction
	} else {
		b.Ld(1, rSec, rSecPtr, 0). // the access instruction
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						Ld(1, rJunk, rBPtr2, 0) // the transmit instruction
	}
}

// SSBWith assembles the speculative store bypass attack (Spectre v4):
// each round stores zero over a secret-seeded slot line through an
// address that hangs off a divide chain, then immediately loads the same
// slot. The LSQ lets the load issue past the older store while the
// store's address is still unresolved, so the load reads the STALE
// secret and the dependent transmit touches the secret-indexed probe
// line. When the store's address resolves, the alias is detected and the
// load replays with the forwarded zero — but on an undefended machine
// the transmit's fill is already in flight and installs. There is no
// branch anywhere in the window, so branch-scoped defenses (fences after
// branches, IS-Spectre's unresolved-branch test, the block-boundary
// stall) never engage: the class separates the Spectre threat model from
// the Futuristic one on the store-queue axis, exactly as Meltdown does
// on the exception axis.
//
// The replayed load architecturally re-touches probe line 0 (the
// forwarded zero), so the scan skips line 0 and plants the cold sentinel
// in its result slot; Validate already requires a nonzero secret.
func SSBWith(p SpectreParams) (*isa.Program, error) {
	if err := p.ValidateSSB(); err != nil {
		return nil, err
	}
	rounds := p.TrainRounds
	shift := int64(bits.TrailingZeros(uint(p.ProbeStride)))
	region := int64(p.ProbeLines * p.ProbeStride)
	const (
		rVal  = 4  // TLB warm scratch
		rAddr = 12 // store address (late)
		rSec  = 14 // bypassing load's value
		rJunk = 16 // transmitted value
		rTen  = 18 // divide-chain constant
		rTmp  = 19 // late-zero scratch
		rB    = 21 // &B
		rRes  = 22 // &results
		rSlot = 23 // &slot line of the current round
	)
	b := isa.NewBuilder("ssb")
	// One slot line per round, each seeded with the secret byte.
	slots := make([]byte, (rounds-1)*64+1)
	for r := 0; r < rounds; r++ {
		slots[r*64] = p.Secret
	}
	b.Data(SSBSlotBase, slots)

	b.Li(rB, SpectreBBase).
		Li(rRes, SpectreResultsBase).
		Li(rTen, 10)

	// Warm the probe pages' D-TLB entries and the slot lines themselves:
	// the bypassing load must HIT so it performs (with the stale secret)
	// long before the store's address resolves.
	for pg := int64(0); pg < region; pg += isa.PageSize {
		b.Ld(1, rVal, rB, pg)
	}
	b.Li(rSlot, SSBSlotBase)
	for r := 0; r < rounds; r++ {
		b.Ld(1, rVal, rSlot, int64(r*64))
	}
	b.Fence()
	if p.FlushProbe {
		emitProbeFlush(b, rB, region)
	}
	b.Fence()

	for r := 0; r < rounds; r++ {
		// The store's address is the slot plus a late zero: architecturally
		// the slot itself, but unresolved for ~36 cycles.
		b.Li(rTmp, 6400).
			Div(rTmp, rTmp, rTen).
			Div(rTmp, rTmp, rTen).
			Div(rTmp, rTmp, rTen). // 6, three serialized 12-cycle divides late
			AndI(rTmp, rTmp, 0).   // 0, late
			Li(rSlot, uint64(SSBSlotBase+r*64)).
			Add(rAddr, rSlot, rTmp).
			St(1, rAddr, 0, 0).    // store zero (r0 is never written) over the secret
			Ld(1, rSec, rSlot, 0). // bypasses the unresolved store: stale secret
			ShlI(rSec, rSec, shift).
			Add(rBPtr2, rB, rSec).
			Ld(1, rJunk, rBPtr2, 0) // the transmit instruction
	}
	b.Fence()
	emitProbeScan(b, p.ProbeLines, 1, shift)
	b.Halt()
	return b.Build()
}

// LLCSBContendWith assembles the two-program pair targeting the LLC
// speculative buffer: progs[0] is the victim (core 0), progs[1] the
// purely passive observer (core 1). Unlike the cross-thread Spectre
// placement, the observer never reaches into the victim's inputs — it
// flushes the shared state exactly once, hands the victim a go signal,
// and then only times its own probe loads. The victim autonomously runs
// one out-of-bounds gadget call whose transient transmit issues a BURST
// of loads to the secret-indexed line (distinct load-queue entries, so
// under InvisiSpec several LLC-SB fills and the Spec-GetS bounce path
// are exercised in one window). On Base the squashed demand fills still
// install in the shared LLC and the observer's probe of the secret line
// is an LLC hit; under InvisiSpec every fill is confined to the victim's
// per-core LLC-SB (§VI-E1) and must remain invisible — any hot line the
// observer sees is speculative-buffer residue that escaped.
func LLCSBContendWith(p SpectreParams) ([]*isa.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	victim, err := llcsbVictim(p)
	if err != nil {
		return nil, err
	}
	observer, err := llcsbObserver(p)
	if err != nil {
		return nil, err
	}
	return []*isa.Program{victim, observer}, nil
}

// llcsbVictim emits the autonomous victim: train the bounds-check
// branch, signal readiness, wait for the observer's go, run the burst
// gadget once with the out-of-bounds index, and signal completion.
// Register 0 stays zero throughout and serves as the comparand of the
// spin branches.
func llcsbVictim(p SpectreParams) (*isa.Program, error) {
	const (
		rArg    = 1
		rOne    = 3
		rFlag   = 4
		rRound  = 10
		rLimit  = 11
		rBnd    = 12
		rSecPtr = 13
		rSec    = 14
		rJunk   = 16
		rTch    = 18 // burst: zero hanging off the secret
		rBPtr3  = 19 // burst: re-touch address
		rA      = 20
		rB      = 21
		rBndPtr = 23
		rTrn    = 24
		rGo     = 26
		rRdy    = 27
		rLink   = 30
	)
	shift := int64(bits.TrailingZeros(uint(p.ProbeStride)))
	b := isa.NewBuilder("llcsb-victim")
	// Victim data: A[0..9] = 0, the secret byte at A+offset, bounds = 10.
	b.Data(SpectreABase, make([]byte, 10))
	b.Data(SpectreABase+SpectreSecretOffset, []byte{p.Secret})
	b.DataU64(SpectreBoundsAddr, 10)

	b.Li(rA, SpectreABase).
		Li(rB, SpectreBBase).
		Li(rBndPtr, SpectreBoundsAddr).
		Li(rTrn, llcsbCtrlTrained).
		Li(rGo, llcsbCtrlGo).
		Li(rRdy, llcsbCtrlRdy).
		Li(rOne, 1)

	// Train the bounds-check branch over the valid indices.
	b.Li(rRound, uint64(p.TrainRounds))
	b.Label("train_outer").
		Li(rArg, 0)
	b.Label("train_inner").
		Call(rLink, "victim").
		AddI(rArg, rArg, 1).
		Li(rLimit, 10).
		Blt(rArg, rLimit, "train_inner").
		AddI(rRound, rRound, -1).
		Bne(rRound, 0, "train_outer")

	// Warm this core's D-TLB entries for the probe pages (the victim's B
	// is a live data structure it has touched; see crossThreadVictim).
	for pg := int64(0); pg < int64(p.ProbeLines*p.ProbeStride); pg += isa.PageSize {
		b.Ld(1, rJunk, rB, pg)
	}

	// Signal the observer, then spin until it has flushed the shared
	// state. The fence keeps the gadget's loads off the not-yet-resolved
	// spin-exit path.
	b.Fence().
		St(8, rTrn, 0, rOne)
	b.Label("wait_go").
		Ld(8, rFlag, rGo, 0).
		Beq(rFlag, 0, "wait_go").
		Fence()

	// The attack call: the out-of-bounds index is the victim's own — no
	// external input steers it.
	b.Li(rArg, SpectreSecretOffset).
		Call(rLink, "victim").
		Fence().
		St(8, rRdy, 0, rOne).
		Halt()

	// victim(a): if (a < bounds) { junk = B[stride*A[a]] x3 } — the v1
	// gadget with two extra same-line touches. Their addresses hang off
	// the SECRET (not the transmit's value), so all three issue inside
	// the window as separate load-queue entries.
	b.Label("victim").
		Ld(8, rBnd, rBndPtr, 0). // bounds load: slow when flushed
		Div(rBnd, rBnd, rBnd).   // dependent chain delays resolution
		AddI(rBnd, rBnd, 9).     // 10
		Div(rBnd, rBnd, rBnd).   // 1 (another 12 cycles)
		ShlI(rBnd, rBnd, 1).
		ShlI(rBnd, rBnd, 2).
		AddI(rBnd, rBnd, 2). // rBnd = 10 again
		Bge(rArg, rBnd, "victim_ret").
		Add(rSecPtr, rA, rArg)
	if p.Annotate {
		b.LdSafe(1, rSec, rSecPtr, 0). // the access instruction
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						LdSafe(1, rJunk, rBPtr2, 0) // the transmit instruction
	} else {
		b.Ld(1, rSec, rSecPtr, 0). // the access instruction
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						Ld(1, rJunk, rBPtr2, 0) // the transmit instruction
	}
	b.AndI(rTch, rSec, 0). // 0, available with the secret
				Add(rBPtr3, rBPtr2, rTch).
				Ld(1, rTch, rBPtr3, 0). // burst touch 2
				Ld(1, rTch, rBPtr3, 0)  // burst touch 3
	b.Label("victim_ret").
		Ret(rLink)
	return b.Build()
}

// llcsbObserver emits the passive observer: warm its own probe-page TLB
// entries, wait for training to finish, flush the shared state once
// (bounds to widen the victim's window, probe residue so the scan starts
// cold), signal go, and time a descending probe scan once the victim's
// gadget call has retired.
func llcsbObserver(p SpectreParams) (*isa.Program, error) {
	const (
		rFlag   = 2
		rVal    = 4
		rOne    = 9
		rB      = 21
		rRes    = 22
		rBndPtr = 23
		rTrn    = 25
		rGo     = 26
		rRdy    = 27
	)
	shift := int64(bits.TrailingZeros(uint(p.ProbeStride)))
	region := int64(p.ProbeLines * p.ProbeStride)
	b := isa.NewBuilder("llcsb-observer")
	b.Li(rB, SpectreBBase).
		Li(rRes, SpectreResultsBase).
		Li(rBndPtr, SpectreBoundsAddr).
		Li(rTrn, llcsbCtrlTrained).
		Li(rGo, llcsbCtrlGo).
		Li(rRdy, llcsbCtrlRdy).
		Li(rOne, 1)

	// Warm this core's D-TLB entries for the probe pages.
	for pg := int64(0); pg < region; pg += isa.PageSize {
		b.Ld(1, rVal, rB, pg)
	}

	// Wait for training, then perform the single flush of shared state —
	// the observer's only write into the experiment.
	b.Label("wait_trained").
		Ld(8, rFlag, rTrn, 0).
		Beq(rFlag, 0, "wait_trained").
		Fence()
	if p.FlushBounds {
		b.Flush(rBndPtr, 0)
	}
	if p.FlushProbe {
		emitProbeFlush(b, rB, region)
	}
	b.Fence().
		St(8, rGo, 0, rOne)

	// Wait for the gadget call to retire on the victim core, then scan.
	b.Label("wait_rdy").
		Ld(8, rFlag, rRdy, 0).
		Beq(rFlag, 0, "wait_rdy").
		Fence()
	emitProbeScan(b, p.ProbeLines, 0, shift)
	b.Halt()
	return b.Build()
}
