package workload

import "invisispec/internal/isa"

// PRIME+PROBE in the paper's CrossCore setting (§III-C): the attacker runs
// on another core and monitors the shared LLC's occupancy. The victim
// transiently accesses one target line behind a mispredicted (cold,
// slow-resolving) branch; on an insecure machine the squashed load's fill
// still evicts one of the attacker's primed lines from the target LLC set,
// and the attacker's timed re-probe detects it. Under InvisiSpec the
// Spec-GetS leaves the LLC (occupancy AND replacement state) untouched.

// Memory layout. The machine has 2 banks (2 cores) x 2048 sets x 16 ways;
// lines 256 KiB apart share both bank and set.
const (
	ppSetStride = 2 * 2048 * 64 // bank count * sets * line
	// PPTargetAddr is the victim's transiently accessed line.
	PPTargetAddr = 0x4000000 + 1000*64 // set 1000, away from code/flag sets
	// PPWays is the number of lines the attacker primes (LLC associativity).
	PPWays = 16
	// ppCondAddr feeds the victim's branch (kept cold so it resolves late).
	ppCondAddr = 0x7000040
	// ppDummyBase anchors the warm-up probe pass: same stride pattern,
	// different LLC set (harmless), same code — so the probe loop's
	// I-lines and branch history are hot before the timed pass.
	ppDummyBase = PPTargetAddr + 32*64 // set 1032
	// Synchronisation flags and the attacker's result area.
	ppFlagPrimeDone  = 0x7100000
	ppFlagVictimDone = 0x7200000
	// PPResultsBase receives the warm-up pass latencies; the timed pass
	// lands PPWays*8 bytes later (see PPProbeLatencies).
	PPResultsBase = 0x7300000
)

// ppPrimeAddr returns the attacker's i-th priming line (same LLC set as the
// target).
func ppPrimeAddr(i int) uint64 { return PPTargetAddr + uint64(i+1)*ppSetStride }

// PrimeProbeVictim builds the victim program (core 0).
func PrimeProbeVictim() *isa.Program {
	const (
		rFlag = 1
		rCond = 2
		rT    = 3
		rJunk = 4
		rDone = 5
		rOne  = 6
	)
	b := isa.NewBuilder("pp-victim")
	b.Li(rFlag, ppFlagPrimeDone).
		Li(rT, PPTargetAddr).
		Li(rDone, ppFlagVictimDone).
		Li(rOne, 1).
		Label("wait"). // wait for the attacker to finish priming
		Ld(8, rCond, rFlag, 0).
		Beq(rCond, 0, "wait").
		Fence().
		// The branch condition comes from a cold line through a divide
		// chain, so it resolves long after the transient body issues.
		Li(rCond, ppCondAddr).
		Ld(8, rCond, rCond, 0). // 0 (cold miss)
		Div(rCond, rOne, rOne). // rCond = 1, slowly...
		Li(rCond, ppCondAddr).
		Ld(8, rCond, rCond, 8). // 0, another cold-ish access
		AddI(rCond, rCond, 1).  // 1: the branch below is TAKEN...
		Bne(rCond, 0, "skip").  // ...but a cold predictor says not-taken
		Ld(1, rJunk, rT, 0).    // transient: fills the target LLC set on Base
		Label("skip").
		Fence().
		St(8, rDone, 0, rOne).
		Halt()
	return b.MustBuild()
}

// PrimeProbeAttacker builds the attacker program (core 1): prime the set,
// signal, wait, then probe each primed line with serialized timed loads.
// The probe loop runs twice: a warm-up pass over a harmless set (hot
// I-lines, trained loop branch) and then the timed pass over the primed
// set, so instruction fetches never land inside a timed window.
func PrimeProbeAttacker() *isa.Program {
	const (
		rPtr    = 1
		rVal    = 2
		rFlag   = 3
		rOne    = 4
		rT0     = 5
		rT1     = 6
		rDelta  = 7
		rRes    = 8
		rDone   = 9
		rIdx    = 10
		rBase   = 11
		rStride = 12
		rPass   = 13
		rLimit  = 14
		rTwo    = 15
	)
	b := isa.NewBuilder("pp-attacker")
	b.Li(rOne, 1).
		Li(rFlag, ppFlagPrimeDone).
		Li(rDone, ppFlagVictimDone)
	// Prime: load every way of the target set (twice, so the set is owned
	// in a stable LRU order and the L1-evicted copies are settled).
	for round := 0; round < 2; round++ {
		for i := 0; i < PPWays; i++ {
			b.Li(rPtr, ppPrimeAddr(i)).
				Ld(8, rVal, rPtr, 0)
		}
	}
	b.Fence().
		St(8, rFlag, 0, rOne). // priming done
		Label("wait").
		Ld(8, rVal, rDone, 0).
		Beq(rVal, 0, "wait").
		Fence()
	// Two probe passes: pass 0 = warm-up (dummy set), pass 1 = timed.
	b.Li(rPass, 0).
		Li(rTwo, 2).
		Li(rStride, ppSetStride).
		Li(rLimit, PPWays)
	b.Label("pass").
		Li(rBase, ppDummyBase).
		Beq(rPass, 0, "basedone").
		Li(rBase, PPTargetAddr)
	b.Label("basedone").
		ShlI(rRes, rPass, 7). // 128 bytes of results per pass
		AddI(rRes, rRes, PPResultsBase).
		Li(rIdx, 0).
		// Drain the previous pass completely, then anchor the timing
		// chain on a post-fence (L1-hot) load so no earlier in-flight
		// work can land inside a timed window.
		Fence().
		Ld(8, rVal, rFlag, 0)
	b.Label("probe").
		AndI(rDelta, rVal, 0). // depend on the previous probe
		AddI(rPtr, rIdx, 1).
		Mul(rPtr, rPtr, rStride).
		Add(rPtr, rPtr, rBase).
		Add(rPtr, rPtr, rDelta).
		Cycle(rT0, rPtr).
		Ld(8, rVal, rPtr, 0).
		Cycle(rT1, rVal).
		Sub(rDelta, rT1, rT0).
		ShlI(rT0, rIdx, 3).
		Add(rT0, rT0, rRes).
		St(8, rT0, 0, rDelta).
		AddI(rIdx, rIdx, 1).
		Blt(rIdx, rLimit, "probe").
		AddI(rPass, rPass, 1).
		Blt(rPass, rTwo, "pass").
		Halt()
	return b.MustBuild()
}

// PPProbeLatencies extracts the attacker's timed-pass measurements.
func PPProbeLatencies(mem *isa.Memory) [PPWays]uint64 {
	var out [PPWays]uint64
	for i := range out {
		out[i] = mem.Read(PPResultsBase+128+uint64(8*i), 8)
	}
	return out
}

// PPSlowProbes counts probes that went to DRAM (evicted primed lines).
func PPSlowProbes(mem *isa.Memory) int {
	n := 0
	for _, l := range PPProbeLatencies(mem) {
		if l > 60 {
			n++
		}
	}
	return n
}

// PPEvictionDetected reports whether the victim's transient fill displaced
// primed lines: the single fill starts an eviction cascade through the
// remaining probes, so several probes go slow. One slow probe is tolerated
// as attacker-intrinsic noise (a TLB walk can land in a probe window).
func PPEvictionDetected(mem *isa.Memory) bool { return PPSlowProbes(mem) >= 2 }
