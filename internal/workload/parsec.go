package workload

import (
	"fmt"

	"invisispec/internal/isa"
)

// ParsecKind selects a multi-threaded kernel template.
type ParsecKind int

// Kernel templates.
const (
	// KindDataParallel: each core sweeps a private region with a compute
	// chain, optionally reading a shared read-only region (S-state
	// sharing).
	KindDataParallel ParsecKind = iota
	// KindLocks: cores contend on ticket locks protecting shared counters
	// (invalidation-heavy, the coherence behaviour §V targets).
	KindLocks
	// KindPipeline: a producer→...→consumer chain over shared ring
	// buffers with acquire/release synchronisation.
	KindPipeline
)

// ParsecProfile parameterises one PARSEC-like kernel.
type ParsecProfile struct {
	Name         string
	Kind         ParsecKind
	PrivateSet   int // bytes per core (data-parallel template)
	SharedSet    int // bytes of shared region
	ComputeDepth int
	StoreRatio   float64
	LockCount    int
}

var parsecProfiles = []ParsecProfile{
	{Name: "blackscholes", Kind: KindDataParallel, PrivateSet: 8 << 10, SharedSet: 0, ComputeDepth: 10, StoreRatio: 0.25},
	{Name: "bodytrack", Kind: KindDataParallel, PrivateSet: 8 << 10, SharedSet: 8 << 10, ComputeDepth: 5, StoreRatio: 0.25},
	{Name: "canneal", Kind: KindLocks, SharedSet: 4 << 20, ComputeDepth: 2, LockCount: 16},
	{Name: "facesim", Kind: KindDataParallel, PrivateSet: 16 << 10, SharedSet: 16 << 10, ComputeDepth: 4, StoreRatio: 0.5},
	{Name: "ferret", Kind: KindPipeline, ComputeDepth: 40},
	{Name: "fluidanimate", Kind: KindLocks, SharedSet: 1 << 20, ComputeDepth: 3, LockCount: 64},
	{Name: "freqmine", Kind: KindLocks, SharedSet: 2 << 20, ComputeDepth: 4, LockCount: 32},
	{Name: "swaptions", Kind: KindDataParallel, PrivateSet: 8 << 10, SharedSet: 0, ComputeDepth: 12, StoreRatio: 0.15},
	{Name: "x264", Kind: KindPipeline, ComputeDepth: 30},
}

// PARSECNames returns the nine kernel names in the paper's Figure 7 order.
func PARSECNames() []string {
	names := make([]string, len(parsecProfiles))
	for i, p := range parsecProfiles {
		names[i] = p.Name
	}
	return names
}

// PARSECProfile returns the profile for name.
func PARSECProfile(name string) (ParsecProfile, error) {
	for _, p := range parsecProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	return ParsecProfile{}, fmt.Errorf("workload: unknown PARSEC kernel %q", name)
}

// PARSEC assembles one program per core for the named kernel.
func PARSEC(name string, cores int) ([]*isa.Program, error) {
	p, err := PARSECProfile(name)
	if err != nil {
		return nil, err
	}
	progs := make([]*isa.Program, cores)
	for i := 0; i < cores; i++ {
		switch p.Kind {
		case KindDataParallel:
			progs[i] = buildDataParallel(p, i)
		case KindLocks:
			progs[i] = buildLocks(p, i, cores)
		case KindPipeline:
			progs[i] = buildPipeline(p, i, cores)
		}
	}
	return progs, nil
}

// MustPARSEC is PARSEC that panics on errors.
func MustPARSEC(name string, cores int) []*isa.Program {
	progs, err := PARSEC(name, cores)
	if err != nil {
		panic(err)
	}
	return progs
}

// Shared memory layout for multi-threaded kernels.
const (
	parsecPrivBase   = 0x4000000 // + core * 16 MiB
	parsecPrivStride = 16 << 20
	parsecSharedBase = 0x2000000
	parsecLockBase   = 0x3000000 // 128 B per lock (ticket + serving lines)
	parsecRingBase   = 0x3800000 // per-stage ring buffers
	ringSlots        = 8
)

// buildDataParallel emits core i's slice of an embarrassingly parallel
// kernel.
func buildDataParallel(p ParsecProfile, core int) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("parsec-%s-c%d", p.Name, core))
	priv := uint64(parsecPrivBase + core*parsecPrivStride)
	privMask := uint64(p.PrivateSet - 1)
	b.Li(kRegBase, priv).
		Li(kRegIter, 0).
		Li(kRegIdx, 0).
		Li(kRegAcc, uint64(core)*977+1).
		Li(kRegLCG, uint64(core)*2654435761+12345).
		Li(kRegConst, 6364136223846793005).
		Li(kRegMask, privMask)
	if p.SharedSet > 0 {
		b.Li(24, parsecSharedBase).
			Li(25, uint64(p.SharedSet-1)).
			Li(26, uint64(core*1024)&uint64(p.SharedSet-1))
	}
	b.Label("loop").
		AddI(kRegIter, kRegIter, 1).
		Mul(kRegLCG, kRegLCG, kRegConst).
		AddI(kRegLCG, kRegLCG, 1442695040888963407).
		// Private streaming access.
		AddI(kRegIdx, kRegIdx, 64).
		And(kRegIdx, kRegIdx, kRegMask).
		Add(kRegAddr, kRegBase, kRegIdx).
		Ld(8, kRegVal, kRegAddr, 0).
		Add(kRegAcc, kRegAcc, kRegVal)
	if p.SharedSet > 0 {
		// Shared read-only sweep (S-state sharing across cores; each core
		// starts at its own offset).
		b.AddI(26, 26, 64).
			And(26, 26, 25).
			Add(27, 24, 26).
			Ld(8, 27, 27, 0).
			Xor(kRegAcc, kRegAcc, 27)
	}
	for i := 0; i < p.ComputeDepth; i++ {
		switch i % 3 {
		case 0:
			b.Xor(kRegAcc, kRegAcc, kRegLCG)
		case 1:
			b.ShrI(kRegTmp, kRegAcc, 9).Add(kRegAcc, kRegAcc, kRegTmp)
		default:
			b.Mul(kRegAcc, kRegAcc, kRegConst)
		}
	}
	switch {
	case p.StoreRatio >= 0.33:
		b.St(8, kRegAddr, 8, kRegAcc)
	case p.StoreRatio > 0:
		den := int64(1)
		for float64(1)/float64(den) > p.StoreRatio && den < 64 {
			den *= 2
		}
		b.AndI(kRegTmp2, kRegIter, den-1).
			Bne(kRegTmp2, 0, "nostore").
			St(8, kRegAddr, 8, kRegAcc)
		b.Label("nostore")
	}
	b.Jmp("loop")
	return b.MustBuild()
}

// buildLocks emits core i's loop of a lock-contention kernel: pick a lock
// with an in-register LCG, take it (ticket lock), mutate shared state under
// it, release, and do a little private compute.
func buildLocks(p ParsecProfile, core, cores int) *isa.Program {
	const (
		rTicketPtr = 10
		rServePtr  = 11
		rTicket    = 12
		rServe     = 13
		rOne       = 14
		rCntPtr    = 15
		rShBase    = 16
		rShMask    = 17
	)
	b := isa.NewBuilder(fmt.Sprintf("parsec-%s-c%d", p.Name, core))
	b.Li(kRegLCG, uint64(core)*40503+777).
		Li(kRegConst, 6364136223846793005).
		Li(rOne, 1).
		Li(rShBase, parsecSharedBase).
		Li(rShMask, uint64(p.SharedSet-1)).
		Li(kRegAcc, 0)
	b.Label("loop").
		Mul(kRegLCG, kRegLCG, kRegConst).
		AddI(kRegLCG, kRegLCG, 1442695040888963407).
		// lock = LCG % LockCount (power of two).
		ShrI(kRegTmp, kRegLCG, 27).
		AndI(kRegTmp, kRegTmp, int64(p.LockCount-1)).
		ShlI(kRegTmp, kRegTmp, 7). // 128 B per lock
		Li(rTicketPtr, parsecLockBase).
		Add(rTicketPtr, rTicketPtr, kRegTmp).
		AddI(rServePtr, rTicketPtr, 64).
		// Acquire: my ticket, spin until served.
		RMW(8, rTicket, rTicketPtr, rOne)
	b.Label("spin").
		Ld(8, rServe, rServePtr, 0).
		Bne(rServe, rTicket, "spin").
		Acquire()
	// Critical section: read-modify-write a shared word picked by the
	// lock index (so cores ping-pong the same lines).
	b.ShrI(rCntPtr, kRegLCG, 13).
		And(rCntPtr, rCntPtr, rShMask).
		AndI(rCntPtr, rCntPtr, ^int64(63)). // line-aligned
		Add(rCntPtr, rCntPtr, rShBase).
		Ld(8, kRegVal, rCntPtr, 0).
		AddI(kRegVal, kRegVal, 1).
		St(8, rCntPtr, 0, kRegVal).
		Release().
		// Unlock.
		RMW(8, kRegTmp2, rServePtr, rOne)
	for i := 0; i < p.ComputeDepth; i++ {
		b.Xor(kRegAcc, kRegAcc, kRegLCG).
			Mul(kRegAcc, kRegAcc, kRegConst)
	}
	b.Jmp("loop")
	return b.MustBuild()
}

// buildPipeline emits stage `core` of a producer→consumer pipeline over
// shared ring buffers: stage 0 generates items, the last stage consumes,
// and middle stages transform. Ring i connects stage i to stage i+1.
func buildPipeline(p ParsecProfile, core, cores int) *isa.Program {
	const (
		rInRing  = 10 // ring header base (head at +0, tail at +64)
		rOutRing = 11
		rHead    = 12
		rTail    = 13
		rSlotPtr = 14
		rItem    = 15
		rTmp     = 16
		ringSize = 4096 // header lines + slot lines
	)
	ringBase := func(i int) uint64 { return parsecRingBase + uint64(i)*ringSize }
	b := isa.NewBuilder(fmt.Sprintf("parsec-%s-c%d", p.Name, core))
	b.Li(kRegLCG, uint64(core)*31337+42).
		Li(kRegConst, 6364136223846793005).
		Li(kRegAcc, 0)
	if core > 0 {
		b.Li(rInRing, ringBase(core-1))
	}
	if core < cores-1 {
		b.Li(rOutRing, ringBase(core))
	}
	b.Label("loop")
	// Obtain an item.
	if core == 0 {
		b.Mul(kRegLCG, kRegLCG, kRegConst).
			AddI(kRegLCG, kRegLCG, 1442695040888963407).
			Mov(rItem, kRegLCG)
	} else {
		// Consume: spin while head == tail.
		b.Label("inspin").
			Ld(8, rHead, rInRing, 0).
			Ld(8, rTail, rInRing, 64).
			Beq(rHead, rTail, "inspin").
			Acquire().
			AndI(rTmp, rTail, ringSlots-1).
			ShlI(rTmp, rTmp, 6).
			Add(rSlotPtr, rInRing, rTmp).
			Ld(8, rItem, rSlotPtr, 128). // slots start at +128
			AddI(rTail, rTail, 1).
			Release().
			St(8, rInRing, 64, rTail)
	}
	// Transform.
	for i := 0; i < p.ComputeDepth; i++ {
		b.Mul(rItem, rItem, kRegConst).
			AddI(rItem, rItem, 77)
	}
	b.Add(kRegAcc, kRegAcc, rItem)
	// Pass it on.
	if core < cores-1 {
		b.Label("outspin").
			Ld(8, rHead, rOutRing, 0).
			Ld(8, rTail, rOutRing, 64).
			Sub(rTmp, rHead, rTail).
			Li(kRegTmp, ringSlots).
			Beq(rTmp, kRegTmp, "outspin"). // full
			AndI(rTmp, rHead, ringSlots-1).
			ShlI(rTmp, rTmp, 6).
			Add(rSlotPtr, rOutRing, rTmp).
			St(8, rSlotPtr, 128, rItem).
			Release().
			AddI(rHead, rHead, 1).
			St(8, rOutRing, 0, rHead)
	}
	b.Jmp("loop")
	return b.MustBuild()
}
