package workload

import (
	"math/bits"

	"invisispec/internal/isa"
)

// Cross-thread (SMT-style) Spectre placement: the victim and the attacker
// are separate programs on separate cores sharing the inclusive LLC, the
// CrossThread setting of the paper's attack-settings table. The attacker
// cannot reach into the victim's pipeline, so the roles split along the
// paper's lines: the victim trains its own bounds-check branch and then
// services requests read from a shared mailbox; the attacker flushes the
// shared state, posts an out-of-bounds index, and FLUSH+RELOADs the probe
// array through its own cache hierarchy. On Base the victim's transient
// transmit load installs the secret-indexed line in the shared LLC, so the
// attacker's probe of that line is an LLC hit; under InvisiSpec the
// victim's squashed loads never become visible and every probe goes to
// DRAM.
//
// The handshake uses one cache line per flag so the spin loops contend on
// nothing but the flag they watch:
//
//	ready — victim → attacker: branch training is complete
//	idx   — attacker → victim: the attack index (zero = not posted yet);
//	        doubling as the go-signal keeps the index register-resident
//	        when the gadget runs, so the transient secret load issues
//	        immediately instead of waiting ~30 cycles on a remote mailbox
//	        line — latency that would push the transmit load past the
//	        bounds branch's resolution and close the leak
//	done  — victim → attacker: the gadget call has retired
const (
	SpectreCtrlBase = 0x380000
	spectreCtrlRdy  = SpectreCtrlBase
	spectreCtrlIdx  = SpectreCtrlBase + 128
	spectreCtrlDone = SpectreCtrlBase + 192
)

// SpectreV1CrossThread assembles the two-program cross-thread placement:
// progs[0] is the victim (run it on core 0), progs[1] the attacker. Use a
// 2-core machine, e.g. config.Default(2).
func SpectreV1CrossThread(p SpectreParams) ([]*isa.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	victim, err := crossThreadVictim(p)
	if err != nil {
		return nil, err
	}
	attacker, err := crossThreadAttacker(p)
	if err != nil {
		return nil, err
	}
	return []*isa.Program{victim, attacker}, nil
}

// crossThreadVictim emits the victim program: train the bounds-check
// branch, signal readiness, wait for the attacker's index, run the Figure 1
// gadget once, and signal completion. Register 0 stays zero throughout and
// serves as the comparand of the spin branches.
func crossThreadVictim(p SpectreParams) (*isa.Program, error) {
	const (
		rArg    = 1
		rOne    = 3
		rRound  = 10
		rLimit  = 11
		rBnd    = 12
		rSecPtr = 13
		rSec    = 14
		rJunk   = 16
		rBPtr2  = 17
		rA      = 20
		rB      = 21
		rBndPtr = 23
		rRdy    = 24
		rIdx    = 26
		rDone   = 27
		rLink   = 30
	)
	shift := int64(bits.TrailingZeros(uint(p.ProbeStride)))
	b := isa.NewBuilder("spectre-v1-cross-victim")
	// Victim data: A[0..9] = 0, the secret byte at A+offset, bounds = 10.
	b.Data(SpectreABase, make([]byte, 10))
	b.Data(SpectreABase+SpectreSecretOffset, []byte{p.Secret})
	b.DataU64(SpectreBoundsAddr, 10)

	b.Li(rA, SpectreABase).
		Li(rB, SpectreBBase).
		Li(rBndPtr, SpectreBoundsAddr).
		Li(rRdy, spectreCtrlRdy).
		Li(rIdx, spectreCtrlIdx).
		Li(rDone, spectreCtrlDone).
		Li(rOne, 1)

	// Train the bounds-check branch over the valid indices.
	b.Li(rRound, uint64(p.TrainRounds))
	b.Label("train_outer").
		Li(rArg, 0)
	b.Label("train_inner").
		Call(rLink, "victim").
		AddI(rArg, rArg, 1).
		Li(rLimit, 10).
		Blt(rArg, rLimit, "train_inner").
		AddI(rRound, rRound, -1).
		Bne(rRound, 0, "train_outer")

	// Warm this core's D-TLB entries for the probe pages (one line per
	// page). An SMT attacker shares the victim's D-TLB; across cores the
	// victim must have touched its own probe array — as a real victim
	// whose B is a live data structure would have — or the gadget's
	// transient transmit stalls 40 cycles on a page walk and the bounds
	// branch resolves first. The attacker's flush below evicts these
	// lines from every cache but leaves the TLB entries in place.
	for pg := int64(0); pg < int64(p.ProbeLines*p.ProbeStride); pg += isa.PageSize {
		b.Ld(1, rJunk, rB, pg)
	}

	// Tell the attacker training is done, then spin until the attack index
	// is posted. The spin load itself leaves the index in rArg, so the
	// gadget's transient chain starts with zero added latency. The fence
	// after the spin keeps the gadget's loads from issuing transiently
	// down the not-yet-resolved spin-exit path (with a stale zero index),
	// which would warm probe line 0 and corrupt the attacker's scan.
	b.Fence().
		St(8, rRdy, 0, rOne)
	b.Label("wait_idx").
		Ld(8, rArg, rIdx, 0).
		Beq(rArg, 0, "wait_idx").
		Fence()

	// The attack call: the gadget runs once with the attacker's index.
	b.Call(rLink, "victim").
		Fence().
		St(8, rDone, 0, rOne).
		Halt()

	// victim(a): if (a < bounds) junk = B[stride * A[a]] — Figure 1.
	b.Label("victim").
		Ld(8, rBnd, rBndPtr, 0). // bounds load: slow when flushed
		Div(rBnd, rBnd, rBnd).   // dependent chain delays resolution
		AddI(rBnd, rBnd, 9).     // 10
		Div(rBnd, rBnd, rBnd).   // 1 (another 12 cycles)
		ShlI(rBnd, rBnd, 1).
		ShlI(rBnd, rBnd, 2).
		AddI(rBnd, rBnd, 2). // rBnd = 10 again
		Bge(rArg, rBnd, "victim_ret").
		Add(rSecPtr, rA, rArg)
	if p.Annotate {
		b.LdSafe(1, rSec, rSecPtr, 0). // the access instruction
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						LdSafe(1, rJunk, rBPtr2, 0) // the transmit instruction
	} else {
		b.Ld(1, rSec, rSecPtr, 0). // the access instruction
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						Ld(1, rJunk, rBPtr2, 0) // the transmit instruction
	}
	b.Label("victim_ret").
		Ret(rLink)
	return b.Build()
}

// crossThreadAttacker emits the attacker program: warm the probe pages'
// TLB entries, wait for the victim to finish training, flush the shared
// state (OpFlush invalidates every cache in the system, like clflush),
// post the out-of-bounds index, and time a descending scan of the probe
// lines once the victim signals the gadget has retired.
func crossThreadAttacker(p SpectreParams) (*isa.Program, error) {
	const (
		rFlag   = 2
		rT0     = 3
		rVal    = 4
		rT1     = 5
		rDelta  = 6
		rResPtr = 7
		rIdx    = 8
		rLimit  = 11
		rBPtr   = 15
		rB      = 21
		rRes    = 22
		rBndPtr = 23
		rRdy    = 24
		rIdxP   = 26
		rDone   = 27
		rArg    = 28
	)
	shift := int64(bits.TrailingZeros(uint(p.ProbeStride)))
	region := int64(p.ProbeLines * p.ProbeStride)
	b := isa.NewBuilder("spectre-v1-cross-attacker")
	b.Li(rB, SpectreBBase).
		Li(rRes, SpectreResultsBase).
		Li(rBndPtr, SpectreBoundsAddr).
		Li(rRdy, spectreCtrlRdy).
		Li(rIdxP, spectreCtrlIdx).
		Li(rDone, spectreCtrlDone)

	// Warm this core's D-TLB entries for the probe pages so the timed
	// probes pay cache latency, not page walks.
	for pg := int64(0); pg < region; pg += isa.PageSize {
		b.Ld(1, rVal, rB, pg)
	}

	// Wait for the victim's training to finish, then flush the state the
	// attack depends on out of EVERY cache: the bounds (to widen the
	// victim's speculation window) and all probe-array residue — B[0] from
	// the victim's training, this core's page-warming lines, and their
	// next-line prefetches.
	b.Label("wait_ready").
		Ld(8, rFlag, rRdy, 0).
		Beq(rFlag, 0, "wait_ready").
		Fence()
	if p.FlushBounds {
		b.Flush(rBndPtr, 0)
	}
	if p.FlushProbe {
		b.Flush(rB, 0)
		for pg := int64(0); pg < region; pg += isa.PageSize {
			for d := int64(0); d <= 4; d++ {
				b.Flush(rB, pg+64*d)
			}
		}
	}
	b.Fence()

	// Post the out-of-bounds index; a non-zero mailbox value IS the go
	// signal, so no separate flag store is needed.
	b.Li(rArg, SpectreSecretOffset).
		St(8, rIdxP, 0, rArg)

	// Wait for the gadget call to retire on the victim core. The fence
	// keeps the timed probes from issuing transiently while the spin-exit
	// branch is still unresolved.
	b.Label("wait_done").
		Ld(8, rFlag, rDone, 0).
		Beq(rFlag, 0, "wait_done").
		Fence()

	// FLUSH+RELOAD scan, identical to the same-thread attacker: serialized
	// probes in descending line order (see SpectreV1With).
	const rShuf = 19
	b.Li(rIdx, 0).
		Li(rVal, 0)
	b.Label("scan").
		Li(rShuf, uint64(p.ProbeLines-1)).
		Sub(rShuf, rShuf, rIdx). // descending probe index
		AndI(rDelta, rVal, 0).   // 0, but depends on the previous probe
		ShlI(rBPtr, rShuf, shift).
		Add(rBPtr, rBPtr, rB).
		Add(rBPtr, rBPtr, rDelta).
		Cycle(rT0, rBPtr).     // t0, ordered after the address
		Ld(1, rVal, rBPtr, 0). //
		Cycle(rT1, rVal).      // t1, ordered after the loaded value
		Sub(rDelta, rT1, rT0).
		ShlI(rResPtr, rShuf, 3).
		Add(rResPtr, rResPtr, rRes).
		St(8, rResPtr, 0, rDelta).
		AddI(rIdx, rIdx, 1).
		Li(rLimit, uint64(p.ProbeLines)).
		Blt(rIdx, rLimit, "scan").
		Halt()
	return b.Build()
}
