package workload

import (
	"fmt"
	"math/rand"

	"invisispec/internal/isa"
)

// Pattern selects a kernel's dominant memory access pattern.
type Pattern int

// Access patterns.
const (
	PatternStream  Pattern = iota // unit-stride sweep (libquantum/lbm-like)
	PatternRandom                 // LCG-indexed random accesses (mcf-like)
	PatternChase                  // dependent pointer chasing (mcf/omnetpp-like)
	PatternStencil                // 3-point stencil with stores (zeusmp-like)
	PatternCompute                // register-dominated compute (namd-like)
)

// SpecProfile parameterises one synthetic SPEC2006-like kernel along the
// axes that drive the paper's per-application behaviour: footprint (cache
// MPKI), access pattern, branch entropy (misprediction → squashed-USL
// traffic), TLB pressure (omnetpp's delayed walks), store ratio, and
// compute intensity.
type SpecProfile struct {
	Name          string
	WorkingSet    int // bytes
	Pattern       Pattern
	BranchEntropy float64 // fraction of iterations with a data-dependent branch
	StoreRatio    float64 // fraction of iterations that store
	TLBHeavy      bool    // page-crossing stride to stress the D-TLB
	ComputeDepth  int     // dependent ALU ops per iteration
}

// specProfiles lists the 23 applications of the paper's Figure 4, tuned so
// each lands in the behavioural regime the paper reports (e.g. sjeng-like
// branchy code, libquantum/GemsFDTD-like streaming with ~30 L1 misses per
// kilo-instruction, omnetpp-like TLB pressure).
var specProfiles = []SpecProfile{
	{Name: "bzip2", WorkingSet: 64 << 10, Pattern: PatternRandom, BranchEntropy: 0.35, StoreRatio: 0.3, ComputeDepth: 4},
	{Name: "mcf", WorkingSet: 8 << 20, Pattern: PatternChase, BranchEntropy: 0.25, StoreRatio: 0.1, ComputeDepth: 2},
	{Name: "gobmk", WorkingSet: 32 << 10, Pattern: PatternRandom, BranchEntropy: 0.55, StoreRatio: 0.2, ComputeDepth: 3},
	{Name: "hmmer", WorkingSet: 32 << 10, Pattern: PatternStream, BranchEntropy: 0.05, StoreRatio: 0.3, ComputeDepth: 6},
	{Name: "sjeng", WorkingSet: 32 << 10, Pattern: PatternRandom, BranchEntropy: 0.7, StoreRatio: 0.15, ComputeDepth: 3},
	{Name: "libquantum", WorkingSet: 8 << 20, Pattern: PatternStream, BranchEntropy: 0.02, StoreRatio: 0.4, ComputeDepth: 16},
	{Name: "h264ref", WorkingSet: 64 << 10, Pattern: PatternStream, BranchEntropy: 0.25, StoreRatio: 0.3, ComputeDepth: 5},
	{Name: "omnetpp", WorkingSet: 8 << 20, Pattern: PatternChase, BranchEntropy: 0.3, StoreRatio: 0.2, TLBHeavy: true, ComputeDepth: 2},
	{Name: "astar", WorkingSet: 512 << 10, Pattern: PatternChase, BranchEntropy: 0.4, StoreRatio: 0.15, ComputeDepth: 2},
	{Name: "bwaves", WorkingSet: 8 << 20, Pattern: PatternStream, BranchEntropy: 0.02, StoreRatio: 0.35, ComputeDepth: 14},
	{Name: "gamess", WorkingSet: 32 << 10, Pattern: PatternCompute, BranchEntropy: 0.08, StoreRatio: 0.1, ComputeDepth: 8},
	{Name: "milc", WorkingSet: 1 << 20, Pattern: PatternStream, BranchEntropy: 0.05, StoreRatio: 0.3, ComputeDepth: 12},
	{Name: "zeusmp", WorkingSet: 1 << 20, Pattern: PatternStencil, BranchEntropy: 0.05, StoreRatio: 0.4, ComputeDepth: 12},
	{Name: "gromacs", WorkingSet: 32 << 10, Pattern: PatternCompute, BranchEntropy: 0.1, StoreRatio: 0.2, ComputeDepth: 7},
	{Name: "cactusADM", WorkingSet: 1 << 20, Pattern: PatternStencil, BranchEntropy: 0.03, StoreRatio: 0.4, ComputeDepth: 12},
	{Name: "leslie3d", WorkingSet: 8 << 20, Pattern: PatternStencil, BranchEntropy: 0.03, StoreRatio: 0.4, ComputeDepth: 14},
	{Name: "namd", WorkingSet: 32 << 10, Pattern: PatternCompute, BranchEntropy: 0.06, StoreRatio: 0.15, ComputeDepth: 9},
	{Name: "soplex", WorkingSet: 2 << 20, Pattern: PatternChase, BranchEntropy: 0.15, StoreRatio: 0.25, ComputeDepth: 3},
	{Name: "calculix", WorkingSet: 32 << 10, Pattern: PatternCompute, BranchEntropy: 0.1, StoreRatio: 0.2, ComputeDepth: 7},
	{Name: "GemsFDTD", WorkingSet: 8 << 20, Pattern: PatternStream, BranchEntropy: 0.02, StoreRatio: 0.45, ComputeDepth: 16},
	{Name: "tonto", WorkingSet: 32 << 10, Pattern: PatternCompute, BranchEntropy: 0.12, StoreRatio: 0.2, ComputeDepth: 6},
	{Name: "lbm", WorkingSet: 8 << 20, Pattern: PatternStream, BranchEntropy: 0.01, StoreRatio: 0.5, ComputeDepth: 16},
	{Name: "sphinx3", WorkingSet: 64 << 10, Pattern: PatternRandom, BranchEntropy: 0.2, StoreRatio: 0.15, ComputeDepth: 4},
}

// SPECNames returns the 23 kernel names in the paper's Figure 4 order.
func SPECNames() []string {
	names := make([]string, len(specProfiles))
	for i, p := range specProfiles {
		names[i] = p.Name
	}
	return names
}

// SPECProfile returns the profile for name.
func SPECProfile(name string) (SpecProfile, error) {
	for _, p := range specProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	return SpecProfile{}, fmt.Errorf("workload: unknown SPEC kernel %q", name)
}

// SPEC assembles the kernel for name. The kernel loops indefinitely; the
// harness runs it for a fixed instruction budget (the paper simulates a
// fixed 1B-instruction window the same way).
func SPEC(name string) (*isa.Program, error) {
	p, err := SPECProfile(name)
	if err != nil {
		return nil, err
	}
	return buildSpecKernel(p), nil
}

// MustSPEC is SPEC that panics on unknown names.
func MustSPEC(name string) *isa.Program {
	prog, err := SPEC(name)
	if err != nil {
		panic(err)
	}
	return prog
}

// Register conventions for generated kernels.
const (
	kRegBase  = 20 // working-set base pointer
	kRegIdx   = 1  // current index/pointer
	kRegAddr  = 2  // effective address
	kRegVal   = 3  // loaded value
	kRegAcc   = 4  // accumulator
	kRegLCG   = 5  // in-register pseudo-random state
	kRegTmp   = 6
	kRegTmp2  = 7
	kRegMask  = 8
	kRegConst = 9 // LCG multiplier
	kRegIter  = 10
)

const specDataBase = 0x1000000

// buildSpecKernel emits the kernel loop for a profile.
func buildSpecKernel(p SpecProfile) *isa.Program {
	b := isa.NewBuilder("spec-" + p.Name)
	rng := rand.New(rand.NewSource(int64(len(p.Name))*7919 + int64(p.WorkingSet)))

	ws := uint64(p.WorkingSet)
	mask := ws - 1 // profiles use power-of-two working sets
	if ws&(ws-1) != 0 {
		panic("workload: working set must be a power of two")
	}

	if p.Pattern == PatternChase {
		// Initialise a pointer-chase cycle: a random permutation over the
		// 64-bit slots, one pointer per cache line for maximal misses.
		slots := int(ws / 64)
		perm := rng.Perm(slots)
		image := make([]byte, ws)
		for i := 0; i < slots; i++ {
			next := specDataBase + uint64(perm[(i+1)%slots])*64
			off := perm[i] * 64
			for j := 0; j < 8; j++ {
				image[off+j] = byte(next >> (8 * j))
			}
		}
		b.Data(specDataBase, image)
	}

	b.Li(kRegBase, specDataBase).
		Li(kRegIdx, specDataBase).
		Li(kRegAcc, 0).
		Li(kRegLCG, uint64(rng.Int63())|1).
		Li(kRegConst, 6364136223846793005).
		Li(kRegMask, mask)

	stride := uint64(64)
	if p.TLBHeavy {
		stride = isa.PageSize + 64 // touch a new page almost every access
	}

	b.Label("loop")
	// Advance the iteration counter and the in-register LCG (branch fodder
	// and random indices).
	b.AddI(kRegIter, kRegIter, 1).
		Mul(kRegLCG, kRegLCG, kRegConst).
		AddI(kRegLCG, kRegLCG, 1442695040888963407)

	switch p.Pattern {
	case PatternStream, PatternStencil:
		// Two-line unrolled sweep: four loads per loop branch, the
		// load-to-branch ratio real streaming code has.
		b.AddI(kRegIdx, kRegIdx, int64(2*stride)).
			Sub(kRegAddr, kRegIdx, kRegBase).
			And(kRegAddr, kRegAddr, kRegMask).
			Add(kRegAddr, kRegAddr, kRegBase).
			Mov(kRegIdx, kRegAddr).
			LdSafe(8, kRegVal, kRegAddr, 0). // mask-bounded: provably safe
			LdSafe(8, kRegTmp, kRegAddr, 8).
			Add(kRegVal, kRegVal, kRegTmp).
			LdSafe(8, kRegTmp, kRegAddr, int64(stride)).
			Add(kRegVal, kRegVal, kRegTmp).
			LdSafe(8, kRegTmp, kRegAddr, int64(stride)+8).
			Add(kRegVal, kRegVal, kRegTmp)
		if p.Pattern == PatternStencil {
			b.LdSafe(8, kRegTmp, kRegAddr, 64).
				Add(kRegVal, kRegVal, kRegTmp)
		}
	case PatternRandom:
		b.ShrI(kRegTmp, kRegLCG, 17).
			And(kRegTmp, kRegTmp, kRegMask).
			AndI(kRegTmp, kRegTmp, ^int64(7)). // 8-byte align
			Add(kRegAddr, kRegBase, kRegTmp).
			LdSafe(8, kRegVal, kRegAddr, 0). // mask-bounded: provably safe
			LdSafe(8, kRegTmp, kRegAddr, 8).
			Add(kRegVal, kRegVal, kRegTmp).
			ShrI(kRegTmp, kRegLCG, 31).
			And(kRegTmp, kRegTmp, kRegMask).
			AndI(kRegTmp, kRegTmp, ^int64(7)).
			Add(kRegTmp, kRegBase, kRegTmp).
			LdSafe(8, kRegTmp, kRegTmp, 0).
			Add(kRegVal, kRegVal, kRegTmp)
	case PatternChase:
		b.Ld(8, kRegIdx, kRegIdx, 0). // serialized dependent loads
						Mov(kRegAddr, kRegIdx).
						Mov(kRegVal, kRegIdx)
	case PatternCompute:
		// Loads from a small, hot region.
		b.ShrI(kRegTmp, kRegLCG, 23).
			And(kRegTmp, kRegTmp, kRegMask).
			AndI(kRegTmp, kRegTmp, ^int64(7)).
			Add(kRegAddr, kRegBase, kRegTmp).
			LdSafe(8, kRegVal, kRegAddr, 0). // mask-bounded: provably safe
			LdSafe(8, kRegTmp, kRegAddr, 8).
			Add(kRegVal, kRegVal, kRegTmp).
			LdSafe(8, kRegTmp, kRegAddr, 16).
			Add(kRegVal, kRegVal, kRegTmp)
	}

	// Data-dependent branch with the profile's entropy. The condition mixes
	// the LOADED value with LCG bits, so it is unpredictable AND resolves
	// only when the load returns — the speculation window real programs
	// have, and the one that makes loads behind it USLs under InvisiSpec.
	if p.BranchEntropy > 0 {
		den := int64(1)
		for float64(1)/float64(den) > p.BranchEntropy && den < 64 {
			den *= 2
		}
		lbl := "taken"
		b.ShrI(kRegTmp2, kRegLCG, 33).
			Add(kRegTmp2, kRegTmp2, kRegVal).
			AndI(kRegTmp2, kRegTmp2, den-1).
			Bne(kRegTmp2, 0, lbl).
			Xor(kRegAcc, kRegAcc, kRegVal).
			AddI(kRegAcc, kRegAcc, 13)
		b.Label(lbl).
			Add(kRegAcc, kRegAcc, kRegVal)
	} else {
		b.Add(kRegAcc, kRegAcc, kRegVal)
	}

	// Dependent compute chain.
	for i := 0; i < p.ComputeDepth; i++ {
		switch i % 3 {
		case 0:
			b.Xor(kRegAcc, kRegAcc, kRegLCG)
		case 1:
			b.ShrI(kRegTmp, kRegAcc, 7).Add(kRegAcc, kRegAcc, kRegTmp)
		default:
			b.Mul(kRegAcc, kRegAcc, kRegConst)
		}
	}

	// Store with the profile's ratio, to the line just loaded. Store-heavy
	// kernels store unconditionally (real streaming code is branch-poor);
	// sparse stores use a periodic (learnable) decision so store density
	// never masquerades as branch entropy.
	switch {
	case p.StoreRatio >= 0.33:
		b.St(8, kRegAddr, 8, kRegAcc)
	case p.StoreRatio > 0:
		den := int64(1)
		for float64(1)/float64(den) > p.StoreRatio && den < 64 {
			den *= 2
		}
		b.AndI(kRegTmp2, kRegIter, den-1).
			Bne(kRegTmp2, 0, "nostore").
			St(8, kRegAddr, 8, kRegAcc)
		b.Label("nostore")
	}

	b.Jmp("loop")
	return b.MustBuild()
}
