package workload

import (
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/sim"
)

// runCrossThread runs the two-program placement to completion under a
// defense and returns the attacker's probe-line latencies.
func runCrossThread(t *testing.T, p SpectreParams, d config.Defense) []uint64 {
	t.Helper()
	progs, err := SpectreV1CrossThread(p)
	if err != nil {
		t.Fatal(err)
	}
	run := config.Run{Machine: config.Default(2), Defense: d, Consistency: config.TSO}
	m := sim.MustNew(run, progs)
	if err := m.RunToCompletion(30_000_000); err != nil {
		t.Fatalf("cross-thread attack under %s did not complete: %v", d, err)
	}
	return ScanLatencies(m.Mem, SpectreResultsBase, p.ProbeLines)
}

// hotLine returns the lowest probe index at least 2x faster than the
// median, or -1.
func hotLine(lat []uint64) int {
	med := append([]uint64(nil), lat...)
	for i := 1; i < len(med); i++ {
		for j := i; j > 0 && med[j] < med[j-1]; j-- {
			med[j], med[j-1] = med[j-1], med[j]
		}
	}
	floor := med[len(med)/2]
	for i, l := range lat {
		if l*2 < floor {
			return i
		}
	}
	return -1
}

func TestCrossThreadSpectreLeaksOnBase(t *testing.T) {
	p := CanonicalSpectre(199)
	lat := runCrossThread(t, p, config.Base)
	if got := hotLine(lat); got != 199 {
		t.Fatalf("cross-thread attack on Base recovered line %d, want 199 (lat[199]=%d)", got, lat[199])
	}
}

func TestCrossThreadSpectreBlockedByInvisiSpec(t *testing.T) {
	p := CanonicalSpectre(199)
	for _, d := range []config.Defense{config.ISSpectre, config.ISFuture} {
		lat := runCrossThread(t, p, d)
		if got := hotLine(lat); got != -1 {
			t.Errorf("cross-thread attack under %s shows hot line %d (lat=%d), want none", d, got, lat[got])
		}
	}
}

func TestCrossThreadValidatesParams(t *testing.T) {
	p := CanonicalSpectre(199)
	p.ProbeStride = 48 // not a power of two
	if _, err := SpectreV1CrossThread(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}
