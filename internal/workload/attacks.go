// Package workload provides the programs the evaluation runs: the Spectre
// variant-1 proof-of-concept of the paper's Figure 1 (used for Figure 5), a
// Meltdown-style exception attack, 23 SPEC2006-like single-threaded kernels,
// and 9 PARSEC-like multi-threaded kernels. See DESIGN.md §2 for how these
// substitute for the paper's benchmark binaries.
package workload

import (
	"fmt"
	"math/bits"

	"invisispec/internal/isa"
)

// Memory layout of the Spectre proof of concept.
const (
	// SpectreABase is the base of the victim's 10-byte array A.
	SpectreABase = 0x100000
	// SpectreSecretOffset is the attacker-chosen out-of-bounds index:
	// the secret byte lives at SpectreABase + SpectreSecretOffset.
	SpectreSecretOffset = 0x800
	// SpectreBoundsAddr holds the bounds value (10) that the victim's
	// if-condition loads; the attacker flushes it to widen the speculation
	// window, as real exploits do.
	SpectreBoundsAddr = 0x180000
	// SpectreBBase is the base of the 256-line probe array B.
	SpectreBBase = 0x200000
	// SpectreResultsBase receives 256 little-endian uint64 access
	// latencies, one per probe line, measured by the attacker's scan.
	SpectreResultsBase = 0x300000
	// SpectreProbeLines is the number of probe lines (possible byte
	// values).
	SpectreProbeLines = 256
)

// SpectreParams parameterizes the Spectre variant-1 templates. The leakage
// corpus (internal/leakage) fuzzes these axes; the zero value is invalid —
// start from CanonicalSpectre.
type SpectreParams struct {
	// Secret is the byte the attacker tries to recover. Must be < ProbeLines
	// (the probe array can only encode that many values) and non-zero (probe
	// line 0 is warmed by branch training, so a zero secret is
	// indistinguishable from training residue).
	Secret byte
	// TrainRounds is how many times the attacker sweeps the in-bounds
	// indices to train the victim's bounds-check branch.
	TrainRounds int
	// ProbeLines is how many probe-array lines the transmitter can select
	// between and the scan times.
	ProbeLines int
	// ProbeStride is the byte distance between consecutive probe lines
	// (power of two, at least one cache line).
	ProbeStride int
	// FlushBounds flushes the victim's bounds value before the attack call,
	// widening the speculation window. Without it the bounds load hits L1,
	// the branch resolves before the (cold) secret load returns, and the
	// transmit load never issues: a negative-control variant that must NOT
	// leak even on Base.
	FlushBounds bool
	// FlushProbe flushes the training/warming residue out of the probe
	// array before the attack call. Without it, stale warm lines (probe
	// line 0 from training plus the page-warming lines) dominate the scan
	// on every configuration, masking the signal: a distinguisher control
	// that classifies as Inconclusive rather than Leak or Blocked.
	FlushProbe bool
	// Annotate marks the victim's access and transmit loads as statically
	// safe (isa.LdSafe), modelling a WRONG static proof. Only machines with
	// TrustSafeAnnotations honour the annotation (§XI threat-model
	// boundary).
	Annotate bool
}

// CanonicalSpectre is the paper's Figure 1 attack shape: the parameters
// SpectreV1 has always used.
func CanonicalSpectre(secret byte) SpectreParams {
	return SpectreParams{
		Secret:      secret,
		TrainRounds: 16,
		ProbeLines:  SpectreProbeLines,
		ProbeStride: 64,
		FlushBounds: true,
		FlushProbe:  true,
	}
}

// Validate reports the first structural problem with the parameters.
func (p SpectreParams) Validate() error {
	switch {
	case p.TrainRounds < 1 || p.TrainRounds > 256:
		return fmt.Errorf("workload: TrainRounds %d outside [1,256]", p.TrainRounds)
	case p.ProbeLines < 16 || p.ProbeLines > 256 || p.ProbeLines&(p.ProbeLines-1) != 0:
		return fmt.Errorf("workload: ProbeLines %d must be a power of two in [16,256]", p.ProbeLines)
	case p.ProbeStride < 64 || p.ProbeStride&(p.ProbeStride-1) != 0:
		return fmt.Errorf("workload: ProbeStride %d must be a power of two ≥ 64", p.ProbeStride)
	case p.ProbeLines*p.ProbeStride > 0x100000:
		return fmt.Errorf("workload: probe region %d bytes overruns the results area", p.ProbeLines*p.ProbeStride)
	case int(p.Secret) >= p.ProbeLines:
		return fmt.Errorf("workload: secret %d not encodable in %d probe lines", p.Secret, p.ProbeLines)
	}
	return nil
}

// SpectreV1 assembles the attack of the paper's Figure 1 in one program
// (the SameThread setting): the attacker trains the victim's bounds-check
// branch, flushes the bounds and the probe array, calls the victim with an
// out-of-bounds index that speculatively reads the secret byte and touches
// the secret-indexed probe line, then times a scan of every probe line.
// On an insecure machine the secret-indexed line is a cache hit; under
// InvisiSpec the squashed loads leave no trace and every probe misses.
func SpectreV1(secret byte) *isa.Program {
	return mustSpectre(CanonicalSpectre(secret))
}

// SpectreV1Annotated is the same attack with the victim's transient access
// and transmit loads (incorrectly) annotated as statically safe. It exists
// to demonstrate the threat-model boundary of the TrustSafeAnnotations
// optimization (§XI): a wrong proof re-opens the leak.
func SpectreV1Annotated(secret byte) *isa.Program {
	p := CanonicalSpectre(secret)
	p.Annotate = true
	return mustSpectre(p)
}

func mustSpectre(p SpectreParams) *isa.Program {
	prog, err := SpectreV1With(p)
	if err != nil {
		panic(err)
	}
	return prog
}

// SpectreV1With assembles the same-thread Spectre variant-1 attack for an
// arbitrary point in the parameter space.
func SpectreV1With(p SpectreParams) (*isa.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	secret, annotateVictim := p.Secret, p.Annotate
	shift := int64(bits.TrailingZeros(uint(p.ProbeStride)))
	region := int64(p.ProbeLines * p.ProbeStride)
	const (
		rArg    = 1  // victim argument a
		rT0     = 3  // scan timing
		rVal    = 4  // scanned byte
		rT1     = 5  //
		rDelta  = 6  //
		rResPtr = 7  //
		rIdx    = 8  // scan index
		rRound  = 10 // training round counter
		rLimit  = 11 //
		rBnd    = 12 // victim: bounds value
		rSecPtr = 13 // victim: &A[a]
		rSec    = 14 // victim: A[a]
		rBPtr   = 15 // victim: &B[64*A[a]]
		rJunk   = 16 // victim: transmitted value
		rA      = 20 // &A
		rB      = 21 // &B
		rRes    = 22 // &results
		rBndPtr = 23 // &bounds
		rLink   = 30 // return address
	)
	b := isa.NewBuilder("spectre-v1")
	// Victim data: A[0..9] = 0, the secret byte at A+offset, bounds = 10.
	b.Data(SpectreABase, make([]byte, 10))
	b.Data(SpectreABase+SpectreSecretOffset, []byte{secret})
	b.DataU64(SpectreBoundsAddr, 10)

	b.Li(rA, SpectreABase).
		Li(rB, SpectreBBase).
		Li(rRes, SpectreResultsBase).
		Li(rBndPtr, SpectreBoundsAddr)

	// Train the bounds-check branch over the valid indices.
	b.Li(rRound, uint64(p.TrainRounds))
	b.Label("train_outer").
		Li(rArg, 0)
	b.Label("train_inner").
		Call(rLink, "victim").
		AddI(rArg, rArg, 1).
		Li(rLimit, 10).
		Blt(rArg, rLimit, "train_inner").
		AddI(rRound, rRound, -1).
		Bne(rRound, 0, "train_outer")

	// Warm the D-TLB entries of every probe-array page (one line per 4 KiB
	// page) so the transient probe load is not stalled by a page walk —
	// the standard exploit preparation step.
	for pg := int64(0); pg < region; pg += isa.PageSize {
		b.Ld(1, rVal, rB, pg)
	}
	// Let wrong-path stragglers land: the mispredicted training-loop exit
	// transiently re-runs victim(0), and its in-flight B[0] fill would
	// otherwise re-warm the line after our flush. Two serialized cold
	// loads plus fences give those fills time to arrive before we flush.
	b.Li(rLimit, 0x190000).
		Fence().
		Ld(8, rVal, rLimit, 0).
		AndI(rVal, rVal, 0).
		Add(rLimit, rLimit, rVal).
		Ld(8, rVal, rLimit, 4096).
		Fence()
	// Flush the state the attack depends on: the bounds (to widen the
	// speculation window) and every probe line touched so far — B[0] from
	// training, the page-warming lines, and the next-line prefetches each
	// of those triggered. The corpus's control variants skip one of these
	// on purpose to probe the distinguisher's failure classification.
	if p.FlushBounds {
		b.Flush(rBndPtr, 0)
	}
	if p.FlushProbe {
		b.Flush(rB, 0)
		for pg := int64(0); pg < region; pg += isa.PageSize {
			for d := int64(0); d <= 4; d++ {
				b.Flush(rB, pg+64*d)
			}
		}
	}
	b.Fence()

	// The attack call: a = X - &A reaches the secret byte. The fence keeps
	// the scan's own probes from issuing down the mispredicted path (which
	// falls through the victim's return into the scan) before the bounds
	// check resolves.
	b.Li(rArg, SpectreSecretOffset).
		Call(rLink, "victim").
		Fence()

	// FLUSH+RELOAD scan: time one load per probe line. Two standard
	// exploit tricks: (1) each probe's address carries a (zero-valued)
	// dependence on the previous probe's data, serializing the probes so
	// out-of-order overlap cannot skew the timings; (2) the lines are
	// probed in DESCENDING order so the hardware next-line prefetcher
	// (which only runs upward) can never pre-warm the next probe.
	const rShuf = 24
	b.Li(rIdx, 0).
		Li(rVal, 0)
	b.Label("scan").
		Li(rShuf, uint64(p.ProbeLines-1)).
		Sub(rShuf, rShuf, rIdx). // descending probe index
		AndI(rDelta, rVal, 0).   // 0, but depends on the previous probe
		ShlI(rBPtr, rShuf, shift).
		Add(rBPtr, rBPtr, rB).
		Add(rBPtr, rBPtr, rDelta).
		Cycle(rT0, rBPtr).     // t0, ordered after the address
		Ld(1, rVal, rBPtr, 0). //
		Cycle(rT1, rVal).      // t1, ordered after the loaded value
		Sub(rDelta, rT1, rT0).
		ShlI(rResPtr, rShuf, 3).
		Add(rResPtr, rResPtr, rRes).
		St(8, rResPtr, 0, rDelta).
		AddI(rIdx, rIdx, 1).
		Li(rLimit, uint64(p.ProbeLines)).
		Blt(rIdx, rLimit, "scan").
		Halt()

	// victim(a): if (a < bounds) junk = B[64 * A[a]]  — Figure 1.
	b.Label("victim").
		Ld(8, rBnd, rBndPtr, 0). // bounds load: slow when flushed
		Div(rBnd, rBnd, rBnd).   // dependent chain delays resolution
		AddI(rBnd, rBnd, 9).     // 10
		Div(rBnd, rBnd, rBnd).   // 1 (another 12 cycles)
		ShlI(rBnd, rBnd, 1).
		ShlI(rBnd, rBnd, 2).
		AddI(rBnd, rBnd, 2). // rBnd = 10 again
		Bge(rArg, rBnd, "victim_ret").
		Add(rSecPtr, rA, rArg)
	if annotateVictim {
		b.LdSafe(1, rSec, rSecPtr, 0). // the access instruction (reads the secret)
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						LdSafe(1, rJunk, rBPtr2, 0) // the transmit instruction
	} else {
		b.Ld(1, rSec, rSecPtr, 0). // the access instruction (reads the secret)
						ShlI(rSec, rSec, shift).
						Add(rBPtr2, rB, rSec).
						Ld(1, rJunk, rBPtr2, 0) // the transmit instruction
	}
	b.Label("victim_ret").
		Ret(rLink)
	return b.Build()
}

const rBPtr2 = 17

// SpectreScanLatencies extracts the attacker's measured per-line latencies
// from a finished machine's memory.
func SpectreScanLatencies(mem *isa.Memory) [SpectreProbeLines]uint64 {
	var out [SpectreProbeLines]uint64
	copy(out[:], ScanLatencies(mem, SpectreResultsBase, SpectreProbeLines))
	return out
}

// ScanLatencies extracts n per-probe-line latencies stored as little-endian
// uint64s at base — the generalized form of SpectreScanLatencies for
// parameterized probe counts and for the Meltdown results area.
func ScanLatencies(mem *isa.Memory, base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = mem.Read(base+uint64(8*i), 8)
	}
	return out
}

// LeakedByte returns the attacker's guess for the secret: the LOWEST probe
// index whose latency is within 2x of the fastest line. The transient
// access itself touches exactly B[64*secret]; the hardware prefetcher may
// additionally warm a few lines ABOVE it, so the lowest hot index is the
// secret.
func LeakedByte(mem *isa.Memory) (idx int, latency uint64) {
	lat := SpectreScanLatencies(mem)
	min := lat[0]
	for _, l := range lat {
		if l < min {
			min = l
		}
	}
	for i, l := range lat {
		if l <= 2*min {
			return i, l
		}
	}
	return 0, lat[0]
}

// Meltdown memory layout.
const (
	MeltdownSecretAddr  = 0x400000
	MeltdownProbeBase   = 0x500000
	MeltdownResultsBase = 0x600000
)

// Meltdown assembles an exception-based transient attack: a privileged load
// reads the secret; dependent transient instructions touch a secret-indexed
// probe line before the fault squashes them at retirement; the handler then
// times a scan. Spectre-only defenses (IS-Spectre) do NOT stop this —
// exceptions are a Futuristic-model squash source — while IS-Future does.
func Meltdown(secret byte) *isa.Program {
	const (
		rSecPtr = 1
		rSec    = 2
		rBPtr   = 3
		rJunk   = 4
		rProbe  = 20
		rRes    = 22
		rIdx    = 8
		rT0     = 9
		rVal    = 10
		rT1     = 11
		rDelta  = 12
		rLimit  = 13
	)
	const (
		rBlock  = 14
		rBlkPtr = 15
		rOne    = 16
	)
	b := isa.NewBuilder("meltdown")
	b.Data(MeltdownSecretAddr, []byte{secret})
	b.Li(rProbe, MeltdownProbeBase).
		Li(rRes, MeltdownResultsBase).
		Li(rSecPtr, MeltdownSecretAddr).
		// Warm the secret page's TLB entry with an adjacent, unprivileged
		// load so the privileged load performs quickly.
		Ld(1, rVal, rSecPtr, 63)
	// Warm the probe pages' TLB entries, then flush the touched lines.
	for pg := int64(0); pg < 256*64; pg += isa.PageSize {
		b.Ld(1, rVal, rProbe, pg)
	}
	b.Fence()
	for pg := int64(0); pg < 256*64; pg += isa.PageSize {
		for d := int64(0); d <= 4; d++ { // warmed line + its prefetches
			b.Flush(rProbe, pg+64*d)
		}
	}
	b.Fence().
		// A blocker load whose address hangs off a divide chain keeps the
		// privileged load away from the ROB head long enough for its
		// dependent transient instructions to run (real Meltdown exploits
		// delay retirement the same way).
		Li(rBlock, 6400).
		Li(rOne, 10).
		Div(rBlock, rBlock, rOne).
		Div(rBlock, rBlock, rOne).
		Div(rBlock, rBlock, rOne). // 6, late
		AndI(rBlock, rBlock, 0).
		Li(rBlkPtr, 0x700000).
		Add(rBlkPtr, rBlkPtr, rBlock).
		Ld(8, rBlock, rBlkPtr, 0). // cold: holds the ROB head ~150 cycles
		// The access instruction: privileged, faults at retirement...
		LdPriv(1, rSec, rSecPtr, 0).
		// ...but these transient instructions run first:
		ShlI(rSec, rSec, 6).
		Add(rBPtr, rProbe, rSec).
		Ld(1, rJunk, rBPtr, 0).
		Halt() // unreachable: the fault transfers to the handler
	const rShuf = 17
	b.Label("handler").
		Li(rIdx, 0).
		Li(rVal, 0)
	b.Label("scan").
		Li(rShuf, 255). // descending probe order defeats the prefetcher
		Sub(rShuf, rShuf, rIdx).
		AndI(rDelta, rVal, 0). // serialize probes (see SpectreV1)
		ShlI(rBPtr, rShuf, 6).
		Add(rBPtr, rBPtr, rProbe).
		Add(rBPtr, rBPtr, rDelta).
		Cycle(rT0, rBPtr).
		Ld(1, rVal, rBPtr, 0).
		Cycle(rT1, rVal).
		Sub(rDelta, rT1, rT0).
		ShlI(rT0, rShuf, 3).
		Add(rT0, rT0, rRes).
		St(8, rT0, 0, rDelta).
		AddI(rIdx, rIdx, 1).
		Li(rLimit, 256).
		Blt(rIdx, rLimit, "scan").
		Halt().
		Handler("handler")
	return b.MustBuild()
}

// MeltdownLeakedByte returns the handler's best guess (lowest hot index,
// see LeakedByte).
func MeltdownLeakedByte(mem *isa.Memory) (idx int, latency uint64) {
	var lats [256]uint64
	min := ^uint64(0)
	for i := 0; i < 256; i++ {
		lats[i] = mem.Read(MeltdownResultsBase+uint64(8*i), 8)
		if lats[i] < min {
			min = lats[i]
		}
	}
	for i, l := range lats {
		if l <= 2*min {
			return i, l
		}
	}
	return 0, lats[0]
}
