package workload_test

// Imported-trace admission tests: the gates are spec-derived invariants
// (structure + CRC, canonical re-encoding, instruction conservation
// against the golden interpreter), so every rejection here is a trace that
// could silently corrupt a matrix if admitted.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"invisispec/internal/core"
	"invisispec/internal/isa"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

// writeHmmerTrace records n golden-interpreter commits of the hmmer kernel
// under the given trace name and writes the v2 file into dir.
func writeHmmerTrace(t *testing.T, dir, name string, n uint64) string {
	t.Helper()
	tr, _ := trace.RecordInterp(name, workload.MustSPEC("hmmer"), n)
	path := filepath.Join(dir, name+".trace")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestImportFileRoundTrip(t *testing.T) {
	path := writeHmmerTrace(t, t.TempDir(), "imported-hmmer-test", 1500)
	w, err := workload.ImportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "imported-hmmer-test" {
		t.Errorf("Name() = %q, want the trace header name", w.Name())
	}
	if w.Class() != workload.ClassImported {
		t.Errorf("Class() = %v, want imported", w.Class())
	}
	if w.DefaultCores() != 1 {
		t.Errorf("DefaultCores() = %d, want 1", w.DefaultCores())
	}
	progs, err := w.Programs(1)
	if err != nil {
		t.Fatal(err)
	}
	orig := workload.MustSPEC("hmmer")
	if !reflect.DeepEqual(progs[0].Insts, orig.Insts) {
		t.Error("replayed instructions differ from the recorded program")
	}
	if !reflect.DeepEqual(progs[0].InitMem, orig.InitMem) {
		t.Error("replayed InitMem differs from the recorded program")
	}
	if progs[0].Entry != orig.Entry || progs[0].Handler != orig.Handler {
		t.Error("replayed entry/handler differ from the recorded program")
	}
	// A trace replays only at its recorded width.
	if _, err := w.Programs(2); err == nil {
		t.Error("imported 1-core trace accepted a 2-core build")
	}
}

func TestImportDirRegisters(t *testing.T) {
	dir := t.TempDir()
	writeHmmerTrace(t, dir, "imported-dir-b", 400)
	writeHmmerTrace(t, dir, "imported-dir-a", 400)
	names, err := workload.ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Registration follows sorted file-name order, deterministically.
	if !reflect.DeepEqual(names, []string{"imported-dir-a", "imported-dir-b"}) {
		t.Fatalf("ImportDir registered %v", names)
	}
	for _, n := range names {
		w, err := workload.Lookup(n)
		if err != nil {
			t.Errorf("Lookup(%q) after import: %v", n, err)
			continue
		}
		if w.Class() != workload.ClassImported {
			t.Errorf("%s: class %v, want imported", n, w.Class())
		}
	}
	// Imported entries join the registry but never a default suite.
	for _, n := range append(workload.SuiteNames(false), workload.SuiteNames(true)...) {
		if strings.HasPrefix(n, "imported-dir-") {
			t.Errorf("imported workload %q leaked into a default suite", n)
		}
	}
	// Re-importing the same corpus collides on the trace names.
	if _, err := workload.ImportDir(dir); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("re-import err = %v, want duplicate-name rejection", err)
	}
}

func TestImportRejectsCorruptCRC(t *testing.T) {
	path := writeHmmerTrace(t, t.TempDir(), "imported-crc-test", 300)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xFF // flip one body byte; the trailer no longer matches
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.LoadTraceFile(path); !errors.Is(err, trace.ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestImportRejectsTruncation(t *testing.T) {
	path := writeHmmerTrace(t, t.TempDir(), "imported-trunc-test", 300)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.LoadTraceFile(path); err == nil {
		t.Fatal("truncated trace imported")
	}
}

func TestImportRejectsWrongMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.trace")
	if err := os.WriteFile(path, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.LoadTraceFile(path); !errors.Is(err, trace.ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestImportRejectsV1Stream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(core.CommitEvent{Cycle: 1, PC: 0, Inst: isa.Inst{Op: isa.OpNop}})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = workload.LoadTraceFile(path)
	if err == nil || !strings.Contains(err.Error(), "v1") {
		t.Fatalf("err = %v, want v1-not-replayable rejection", err)
	}
}

// A trace whose event stream does not match its own program must fail the
// instruction-conservation gate: the interpreter is the arbiter, so a
// tampered (or wrongly recorded) stream cannot enter the conformance
// matrix as a false oracle.
func TestImportRejectsTamperedStream(t *testing.T) {
	tr, _ := trace.RecordInterp("imported-tamper-test", workload.MustSPEC("hmmer"), 500)
	tampered := -1
	for i, ev := range tr.Events[0] {
		if ev.WroteReg && ev.Op != isa.OpCycle {
			tr.Events[0][i].RegValue++
			tampered = i
			break
		}
	}
	if tampered == -1 {
		t.Fatal("no architectural register write in the first 500 hmmer commits")
	}
	path := filepath.Join(t.TempDir(), "tampered.trace")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	_, err := workload.LoadTraceFile(path)
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("err = %v, want golden-interpreter divergence at commit %d", err, tampered)
	}
}
