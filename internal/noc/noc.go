// Package noc models the on-chip interconnect: a MeshW x MeshH mesh with
// XY dimension-order routing, 128-bit links, one cycle per hop, and per-link
// serialization (a message occupies each link for size/linkBytes cycles, so
// concurrent messages contend). Every message's bytes are accounted to a
// traffic class so the harness can regenerate Figures 6 and 8.
package noc

import (
	"fmt"

	"invisispec/internal/stats"
)

// Mesh is the interconnect.
type Mesh struct {
	w, h       int
	hopLatency uint64
	linkBytes  int
	// linkFree[l] is the first cycle link l is available. Links are
	// unidirectional: for each node, 4 outgoing links (E,W,N,S) plus a
	// local ejection port.
	linkFree []uint64
	st       *stats.Machine

	// Message conservation: every Send pushes its delivery cycle onto the
	// pending min-heap; Accounting drains expired entries, so at any cycle
	// injected == delivered + in-flight. The invariant checker audits this.
	injected  uint64
	delivered uint64
	pending   []uint64 // binary min-heap of delivery cycles
}

const (
	dirE = iota
	dirW
	dirN
	dirS
	numDirs
)

// New builds a mesh. st may be nil (traffic is then uncounted — tests only).
func New(w, h, hopLatency, linkBytes int, st *stats.Machine) *Mesh {
	if w <= 0 || h <= 0 || linkBytes <= 0 || hopLatency < 0 {
		panic(fmt.Sprintf("noc: bad geometry %dx%d link=%d hop=%d", w, h, linkBytes, hopLatency))
	}
	return &Mesh{
		w:          w,
		h:          h,
		hopLatency: uint64(hopLatency),
		linkBytes:  linkBytes,
		linkFree:   make([]uint64, w*h*numDirs),
		st:         st,
	}
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.w * m.h }

func (m *Mesh) coord(node int) (x, y int) { return node % m.w, node / m.w }

func (m *Mesh) link(node, dir int) int { return node*numDirs + dir }

// Hops returns the XY route length between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.coord(src)
	dx, dy := m.coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (m *Mesh) serCycles(bytes int) uint64 {
	return uint64((bytes + m.linkBytes - 1) / m.linkBytes)
}

// Send injects a message of the given size at src destined for dst at cycle
// now, and returns the cycle at which it is fully delivered. Bytes are
// accounted to class. Local (src == dst) messages still count as traffic —
// the paper counts all bytes moved between caches — but traverse no links.
func (m *Mesh) Send(now uint64, src, dst, bytes int, class stats.TrafficClass) uint64 {
	if src < 0 || src >= m.Nodes() || dst < 0 || dst >= m.Nodes() {
		panic(fmt.Sprintf("noc: send %d->%d outside %d-node mesh", src, dst, m.Nodes()))
	}
	if m.st != nil {
		m.st.AddTraffic(class, uint64(bytes))
	}
	ser := m.serCycles(bytes)
	t := now
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	step := func(dir int, nx, ny int) {
		l := m.link(y*m.w+x, dir)
		start := t
		if m.linkFree[l] > start {
			start = m.linkFree[l]
		}
		m.linkFree[l] = start + ser
		t = start + ser + m.hopLatency
		x, y = nx, ny
	}
	for x != dx {
		if x < dx {
			step(dirE, x+1, y)
		} else {
			step(dirW, x-1, y)
		}
	}
	for y != dy {
		if y < dy {
			step(dirS, x, y+1)
		} else {
			step(dirN, x, y-1)
		}
	}
	if src == dst {
		// Local transfer: pay serialization only.
		t = now + ser
	}
	m.injected++
	m.pushPending(t)
	return t
}

// pushPending adds a delivery cycle to the min-heap.
func (m *Mesh) pushPending(t uint64) {
	m.pending = append(m.pending, t)
	i := len(m.pending) - 1
	for i > 0 {
		p := (i - 1) / 2
		if m.pending[p] <= m.pending[i] {
			break
		}
		m.pending[p], m.pending[i] = m.pending[i], m.pending[p]
		i = p
	}
}

// popPending removes the earliest delivery cycle from the min-heap.
func (m *Mesh) popPending() {
	n := len(m.pending) - 1
	m.pending[0] = m.pending[n]
	m.pending = m.pending[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && m.pending[l] < m.pending[small] {
			small = l
		}
		if r < n && m.pending[r] < m.pending[small] {
			small = r
		}
		if small == i {
			return
		}
		m.pending[i], m.pending[small] = m.pending[small], m.pending[i]
		i = small
	}
}

// Accounting returns the message-conservation counters as of cycle now:
// messages injected since construction, messages whose delivery cycle has
// passed, and messages still in flight. injected == delivered + inflight
// always holds by construction here; the useful check is cross-referencing
// inflight against the event queue (a message in flight with no pending
// hierarchy event is a lost message).
func (m *Mesh) Accounting(now uint64) (injected, delivered uint64, inflight int) {
	for len(m.pending) > 0 && m.pending[0] <= now {
		m.popPending()
		m.delivered++
	}
	return m.injected, m.delivered, len(m.pending)
}
