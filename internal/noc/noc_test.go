package noc

import (
	"testing"

	"invisispec/internal/stats"
)

func TestHops(t *testing.T) {
	m := New(4, 2, 1, 16, nil)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 4, 1}, {0, 7, 4}, {3, 4, 4},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestSendLatencyScalesWithDistance(t *testing.T) {
	m := New(4, 2, 1, 16, nil)
	// 8-byte control message: 1 serialization cycle per link + 1 hop cycle.
	if got := m.Send(100, 0, 1, 8, stats.TrafficNormal); got != 102 {
		t.Fatalf("1-hop ctrl arrival = %d, want 102", got)
	}
	m2 := New(4, 2, 1, 16, nil)
	if got := m2.Send(100, 0, 7, 8, stats.TrafficNormal); got != 108 {
		t.Fatalf("4-hop ctrl arrival = %d, want 108", got)
	}
}

func TestDataMessageSerialization(t *testing.T) {
	m := New(4, 2, 1, 16, nil)
	// 72-byte data message: ceil(72/16)=5 cycles per link + 1 hop.
	if got := m.Send(0, 0, 1, 72, stats.TrafficNormal); got != 6 {
		t.Fatalf("data arrival = %d, want 6", got)
	}
}

func TestLinkContention(t *testing.T) {
	m := New(4, 2, 1, 16, nil)
	a := m.Send(0, 0, 1, 72, stats.TrafficNormal)
	b := m.Send(0, 0, 1, 72, stats.TrafficNormal)
	if b <= a {
		t.Fatalf("second message (%d) did not queue behind first (%d)", b, a)
	}
	// Opposite-direction traffic must not contend.
	m2 := New(4, 2, 1, 16, nil)
	f := m2.Send(0, 0, 1, 72, stats.TrafficNormal)
	g := m2.Send(0, 1, 0, 72, stats.TrafficNormal)
	if f != g {
		t.Fatalf("opposite links contended: %d vs %d", f, g)
	}
}

func TestLocalSend(t *testing.T) {
	m := New(4, 2, 1, 16, nil)
	if got := m.Send(10, 3, 3, 72, stats.TrafficNormal); got != 15 {
		t.Fatalf("local data send = %d, want 15", got)
	}
}

func TestTrafficAccounting(t *testing.T) {
	st := stats.NewMachine(1)
	m := New(4, 2, 1, 16, st)
	m.Send(0, 0, 1, 72, stats.TrafficSpecLoad)
	m.Send(0, 1, 0, 8, stats.TrafficValExp)
	m.Send(0, 2, 2, 72, stats.TrafficNormal) // local still counted
	if st.TrafficBytes[stats.TrafficSpecLoad] != 72 {
		t.Fatalf("spec bytes = %d", st.TrafficBytes[stats.TrafficSpecLoad])
	}
	if st.TrafficBytes[stats.TrafficValExp] != 8 {
		t.Fatalf("valexp bytes = %d", st.TrafficBytes[stats.TrafficValExp])
	}
	if st.TotalTraffic() != 152 {
		t.Fatalf("total = %d, want 152", st.TotalTraffic())
	}
}

func TestSendPanicsOutOfRange(t *testing.T) {
	m := New(2, 2, 1, 16, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range send did not panic")
		}
	}()
	m.Send(0, 0, 4, 8, stats.TrafficNormal)
}
