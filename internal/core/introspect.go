package core

import (
	"fmt"

	"invisispec/internal/config"
)

// This file exposes read-only views of the core's in-flight state for the
// hardening layer (internal/invariant): occupancy bounds, queue-window
// integrity, TSO write-buffer FIFO order, forward-progress inputs, and the
// last-squash record carried in deadlock dumps. It also hosts the mutation
// self-test hook that artificially stalls retirement.

// Occupancy is a snapshot of the core's structural-resource usage.
type Occupancy struct {
	ROB, LQ, SQ, WB             int
	ROBCap, LQCap, SQCap, WBCap int
}

// Occupancy returns the current queue occupancies and capacities.
func (c *Core) Occupancy() Occupancy {
	return Occupancy{
		ROB: c.robCnt, LQ: c.lqCnt, SQ: c.sqCnt, WB: len(c.wb),
		ROBCap: len(c.rob), LQCap: len(c.lq), SQCap: len(c.sq), WBCap: c.cfg.WBEntries,
	}
}

// Progress reports the core's forward-progress signals: instructions retired
// so far, the current fetch PC, and whether the thread has halted.
func (c *Core) Progress() (retired uint64, pc int, halted bool) {
	return c.st.Retired, c.pc, c.halted
}

// Epoch returns the core's current squash epoch (§VI-C).
func (c *Core) Epoch() uint64 { return c.epoch }

// WBView is one write-buffer entry's progress state.
type WBView struct {
	Token    uint64
	Inflight bool
	Done     bool
}

// WBFIFO returns the write buffer's entries in FIFO order.
func (c *Core) WBFIFO() []WBView {
	out := make([]WBView, len(c.wb))
	for i := range c.wb {
		out[i] = WBView{Token: c.wb[i].token, Inflight: c.wb[i].inflight, Done: c.wb[i].done}
	}
	return out
}

// SquashInfo records the most recent pipeline squash (for deadlock dumps).
type SquashInfo struct {
	Happened bool
	Cycle    uint64
	Reason   string
	Flushed  int // ROB entries squashed
	Redirect int // PC fetch resumed at
}

// LastSquash returns the most recent squash event, if any.
func (c *Core) LastSquash() SquashInfo { return c.lastSquash }

// StructuralCheck audits the core's queue invariants and returns a
// descriptive error for the first violation found:
//
//   - ROB/LQ/SQ/WB occupancies within configured capacities;
//   - every entry inside a circular-queue window [head, head+cnt) is valid
//     and sequence numbers are strictly increasing (squashes only ever
//     remove a suffix, so holes or inversions indicate corruption);
//   - ROB<->LQ/SQ cross-links agree in both directions;
//   - under TSO, the write buffer drains FIFO: tokens strictly increase, at
//     most one entry is in flight, and no performed entry lingers behind the
//     head (performed heads are popped eagerly).
func (c *Core) StructuralCheck() error {
	o := c.Occupancy()
	switch {
	case o.ROB < 0 || o.ROB > o.ROBCap:
		return fmt.Errorf("core%d: ROB occupancy %d outside [0,%d]", c.id, o.ROB, o.ROBCap)
	case o.LQ < 0 || o.LQ > o.LQCap:
		return fmt.Errorf("core%d: LQ occupancy %d outside [0,%d]", c.id, o.LQ, o.LQCap)
	case o.SQ < 0 || o.SQ > o.SQCap:
		return fmt.Errorf("core%d: SQ occupancy %d outside [0,%d]", c.id, o.SQ, o.SQCap)
	case o.WB > o.WBCap:
		return fmt.Errorf("core%d: WB occupancy %d exceeds %d", c.id, o.WB, o.WBCap)
	}
	var prev uint64
	for i := 0; i < c.robCnt; i++ {
		e := c.robAt(i)
		if !e.valid {
			return fmt.Errorf("core%d: rob[%d] in window but invalid", c.id, i)
		}
		if i > 0 && e.seq <= prev {
			return fmt.Errorf("core%d: rob[%d] seq %d not above predecessor %d", c.id, i, e.seq, prev)
		}
		prev = e.seq
		if e.lqIdx >= 0 {
			lq := &c.lq[e.lqIdx]
			if !lq.valid || lq.seq != e.seq || lq.robIdx != c.robPhys(i) {
				return fmt.Errorf("core%d: rob[%d] seq %d -> lq[%d] link broken (valid=%v seq=%d robIdx=%d)",
					c.id, i, e.seq, e.lqIdx, lq.valid, lq.seq, lq.robIdx)
			}
		}
		if e.sqIdx >= 0 {
			sq := &c.sq[e.sqIdx]
			if !sq.valid || sq.seq != e.seq || sq.robIdx != c.robPhys(i) {
				return fmt.Errorf("core%d: rob[%d] seq %d -> sq[%d] link broken (valid=%v seq=%d robIdx=%d)",
					c.id, i, e.seq, e.sqIdx, sq.valid, sq.seq, sq.robIdx)
			}
		}
	}
	prev = 0
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if !e.valid {
			return fmt.Errorf("core%d: lq[%d] in window but invalid", c.id, i)
		}
		if i > 0 && e.seq <= prev {
			return fmt.Errorf("core%d: lq[%d] seq %d not above predecessor %d", c.id, i, e.seq, prev)
		}
		prev = e.seq
		if !c.rob[e.robIdx].valid || c.rob[e.robIdx].seq != e.seq {
			return fmt.Errorf("core%d: lq[%d] seq %d -> rob[%d] link broken", c.id, i, e.seq, e.robIdx)
		}
	}
	prev = 0
	for i := 0; i < c.sqCnt; i++ {
		e := c.sqAt(i)
		if !e.valid {
			return fmt.Errorf("core%d: sq[%d] in window but invalid", c.id, i)
		}
		if i > 0 && e.seq <= prev {
			return fmt.Errorf("core%d: sq[%d] seq %d not above predecessor %d", c.id, i, e.seq, prev)
		}
		prev = e.seq
		if !c.rob[e.robIdx].valid || c.rob[e.robIdx].seq != e.seq {
			return fmt.Errorf("core%d: sq[%d] seq %d -> rob[%d] link broken", c.id, i, e.seq, e.robIdx)
		}
	}
	return c.checkWBFIFO()
}

// checkWBFIFO audits write-buffer ordering. Both models require strictly
// increasing tokens (stores enter in retirement order and are never
// reordered); TSO additionally requires one-at-a-time drains and eager head
// popping, so a performed entry behind an unperformed one is a leak.
func (c *Core) checkWBFIFO() error {
	inflight := 0
	var prev uint64
	for i := range c.wb {
		w := &c.wb[i]
		if i > 0 && w.token <= prev {
			return fmt.Errorf("core%d: wb[%d] token %d not above predecessor %d (FIFO order broken)",
				c.id, i, w.token, prev)
		}
		prev = w.token
		if w.inflight {
			inflight++
		}
		if c.run.Consistency == config.TSO {
			if w.done {
				return fmt.Errorf("core%d: wb[%d] performed but not popped under TSO", c.id, i)
			}
			if w.inflight && i != 0 {
				return fmt.Errorf("core%d: wb[%d] in flight but not the FIFO head under TSO", c.id, i)
			}
		}
	}
	max := 8
	if c.run.Consistency == config.TSO {
		max = 1
	}
	if inflight > max {
		return fmt.Errorf("core%d: %d write-buffer drains in flight, max %d under %v",
			c.id, inflight, max, c.run.Consistency)
	}
	return nil
}

// InjectRetireStall permanently disables this core's retirement stage. It
// exists ONLY for the mutation self-test in internal/invariant, which seeds
// known bugs to prove the forward-progress watchdog fires; nothing in normal
// operation calls it.
func (c *Core) InjectRetireStall() { c.retireStalled = true }
