package core

import (
	"fmt"
	"strings"
)

// DebugDump renders the core's in-flight state for diagnostics and tests.
func DebugDump(c *Core) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pc=%d fetchBuf=%d inFlight=%v stalled=%v resumeAt=%d\n",
		c.pc, len(c.fetchBuf), c.fetchInFlight, c.fetchStalled, c.fetchResumeAt)
	for i := 0; i < c.robCnt; i++ {
		e := c.robAt(i)
		fmt.Fprintf(&b, "rob[%2d] seq=%d pc=%3d %-24s st=%d syn=%v fence=%v resolved=%v src1=%d src2=%d\n",
			i, e.seq, e.pc, e.inst.String(), e.st, e.synthetic, e.fenceDone, e.resolved, e.src1Rob, e.src2Rob)
	}
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		fmt.Fprintf(&b, "lq[%2d] seq=%d addr=%#x ready=%v trans=%v issued=%v perf=%v usl=%v needV=%v veIss=%v veDone=%v stall=%d reuse=%v\n",
			i, e.seq, e.addr, e.addrReady, e.translated, e.issued, e.performed,
			e.isUSL, e.needV, e.valExpIssued, e.valExpDone, e.stallUntilStore, e.waitingReuse)
	}
	for i := 0; i < c.sqCnt; i++ {
		s := c.sqAt(i)
		fmt.Fprintf(&b, "sq[%2d] seq=%d addr=%#x ready=%v data=%v\n", i, s.seq, s.addr, s.addrReady, s.dataReady)
	}
	fmt.Fprintf(&b, "wb=%d epoch=%d\n", len(c.wb), c.epoch)
	if ls := c.lastSquash; ls.Happened {
		fmt.Fprintf(&b, "last squash: cycle=%d reason=%s flushed=%d redirect=%d\n",
			ls.Cycle, ls.Reason, ls.Flushed, ls.Redirect)
	}
	return b.String()
}
