package core

import (
	"invisispec/internal/isa"
	"invisispec/internal/stats"
)

// retire commits completed instructions in program order, up to RetireWidth
// per cycle. It also takes exceptions (privileged loads), applies timer
// interrupts (unless the InvisiSpec §VI-D window defers them), moves stores
// into the write buffer, and trains the branch predictor's direction tables
// with retired outcomes only.
func (c *Core) retire() {
	if c.retireStalled {
		return // mutation self-test hook (introspect.go)
	}
	if c.cfg.InterruptInterval > 0 && c.now > 0 &&
		c.now%uint64(c.cfg.InterruptInterval) == 0 && c.robCnt > 0 {
		if c.interruptsDisabled() {
			c.st.InterruptsDelayed++
		} else {
			resume := c.robAt(0).pc
			c.squashFromLogical(0, stats.SquashInterrupt, resume, true)
			return
		}
	}
	for n := 0; n < c.cfg.RetireWidth && c.robCnt > 0; n++ {
		e := c.robAt(0)
		op := e.inst.Op
		if e.st != stCompleted {
			return
		}
		switch {
		case op == isa.OpLoad:
			lq := &c.lq[e.lqIdx]
			if lq.isUSL {
				if lq.needV && !lq.valExpDone {
					// A validation holds up retirement (§V-A4).
					c.st.ValidationStall++
					return
				}
				if !lq.needV && !lq.valExpIssued {
					// An exposure only needs to have been sent (§V-A4).
					return
				}
			}
			if lq.priv {
				// Exception at retirement: the load's value is never
				// committed; everything (including this entry) squashes and
				// control transfers to the handler.
				c.st.Retired++
				c.st.LoadsRetired++
				c.emitCommit(e, true)
				handler := c.prog.Handler
				c.squashFromLogical(0, stats.SquashException, handler, true)
				if handler < 0 {
					c.halted = true
				}
				return
			}
			c.commitDest(e)
			c.freeHeadLQ(e)
			c.st.LoadsRetired++
		case op == isa.OpPrefetch:
			lq := &c.lq[e.lqIdx]
			if c.sch.UsesInvisibleLoads() && lq.isUSL && !lq.valExpIssued {
				return // the exposure must have been initiated
			}
			c.freeHeadLQ(e)
		case op == isa.OpStore:
			if !c.retireStoreToWB(&c.sq[e.sqIdx]) {
				return // write buffer full
			}
			c.freeHeadSQ(e)
			c.st.StoresRetired++
		case op == isa.OpHalt:
			c.st.Retired++
			c.emitCommit(e, false)
			c.halted = true
			c.popHead()
			return
		default:
			if op.IsCondBranch() {
				c.st.CondBranches++
				c.bp.TrainCond(e.pc, e.actualTaken, e.snap.GHR())
			}
			c.commitDest(e)
		}
		c.st.Retired++
		c.emitCommit(e, false)
		if !e.synthetic {
			c.exposeILine(e.pc)
		}
		c.popHead()
	}
}

// commitDest writes the architectural register file and releases the rename
// mapping if this entry still owns it.
func (c *Core) commitDest(e *robEntry) {
	if !e.inst.Op.HasDest() {
		return
	}
	c.regs[e.inst.Rd] = e.destVal
	phys := c.robPhys(0)
	if c.rat[e.inst.Rd] == phys {
		c.rat[e.inst.Rd] = -1
	}
}

func (c *Core) popHead() {
	// Materialize the retiring producer's value into any consumer still
	// holding a rename reference: the slot is about to be recycled.
	head := c.robHead
	val := c.rob[head].destVal
	for i := 1; i < c.robCnt; i++ {
		e := c.robAt(i)
		if e.src1Rob == head {
			e.src1Rob = noDep
			e.src1Val = val
		}
		if e.src2Rob == head {
			e.src2Rob = noDep
			e.src2Val = val
		}
	}
	c.rob[head].valid = false
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.robCnt--
}

func (c *Core) freeHeadLQ(e *robEntry) {
	lq := &c.lq[e.lqIdx]
	// Retire-time defense cleanup (e.g. SpecBox clears the retiring
	// load's speculation label).
	c.sch.OnRetireLoad(c.st, lq.isUSL)
	lq.valid = false
	if e.lqIdx != c.lqHead {
		panic("core: retiring load is not the LQ head")
	}
	c.lqHead = (c.lqHead + 1) % len(c.lq)
	c.lqCnt--
}

func (c *Core) freeHeadSQ(e *robEntry) {
	sq := &c.sq[e.sqIdx]
	sq.valid = false
	if e.sqIdx != c.sqHead {
		panic("core: retiring store is not the SQ head")
	}
	c.sqHead = (c.sqHead + 1) % len(c.sq)
	c.sqCnt--
}
