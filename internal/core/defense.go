package core

// This file adapts the core to the defense framework: defenseView is the
// read-only window policy hooks (internal/defense.View) get into the
// pipeline. Each method corresponds to a piece of tracking hardware a
// real implementation of a scheme would carry; schemes can ask these
// questions and nothing else, which is what keeps every registered
// scheme inside the stepped/fast kernel-equivalence and conformance
// proofs.

// defenseView implements defense.View without exporting the methods on
// Core itself (the same pattern as the memsys client adapter).
type defenseView Core

func (c *Core) view() *defenseView { return (*defenseView)(c) }

// isBlockStart reports whether pc starts a basic block per the program's
// bb metadata. Out-of-range PCs (wrong-path fetch past the program's end,
// which decodes as a halt) are conservatively treated as leaders.
func (c *Core) isBlockStart(pc int) bool {
	if pc < 0 || pc >= len(c.bbLeader) {
		return true
	}
	return c.bbLeader[pc]
}

// OlderUnresolvedBranch reports whether any control-flow instruction
// older than logical ROB position rl is still unresolved — the paper's
// Spectre-model visibility test.
func (v *defenseView) OlderUnresolvedBranch(rl int) bool {
	return (*Core)(v).hasOlderUnresolvedBranch(rl)
}

// FutureVisible reports whether the instruction at logical ROB position
// rl is no longer squashable by anything older — the paper's Futuristic
// visibility test (§VIII conditions).
func (v *defenseView) FutureVisible(rl int) bool {
	return (*Core)(v).futureVisible(rl)
}

// OlderUnresolvedControl reports whether any mispredictable control
// instruction (conditional branch, indirect jump, return) anywhere in
// the ROB is still unresolved. Direct jumps and calls are excluded:
// their targets are statically known, so they never redirect the front
// end away from the predicted path.
func (v *defenseView) OlderUnresolvedControl() bool {
	c := (*Core)(v)
	for i := 0; i < c.robCnt; i++ {
		e := c.robAt(i)
		if isBranchNeedingFence(e.inst.Op) && !e.resolved {
			return true
		}
	}
	return false
}
