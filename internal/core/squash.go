package core

import "invisispec/internal/stats"

// squashFromLogical squashes every ROB entry at logical position L and
// younger, rebuilds the rename table from the survivors, restores predictor
// speculative state, increments the squash epoch (§VI-C) and redirects
// fetch. restoreBpred selects whether to rewind to the first squashed
// control-flow snapshot (load-initiated squashes); branch mispredictions
// restore their own snapshot before calling this with restoreBpred=false.
func (c *Core) squashFromLogical(L int, reason stats.SquashReason, redirect int, restoreBpred bool) {
	if L < 0 {
		L = 0
	}
	c.st.Squashes[reason]++
	flushed := 0
	if L < c.robCnt {
		flushed = c.robCnt - L
		c.st.Squashed += uint64(flushed)
	}
	c.lastSquash = SquashInfo{
		Happened: true, Cycle: c.now, Reason: reason.String(),
		Flushed: flushed, Redirect: redirect,
	}
	if restoreBpred {
		restored := false
		for i := L; i < c.robCnt; i++ {
			if e := c.robAt(i); e.hasSnap {
				c.bp.Restore(e.snap)
				restored = true
				break
			}
		}
		if !restored {
			// No squashed ROB entry carries a snapshot, but instructions
			// still in the fetch buffer (all younger than the whole ROB, and
			// about to be discarded below) may already have speculated
			// through the predictor — calls pushed the RAS, ret/cond
			// predictions shifted the GHR. Rewind to the oldest such
			// snapshot, or stale entries survive the squash: a deep
			// CALL-nest squashed this way leaves rasTop wrapped into
			// garbage and every return after re-fetch mispredicts.
			for _, fi := range c.fetchBuf {
				if fi.hasSnap {
					c.bp.Restore(fi.snap)
					break
				}
			}
		}
	}
	specFlushed := 0
	for i := c.robCnt - 1; i >= L; i-- {
		e := c.robAt(i)
		if e.lqIdx >= 0 && c.lq[e.lqIdx].valid && c.lq[e.lqIdx].seq == e.seq {
			if c.lq[e.lqIdx].isUSL {
				specFlushed++
			}
			c.lq[e.lqIdx].valid = false
			c.lqCnt--
		}
		if e.sqIdx >= 0 && c.sq[e.sqIdx].valid && c.sq[e.sqIdx].seq == e.seq {
			c.sq[e.sqIdx].valid = false
			c.sqCnt--
		}
		e.valid = false
	}
	// Squash-time defense cleanup (e.g. SpecBox flushes the labels of the
	// speculative loads the squash invalidated).
	c.sch.OnSquash(c.st, specFlushed)
	if L < c.robCnt {
		c.robCnt = L
	}
	// Rebuild the rename table from surviving entries, oldest first.
	for r := range c.rat {
		c.rat[r] = -1
	}
	for i := 0; i < c.robCnt; i++ {
		e := c.robAt(i)
		if e.inst.Op.HasDest() {
			c.rat[e.inst.Rd] = c.robPhys(i)
		}
	}
	c.epoch++
	c.fetchBuf = c.fetchBuf[:0]
	c.fetchInFlight = false
	c.fetchToken = 0
	c.fetchStalled = false
	c.haltSeen = false
	c.pc = redirect
	c.fetchResumeAt = c.now + uint64(c.cfg.RedirectPenalty)
}
