package core

import (
	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/memsys"
	"invisispec/internal/stats"
)

// This file implements the InvisiSpec load flows of paper §V–§VI: deciding
// whether a load is an Unsafe Speculative Load (USL), issuing invisible
// Spec-GetS reads into the Speculative Buffer, tracking the visibility
// point under the Spectre and Futuristic attack models, choosing between
// validation and exposure per the memory consistency model, ordering and
// overlapping those transactions, and reacting to invalidations with early
// squashes.

// loadSafeNow reports whether the load at LQ logical position i may be
// issued as a normal (visible) access under the active defense scheme.
func (c *Core) loadSafeNow(i int, e *lqEntry) bool {
	if e.safeAnnot && c.cfg.TrustSafeAnnotations {
		// §XI optimization: a load proven safe in advance needs no
		// InvisiSpec hardware. This threat-model carve-out is handled
		// here, before the scheme is consulted, so every
		// invisible-load defense inherits it identically.
		return true
	}
	return c.sch.LoadSafeNow(c.view(), c.robLogical(e.robIdx))
}

// loadVisible reports whether the USL at LQ logical position i has reached
// its visibility point (§V-A1) under the active defense scheme.
func (c *Core) loadVisible(i int, e *lqEntry) bool {
	return c.sch.LoadVisible(c.view(), c.robLogical(e.robIdx))
}

func (c *Core) hasOlderUnresolvedBranch(rl int) bool {
	for j := 0; j < rl; j++ {
		o := c.robAt(j)
		if o.inst.Op.IsBranch() && !o.resolved {
			return true
		}
	}
	return false
}

// futureVisible implements the §VIII conditions for the Futuristic model:
// every older instruction (i) can no longer raise an exception, (ii) is not
// an unresolved control-flow instruction, (iii) is not a store still in the
// ROB (stores must have retired into the write buffer), (iv) is a load that
// has finished its validation or initiated its exposure, and (v) is not an
// incomplete synchronisation or fence. Interrupts are handled by the
// §VI-D interrupt-disable window (see interruptsDisabled).
func (c *Core) futureVisible(rl int) bool {
	for j := 0; j < rl; j++ {
		o := c.robAt(j)
		op := o.inst.Op
		switch {
		case op.IsBranch():
			if !o.resolved {
				return false
			}
		case op == isa.OpLoad, op == isa.OpPrefetch:
			lq := &c.lq[o.lqIdx]
			if !lq.performed || lq.priv {
				return false
			}
			if lq.isUSL {
				if lq.needV && !lq.valExpDone {
					return false
				}
				if !lq.needV && !lq.valExpIssued {
					return false
				}
			}
		case op == isa.OpStore, op == isa.OpRMW, op == isa.OpHalt:
			return false
		case isFenceLike(o):
			if !o.fenceDone {
				return false
			}
		}
	}
	return true
}

// issueUSL sends an invisible Spec-GetS for the load at LQ logical position
// i, first trying to reuse the line from an older USL's SB entry (§V-E).
func (c *Core) issueUSL(i int, e *lqEntry) {
	e.isUSL = true
	if c.cfg.SBReuse && i >= 0 {
		for j := i - 1; j >= 0; j-- {
			o := c.lqAt(j)
			if !o.valid || !o.isUSL || !o.addrReady {
				continue
			}
			if o.lineAddr() != e.lineAddr() {
				continue
			}
			if o.lineCaptured {
				c.copySBLine(e, o)
				c.st.SBReuseHits++
				return
			}
			if o.issued || o.waitingReuse {
				// Wait for the older USL's line and copy it on arrival.
				e.waitingReuse = true
				e.reuseFromIdx = c.lqPhys(j)
				e.reuseFromSeq = o.seq
				e.issued = true
				c.st.SBReuseHits++
				return
			}
		}
	}
	tok := c.token()
	req := memsys.Request{
		Type:  memsys.SpecRead,
		Core:  c.id,
		Addr:  e.addr,
		Token: tok,
		LQIdx: c.lqPhys(i),
		Epoch: c.epoch,
	}
	if c.hier.Submit(req) {
		e.issued = true
		e.reqToken = tok
		c.st.USLsIssued++
		c.st.SBReuseMisses++
	}
}

// copySBLine copies an older USL's SB line into e (preserving e's
// store-forwarded bytes) and performs e.
func (c *Core) copySBLine(e, src *lqEntry) {
	for b := uint64(0); b < 64; b++ {
		if e.fwdMask&(1<<b) == 0 {
			e.sbData[b] = src.sbData[b]
		}
	}
	off := e.addr - e.lineAddr()
	for b := uint64(0); b < uint64(e.size); b++ {
		e.readMask |= 1 << (off + b)
	}
	e.lineCaptured = true
	e.waitingReuse = false
	e.reused = true
	e.issued = true
	if e.fwdFromSeq == 0 {
		e.value = e.loadValue()
	}
	c.markPerformed(e)
}

// reuseStep checks whether a reuse-waiting USL's source line has arrived
// (or its source was squashed, in which case the USL issues its own read).
func (c *Core) reuseStep(e *lqEntry) {
	src := &c.lq[e.reuseFromIdx]
	if !src.valid || src.seq != e.reuseFromSeq {
		e.waitingReuse = false
		e.issued = false
		return
	}
	if src.lineCaptured {
		c.copySBLine(e, src)
	}
}

// wakeReuseWaiters copies a freshly arrived line into every USL waiting on
// it.
func (c *Core) wakeReuseWaiters(src *lqEntry) {
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if e.valid && e.waitingReuse && e.reuseFromSeq == src.seq {
			c.copySBLine(e, src)
		}
	}
}

// decideValidationOrExposure classifies a USL at perform time per the
// memory model (§V-C): under TSO a USL needs a validation if any older load
// or fence is still outstanding (the §V-C1 transform downgrades that to an
// exposure when every older load has performed and validated); under RC
// only USLs with an older incomplete fence/acquire validate.
func (c *Core) decideValidationOrExposure(e *lqEntry) {
	if e.prefetch {
		e.needV = false // prefetches skip consistency checks (§VI-B)
		return
	}
	if e.reused {
		// A reused SB line is a snapshot taken at an OLDER load's read: the
		// value may already be stale, so the load must validate. Without
		// this, a spin loop whose iterations keep copying one stale line
		// would never observe the lock release (liveness violation).
		e.needV = true
		return
	}
	rl := c.robLogical(e.robIdx)
	needV := false
	for j := 0; j < rl && !needV; j++ {
		o := c.robAt(j)
		op := o.inst.Op
		switch {
		case op == isa.OpLoad:
			if c.run.Consistency != config.TSO {
				continue
			}
			if !c.cfg.VToETransform {
				needV = true
				continue
			}
			lq := &c.lq[o.lqIdx]
			if !lq.performed {
				needV = true
			} else if lq.isUSL && lq.needV && !lq.valExpDone {
				needV = true
			}
		case isFenceLike(o), op == isa.OpRMW:
			if op == isa.OpRelease && c.run.Consistency == config.RC {
				continue // releases do not order later loads under RC
			}
			if !o.fenceDone && op != isa.OpRMW || op == isa.OpRMW && o.st != stCompleted {
				needV = true
			}
		}
	}
	e.needV = needV
}

// invisiStep issues validations and exposures for USLs that have reached
// their visibility point, honouring the §V-D ordering rules: transactions
// start in program order; under the Futuristic model an in-flight
// validation blocks everything younger while exposures overlap; same-line
// transactions are totally ordered.
func (c *Core) invisiStep() {
	if !c.sch.UsesInvisibleLoads() {
		return
	}
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if !e.valid || !e.isUSL {
			continue
		}
		if e.valExpIssued {
			if e.valExpDone {
				continue
			}
			if e.needV && (c.sch.ValidationBlocksYounger() || !c.cfg.OverlapValExp) {
				return // a validation blocks all younger transactions
			}
			if !e.needV && !c.cfg.OverlapValExp {
				return
			}
			continue
		}
		if !e.lineCaptured || e.waitingReuse {
			// Its own data has not arrived: nothing younger may start
			// either (program-order start).
			return
		}
		if !c.loadVisible(i, e) {
			return
		}
		// Same-line total order with older in-flight transactions.
		blocked := false
		for j := 0; j < i; j++ {
			o := c.lqAt(j)
			if o.valid && o.isUSL && o.valExpIssued && !o.valExpDone &&
				o.lineAddr() == e.lineAddr() {
				blocked = true
				break
			}
		}
		if blocked {
			return
		}
		typ := memsys.Expose
		if e.needV {
			typ = memsys.Validate
		}
		tok := c.token()
		req := memsys.Request{
			Type:  typ,
			Core:  c.id,
			Addr:  e.addr,
			Token: tok,
			LQIdx: c.lqPhys(i),
			Epoch: c.epoch,
		}
		if !c.hier.Submit(req) {
			return
		}
		e.valExpIssued = true
		e.valExpToken = tok
		if e.tlbTouchOwed {
			// Apply the deferred TLB replacement update at visibility.
			c.dtlb.Touch(e.addr)
			e.tlbTouchOwed = false
		}
		if !e.needV {
			c.st.Exposures++
		}
		if e.needV && (c.sch.ValidationBlocksYounger() || !c.cfg.OverlapValExp) {
			return
		}
	}
}

// validationArrived compares the SB bytes against the line's current value;
// a mismatch squashes the load (memory-consistency enforcement, §V-A4). On
// success, younger same-line USLs awaiting validation are cross-checked and
// squashed early if already stale (§V-C2).
func (c *Core) validationArrived(r memsys.Response) {
	e := c.findLQByValExpToken(r.Token)
	if e == nil {
		return
	}
	if r.L1Hit {
		c.st.ValidationsL1Hit++
	} else {
		// LLC-SB-served validations are L1 misses in Table VI's accounting;
		// the LLC-SB hit rate is reported separately.
		c.st.ValidationsL1Miss++
	}
	if !c.sbMatchesMemory(e) {
		c.st.ValidationFailures++
		c.squashLoad(e, stats.SquashValidation)
		return
	}
	e.valExpDone = true
	if !c.cfg.EarlySquash {
		return
	}
	for i := 0; i < c.lqCnt; i++ {
		o := c.lqAt(i)
		if !o.valid || o.seq <= e.seq || !o.performed || !o.isUSL {
			continue
		}
		if !o.needV || o.valExpDone || o.lineAddr() != e.lineAddr() {
			continue
		}
		if !c.sbMatchesMemory(o) {
			c.squashLoad(o, stats.SquashEarly)
			return
		}
	}
}

// sbMatchesMemory compares the bytes the load consumed (excluding
// store-forwarded bytes, which never came from memory) against the current
// memory value.
func (c *Core) sbMatchesMemory(e *lqEntry) bool {
	mask := e.readMask &^ e.fwdMask
	base := e.lineAddr()
	for b := uint64(0); b < 64; b++ {
		if mask&(1<<b) != 0 && e.sbData[b] != c.mem.ByteAt(base+b) {
			return false
		}
	}
	return true
}

// exposureArrived completes an exposure (the line is now in the caches).
// The USL may already have retired; stale tokens are ignored.
func (c *Core) exposureArrived(r memsys.Response) {
	if e := c.findLQByValExpToken(r.Token); e != nil {
		e.valExpDone = true
	}
}

func (c *Core) findLQByValExpToken(tok uint64) *lqEntry {
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if e.valid && e.valExpIssued && e.valExpToken == tok {
			return e
		}
	}
	return nil
}

// onLineGone reacts to a line leaving the L1 (invalidation or eviction):
// conventional performed loads squash per the consistency model; V-state
// USLs squash early on invalidations (§V-C2); E/C-state USLs are unaffected
// (the optimization the paper credits for blackscholes/swaptions speedups).
func (c *Core) onLineGone(lineNum uint64, isInvalidation bool) {
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if !e.valid || !e.performed || e.fwdFromSeq != 0 {
			continue
		}
		if e.lineAddr()>>6 != lineNum {
			continue
		}
		if e.isUSL {
			if isInvalidation && e.needV && !e.valExpDone && c.cfg.EarlySquash {
				c.squashLoad(e, stats.SquashEarly)
				return
			}
			continue
		}
		// Conventional (or safe-N) performed, non-retired load.
		if c.run.Consistency == config.TSO {
			c.squashLoad(e, stats.SquashConsistency)
			return
		}
		if c.hasOlderAcquire(c.robLogical(e.robIdx)) {
			c.squashLoad(e, stats.SquashConsistency)
			return
		}
	}
}

func (c *Core) hasOlderAcquire(rl int) bool {
	for j := 0; j < rl; j++ {
		switch c.robAt(j).inst.Op {
		case isa.OpAcquire, isa.OpFence, isa.OpRMW:
			return true
		}
	}
	return false
}

// interruptsDisabled implements the §VI-D window: interrupts are deferred
// while a USL that has initiated its validation/exposure has not yet
// reached the ROB head (on schemes that defer interrupts at all).
func (c *Core) interruptsDisabled() bool {
	if !c.sch.DefersInterrupts() {
		return false
	}
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		// Disabled from validation/exposure initiation until the USL
		// reaches the ROB head (where interrupts re-enable).
		if e.valid && e.isUSL && e.valExpIssued && c.robLogical(e.robIdx) > 0 {
			return true
		}
	}
	return false
}
