package core

import (
	"invisispec/internal/bpred"
	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/stats"
)

// stage tracks a ROB entry's progress.
type stage uint8

const (
	stDispatched stage = iota // waiting for operands / issue slot
	stExecuting               // in a functional unit (or address generation)
	stWaitMem                 // address generated; waiting on the memory system
	stCompleted               // result available (loads: performed)
)

const noDep = -1

// robEntry is one in-flight dynamic instruction.
type robEntry struct {
	valid     bool
	seq       uint64
	pc        int
	inst      isa.Inst
	synthetic bool // defense fence injected at decode (Table V)
	st        stage

	execDoneAt uint64

	// Operand capture: srcNRob is the producing ROB slot or noDep when the
	// value is already in srcNVal.
	src1Rob int
	src2Rob int
	src1Val uint64
	src2Val uint64
	destVal uint64

	// Control flow.
	predTaken    bool
	predTarget   int
	btbMiss      bool // the indirect jump fetch is stalled on
	hasSnap      bool
	snap         bpred.State
	resolved     bool
	actualTaken  bool
	actualTarget int
	mispredicted bool

	// Memory.
	lqIdx int // physical LQ slot or -1
	sqIdx int // physical SQ slot or -1

	// RMW progress.
	rmwIssued bool

	// Fence-like ops.
	fenceDone bool
}

func needsSrc1(op isa.Op) bool {
	switch op {
	case isa.OpNop, isa.OpLui, isa.OpJmp, isa.OpCall, isa.OpFence,
		isa.OpAcquire, isa.OpRelease, isa.OpHalt:
		return false
	}
	return true
}

func needsSrc2(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl,
		isa.OpShr, isa.OpMul, isa.OpDiv, isa.OpDivS, isa.OpRemU, isa.OpSlt,
		isa.OpStore, isa.OpRMW,
		isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		return true
	}
	return false
}

// robAt returns the entry at logical position i (0 = oldest).
func (c *Core) robAt(i int) *robEntry {
	return &c.rob[(c.robHead+i)%len(c.rob)]
}

// robPhys returns the physical index of logical position i.
func (c *Core) robPhys(i int) int { return (c.robHead + i) % len(c.rob) }

// robLogical returns the logical position of a physical slot (O(ROB)).
func (c *Core) robLogical(phys int) int {
	l := phys - c.robHead
	if l < 0 {
		l += len(c.rob)
	}
	return l
}

// dispatch renames and inserts instructions from the fetch buffer into the
// ROB (and LQ/SQ), applying the defense scheme's front-end policy:
// dispatch stalls (BasicBlocker-style block boundaries) and synthetic
// fence injection (Table V).
func (c *Core) dispatch() {
	width := c.cfg.FetchWidth
	for n := 0; n < width && len(c.fetchBuf) > 0; n++ {
		if c.haltSeen {
			return
		}
		fi := c.fetchBuf[0]
		op := fi.inst.Op
		// The scheme may refuse to dispatch past a basic-block boundary
		// while older control flow is unresolved. The stall is transient:
		// branches resolve unconditionally once their operands arrive, so
		// the front end always unblocks.
		if c.sch.StallDispatch(c.view(), fi.blockStart) {
			return
		}
		// Defense fences occupy an extra ROB slot (Table V).
		fenceBefore := c.sch.FenceBeforeLoads() && op == isa.OpLoad
		fenceAfter := c.sch.FenceAfterBranches() && isBranchNeedingFence(op)
		slots := 1
		if fenceBefore || fenceAfter {
			slots = 2
		}
		if c.robCnt+slots > len(c.rob) {
			return
		}
		needsLQ := op == isa.OpLoad || op == isa.OpPrefetch
		needsSQ := op == isa.OpStore
		if needsLQ && c.lqCnt >= len(c.lq) {
			return
		}
		if needsSQ && c.sqCnt >= len(c.sq) {
			return
		}
		if fenceBefore {
			c.insertEntry(fetchedInst{pc: fi.pc, inst: isa.Inst{Op: isa.OpFence}, synthetic: true})
			n++
		}
		c.fetchBuf = c.fetchBuf[1:]
		c.insertEntry(fi)
		if op == isa.OpHalt {
			// Halts serialize the front end: nothing beyond a halt is
			// dispatched (it would execute speculatively past the end of
			// the program, polluting the caches).
			c.haltSeen = true
			c.fetchBuf = c.fetchBuf[:0]
			return
		}
		if fenceAfter {
			c.insertEntry(fetchedInst{pc: fi.pc, inst: isa.Inst{Op: isa.OpFence}, synthetic: true})
			n++
		}
	}
}

func isBranchNeedingFence(op isa.Op) bool {
	return op.IsCondBranch() || op == isa.OpJmpI || op == isa.OpRet
}

// insertEntry allocates and renames one ROB entry. Callers have verified
// space. A synthetic fetchedInst (defense fence) consumes no fetch-buffer
// slot.
func (c *Core) insertEntry(fi fetchedInst) {
	phys := c.robPhys(c.robCnt)
	c.robCnt++
	e := &c.rob[phys]
	c.nextToken++
	*e = robEntry{
		valid:      true,
		seq:        c.nextToken,
		pc:         fi.pc,
		inst:       fi.inst,
		synthetic:  fi.synthetic,
		st:         stDispatched,
		src1Rob:    noDep,
		src2Rob:    noDep,
		predTaken:  fi.predTaken,
		predTarget: fi.predTarget,
		btbMiss:    fi.btbMiss,
		hasSnap:    fi.hasSnap,
		snap:       fi.snap,
		lqIdx:      -1,
		sqIdx:      -1,
	}
	op := fi.inst.Op
	if needsSrc1(op) {
		if p := c.rat[fi.inst.Rs1]; p >= 0 {
			e.src1Rob = p
		} else {
			e.src1Val = c.regs[fi.inst.Rs1]
		}
	}
	if needsSrc2(op) {
		if p := c.rat[fi.inst.Rs2]; p >= 0 {
			e.src2Rob = p
		} else {
			e.src2Val = c.regs[fi.inst.Rs2]
		}
	}
	if op.HasDest() {
		c.rat[fi.inst.Rd] = phys
	}
	switch {
	case op == isa.OpLoad || op == isa.OpPrefetch:
		e.lqIdx = c.allocLQ(e.seq, phys, fi.inst)
	case op == isa.OpStore:
		e.sqIdx = c.allocSQ(e.seq, phys, fi.inst)
	case op == isa.OpNop || op == isa.OpHalt:
		e.st = stCompleted
	case op == isa.OpAcquire || op == isa.OpRelease:
		if c.run.Consistency == config.TSO {
			// TSO already provides acquire/release ordering.
			e.st = stCompleted
			e.fenceDone = true
		}
	}
}

// srcReady pulls a source operand if its producer has completed, and reports
// whether the operand is available.
func (c *Core) srcReady(rob *int, val *uint64) bool {
	if *rob == noDep {
		return true
	}
	p := &c.rob[*rob]
	if p.st != stCompleted {
		return false
	}
	*val = p.destVal
	*rob = noDep
	return true
}

func (c *Core) operandsReady(e *robEntry) bool {
	r1 := c.srcReady(&e.src1Rob, &e.src1Val)
	r2 := c.srcReady(&e.src2Rob, &e.src2Val)
	return r1 && r2
}

// issue selects up to IssueWidth ready instructions, oldest first, honouring
// functional-unit counts and fence blocking.
func (c *Core) issue() {
	slots := c.cfg.IssueWidth
	alus := c.cfg.IntALUs
	muldivs := c.cfg.MulDivUnits
	agus := c.cfg.L1D.Ports
	blockedAll := false // incomplete synthetic (defense) fence seen
	blockedMem := false // incomplete memory fence / acquire seen
	for i := 0; i < c.robCnt && slots > 0; i++ {
		e := c.robAt(i)
		op := e.inst.Op
		if e.st == stDispatched {
			if blockedAll {
				continue
			}
			if blockedMem && (op.IsMem() || op == isa.OpFence) {
				continue
			}
			if !c.operandsReady(e) {
				goto trackFences
			}
			switch {
			case op == isa.OpCycle:
				if alus == 0 {
					goto trackFences
				}
				alus--
				e.st = stExecuting
				e.execDoneAt = c.now + 1
			case op == isa.OpMul:
				if muldivs == 0 {
					goto trackFences
				}
				muldivs--
				e.st = stExecuting
				e.execDoneAt = c.now + uint64(c.cfg.LatMul)
			case op == isa.OpDiv || op == isa.OpDivS || op == isa.OpRemU:
				if muldivs == 0 {
					goto trackFences
				}
				muldivs--
				e.st = stExecuting
				e.execDoneAt = c.now + uint64(c.cfg.LatDiv)
			case op.IsALU():
				if alus == 0 {
					goto trackFences
				}
				alus--
				e.st = stExecuting
				e.execDoneAt = c.now + uint64(c.cfg.LatALU)
			case op.IsBranch():
				if alus == 0 {
					goto trackFences
				}
				alus--
				e.st = stExecuting
				e.execDoneAt = c.now + 1
			case op.IsMem():
				// Address generation.
				if agus == 0 {
					goto trackFences
				}
				agus--
				e.st = stExecuting
				e.execDoneAt = c.now + 1
			case op == isa.OpFence || op == isa.OpAcquire || op == isa.OpRelease:
				// Fences occupy no FU; completion is tracked separately.
				e.st = stWaitMem
			default:
				e.st = stCompleted
			}
			slots--
		}
	trackFences:
		if isFenceLike(e) && !e.fenceDone {
			if e.synthetic {
				blockedAll = true
			} else if op == isa.OpFence || op == isa.OpAcquire {
				blockedMem = true
			}
		}
		// An incomplete atomic blocks younger memory operations: it has
		// fence semantics, and younger loads have no forwarding path from
		// it, so letting them read around it would break program order.
		if op == isa.OpRMW && e.st != stCompleted {
			blockedMem = true
		}
	}
}

func isFenceLike(e *robEntry) bool {
	switch e.inst.Op {
	case isa.OpFence, isa.OpAcquire, isa.OpRelease:
		return true
	}
	return false
}

// completeExec moves instructions whose functional-unit latency has elapsed
// into the completed state, resolving branches and store addresses.
func (c *Core) completeExec() {
	for i := 0; i < c.robCnt; i++ {
		e := c.robAt(i)
		if e.st != stExecuting || e.execDoneAt > c.now {
			continue
		}
		op := e.inst.Op
		switch {
		case op == isa.OpCycle:
			e.destVal = c.now
			e.st = stCompleted
		case op.IsALU():
			e.destVal = isa.EvalALU(op, e.src1Val, e.src2Val, e.inst.Imm)
			e.st = stCompleted
		case op.IsBranch():
			if c.resolveBranch(i, e) {
				return // squash invalidated the scan
			}
		case op == isa.OpLoad || op == isa.OpPrefetch:
			lq := &c.lq[e.lqIdx]
			// Natural alignment mirrors the golden interpreter: the LSQ
			// forwarding masks and the speculative buffer track data within
			// one 64-byte line, which aligned accesses never straddle.
			lq.addr = isa.AlignAddr(e.src1Val+uint64(e.inst.Imm), lq.size)
			lq.addrReady = true
			e.st = stWaitMem
		case op == isa.OpStore:
			sq := &c.sq[e.sqIdx]
			sq.addr = isa.AlignAddr(e.src1Val+uint64(e.inst.Imm), sq.size)
			sq.addrReady = true
			sq.data = e.src2Val
			sq.dataReady = true
			e.st = stCompleted
			if c.storeAliasSquash(i, sq) {
				return
			}
		case op == isa.OpRMW, op == isa.OpFlush:
			e.st = stWaitMem // waits for ROB head; memStep issues it
		default:
			e.st = stCompleted
		}
	}
}

// resolveBranch compares outcome with prediction, squashing on a
// misprediction. It reports whether a squash happened.
func (c *Core) resolveBranch(logical int, e *robEntry) bool {
	op := e.inst.Op
	e.resolved = true
	var next int
	switch {
	case op.IsCondBranch():
		e.actualTaken = isa.BranchTaken(op, e.src1Val, e.src2Val)
		e.actualTarget = e.inst.Target
		if e.actualTaken {
			next = e.inst.Target
		} else {
			next = e.pc + 1
		}
	case op == isa.OpJmp:
		e.actualTaken, e.actualTarget = true, e.inst.Target
		next = e.inst.Target
	case op == isa.OpCall:
		e.actualTaken, e.actualTarget = true, e.inst.Target
		e.destVal = uint64(e.pc + 1)
		next = e.inst.Target
	case op == isa.OpJmpI, op == isa.OpRet:
		e.actualTaken = true
		e.actualTarget = int(e.src1Val)
		next = e.actualTarget
		if op == isa.OpJmpI {
			c.bp.TrainTarget(e.pc, e.actualTarget)
		}
	}
	e.st = stCompleted

	if c.fetchStalled && e.btbMiss {
		// This is the exact instruction fetch is stalled on (BTB miss), by
		// construction the youngest ever fetched: resume down the resolved
		// path; nothing younger exists to squash. An OLDER branch resolving
		// during the stall must not take this path — the stalled jump may
		// still be in the fetch buffer (not yet in the ROB), and wrong-path
		// instructions between the two would survive an un-squashed
		// redirect.
		c.fetchStalled = false
		c.pc = next
		return false
	}

	mispredict := false
	if op.IsCondBranch() {
		mispredict = e.actualTaken != e.predTaken
	} else if op == isa.OpJmpI || op == isa.OpRet {
		mispredict = e.actualTarget != e.predTarget
	}
	if !mispredict {
		return false
	}
	e.mispredicted = true
	c.bp.NoteMisprediction()
	c.st.Mispredicts++
	c.bp.Restore(e.snap)
	if op.IsCondBranch() {
		c.bp.FixupHistory(e.actualTaken)
	} else if op == isa.OpRet {
		// The snapshot re-pushed the consumed RAS entry; the return did
		// architecturally consume it.
		c.bp.PopRAS()
	}
	c.squashFromLogical(logical+1, stats.SquashBranch, next, false)
	return true
}

// updateFenceCompletion advances fence-like instructions. A defense
// (synthetic) fence completes when every older instruction has completed; a
// full fence additionally requires all older stores to have performed (no
// older store in the ROB and an empty write buffer); an acquire requires all
// older loads performed; a release requires older loads performed and older
// stores performed.
func (c *Core) updateFenceCompletion() {
	allOlderDone := true
	olderLoadsPerformed := true
	olderStorePresent := false
	for i := 0; i < c.robCnt; i++ {
		e := c.robAt(i)
		op := e.inst.Op
		if isFenceLike(e) && !e.fenceDone {
			done := false
			switch {
			case e.synthetic:
				done = allOlderDone
			case op == isa.OpFence:
				done = allOlderDone && !olderStorePresent && len(c.wb) == 0
			case op == isa.OpAcquire:
				done = olderLoadsPerformed
			case op == isa.OpRelease:
				done = olderLoadsPerformed && !olderStorePresent && len(c.wb) == 0
			}
			if done {
				e.fenceDone = true
				e.st = stCompleted
			}
		}
		if e.st != stCompleted {
			allOlderDone = false
		}
		if op == isa.OpLoad {
			if e.lqIdx >= 0 && !c.lq[e.lqIdx].performed {
				olderLoadsPerformed = false
				allOlderDone = false
			}
		}
		if op == isa.OpStore {
			olderStorePresent = true
		}
		if isFenceLike(e) && !e.fenceDone {
			allOlderDone = false
		}
	}
}
