package core

import "invisispec/internal/isa"

// CommitEvent describes one architecturally retired instruction.
type CommitEvent struct {
	Cycle uint64
	Seq   uint64 // per-core retirement index (0, 1, 2, ...)
	PC    int
	Inst  isa.Inst
	// WroteReg/RegValue capture the architectural register write, if any.
	WroteReg bool
	Reg      uint8
	RegValue uint64
	// Fault marks an instruction that retired by raising an exception.
	Fault bool
}

// Tracer consumes the committed-instruction stream of one core, in order.
// Attach one with SetTracer; it observes exactly the architectural
// execution (squashed wrong-path work never appears), which makes it both a
// debugging artifact (cmd/invisisim -trace) and a correctness oracle: the
// stream must equal the functional interpreter's execution.
type Tracer func(CommitEvent)

// SetTracer installs (or, with nil, removes) the core's commit tracer.
func (c *Core) SetTracer(t Tracer) { c.tracer = t }

func (c *Core) emitCommit(e *robEntry, fault bool) {
	if c.tracer == nil || e.synthetic {
		return
	}
	ev := CommitEvent{
		Cycle: c.now,
		Seq:   c.commitSeq,
		PC:    e.pc,
		Inst:  e.inst,
		Fault: fault,
	}
	if !fault && e.inst.Op.HasDest() {
		ev.WroteReg = true
		ev.Reg = e.inst.Rd
		ev.RegValue = e.destVal
	}
	c.commitSeq++
	c.tracer(ev)
}
