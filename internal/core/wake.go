package core

import (
	"invisispec/internal/config"
	"invisispec/internal/isa"
)

// This file implements the engine.Component quiescence side of the core:
// NextWake derives, from post-tick pipeline state only, the earliest future
// cycle at which any stage could perform non-trivial work, and SkipIdle
// bulk-advances the per-cycle counters across a fast-forward jump.
//
// The contract with the kernel (internal/engine) is one-way conservative:
// NextWake may under-promise (report "busy" for a cycle that turns out to be
// a no-op — the kernel just ticks it, exactly like the reference stepper)
// but must never over-promise (report a wake beyond a cycle where a stage
// would have acted — that would diverge from the reference stepper). Every
// predicate below therefore mirrors the corresponding stage's own gating
// conditions read-only, in the same order the stage evaluates them; the
// golden-equivalence tests in internal/sim hold the two kernels to
// byte-identical stats fingerprints.

// NeverWake mirrors engine.Never ("waiting on an external response only")
// without importing the engine package: core sits below the kernel layer.
const NeverWake = ^uint64(0)

// NextWake reports the earliest cycle > now at which this core could do
// non-trivial work, assuming no memory response arrives before then (the
// hierarchy's own NextWake bounds response arrivals). It is side-effect-free.
func (c *Core) NextWake(now uint64) uint64 {
	busy := now + 1
	if c.halted {
		// A halted core only drains its write buffer; entries already in
		// flight complete via hierarchy events.
		if c.wbWantsIssue() {
			return busy
		}
		return NeverWake
	}
	wake := NeverWake
	if !c.retireStalled {
		// Timer interrupts fire at fixed boundaries whenever the ROB is
		// occupied: never skip over one (retire either squashes there or
		// counts a deferred interrupt).
		if c.cfg.InterruptInterval > 0 && c.robCnt > 0 {
			ii := uint64(c.cfg.InterruptInterval)
			if b := now + ii - now%ii; b < wake {
				wake = b
			}
		}
		if c.retireWouldAct() {
			return busy
		}
	}
	if c.wbWantsIssue() || c.fenceWouldComplete() || c.headMemWouldAct() ||
		c.invisiWouldIssue() || c.dispatchWouldInsert() {
		return busy
	}
	if w, b := c.robWake(); b {
		return busy
	} else if w < wake {
		wake = w
	}
	if w, b := c.lqWake(); b {
		return busy
	} else if w < wake {
		wake = w
	}
	if w, b := c.fetchWake(now); b {
		return busy
	} else if w < wake {
		wake = w
	}
	if wake <= now {
		// Defensive clamp: a mid-tick early return (e.g. a squash aborting a
		// scan) can leave state due "in the past"; treat it as busy.
		return busy
	}
	return wake
}

// SkipIdle advances the per-cycle counters by k cycles of verified idleness:
// Tick unconditionally counts a cycle for a non-halted core, and retire
// counts a validation-stall cycle whenever the ROB head is a USL held up by
// its validation. Both predicates are constant across an idle window, so a
// jump of k cycles accounts exactly k of each.
func (c *Core) SkipIdle(k uint64) {
	if c.halted {
		return
	}
	c.st.Cycles += k
	if c.validationStalled() {
		c.st.ValidationStall += k
	}
}

// validationStalled mirrors retire's §V-A4 stall accounting: the ROB head is
// a completed USL load whose required validation has not finished.
func (c *Core) validationStalled() bool {
	if c.retireStalled || c.robCnt == 0 {
		return false
	}
	e := c.robAt(0)
	if e.st != stCompleted || e.inst.Op != isa.OpLoad {
		return false
	}
	lq := &c.lq[e.lqIdx]
	return lq.isUSL && lq.needV && !lq.valExpDone
}

// retireWouldAct mirrors retire's head-of-ROB gating: true when at least the
// oldest instruction would commit (or take its exception) next cycle.
func (c *Core) retireWouldAct() bool {
	if c.robCnt == 0 {
		return false
	}
	e := c.robAt(0)
	if e.st != stCompleted {
		return false
	}
	switch e.inst.Op {
	case isa.OpLoad:
		lq := &c.lq[e.lqIdx]
		if lq.isUSL {
			if lq.needV && !lq.valExpDone {
				return false // validation stall (bulk-accounted by SkipIdle)
			}
			if !lq.needV && !lq.valExpIssued {
				return false // exposure not yet initiated
			}
		}
	case isa.OpPrefetch:
		lq := &c.lq[e.lqIdx]
		if c.sch.UsesInvisibleLoads() && lq.isUSL && !lq.valExpIssued {
			return false
		}
	case isa.OpStore:
		return len(c.wb) < c.cfg.WBEntries
	}
	return true
}

// wbWantsIssue mirrors drainWriteBuffer: true when a buffered store would
// submit a GetX next cycle (an un-issued entry within the consistency
// model's in-flight window).
func (c *Core) wbWantsIssue() bool {
	maxInflight := 1
	if c.run.Consistency == config.RC {
		maxInflight = 8
	}
	inflight := 0
	for i := range c.wb {
		w := &c.wb[i]
		if w.done {
			continue
		}
		if w.inflight {
			inflight++
			continue
		}
		if inflight >= maxInflight {
			return false
		}
		return true
	}
	return false
}

// fenceWouldComplete mirrors updateFenceCompletion: true when some
// fence-like entry's completion condition already holds, so the next tick
// would complete it.
func (c *Core) fenceWouldComplete() bool {
	allOlderDone := true
	olderLoadsPerformed := true
	olderStorePresent := false
	for i := 0; i < c.robCnt; i++ {
		e := c.robAt(i)
		op := e.inst.Op
		if isFenceLike(e) && !e.fenceDone {
			switch {
			case e.synthetic:
				if allOlderDone {
					return true
				}
			case op == isa.OpFence:
				if allOlderDone && !olderStorePresent && len(c.wb) == 0 {
					return true
				}
			case op == isa.OpAcquire:
				if olderLoadsPerformed {
					return true
				}
			case op == isa.OpRelease:
				if olderLoadsPerformed && !olderStorePresent && len(c.wb) == 0 {
					return true
				}
			}
		}
		if e.st != stCompleted {
			allOlderDone = false
		}
		if op == isa.OpLoad {
			if e.lqIdx >= 0 && !c.lq[e.lqIdx].performed {
				olderLoadsPerformed = false
				allOlderDone = false
			}
		}
		if op == isa.OpStore {
			olderStorePresent = true
		}
		if isFenceLike(e) && !e.fenceDone {
			allOlderDone = false
		}
	}
	return false
}

// headMemWouldAct mirrors flushStep and rmwStep: both act only on the ROB
// head once it reaches stWaitMem.
func (c *Core) headMemWouldAct() bool {
	if c.robCnt == 0 {
		return false
	}
	e := c.robAt(0)
	switch e.inst.Op {
	case isa.OpFlush:
		return e.st == stWaitMem
	case isa.OpRMW:
		return e.st == stWaitMem && !e.rmwIssued && len(c.wb) == 0
	}
	return false
}

// robWake mirrors issue and completeExec over the ROB window: it reports
// busy when a dispatched entry is ready and unblocked (issue would fire),
// and otherwise collects the earliest functional-unit completion as a wake
// hint (completeExec compares execDoneAt for equality-or-past, so the jump
// must land exactly on it — OpCycle reads the landing cycle as its value).
func (c *Core) robWake() (uint64, bool) {
	wake := NeverWake
	blockedAll := false // incomplete synthetic (defense) fence seen
	blockedMem := false // incomplete memory fence / acquire / atomic seen
	for i := 0; i < c.robCnt; i++ {
		e := c.robAt(i)
		op := e.inst.Op
		if e.st == stExecuting && e.execDoneAt < wake {
			wake = e.execDoneAt
		}
		if e.st == stDispatched {
			// Mirror issue()'s skip structure: entries suppressed by an older
			// fence do not track their own fence flags this cycle either.
			if blockedAll {
				continue
			}
			if blockedMem && (op.IsMem() || op == isa.OpFence) {
				continue
			}
			ready := (e.src1Rob == noDep || c.rob[e.src1Rob].st == stCompleted) &&
				(e.src2Rob == noDep || c.rob[e.src2Rob].st == stCompleted)
			if ready {
				return 0, true
			}
		}
		if isFenceLike(e) && !e.fenceDone {
			if e.synthetic {
				blockedAll = true
			} else if op == isa.OpFence || op == isa.OpAcquire {
				blockedMem = true
			}
		}
		if op == isa.OpRMW && e.st != stCompleted {
			blockedMem = true
		}
	}
	return wake, false
}

// lqWake mirrors memStep's per-entry progression: deferred-TLB loads that
// have reached visibility, reuse waiters whose source resolved, and loads
// with a pending issue are busy; in-flight page walks contribute their
// completion cycle as a wake hint.
func (c *Core) lqWake() (uint64, bool) {
	wake := NeverWake
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if !e.addrReady || e.performed && !e.isUSL {
			continue
		}
		if !e.translated {
			if e.walking {
				if e.walkDoneAt < wake {
					wake = e.walkDoneAt
				}
				continue
			}
			// Untranslated and not walking: the miss was deferred (§VI-E3).
			// translateStep acts once the load is visible (deferred walk
			// starts, or the access becomes safe and translates normally).
			if c.loadVisible(i, e) {
				return 0, true
			}
			continue
		}
		if e.waitingReuse {
			src := &c.lq[e.reuseFromIdx]
			if !src.valid || src.seq != e.reuseFromSeq || src.lineCaptured {
				return 0, true // reuseStep would copy the line or re-issue
			}
			continue
		}
		needsIssue := !e.issued &&
			(!e.performed || (e.isUSL && !e.lineCaptured && !e.waitingReuse))
		if needsIssue {
			// The only state in which tryIssueLoad defers without any side
			// effect is a known overlapping store still pending; everything
			// else (forwarding scan, hazard recording, Submit) is work.
			if !(e.isUSL && e.performed && !e.lineCaptured) &&
				e.stallUntilStore != 0 && c.storePending(e.stallUntilStore) {
				continue
			}
			return 0, true
		}
	}
	return wake, false
}

// invisiWouldIssue mirrors invisiStep's program-order walk: true when some
// USL would submit its validation or exposure next cycle. The walk stops at
// the same ordering barriers invisiStep enforces (in-flight validations,
// uncaptured lines, invisibility, same-line total order).
func (c *Core) invisiWouldIssue() bool {
	if !c.sch.UsesInvisibleLoads() {
		return false
	}
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if !e.valid || !e.isUSL {
			continue
		}
		if e.valExpIssued {
			if e.valExpDone {
				continue
			}
			if e.needV && (c.sch.ValidationBlocksYounger() || !c.cfg.OverlapValExp) {
				return false
			}
			if !e.needV && !c.cfg.OverlapValExp {
				return false
			}
			continue
		}
		if !e.lineCaptured || e.waitingReuse {
			return false
		}
		if !c.loadVisible(i, e) {
			return false
		}
		for j := 0; j < i; j++ {
			o := c.lqAt(j)
			if o.valid && o.isUSL && o.valExpIssued && !o.valExpDone &&
				o.lineAddr() == e.lineAddr() {
				return false
			}
		}
		return true
	}
	return false
}

// fetchWake mirrors fetch's gating. When only the squash-redirect penalty
// holds fetch back, the resume cycle is a wake hint; every other reason to
// not fetch resolves via responses or younger-stage work.
func (c *Core) fetchWake(now uint64) (uint64, bool) {
	if c.fetchStalled || c.fetchInFlight || c.haltSeen {
		return NeverWake, false
	}
	if len(c.fetchBuf) >= 2*c.cfg.FetchWidth {
		return NeverWake, false
	}
	for _, fi := range c.fetchBuf {
		if fi.inst.Op == isa.OpHalt {
			return NeverWake, false
		}
	}
	if c.fetchResumeAt > now+1 {
		return c.fetchResumeAt, false
	}
	return 0, true
}

// dispatchWouldInsert mirrors dispatch's head-of-buffer gating: true when
// the oldest fetched instruction has the ROB/LQ/SQ space it needs. The
// defense StallDispatch hook is deliberately NOT mirrored: reporting busy
// while the scheme stalls dispatch is an allowed under-promise of the
// NextWake contract (a wasted poll, never a missed event), and the stall
// clears via branch resolution, which the exec-done wake already covers.
func (c *Core) dispatchWouldInsert() bool {
	if len(c.fetchBuf) == 0 || c.haltSeen {
		return false
	}
	fi := c.fetchBuf[0]
	op := fi.inst.Op
	slots := 1
	if (c.sch.FenceBeforeLoads() && op == isa.OpLoad) ||
		(c.sch.FenceAfterBranches() && isBranchNeedingFence(op)) {
		slots = 2
	}
	if c.robCnt+slots > len(c.rob) {
		return false
	}
	if (op == isa.OpLoad || op == isa.OpPrefetch) && c.lqCnt >= len(c.lq) {
		return false
	}
	if op == isa.OpStore && c.sqCnt >= len(c.sq) {
		return false
	}
	return true
}
