package core

import (
	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/memsys"
	"invisispec/internal/stats"
)

// lqEntry is one load-queue slot; its index doubles as the Speculative
// Buffer slot (1:1 mapping, Figure 3) and the LLC-SB index.
type lqEntry struct {
	valid    bool
	seq      uint64
	robIdx   int
	pc       int
	size     uint8
	priv     bool
	prefetch bool

	addr      uint64
	addrReady bool
	safeAnnot bool // statically proven safe (isa.Inst.Safe)

	// Translation.
	translated   bool
	walking      bool
	walkDoneAt   uint64
	tlbDeferred  bool // IS: miss deferred to the visibility point (§VI-E3)
	tlbTouchOwed bool // IS: hit; replacement update owed at visibility
	walkWasMiss  bool

	// Progress.
	issued       bool
	performed    bool
	lineCaptured bool
	value        uint64

	// Store forwarding.
	fwdFromSeq      uint64 // seq of the store that forwarded data (0 = none)
	stallUntilStore uint64 // seq of an overlapping store we must wait out

	// SB reuse (§V-E).
	waitingReuse bool
	reused       bool // line obtained from an older USL's SB entry
	reuseFromIdx int
	reuseFromSeq uint64

	reqToken    uint64
	valExpToken uint64

	// InvisiSpec state bits (Figure 3): N = safe (not a USL), otherwise the
	// E/V/C progression is needV + valExpIssued/valExpDone.
	isUSL        bool
	needV        bool
	valExpIssued bool
	valExpDone   bool

	// Speculative Buffer line (§VI-A1).
	sbData   [64]byte
	readMask uint64 // bytes the load consumed (Address Mask)
	fwdMask  uint64 // bytes obtained from the store queue / write buffer
}

func (e *lqEntry) lineAddr() uint64 { return e.addr &^ 63 }

// sqEntry is one store-queue slot.
type sqEntry struct {
	valid     bool
	seq       uint64
	robIdx    int
	addr      uint64
	addrReady bool
	safeAnnot bool // statically proven safe (isa.Inst.Safe)
	size      uint8
	data      uint64
	dataReady bool
}

// wbEntry is one write-buffer slot (a retired store awaiting performance).
type wbEntry struct {
	addr     uint64
	size     uint8
	data     uint64
	token    uint64
	inflight bool
	done     bool
}

func (c *Core) allocLQ(seq uint64, robIdx int, in isa.Inst) int {
	phys := (c.lqHead + c.lqCnt) % len(c.lq)
	c.lqCnt++
	c.lq[phys] = lqEntry{
		valid:     true,
		seq:       seq,
		robIdx:    robIdx,
		pc:        c.rob[robIdx].pc,
		size:      in.Size,
		priv:      in.Priv,
		safeAnnot: in.Safe,
		prefetch:  in.Op == isa.OpPrefetch,
	}
	if c.lq[phys].prefetch {
		c.lq[phys].size = 1
	}
	return phys
}

func (c *Core) allocSQ(seq uint64, robIdx int, in isa.Inst) int {
	phys := (c.sqHead + c.sqCnt) % len(c.sq)
	c.sqCnt++
	c.sq[phys] = sqEntry{valid: true, seq: seq, robIdx: robIdx, size: in.Size}
	return phys
}

func (c *Core) lqAt(i int) *lqEntry { return &c.lq[(c.lqHead+i)%len(c.lq)] }
func (c *Core) lqPhys(i int) int    { return (c.lqHead + i) % len(c.lq) }
func (c *Core) sqAt(i int) *sqEntry { return &c.sq[(c.sqHead+i)%len(c.sq)] }

func overlaps(a1 uint64, s1 uint8, a2 uint64, s2 uint8) bool {
	return a1 < a2+uint64(s2) && a2 < a1+uint64(s1)
}

func contains(a1 uint64, s1 uint8, a2 uint64, s2 uint8) bool {
	return a1 <= a2 && a2+uint64(s2) <= a1+uint64(s1)
}

// memStep advances every load through translation, forwarding, issue, and
// (for InvisiSpec) visibility; it also handles atomics at the ROB head.
func (c *Core) memStep() {
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if !e.addrReady || e.performed && !e.isUSL {
			continue
		}
		if !e.translated {
			c.translateStep(i, e)
			if !e.translated {
				continue
			}
		}
		if e.waitingReuse {
			c.reuseStep(e)
			continue
		}
		// A USL that performed via store forwarding (or whose Spec-GetS
		// bounced) still needs its line in the SB before it can validate
		// or expose.
		needsIssue := !e.issued &&
			(!e.performed || (e.isUSL && !e.lineCaptured && !e.waitingReuse))
		if needsIssue {
			if c.tryIssueLoad(i, e) {
				return // a memory-dependence stall check squashed
			}
		}
	}
	c.invisiStep()
	c.rmwStep()
	c.flushStep()
}

// flushStep executes a clflush when it reaches the ROB head.
func (c *Core) flushStep() {
	if c.robCnt == 0 {
		return
	}
	e := c.robAt(0)
	if e.inst.Op != isa.OpFlush || e.st != stWaitMem {
		return
	}
	c.hier.FlushLine(e.src1Val + uint64(e.inst.Imm))
	e.st = stCompleted
}

// translateStep runs the D-TLB for a load. Conventional configurations
// access the TLB immediately (misses pay the walk); InvisiSpec probes
// without perturbing state and defers misses (and hit-replacement updates)
// to the point of visibility.
func (c *Core) translateStep(i int, e *lqEntry) {
	if e.walking {
		if c.now >= e.walkDoneAt {
			e.walking = false
			e.translated = true
			if e.tlbDeferred {
				// The deferred walk ran at visibility: fill the TLB now and
				// continue as a safe access.
				c.dtlb.Insert(e.addr)
				e.tlbDeferred = false
			}
		}
		return
	}
	invisible := c.sch.UsesInvisibleLoads() && c.cfg.DelayTLBMiss && !c.loadSafeNow(i, e)
	if !invisible {
		extra := c.dtlb.Access(e.addr)
		if extra > 0 {
			c.st.TLBMisses++
			e.walking = true
			e.walkDoneAt = c.now + uint64(extra)
			return
		}
		c.st.TLBHits++
		e.translated = true
		return
	}
	// Invisible translation: probe only.
	if c.dtlb.Probe(e.addr) {
		c.st.TLBHits++
		e.tlbTouchOwed = true
		e.translated = true
		return
	}
	// Miss: the walk itself would be visible; defer to visibility (§VI-E3).
	if !e.tlbDeferred {
		e.tlbDeferred = true
		c.st.TLBMisses++
		c.st.TLBWalksDelayed++
	}
	if c.loadVisible(i, e) {
		e.walking = true
		e.walkDoneAt = c.now + uint64(c.dtlb.WalkLatency())
	}
}

// tryIssueLoad resolves forwarding and sends the load to the memory system.
// It returns true if the pipeline was squashed during the checks.
func (c *Core) tryIssueLoad(i int, e *lqEntry) bool {
	// A performed USL re-issuing (after a bounce, or forwarded from a
	// store) only needs its line: skip the forwarding scan so the already
	// consumed value can never change.
	if e.isUSL && e.performed && !e.lineCaptured {
		c.issueUSL(i, e)
		return false
	}
	// Search the store queue (youngest older store first), then the write
	// buffer, for forwarding or ordering hazards.
	if e.stallUntilStore != 0 {
		if c.storePending(e.stallUntilStore) {
			return false
		}
		e.stallUntilStore = 0
	}
	rl := c.robLogical(e.robIdx)
	for j := c.sqCnt - 1; j >= 0; j-- {
		s := c.sqAt(j)
		if s.seq >= e.seq {
			continue
		}
		if !s.addrReady {
			// Memory-dependence speculation: proceed; storeAliasSquash
			// catches a violation when the address resolves.
			continue
		}
		if !overlaps(s.addr, s.size, e.addr, e.size) {
			continue
		}
		if canForward(s.addr, s.size, e) && s.dataReady {
			c.forwardFromStore(e, s.addr, s.size, s.data, s.seq)
			return false
		}
		// Partial overlap (or data not ready): wait for the store to drain.
		e.stallUntilStore = s.seq
		return false
	}
	for j := len(c.wb) - 1; j >= 0; j-- {
		w := &c.wb[j]
		if w.done || !overlaps(w.addr, w.size, e.addr, e.size) {
			continue
		}
		if canForward(w.addr, w.size, e) {
			c.forwardFromStore(e, w.addr, w.size, w.data, w.token)
			return false
		}
		e.stallUntilStore = w.token
		return false
	}
	_ = rl
	// No forwarding: go to memory.
	if c.sch.UsesInvisibleLoads() && !c.loadSafeNow(i, e) {
		c.issueUSL(i, e)
		return false
	}
	tok := c.token()
	req := memsys.Request{Type: memsys.ReadShared, Core: c.id, Addr: e.addr, Token: tok}
	if c.hier.Submit(req) {
		e.issued = true
		e.isUSL = false
		e.reqToken = tok
	}
	return false
}

// canForward reports whether an older store at (saddr, ssize) may forward to
// load e: the store must fully cover the load's bytes, and the load must sit
// inside a single 64-byte line, because forwardFromStore records the bytes in
// the entry's per-line SB snapshot and forward mask. Naturally aligned
// accesses always satisfy the line condition; it is a defensive guard so a
// straddling load (only possible through a decoder bug) stalls and drains
// through memory instead of forwarding stale or out-of-range bytes.
func canForward(saddr uint64, ssize uint8, e *lqEntry) bool {
	if !contains(saddr, ssize, e.addr, e.size) {
		return false
	}
	return e.addr-e.lineAddr()+uint64(e.size) <= 64
}

// storePending reports whether the store with the given seq (SQ) or token
// (WB) has not yet performed.
func (c *Core) storePending(id uint64) bool {
	for j := 0; j < c.sqCnt; j++ {
		if s := c.sqAt(j); s.valid && s.seq == id {
			return true
		}
	}
	for j := range c.wb {
		if c.wb[j].token == id && !c.wb[j].done {
			return true
		}
	}
	return false
}

// forwardFromStore satisfies a load from an older store's data. For a USL
// the bytes also enter the SB entry under the forward mask, and a Spec-GetS
// is still issued for the rest of the line (§VI-A2).
func (c *Core) forwardFromStore(e *lqEntry, saddr uint64, ssize uint8, sdata uint64, sid uint64) {
	off := e.addr - saddr
	val := (sdata >> (8 * off))
	if e.size < 8 {
		val &= (1 << (8 * uint(e.size))) - 1
	}
	e.fwdFromSeq = sid
	lineOff := e.addr - e.lineAddr()
	for b := uint64(0); b < uint64(e.size); b++ {
		e.sbData[lineOff+b] = byte(val >> (8 * b))
		e.fwdMask |= 1 << (lineOff + b)
		e.readMask |= 1 << (lineOff + b)
	}
	e.value = val
	if c.sch.UsesInvisibleLoads() {
		// Perform now; the Spec-GetS still fetches the line into the SB but
		// must not overwrite the forwarded bytes.
		e.isUSL = true
		c.markPerformed(e)
		if !e.issued {
			c.issueUSL(c.lqLogicalOf(e), e)
		}
		return
	}
	c.markPerformed(e)
}

func (c *Core) lqLogicalOf(e *lqEntry) int {
	for i := 0; i < c.lqCnt; i++ {
		if c.lqAt(i) == e {
			return i
		}
	}
	return -1
}

// markPerformed records data arrival: the register value is available and
// the ROB entry completes (dependents may consume it speculatively).
func (c *Core) markPerformed(e *lqEntry) {
	if e.performed {
		return
	}
	e.performed = true
	rob := &c.rob[e.robIdx]
	if !e.prefetch {
		rob.destVal = e.value
	}
	rob.st = stCompleted
	if e.isUSL {
		c.decideValidationOrExposure(e)
	}
}

// loadValue extracts the load's bytes from its SB line snapshot.
func (e *lqEntry) loadValue() uint64 {
	off := e.addr - e.lineAddr()
	var v uint64
	for b := uint64(0); b < uint64(e.size); b++ {
		v |= uint64(e.sbData[off+b]) << (8 * b)
	}
	return v
}

// captureLine snapshots the functional memory line into the SB entry,
// keeping any store-forwarded bytes, and marks the bytes the load consumed.
func (c *Core) captureLine(e *lqEntry) {
	base := e.lineAddr()
	for b := uint64(0); b < 64; b++ {
		if e.fwdMask&(1<<b) == 0 {
			e.sbData[b] = c.mem.ByteAt(base + b)
		}
	}
	off := e.addr - base
	for b := uint64(0); b < uint64(e.size); b++ {
		e.readMask |= 1 << (off + b)
	}
	e.lineCaptured = true
}

// loadDataArrived handles ReadShared and SpecRead responses.
func (c *Core) loadDataArrived(r memsys.Response, spec bool) {
	e := c.findLQByToken(r.Token)
	if e == nil {
		return // squashed while in flight
	}
	if r.Bounced {
		// Spec-GetS raced an ownership transfer: retry on a later cycle.
		e.issued = false
		e.reqToken = 0
		return
	}
	if spec {
		c.captureLine(e)
		if e.fwdFromSeq == 0 {
			e.value = e.loadValue()
		}
		c.markPerformed(e)
		c.wakeReuseWaiters(e)
		return
	}
	// Safe load: value comes from functional memory now; the line is in L1.
	e.lineCaptured = true
	e.value = c.mem.Read(e.addr, e.size)
	off := e.addr - e.lineAddr()
	for b := uint64(0); b < uint64(e.size); b++ {
		e.readMask |= 1 << (off + b)
	}
	c.markPerformed(e)
}

func (c *Core) findLQByToken(tok uint64) *lqEntry {
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if e.valid && e.reqToken == tok && e.issued {
			return e
		}
	}
	return nil
}

// storeAliasSquash implements speculative-store-bypass detection: when a
// store's address resolves, younger loads that already performed from an
// overlapping address without forwarding from this store read stale data
// and must be squashed (Table I: "address alias between a load and an
// earlier store"). Returns true if a squash happened.
func (c *Core) storeAliasSquash(storeLogical int, s *sqEntry) bool {
	for i := 0; i < c.lqCnt; i++ {
		e := c.lqAt(i)
		if !e.valid || e.seq <= s.seq || !(e.performed || e.issued) {
			continue
		}
		if e.fwdFromSeq == s.seq {
			continue
		}
		// Issued-but-unperformed loads are squashed too: their in-flight
		// read raced the store and would return data not reflecting it.
		if overlaps(s.addr, s.size, e.addr, e.size) {
			c.squashLoad(e, stats.SquashMemDep)
			return true
		}
	}
	return false
}

// squashLoad squashes a load and everything younger, re-fetching from the
// load's own PC.
func (c *Core) squashLoad(e *lqEntry, reason stats.SquashReason) {
	c.squashFromLogical(c.robLogical(e.robIdx), reason, e.pc, true)
}

// retireStoreToWB moves a retiring store into the write buffer. It reports
// whether space was available.
func (c *Core) retireStoreToWB(s *sqEntry) bool {
	if len(c.wb) >= c.cfg.WBEntries {
		return false
	}
	c.wb = append(c.wb, wbEntry{addr: s.addr, size: s.size, data: s.data, token: c.token()})
	return true
}

// drainWriteBuffer issues GetX transactions for buffered stores. TSO drains
// strictly in order, one at a time (FIFO store performance); RC overlaps
// several in-flight drains (still issued in order; releases are ordered by
// the fence logic).
func (c *Core) drainWriteBuffer() {
	maxInflight := 1
	if c.run.Consistency == config.RC {
		maxInflight = 8
	}
	inflight := 0
	for i := range c.wb {
		w := &c.wb[i]
		if w.done {
			continue
		}
		if w.inflight {
			inflight++
			continue
		}
		if inflight >= maxInflight {
			break
		}
		req := memsys.Request{Type: memsys.ReadExcl, Core: c.id, Addr: w.addr, Token: w.token}
		if !c.hier.Submit(req) {
			break
		}
		w.inflight = true
		inflight++
		if c.run.Consistency == config.TSO {
			break
		}
	}
}

// exclusiveArrived completes a store drain or an atomic.
func (c *Core) exclusiveArrived(r memsys.Response) {
	for i := range c.wb {
		w := &c.wb[i]
		if w.token == r.Token && w.inflight && !w.done {
			// The store performs: it becomes globally visible.
			c.mem.Write(w.addr, w.size, w.data)
			w.done = true
			w.inflight = false
			c.popPerformedStores()
			return
		}
	}
	// Otherwise an RMW at the ROB head.
	if c.robCnt > 0 {
		e := c.robAt(0)
		if e.inst.Op == isa.OpRMW && e.rmwIssued && e.seq == r.Token && e.st == stWaitMem {
			addr := isa.AlignAddr(e.src1Val, e.inst.Size)
			old := c.mem.Read(addr, e.inst.Size)
			c.mem.Write(addr, e.inst.Size, old+e.src2Val)
			e.destVal = old
			e.st = stCompleted
		}
	}
}

// popPerformedStores releases completed write-buffer entries from the head.
func (c *Core) popPerformedStores() {
	for len(c.wb) > 0 && c.wb[0].done {
		c.wb = c.wb[1:]
	}
}

// rmwStep issues an atomic when it reaches the ROB head with an empty write
// buffer (atomics have fence semantics and execute non-speculatively,
// §VI-E2).
func (c *Core) rmwStep() {
	if c.robCnt == 0 {
		return
	}
	e := c.robAt(0)
	if e.inst.Op != isa.OpRMW || e.st != stWaitMem || e.rmwIssued {
		return
	}
	if len(c.wb) != 0 {
		return
	}
	req := memsys.Request{Type: memsys.ReadExcl, Core: c.id,
		Addr: isa.AlignAddr(e.src1Val, e.inst.Size), Token: e.seq}
	if c.hier.Submit(req) {
		e.rmwIssued = true
	}
}
