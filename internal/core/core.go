// Package core implements the simulated out-of-order processor core and the
// InvisiSpec load machinery that is the paper's central contribution.
//
// The core is an 8-issue dynamically scheduled pipeline (Table IV): fetch
// proceeds along the branch-predicted path — so wrong-path (transient)
// instructions genuinely execute, which is what makes speculative-execution
// attacks expressible — through a 192-entry reorder buffer with ROB-based
// renaming, a 32-entry load queue with a one-to-one Speculative Buffer, a
// 32-entry store queue, and a write buffer that drains under TSO or RC
// rules. Every squash source of the paper's Table I is modelled: branch
// mispredictions, store→load address aliasing, memory-consistency
// violations (invalidation- and eviction-triggered), InvisiSpec validation
// failures, exceptions at retirement, and timer interrupts.
//
// The InvisiSpec flows (paper §V–§VI) live in invisispec.go; the
// conventional pipeline is spread across fetch.go, rob.go, lsq.go,
// retire.go and squash.go.
package core

import (
	"fmt"

	"invisispec/internal/bpred"
	"invisispec/internal/config"
	"invisispec/internal/defense"
	"invisispec/internal/isa"
	"invisispec/internal/memsys"
	"invisispec/internal/stats"
	"invisispec/internal/tlb"
)

// IBase is the byte address where instruction memory begins. Instructions
// occupy 4 bytes each, starting at IBase, so instruction lines never collide
// with data lines.
const IBase uint64 = 1 << 40

// InstBytes is the footprint of one instruction for I-cache purposes.
const InstBytes = 4

// Core is one simulated hardware thread.
type Core struct {
	id   int
	cfg  config.Machine
	run  config.Run
	sch  defense.Defense // resolved countermeasure scheme (run.Defense)
	prog *isa.Program
	mem  *isa.Memory
	hier *memsys.Hierarchy
	bp   *bpred.Predictor
	dtlb *tlb.TLB
	st   *stats.Core

	// bbLeader marks basic-block leaders per instruction index (the
	// program's bb metadata, or the static fallback), consumed by
	// dispatch-stalling defense schemes.
	bbLeader []bool

	now uint64

	// Front end.
	pc            int
	fetchBuf      []fetchedInst
	fetchInFlight bool
	fetchToken    uint64
	fetchResumeAt uint64
	fetchStalled  bool // indirect-branch BTB miss: wait for resolution
	haltSeen      bool // a halt was dispatched: nothing younger may enter

	// Back end.
	rob     []robEntry
	robHead int
	robCnt  int
	rat     [isa.NumRegs]int // architectural reg -> producing ROB slot, or -1
	regs    [isa.NumRegs]uint64

	lq     []lqEntry
	lqHead int
	lqCnt  int
	sq     []sqEntry
	sqHead int
	sqCnt  int
	wb     []wbEntry

	// Squash-epoch counter (§VI-C) and memory-request token source.
	epoch     uint64
	nextToken uint64

	// Commit tracing (see trace.go).
	tracer    Tracer
	commitSeq uint64

	// ProtectICache (footnote 2): direct-mapped filter of recently exposed
	// instruction lines, to avoid re-issuing installs every retirement.
	iExposeFilter [64]uint64

	// InvisiSpec interrupt-disable window (§VI-D).
	intrDisabled bool

	// Most recent squash, carried in watchdog/deadlock dumps (introspect.go).
	lastSquash SquashInfo

	// Mutation self-test hook: retirement disabled (introspect.go).
	retireStalled bool

	halted bool
}

type fetchedInst struct {
	pc         int
	inst       isa.Inst
	predTaken  bool
	predTarget int
	// btbMiss marks the indirect jump fetch stalled on (BTB miss): fetch
	// stops right after it, so it is always the youngest fetched
	// instruction, and its resolution resumes fetch without a squash.
	btbMiss bool
	hasSnap bool
	snap    bpred.State
	ghr     uint64
	// synthetic marks a defense fence injected at decode (Table V).
	synthetic bool
	// blockStart marks a basic-block leader per the program's bb
	// metadata, consulted by the defense StallDispatch hook.
	blockStart bool
}

// New builds a core. mem is the machine-wide functional memory, hier the
// shared hierarchy, st the core's stats slot. The run's defense must be a
// registered scheme (sim.New validates this; New panics on unregistered
// names).
func New(id int, run config.Run, prog *isa.Program, mem *isa.Memory,
	hier *memsys.Hierarchy, st *stats.Core) *Core {
	cfg := run.Machine
	c := &Core{
		id:       id,
		cfg:      cfg,
		run:      run,
		sch:      run.Defense.MustScheme(),
		prog:     prog,
		mem:      mem,
		hier:     hier,
		bp:       bpred.New(cfg.Bpred),
		dtlb:     tlb.New(cfg.TLBEntries, cfg.PageWalkLatency),
		st:       st,
		bbLeader: prog.BlockLeaders(),
		pc:       prog.Entry,
		rob:      make([]robEntry, cfg.ROBEntries),
		lq:       make([]lqEntry, cfg.LQEntries),
		sq:       make([]sqEntry, cfg.SQEntries),
	}
	for i := range c.rat {
		c.rat[i] = -1
	}
	hier.Connect(id, (*client)(c))
	return c
}

// Halted reports whether the thread has architecturally halted.
func (c *Core) Halted() bool { return c.halted }

// Regs returns the architectural register file (for result checking).
func (c *Core) Regs() [isa.NumRegs]uint64 { return c.regs }

// PendingWork reports whether the core still has in-flight state that must
// drain before the machine can be considered quiescent.
func (c *Core) PendingWork() bool {
	return !c.halted || len(c.wb) > 0
}

// Tick advances the core one cycle. The hierarchy must have been ticked to
// the same cycle first (responses for this cycle are then already applied).
func (c *Core) Tick(now uint64) {
	c.now = now
	if c.halted {
		// Keep draining the write buffer after a halt so the memory image
		// settles (stores survive the halting thread).
		c.drainWriteBuffer()
		return
	}
	c.st.Cycles++
	c.updateFenceCompletion()
	c.retire()
	if c.halted {
		return
	}
	c.drainWriteBuffer()
	c.completeExec()
	c.memStep()
	c.issue()
	c.dispatch()
	c.fetch()
}

func (c *Core) token() uint64 {
	c.nextToken++
	return c.nextToken
}

// client adapts Core to memsys.Client without exporting the methods on Core
// itself.
type client Core

// Deliver routes a memory response into the pipeline.
func (cl *client) Deliver(now uint64, r memsys.Response) {
	c := (*Core)(cl)
	c.now = now
	switch r.Type {
	case memsys.IFetch, memsys.IFetchSpec:
		c.ifetchDone(r)
	case memsys.ReadShared:
		c.loadDataArrived(r, false)
	case memsys.SpecRead:
		c.loadDataArrived(r, true)
	case memsys.Validate:
		c.validationArrived(r)
	case memsys.Expose:
		c.exposureArrived(r)
	case memsys.ReadExcl:
		c.exclusiveArrived(r)
	}
}

// OnInvalidate implements the consistency and InvisiSpec early-squash
// reactions to a coherence invalidation (§V-C2).
func (cl *client) OnInvalidate(now uint64, lineNum uint64) {
	c := (*Core)(cl)
	c.now = now
	c.onLineGone(lineNum, true)
}

// OnL1Evict models the conventional conservative squash on L1 replacement of
// a line read by a performed, non-retired load.
func (cl *client) OnL1Evict(now uint64, lineNum uint64) {
	c := (*Core)(cl)
	c.now = now
	c.onLineGone(lineNum, false)
}

func (c *Core) String() string {
	return fmt.Sprintf("core%d pc=%d rob=%d lq=%d sq=%d wb=%d halted=%v",
		c.id, c.pc, c.robCnt, c.lqCnt, c.sqCnt, len(c.wb), c.halted)
}
