package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
	"invisispec/internal/stats"
)

// allRuns enumerates the five Table V defenses under both memory models on
// a single-core machine.
func allRuns(cores int) []config.Run {
	var runs []config.Run
	for _, d := range config.AllDefenses() {
		for _, m := range []config.Consistency{config.TSO, config.RC} {
			runs = append(runs, config.Run{Machine: config.Default(cores), Defense: d, Consistency: m})
		}
	}
	return runs
}

// runOne executes a single-threaded program to completion and returns the
// machine.
func runOne(t *testing.T, run config.Run, p *isa.Program, budget uint64) *sim.Machine {
	t.Helper()
	m := sim.MustNew(run, []*isa.Program{p})
	if err := m.RunToCompletion(budget); err != nil {
		t.Fatalf("%v: %v (cycle %d)", run, err, m.Cycle())
	}
	return m
}

// checkAgainstInterp compares the final architectural state of the OoO core
// with the functional interpreter.
func checkAgainstInterp(t *testing.T, run config.Run, p *isa.Program, budget uint64) *sim.Machine {
	t.Helper()
	ref := isa.NewInterp(p)
	if err := ref.Run(4_000_000); err != nil {
		t.Fatalf("interp: %v", err)
	}
	m := runOne(t, run, p, budget)
	regs := m.Cores[0].Regs()
	for r := 0; r < isa.NumRegs; r++ {
		if regs[r] != ref.Regs[r] {
			t.Fatalf("%v: r%d = %#x, interp has %#x", run, r, regs[r], ref.Regs[r])
		}
	}
	return m
}

func countdownProgram() *isa.Program {
	return isa.NewBuilder("countdown").
		Li(1, 100).
		Li(2, 0).
		Label("loop").
		Add(2, 2, 1).
		AddI(1, 1, -1).
		Bne(1, 0, "loop").
		Li(3, 0x2000).
		St(8, 3, 0, 2).
		Ld(8, 4, 3, 0).
		Halt().
		MustBuild()
}

func TestCountdownAllConfigs(t *testing.T) {
	p := countdownProgram()
	for _, run := range allRuns(1) {
		run := run
		t.Run(run.String(), func(t *testing.T) {
			m := checkAgainstInterp(t, run, p, 2_000_000)
			if got := m.Mem.Read(0x2000, 8); got != 5050 {
				t.Fatalf("memory sum = %d, want 5050", got)
			}
			if m.Stats.Cores[0].Retired == 0 {
				t.Fatal("no instructions retired")
			}
		})
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// A load immediately after a store to the same address must see the
	// store's data (from the SQ) long before the store performs.
	p := isa.NewBuilder("fwd").
		Li(1, 0x3000).
		Li(2, 0xABCD).
		St(8, 1, 0, 2).
		Ld(8, 3, 1, 0).
		AddI(4, 3, 1). // dependent use
		Halt().
		MustBuild()
	for _, run := range allRuns(1) {
		m := checkAgainstInterp(t, run, p, 1_000_000)
		if got := m.Cores[0].Regs()[3]; got != 0xABCD {
			t.Fatalf("%v: forwarded value %#x", run, got)
		}
	}
}

func TestPartialOverlapStallsNotCorrupts(t *testing.T) {
	// Store 8 bytes; load 2 bytes from the middle: containment holds. Then
	// store 2 bytes; load 8 bytes overlapping: partial, must wait for the
	// store to perform and still read coherent data.
	p := isa.NewBuilder("partial").
		Li(1, 0x3100).
		Li(2, 0x1122334455667788).
		St(8, 1, 0, 2).
		Ld(2, 3, 1, 2). // bytes 2..3 => 0x3344... little endian: 0x4433? see interp
		Li(4, 0x9999).
		St(2, 1, 4, 4). // overwrite bytes 4..5
		Ld(8, 5, 1, 0). // partially overlaps the 2-byte store
		Halt().
		MustBuild()
	for _, run := range allRuns(1) {
		checkAgainstInterp(t, run, p, 1_000_000)
	}
}

func TestMemoryDependenceSquash(t *testing.T) {
	// A store whose address arrives late (behind a divide chain) aliases a
	// younger load that has already performed: the load must squash and
	// re-execute, ending with the stored value.
	b := isa.NewBuilder("ssb")
	b.Li(1, 0x3200).
		Li(2, 77).
		St(8, 1, 0, 2).  // seed mem[0x3200] = 77
		Ld(8, 10, 1, 0). // warm the TLB so the racing load is fast
		Fence().         // let the seed store perform
		// The store's address chain starts only after the fence (it hangs
		// off the post-fence load), so the racing load issues first.
		Ld(8, 11, 1, 0).  // 77
		Mul(12, 11, 11).  // 5929
		Div(13, 12, 11).  // 77
		Div(13, 13, 11).  // 1
		AddI(13, 13, -1). // 0, available very late
		Add(7, 1, 13).    // r7 = 0x3200
		Li(8, 123).
		St(8, 7, 0, 8). // store to 0x3200, address late
		Ld(8, 9, 1, 0). // load 0x3200: issues early, must end up 123
		Halt()
	p := b.MustBuild()
	sawSquash := false
	for _, run := range allRuns(1) {
		m := checkAgainstInterp(t, run, p, 1_000_000)
		if got := m.Cores[0].Regs()[9]; got != 123 {
			t.Fatalf("%v: r9 = %d, want 123", run, got)
		}
		if m.Stats.Cores[0].Squashes[stats.SquashMemDep] > 0 {
			sawSquash = true
		}
	}
	if !sawSquash {
		t.Error("no configuration exercised the memory-dependence squash")
	}
}

func TestBranchTraining(t *testing.T) {
	// A loop branch is taken 99 times then falls through; the predictor
	// should learn it and keep mispredictions low.
	p := countdownProgram()
	run := config.Run{Machine: config.Default(1), Defense: config.Base, Consistency: config.TSO}
	m := runOne(t, run, p, 1_000_000)
	c := m.Stats.Cores[0]
	if c.CondBranches != 100 {
		t.Fatalf("retired branches = %d, want 100", c.CondBranches)
	}
	if c.Mispredicts > 10 {
		t.Fatalf("mispredicts = %d, too many for a monotone loop", c.Mispredicts)
	}
}

func TestCallRetIndirect(t *testing.T) {
	b := isa.NewBuilder("callret")
	b.Li(10, 0).
		Li(11, 5).
		Label("loop").
		Call(30, "double").
		AddI(11, 11, -1).
		Bne(11, 0, "loop").
		Jmp("dispatch")
	b.Label("double").
		Add(10, 10, 10).
		AddI(10, 10, 1).
		Ret(30)
	b.Label("dispatch")
	b.Li(12, 0x4000).
		Ld(8, 13, 12, 0).
		JmpI(13)
	b.Label("end").Li(14, 42).Halt()
	p := b.MustBuild()
	p.InitMem = append(p.InitMem, isa.InitChunk{Addr: 0x4000, Data: leU64(uint64(p.Labels["end"]))})
	for _, run := range allRuns(1) {
		m := checkAgainstInterp(t, run, p, 1_000_000)
		if got := m.Cores[0].Regs()[14]; got != 42 {
			t.Fatalf("%v: indirect dispatch failed, r14=%d", run, got)
		}
	}
}

func leU64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func TestRMWAtomic(t *testing.T) {
	p := isa.NewBuilder("rmw").
		Li(1, 0x5000).
		Li(2, 3).
		RMW(8, 3, 1, 2).
		RMW(8, 4, 1, 2).
		Ld(8, 5, 1, 0).
		Halt().
		MustBuild()
	for _, run := range allRuns(1) {
		m := checkAgainstInterp(t, run, p, 1_000_000)
		if got := m.Mem.Read(0x5000, 8); got != 6 {
			t.Fatalf("%v: rmw sum = %d", run, got)
		}
	}
}

func TestExceptionHandler(t *testing.T) {
	p := isa.NewBuilder("fault").
		Li(1, 0x6000).
		LdPriv(8, 2, 1, 0).
		Li(3, 1). // transient: must never commit
		Halt().
		Label("handler").
		Li(4, 0xDEAD).
		Halt().
		Handler("handler").
		MustBuild()
	for _, run := range allRuns(1) {
		m := checkAgainstInterp(t, run, p, 1_000_000)
		c := m.Stats.Cores[0]
		if c.Squashes[stats.SquashException] != 1 {
			t.Fatalf("%v: exception squashes = %d", run, c.Squashes[stats.SquashException])
		}
		if m.Cores[0].Regs()[2] != 0 || m.Cores[0].Regs()[3] != 0 {
			t.Fatalf("%v: transient state committed", run)
		}
	}
}

func TestTimerInterrupts(t *testing.T) {
	run := config.Run{Machine: config.Default(1), Defense: config.Base, Consistency: config.TSO}
	run.Machine.InterruptInterval = 97
	p := countdownProgram()
	m := checkAgainstInterp(t, run, p, 2_000_000)
	if m.Stats.Cores[0].Squashes[stats.SquashInterrupt] == 0 {
		t.Fatal("no interrupt squashes with a 97-cycle timer")
	}
}

func TestInterruptsDelayedUnderISFuture(t *testing.T) {
	run := config.Run{Machine: config.Default(1), Defense: config.ISFuture, Consistency: config.TSO}
	run.Machine.InterruptInterval = 997
	// Each iteration: a divide chain holds the ROB head while an L1-hit USL
	// behind an initially unresolved branch validates — so the §VI-D
	// interrupt-disable window is open for many cycles per iteration.
	b := isa.NewBuilder("window")
	b.Li(20, 0x7000).
		Li(25, 64).
		Li(24, 0x7000).
		Label("warm"). // pull the data region into the L1
		Ld(8, 26, 24, 0).
		AddI(24, 24, 64).
		AddI(25, 25, -1).
		Bne(25, 0, "warm").
		Li(2, 2000).
		Li(10, 6400).
		Li(11, 10).
		Li(18, 640).
		Label("loop").
		Div(12, 10, 11). // 640, resolves the branch late
		Div(14, 12, 11). // holds the ROB head
		Div(15, 14, 11). // holds the ROB head longer
		AndI(16, 12, 0).
		Add(17, 20, 16).
		Ld(8, 3, 17, 0).    // address depends on the divide: performs late
		Bne(12, 18, "out"). // never taken, resolves late
		Ld(8, 4, 20, 8).    // USL: performs before r3 -> needs validation
		AddI(2, 2, -1).
		Bne(2, 0, "loop").
		Label("out").
		Halt()
	p := b.MustBuild()
	m := runOne(t, run, p, 4_000_000)
	if m.Stats.Cores[0].InterruptsDelayed == 0 {
		t.Fatal("IS-Fu never exercised the interrupt-disable window")
	}
}

func TestPrefetchInstruction(t *testing.T) {
	p := isa.NewBuilder("prefetch").
		Li(1, 0x8000).
		Prefetch(1, 0).
		Li(2, 5).
		Ld(8, 3, 1, 0).
		Halt().
		MustBuild()
	for _, run := range allRuns(1) {
		checkAgainstInterp(t, run, p, 1_000_000)
	}
}

func TestFencedProgram(t *testing.T) {
	p := isa.NewBuilder("fenced").
		Li(1, 0x9000).
		Li(2, 7).
		St(8, 1, 0, 2).
		Fence().
		Ld(8, 3, 1, 0).
		Acquire().
		Ld(8, 4, 1, 0).
		Release().
		St(8, 1, 8, 4).
		Halt().
		MustBuild()
	for _, run := range allRuns(1) {
		checkAgainstInterp(t, run, p, 1_000_000)
	}
}

// randomProgram builds a terminating single-threaded program exercising
// arithmetic, memory, bounded loops, calls and branches.
func randomProgram(rng *rand.Rand, id int) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("rand%d", id))
	const dataBase = 0x10000
	const dataWords = 64
	// Seed data region.
	words := make([]uint64, dataWords)
	for i := range words {
		words[i] = rng.Uint64() % 1000
	}
	b.DataU64(dataBase, words...)
	// r20 = data base; r21 scratch; r1..r8 working registers.
	b.Li(20, dataBase)
	for r := uint8(1); r <= 8; r++ {
		b.Li(r, rng.Uint64()%512)
	}
	nBlocks := 3 + rng.Intn(4)
	for blk := 0; blk < nBlocks; blk++ {
		label := fmt.Sprintf("blk%d", blk)
		cnt := uint8(9) // loop counter register
		b.Li(cnt, uint64(2+rng.Intn(6)))
		b.Label(label)
		nOps := 3 + rng.Intn(8)
		for i := 0; i < nOps; i++ {
			rd := uint8(1 + rng.Intn(8))
			rs1 := uint8(1 + rng.Intn(8))
			rs2 := uint8(1 + rng.Intn(8))
			switch rng.Intn(10) {
			case 0, 1, 2:
				ops := []func(uint8, uint8, uint8) *isa.Builder{b.Add, b.Sub, b.Xor, b.And, b.Or, b.Mul}
				ops[rng.Intn(len(ops))](rd, rs1, rs2)
			case 3:
				b.Div(rd, rs1, rs2)
			case 4, 5:
				// Bounded load: index = rs1 % dataWords.
				b.AndI(21, rs1, dataWords-1).
					ShlI(21, 21, 3).
					Add(21, 21, 20).
					Ld(8, rd, 21, 0)
			case 6, 7:
				b.AndI(21, rs1, dataWords-1).
					ShlI(21, 21, 3).
					Add(21, 21, 20).
					St(8, 21, 0, rs2)
			case 8:
				// Data-dependent short forward branch (hard to predict).
				skip := fmt.Sprintf("skip%d_%d", blk, i)
				b.AndI(21, rs1, 1).
					Bne(21, 0, skip).
					Add(rd, rs1, rs2).
					Label(skip)
			case 9:
				b.AddI(rd, rs1, int64(rng.Intn(64)))
			}
		}
		if rng.Intn(3) == 0 {
			b.Fence()
		}
		b.AddI(cnt, cnt, -1)
		b.Bne(cnt, 0, label)
	}
	b.Halt()
	return b.MustBuild()
}

func TestRandomProgramsMatchInterpreter(t *testing.T) {
	// The heavyweight cross-check: every defense and memory model must
	// produce bit-identical architectural results to the golden model on
	// randomly generated programs.
	rng := rand.New(rand.NewSource(42))
	const programs = 8
	for i := 0; i < programs; i++ {
		p := randomProgram(rng, i)
		for _, run := range allRuns(1) {
			checkAgainstInterp(t, run, p, 4_000_000)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := countdownProgram()
	run := config.Run{Machine: config.Default(1), Defense: config.ISFuture, Consistency: config.TSO}
	m1 := runOne(t, run, p, 1_000_000)
	m2 := runOne(t, run, p, 1_000_000)
	if m1.Cycle() != m2.Cycle() {
		t.Fatalf("non-deterministic: %d vs %d cycles", m1.Cycle(), m2.Cycle())
	}
	if m1.Stats.TotalTraffic() != m2.Stats.TotalTraffic() {
		t.Fatal("non-deterministic traffic")
	}
}

// TestCommitTraceMatchesInterpreter compares the full architectural commit
// stream (program counters, in order, plus register writes) against the
// golden model — a much stronger oracle than final-state equality.
func TestCommitTraceMatchesInterpreter(t *testing.T) {
	p := randomProgram(rand.New(rand.NewSource(321)), 99)

	// Golden stream from the interpreter.
	type step struct {
		pc  int
		reg int // -1 if no write
		val uint64
	}
	var want []step
	it := isa.NewInterp(p)
	for {
		pc := it.PC
		in := p.At(pc)
		running := it.Step()
		s := step{pc: pc, reg: -1}
		if in.Op.HasDest() && !(in.Op == isa.OpLoad && in.Priv) {
			s.reg, s.val = int(in.Rd), it.Regs[in.Rd]
		}
		want = append(want, s)
		if !running {
			break
		}
	}

	for _, run := range allRuns(1) {
		run := run
		m := sim.MustNew(run, []*isa.Program{p})
		var got []step
		m.Cores[0].SetTracer(func(ev core.CommitEvent) {
			s := step{pc: ev.PC, reg: -1}
			if ev.WroteReg {
				s.reg, s.val = int(ev.Reg), ev.RegValue
			}
			got = append(got, s)
		})
		if err := m.RunToCompletion(4_000_000); err != nil {
			t.Fatalf("%v: %v", run, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: committed %d instructions, interp executed %d", run, len(got), len(want))
		}
		for i := range want {
			g, w := got[i], want[i]
			if g.pc != w.pc {
				t.Fatalf("%v: commit %d at pc %d, interp at pc %d", run, i, g.pc, w.pc)
			}
			// Register-write equality, except OpCycle whose value is
			// timing-defined (the interpreter reports 0).
			if p.At(w.pc).Op == isa.OpCycle {
				continue
			}
			if g.reg != w.reg || g.reg >= 0 && g.val != w.val {
				t.Fatalf("%v: commit %d (pc %d) wrote r%d=%#x, interp r%d=%#x",
					run, i, g.pc, g.reg, g.val, w.reg, w.val)
			}
		}
	}
}
