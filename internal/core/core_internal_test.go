package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/memsys"
	"invisispec/internal/stats"
)

func TestOverlapsAndContains(t *testing.T) {
	cases := []struct {
		a1   uint64
		s1   uint8
		a2   uint64
		s2   uint8
		over bool
		cont bool
	}{
		{0, 8, 0, 8, true, true},
		{0, 8, 4, 4, true, true},
		{0, 8, 4, 8, true, false},
		{0, 8, 8, 8, false, false},
		{8, 8, 0, 8, false, false},
		{0, 4, 2, 1, true, true},
		{2, 1, 0, 4, true, false},
		{100, 2, 101, 1, true, true},
	}
	for _, c := range cases {
		if got := overlaps(c.a1, c.s1, c.a2, c.s2); got != c.over {
			t.Errorf("overlaps(%d,%d,%d,%d) = %v", c.a1, c.s1, c.a2, c.s2, got)
		}
		if got := contains(c.a1, c.s1, c.a2, c.s2); got != c.cont {
			t.Errorf("contains(%d,%d,%d,%d) = %v", c.a1, c.s1, c.a2, c.s2, got)
		}
	}
}

func TestOverlapContainQuickProperties(t *testing.T) {
	f := func(a1, a2 uint16, s1Sel, s2Sel uint8) bool {
		sizes := []uint8{1, 2, 4, 8}
		s1 := sizes[s1Sel%4]
		s2 := sizes[s2Sel%4]
		A1, A2 := uint64(a1), uint64(a2)
		over := overlaps(A1, s1, A2, s2)
		cont := contains(A1, s1, A2, s2)
		// Containment implies overlap.
		if cont && !over {
			return false
		}
		// Overlap is symmetric.
		if over != overlaps(A2, s2, A1, s1) {
			return false
		}
		// Reference check against explicit byte sets.
		ref := false
		for b := A2; b < A2+uint64(s2); b++ {
			if b >= A1 && b < A1+uint64(s1) {
				ref = true
			}
		}
		return over == ref
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func newTestCore(t *testing.T, d config.Defense) *Core {
	t.Helper()
	run := config.Run{Machine: config.Default(1), Defense: d, Consistency: config.TSO}
	st := stats.NewMachine(1)
	prog := isa.NewBuilder("t").Nop().Halt().MustBuild()
	mem := isa.NewMemory()
	hier := memsys.New(run.Machine, st)
	return New(0, run, prog, mem, hier, &st.Cores[0])
}

func TestRobIndexMathWrapsCorrectly(t *testing.T) {
	c := newTestCore(t, config.Base)
	c.robHead = len(c.rob) - 2
	c.robCnt = 5
	for i := 0; i < c.robCnt; i++ {
		phys := c.robPhys(i)
		if got := c.robLogical(phys); got != i {
			t.Fatalf("robLogical(robPhys(%d)) = %d", i, got)
		}
	}
	if c.robPhys(2) != 0 {
		t.Fatalf("expected wrap: robPhys(2) = %d", c.robPhys(2))
	}
}

func TestSquashRebuildsRAT(t *testing.T) {
	c := newTestCore(t, config.Base)
	// Dispatch three producers of r5 by hand.
	for i := 0; i < 3; i++ {
		c.insertEntry(fetchedInst{pc: i, inst: isa.Inst{Op: isa.OpLui, Rd: 5, Imm: int64(i)}})
	}
	if c.rat[5] != c.robPhys(2) {
		t.Fatalf("RAT points at %d, want youngest producer %d", c.rat[5], c.robPhys(2))
	}
	// Squash the youngest: RAT must fall back to the middle producer.
	c.squashFromLogical(2, stats.SquashBranch, 0, false)
	if c.rat[5] != c.robPhys(1) {
		t.Fatalf("RAT after squash points at %d, want %d", c.rat[5], c.robPhys(1))
	}
	// Squash everything: RAT must clear.
	c.squashFromLogical(0, stats.SquashBranch, 0, false)
	if c.rat[5] != -1 {
		t.Fatalf("RAT after full squash = %d, want -1", c.rat[5])
	}
	if c.robCnt != 0 {
		t.Fatalf("robCnt = %d", c.robCnt)
	}
}

func TestSquashFreesLSQEntries(t *testing.T) {
	c := newTestCore(t, config.Base)
	c.insertEntry(fetchedInst{pc: 0, inst: isa.Inst{Op: isa.OpLoad, Rd: 1, Rs1: 2, Size: 8}})
	c.insertEntry(fetchedInst{pc: 1, inst: isa.Inst{Op: isa.OpStore, Rs1: 2, Rs2: 3, Size: 8}})
	c.insertEntry(fetchedInst{pc: 2, inst: isa.Inst{Op: isa.OpLoad, Rd: 4, Rs1: 2, Size: 8}})
	if c.lqCnt != 2 || c.sqCnt != 1 {
		t.Fatalf("lq=%d sq=%d", c.lqCnt, c.sqCnt)
	}
	c.squashFromLogical(1, stats.SquashBranch, 0, false)
	if c.lqCnt != 1 || c.sqCnt != 0 {
		t.Fatalf("after squash lq=%d sq=%d, want 1/0", c.lqCnt, c.sqCnt)
	}
	c.squashFromLogical(0, stats.SquashBranch, 0, false)
	if c.lqCnt != 0 {
		t.Fatalf("after full squash lq=%d", c.lqCnt)
	}
}

func TestSquashBumpsEpoch(t *testing.T) {
	c := newTestCore(t, config.ISFuture)
	e0 := c.epoch
	c.squashFromLogical(0, stats.SquashInterrupt, 0, false)
	if c.epoch != e0+1 {
		t.Fatalf("epoch %d, want %d", c.epoch, e0+1)
	}
}

func TestSBMatchesMemoryMaskSemantics(t *testing.T) {
	c := newTestCore(t, config.ISFuture)
	e := &lqEntry{addr: 0x1000, size: 4}
	// Load consumed bytes 0..3; byte 1 came from store forwarding.
	e.readMask = 0b1111
	e.fwdMask = 0b0010
	e.sbData[0] = 0xAA
	e.sbData[1] = 0xFF // forwarded: memory may differ
	e.sbData[2] = 0xCC
	e.sbData[3] = 0xDD
	c.mem.SetBytes(0x1000, []byte{0xAA, 0x00, 0xCC, 0xDD})
	if !c.sbMatchesMemory(e) {
		t.Fatal("forwarded byte must be excluded from validation")
	}
	c.mem.SetByte(0x1002, 0x99)
	if c.sbMatchesMemory(e) {
		t.Fatal("memory change in a consumed byte must fail validation")
	}
	c.mem.SetByte(0x1002, 0xCC)
	c.mem.SetByte(0x1010, 0x42) // outside the mask: irrelevant
	if !c.sbMatchesMemory(e) {
		t.Fatal("bytes outside the read mask must not matter")
	}
}

func TestLoadValueExtraction(t *testing.T) {
	e := &lqEntry{addr: 0x1008 + 3, size: 4}
	for i := range e.sbData {
		e.sbData[i] = byte(i)
	}
	// Line base is 0x1000; offset is 11.
	want := uint64(11) | 12<<8 | 13<<16 | 14<<24
	if got := e.loadValue(); got != want {
		t.Fatalf("loadValue = %#x, want %#x", got, want)
	}
}

func TestFenceLikeClassification(t *testing.T) {
	for _, tc := range []struct {
		op   isa.Op
		want bool
	}{
		{isa.OpFence, true}, {isa.OpAcquire, true}, {isa.OpRelease, true},
		{isa.OpRMW, false}, {isa.OpAdd, false}, {isa.OpLoad, false},
	} {
		e := &robEntry{inst: isa.Inst{Op: tc.op}}
		if got := isFenceLike(e); got != tc.want {
			t.Errorf("isFenceLike(%v) = %v", tc.op, got)
		}
	}
}

// TestSquashRestoresBpredFromFetchBuf regresses the RAS/GHR leak on
// load-initiated squashes: when no squashed ROB entry carries a predictor
// snapshot but instructions still in the fetch buffer already speculated
// through the predictor (calls pushed the RAS), the squash must rewind to
// the fetch buffer's oldest snapshot instead of leaving the wrong-path
// pushes live.
func TestSquashRestoresBpredFromFetchBuf(t *testing.T) {
	c := newTestCore(t, config.Base)
	// Committed history: one real call on the stack.
	c.bp.PushRAS(42)
	// A snapshot-less ROB entry (say, the faulting load itself).
	c.insertEntry(fetchedInst{pc: 0, inst: isa.Inst{Op: isa.OpLoad, Rd: 1, Rs1: 2, Size: 8, Priv: true}})
	// Fetch ran ahead: a call in the fetch buffer snapshotted the predictor
	// and then pushed its return address, exactly as ifetchDone does.
	snap := c.bp.Snapshot()
	c.fetchBuf = append(c.fetchBuf, fetchedInst{
		pc: 1, inst: isa.Inst{Op: isa.OpCall, Rd: 3, Target: 9}, hasSnap: true, snap: snap,
	})
	c.bp.PushRAS(2)
	c.bp.PushRAS(777) // deeper wrong-path speculation after the snapshot

	c.squashFromLogical(0, stats.SquashException, 0, true)

	if got := c.bp.PopRAS(); got != 42 {
		t.Fatalf("RAS top after squash = %d, want committed 42 (wrong-path pushes leaked)", got)
	}
}

// TestSquashPrefersRobSnapshotOverFetchBuf: when a squashed ROB entry does
// carry a snapshot, it is older than anything in the fetch buffer and must
// win.
func TestSquashPrefersRobSnapshotOverFetchBuf(t *testing.T) {
	c := newTestCore(t, config.Base)
	c.bp.PushRAS(42)
	robSnap := c.bp.Snapshot()
	c.bp.PushRAS(100) // speculation by the ROB-resident branch
	c.insertEntry(fetchedInst{pc: 0, inst: isa.Inst{Op: isa.OpCall, Rd: 3, Target: 5},
		predTaken: true, predTarget: 5})
	c.robAt(0).hasSnap = true
	c.robAt(0).snap = robSnap
	fbSnap := c.bp.Snapshot()
	c.fetchBuf = append(c.fetchBuf, fetchedInst{
		pc: 5, inst: isa.Inst{Op: isa.OpCall, Rd: 4, Target: 9}, hasSnap: true, snap: fbSnap,
	})
	c.bp.PushRAS(6)

	c.squashFromLogical(0, stats.SquashException, 0, true)

	if got := c.bp.PopRAS(); got != 42 {
		t.Fatalf("RAS top after squash = %d, want 42 from the ROB snapshot", got)
	}
}
