package core

import (
	"invisispec/internal/isa"
	"invisispec/internal/memsys"
)

// instsPerLine returns how many instructions one cache line holds.
func (c *Core) instsPerLine() int { return c.cfg.LineSize / InstBytes }

// iaddrOf returns the I-cache byte address of an instruction index. A
// negative pc (a ret or indirect jump through a garbage register) decodes
// as a halt like any other out-of-range pc; it is clamped so the fetch
// request cannot wrap to a bogus address outside the instruction region.
func iaddrOf(pc int) uint64 {
	if pc < 0 {
		pc = 0
	}
	return IBase + uint64(pc)*InstBytes
}

// fetch requests the instruction line at the current PC when the front end
// is ready for more work.
func (c *Core) fetch() {
	if c.fetchStalled || c.fetchInFlight || c.haltSeen || c.now < c.fetchResumeAt {
		return
	}
	if len(c.fetchBuf) >= 2*c.cfg.FetchWidth {
		return
	}
	// Stop fetching past a halt already in the buffer.
	for _, fi := range c.fetchBuf {
		if fi.inst.Op == isa.OpHalt {
			return
		}
	}
	tok := c.token()
	c.fetchToken = tok
	typ := memsys.IFetch
	if c.cfg.ProtectICache && c.sch.UsesInvisibleLoads() {
		// Invisible speculative fetch (footnote 2): the line becomes
		// visible only when an instruction from it retires.
		typ = memsys.IFetchSpec
	}
	req := memsys.Request{Type: typ, Core: c.id, Addr: iaddrOf(c.pc), Token: tok}
	if c.hier.Submit(req) {
		c.fetchInFlight = true
		c.st.Fetched++ // line fetches, not instructions
	}
}

// exposeILine makes a retired instruction's line visible under
// ProtectICache: the first retirement from a line issues a normal
// (installing) fetch for it.
func (c *Core) exposeILine(pc int) {
	if !c.cfg.ProtectICache || !c.sch.UsesInvisibleLoads() {
		return
	}
	line := iaddrOf(pc) >> 6
	slot := line % uint64(len(c.iExposeFilter))
	if c.iExposeFilter[slot] == line {
		return
	}
	req := memsys.Request{Type: memsys.IFetch, Core: c.id, Addr: iaddrOf(pc), Token: 0}
	if c.hier.Submit(req) {
		c.iExposeFilter[slot] = line
	}
}

// ifetchDone decodes the delivered instruction line into the fetch buffer,
// predicting control flow along the way. Decode stops at the end of the
// line, at a predicted-taken branch leaving it, at a halt, or at an
// unpredictable indirect target (BTB miss).
func (c *Core) ifetchDone(r memsys.Response) {
	if r.Token != c.fetchToken || !c.fetchInFlight {
		return // stale response from before a squash
	}
	c.fetchInFlight = false
	per := c.instsPerLine()
	// Floor-align the line start: Go's % truncates toward zero, which for a
	// negative pc would put lineStart above pc and decode nothing, wedging
	// the front end in a refetch loop. With floor alignment a negative pc
	// falls inside its (virtual) line and At() decodes it as a halt, matching
	// the golden model.
	lineStart := c.pc - ((c.pc%per)+per)%per
	for c.pc >= lineStart && c.pc < lineStart+per {
		in := c.prog.At(c.pc)
		fi := fetchedInst{pc: c.pc, inst: in, blockStart: c.isBlockStart(c.pc)}
		next := c.pc + 1
		switch {
		case in.Op.IsCondBranch():
			fi.hasSnap = true
			fi.snap = c.bp.Snapshot()
			fi.predTaken = c.bp.PredictCond(c.pc)
			fi.predTarget = in.Target
			if fi.predTaken {
				next = in.Target
			}
		case in.Op == isa.OpJmp:
			fi.predTaken, fi.predTarget = true, in.Target
			next = in.Target
		case in.Op == isa.OpCall:
			fi.hasSnap = true
			fi.snap = c.bp.Snapshot()
			fi.predTaken, fi.predTarget = true, in.Target
			c.bp.PushRAS(c.pc + 1)
			next = in.Target
		case in.Op == isa.OpRet:
			fi.hasSnap = true
			fi.snap = c.bp.Snapshot()
			fi.predTaken = true
			fi.predTarget = c.bp.PopRAS()
			next = fi.predTarget
		case in.Op == isa.OpJmpI:
			fi.hasSnap = true
			fi.snap = c.bp.Snapshot()
			tgt, ok := c.bp.PredictIndirect(c.pc)
			if !ok {
				// BTB miss: fetch stalls until the jump resolves.
				fi.predTarget = -1
				fi.btbMiss = true
				c.fetchBuf = append(c.fetchBuf, fi)
				c.fetchStalled = true
				return
			}
			fi.predTaken, fi.predTarget = true, tgt
			next = tgt
		}
		c.fetchBuf = append(c.fetchBuf, fi)
		c.pc = next
		if in.Op == isa.OpHalt {
			return
		}
		if in.Op.IsBranch() && (next < lineStart || next >= lineStart+per) {
			return // redirected out of this line
		}
		if len(c.fetchBuf) >= 4*c.cfg.FetchWidth {
			return
		}
	}
}
