package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func entry(present bool, owner int, sharers ...int) DirEntry {
	e := DirEntry{Present: present, Owner: owner}
	for _, s := range sharers {
		e.Sharers |= 1 << uint(s)
	}
	return e
}

func TestGetSMiss(t *testing.T) {
	d, e := Decide(entry(false, NoOwner), GetS, 2)
	if !d.FromMemory || !d.InstallLLC || d.Grant != Exclusive {
		t.Fatalf("miss GetS decision: %+v", d)
	}
	if !e.Present || e.Owner != 2 || e.Sharers != 0 {
		t.Fatalf("miss GetS entry: %+v", e)
	}
}

func TestGetSFromOwner(t *testing.T) {
	d, e := Decide(entry(true, 1), GetS, 2)
	if !d.FromOwner || d.Owner != 1 || !d.OwnerWriteback || d.Grant != Shared {
		t.Fatalf("owned GetS decision: %+v", d)
	}
	if e.Owner != NoOwner || !e.HasSharer(1) || !e.HasSharer(2) {
		t.Fatalf("owned GetS entry: %+v", e)
	}
}

func TestGetSSharedAddsSharer(t *testing.T) {
	d, e := Decide(entry(true, NoOwner, 0), GetS, 3)
	if d.Grant != Shared || d.FromOwner || d.FromMemory {
		t.Fatalf("shared GetS decision: %+v", d)
	}
	if !e.HasSharer(0) || !e.HasSharer(3) {
		t.Fatalf("shared GetS entry: %+v", e)
	}
}

func TestGetSExclusiveGrantWhenNoCopies(t *testing.T) {
	d, e := Decide(entry(true, NoOwner), GetS, 4)
	if d.Grant != Exclusive {
		t.Fatalf("lone GetS grant = %v, want E", d.Grant)
	}
	if e.Owner != 4 {
		t.Fatalf("lone GetS entry: %+v", e)
	}
}

func TestGetSOwnRequest(t *testing.T) {
	d, e := Decide(entry(true, 5), GetS, 5)
	if d.FromOwner || d.Grant != Exclusive || e.Owner != 5 {
		t.Fatalf("self GetS: %+v / %+v", d, e)
	}
}

func TestGetXInvalidatesEveryone(t *testing.T) {
	d, e := Decide(entry(true, NoOwner, 0, 1, 3), GetX, 1)
	if d.Grant != Modified {
		t.Fatalf("GetX grant = %v", d.Grant)
	}
	// Cores 0 and 3 invalidated; requester 1 never is.
	if len(d.Invalidate) != 2 {
		t.Fatalf("GetX invalidations: %v", d.Invalidate)
	}
	for _, c := range d.Invalidate {
		if c == 1 {
			t.Fatal("requester invalidated")
		}
	}
	if e.Owner != 1 || e.Sharers != 0 {
		t.Fatalf("GetX entry: %+v", e)
	}
}

func TestGetXFromOwner(t *testing.T) {
	d, e := Decide(entry(true, 2), GetX, 0)
	if !d.FromOwner || d.Owner != 2 || d.Grant != Modified {
		t.Fatalf("owned GetX decision: %+v", d)
	}
	if len(d.Invalidate) != 1 || d.Invalidate[0] != 2 {
		t.Fatalf("owned GetX invalidations: %v", d.Invalidate)
	}
	if e.Owner != 0 {
		t.Fatalf("owned GetX entry: %+v", e)
	}
}

func TestGetXMiss(t *testing.T) {
	d, e := Decide(entry(false, NoOwner), GetX, 7)
	if !d.FromMemory || !d.InstallLLC || d.Grant != Modified || e.Owner != 7 {
		t.Fatalf("miss GetX: %+v / %+v", d, e)
	}
}

func TestPutS(t *testing.T) {
	_, e := Decide(entry(true, NoOwner, 1, 2), PutS, 1)
	if e.HasSharer(1) || !e.HasSharer(2) {
		t.Fatalf("PutS entry: %+v", e)
	}
}

func TestPutMAndStalePutM(t *testing.T) {
	_, e := Decide(entry(true, 3), PutM, 3)
	if e.Owner != NoOwner {
		t.Fatalf("PutM entry: %+v", e)
	}
	// Stale PutM: owner already changed — must be a no-op.
	before := entry(true, 5, 1)
	_, e = Decide(before, PutM, 3)
	if e != before {
		t.Fatalf("stale PutM mutated entry: %+v", e)
	}
}

func TestSpecGetSNeverMutates(t *testing.T) {
	entries := []DirEntry{
		entry(false, NoOwner),
		entry(true, NoOwner),
		entry(true, NoOwner, 0, 2),
		entry(true, 3),
		entry(true, 1, 0),
	}
	for _, before := range entries {
		d, after := Decide(before, SpecGetS, 2)
		if after != before {
			t.Fatalf("Spec-GetS mutated %+v -> %+v", before, after)
		}
		if d.InstallLLC {
			t.Fatalf("Spec-GetS wants LLC install on %+v", before)
		}
		if d.Grant != Invalid {
			t.Fatalf("Spec-GetS granted state %v", d.Grant)
		}
	}
}

func TestSpecGetSDataSource(t *testing.T) {
	if d, _ := Decide(entry(false, NoOwner), SpecGetS, 0); !d.FromMemory {
		t.Fatal("absent line must come from memory")
	}
	if d, _ := Decide(entry(true, 4), SpecGetS, 0); !d.FromOwner || d.Owner != 4 {
		t.Fatal("owned line must be forwarded from owner")
	}
	if d, _ := Decide(entry(true, NoOwner, 1), SpecGetS, 0); d.FromOwner || d.FromMemory {
		t.Fatal("LLC copy should serve shared line")
	}
	// A core spec-reading a line it owns gets it locally-ish (from LLC path).
	if d, _ := Decide(entry(true, 2), SpecGetS, 2); d.FromOwner {
		t.Fatal("self-owned Spec-GetS must not forward to self")
	}
}

func TestRecall(t *testing.T) {
	inv, dirty := Recall(entry(true, NoOwner, 1, 4))
	if len(inv) != 2 || dirty {
		t.Fatalf("shared recall: %v dirty=%v", inv, dirty)
	}
	inv, dirty = Recall(entry(true, 6))
	if len(inv) != 1 || inv[0] != 6 || !dirty {
		t.Fatalf("owned recall: %v dirty=%v", inv, dirty)
	}
}

// Invariant: after any legal transaction, owner and sharers are mutually
// exclusive and the requester of a Get* holds the granted state.
func TestDecideInvariantsQuick(t *testing.T) {
	f := func(present bool, ownerSel uint8, sharerBits uint8, kindSel uint8, reqSel uint8) bool {
		const cores = 8
		owner := NoOwner
		if present && ownerSel%3 == 0 {
			owner = int(ownerSel) % cores
		}
		e := DirEntry{Present: present, Owner: owner}
		if owner == NoOwner && present {
			e.Sharers = uint64(sharerBits)
		}
		kind := []ReqKind{GetS, GetX, PutS, PutM, SpecGetS}[kindSel%5]
		req := int(reqSel) % cores
		d, after := Decide(e, kind, req)
		// Owner and sharers never overlap.
		if after.Owner != NoOwner && after.HasSharer(after.Owner) {
			return false
		}
		// Spec-GetS never mutates.
		if kind == SpecGetS && after != e {
			return false
		}
		// Get* leaves the requester with the granted state recorded.
		if kind == GetS || kind == GetX {
			if !after.Present {
				return false
			}
			switch d.Grant {
			case Shared:
				if !after.HasSharer(req) {
					return false
				}
			case Exclusive, Modified:
				if after.Owner != req {
					return false
				}
			default:
				return false
			}
		}
		// Invalidation lists never include the requester.
		for _, c := range d.Invalidate {
			if c == req {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	for _, s := range []State{Invalid, Shared, Exclusive, Modified, State(9)} {
		if s.String() == "" {
			t.Error("empty state string")
		}
	}
	for _, k := range []ReqKind{GetS, GetX, PutS, PutM, SpecGetS, ReqKind(99)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}
