// Package coherence implements the directory-based MESI protocol's decision
// logic as pure functions over directory entries. The memory system
// (internal/memsys) owns sequencing, queueing and timing; this package owns
// the state machine, so protocol transitions are unit-testable in isolation.
//
// The protocol follows the paper's setup: an inclusive shared L2/LLC with an
// embedded directory, private L1s, and a new Spec-GetS transaction that
// obtains the latest copy of a line without changing any cache or coherence
// state (paper §VI-E1). A Spec-GetS forwarded to an owner that no longer
// holds the line is bounced back to the requester, which retries.
package coherence

import "fmt"

// State is an L1 line's MESI state. The directory does not distinguish E
// from M (an E-state owner may have silently upgraded), so directory
// decisions treat any owned line as potentially dirty.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the state initial.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// DirEntry is the directory's view of one line (embedded in the LLC line).
type DirEntry struct {
	// Present reports whether the line is resident in the LLC. The LLC is
	// inclusive: any line cached in an L1 is Present.
	Present bool
	// Sharers is a bitmap of cores holding the line in Shared state.
	Sharers uint64
	// Owner is the core holding the line in Exclusive/Modified state, or -1.
	Owner int
}

// NoOwner is the Owner value of an unowned line.
const NoOwner = -1

// HasSharer reports whether core holds a Shared copy.
func (e DirEntry) HasSharer(core int) bool { return e.Sharers&(1<<uint(core)) != 0 }

// SharerList expands the sharer bitmap.
func (e DirEntry) SharerList() []int {
	var out []int
	for c := 0; e.Sharers>>uint(c) != 0; c++ {
		if e.HasSharer(c) {
			out = append(out, c)
		}
	}
	return out
}

// ReqKind is a coherence transaction type.
type ReqKind uint8

// Transaction kinds.
const (
	GetS     ReqKind = iota // read for sharing (loads, validations, exposures, ifetch)
	GetX                    // read for ownership (stores, atomics)
	PutS                    // clean eviction of a Shared copy
	PutM                    // eviction of an Exclusive/Modified copy (data writeback)
	SpecGetS                // InvisiSpec stateless read
)

// String names the transaction.
func (k ReqKind) String() string {
	switch k {
	case GetS:
		return "GetS"
	case GetX:
		return "GetX"
	case PutS:
		return "PutS"
	case PutM:
		return "PutM"
	case SpecGetS:
		return "Spec-GetS"
	}
	return fmt.Sprintf("ReqKind(%d)", uint8(k))
}

// Decision tells the memory system what a transaction must do.
type Decision struct {
	// Grant is the L1 state the requester ends with (Invalid for Put*).
	Grant State
	// FromOwner: data must be forwarded from the current owner's L1.
	FromOwner bool
	// Owner is the forward target when FromOwner is set.
	Owner int
	// OwnerWriteback: the owner also writes the (potentially dirty) line
	// back to the LLC (GetS downgrade of an owned line).
	OwnerWriteback bool
	// FromMemory: the line is not in the LLC; fetch it from DRAM.
	FromMemory bool
	// Invalidate lists cores whose copies must be invalidated (never
	// includes the requester).
	Invalidate []int
	// InstallLLC: the fetched line is installed in the LLC (all demand
	// fills; never Spec-GetS).
	InstallLLC bool
}

// Decide computes the protocol action for a request on a line and the
// directory entry after the transaction completes. It panics on protocol
// violations that indicate simulator bugs (e.g. PutM from a non-owner is
// NOT one of those — see below — but a negative requester is).
func Decide(e DirEntry, k ReqKind, req int) (Decision, DirEntry) {
	if req < 0 || req >= 64 {
		panic(fmt.Sprintf("coherence: bad requester %d", req))
	}
	switch k {
	case GetS:
		return decideGetS(e, req)
	case GetX:
		return decideGetX(e, req)
	case PutS:
		e.Sharers &^= 1 << uint(req)
		return Decision{Grant: Invalid}, e
	case PutM:
		// A stale PutM (owner already downgraded by an intervening GetS/GetX
		// that the eviction raced with) is dropped without state change.
		if e.Owner == req {
			e.Owner = NoOwner
		}
		return Decision{Grant: Invalid}, e
	case SpecGetS:
		return decideSpecGetS(e, req), e // entry NEVER changes
	}
	panic(fmt.Sprintf("coherence: unknown request kind %v", k))
}

func decideGetS(e DirEntry, req int) (Decision, DirEntry) {
	switch {
	case !e.Present:
		e.Present = true
		e.Owner = req
		e.Sharers = 0
		return Decision{Grant: Exclusive, FromMemory: true, InstallLLC: true}, e
	case e.Owner == req:
		// Requester already owns it (e.g. a validation after the USL's line
		// was independently fetched). Keep ownership.
		return Decision{Grant: Exclusive}, e
	case e.Owner != NoOwner:
		d := Decision{
			Grant:          Shared,
			FromOwner:      true,
			Owner:          e.Owner,
			OwnerWriteback: true, // owner may be M; directory must assume dirty
		}
		e.Sharers |= 1<<uint(e.Owner) | 1<<uint(req)
		e.Owner = NoOwner
		return d, e
	case e.Sharers == 0:
		// MESI exclusive grant: no other copies exist.
		e.Owner = req
		return Decision{Grant: Exclusive}, e
	default:
		e.Sharers |= 1 << uint(req)
		return Decision{Grant: Shared}, e
	}
}

func decideGetX(e DirEntry, req int) (Decision, DirEntry) {
	if !e.Present {
		e.Present = true
		e.Owner = req
		e.Sharers = 0
		return Decision{Grant: Modified, FromMemory: true, InstallLLC: true}, e
	}
	d := Decision{Grant: Modified}
	if e.Owner != NoOwner && e.Owner != req {
		d.FromOwner = true
		d.Owner = e.Owner
		d.Invalidate = append(d.Invalidate, e.Owner)
	}
	for _, c := range e.SharerList() {
		if c != req {
			d.Invalidate = append(d.Invalidate, c)
		}
	}
	e.Owner = req
	e.Sharers = 0
	return d, e
}

func decideSpecGetS(e DirEntry, req int) Decision {
	switch {
	case !e.Present:
		return Decision{FromMemory: true} // no install anywhere
	case e.Owner != NoOwner && e.Owner != req:
		return Decision{FromOwner: true, Owner: e.Owner}
	default:
		return Decision{} // data from the LLC copy
	}
}

// Recall computes the action for an inclusive-LLC eviction of a line: every
// L1 copy is invalidated, and an owned line may be dirty and must be treated
// as writing back to memory.
func Recall(e DirEntry) (invalidate []int, dirtyPossible bool) {
	invalidate = e.SharerList()
	if e.Owner != NoOwner {
		invalidate = append(invalidate, e.Owner)
		dirtyPossible = true
	}
	return invalidate, dirtyPossible
}
