package tlb

import (
	"testing"

	"invisispec/internal/isa"
)

func TestAccessMissThenHit(t *testing.T) {
	tl := New(4, 40)
	if got := tl.Access(0x1234); got != 40 {
		t.Fatalf("cold access latency %d, want 40", got)
	}
	if got := tl.Access(0x1234 + 8); got != 0 { // same page
		t.Fatalf("warm access latency %d, want 0", got)
	}
	if tl.Hits != 1 || tl.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tl.Hits, tl.Misses)
	}
}

func TestProbeLeavesNoTrace(t *testing.T) {
	tl := New(2, 40)
	tl.Access(0 * isa.PageSize)
	tl.Access(1 * isa.PageSize) // MRU order: 1, 0
	before := tl.MRUOrder()
	if !tl.Probe(0) {
		t.Fatal("probe missed resident page")
	}
	if tl.Probe(5 * isa.PageSize) {
		t.Fatal("probe hit absent page")
	}
	after := tl.MRUOrder()
	if len(before) != len(after) {
		t.Fatal("probe changed occupancy")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("probe changed LRU order %v -> %v", before, after)
		}
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := New(2, 40)
	tl.Access(0 * isa.PageSize)
	tl.Access(1 * isa.PageSize)
	tl.Access(0 * isa.PageSize)     // 0 is MRU
	tl.Access(2 * isa.PageSize)     // evicts page 1
	if tl.Probe(1 * isa.PageSize) { //
		t.Fatal("page 1 should have been evicted")
	}
	if !tl.Probe(0) || !tl.Probe(2*isa.PageSize) {
		t.Fatal("resident pages missing")
	}
}

func TestDeferredTouchAndInsert(t *testing.T) {
	tl := New(2, 40)
	tl.Access(0 * isa.PageSize)
	tl.Access(1 * isa.PageSize)
	// Deferred hit update: page 0 promoted at visibility point.
	tl.Touch(0)
	tl.Insert(2 * isa.PageSize) // deferred walk fill evicts LRU (page 1)
	if tl.Probe(1 * isa.PageSize) {
		t.Fatal("deferred insert evicted the wrong page")
	}
	if !tl.Probe(0) {
		t.Fatal("touched page evicted")
	}
}

func TestPageOf(t *testing.T) {
	if PageOf(isa.PageSize-1) != 0 || PageOf(isa.PageSize) != 1 {
		t.Fatal("PageOf boundary wrong")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, ...) did not panic")
		}
	}()
	New(0, 40)
}
