// Package tlb models the per-core data TLB: a small fully-associative,
// LRU-replaced translation cache. Translation is identity (virtual ==
// physical); the TLB is purely a timing and state structure — but its state
// (which entries live in it, LRU order) is one of the side channels
// InvisiSpec closes, so Probe (stateless) and Touch/Insert (state-changing)
// are separate operations. Under InvisiSpec, a speculative load's miss walk
// and replacement update are deferred until the load's visibility point
// (paper §VI-E3).
package tlb

import (
	"invisispec/internal/cache"
	"invisispec/internal/isa"
)

// TLB is one core's data TLB.
type TLB struct {
	arr         *cache.Array
	walkLatency int

	Hits   uint64
	Misses uint64
}

// New builds a TLB with the given number of entries and page-walk latency in
// cycles. Entries must be a power of two is NOT required (fully associative,
// one set), but must be positive.
func New(entries, walkLatency int) *TLB {
	if entries <= 0 {
		panic("tlb: entries must be positive")
	}
	return &TLB{arr: cache.NewArray(1, entries), walkLatency: walkLatency}
}

// PageOf returns the page number of a byte address.
func PageOf(addr uint64) uint64 { return addr / isa.PageSize }

// Probe reports whether the page holding addr is mapped, without updating
// any replacement state. This is what a USL's translation does under
// InvisiSpec: observe but do not perturb.
func (t *TLB) Probe(addr uint64) bool {
	return t.arr.Lookup(PageOf(addr)) != nil
}

// Access performs a normal (visible) translation: on a hit the entry is
// promoted to MRU and the extra latency is 0; on a miss the page is walked
// and installed, and the walk latency is returned.
func (t *TLB) Access(addr uint64) (extraLatency int) {
	p := PageOf(addr)
	if t.arr.Lookup(p) != nil {
		t.Hits++
		t.arr.Touch(p)
		return 0
	}
	t.Misses++
	t.arr.Insert(p)
	return t.walkLatency
}

// Touch applies the deferred replacement update for a hit that was made
// invisible at translation time (the USL reached its visibility point).
func (t *TLB) Touch(addr uint64) { t.arr.Touch(PageOf(addr)) }

// Insert applies a deferred page walk's fill.
func (t *TLB) Insert(addr uint64) { t.arr.Insert(PageOf(addr)) }

// WalkLatency returns the configured page-walk latency in cycles.
func (t *TLB) WalkLatency() int { return t.walkLatency }

// MRUOrder exposes the LRU stack (page numbers, MRU first) so tests can
// assert that invisible probes leave no trace.
func (t *TLB) MRUOrder() []uint64 { return t.arr.LRUOrder(0) }
