package runner

// This file implements bench-JSON artifacts: the schema-versioned
// measurement format CI compares across commits (cmd/benchdiff). The
// payload is split in two: Runs carries only deterministic simulator output
// (byte-identical for the same matrix no matter how many workers computed
// it), and the optional Host block quarantines everything wall-clock — so
// artifacts diff cleanly and the determinism tests can compare whole files.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"invisispec/internal/artifact"
	"invisispec/internal/config"
	"invisispec/internal/stats"
)

// BenchSchema identifies the artifact format; benchdiff refuses to compare
// across schema versions.
const BenchSchema = "invisispec-bench/v1"

// BenchRun is one job's deterministic measurement.
type BenchRun struct {
	Workload    string `json:"workload"`
	Parsec      bool   `json:"parsec,omitempty"`
	Defense     string `json:"defense"`
	Consistency string `json:"consistency"`
	FaultSeed   int64  `json:"fault_seed,omitempty"`

	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	CPI          float64 `json:"cpi"`
	// NormalizedTime is this run's CPI over the Base run's CPI within the
	// same (workload, consistency, fault-seed) group — the Figure 4/7 bar.
	// Zero when the group has no successful Base run.
	NormalizedTime float64 `json:"normalized_time,omitempty"`

	TrafficTotal uint64            `json:"traffic_total"`
	Traffic      map[string]uint64 `json:"traffic"` // by class name; json sorts keys

	Squashes         uint64  `json:"squashes"`
	SquashesPerMInst float64 `json:"squashes_per_minst"`
	Exposures        uint64  `json:"exposures"`
	Validations      uint64  `json:"validations"`
	LLCSBRate        float64 `json:"llcsb_rate"`
	DRAMReads        uint64  `json:"dram_reads"`

	// Error carries a failed job's error text; its metric fields are zero.
	Error string `json:"error,omitempty"`
}

// BenchHost is the nondeterministic side of the artifact: where and how fast
// the sweep ran. benchdiff ignores it.
type BenchHost struct {
	WallMS   float64   `json:"wall_ms"`
	Jobs     int       `json:"jobs"`
	CPUs     int       `json:"cpus"`
	GoOS     string    `json:"goos"`
	GoVer    string    `json:"go"`
	PerRunMS []float64 `json:"run_ms"` // indexed like Runs
	// KernelWallMS records the sweep's wall time per simulation kernel when
	// benchtable -comparekernels re-runs the matrix under both (keys "fast"
	// and "stepped"). Like everything in Host it is informational only —
	// benchdiff trajectories show the fast-forward speedup without gating on
	// it.
	KernelWallMS map[string]float64 `json:"kernel_wall_ms,omitempty"`
}

// Bench is a full artifact.
type Bench struct {
	Schema  string     `json:"schema"`
	Name    string     `json:"name"`
	Warmup  uint64     `json:"warmup"`
	Measure uint64     `json:"measure"`
	Runs    []BenchRun `json:"runs"`
	// Degraded lists the matrix cells whose jobs exhausted their retry
	// budget (campaign graceful degradation): the sweep completed without
	// them, the CLI exits non-zero, and each entry carries a ready-to-run
	// repro command.
	Degraded []artifact.DegradedCell `json:"degraded,omitempty"`
	Host     *BenchHost              `json:"host,omitempty"`
}

// benchKey groups runs that normalize against the same Base measurement.
type benchKey struct {
	workload string
	cm       config.Consistency
	seed     int64
}

// NewBench assembles the deterministic part of an artifact from aggregated
// results. Normalized time is computed per (workload, consistency, seed)
// group against that group's Base run.
func NewBench(name string, warmup, measure uint64, results []JobResult) *Bench {
	baseCPI := make(map[benchKey]float64)
	for _, r := range results {
		if r.Err == nil && r.Job.Defense == config.Base {
			baseCPI[benchKey{r.Job.Workload, r.Job.Consistency, r.Job.FaultSeed}] = r.Result.CPI()
		}
	}
	b := &Bench{Schema: BenchSchema, Name: name, Warmup: warmup, Measure: measure,
		Runs: make([]BenchRun, 0, len(results))}
	names := stats.TrafficClassNames()
	for _, r := range results {
		br := BenchRun{
			Workload:    r.Job.Workload,
			Parsec:      r.Job.Parsec,
			Defense:     r.Job.Defense.String(),
			Consistency: r.Job.Consistency.String(),
			FaultSeed:   r.Job.FaultSeed,
		}
		if r.Err != nil {
			br.Error = r.Err.Error()
			b.Runs = append(b.Runs, br)
			continue
		}
		res := r.Result
		br.Instructions = res.Instructions
		br.Cycles = res.Cycles
		br.CPI = res.CPI()
		if base := baseCPI[benchKey{r.Job.Workload, r.Job.Consistency, r.Job.FaultSeed}]; base > 0 {
			br.NormalizedTime = br.CPI / base
		}
		br.TrafficTotal = res.TotalTraffic()
		br.Traffic = make(map[string]uint64, len(names))
		for c, n := range names {
			br.Traffic[n] = res.Traffic[c]
		}
		br.Squashes = res.Core.TotalSquashes()
		br.SquashesPerMInst = res.Core.SquashesPerMInst()
		br.Exposures = res.Core.Exposures
		br.Validations = res.Core.Validations()
		br.LLCSBRate = res.LLCSBRate
		br.DRAMReads = res.DRAMReads
		b.Runs = append(b.Runs, br)
	}
	return b
}

// WithHost attaches the host block for a sweep that took wall time with the
// given worker count. Returns b for chaining.
func (b *Bench) WithHost(wall time.Duration, jobs int, results []JobResult) *Bench {
	h := &BenchHost{
		WallMS: float64(wall.Nanoseconds()) / 1e6,
		Jobs:   jobs,
		CPUs:   runtime.NumCPU(),
		GoOS:   runtime.GOOS,
		GoVer:  runtime.Version(),
	}
	for _, r := range results {
		h.PerRunMS = append(h.PerRunMS, float64(r.HostNS)/1e6)
	}
	b.Host = h
	return b
}

// WithKernelWall records one kernel's sweep wall time in the host block
// (creating the block if WithHost was not called). Returns b for chaining.
func (b *Bench) WithKernelWall(kernel string, wall time.Duration) *Bench {
	if b.Host == nil {
		b.Host = &BenchHost{}
	}
	if b.Host.KernelWallMS == nil {
		b.Host.KernelWallMS = make(map[string]float64, 2)
	}
	b.Host.KernelWallMS[kernel] = float64(wall.Nanoseconds()) / 1e6
	return b
}

// DeterministicPayload renders the artifact's deterministic half — schema,
// name, budgets, and every run — as indented JSON, excluding the Host block.
// benchtable -comparekernels compares stepped-vs-fast payloads byte-for-byte
// with this; the runner determinism tests compare serial-vs-parallel the
// same way.
func (b *Bench) DeterministicPayload() ([]byte, error) {
	stripped := *b
	stripped.Host = nil
	out, err := json.MarshalIndent(&stripped, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runner: marshaling bench payload: %w", err)
	}
	return out, nil
}

// WriteBenchJSON writes the artifact as indented JSON. Output is
// deterministic for a deterministic Bench: struct fields emit in declaration
// order and map keys are sorted by encoding/json.
func WriteBenchJSON(w io.Writer, b *Bench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("runner: writing bench JSON: %w", err)
	}
	return nil
}

// ReadBenchJSON parses an artifact and validates its schema tag.
func ReadBenchJSON(r io.Reader) (*Bench, error) {
	var b Bench
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("runner: reading bench JSON: %w", err)
	}
	if b.Schema != BenchSchema {
		return nil, fmt.Errorf("runner: bench JSON schema %q, want %q", b.Schema, BenchSchema)
	}
	return &b, nil
}

// RunKey identifies a run across artifacts for comparison.
func (r BenchRun) RunKey() string {
	return fmt.Sprintf("%s/%s/%s/seed%d", r.Workload, r.Defense, r.Consistency, r.FaultSeed)
}

// SortedRunKeys returns every run's key in deterministic (sorted) order,
// for stable comparison reports.
func (b *Bench) SortedRunKeys() []string {
	keys := make([]string, 0, len(b.Runs))
	for _, r := range b.Runs {
		keys = append(keys, r.RunKey())
	}
	sort.Strings(keys)
	return keys
}

// RunsByKey indexes the artifact's runs.
func (b *Bench) RunsByKey() map[string]BenchRun {
	m := make(map[string]BenchRun, len(b.Runs))
	for _, r := range b.Runs {
		m[r.RunKey()] = r
	}
	return m
}
