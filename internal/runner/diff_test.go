package runner

import (
	"strings"
	"testing"

	"invisispec/internal/config"
)

// diffBench synthesizes a one-workload artifact covering every registered
// defense under TSO, with Base at baseCPI and every secure scheme at
// secureCPI (InvisiSpec schemes get isCPI so the average ordering is
// controllable).
func diffBench(name string, baseCPI, secureCPI, isCPI float64) *Bench {
	b := &Bench{Schema: BenchSchema, Name: name}
	for _, d := range config.AllDefenses() {
		cpi := secureCPI
		switch d {
		case config.Base:
			cpi = baseCPI
		case config.ISSpectre, config.ISFuture:
			cpi = isCPI
		}
		b.Runs = append(b.Runs, BenchRun{
			Workload: "wk", Defense: d.String(), Consistency: "TSO",
			Instructions: 1000, Cycles: uint64(cpi * 1000), CPI: cpi,
		})
	}
	return b
}

func checksByKind(v *DiffVerdict, kind string) []DiffCheck {
	var out []DiffCheck
	for _, c := range v.Checks {
		if c.Kind == kind {
			out = append(out, c)
		}
	}
	return out
}

func TestCompareBenchPass(t *testing.T) {
	base := diffBench("base", 1.0, 3.0, 2.0)
	cand := diffBench("cand", 1.0, 3.0, 2.0)
	v := CompareBench(base, cand, 0.10, 0.02)
	if !v.Pass || v.Problems != 0 {
		t.Fatalf("identical artifacts: pass=%v problems=%d checks=%+v", v.Pass, v.Problems, v.Failed())
	}
	if v.Schema != DiffSchema {
		t.Fatalf("schema %q", v.Schema)
	}
	if n := len(checksByKind(v, CheckRegression)); n != len(base.Runs) {
		t.Fatalf("%d regression checks for %d baseline runs", n, len(base.Runs))
	}
	// One complete TSO group -> one base-fastest check + the two TSO
	// average-ordering checks.
	if n := len(checksByKind(v, CheckShapeBase)); n != 1 {
		t.Fatalf("%d base-fastest checks, want 1", n)
	}
	if n := len(checksByKind(v, CheckShapeAverage)); n != 2 {
		t.Fatalf("%d average checks, want 2", n)
	}
}

func TestCompareBenchCPIRegression(t *testing.T) {
	base := diffBench("base", 1.0, 3.0, 2.0)
	cand := diffBench("cand", 1.0, 3.0, 2.0)
	// Regress one run 20% past a 10% tolerance.
	cand.Runs[1].CPI *= 1.2
	v := CompareBench(base, cand, 0.10, 0.02)
	if v.Pass || v.Problems != 1 {
		t.Fatalf("pass=%v problems=%d", v.Pass, v.Problems)
	}
	f := v.Failed()[0]
	if f.Kind != CheckRegression || !strings.Contains(f.Detail, "regressed") {
		t.Fatalf("failed check = %+v", f)
	}
	if f.Delta < 0.19 || f.Delta > 0.21 {
		t.Fatalf("delta = %v, want ~0.2", f.Delta)
	}
}

func TestCompareBenchShapeInversion(t *testing.T) {
	base := diffBench("base", 1.0, 3.0, 2.0)
	// Base slower than every secure scheme: both the per-group check and the
	// regression check for Base's run fire... regression only if CPI rose, so
	// keep baseline matching the (inverted) candidate to isolate shape.
	cand := diffBench("cand", 5.0, 3.0, 2.0)
	baseInv := diffBench("base", 5.0, 3.0, 2.0)
	v := CompareBench(baseInv, cand, 0.10, 0.02)
	if v.Pass {
		t.Fatal("inverted shape passed")
	}
	shape := checksByKind(v, CheckShapeBase)
	if len(shape) != 1 || shape[0].Pass {
		t.Fatalf("shape checks = %+v", shape)
	}
	if !strings.Contains(shape[0].Detail, "Base") {
		t.Fatalf("detail %q", shape[0].Detail)
	}
	_ = base
}

func TestCompareBenchISVsFenceAverage(t *testing.T) {
	// InvisiSpec slower than fences on the average: the two average checks
	// must fail while per-group Base-fastest still passes.
	cand := diffBench("cand", 1.0, 2.0, 4.0)
	base := diffBench("base", 1.0, 2.0, 4.0)
	v := CompareBench(base, cand, 0.10, 0.02)
	avg := checksByKind(v, CheckShapeAverage)
	if len(avg) != 2 || avg[0].Pass || avg[1].Pass {
		t.Fatalf("average checks = %+v", avg)
	}
	for _, c := range checksByKind(v, CheckShapeBase) {
		if !c.Pass {
			t.Fatalf("base-fastest unexpectedly failed: %+v", c)
		}
	}
}

func TestCompareBenchMissingRun(t *testing.T) {
	base := diffBench("base", 1.0, 3.0, 2.0)
	cand := diffBench("cand", 1.0, 3.0, 2.0)
	cand.Runs = cand.Runs[:len(cand.Runs)-1]
	v := CompareBench(base, cand, 0.10, 0.02)
	found := false
	for _, c := range v.Failed() {
		found = found || strings.Contains(c.Detail, "missing from candidate")
	}
	if !found {
		t.Fatalf("missing-run check absent: %+v", v.Failed())
	}
}
