package runner

// This file generalizes the worker pool beyond the harness.Measure job
// matrix: a Task is an arbitrary unit of work identified by name, and
// RunTasks shards a slice of them across the same bounded pool with the
// same guarantees Run gives jobs — index-addressed deterministic
// aggregation, per-task wall-clock timeouts enforced through the task's
// context, panic isolation, and fail-fast-free cancellation. Run is now a
// thin adapter over RunTasks; the leakage scanner (internal/leakage) is the
// second client.

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Task is one unit of work for the generic pool.
type Task struct {
	// Name labels the task in errors and progress lines.
	Name string
	// Timeout, when non-zero, bounds the task's host wall-clock time via
	// its context. Work must poll the context to honour it (the simulator
	// loops do, every sim.ctxCheckStride cycles).
	Timeout time.Duration
	// Run does the work. It must be self-contained: tasks run concurrently
	// and share nothing but the pool.
	Run func(ctx context.Context) (any, error)
}

// TaskResult pairs a task with its outcome.
type TaskResult struct {
	Name  string
	Index int // position in the submitted slice
	Value any
	// Err is the task's failure, if any: an error from Run, a context
	// cancellation/timeout, or a recovered panic. A failed task never
	// kills the pool.
	Err error
	// HostNS is the task's host wall-clock duration in nanoseconds — the
	// one nondeterministic field, for host blocks only.
	HostNS int64
}

// RunTasks executes tasks on a bounded worker pool and returns one
// TaskResult per task, in task order. It always returns len(tasks)
// results: per-task failures are recorded in the task's slot without
// stopping the pool, and a cancelled context fails the not-yet-started
// tasks with ctx.Err() while in-flight tasks abort at their next context
// poll. All workers have exited by the time RunTasks returns.
func RunTasks(ctx context.Context, tasks []Task, opts Options) []TaskResult {
	results := make([]TaskResult, len(tasks))
	for i := range results {
		results[i] = TaskResult{Name: tasks[i].Name, Index: i}
	}
	if len(tasks) == 0 {
		return results
	}

	var (
		wg    sync.WaitGroup
		queue = make(chan int)
		prog  = newProgress(opts.Progress, opts.OnProgress, len(tasks))
	)
	for w := 0; w < opts.workers(len(tasks)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				r := &results[i]
				start := time.Now()
				r.Value, r.Err = runOneTask(ctx, tasks[i], opts)
				r.HostNS = time.Since(start).Nanoseconds()
				prog.done(tasks[i].Name, r.Err)
			}
		}()
	}
feed:
	for i := range tasks {
		select {
		case queue <- i:
		case <-ctx.Done():
			// Fail everything not yet handed to a worker; workers abort
			// their in-flight task at the next cooperative context poll.
			for j := i; j < len(tasks); j++ {
				results[j].Err = fmt.Errorf("runner: %s not started: %w", tasks[j].Name, ctx.Err())
			}
			break feed
		}
	}
	close(queue)
	wg.Wait()
	return results
}

// runOneTask executes a single task with its timeout applied and panics
// converted to errors.
func runOneTask(ctx context.Context, t Task, opts Options) (v any, err error) {
	timeout := t.Timeout
	if timeout == 0 {
		timeout = opts.Timeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		// Guard the pool against panics anywhere on the task path so one
		// bad task cannot take down the other workers' tasks.
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: %s: panic: %v", t.Name, r)
		}
	}()
	v, err = t.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("runner: %s: %w", t.Name, err)
	}
	return v, nil
}
