package runner

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunTasksOrderAndValues(t *testing.T) {
	tasks := make([]Task, 8)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Name: strings.Repeat("x", i+1),
			Run:  func(ctx context.Context) (any, error) { return i * i, nil },
		}
	}
	results := RunTasks(context.Background(), tasks, Options{Jobs: 4})
	if len(results) != len(tasks) {
		t.Fatalf("got %d results, want %d", len(results), len(tasks))
	}
	for i, r := range results {
		if r.Index != i || r.Name != tasks[i].Name {
			t.Errorf("result %d: index %d name %q", i, r.Index, r.Name)
		}
		if r.Err != nil || r.Value.(int) != i*i {
			t.Errorf("result %d: value %v err %v, want %d", i, r.Value, r.Err, i*i)
		}
	}
}

func TestRunTasksErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	tasks := []Task{
		{Name: "ok1", Run: func(ctx context.Context) (any, error) { return 1, nil }},
		{Name: "bad", Run: func(ctx context.Context) (any, error) { return nil, boom }},
		{Name: "ok2", Run: func(ctx context.Context) (any, error) { return 2, nil }},
	}
	results := RunTasks(context.Background(), tasks, Options{Jobs: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy tasks failed: %v, %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Fatalf("err = %v, want wrapped boom", results[1].Err)
	}
	if want := "runner: bad: boom"; results[1].Err.Error() != want {
		t.Fatalf("err = %q, want %q", results[1].Err, want)
	}
}

func TestRunTasksPanicIsolation(t *testing.T) {
	tasks := []Task{
		{Name: "panicky", Run: func(ctx context.Context) (any, error) { panic("kaboom") }},
		{Name: "fine", Run: func(ctx context.Context) (any, error) { return "ok", nil }},
	}
	results := RunTasks(context.Background(), tasks, Options{Jobs: 1})
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "panic: kaboom") {
		t.Fatalf("panic not converted: %v", results[0].Err)
	}
	if results[1].Err != nil || results[1].Value != "ok" {
		t.Fatalf("task after panic damaged: %v %v", results[1].Value, results[1].Err)
	}
}

func TestRunTasksTimeout(t *testing.T) {
	tasks := []Task{{
		Name:    "slow",
		Timeout: 10 * time.Millisecond,
		Run: func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}}
	results := RunTasks(context.Background(), tasks, Options{})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", results[0].Err)
	}
}

func TestRunTasksCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	tasks := make([]Task, 6)
	for i := range tasks {
		tasks[i] = Task{
			Name: "t",
			Run: func(c context.Context) (any, error) {
				started.Add(1)
				select {
				case <-release:
					return nil, nil
				case <-c.Done():
					return nil, c.Err()
				}
			},
		}
	}
	done := make(chan []TaskResult)
	go func() { done <- RunTasks(ctx, tasks, Options{Jobs: 2}) }()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	results := <-done
	close(release)
	var notStarted int
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		if strings.Contains(r.Err.Error(), "not started") {
			notStarted++
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("err = %v, want wrapped context.Canceled", r.Err)
		}
	}
	if notStarted == 0 {
		t.Error("expected some tasks to fail before starting")
	}
}

func TestRunTasksEmpty(t *testing.T) {
	if got := RunTasks(context.Background(), nil, Options{}); len(got) != 0 {
		t.Fatalf("got %d results for empty input", len(got))
	}
}
