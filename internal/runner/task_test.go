package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunTasksOrderAndValues(t *testing.T) {
	tasks := make([]Task, 8)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Name: strings.Repeat("x", i+1),
			Run:  func(ctx context.Context) (any, error) { return i * i, nil },
		}
	}
	results := RunTasks(context.Background(), tasks, Options{Jobs: 4})
	if len(results) != len(tasks) {
		t.Fatalf("got %d results, want %d", len(results), len(tasks))
	}
	for i, r := range results {
		if r.Index != i || r.Name != tasks[i].Name {
			t.Errorf("result %d: index %d name %q", i, r.Index, r.Name)
		}
		if r.Err != nil || r.Value.(int) != i*i {
			t.Errorf("result %d: value %v err %v, want %d", i, r.Value, r.Err, i*i)
		}
	}
}

func TestRunTasksErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	tasks := []Task{
		{Name: "ok1", Run: func(ctx context.Context) (any, error) { return 1, nil }},
		{Name: "bad", Run: func(ctx context.Context) (any, error) { return nil, boom }},
		{Name: "ok2", Run: func(ctx context.Context) (any, error) { return 2, nil }},
	}
	results := RunTasks(context.Background(), tasks, Options{Jobs: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy tasks failed: %v, %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Fatalf("err = %v, want wrapped boom", results[1].Err)
	}
	if want := "runner: bad: boom"; results[1].Err.Error() != want {
		t.Fatalf("err = %q, want %q", results[1].Err, want)
	}
}

func TestRunTasksPanicIsolation(t *testing.T) {
	tasks := []Task{
		{Name: "panicky", Run: func(ctx context.Context) (any, error) { panic("kaboom") }},
		{Name: "fine", Run: func(ctx context.Context) (any, error) { return "ok", nil }},
	}
	results := RunTasks(context.Background(), tasks, Options{Jobs: 1})
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "panic: kaboom") {
		t.Fatalf("panic not converted: %v", results[0].Err)
	}
	if results[1].Err != nil || results[1].Value != "ok" {
		t.Fatalf("task after panic damaged: %v %v", results[1].Value, results[1].Err)
	}
}

func TestRunTasksTimeout(t *testing.T) {
	tasks := []Task{{
		Name:    "slow",
		Timeout: 10 * time.Millisecond,
		Run: func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}}
	results := RunTasks(context.Background(), tasks, Options{})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", results[0].Err)
	}
}

func TestRunTasksCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	tasks := make([]Task, 6)
	for i := range tasks {
		tasks[i] = Task{
			Name: "t",
			Run: func(c context.Context) (any, error) {
				started.Add(1)
				select {
				case <-release:
					return nil, nil
				case <-c.Done():
					return nil, c.Err()
				}
			},
		}
	}
	done := make(chan []TaskResult)
	go func() { done <- RunTasks(ctx, tasks, Options{Jobs: 2}) }()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	results := <-done
	close(release)
	var notStarted int
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		if strings.Contains(r.Err.Error(), "not started") {
			notStarted++
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("err = %v, want wrapped context.Canceled", r.Err)
		}
	}
	if notStarted == 0 {
		t.Error("expected some tasks to fail before starting")
	}
}

// TestRunTasksPartialFailureStatuses pins the partial-failure contract in one
// table: a mixed campaign of ok / error / panic / timeout / cancelled tasks
// always yields len(tasks) results, each failure mode is addressable by its
// submission index, and no failure leaks into a neighbouring slot.
func TestRunTasksPartialFailureStatuses(t *testing.T) {
	boom := errors.New("boom")
	inner, cancelInner := context.WithCancel(context.Background())
	cancelInner() // the "cancelled" task observes an already-dead context
	tasks := []Task{
		{Name: "ok", Run: func(ctx context.Context) (any, error) { return 42, nil }},
		{Name: "err", Run: func(ctx context.Context) (any, error) { return nil, boom }},
		{Name: "panic", Run: func(ctx context.Context) (any, error) { panic("kaboom") }},
		{Name: "timeout", Timeout: 5 * time.Millisecond, Run: func(ctx context.Context) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}},
		{Name: "cancelled", Run: func(ctx context.Context) (any, error) { return nil, inner.Err() }},
		{Name: "ok2", Run: func(ctx context.Context) (any, error) { return "after", nil }},
	}
	// Jobs: 1 serializes the pool, so the panic and timeout demonstrably do
	// not poison later tasks on the same worker.
	results := RunTasks(context.Background(), tasks, Options{Jobs: 1})
	if len(results) != len(tasks) {
		t.Fatalf("got %d results, want %d", len(results), len(tasks))
	}
	for i, r := range results {
		if r.Index != i || r.Name != tasks[i].Name {
			t.Fatalf("slot %d: index %d name %q — results not index-addressed", i, r.Index, r.Name)
		}
	}
	check := func(i int, wantErr func(error) bool, desc string) {
		t.Helper()
		if !wantErr(results[i].Err) {
			t.Errorf("slot %d (%s): err = %v, want %s", i, tasks[i].Name, results[i].Err, desc)
		}
	}
	check(0, func(e error) bool { return e == nil && results[0].Value == 42 }, "nil with value 42")
	check(1, func(e error) bool { return errors.Is(e, boom) }, "wrapped boom")
	check(2, func(e error) bool { return e != nil && strings.Contains(e.Error(), "panic: kaboom") }, "recovered panic")
	check(3, func(e error) bool { return errors.Is(e, context.DeadlineExceeded) }, "deadline exceeded")
	check(4, func(e error) bool { return errors.Is(e, context.Canceled) }, "context.Canceled")
	check(5, func(e error) bool { return e == nil && results[5].Value == "after" }, `nil with value "after"`)
	for i, r := range results {
		if r.Err != nil && !strings.Contains(r.Err.Error(), tasks[i].Name) {
			t.Errorf("slot %d error %q does not name its task %q", i, r.Err, tasks[i].Name)
		}
	}
}

// TestRunTasksCancellationNoLeaks: cancelling mid-campaign fails every
// unfinished slot and leaves no worker or task goroutine behind once
// RunTasks returns.
func TestRunTasksCancellationNoLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	tasks := make([]Task, 32)
	for i := range tasks {
		tasks[i] = Task{
			Name: fmt.Sprintf("block-%d", i),
			Run: func(c context.Context) (any, error) {
				started.Add(1)
				<-c.Done() // block until cancelled; never finish on its own
				return nil, c.Err()
			},
		}
	}
	done := make(chan []TaskResult)
	go func() { done <- RunTasks(ctx, tasks, Options{Jobs: 4}) }()
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	results := <-done
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("slot %d completed despite cancellation", i)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("slot %d: err = %v, want wrapped context.Canceled", i, r.Err)
		}
	}
	waitForGoroutines(t, base)
}

func TestRunTasksEmpty(t *testing.T) {
	if got := RunTasks(context.Background(), nil, Options{}); len(got) != 0 {
		t.Fatalf("got %d results for empty input", len(got))
	}
}
