package runner

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"invisispec/internal/config"
	"invisispec/internal/harness"
)

// testMatrix is a small but real matrix: 2 SPEC kernels x TSO x every
// registered defense.
func testMatrix() []Job {
	return Matrix([]string{"sjeng", "libquantum"}, false,
		[]config.Consistency{config.TSO}, config.AllDefenses(), nil, 2000, 4000)
}

// stripHost zeroes the one intentionally nondeterministic field so result
// slices can be compared across worker counts.
func stripHost(results []JobResult) []JobResult {
	out := make([]JobResult, len(results))
	copy(out, results)
	for i := range out {
		out[i].HostNS = 0
	}
	return out
}

// TestRunnerDeterminism is the acceptance gate: a 4-worker sweep produces
// byte-identical aggregated results — including the BENCH_*.json artifact
// bytes — to a 1-worker sweep over the same matrix, even though the 4-worker
// completion order is scheduler-dependent.
func TestRunnerDeterminism(t *testing.T) {
	jobs := testMatrix()
	serial := Run(context.Background(), jobs, Options{Jobs: 1})
	parallel := Run(context.Background(), jobs, Options{Jobs: 4})
	if err := FirstError(serial); err != nil {
		t.Fatal(err)
	}
	if err := FirstError(parallel); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripHost(serial), stripHost(parallel)) {
		t.Fatal("4-worker results differ from 1-worker results")
	}
	var bs, bp bytes.Buffer
	if err := WriteBenchJSON(&bs, NewBench("determinism", 2000, 4000, serial)); err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchJSON(&bp, NewBench("determinism", 2000, 4000, parallel)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Fatalf("bench JSON differs between 1-worker and 4-worker runs:\n--- serial ---\n%s\n--- parallel ---\n%s", bs.Bytes(), bp.Bytes())
	}
}

// TestSweepMatchesSerialSweep pins the rewiring: runner.Sweep must aggregate
// to exactly what the serial reference harness.Sweep computes.
func TestSweepMatchesSerialSweep(t *testing.T) {
	want, err := harness.Sweep("sjeng", false, config.TSO, 2000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sweep(context.Background(), "sjeng", false, config.TSO, 2000, 4000, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel Sweep disagrees with serial harness.Sweep")
	}
}

// waitForGoroutines polls until the goroutine count drops back to at most
// base (plus runtime slack) or the deadline passes.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 { // slack for runtime-internal goroutines
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunnerCancellationNoLeaks cancels mid-sweep and asserts (a) every job
// slot reports a deterministic outcome, (b) all pool goroutines exit.
func TestRunnerCancellationNoLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{Workload: "sjeng", Defense: config.Base, Consistency: config.TSO,
			Warmup: 2000, Measure: 4000}
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, len(jobs))
	opts := Options{
		Jobs: 4,
		measure: func(ctx context.Context, j Job, extra []harness.Option) (harness.Result, error) {
			started <- struct{}{}
			<-ctx.Done() // a job that only finishes when cancelled
			return harness.Result{}, ctx.Err()
		},
	}
	go func() {
		<-started // at least one job is in flight
		cancel()
	}()
	results := Run(ctx, jobs, opts)
	cancel()
	canceled := 0
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("job %d reported success after cancellation", r.Index)
		}
		if errors.Is(r.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled != len(jobs) {
		t.Fatalf("%d/%d jobs report context.Canceled", canceled, len(jobs))
	}
	waitForGoroutines(t, base)
}

// TestRunnerPanicIsolation seeds a panic into one job and asserts it is
// reported as that job's error while the rest of the matrix completes.
func TestRunnerPanicIsolation(t *testing.T) {
	jobs := testMatrix()
	victim := 3
	opts := Options{
		Jobs: 4,
		measure: func(ctx context.Context, j Job, extra []harness.Option) (harness.Result, error) {
			if j == jobs[victim] {
				panic("seeded test panic")
			}
			return measureJob(ctx, j, extra)
		},
	}
	results := Run(context.Background(), jobs, opts)
	for _, r := range results {
		if r.Index == victim {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "seeded test panic") {
				t.Fatalf("victim job error = %v, want seeded panic", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("job %d failed alongside the panicking job: %v", r.Index, r.Err)
		}
		if r.Result.Instructions == 0 {
			t.Fatalf("job %d produced an empty measurement", r.Index)
		}
	}
}

// TestRunnerTimeout drives the production path: a vanishingly small per-job
// wall-clock budget must surface as that job's DeadlineExceeded error from
// inside the simulation loop, on the worker's own stack.
func TestRunnerTimeout(t *testing.T) {
	base := runtime.NumGoroutine()
	jobs := []Job{
		{Workload: "sjeng", Defense: config.Base, Consistency: config.TSO,
			Warmup: 2000, Measure: 4000, Timeout: time.Nanosecond},
		{Workload: "sjeng", Defense: config.Base, Consistency: config.TSO,
			Warmup: 2000, Measure: 4000},
	}
	results := Run(context.Background(), jobs, Options{Jobs: 2})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("timed-out job error = %v, want DeadlineExceeded", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("untimed job failed: %v", results[1].Err)
	}
	waitForGoroutines(t, base)
}

// TestBenchJSONRoundTrip checks schema validation and the normalized-time
// grouping.
func TestBenchJSONRoundTrip(t *testing.T) {
	results := Run(context.Background(), testMatrix(), Options{Jobs: 4})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	b := NewBench("roundtrip", 2000, 4000, results).WithHost(time.Second, 4, results)
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(results) {
		t.Fatalf("round-trip kept %d runs, want %d", len(got.Runs), len(results))
	}
	if got.Host == nil || got.Host.Jobs != 4 || len(got.Host.PerRunMS) != len(results) {
		t.Fatal("host block did not round-trip")
	}
	byKey := got.RunsByKey()
	for _, r := range got.Runs {
		if r.Defense == config.Base.String() && r.NormalizedTime != 1.0 {
			t.Fatalf("Base run %s normalizes to %v, want 1", r.RunKey(), r.NormalizedTime)
		}
		if r.NormalizedTime <= 0 {
			t.Fatalf("run %s has no normalized time", r.RunKey())
		}
	}
	if len(byKey) != len(results) {
		t.Fatalf("run keys collide: %d unique for %d runs", len(byKey), len(results))
	}
	if _, err := ReadBenchJSON(strings.NewReader(`{"schema":"bogus/v0"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
