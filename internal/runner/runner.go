// Package runner is the parallel experiment engine behind the figure
// generators and benches: it shards an arbitrary (workload x defense x
// consistency x fault-seed) job matrix across a bounded worker pool, runs
// each job in its own isolated sim.Machine via harness.Measure, and
// aggregates results in job-index order so parallel output is byte-identical
// to serial output.
//
// Each simulated Machine is single-goroutine and fully deterministic, so the
// matrix is embarrassingly parallel: workers share nothing but the job queue
// and the results slice (disjoint slots). Determinism of the aggregate
// therefore reduces to ordering, which the index-addressed results slice
// pins regardless of completion order.
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"invisispec/internal/config"
	"invisispec/internal/harness"
)

// Job is one cell of the experiment matrix: a workload measured under one
// defense and consistency model for a fixed instruction budget.
type Job struct {
	Workload    string
	Parsec      bool // 8-core PARSEC machine instead of 1-core SPEC machine
	Defense     config.Defense
	Consistency config.Consistency
	Warmup      uint64
	Measure     uint64
	// FaultSeed, when non-zero, enables deterministic fault injection with
	// this seed (harness.WithFaultSeed).
	FaultSeed int64
	// Timeout, when non-zero, bounds the job's host wall-clock time. The
	// deadline is enforced cooperatively inside the simulation loop (layered
	// on the cycle-budget watchdog, which already bounds simulated time), so
	// a timed-out job returns on the worker's own stack — no goroutine leaks.
	Timeout time.Duration
}

// String names the job the way the figures label their bars.
func (j Job) String() string {
	return fmt.Sprintf("%s/%s/%s", j.Workload, j.Defense, j.Consistency)
}

// JobResult pairs a job with its measurement (or its error).
type JobResult struct {
	Job    Job
	Index  int // position in the submitted matrix
	Result harness.Result
	// Err is the job's failure, if any: a measurement error (including
	// sim.BudgetError), a context cancellation/timeout, or a recovered
	// panic. A failed job never kills the pool; the rest of the matrix
	// completes.
	Err error
	// HostNS is the job's host wall-clock duration in nanoseconds. It is the
	// one nondeterministic field; the bench-JSON writer quarantines it in
	// the host block so the deterministic payload stays byte-stable.
	HostNS int64
}

// Options tunes a Run.
type Options struct {
	// Jobs is the worker count. Zero or negative means runtime.GOMAXPROCS(0);
	// the pool never exceeds the job count.
	Jobs int
	// Timeout is a default per-job wall-clock timeout applied to jobs that
	// do not set their own. Zero means no timeout.
	Timeout time.Duration
	// Progress, when non-nil, receives one line per completed job with
	// completed/total counts and an ETA extrapolated from throughput so far.
	// Callers that also write artifacts to stdout should point this at
	// stderr (or io.Discard) so progress lines never interleave with
	// artifact bytes; the CLIs do exactly that.
	Progress io.Writer
	// OnProgress, when non-nil, receives the same completion events as
	// Progress but structured, for callers that log in their own format
	// (the simulation server emits JSON log lines from it). Both may be set;
	// the callback fires after the line is written, under the same lock, so
	// events arrive in completion order.
	OnProgress func(ProgressEvent)
	// Extra harness options applied to every job (e.g. harness.WithChecking).
	Harness []harness.Option

	// measure replaces the harness call for tests (panic/fault injection at
	// the pool layer). nil means measureJob.
	measure func(ctx context.Context, j Job, extra []harness.Option) (harness.Result, error)
}

// workers resolves the pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Jobs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the job matrix on a bounded worker pool and returns one
// JobResult per job, in job order. It always returns len(jobs) results:
// per-job failures (errors, timeouts, recovered panics) are recorded in the
// job's slot without stopping the pool, and a cancelled context fails the
// not-yet-started jobs with ctx.Err() while in-flight jobs abort at their
// next context poll. All workers have exited by the time Run returns.
//
// Run is an adapter over the generic RunTasks pool (task.go): each job
// becomes a Task wrapping harness.Measure, so the pool mechanics —
// ordering, timeouts, panic isolation, cancellation — live in one place.
func Run(ctx context.Context, jobs []Job, opts Options) []JobResult {
	measure := opts.measure
	if measure == nil {
		measure = measureJob
	}
	tasks := make([]Task, len(jobs))
	for i := range jobs {
		j := jobs[i]
		tasks[i] = Task{
			Name:    j.String(),
			Timeout: j.Timeout,
			Run: func(ctx context.Context) (any, error) {
				// harness.Measure recovers panics inside the simulator
				// itself; the pool's own recovery additionally guards the
				// rest of the job path (workload construction, option
				// plumbing, test hooks).
				res, err := measure(ctx, j, opts.Harness)
				if err != nil {
					return nil, err
				}
				return res, nil
			},
		}
	}
	taskResults := RunTasks(ctx, tasks, opts)
	results := make([]JobResult, len(jobs))
	for i, tr := range taskResults {
		results[i] = JobResult{Job: jobs[i], Index: i, Err: tr.Err, HostNS: tr.HostNS}
		if tr.Err == nil && tr.Value != nil {
			results[i].Result = tr.Value.(harness.Result)
		}
	}
	return results
}

// measureJob is the production measurement path: harness.Measure on a fresh
// machine, with the workload registry resolving the name and machine size
// (j.Parsec is identity metadata in artifacts, not a dispatch input).
func measureJob(ctx context.Context, j Job, extra []harness.Option) (harness.Result, error) {
	opts := make([]harness.Option, 0, len(extra)+2)
	opts = append(opts, extra...)
	opts = append(opts, harness.WithContext(ctx))
	if j.FaultSeed != 0 {
		opts = append(opts, harness.WithFaultSeed(j.FaultSeed))
	}
	return harness.MeasureWorkload(j.Workload, j.Defense, j.Consistency, j.Warmup, j.Measure, opts...)
}

// ProgressEvent is one completed unit of work, as reported to
// Options.OnProgress. Counters are cumulative across the Run/RunTasks call.
type ProgressEvent struct {
	Name      string        // the task/job that just finished
	Err       error         // its failure, nil on success
	Completed int           // tasks finished so far, including this one
	Failed    int           // failures so far
	Total     int           // tasks in the matrix
	Elapsed   time.Duration // wall clock since the pool started
	ETA       time.Duration // remaining-time estimate from throughput so far
}

// progress serializes completion reporting across workers.
type progress struct {
	mu        sync.Mutex
	w         io.Writer
	fn        func(ProgressEvent)
	total     int
	completed int
	failed    int
	start     time.Time
}

func newProgress(w io.Writer, fn func(ProgressEvent), total int) *progress {
	return &progress{w: w, fn: fn, total: total, start: time.Now()}
}

// done records one finished unit of work, emits a progress line with an ETA,
// and fires the structured callback.
func (p *progress) done(name string, err error) {
	if p == nil || (p.w == nil && p.fn == nil) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.completed++
	if err != nil {
		p.failed++
	}
	elapsed := time.Since(p.start)
	eta := time.Duration(0)
	if p.completed > 0 {
		eta = time.Duration(float64(elapsed) / float64(p.completed) * float64(p.total-p.completed)).Round(time.Second)
	}
	if p.w != nil {
		status := "ok"
		if err != nil {
			status = "FAIL"
		}
		fmt.Fprintf(p.w, "runner: %d/%d done (%d failed)  last %-28s %-4s  elapsed %s  eta %s\n",
			p.completed, p.total, p.failed, name, status,
			elapsed.Round(time.Second), eta)
	}
	if p.fn != nil {
		p.fn(ProgressEvent{
			Name: name, Err: err,
			Completed: p.completed, Failed: p.failed, Total: p.total,
			Elapsed: elapsed, ETA: eta,
		})
	}
}

// Matrix builds the cross product (workloads x consistencies x defenses x
// seeds) in deterministic order: workload-major, then consistency, then
// defense, then seed — the order the figures print their rows. seeds may be
// nil/empty for the standard fault-free matrix (one job per cell, seed 0).
func Matrix(workloads []string, parsec bool, cms []config.Consistency, defenses []config.Defense, seeds []int64, warmup, measure uint64) []Job {
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	jobs := make([]Job, 0, len(workloads)*len(cms)*len(defenses)*len(seeds))
	for _, w := range workloads {
		for _, cm := range cms {
			for _, d := range defenses {
				for _, s := range seeds {
					jobs = append(jobs, Job{
						Workload: w, Parsec: parsec, Defense: d, Consistency: cm,
						Warmup: warmup, Measure: measure, FaultSeed: s,
					})
				}
			}
		}
	}
	return jobs
}

// Sweep is the parallel counterpart of harness.Sweep: one workload under
// every registered defense for one consistency model, sharded across the pool, results
// keyed by defense. The aggregated map is identical to harness.Sweep's (the
// runner tests assert this), just computed opts.Jobs-wide.
func Sweep(ctx context.Context, name string, parsec bool, cm config.Consistency, warmup, measure uint64, opts Options) (map[config.Defense]harness.Result, error) {
	jobs := Matrix([]string{name}, parsec, []config.Consistency{cm}, config.AllDefenses(), nil, warmup, measure)
	results := Run(ctx, jobs, opts)
	out := make(map[config.Defense]harness.Result, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, r.Job.Defense, r.Err)
		}
		out[r.Job.Defense] = r.Result
	}
	return out, nil
}

// FirstError returns the first failed job's error in matrix order (nil if
// every job succeeded). Deterministic regardless of completion order.
func FirstError(results []JobResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
