package runner

// This file implements the structured bench-comparison verdict behind
// cmd/benchdiff and the simulation server's /verdict endpoint: the same two
// check families the CLI has always gated CI with — shape fidelity inside
// the candidate and CPI regression against the baseline — but recorded as a
// typed, schema-versioned check list instead of free text, so the dashboard
// and CI consume gate results without parsing stderr.

import (
	"fmt"
	"sort"

	"invisispec/internal/config"
)

// DiffSchema identifies the verdict format (benchdiff -json).
const DiffSchema = "benchdiff-verdict/v1"

// Check kinds.
const (
	// CheckShapeBase verifies the insecure Base is the fastest config in one
	// complete (workload, consistency, seed) group.
	CheckShapeBase = "shape/base-fastest"
	// CheckShapeAverage verifies an InvisiSpec scheme beats its fence
	// counterpart averaged over one consistency model's complete groups.
	CheckShapeAverage = "shape/is-beats-fence"
	// CheckRegression verifies one baseline run exists in the candidate,
	// succeeded, and kept its CPI within tolerance.
	CheckRegression = "regression/cpi"
)

// DiffCheck is one verdict line: a single comparison with its outcome.
type DiffCheck struct {
	Kind string `json:"kind"`
	// Key names what was checked: a run key for regression checks, a group
	// key for per-group shape checks, a "<cm> average" label for the
	// figure-average shape checks.
	Key  string `json:"key"`
	Pass bool   `json:"pass"`
	// Detail is the human-readable failure explanation ("" on pass).
	Detail string `json:"detail,omitempty"`
	// BaseCPI/CandCPI/Delta carry the regression numbers (Delta is the
	// relative CPI change, candidate over baseline minus one). For shape
	// checks BaseCPI/CandCPI carry the two compared quantities instead.
	BaseCPI float64 `json:"base_cpi,omitempty"`
	CandCPI float64 `json:"cand_cpi,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
}

// DiffVerdict is the full machine-readable gate result.
type DiffVerdict struct {
	Schema    string      `json:"schema"`
	Baseline  string      `json:"baseline"`  // baseline artifact name
	Candidate string      `json:"candidate"` // candidate artifact name
	Tol       float64     `json:"tol"`       // CPI regression tolerance
	Eps       float64     `json:"eps"`       // shape-ordering slack ratio
	Pass      bool        `json:"pass"`
	Problems  int         `json:"problems"` // failed checks
	Checks    []DiffCheck `json:"checks"`
}

// Failed returns the failing checks in verdict order.
func (v *DiffVerdict) Failed() []DiffCheck {
	var out []DiffCheck
	for _, c := range v.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// diffGroupKey is one normalization group of the candidate artifact.
type diffGroupKey struct {
	workload, cm string
	seed         int64
}

func (k diffGroupKey) String() string {
	return fmt.Sprintf("%s/%s/seed%d", k.workload, k.cm, k.seed)
}

// CompareBench runs both check families — shape fidelity inside the
// candidate, CPI regression of the candidate against the baseline — and
// returns every check's outcome. tol is the maximum allowed relative CPI
// regression; eps is the slack ratio for ordering comparisons. The check
// list is deterministic: groups and run keys emit in sorted order.
func CompareBench(base, cand *Bench, tol, eps float64) *DiffVerdict {
	v := &DiffVerdict{
		Schema:    DiffSchema,
		Baseline:  base.Name,
		Candidate: cand.Name,
		Tol:       tol,
		Eps:       eps,
	}
	v.Checks = append(v.Checks, shapeChecks(cand, eps)...)
	v.Checks = append(v.Checks, regressionChecks(base, cand, tol)...)
	v.Pass = true
	for _, c := range v.Checks {
		if !c.Pass {
			v.Pass = false
			v.Problems++
		}
	}
	return v
}

// shapeChecks verifies the paper's qualitative ordering inside the candidate
// artifact: within every complete defense group the insecure Base must be
// fastest, and on each consistency model's average InvisiSpec must beat the
// corresponding fence scheme.
func shapeChecks(cand *Bench, eps float64) []DiffCheck {
	groups := make(map[diffGroupKey]map[string]BenchRun)
	for _, r := range cand.Runs {
		if r.Error != "" {
			continue // reported by the regression pass
		}
		k := diffGroupKey{r.Workload, r.Consistency, r.FaultSeed}
		if groups[k] == nil {
			groups[k] = make(map[string]BenchRun, 5)
		}
		groups[k][r.Defense] = r
	}
	keys := make([]diffGroupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	var checks []DiffCheck
	// Per consistency model: sum of normalized times per defense and the
	// number of complete groups, for the figures' average rows.
	avgSum := make(map[string]map[config.Defense]float64)
	avgN := make(map[string]int)
	for _, k := range keys {
		g := groups[k]
		if len(g) < len(config.AllDefenses()) {
			continue // partial matrix (e.g. table6 artifacts): nothing to order
		}
		base := g[config.Base.String()]
		if avgSum[k.cm] == nil {
			avgSum[k.cm] = make(map[config.Defense]float64, 5)
		}
		avgN[k.cm]++
		c := DiffCheck{Kind: CheckShapeBase, Key: k.String(), Pass: true, BaseCPI: base.CPI}
		for _, d := range config.AllDefenses() {
			r := g[d.String()]
			if base.CPI > 0 {
				avgSum[k.cm][d] += r.CPI / base.CPI
			}
			if d != config.Base && base.CPI > r.CPI*(1+eps) {
				c.Pass = false
				c.CandCPI = r.CPI
				c.Detail = fmt.Sprintf("shape inverted: insecure Base (CPI %.4f) slower than %s (CPI %.4f)",
					base.CPI, d, r.CPI)
				break
			}
		}
		checks = append(checks, c)
	}
	for _, cm := range []string{config.TSO.String(), config.RC.String()} {
		n := avgN[cm]
		if n == 0 {
			continue
		}
		avg := func(d config.Defense) float64 { return avgSum[cm][d] / float64(n) }
		pair := func(is, fence config.Defense, why string) DiffCheck {
			c := DiffCheck{
				Kind:    CheckShapeAverage,
				Key:     fmt.Sprintf("%s average: %s vs %s", cm, is, fence),
				Pass:    true,
				BaseCPI: avg(fence),
				CandCPI: avg(is),
			}
			if avg(is) > avg(fence)*(1+eps) {
				c.Pass = false
				c.Detail = fmt.Sprintf("shape inverted over %d workloads: %s (%.3fx) slower than %s (%.3fx) — %s",
					n, is, avg(is), fence, avg(fence), why)
			}
			return c
		}
		checks = append(checks,
			pair(config.ISSpectre, config.FenceSpectre, "InvisiSpec must beat fences for the Spectre threat model"),
			pair(config.ISFuture, config.FenceFuture, "InvisiSpec must beat fences for the futuristic threat model"))
	}
	return checks
}

// regressionChecks compares the candidate's runs against the baseline's.
func regressionChecks(base, cand *Bench, tol float64) []DiffCheck {
	var checks []DiffCheck
	candByKey := cand.RunsByKey()
	baseByKey := base.RunsByKey()
	for _, key := range base.SortedRunKeys() {
		b := baseByKey[key]
		if b.Error != "" {
			continue // a broken baseline run gates nothing
		}
		ch := DiffCheck{Kind: CheckRegression, Key: key, BaseCPI: b.CPI}
		c, ok := candByKey[key]
		switch {
		case !ok:
			ch.Detail = "present in baseline, missing from candidate"
		case c.Error != "":
			ch.Detail = "candidate run failed: " + c.Error
		case c.Instructions == 0:
			ch.Detail = "candidate run retired no instructions"
		default:
			ch.CandCPI = c.CPI
			if b.CPI > 0 {
				ch.Delta = c.CPI/b.CPI - 1
			}
			if c.CPI > b.CPI*(1+tol) {
				ch.Detail = fmt.Sprintf("CPI regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
					b.CPI, c.CPI, 100*ch.Delta, tol*100)
			} else {
				ch.Pass = true
			}
		}
		checks = append(checks, ch)
	}
	return checks
}
