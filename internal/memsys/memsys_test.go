package memsys

import (
	"testing"

	"invisispec/internal/coherence"
	"invisispec/internal/config"
	"invisispec/internal/stats"
)

// testClient records everything the hierarchy reports to a core.
type testClient struct {
	delivered     []Response
	invalidations []uint64
	evictions     []uint64
}

func (c *testClient) Deliver(now uint64, r Response) { c.delivered = append(c.delivered, r) }
func (c *testClient) OnInvalidate(now uint64, line uint64) {
	c.invalidations = append(c.invalidations, line)
}
func (c *testClient) OnL1Evict(now uint64, line uint64) { c.evictions = append(c.evictions, line) }

func (c *testClient) gotToken(tok uint64) bool {
	for _, r := range c.delivered {
		if r.Token == tok {
			return true
		}
	}
	return false
}

func (c *testClient) resp(tok uint64) *Response {
	for i := range c.delivered {
		if c.delivered[i].Token == tok {
			return &c.delivered[i]
		}
	}
	return nil
}

type rig struct {
	h       *Hierarchy
	st      *stats.Machine
	clients []*testClient
	cycle   uint64
}

func newRig(t *testing.T, cores int) *rig {
	t.Helper()
	cfg := config.Default(cores)
	cfg.HWPrefetch = false // unit tests count exact transactions
	st := stats.NewMachine(cores)
	h := New(cfg, st)
	r := &rig{h: h, st: st}
	for i := 0; i < cores; i++ {
		c := &testClient{}
		r.clients = append(r.clients, c)
		h.Connect(i, c)
	}
	h.Tick(0)
	return r
}

// step advances one cycle.
func (r *rig) step() {
	r.cycle++
	r.h.Tick(r.cycle)
}

// runUntil advances until cond or the cycle budget runs out, returning the
// cycles elapsed.
func (r *rig) runUntil(t *testing.T, cond func() bool, max uint64) uint64 {
	t.Helper()
	start := r.cycle
	for !cond() {
		if r.cycle-start > max {
			t.Fatalf("condition not reached within %d cycles", max)
		}
		r.step()
	}
	return r.cycle - start
}

func TestReadMissFillsL1AndLLC(t *testing.T) {
	r := newRig(t, 1)
	addr := uint64(0x10000)
	if !r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr, Token: 1}) {
		t.Fatal("submit rejected")
	}
	lat := r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	if lat < 100 {
		t.Fatalf("cold miss served in %d cycles; DRAM latency alone is 100", lat)
	}
	if got := r.h.L1State(0, addr); got != coherence.Exclusive {
		t.Fatalf("L1 state = %v, want E", got)
	}
	if !r.h.LLCPresent(addr) {
		t.Fatal("line not installed in LLC")
	}
	if r.st.DRAMReads != 1 {
		t.Fatalf("DRAM reads = %d, want 1", r.st.DRAMReads)
	}
	if r.clients[0].resp(1).L1Hit {
		t.Fatal("miss reported as L1 hit")
	}
}

func TestReadHitIsFast(t *testing.T) {
	r := newRig(t, 1)
	addr := uint64(0x10000)
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr, Token: 1})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr, Token: 2})
	lat := r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 100)
	if lat > 3 {
		t.Fatalf("L1 hit took %d cycles", lat)
	}
	if !r.clients[0].resp(2).L1Hit {
		t.Fatal("hit not flagged")
	}
}

func TestCoalescingSameLine(t *testing.T) {
	r := newRig(t, 1)
	addr := uint64(0x20000)
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr, Token: 1})
	r.step()
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr + 8, Token: 2})
	r.runUntil(t, func() bool {
		return r.clients[0].gotToken(1) && r.clients[0].gotToken(2)
	}, 1000)
	if r.st.DRAMReads != 1 {
		t.Fatalf("coalesced miss issued %d DRAM reads", r.st.DRAMReads)
	}
}

func TestWriteInvalidatesSharer(t *testing.T) {
	r := newRig(t, 2)
	addr := uint64(0x30000)
	// Core 0 reads the line.
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr, Token: 1})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	// Core 1 writes it.
	r.h.Submit(Request{Type: ReadExcl, Core: 1, Addr: addr, Token: 2})
	r.runUntil(t, func() bool { return r.clients[1].gotToken(2) }, 1000)
	if got := r.h.L1State(1, addr); got != coherence.Modified {
		t.Fatalf("writer L1 state = %v, want M", got)
	}
	if got := r.h.L1State(0, addr); got != coherence.Invalid {
		t.Fatalf("reader L1 state = %v, want I", got)
	}
	if len(r.clients[0].invalidations) != 1 ||
		r.clients[0].invalidations[0] != r.h.LineOf(addr) {
		t.Fatalf("invalidation callbacks: %v", r.clients[0].invalidations)
	}
	dir := r.h.LLCDir(addr)
	if dir.Owner != 1 || dir.Sharers != 0 {
		t.Fatalf("directory after GetX: %+v", dir)
	}
}

func TestReadAfterRemoteWriteForwardsFromOwner(t *testing.T) {
	r := newRig(t, 2)
	addr := uint64(0x40000)
	r.h.Submit(Request{Type: ReadExcl, Core: 0, Addr: addr, Token: 1})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	r.h.Submit(Request{Type: ReadShared, Core: 1, Addr: addr, Token: 2})
	r.runUntil(t, func() bool { return r.clients[1].gotToken(2) }, 1000)
	// Both now Shared; directory has both as sharers, no owner.
	if got := r.h.L1State(0, addr); got != coherence.Shared {
		t.Fatalf("old owner state = %v, want S", got)
	}
	if got := r.h.L1State(1, addr); got != coherence.Shared {
		t.Fatalf("reader state = %v, want S", got)
	}
	dir := r.h.LLCDir(addr)
	if dir.Owner != coherence.NoOwner || !dir.HasSharer(0) || !dir.HasSharer(1) {
		t.Fatalf("directory after downgrade: %+v", dir)
	}
	if r.st.DRAMReads != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (forward, not refetch)", r.st.DRAMReads)
	}
}

func TestSpecReadLeavesNoTrace(t *testing.T) {
	r := newRig(t, 1)
	addr := uint64(0x50000)
	// Warm an unrelated line in the same L1 set to have LRU state to check.
	other := addr + 64
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: other, Token: 1})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)

	llcLRUBefore := r.h.LLCLRUOrder(addr)
	r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: addr, Token: 2, LQIdx: 3, Epoch: 7})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 1000)

	if got := r.h.L1State(0, addr); got != coherence.Invalid {
		t.Fatalf("Spec-GetS installed line in L1 (state %v)", got)
	}
	if r.h.LLCPresent(addr) {
		t.Fatal("Spec-GetS installed line in LLC")
	}
	llcLRUAfter := r.h.LLCLRUOrder(addr)
	if len(llcLRUBefore) != len(llcLRUAfter) {
		t.Fatal("Spec-GetS changed LLC occupancy")
	}
	for i := range llcLRUBefore {
		if llcLRUBefore[i] != llcLRUAfter[i] {
			t.Fatal("Spec-GetS perturbed LLC replacement state")
		}
	}
	// But the LLC-SB was filled for the later validation/exposure.
	ln, ep, valid := r.h.LLCSBEntry(0, 3)
	if !valid || ln != r.h.LineOf(addr) || ep != 7 {
		t.Fatalf("LLC-SB entry = (%d,%d,%v)", ln, ep, valid)
	}
}

func TestSpecReadServedByL1WithoutTouch(t *testing.T) {
	r := newRig(t, 1)
	base := uint64(0x60000)
	setStride := uint64(64 * 128) // same L1 set (128 sets in 64KB/8-way/64B)
	a, b := base, base+setStride
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: a, Token: 1})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: b, Token: 2})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 1000)
	before := r.h.L1LRUOrder(0, a)
	// Spec-read line a (currently LRU): must hit in L1 but not promote it.
	r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: a, Token: 3})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(3) }, 100)
	if !r.clients[0].resp(3).L1Hit {
		t.Fatal("spec read missed resident line")
	}
	after := r.h.L1LRUOrder(0, a)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Spec-GetS perturbed L1 LRU: %v -> %v", before, after)
		}
	}
}

func TestValidationServedByLLCSB(t *testing.T) {
	r := newRig(t, 1)
	addr := uint64(0x70000)
	r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: addr, Token: 1, LQIdx: 5, Epoch: 3})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	dramBefore := r.st.DRAMReads
	r.h.Submit(Request{Type: Validate, Core: 0, Addr: addr, Token: 2, LQIdx: 5, Epoch: 3})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 1000)
	if r.st.DRAMReads != dramBefore {
		t.Fatal("validation went to DRAM despite LLC-SB hit")
	}
	if !r.clients[0].resp(2).FromLLCSB {
		t.Fatal("response not flagged FromLLCSB")
	}
	if r.st.Cores[0].LLCSBHits != 1 {
		t.Fatalf("LLCSBHits = %d", r.st.Cores[0].LLCSBHits)
	}
	// The validation installs the line normally.
	if got := r.h.L1State(0, addr); got == coherence.Invalid {
		t.Fatal("validation did not install line in L1")
	}
	if !r.h.LLCPresent(addr) {
		t.Fatal("validation did not install line in LLC")
	}
	// And the LLC-SB entry is consumed (invalidated for all cores).
	if _, _, valid := r.h.LLCSBEntry(0, 5); valid {
		t.Fatal("LLC-SB entry not invalidated after use")
	}
}

func TestValidationEpochMismatchMissesLLCSB(t *testing.T) {
	r := newRig(t, 1)
	addr := uint64(0x80000)
	r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: addr, Token: 1, LQIdx: 5, Epoch: 3})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	dramBefore := r.st.DRAMReads
	// Squash bumped the epoch; the re-issued load validates with epoch 4.
	r.h.Submit(Request{Type: Validate, Core: 0, Addr: addr, Token: 2, LQIdx: 5, Epoch: 4})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 1000)
	if r.st.DRAMReads != dramBefore+1 {
		t.Fatal("stale-epoch validation should refetch from DRAM")
	}
	if r.st.Cores[0].LLCSBMisses != 1 {
		t.Fatalf("LLCSBMisses = %d", r.st.Cores[0].LLCSBMisses)
	}
}

func TestSafeMissPurgesLLCSBs(t *testing.T) {
	r := newRig(t, 2)
	addr := uint64(0x90000)
	r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: addr, Token: 1, LQIdx: 2, Epoch: 1})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	if _, _, valid := r.h.LLCSBEntry(0, 2); !valid {
		t.Fatal("LLC-SB not filled")
	}
	// Core 1 performs a safe read of the same line: core 0's LLC-SB entry
	// must be purged so its later validation refetches current data.
	r.h.Submit(Request{Type: ReadShared, Core: 1, Addr: addr, Token: 2})
	r.runUntil(t, func() bool { return r.clients[1].gotToken(2) }, 1000)
	if _, _, valid := r.h.LLCSBEntry(0, 2); valid {
		t.Fatal("safe access did not purge peer LLC-SB")
	}
}

func TestStaleSpecFillDropped(t *testing.T) {
	r := newRig(t, 1)
	addr1 := uint64(0xA0000)
	addr2 := uint64(0xB0000)
	// Newer-epoch fill first.
	r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: addr2, Token: 1, LQIdx: 0, Epoch: 9})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	// A stale (older-epoch) fill to the same entry must be dropped.
	r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: addr1, Token: 2, LQIdx: 0, Epoch: 5})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 1000)
	ln, ep, valid := r.h.LLCSBEntry(0, 0)
	if !valid || ln != r.h.LineOf(addr2) || ep != 9 {
		t.Fatalf("stale fill overwrote entry: (%d,%d,%v)", ln, ep, valid)
	}
}

func TestSpecReadForwardedFromOwner(t *testing.T) {
	r := newRig(t, 2)
	addr := uint64(0xC0000)
	r.h.Submit(Request{Type: ReadExcl, Core: 1, Addr: addr, Token: 1})
	r.runUntil(t, func() bool { return r.clients[1].gotToken(1) }, 1000)
	dirBefore := r.h.LLCDir(addr)
	r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: addr, Token: 2, LQIdx: 0, Epoch: 0})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 1000)
	// Owner keeps M; directory unchanged; no invalidation at owner.
	if got := r.h.L1State(1, addr); got != coherence.Modified {
		t.Fatalf("owner state after Spec-GetS = %v, want M", got)
	}
	if r.h.LLCDir(addr) != dirBefore {
		t.Fatal("Spec-GetS changed directory state")
	}
	if len(r.clients[1].invalidations) != 0 {
		t.Fatal("Spec-GetS invalidated the owner")
	}
}

func TestPortLimit(t *testing.T) {
	r := newRig(t, 1)
	ok := 0
	for i := 0; i < 5; i++ {
		if r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: uint64(0x1000 + 64*i), Token: uint64(i)}) {
			ok++
		}
	}
	if ok != 3 { // L1D has 3 ports (Table IV)
		t.Fatalf("accepted %d requests in one cycle, want 3", ok)
	}
	r.step()
	if !r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: 0x9000, Token: 99}) {
		t.Fatal("port budget did not reset")
	}
}

func TestEvictionCallbackAndWriteback(t *testing.T) {
	r := newRig(t, 1)
	cfg := config.Default(1)
	sets := cfg.L1D.Sets(cfg.LineSize)
	ways := cfg.L1D.Ways
	stride := uint64(sets * cfg.LineSize)
	// Write a line (dirty), then read ways more lines in the same set to
	// force its eviction and writeback.
	r.h.Submit(Request{Type: ReadExcl, Core: 0, Addr: 0, Token: 1000})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1000) }, 1000)
	for i := 1; i <= ways; i++ {
		tok := uint64(1000 + i)
		addr := stride * uint64(i)
		r.runUntil(t, func() bool {
			return r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr, Token: tok})
		}, 100)
		r.runUntil(t, func() bool { return r.clients[0].gotToken(tok) }, 1000)
	}
	if got := r.h.L1State(0, 0); got != coherence.Invalid {
		t.Fatalf("line 0 not evicted (state %v)", got)
	}
	found := false
	for _, e := range r.clients[0].evictions {
		if e == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no eviction callback for line 0: %v", r.clients[0].evictions)
	}
	// Directory must have dropped core 0's ownership of line 0 (PutM).
	r.runUntil(t, func() bool { return r.h.LLCDir(0).Owner == coherence.NoOwner }, 1000)
	if r.st.TrafficBytes[stats.TrafficWriteback] == 0 {
		t.Fatal("dirty eviction produced no writeback traffic")
	}
}

func TestIFetchPath(t *testing.T) {
	r := newRig(t, 1)
	iaddr := uint64(1) << 40
	r.h.Submit(Request{Type: IFetch, Core: 0, Addr: iaddr, Token: 1})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	// Second fetch of the same line hits the L1I.
	r.h.Submit(Request{Type: IFetch, Core: 0, Addr: iaddr + 32, Token: 2})
	lat := r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 100)
	if lat > 3 {
		t.Fatalf("L1I hit took %d cycles", lat)
	}
	if r.st.TrafficBytes[stats.TrafficFetch] == 0 {
		t.Fatal("instruction fetch produced no fetch-class traffic")
	}
}

func TestTrafficClassSplit(t *testing.T) {
	r := newRig(t, 1)
	addr := uint64(0xD0000)
	r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: addr, Token: 1, LQIdx: 0, Epoch: 0})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	r.h.Submit(Request{Type: Expose, Core: 0, Addr: addr, Token: 2, LQIdx: 0, Epoch: 0})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 1000)
	if r.st.TrafficBytes[stats.TrafficSpecLoad] == 0 {
		t.Fatal("no spec-load traffic recorded")
	}
	if r.st.TrafficBytes[stats.TrafficValExp] == 0 {
		t.Fatal("no expose/validate traffic recorded")
	}
}

func TestPrefetcherFollowsStreams(t *testing.T) {
	cfg := config.Default(1)
	cfg.HWPrefetch = true
	st := stats.NewMachine(1)
	h := New(cfg, st)
	cl := &testClient{}
	h.Connect(0, cl)
	h.Tick(0)
	r := &rig{h: h, st: st, clients: []*testClient{cl}}
	addr := uint64(0x10000)
	// A single cold miss trains nothing: no prefetch (random workloads pay
	// no useless bandwidth).
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr, Token: 1})
	r.runUntil(t, func() bool { return cl.gotToken(1) }, 2000)
	for extra := 0; extra < 300; extra++ {
		r.step()
	}
	if r.h.L1State(0, addr+64) != coherence.Invalid {
		t.Fatal("an isolated miss must not prefetch")
	}
	// Sequential misses build confidence and start the stream.
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr + 64, Token: 2})
	r.runUntil(t, func() bool { return cl.gotToken(2) }, 2000)
	r.runUntil(t, func() bool {
		return r.h.L1State(0, addr+128) != coherence.Invalid
	}, 4000)
	// Hits on prefetched lines re-arm the stream and ramp the distance.
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: addr + 128, Token: 3})
	r.runUntil(t, func() bool { return cl.gotToken(3) }, 2000)
	r.runUntil(t, func() bool {
		return r.h.L1State(0, addr+128+64*4) != coherence.Invalid
	}, 4000)
	// Far-away random misses reset confidence: no prefetch there.
	far := uint64(0x900000)
	r.h.Submit(Request{Type: ReadShared, Core: 0, Addr: far, Token: 4})
	r.runUntil(t, func() bool { return cl.gotToken(4) }, 2000)
	for extra := 0; extra < 300; extra++ {
		r.step()
	}
	if r.h.L1State(0, far+64) != coherence.Invalid {
		t.Fatal("a random miss after a stream must not prefetch")
	}
}

func TestSpecReadDoesNotTriggerPrefetch(t *testing.T) {
	cfg := config.Default(1)
	cfg.HWPrefetch = true
	st := stats.NewMachine(1)
	h := New(cfg, st)
	cl := &testClient{}
	h.Connect(0, cl)
	h.Tick(0)
	r := &rig{h: h, st: st, clients: []*testClient{cl}}
	addr := uint64(0x20000)
	// Even a sequential run of Spec-GetS reads must not train or trigger
	// the prefetcher: speculative accesses are invisible to it.
	for i := uint64(0); i < 4; i++ {
		tok := i + 1
		r.h.Submit(Request{Type: SpecRead, Core: 0, Addr: addr + 64*i, Token: tok, LQIdx: int(i)})
		r.runUntil(t, func() bool { return cl.gotToken(tok) }, 2000)
	}
	for extra := 0; extra < 300; extra++ {
		r.step()
	}
	for d := 0; d <= cfg.PrefetchDegree+4; d++ {
		if r.h.L1State(0, addr+uint64(64*d)) != coherence.Invalid {
			t.Fatalf("Spec-GetS stream triggered a (visible!) prefetch of line +%d", d)
		}
	}
}

func TestFlushLine(t *testing.T) {
	r := newRig(t, 2)
	addr := uint64(0xE0000)
	// Dirty in core 0, LLC-SB entry in core 1.
	r.h.Submit(Request{Type: ReadExcl, Core: 0, Addr: addr, Token: 1})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 1000)
	r.h.Submit(Request{Type: SpecRead, Core: 1, Addr: addr + 4096, Token: 2, LQIdx: 1, Epoch: 0})
	r.runUntil(t, func() bool { return r.clients[1].gotToken(2) }, 1000)

	wbBefore := r.st.DRAMWrites
	r.h.FlushLine(addr)
	if got := r.h.L1State(0, addr); got != coherence.Invalid {
		t.Fatalf("L1 state after flush = %v", got)
	}
	if r.h.LLCPresent(addr) {
		t.Fatal("LLC line survived flush")
	}
	if r.st.DRAMWrites != wbBefore+1 {
		t.Fatalf("dirty flush wrote %d lines to DRAM, want 1", r.st.DRAMWrites-wbBefore)
	}
	// Flushing the spec-read line purges the LLC-SB entry.
	r.h.FlushLine(addr + 4096)
	if _, _, valid := r.h.LLCSBEntry(1, 1); valid {
		t.Fatal("flush did not purge the LLC-SB")
	}
	// The flushed line's holder was notified (conventional squash rule).
	found := false
	for _, ln := range r.clients[0].invalidations {
		if ln == r.h.LineOf(addr) {
			found = true
		}
	}
	if !found {
		t.Fatal("flush sent no invalidation callback")
	}
}

func TestIFetchSpecLeavesNoTrace(t *testing.T) {
	r := newRig(t, 1)
	iaddr := uint64(3) << 40
	r.h.Submit(Request{Type: IFetchSpec, Core: 0, Addr: iaddr, Token: 1})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(1) }, 2000)
	if r.h.L1IPresent(0, iaddr) {
		t.Fatal("invisible instruction fetch installed into the L1I")
	}
	if r.h.LLCPresent(iaddr) {
		t.Fatal("invisible instruction fetch installed into the LLC")
	}
	// A later visible fetch installs normally and then invisible fetches
	// hit it without touching replacement state.
	r.h.Submit(Request{Type: IFetch, Core: 0, Addr: iaddr, Token: 2})
	r.runUntil(t, func() bool { return r.clients[0].gotToken(2) }, 2000)
	if !r.h.L1IPresent(0, iaddr) {
		t.Fatal("visible fetch did not install")
	}
	r.h.Submit(Request{Type: IFetchSpec, Core: 0, Addr: iaddr, Token: 3})
	lat := r.runUntil(t, func() bool { return r.clients[0].gotToken(3) }, 100)
	if lat > 3 {
		t.Fatalf("invisible fetch of resident line took %d cycles", lat)
	}
}
