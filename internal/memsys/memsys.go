// Package memsys assembles the simulated memory hierarchy: per-core private
// L1 instruction and data caches, a banked, inclusive, directory-based MESI
// shared L2/LLC, the mesh interconnect, a DRAM channel, and InvisiSpec's
// per-core LLC speculative buffers (LLC-SBs).
//
// The hierarchy is a timing and coherence-state model only: architectural
// values live in the machine's functional memory (internal/isa.Memory); the
// core reads and writes values at the instants this package delivers
// responses. Internally the hierarchy is event-driven — each transaction
// computes its timeline from NoC, bank, and DRAM latencies and schedules
// completion callbacks — while presenting a cycle-stepped Tick interface to
// the simulation engine.
//
// The InvisiSpec additions (paper §V-F, §VI-C, §VI-E1):
//   - SpecRead requests implement the Spec-GetS transaction: they probe
//     caches without updating replacement or coherence state, are never
//     installed anywhere, bounce-and-retry when they race with an ownership
//     transfer, and on an LLC miss fill the requesting core's LLC-SB on the
//     data's way back from memory.
//   - Validate and Expose requests are ordinary GetS transactions except
//     that on an LLC miss they first consult the requester's LLC-SB
//     (address + epoch match) to avoid a second main-memory access.
//   - Any non-speculative access that misses in the LLC invalidates the
//     line from every core's LLC-SB.
package memsys

import (
	"container/heap"
	"fmt"

	"invisispec/internal/config"
	"invisispec/internal/noc"
	"invisispec/internal/stats"
)

// ReqType classifies core-to-hierarchy requests.
type ReqType uint8

// Request types.
const (
	ReadShared ReqType = iota // safe load: coherent GetS, installs in L1
	ReadExcl                  // store drain / RMW: GetX, installs in M
	SpecRead                  // USL: Spec-GetS, invisible
	Validate                  // InvisiSpec validation: GetS + LLC-SB
	Expose                    // InvisiSpec exposure: GetS + LLC-SB
	IFetch                    // instruction fetch
	// IFetchSpec is an invisible instruction fetch (ProtectICache,
	// paper footnote 2): data is returned but no cache state changes.
	IFetchSpec
)

// String names the request type.
func (t ReqType) String() string {
	switch t {
	case ReadShared:
		return "read"
	case ReadExcl:
		return "read-excl"
	case SpecRead:
		return "spec-read"
	case Validate:
		return "validate"
	case Expose:
		return "expose"
	case IFetch:
		return "ifetch"
	case IFetchSpec:
		return "ifetch-spec"
	}
	return fmt.Sprintf("ReqType(%d)", uint8(t))
}

func (t ReqType) trafficClass() stats.TrafficClass {
	switch t {
	case SpecRead:
		return stats.TrafficSpecLoad
	case Validate, Expose:
		return stats.TrafficValExp
	case IFetch, IFetchSpec:
		return stats.TrafficFetch
	}
	return stats.TrafficNormal
}

// Request is one core-originated memory transaction.
type Request struct {
	Type ReqType
	Core int
	Addr uint64
	// Token is echoed in the Response; the core uses it to match responses
	// to load/store queue entries and to discard stale (squashed) replies.
	Token uint64
	// LQIdx indexes the core's LLC-SB (1:1 with load-queue entries); used by
	// SpecRead fills and Validate/Expose lookups.
	LQIdx int
	// Epoch is the core's squash epoch (§VI-C).
	Epoch uint64
}

// Response reports a completed transaction back to the core.
type Response struct {
	Token uint64
	Addr  uint64
	Type  ReqType
	// L1Hit: the request was satisfied by the local L1 (for Table VI's
	// validation-hit breakdown).
	L1Hit bool
	// FromLLCSB: a Validate/Expose was served by the LLC-SB.
	FromLLCSB bool
	// Bounced: a Spec-GetS raced with an ownership transfer and was
	// returned unserved (§VI-E1); the core re-issues it if the USL is
	// still alive (squashed USLs simply drop the bounce).
	Bounced bool
}

// Client is the core-side interface the hierarchy calls back into.
type Client interface {
	// Deliver hands a completed transaction to the core at cycle now.
	Deliver(now uint64, resp Response)
	// OnInvalidate reports that the coherence protocol invalidated lineNum
	// from this core's L1 (the trigger for consistency squashes and
	// InvisiSpec early squashes).
	OnInvalidate(now uint64, lineNum uint64)
	// OnL1Evict reports that lineNum was evicted from this core's L1 by a
	// replacement (conventional cores squash performed loads on this too).
	OnL1Evict(now uint64, lineNum uint64)
}

// FaultInjector perturbs the hierarchy's timing deterministically (see
// internal/faultinject). Both hooks receive the nominal completion cycle and
// return the (possibly delayed) one; they must never return a cycle before
// the nominal one, so perturbation can stretch but never reorder a
// transaction's internal timeline.
type FaultInjector interface {
	// NoCDeliver perturbs a mesh message's delivery cycle (extra latency,
	// or a modelled drop-and-retransmit with capped backoff).
	NoCDeliver(now, deliver uint64) uint64
	// DRAMReady perturbs a DRAM access's data-ready cycle.
	DRAMReady(now, ready uint64) uint64
}

// Hierarchy is the whole memory system.
type Hierarchy struct {
	cfg  config.Machine
	st   *stats.Machine
	mesh *meshIface
	noc  *noc.Mesh
	l1d  []*l1
	l1i  []*l1
	bank []*bank
	sb   []*llcSB

	clients []Client

	now    uint64
	events eventHeap
	seq    uint64

	// Event conservation: every at() increments scheduled, every executed
	// callback increments run, so scheduled == run + len(events) always.
	eventsScheduled uint64
	eventsRun       uint64

	// recallPending counts in-flight inclusive-LLC recall invalidations per
	// line: the window where the LLC has already dropped a victim but the
	// L1 copies are still awaiting their invalidation events. The coherence
	// invariant checker must exempt these lines from inclusivity checks.
	recallPending map[uint64]int

	fault FaultInjector

	lineShift uint
}

// SetFaultInjector installs (or, with nil, removes) a deterministic timing
// perturbator. Call before the first Tick.
func (h *Hierarchy) SetFaultInjector(f FaultInjector) { h.fault = f }

type meshIface struct {
	send func(now uint64, src, dst, bytes int, class stats.TrafficClass) uint64
	dram *dramIface
}

type dramIface struct {
	read  func(now uint64, bytes int) uint64
	write func(now uint64, bytes int) uint64
}

// New assembles the hierarchy for the given machine.
func New(cfg config.Machine, st *stats.Machine) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:           cfg,
		st:            st,
		clients:       make([]Client, cfg.Cores),
		recallPending: make(map[uint64]int),
		lineShift:     log2(cfg.LineSize),
	}
	h.buildComponents()
	return h
}

func log2(v int) uint {
	var s uint
	for 1<<s < v {
		s++
	}
	return s
}

// LineOf returns the line number of a byte address.
func (h *Hierarchy) LineOf(addr uint64) uint64 { return addr >> h.lineShift }

// homeBank returns the LLC bank index owning a line.
func (h *Hierarchy) homeBank(lineNum uint64) int { return int(lineNum) % len(h.bank) }

// Connect registers the client for a core. It must be called for every core
// before the first Tick.
func (h *Hierarchy) Connect(core int, c Client) { h.clients[core] = c }

// Now returns the hierarchy's current cycle.
func (h *Hierarchy) Now() uint64 { return h.now }

// Tick advances the hierarchy to cycle now, running every event scheduled at
// or before it, and resets per-cycle port budgets.
func (h *Hierarchy) Tick(now uint64) {
	h.now = now
	for len(h.events) > 0 && h.events[0].cycle <= now {
		ev := heap.Pop(&h.events).(*event)
		h.eventsRun++
		ev.fn()
	}
	for _, c := range h.l1d {
		c.portsUsed = 0
	}
	for _, c := range h.l1i {
		c.portsUsed = 0
	}
}

// at schedules fn to run at the given cycle (clamped to the next tick if in
// the past). Events at the same cycle run in scheduling order.
func (h *Hierarchy) at(cycle uint64, fn func()) {
	if cycle <= h.now {
		cycle = h.now + 1
	}
	h.seq++
	h.eventsScheduled++
	heap.Push(&h.events, &event{cycle: cycle, seq: h.seq, fn: fn})
}

// DebugEventHistogram returns pending event counts bucketed by relative due
// time (temporary debugging aid).
func (h *Hierarchy) DebugEventHistogram() map[uint64]int {
	m := map[uint64]int{}
	for _, e := range h.events {
		m[(e.cycle-h.now)/1000]++
	}
	return m
}

// Pending reports whether any event remains in flight (used by the engine
// to drain the system at the end of a run).
func (h *Hierarchy) Pending() bool { return len(h.events) > 0 }

// NextWake implements the engine.Component quiescence contract: the
// hierarchy's next non-trivial work is exactly its event-heap head (at()
// clamps schedules to the future, so post-tick the head is strictly ahead
// of now). With an empty heap the hierarchy is fully drained and only a
// core-side submission can create work.
func (h *Hierarchy) NextWake(now uint64) uint64 {
	if len(h.events) == 0 {
		return ^uint64(0) // engine.Never
	}
	if head := h.events[0].cycle; head > now {
		return head
	}
	return now + 1
}

type event struct {
	cycle uint64
	seq   uint64
	fn    func()
}

type eventHeap []*event

func (q eventHeap) Len() int { return len(q) }
func (q eventHeap) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q eventHeap) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventHeap) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventHeap) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}
