package memsys

import (
	"invisispec/internal/cache"
	"invisispec/internal/coherence"
	"invisispec/internal/config"
	"invisispec/internal/stats"
)

// bank is one LLC bank with its slice of the directory (embedded in the LLC
// lines' Sharers/Owner fields). The directory is blocking: one transaction
// per line at a time; others queue in arrival order. A transaction holds the
// line from processing start until its response has been delivered, which
// removes the need for transient requester states.
type bank struct {
	id       int
	arr      *cache.Array
	busy     map[uint64]bool
	waiting  map[uint64][]*txn
	portFree uint64
}

// txn is a transaction queued at a bank.
type txn struct {
	kind     coherence.ReqKind
	core     int
	lineNum  uint64
	req      Request // original request for demand transactions
	isDemand bool
	isIFetch bool
	dirty    bool // PutM: data differs from memory
}

func newBank(id int, cfg config.Machine) *bank {
	return &bank{
		id:      id,
		arr:     cache.NewArray(cfg.L2.Sets(cfg.LineSize), cfg.L2.Ways),
		busy:    make(map[uint64]bool),
		waiting: make(map[uint64][]*txn),
	}
}

func dirEntryOf(line *cache.Line) coherence.DirEntry {
	if line == nil {
		return coherence.DirEntry{Owner: coherence.NoOwner}
	}
	return coherence.DirEntry{Present: true, Sharers: line.Sharers, Owner: line.Owner}
}

func storeDirEntry(line *cache.Line, e coherence.DirEntry) {
	line.Sharers = e.Sharers
	line.Owner = e.Owner
}

// sendToBank routes a demand GetS/GetX to the line's home bank.
func (h *Hierarchy) sendToBank(req Request, lineNum uint64, kind coherence.ReqKind) {
	home := h.homeBank(lineNum)
	arrive := h.mesh.send(h.now, req.Core, home, h.cfg.CtrlMsgBytes, req.Type.trafficClass())
	tx := &txn{kind: kind, core: req.Core, lineNum: lineNum, req: req, isDemand: true}
	h.at(arrive, func() { h.bankEnqueue(h.bank[home], tx) })
}

// sendIFetchToBank routes an instruction miss to the home bank.
func (h *Hierarchy) sendIFetchToBank(req Request, lineNum uint64) {
	home := h.homeBank(lineNum)
	arrive := h.mesh.send(h.now, req.Core, home, h.cfg.CtrlMsgBytes, stats.TrafficFetch)
	tx := &txn{kind: coherence.GetS, core: req.Core, lineNum: lineNum, req: req, isIFetch: true}
	h.at(arrive, func() { h.bankEnqueue(h.bank[home], tx) })
}

// bankEnqueue admits a transaction, queueing it if the line is locked.
func (h *Hierarchy) bankEnqueue(b *bank, tx *txn) {
	if b.busy[tx.lineNum] {
		b.waiting[tx.lineNum] = append(b.waiting[tx.lineNum], tx)
		return
	}
	b.busy[tx.lineNum] = true
	h.bankProcess(b, tx)
}

// bankRelease unlocks a line and starts the next queued transaction.
func (h *Hierarchy) bankRelease(b *bank, lineNum uint64) {
	q := b.waiting[lineNum]
	if len(q) == 0 {
		delete(b.busy, lineNum)
		return
	}
	tx := q[0]
	if len(q) == 1 {
		delete(b.waiting, lineNum)
	} else {
		b.waiting[lineNum] = q[1:]
	}
	h.bankProcess(b, tx)
}

// bankAccess serializes transactions through the bank's single port and
// returns the cycle at which the bank lookup has completed.
func (h *Hierarchy) bankAccess(b *bank) uint64 {
	start := h.now
	if b.portFree > start {
		start = b.portFree
	}
	b.portFree = start + 1
	return start + uint64(h.cfg.L2LocalRT)
}

// bankProcess runs one locked transaction to completion, computing its
// timeline from NoC and DRAM latencies and scheduling the response.
func (h *Hierarchy) bankProcess(b *bank, tx *txn) {
	if tx.isIFetch {
		h.bankProcessIFetch(b, tx)
		return
	}
	if !tx.isDemand {
		h.bankProcessPut(b, tx)
		return
	}
	t := h.bankAccess(b)
	class := tx.req.Type.trafficClass()
	line := b.arr.Lookup(tx.lineNum)
	dec, newEntry := coherence.Decide(dirEntryOf(line), tx.kind, tx.core)
	servedSB := false
	var respArrive uint64

	valexp := tx.req.Type == Validate || tx.req.Type == Expose
	switch {
	case dec.FromMemory:
		if h.st != nil {
			h.st.LLCMisses++
		}
		if valexp && h.cfg.LLCSBEnabled &&
			h.sb[tx.core].lookup(tx.req.LQIdx, tx.lineNum, tx.req.Epoch) {
			// Served by the requester's LLC-SB: no DRAM access (§V-F).
			servedSB = true
			if h.st != nil {
				h.st.Cores[tx.core].LLCSBHits++
			}
		} else {
			if valexp && h.st != nil {
				h.st.Cores[tx.core].LLCSBMisses++
			}
			t = h.mesh.dram.read(t, h.cfg.DataMsgBytes)
			if h.st != nil {
				h.st.AddTraffic(class, uint64(h.cfg.DataMsgBytes))
			}
		}
		// Any non-speculative memory fetch purges the line from every
		// core's LLC-SB (§VI-C).
		for _, sb := range h.sb {
			sb.invalidateLine(tx.lineNum)
		}
		// Install in the LLC (inclusive), possibly recalling a victim.
		h.llcInstall(b, tx.lineNum, t)
		respArrive = h.mesh.send(t, b.id, tx.core, h.cfg.DataMsgBytes, class)

	case dec.FromOwner:
		if h.st != nil {
			h.st.LLCHits++
		}
		b.arr.Touch(tx.lineNum)
		tf := h.mesh.send(t, b.id, dec.Owner, h.cfg.CtrlMsgBytes, class)
		ownerLine := h.l1d[dec.Owner].arr.Lookup(tx.lineNum)
		if ownerLine != nil {
			wasDirty := ownerLine.Dirty
			if tx.kind == coherence.GetS {
				h.at(tf, func() { h.downgradeL1(dec.Owner, tx.lineNum) })
				if dec.OwnerWriteback {
					h.mesh.send(tf, dec.Owner, b.id, h.cfg.DataMsgBytes, stats.TrafficWriteback)
					if wasDirty {
						line := b.arr.Lookup(tx.lineNum)
						if line != nil {
							line.Dirty = true
						}
					}
				}
			} else { // GetX forward: the forward acts as the invalidation.
				h.at(tf, func() { h.invalidateL1(dec.Owner, tx.lineNum) })
			}
			respArrive = h.mesh.send(tf, dec.Owner, tx.core, h.cfg.DataMsgBytes, class)
		} else {
			// The owner's eviction raced ahead of its Put: serve from LLC.
			respArrive = h.mesh.send(t, b.id, tx.core, h.cfg.DataMsgBytes, class)
		}

	default:
		if h.st != nil {
			h.st.LLCHits++
		}
		b.arr.Touch(tx.lineNum)
		respArrive = h.mesh.send(t, b.id, tx.core, h.cfg.DataMsgBytes, class)
	}

	// Invalidate sharers; the directory collects acks before the requester
	// may proceed (the response is held until the last ack).
	acksDone := respArrive
	for _, c := range dec.Invalidate {
		if dec.FromOwner && c == dec.Owner {
			continue // the forward already invalidated the owner
		}
		core := c
		tinv := h.mesh.send(t, b.id, core, h.cfg.CtrlMsgBytes, class)
		h.at(tinv, func() { h.invalidateL1(core, tx.lineNum) })
		tack := h.mesh.send(tinv, core, b.id, h.cfg.CtrlMsgBytes, class)
		if tack > acksDone {
			acksDone = tack
		}
	}

	// Commit the directory update.
	line = b.arr.Lookup(tx.lineNum)
	if line == nil {
		panic("memsys: demand transaction completed without an LLC line")
	}
	storeDirEntry(line, newEntry)

	done := acksDone
	req := tx.req
	c := h.l1d[tx.core]
	h.at(done, func() {
		h.fillL1(c, req, tx.lineNum, dec.Grant, servedSB)
		h.bankRelease(b, tx.lineNum)
	})
}

// bankProcessPut applies an eviction notification.
func (h *Hierarchy) bankProcessPut(b *bank, tx *txn) {
	t := h.bankAccess(b)
	line := b.arr.Lookup(tx.lineNum)
	if line != nil {
		_, newEntry := coherence.Decide(dirEntryOf(line), tx.kind, tx.core)
		storeDirEntry(line, newEntry)
		if tx.dirty {
			line.Dirty = true
		}
	}
	h.at(t, func() { h.bankRelease(b, tx.lineNum) })
}

// bankProcessIFetch serves an instruction line: read-only, no directory
// tracking, but resident in the LLC like any other line.
func (h *Hierarchy) bankProcessIFetch(b *bank, tx *txn) {
	t := h.bankAccess(b)
	line := b.arr.Lookup(tx.lineNum)
	if line == nil {
		if h.st != nil {
			h.st.LLCMisses++
		}
		t = h.mesh.dram.read(t, h.cfg.DataMsgBytes)
		if h.st != nil {
			h.st.AddTraffic(stats.TrafficFetch, uint64(h.cfg.DataMsgBytes))
		}
		h.llcInstall(b, tx.lineNum, t)
	} else {
		if h.st != nil {
			h.st.LLCHits++
		}
		b.arr.Touch(tx.lineNum)
	}
	respArrive := h.mesh.send(t, b.id, tx.core, h.cfg.DataMsgBytes, stats.TrafficFetch)
	req := tx.req
	c := h.l1i[tx.core]
	h.at(respArrive, func() {
		h.fillL1(c, req, tx.lineNum, coherence.Shared, false)
		h.bankRelease(b, tx.lineNum)
	})
}

// llcInstall inserts a fetched line into the LLC, recalling (invalidating
// from L1s, writing back if dirty) any victim. Inclusive-LLC recalls run in
// the background and do not extend the requester's critical path.
func (h *Hierarchy) llcInstall(b *bank, lineNum uint64, t uint64) {
	_, victim, hadVictim := b.arr.Insert(lineNum)
	if !hadVictim {
		return
	}
	targets, owned := coherence.Recall(dirEntryOf(&victim))
	for _, c := range targets {
		core := c
		vline := victim.LineNum
		// Track the in-flight recall so the coherence invariant checker can
		// exempt this line from inclusivity checks until the L1 copy is gone.
		h.recallPending[vline]++
		tinv := h.mesh.send(t, b.id, core, h.cfg.CtrlMsgBytes, stats.TrafficWriteback)
		h.at(tinv, func() {
			h.invalidateL1(core, vline)
			h.l1i[core].arr.Invalidate(vline)
			if h.recallPending[vline]--; h.recallPending[vline] == 0 {
				delete(h.recallPending, vline)
			}
		})
	}
	if victim.Dirty || owned {
		h.mesh.dram.write(t, h.cfg.DataMsgBytes)
		if h.st != nil {
			h.st.AddTraffic(stats.TrafficWriteback, uint64(h.cfg.DataMsgBytes))
		}
	}
}

// sendIFetchSpecToBank serves an invisible instruction fetch: LLC probe
// without replacement update, DRAM read without install on a miss.
func (h *Hierarchy) sendIFetchSpecToBank(req Request, lineNum uint64) {
	home := h.homeBank(lineNum)
	arrive := h.mesh.send(h.now, req.Core, home, h.cfg.CtrlMsgBytes, stats.TrafficFetch)
	h.at(arrive, func() {
		b := h.bank[home]
		t := h.bankAccess(b)
		if b.arr.Lookup(lineNum) == nil { // no Touch either way
			t = h.mesh.dram.read(t, h.cfg.DataMsgBytes)
			if h.st != nil {
				h.st.AddTraffic(stats.TrafficFetch, uint64(h.cfg.DataMsgBytes))
			}
		}
		respArrive := h.mesh.send(t, home, req.Core, h.cfg.DataMsgBytes, stats.TrafficFetch)
		h.at(respArrive, func() {
			h.clients[req.Core].Deliver(h.now, Response{Token: req.Token, Addr: req.Addr, Type: req.Type})
		})
	})
}

// sendSpecToBank routes a Spec-GetS to the home bank.
func (h *Hierarchy) sendSpecToBank(req Request, lineNum uint64) {
	home := h.homeBank(lineNum)
	arrive := h.mesh.send(h.now, req.Core, home, h.cfg.CtrlMsgBytes, stats.TrafficSpecLoad)
	h.at(arrive, func() { h.specProcess(req, lineNum) })
}

// specProcess serves a Spec-GetS at the directory. It is NOT ordered with
// respect to other transactions (§VI-E1): a busy line bounces the request
// back to the requester, which retries; directory, LLC replacement, and L1
// states are never modified.
func (h *Hierarchy) specProcess(req Request, lineNum uint64) {
	b := h.bank[h.homeBank(lineNum)]
	if b.busy[lineNum] {
		h.specBounce(req, lineNum, b.id)
		return
	}
	t := h.bankAccess(b)
	line := b.arr.Lookup(lineNum) // no Touch: replacement state untouched
	dec, _ := coherence.Decide(dirEntryOf(line), coherence.SpecGetS, req.Core)
	switch {
	case dec.FromMemory:
		t = h.mesh.dram.read(t, h.cfg.DataMsgBytes)
		if h.st != nil {
			h.st.AddTraffic(stats.TrafficSpecLoad, uint64(h.cfg.DataMsgBytes))
		}
		// Fill the requester's LLC-SB on the data's way back (§VI-C),
		// unless a newer epoch already claimed the entry.
		if h.cfg.LLCSBEnabled {
			h.sb[req.Core].fill(req.LQIdx, lineNum, req.Epoch)
		}
		h.specRespond(req, b.id, t)
	case dec.FromOwner:
		tf := h.mesh.send(t, b.id, dec.Owner, h.cfg.CtrlMsgBytes, stats.TrafficSpecLoad)
		owner := dec.Owner
		h.at(tf, func() {
			if h.l1d[owner].arr.Lookup(lineNum) != nil {
				// Owner still has the line: reply without any state change.
				h.specRespondFrom(req, owner)
			} else {
				// Ownership moved while the forward was in flight: bounce.
				h.specBounce(req, lineNum, owner)
			}
		})
	default:
		h.specRespond(req, b.id, t)
	}
}

// specBounce returns a Spec-GetS to the requester unserved; the core
// decides whether to retry (it will not if the USL has been squashed).
func (h *Hierarchy) specBounce(req Request, lineNum uint64, from int) {
	tb := h.mesh.send(h.now, from, req.Core, h.cfg.CtrlMsgBytes, stats.TrafficSpecLoad)
	h.at(tb, func() {
		h.clients[req.Core].Deliver(h.now, Response{
			Token: req.Token, Addr: req.Addr, Type: req.Type, Bounced: true,
		})
	})
}

// specRespond sends Spec-GetS data from node src at cycle t.
func (h *Hierarchy) specRespond(req Request, src int, t uint64) {
	arrive := h.mesh.send(t, src, req.Core, h.cfg.DataMsgBytes, stats.TrafficSpecLoad)
	h.at(arrive, func() {
		h.clients[req.Core].Deliver(h.now, Response{Token: req.Token, Addr: req.Addr, Type: req.Type})
	})
}

// specRespondFrom sends Spec-GetS data from an owner core at the current
// cycle.
func (h *Hierarchy) specRespondFrom(req Request, owner int) {
	arrive := h.mesh.send(h.now, owner, req.Core, h.cfg.DataMsgBytes, stats.TrafficSpecLoad)
	h.at(arrive, func() {
		h.clients[req.Core].Deliver(h.now, Response{Token: req.Token, Addr: req.Addr, Type: req.Type})
	})
}
