package memsys

import "invisispec/internal/coherence"

// This file exposes read-only views of hierarchy state for tests and for
// the security-invariant checks (e.g. "a squashed USL leaves no trace in
// any cache, directory, or replacement state").

// L1State returns the MESI state of addr's line in the core's L1D
// (coherence.Invalid if absent).
func (h *Hierarchy) L1State(core int, addr uint64) coherence.State {
	line := h.l1d[core].arr.Lookup(h.LineOf(addr))
	if line == nil {
		return coherence.Invalid
	}
	return coherence.State(line.State)
}

// L1LRUOrder returns the MRU-to-LRU line numbers of the L1D set containing
// addr.
func (h *Hierarchy) L1LRUOrder(core int, addr uint64) []uint64 {
	a := h.l1d[core].arr
	return a.LRUOrder(a.SetOf(h.LineOf(addr)))
}

// LLCPresent reports whether addr's line is resident in the LLC.
func (h *Hierarchy) LLCPresent(addr uint64) bool {
	ln := h.LineOf(addr)
	return h.bank[h.homeBank(ln)].arr.Lookup(ln) != nil
}

// LLCDir returns the directory entry for addr's line.
func (h *Hierarchy) LLCDir(addr uint64) coherence.DirEntry {
	ln := h.LineOf(addr)
	return dirEntryOf(h.bank[h.homeBank(ln)].arr.Lookup(ln))
}

// LLCLRUOrder returns the MRU-to-LRU order of the LLC set containing addr
// in its home bank.
func (h *Hierarchy) LLCLRUOrder(addr uint64) []uint64 {
	ln := h.LineOf(addr)
	a := h.bank[h.homeBank(ln)].arr
	return a.LRUOrder(a.SetOf(ln))
}

// LLCSBEntry returns the contents of a core's LLC-SB entry.
func (h *Hierarchy) LLCSBEntry(core, idx int) (lineNum uint64, epoch uint64, valid bool) {
	e := h.sb[core].entries[idx]
	return e.lineNum, e.epoch, e.valid
}

// L1DInFlight returns the number of outstanding demand misses at a core's
// L1D.
func (h *Hierarchy) L1DInFlight(core int) int { return h.l1d[core].mshr.InFlight() }

// DebugBankState reports lock/queue status of the line containing addr (for
// diagnosing protocol hangs in tests).
func (h *Hierarchy) DebugBankState(addr uint64) (busy bool, queued int, mshrInFlight int) {
	ln := h.LineOf(addr)
	b := h.bank[h.homeBank(ln)]
	return b.busy[ln], len(b.waiting[ln]), h.l1d[0].mshr.InFlight()
}

// DebugEvents returns the number of pending hierarchy events.
func (h *Hierarchy) DebugEvents() int { return len(h.events) }

// FlushLine implements a clflush: the line containing addr is invalidated
// from every L1, written back from the LLC if dirty, dropped from the LLC,
// and purged from every LLC-SB. It is an architectural (non-speculative)
// operation; timing is charged by the core.
func (h *Hierarchy) FlushLine(addr uint64) {
	ln := h.LineOf(addr)
	for c := range h.l1d {
		h.invalidateL1(c, ln)
		h.l1i[c].arr.Invalidate(ln)
	}
	b := h.bank[h.homeBank(ln)]
	if line := b.arr.Lookup(ln); line != nil {
		// An owned line may have been silently dirtied in the owner's L1;
		// like a recall, the flush must assume it needs writing back.
		if line.Dirty || line.Owner != coherence.NoOwner {
			h.mesh.dram.write(h.now, h.cfg.DataMsgBytes)
		}
		b.arr.Invalidate(ln)
	}
	for _, sb := range h.sb {
		sb.invalidateLine(ln)
	}
}

// L1IPresent reports whether addr's line is in the core's L1I.
func (h *Hierarchy) L1IPresent(core int, addr uint64) bool {
	return h.l1i[core].arr.Lookup(h.LineOf(addr)) != nil
}
