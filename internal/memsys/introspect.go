package memsys

import (
	"fmt"
	"strings"

	"invisispec/internal/cache"
	"invisispec/internal/coherence"
)

// This file exposes read-only views of hierarchy state for tests and for
// the security-invariant checks (e.g. "a squashed USL leaves no trace in
// any cache, directory, or replacement state").

// L1State returns the MESI state of addr's line in the core's L1D
// (coherence.Invalid if absent).
func (h *Hierarchy) L1State(core int, addr uint64) coherence.State {
	line := h.l1d[core].arr.Lookup(h.LineOf(addr))
	if line == nil {
		return coherence.Invalid
	}
	return coherence.State(line.State)
}

// L1LRUOrder returns the MRU-to-LRU line numbers of the L1D set containing
// addr.
func (h *Hierarchy) L1LRUOrder(core int, addr uint64) []uint64 {
	a := h.l1d[core].arr
	return a.LRUOrder(a.SetOf(h.LineOf(addr)))
}

// LLCPresent reports whether addr's line is resident in the LLC.
func (h *Hierarchy) LLCPresent(addr uint64) bool {
	ln := h.LineOf(addr)
	return h.bank[h.homeBank(ln)].arr.Lookup(ln) != nil
}

// LLCDir returns the directory entry for addr's line.
func (h *Hierarchy) LLCDir(addr uint64) coherence.DirEntry {
	ln := h.LineOf(addr)
	return dirEntryOf(h.bank[h.homeBank(ln)].arr.Lookup(ln))
}

// LLCLRUOrder returns the MRU-to-LRU order of the LLC set containing addr
// in its home bank.
func (h *Hierarchy) LLCLRUOrder(addr uint64) []uint64 {
	ln := h.LineOf(addr)
	a := h.bank[h.homeBank(ln)].arr
	return a.LRUOrder(a.SetOf(ln))
}

// LLCSBEntry returns the contents of a core's LLC-SB entry.
func (h *Hierarchy) LLCSBEntry(core, idx int) (lineNum uint64, epoch uint64, valid bool) {
	e := h.sb[core].entries[idx]
	return e.lineNum, e.epoch, e.valid
}

// L1DInFlight returns the number of outstanding demand misses at a core's
// L1D.
func (h *Hierarchy) L1DInFlight(core int) int { return h.l1d[core].mshr.InFlight() }

// DebugBankState reports lock/queue status of the line containing addr (for
// diagnosing protocol hangs in tests).
func (h *Hierarchy) DebugBankState(addr uint64) (busy bool, queued int, mshrInFlight int) {
	ln := h.LineOf(addr)
	b := h.bank[h.homeBank(ln)]
	return b.busy[ln], len(b.waiting[ln]), h.l1d[0].mshr.InFlight()
}

// DebugEvents returns the number of pending hierarchy events.
func (h *Hierarchy) DebugEvents() int { return len(h.events) }

// FlushLine implements a clflush: the line containing addr is invalidated
// from every L1, written back from the LLC if dirty, dropped from the LLC,
// and purged from every LLC-SB. It is an architectural (non-speculative)
// operation; timing is charged by the core.
func (h *Hierarchy) FlushLine(addr uint64) {
	ln := h.LineOf(addr)
	for c := range h.l1d {
		h.invalidateL1(c, ln)
		h.l1i[c].arr.Invalidate(ln)
	}
	b := h.bank[h.homeBank(ln)]
	if line := b.arr.Lookup(ln); line != nil {
		// An owned line may have been silently dirtied in the owner's L1;
		// like a recall, the flush must assume it needs writing back.
		if line.Dirty || line.Owner != coherence.NoOwner {
			h.mesh.dram.write(h.now, h.cfg.DataMsgBytes)
		}
		b.arr.Invalidate(ln)
	}
	for _, sb := range h.sb {
		sb.invalidateLine(ln)
	}
}

// L1IPresent reports whether addr's line is in the core's L1I.
func (h *Hierarchy) L1IPresent(core int, addr uint64) bool {
	return h.l1i[core].arr.Lookup(h.LineOf(addr)) != nil
}

// ---------------------------------------------------------------------------
// Hardening-layer introspection (internal/invariant). Everything below is
// read-only except the two Inject* mutation hooks at the bottom, which exist
// solely for the invariant package's mutation self-test.

// NumCores returns the number of cores the hierarchy was built for.
func (h *Hierarchy) NumCores() int { return len(h.l1d) }

// ForEachL1DLine calls fn for every valid line in the core's L1D with its
// line number and MESI state.
func (h *Hierarchy) ForEachL1DLine(core int, fn func(lineNum uint64, st coherence.State)) {
	h.l1d[core].arr.ForEach(func(l *cache.Line) {
		fn(l.LineNum, coherence.State(l.State))
	})
}

// LLCLineDir looks a line up in its home bank and returns whether it is
// resident plus its directory entry.
func (h *Hierarchy) LLCLineDir(lineNum uint64) (present bool, dir coherence.DirEntry) {
	line := h.bank[h.homeBank(lineNum)].arr.Lookup(lineNum)
	return line != nil, dirEntryOf(line)
}

// BankBusy reports whether a directory transaction currently holds the line
// (invariant checks must exempt such lines: their L1/LLC/directory states are
// legitimately in transit).
func (h *Hierarchy) BankBusy(lineNum uint64) bool {
	return h.bank[h.homeBank(lineNum)].busy[lineNum]
}

// RecallPending reports whether an inclusive-LLC recall invalidation is still
// in flight for the line (the LLC already dropped it; L1 copies linger until
// their invalidation events run).
func (h *Hierarchy) RecallPending(lineNum uint64) bool {
	return h.recallPending[lineNum] > 0
}

// EventAccounting returns the hierarchy's event-conservation counters;
// scheduled == run + pending must always hold.
func (h *Hierarchy) EventAccounting() (scheduled, run uint64, pending int) {
	return h.eventsScheduled, h.eventsRun, len(h.events)
}

// NoCAccounting returns the mesh's message-conservation counters at the
// hierarchy's current cycle; injected == delivered + inflight must hold.
func (h *Hierarchy) NoCAccounting() (injected, delivered uint64, inflight int) {
	return h.noc.Accounting(h.now)
}

// MSHRAccounting returns one core's L1D MSHR conservation counters;
// allocs - frees == inflight and inflight <= cap must hold.
func (h *Hierarchy) MSHRAccounting(core int) (allocs, frees uint64, inflight, capacity int) {
	m := h.l1d[core].mshr
	allocs, frees = m.Accounting()
	return allocs, frees, m.InFlight(), m.Cap()
}

// MSHRConsistency cross-checks each core's L1D and L1I MSHR files against
// their side-table maps (mshrKind/mshrMeta) and conservation counters, and
// returns a description of every inconsistency found. Only the hierarchy can
// perform this audit: the side tables are internal.
func (h *Hierarchy) MSHRConsistency() []string {
	var errs []string
	audit := func(c *l1, name string) {
		m := c.mshr
		allocs, frees := m.Accounting()
		inflight := m.InFlight()
		if int(allocs-frees) != inflight {
			errs = append(errs, fmt.Sprintf(
				"core%d %s: MSHR conservation broken: allocs=%d frees=%d but %d in flight",
				c.core, name, allocs, frees, inflight))
		}
		if inflight > m.Cap() {
			errs = append(errs, fmt.Sprintf(
				"core%d %s: MSHR occupancy %d exceeds capacity %d", c.core, name, inflight, m.Cap()))
		}
		live := m.Lines()
		if len(c.mshrKind) != len(live) || len(c.mshrMeta) != len(live) {
			errs = append(errs, fmt.Sprintf(
				"core%d %s: MSHR side tables out of sync: %d live entries, %d kinds, %d metas",
				c.core, name, len(live), len(c.mshrKind), len(c.mshrMeta)))
		}
		for _, ln := range live {
			if _, ok := c.mshrKind[ln]; !ok {
				errs = append(errs, fmt.Sprintf(
					"core%d %s: live MSHR for line %#x has no request kind (leaked entry?)",
					c.core, name, ln))
			}
			if _, ok := c.mshrMeta[ln]; !ok {
				errs = append(errs, fmt.Sprintf(
					"core%d %s: live MSHR for line %#x has no waiter list", c.core, name, ln))
			}
		}
	}
	for i := range h.l1d {
		audit(h.l1d[i], "L1D")
		audit(h.l1i[i], "L1I")
	}
	return errs
}

// LLCSBValidLines returns the line numbers currently valid in a core's
// LLC-SB.
func (h *Hierarchy) LLCSBValidLines(core int) []uint64 {
	var out []uint64
	for i := range h.sb[core].entries {
		if e := &h.sb[core].entries[i]; e.valid {
			out = append(out, e.lineNum)
		}
	}
	return out
}

// DebugSummary renders a compact per-core hierarchy snapshot for deadlock
// and invariant-violation dumps.
func (h *Hierarchy) DebugSummary() string {
	var b strings.Builder
	sched, run, pending := h.EventAccounting()
	fmt.Fprintf(&b, "hierarchy: cycle=%d events sched=%d run=%d pending=%d\n",
		h.now, sched, run, pending)
	inj, del, inflight := h.NoCAccounting()
	fmt.Fprintf(&b, "noc: injected=%d delivered=%d inflight=%d\n", inj, del, inflight)
	for i := range h.l1d {
		allocs, frees, mf, capn := h.MSHRAccounting(i)
		fmt.Fprintf(&b, "core%d: l1d lines=%d mshr=%d/%d (allocs=%d frees=%d) llcsb=%d busyBankLines=%d\n",
			i, h.l1d[i].arr.Count(), mf, capn, allocs, frees,
			len(h.LLCSBValidLines(i)), len(h.bank[i].busy))
	}
	return b.String()
}

// InjectMSHRLeak allocates an L1D MSHR entry for a bogus line without any of
// the side-table bookkeeping, simulating a leak. It exists ONLY for the
// mutation self-test in internal/invariant; nothing in normal operation calls
// it.
func (h *Hierarchy) InjectMSHRLeak(core int) {
	const bogusLine = ^uint64(0) >> 1
	h.l1d[core].mshr.Alloc(bogusLine)
}

// InjectDuplicateM installs addr's line as Modified in both cores' L1Ds
// without telling the directory, seeding a single-writer violation. It exists
// ONLY for the mutation self-test in internal/invariant.
func (h *Hierarchy) InjectDuplicateM(core1, core2 int, addr uint64) {
	ln := h.LineOf(addr)
	for _, c := range []int{core1, core2} {
		arr := h.l1d[c].arr
		arr.Insert(ln)
		line := arr.Lookup(ln)
		line.State = uint8(coherence.Modified)
		line.Dirty = true
	}
}
