package memsys

// llcSB is one core's LLC speculative buffer (§V-F, §VI-C): a circular
// buffer with as many entries as the load queue and a one-to-one mapping
// between LQ and LLC-SB entries. Each entry records the line a USL fetched
// from main memory and the core's squash-epoch at fill time. Data bytes are
// not stored — the LLC-SB is invalidated whenever the line could change, so
// a hit is equivalent to re-reading the (unchanged) memory value, which the
// core does from the functional memory image.
type llcSB struct {
	entries []llcsbEntry
}

type llcsbEntry struct {
	valid   bool
	lineNum uint64
	epoch   uint64
}

func newLLCSB(lqEntries int) *llcSB {
	return &llcSB{entries: make([]llcsbEntry, lqEntries)}
}

// fill stores a memory fill for the USL at LQ index idx. A stale request
// (its epoch is older than the entry's) is dropped (§VI-C).
func (s *llcSB) fill(idx int, lineNum, epoch uint64) {
	e := &s.entries[idx]
	if e.valid && e.epoch > epoch {
		return
	}
	*e = llcsbEntry{valid: true, lineNum: lineNum, epoch: epoch}
}

// lookup reports whether the entry at idx matches the line and epoch of a
// validation/exposure.
func (s *llcSB) lookup(idx int, lineNum, epoch uint64) bool {
	e := s.entries[idx]
	return e.valid && e.lineNum == lineNum && e.epoch == epoch
}

// invalidateLine purges every entry holding lineNum.
func (s *llcSB) invalidateLine(lineNum uint64) {
	for i := range s.entries {
		if s.entries[i].valid && s.entries[i].lineNum == lineNum {
			s.entries[i] = llcsbEntry{}
		}
	}
}
