package memsys

import (
	"invisispec/internal/cache"
	"invisispec/internal/coherence"
	"invisispec/internal/config"
	"invisispec/internal/dram"
	"invisispec/internal/noc"
	"invisispec/internal/stats"
)

// l1 is one private cache (L1D or L1I) plus its miss machinery.
type l1 struct {
	core      int
	arr       *cache.Array
	mshr      *cache.MSHRFile
	mshrKind  map[uint64]coherence.ReqKind // per outstanding line: GetS or GetX
	mshrMeta  map[uint64][]waiter          // responses to build per waiter
	latency   uint64
	ports     int
	portsUsed int
	instr     bool // instruction cache (read-only, no coherence tracking)
	pf        streamDetector
}

// streamDetector is the confidence side of the stream prefetcher: it only
// prefetches when recent visible misses advance through sequential lines,
// and ramps its distance with confidence, so random-access workloads pay
// no useless prefetch bandwidth.
type streamDetector struct {
	lastLine uint64
	conf     int
}

// observe feeds a visible access at lineNum and returns how many lines
// ahead to prefetch (0 = not a stream).
func (s *streamDetector) observe(lineNum uint64, maxDegree int) int {
	switch {
	case lineNum == s.lastLine:
		// repeated trigger on the same line: keep confidence
	case lineNum == s.lastLine+1 || lineNum == s.lastLine+2:
		if s.conf < 4 {
			s.conf++
		}
	default:
		s.conf = 0
	}
	s.lastLine = lineNum
	if s.conf == 0 {
		return 0
	}
	d := s.conf * maxDegree / 4
	if d < 1 {
		d = 1
	}
	return d
}

// waiter is one coalesced request parked on an outstanding miss.
type waiter struct {
	token uint64
	typ   ReqType
}

func newL1(core int, p config.CacheParams, lineSize int, instr bool) *l1 {
	return &l1{
		core:     core,
		arr:      cache.NewArray(p.Sets(lineSize), p.Ways),
		mshr:     cache.NewMSHRFile(p.MSHRs),
		mshrKind: make(map[uint64]coherence.ReqKind),
		mshrMeta: make(map[uint64][]waiter),
		latency:  uint64(p.LatencyRT),
		ports:    p.Ports,
		instr:    instr,
	}
}

func (c *l1) portAvailable() bool { return c.portsUsed < c.ports }

func (c *l1) usePort() { c.portsUsed++ }

func (h *Hierarchy) buildComponents() {
	cfg := h.cfg
	mesh := noc.New(cfg.MeshW, cfg.MeshH, cfg.HopLatency, cfg.LinkBytes, h.st)
	mem := dram.New(cfg.DRAMLatency, cfg.DRAMBandwidth)
	h.noc = mesh
	h.mesh = &meshIface{
		send: func(now uint64, src, dst, bytes int, class stats.TrafficClass) uint64 {
			t := mesh.Send(now, src, dst, bytes, class)
			if h.fault != nil {
				t = h.fault.NoCDeliver(now, t)
			}
			return t
		},
		dram: &dramIface{
			read: func(now uint64, bytes int) uint64 {
				if h.st != nil {
					h.st.DRAMReads++
				}
				t := mem.Read(now, bytes)
				if h.fault != nil {
					t = h.fault.DRAMReady(now, t)
				}
				return t
			},
			write: func(now uint64, bytes int) uint64 {
				if h.st != nil {
					h.st.DRAMWrites++
				}
				t := mem.Write(now, bytes)
				if h.fault != nil {
					t = h.fault.DRAMReady(now, t)
				}
				return t
			},
		},
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1d = append(h.l1d, newL1(i, cfg.L1D, cfg.LineSize, false))
		h.l1i = append(h.l1i, newL1(i, cfg.L1I, cfg.LineSize, true))
		h.bank = append(h.bank, newBank(i, cfg))
		h.sb = append(h.sb, newLLCSB(cfg.LQEntries))
	}
}

// Submit hands a request to the hierarchy at the current cycle. It returns
// false when a structural hazard (cache port or MSHR exhaustion) rejects the
// request; the core must retry on a later cycle.
func (h *Hierarchy) Submit(req Request) bool {
	if req.Type == IFetch {
		return h.submitIFetch(req)
	}
	if req.Type == IFetchSpec {
		return h.submitIFetchSpec(req)
	}
	c := h.l1d[req.Core]
	if !c.portAvailable() {
		return false
	}
	lineNum := h.LineOf(req.Addr)
	switch req.Type {
	case SpecRead:
		return h.submitSpecRead(c, req, lineNum)
	case ReadShared, Validate, Expose:
		return h.submitRead(c, req, lineNum)
	case ReadExcl:
		return h.submitReadExcl(c, req, lineNum)
	}
	panic("memsys: unknown request type")
}

// submitRead handles coherent read-for-share requests (safe loads,
// validations, exposures).
func (h *Hierarchy) submitRead(c *l1, req Request, lineNum uint64) bool {
	if line := c.arr.Lookup(lineNum); line != nil {
		c.usePort()
		c.arr.Touch(lineNum)
		if line.Prefetched {
			// First demand touch of a prefetched line re-arms the tagged
			// next-line prefetcher.
			line.Prefetched = false
			h.triggerPrefetch(c, req.Core, lineNum)
		}
		if h.st != nil {
			h.st.Cores[req.Core].L1DHits++
		}
		resp := Response{Token: req.Token, Addr: req.Addr, Type: req.Type, L1Hit: true}
		h.at(h.now+c.latency, func() { h.clients[req.Core].Deliver(h.now, resp) })
		return true
	}
	// Miss: coalesce onto an outstanding demand miss if one exists.
	if m := c.mshr.Lookup(lineNum); m != nil {
		c.usePort()
		c.mshrMeta[lineNum] = append(c.mshrMeta[lineNum], waiter{token: req.Token, typ: req.Type})
		if h.st != nil {
			h.st.Cores[req.Core].L1DMisses++
		}
		return true
	}
	if c.mshr.Full() {
		return false
	}
	c.usePort()
	c.mshr.Alloc(lineNum)
	c.mshrKind[lineNum] = coherence.GetS
	c.mshrMeta[lineNum] = []waiter{{token: req.Token, typ: req.Type}}
	if h.st != nil {
		h.st.Cores[req.Core].L1DMisses++
	}
	h.sendToBank(req, lineNum, coherence.GetS)
	h.triggerPrefetch(c, req.Core, lineNum)
	return true
}

// prefetchToken marks hardware-prefetch requests; cores never use it, so
// prefetch fills wake no waiters and deliver no responses.
const prefetchToken = 0

// triggerPrefetch runs the stream prefetcher after a visible demand miss
// or the first touch of a prefetched line. Prefetches are issued only once
// the detector has seen a sequential miss stream, and the distance ramps
// with confidence up to PrefetchDegree. Spec-GetS accesses never reach
// this path: the prefetcher is invisible-speculation-safe (§VI-B).
func (h *Hierarchy) triggerPrefetch(c *l1, core int, lineNum uint64) {
	if !h.cfg.HWPrefetch {
		return
	}
	degree := c.pf.observe(lineNum, h.cfg.PrefetchDegree)
	for d := 1; d <= degree; d++ {
		ln := lineNum + uint64(d)
		if c.arr.Lookup(ln) != nil || c.mshr.Lookup(ln) != nil {
			continue
		}
		if c.mshr.Full() {
			return
		}
		c.mshr.Alloc(ln)
		c.mshrKind[ln] = coherence.GetS
		c.mshrMeta[ln] = nil
		req := Request{Type: ReadShared, Core: core, Addr: ln << h.lineShift, Token: prefetchToken}
		h.sendToBank(req, ln, coherence.GetS)
	}
}

// submitReadExcl handles store drains and atomics.
func (h *Hierarchy) submitReadExcl(c *l1, req Request, lineNum uint64) bool {
	if line := c.arr.Lookup(lineNum); line != nil &&
		coherence.State(line.State) != coherence.Shared {
		// Hit in E or M: silent upgrade to M.
		c.usePort()
		c.arr.Touch(lineNum)
		line.State = uint8(coherence.Modified)
		line.Dirty = true
		if h.st != nil {
			h.st.Cores[req.Core].L1DHits++
		}
		resp := Response{Token: req.Token, Addr: req.Addr, Type: req.Type, L1Hit: true}
		h.at(h.now+c.latency, func() { h.clients[req.Core].Deliver(h.now, resp) })
		return true
	}
	// Miss or S-state upgrade: needs a GetX at the directory. A GetX cannot
	// coalesce onto an outstanding GetS (it needs ownership): retry later.
	if m := c.mshr.Lookup(lineNum); m != nil {
		if c.mshrKind[lineNum] != coherence.GetX {
			return false
		}
		c.usePort()
		c.mshrMeta[lineNum] = append(c.mshrMeta[lineNum], waiter{token: req.Token, typ: req.Type})
		if h.st != nil {
			h.st.Cores[req.Core].L1DMisses++
		}
		return true
	}
	if c.mshr.Full() {
		return false
	}
	c.usePort()
	c.mshr.Alloc(lineNum)
	c.mshrKind[lineNum] = coherence.GetX
	c.mshrMeta[lineNum] = []waiter{{token: req.Token, typ: req.Type}}
	if h.st != nil {
		h.st.Cores[req.Core].L1DMisses++
	}
	h.sendToBank(req, lineNum, coherence.GetX)
	return true
}

// submitSpecRead handles InvisiSpec Spec-GetS transactions. They never
// change L1 state (not even LRU), never coalesce with demand misses, and are
// not bounded by the demand MSHR file (each in-flight USL has at most one).
func (h *Hierarchy) submitSpecRead(c *l1, req Request, lineNum uint64) bool {
	c.usePort()
	if line := c.arr.Lookup(lineNum); line != nil {
		// Served by the local L1 copy, which remains untouched (§VI-A2).
		resp := Response{Token: req.Token, Addr: req.Addr, Type: req.Type, L1Hit: true}
		h.at(h.now+c.latency, func() { h.clients[req.Core].Deliver(h.now, resp) })
		return true
	}
	h.sendSpecToBank(req, lineNum)
	return true
}

// submitIFetch handles instruction fetches.
func (h *Hierarchy) submitIFetch(req Request) bool {
	c := h.l1i[req.Core]
	if !c.portAvailable() {
		return false
	}
	lineNum := h.LineOf(req.Addr)
	if c.arr.Lookup(lineNum) != nil {
		c.usePort()
		c.arr.Touch(lineNum)
		resp := Response{Token: req.Token, Addr: req.Addr, Type: IFetch, L1Hit: true}
		h.at(h.now+c.latency, func() { h.clients[req.Core].Deliver(h.now, resp) })
		return true
	}
	if m := c.mshr.Lookup(lineNum); m != nil {
		c.usePort()
		c.mshrMeta[lineNum] = append(c.mshrMeta[lineNum], waiter{token: req.Token, typ: IFetch})
		return true
	}
	if c.mshr.Full() {
		return false
	}
	c.usePort()
	c.mshr.Alloc(lineNum)
	c.mshrKind[lineNum] = coherence.GetS
	c.mshrMeta[lineNum] = []waiter{{token: req.Token, typ: IFetch}}
	h.sendIFetchToBank(req, lineNum)
	return true
}

// submitIFetchSpec handles invisible instruction fetches (ProtectICache):
// an L1I hit is served without a replacement update; a miss reads through
// the LLC and DRAM without installing anywhere.
func (h *Hierarchy) submitIFetchSpec(req Request) bool {
	c := h.l1i[req.Core]
	if !c.portAvailable() {
		return false
	}
	c.usePort()
	lineNum := h.LineOf(req.Addr)
	if c.arr.Lookup(lineNum) != nil { // no Touch
		resp := Response{Token: req.Token, Addr: req.Addr, Type: req.Type, L1Hit: true}
		h.at(h.now+c.latency, func() { h.clients[req.Core].Deliver(h.now, resp) })
		return true
	}
	h.sendIFetchSpecToBank(req, lineNum)
	return true
}

// fillL1 installs a granted line into the L1 at the current cycle, issuing
// eviction (Put*) transactions and the core eviction callback for any
// victim, then wakes the coalesced waiters.
func (h *Hierarchy) fillL1(c *l1, req Request, lineNum uint64, grant coherence.State, servedLLCSB bool) {
	_, victim, hadVictim := c.arr.Insert(lineNum)
	line := c.arr.Lookup(lineNum)
	line.State = uint8(grant)
	line.Dirty = grant == coherence.Modified
	line.Prefetched = req.Token == prefetchToken
	if hadVictim && !c.instr {
		h.evictFromL1(c, victim)
	}
	c.mshr.Free(lineNum)
	delete(c.mshrKind, lineNum)
	waiters := c.mshrMeta[lineNum]
	delete(c.mshrMeta, lineNum)
	for _, w := range waiters {
		resp := Response{Token: w.token, Addr: req.Addr, Type: w.typ, FromLLCSB: servedLLCSB}
		h.clients[req.Core].Deliver(h.now, resp)
	}
}

// evictFromL1 handles a replacement victim: notify the core (conventional
// TSO implementations squash performed loads on eviction) and send the
// appropriate Put transaction to keep the directory precise.
func (h *Hierarchy) evictFromL1(c *l1, victim cache.Line) {
	h.clients[c.core].OnL1Evict(h.now, victim.LineNum)
	st := coherence.State(victim.State)
	kind := coherence.PutS
	bytes := h.cfg.CtrlMsgBytes
	if st == coherence.Exclusive || st == coherence.Modified {
		kind = coherence.PutM
		if victim.Dirty {
			bytes = h.cfg.DataMsgBytes
		}
	}
	home := h.homeBank(victim.LineNum)
	arrive := h.mesh.send(h.now, c.core, home, bytes, stats.TrafficWriteback)
	tx := &txn{kind: kind, core: c.core, lineNum: victim.LineNum, dirty: victim.Dirty}
	h.at(arrive, func() { h.bankEnqueue(h.bank[home], tx) })
}

// invalidateL1 drops a line from a core's L1 on a directory invalidation
// and fires the squash callback.
func (h *Hierarchy) invalidateL1(core int, lineNum uint64) {
	if h.l1d[core].arr.Invalidate(lineNum) {
		h.clients[core].OnInvalidate(h.now, lineNum)
	}
}

// downgradeL1 moves an owned line to Shared (GetS forward); clean or dirty,
// the data was written back by the transaction, so the copy becomes clean.
func (h *Hierarchy) downgradeL1(core int, lineNum uint64) {
	if line := h.l1d[core].arr.Lookup(lineNum); line != nil {
		line.State = uint8(coherence.Shared)
		line.Dirty = false
	}
}
