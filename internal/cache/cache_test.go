package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	a := NewArray(4, 2)
	a.Insert(0x10)
	if l := a.Lookup(0x10); l == nil || l.LineNum != 0x10 {
		t.Fatal("inserted line not found")
	}
	if a.Lookup(0x11) != nil {
		t.Fatal("phantom hit")
	}
}

func TestLRUEviction(t *testing.T) {
	a := NewArray(1, 2) // one set, two ways
	a.Insert(0)
	a.Insert(1)
	a.Touch(0) // 0 becomes MRU; 1 is now LRU
	_, ev, had := a.Insert(2)
	if !had || ev.LineNum != 1 {
		t.Fatalf("evicted %+v (had=%v), want line 1", ev, had)
	}
	if a.Lookup(0) == nil || a.Lookup(2) == nil || a.Lookup(1) != nil {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestLookupDoesNotTouchLRU(t *testing.T) {
	// This property is what lets Spec-GetS probe without leaving a trace.
	a := NewArray(1, 2)
	a.Insert(0) // order: 0
	a.Insert(1) // order: 1,0 → LRU is 0
	a.Lookup(0) // must NOT promote 0
	_, ev, had := a.Insert(2)
	if !had || ev.LineNum != 0 {
		t.Fatalf("evicted %+v, want line 0 — Lookup perturbed LRU", ev)
	}
}

func TestInsertExistingPromotes(t *testing.T) {
	a := NewArray(1, 2)
	a.Insert(0)
	a.Insert(1)
	_, _, had := a.Insert(0) // re-insert = touch
	if had {
		t.Fatal("re-insert must not evict")
	}
	_, ev, _ := a.Insert(2)
	if ev.LineNum != 1 {
		t.Fatalf("evicted %d, want 1", ev.LineNum)
	}
}

func TestInvalidateDemotes(t *testing.T) {
	a := NewArray(1, 2)
	a.Insert(0)
	a.Insert(1)
	if !a.Invalidate(1) {
		t.Fatal("Invalidate missed present line")
	}
	if a.Invalidate(1) {
		t.Fatal("Invalidate hit absent line")
	}
	// The freed way must be reused without evicting line 0.
	_, _, had := a.Insert(2)
	if had {
		t.Fatal("insert after invalidate evicted a live line")
	}
	if a.Lookup(0) == nil {
		t.Fatal("line 0 lost")
	}
}

func TestSetMapping(t *testing.T) {
	a := NewArray(8, 2)
	// Lines 8 sets apart collide.
	a.Insert(3)
	a.Insert(3 + 8)
	a.Insert(3 + 16) // evicts 3
	if a.Lookup(3) != nil {
		t.Fatal("line 3 should have been evicted by set conflict")
	}
	if a.Lookup(3+8) == nil || a.Lookup(3+16) == nil {
		t.Fatal("conflict set contents wrong")
	}
	// A line in a different set is unaffected.
	a.Insert(4)
	if a.Lookup(4) == nil {
		t.Fatal("line in different set missing")
	}
}

func TestLRUOrder(t *testing.T) {
	a := NewArray(1, 4)
	for _, ln := range []uint64{0, 1, 2, 3} {
		a.Insert(ln)
	}
	a.Touch(1)
	got := a.LRUOrder(0)
	want := []uint64{1, 3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LRUOrder = %v, want %v", got, want)
		}
	}
}

func TestCountAndForEach(t *testing.T) {
	a := NewArray(4, 2)
	for i := uint64(0); i < 5; i++ {
		a.Insert(i)
	}
	if a.Count() != 5 {
		t.Fatalf("Count = %d, want 5", a.Count())
	}
	sum := uint64(0)
	a.ForEach(func(l *Line) { sum += l.LineNum })
	if sum != 0+1+2+3+4 {
		t.Fatalf("ForEach sum = %d", sum)
	}
}

// quickLRU is a reference model: per-set slice ordered MRU-first.
type quickLRU struct {
	sets, ways int
	order      [][]uint64
}

func newQuickLRU(sets, ways int) *quickLRU {
	return &quickLRU{sets: sets, ways: ways, order: make([][]uint64, sets)}
}

func (m *quickLRU) access(ln uint64) {
	s := int(ln) & (m.sets - 1)
	set := m.order[s]
	for i, v := range set {
		if v == ln {
			copy(set[1:i+1], set[:i])
			set[0] = ln
			return
		}
	}
	if len(set) == m.ways {
		set = set[:m.ways-1]
	}
	m.order[s] = append([]uint64{ln}, set...)
}

func (m *quickLRU) contents(s int) []uint64 { return m.order[s] }

func TestArrayMatchesReferenceLRU(t *testing.T) {
	const sets, ways = 4, 4
	a := NewArray(sets, ways)
	ref := newQuickLRU(sets, ways)
	f := func(accesses []uint16) bool {
		for _, x := range accesses {
			ln := uint64(x % 64)
			a.Insert(ln)
			ref.access(ln)
		}
		for s := 0; s < sets; s++ {
			got := a.LRUOrder(s)
			want := ref.contents(s)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNewArrayPanics(t *testing.T) {
	for _, tc := range []struct{ sets, ways int }{{3, 2}, {0, 2}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewArray(%d,%d) did not panic", tc.sets, tc.ways)
				}
			}()
			NewArray(tc.sets, tc.ways)
		}()
	}
}

func TestMSHRAllocLookupFree(t *testing.T) {
	f := NewMSHRFile(2)
	m1 := f.Alloc(10)
	if m1 == nil {
		t.Fatal("alloc failed on empty file")
	}
	m1.Waiters = append(m1.Waiters, 100, 101)
	if f.Lookup(10) != m1 {
		t.Fatal("lookup missed")
	}
	m2 := f.Alloc(20)
	if m2 == nil || f.Alloc(30) != nil {
		t.Fatal("capacity accounting wrong")
	}
	if !f.Full() || f.InFlight() != 2 {
		t.Fatal("Full/InFlight wrong")
	}
	w := f.Free(10)
	if len(w) != 2 || w[0] != 100 || w[1] != 101 {
		t.Fatalf("Free returned %v", w)
	}
	if f.Lookup(10) != nil || f.Full() {
		t.Fatal("free did not release entry")
	}
	if f.Free(99) != nil {
		t.Fatal("freeing absent line returned waiters")
	}
}

func TestMSHRDropWaiter(t *testing.T) {
	f := NewMSHRFile(2)
	m := f.Alloc(10)
	m.Waiters = append(m.Waiters, 1, 2, 3)
	f.DropWaiter(2)
	if len(m.Waiters) != 2 || m.Waiters[0] != 1 || m.Waiters[1] != 3 {
		t.Fatalf("waiters after drop: %v", m.Waiters)
	}
	// Dropping an unknown token is a no-op.
	f.DropWaiter(42)
	if len(m.Waiters) != 2 {
		t.Fatal("unknown-token drop mutated waiters")
	}
	// The MSHR must remain allocated.
	if f.Lookup(10) == nil {
		t.Fatal("DropWaiter freed the MSHR")
	}
}

func TestMSHRFilePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMSHRFile(0) did not panic")
		}
	}()
	NewMSHRFile(0)
}
