package cache

// MSHR is one miss-status holding register: an outstanding miss on a line,
// with the IDs of the requests coalesced onto it. Waiter IDs are opaque to
// this package; the cache controller interprets them.
type MSHR struct {
	Valid   bool
	LineNum uint64
	// Issued marks that the miss request has been sent downstream.
	Issued bool
	// Waiters are the coalesced request tokens to wake when data returns.
	Waiters []uint64
}

// MSHRFile is a small fully-associative file of MSHRs.
type MSHRFile struct {
	entries []MSHR
	// Lifetime conservation counters: every successful Alloc must be paired
	// with exactly one Free, so allocs - frees == InFlight() at all times.
	// The invariant checker (internal/invariant) audits this.
	allocs uint64
	frees  uint64
}

// NewMSHRFile returns a file with n entries.
func NewMSHRFile(n int) *MSHRFile {
	if n <= 0 {
		panic("cache: MSHR file size must be positive")
	}
	return &MSHRFile{entries: make([]MSHR, n)}
}

// Lookup returns the MSHR tracking lineNum, or nil.
func (f *MSHRFile) Lookup(lineNum uint64) *MSHR {
	for i := range f.entries {
		if f.entries[i].Valid && f.entries[i].LineNum == lineNum {
			return &f.entries[i]
		}
	}
	return nil
}

// Alloc claims a free MSHR for lineNum. It returns nil when the file is full
// (the requester must retry later — structural hazard).
func (f *MSHRFile) Alloc(lineNum uint64) *MSHR {
	for i := range f.entries {
		if !f.entries[i].Valid {
			f.entries[i] = MSHR{Valid: true, LineNum: lineNum}
			f.allocs++
			return &f.entries[i]
		}
	}
	return nil
}

// Free releases the MSHR tracking lineNum and returns its waiters.
func (f *MSHRFile) Free(lineNum uint64) []uint64 {
	for i := range f.entries {
		if f.entries[i].Valid && f.entries[i].LineNum == lineNum {
			w := f.entries[i].Waiters
			f.entries[i] = MSHR{}
			f.frees++
			return w
		}
	}
	return nil
}

// InFlight returns the number of live entries.
func (f *MSHRFile) InFlight() int {
	n := 0
	for i := range f.entries {
		if f.entries[i].Valid {
			n++
		}
	}
	return n
}

// Full reports whether no entry is free.
func (f *MSHRFile) Full() bool { return f.InFlight() == len(f.entries) }

// Cap returns the file's entry count.
func (f *MSHRFile) Cap() int { return len(f.entries) }

// Accounting returns the lifetime allocate/release counters. Conservation
// requires allocs - frees == InFlight().
func (f *MSHRFile) Accounting() (allocs, frees uint64) { return f.allocs, f.frees }

// Lines returns the line numbers of all live entries (for consistency
// cross-checks against the cache controller's per-line bookkeeping).
func (f *MSHRFile) Lines() []uint64 {
	var out []uint64
	for i := range f.entries {
		if f.entries[i].Valid {
			out = append(out, f.entries[i].LineNum)
		}
	}
	return out
}

// DropWaiter removes a waiter token from whichever MSHR holds it (used when
// the waiting request is squashed). The MSHR itself stays allocated: the
// in-flight transaction still completes and installs the line.
func (f *MSHRFile) DropWaiter(token uint64) {
	for i := range f.entries {
		e := &f.entries[i]
		if !e.Valid {
			continue
		}
		for j, w := range e.Waiters {
			if w == token {
				e.Waiters = append(e.Waiters[:j], e.Waiters[j+1:]...)
				return
			}
		}
	}
}
