// Package cache provides the set-associative tag/state arrays and MSHR files
// used by every cache level of the simulated hierarchy. The arrays are
// timing/state-only: architectural values live in the machine's functional
// memory image (see internal/isa.Memory and DESIGN.md §1).
//
// Lookup and Touch are deliberately separate operations: InvisiSpec's
// Spec-GetS transactions must be able to probe a cache without perturbing
// replacement (LRU) state, since replacement information is itself a side
// channel the paper closes.
package cache

import "fmt"

// Line is one cache line's tag and coherence metadata. State is owned by the
// coherence protocol (package coherence defines the MESI encoding).
type Line struct {
	LineNum uint64 // address >> log2(lineSize)
	Valid   bool
	Dirty   bool
	State   uint8
	// Sharers is used only by directory entries embedded in LLC lines: a
	// bitmap of cores holding the line.
	Sharers uint64
	// Owner is the core that holds the line in E/M, or -1.
	Owner int
	// Prefetched marks an L1 line installed by the hardware prefetcher and
	// not yet demand-touched (the trigger tag of a tagged next-line
	// prefetcher).
	Prefetched bool
}

// Array is a set-associative cache with true-LRU replacement.
type Array struct {
	sets  int
	ways  int
	lines []Line  // sets*ways, row-major by set
	lru   []uint8 // per line: 0 = MRU, ways-1 = LRU
}

// NewArray builds an array with the given geometry. Sets must be a power of
// two.
func NewArray(sets, ways int) *Array {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets %d must be a positive power of two", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cache: ways %d must be positive", ways))
	}
	a := &Array{
		sets:  sets,
		ways:  ways,
		lines: make([]Line, sets*ways),
		lru:   make([]uint8, sets*ways),
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			a.lru[s*ways+w] = uint8(w)
		}
	}
	return a
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

func (a *Array) setOf(lineNum uint64) int { return int(lineNum) & (a.sets - 1) }

// Lookup returns the line holding lineNum, or nil. It does NOT update
// replacement state (see package comment).
func (a *Array) Lookup(lineNum uint64) *Line {
	s := a.setOf(lineNum)
	base := s * a.ways
	for w := 0; w < a.ways; w++ {
		l := &a.lines[base+w]
		if l.Valid && l.LineNum == lineNum {
			return l
		}
	}
	return nil
}

// Touch promotes lineNum to MRU. It is a no-op if the line is absent.
func (a *Array) Touch(lineNum uint64) {
	s := a.setOf(lineNum)
	base := s * a.ways
	for w := 0; w < a.ways; w++ {
		if a.lines[base+w].Valid && a.lines[base+w].LineNum == lineNum {
			a.promote(s, w)
			return
		}
	}
}

func (a *Array) promote(set, way int) {
	base := set * a.ways
	old := a.lru[base+way]
	for w := 0; w < a.ways; w++ {
		if a.lru[base+w] < old {
			a.lru[base+w]++
		}
	}
	a.lru[base+way] = 0
}

// Victim returns a pointer to the line that Insert would replace for
// lineNum: an invalid way if one exists, otherwise the LRU way. The caller
// can inspect it (e.g. to issue a writeback) before inserting.
func (a *Array) Victim(lineNum uint64) *Line {
	s := a.setOf(lineNum)
	base := s * a.ways
	// Prefer an invalid way.
	for w := 0; w < a.ways; w++ {
		if !a.lines[base+w].Valid {
			return &a.lines[base+w]
		}
	}
	// Otherwise the LRU way.
	for w := 0; w < a.ways; w++ {
		if int(a.lru[base+w]) == a.ways-1 {
			return &a.lines[base+w]
		}
	}
	panic("cache: no victim found") // unreachable: LRU orders are a permutation
}

// Insert places lineNum into its set, returning the new line and, if a valid
// line was displaced, a copy of the evicted line. The new line is promoted
// to MRU and starts Valid with zeroed metadata.
func (a *Array) Insert(lineNum uint64) (inserted *Line, evicted Line, hadEviction bool) {
	if l := a.Lookup(lineNum); l != nil {
		a.Touch(lineNum)
		return l, Line{}, false
	}
	v := a.Victim(lineNum)
	if v.Valid {
		evicted = *v
		hadEviction = true
	}
	*v = Line{LineNum: lineNum, Valid: true, Owner: -1}
	// Find the way index to promote.
	s := a.setOf(lineNum)
	base := s * a.ways
	for w := 0; w < a.ways; w++ {
		if &a.lines[base+w] == v {
			a.promote(s, w)
			break
		}
	}
	return v, evicted, hadEviction
}

// Invalidate drops lineNum from the array and demotes the slot to LRU so it
// is the next victim. It reports whether the line was present.
func (a *Array) Invalidate(lineNum uint64) bool {
	s := a.setOf(lineNum)
	base := s * a.ways
	for w := 0; w < a.ways; w++ {
		l := &a.lines[base+w]
		if l.Valid && l.LineNum == lineNum {
			*l = Line{}
			a.demote(s, w)
			return true
		}
	}
	return false
}

func (a *Array) demote(set, way int) {
	base := set * a.ways
	old := a.lru[base+way]
	for w := 0; w < a.ways; w++ {
		if a.lru[base+w] > old {
			a.lru[base+w]--
		}
	}
	a.lru[base+way] = uint8(a.ways - 1)
}

// ForEach calls fn on every valid line. fn must not insert or invalidate.
func (a *Array) ForEach(fn func(*Line)) {
	for i := range a.lines {
		if a.lines[i].Valid {
			fn(&a.lines[i])
		}
	}
}

// Count returns the number of valid lines (for tests and occupancy checks).
func (a *Array) Count() int {
	n := 0
	for i := range a.lines {
		if a.lines[i].Valid {
			n++
		}
	}
	return n
}

// LRUOrder returns the line numbers of the given set from MRU to LRU,
// including only valid ways. It exposes replacement state so tests can
// assert that Spec-GetS never perturbs it.
func (a *Array) LRUOrder(set int) []uint64 {
	out := make([]uint64, 0, a.ways)
	for rank := 0; rank < a.ways; rank++ {
		base := set * a.ways
		for w := 0; w < a.ways; w++ {
			if int(a.lru[base+w]) == rank && a.lines[base+w].Valid {
				out = append(out, a.lines[base+w].LineNum)
			}
		}
	}
	return out
}

// SetOf exposes the set index mapping (for tests constructing conflicts).
func (a *Array) SetOf(lineNum uint64) int { return a.setOf(lineNum) }
