package invariant_test

import (
	"errors"
	"strings"
	"testing"

	"invisispec/internal/config"
	"invisispec/internal/engine"
	"invisispec/internal/invariant"
	"invisispec/internal/isa"
	"invisispec/internal/sim"
)

// sharedCounterProg builds a program that read-modify-writes a shared
// counter iters times, then halts. Running it on two cores produces heavy
// coherence traffic (GetS/GetX ping-pong, L1 invalidations, LLC activity).
func sharedCounterProg(addr uint64, iters uint64) *isa.Program {
	return isa.NewBuilder("ctr").
		Li(1, addr).Li(9, iters).
		Label("l").
		Ld(8, 2, 1, 0).
		AddI(2, 2, 1).
		St(8, 1, 0, 2).
		AddI(9, 9, -1).
		Bne(9, 0, "l").
		Halt().MustBuild()
}

func newMachine(t *testing.T, d config.Defense) *sim.Machine {
	t.Helper()
	const shared = 0x20000
	progs := []*isa.Program{
		sharedCounterProg(shared, 300),
		sharedCounterProg(shared, 300),
	}
	r := config.Run{Machine: config.Default(len(progs)), Defense: d, Consistency: config.TSO}
	return sim.MustNew(r, progs)
}

// A contended two-core run must hold every invariant at a tight check
// stride, under both a baseline and an InvisiSpec configuration.
func TestCleanRunHoldsInvariants(t *testing.T) {
	for _, d := range []config.Defense{config.Base, config.ISSpectre} {
		m := newMachine(t, d)
		reg := m.EnableChecking(invariant.Options{Interval: 64, WatchdogK: 50000})
		if len(reg.Checkers()) < 7 {
			t.Fatalf("standard registry has %d checkers: %v", len(reg.Checkers()), reg.Checkers())
		}
		if err := m.RunToCompletion(6_000_000); err != nil {
			t.Fatalf("%v: clean run failed checking: %v", d, err)
		}
		if err := m.CheckNow(); err != nil {
			t.Fatalf("%v: final sweep failed: %v", d, err)
		}
	}
}

// A clean run with fault injection enabled must still hold every invariant:
// faults stretch timing but never break the protocol.
func TestFaultyRunHoldsInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		m := newMachine(t, config.ISSpectre)
		m.SeedFaults(seed)
		m.EnableChecking(invariant.Options{Interval: 64, WatchdogK: 100000})
		if err := m.RunToCompletion(12_000_000); err != nil {
			t.Fatalf("seed %d: faulty run failed checking: %v", seed, err)
		}
		if m.FaultStats().MaxSlip == 0 {
			t.Fatalf("seed %d: fault injector never fired", seed)
		}
	}
}

// Mutation self-test 1: a leaked MSHR entry (allocated with no side-table
// bookkeeping) must trip the mshr-conservation checker with a dump attached.
func TestMutationMSHRLeakCaught(t *testing.T) {
	m := newMachine(t, config.Base)
	m.EnableChecking(invariant.Options{Interval: 64})
	if err := m.RunInstructions(100, 1_000_000); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	m.Hier.InjectMSHRLeak(0)
	err := m.CheckNow()
	assertViolation(t, err, "mshr-conservation")
}

// Mutation self-test 2: the same line installed Modified in two L1Ds must
// trip the single-writer checker.
func TestMutationDuplicateMCaught(t *testing.T) {
	m := newMachine(t, config.Base)
	m.EnableChecking(invariant.Options{Interval: 64})
	if err := m.RunInstructions(100, 1_000_000); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	m.Hier.InjectDuplicateM(0, 1, 0x90000)
	err := m.CheckNow()
	assertViolation(t, err, "coherence-swmr")
}

// Mutation self-test 3: stalling every core's retirement stage must trip the
// forward-progress watchdog with a typed DeadlockError carrying per-core
// progress and a machine dump — under BOTH simulation kernels. The fast
// kernel fast-forwards through the wedged machine's idle windows (capped at
// the sweep stride), so this also proves a skipped-over stall is not
// mistaken for progress, and that detection lands on the identical cycle.
func TestMutationRetireStallCaught(t *testing.T) {
	var steppedErr, fastErr string
	for _, k := range []engine.Kernel{engine.KernelStepped, engine.KernelFast} {
		m := newMachine(t, config.Base)
		m.SetKernel(k)
		m.EnableChecking(invariant.Options{Interval: 64, WatchdogK: 3000})
		for _, c := range m.Cores {
			c.InjectRetireStall()
		}
		err := m.RunToCompletion(1_000_000)
		if err == nil {
			t.Fatalf("%v: stalled machine ran to completion", k)
		}
		if !errors.Is(err, invariant.ErrDeadlock) {
			t.Fatalf("%v: expected ErrDeadlock, got: %v", k, err)
		}
		var de *invariant.DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("%v: expected *DeadlockError, got %T", k, err)
		}
		if de.Window < 3000 {
			t.Fatalf("%v: deadlock window %d below configured K", k, de.Window)
		}
		if len(de.Retired) != 2 || len(de.PCs) != 2 {
			t.Fatalf("%v: deadlock snapshot incomplete: %+v", k, de)
		}
		if de.Dump == "" || !strings.Contains(de.Dump, "machine dump") {
			t.Fatalf("%v: deadlock dump missing: %q", k, de.Dump)
		}
		// The machine dump must carry the fast-forward counters so a deadlock
		// report shows whether the kernel was jumping idle windows when the
		// watchdog fired — under the fast kernel the stalled machine must
		// have jumped, under the stepped kernel the counters must stay zero.
		if !strings.Contains(de.Dump, "fast-forward:") {
			t.Fatalf("%v: deadlock dump missing fast-forward stats:\n%s", k, de.Dump)
		}
		if k == engine.KernelFast {
			if de.FFJumps == 0 || de.FFSkipped == 0 {
				t.Fatalf("fast kernel DeadlockError missing FF stats: jumps=%d skipped=%d", de.FFJumps, de.FFSkipped)
			}
		} else if de.FFJumps != 0 || de.FFSkipped != 0 {
			t.Fatalf("stepped kernel reported fast-forward activity: jumps=%d skipped=%d", de.FFJumps, de.FFSkipped)
		}
		if k == engine.KernelStepped {
			steppedErr = err.Error()
		} else {
			fastErr = err.Error()
		}
	}
	if steppedErr != fastErr {
		t.Fatalf("watchdog detection diverges between kernels:\nstepped: %s\nfast:    %s",
			steppedErr, fastErr)
	}
}

// A fully wedged machine under the fast kernel must not burn host time
// stepping dead cycles: with no checker stride to land on, the scheduler
// jumps straight between sweep boundaries, so detection needs only
// O(WatchdogK / Interval) ticks. This asserts the jumps actually happen in
// the stalled scenario (the behavioral half is TestMutationRetireStallCaught).
func TestRetireStallFastForwardEngages(t *testing.T) {
	m := newMachine(t, config.Base)
	m.EnableChecking(invariant.Options{Interval: 64, WatchdogK: 3000})
	for _, c := range m.Cores {
		c.InjectRetireStall()
	}
	if err := m.RunToCompletion(1_000_000); !errors.Is(err, invariant.ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got: %v", err)
	}
	jumps, skipped := m.FastForwardStats()
	if jumps == 0 || skipped == 0 {
		t.Fatalf("fast kernel never jumped across the stalled machine (jumps=%d skipped=%d)", jumps, skipped)
	}
}

// A violation surfaces out of the run loop itself (not only via CheckNow).
func TestViolationAbortsRunLoop(t *testing.T) {
	m := newMachine(t, config.Base)
	m.EnableChecking(invariant.Options{Interval: 64})
	if err := m.RunInstructions(50, 1_000_000); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	m.Hier.InjectDuplicateM(0, 1, 0x91000)
	err := m.RunToCompletion(6_000_000)
	assertViolation(t, err, "coherence-swmr")
}

// The watchdog must stay quiet across a legitimate completion, including the
// final sweep where every core is halted.
func TestWatchdogQuietWhenDone(t *testing.T) {
	m := newMachine(t, config.Base)
	m.EnableChecking(invariant.Options{Interval: 64, WatchdogK: 1000})
	if err := m.RunToCompletion(6_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := m.CheckNow(); err != nil {
			t.Fatalf("post-completion sweep %d: %v", i, err)
		}
	}
}

func assertViolation(t *testing.T, err error, checker string) {
	t.Helper()
	if err == nil {
		t.Fatal("seeded bug not caught")
	}
	if !errors.Is(err, invariant.ErrViolation) {
		t.Fatalf("expected ErrViolation, got: %v", err)
	}
	var ve *invariant.ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("expected *ViolationError, got %T", err)
	}
	if ve.Checker != checker {
		t.Fatalf("violation attributed to %q, want %q: %v", ve.Checker, checker, ve)
	}
	if ve.Dump == "" || !strings.Contains(ve.Dump, "machine dump") {
		t.Fatalf("violation dump missing: %q", ve.Dump)
	}
	if ve.Err == nil || ve.Err.Error() == "" {
		t.Fatal("violation has no diagnostic message")
	}
}
