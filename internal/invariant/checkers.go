package invariant

import (
	"fmt"

	"invisispec/internal/coherence"
)

// Standard returns the default checker set, in the order they run:
//
//	core-structural      ROB/LQ/SQ/WB occupancy bounds, circular-window
//	                     validity, sequence monotonicity, ROB<->LQ/SQ
//	                     cross-links, and write-buffer FIFO order (TSO:
//	                     one drain in flight, eager head popping).
//	mshr-conservation    per-L1 MSHR allocate==release accounting and
//	                     side-table consistency (a leaked entry shows up as
//	                     a live MSHR with no request kind).
//	event-conservation   hierarchy events scheduled == run + pending.
//	noc-conservation     mesh messages injected == delivered + in-flight.
//	coherence-swmr       single-writer/multiple-reader: at most one core
//	                     holds a line in E/M, and an owned line has no other
//	                     valid copy anywhere.
//	coherence-directory  every (untransitioning) L1 copy is registered in
//	                     the directory, and the inclusive LLC holds it.
//	invisispec-exclusivity
//	                     a line valid in a core's LLC-SB is resident in
//	                     neither the LLC nor that core's L1 (otherwise the
//	                     SB could serve stale data to a validation).
//
// Checks scan only L1-sized arrays and per-core side state — never the LLC
// banks — so a sweep is cheap enough to run every few thousand cycles.
func Standard() []Checker {
	return []Checker{
		{Name: "core-structural", Check: checkCoreStructural},
		{Name: "mshr-conservation", Check: checkMSHR},
		{Name: "event-conservation", Check: checkEvents},
		{Name: "noc-conservation", Check: checkNoC},
		{Name: "coherence-swmr", Check: checkSWMR},
		{Name: "coherence-directory", Check: checkDirectory},
		{Name: "invisispec-exclusivity", Check: checkLLCSBExclusive},
	}
}

func checkCoreStructural(t *Target) error {
	for _, c := range t.Cores {
		if err := c.StructuralCheck(); err != nil {
			return err
		}
	}
	return nil
}

func checkMSHR(t *Target) error {
	if errs := t.Hier.MSHRConsistency(); len(errs) > 0 {
		return fmt.Errorf("%s", errs[0])
	}
	return nil
}

func checkEvents(t *Target) error {
	sched, run, pending := t.Hier.EventAccounting()
	if sched != run+uint64(pending) {
		return fmt.Errorf("event conservation broken: scheduled=%d run=%d pending=%d",
			sched, run, pending)
	}
	return nil
}

func checkNoC(t *Target) error {
	inj, del, inflight := t.Hier.NoCAccounting()
	if inj != del+uint64(inflight) {
		return fmt.Errorf("NoC conservation broken: injected=%d delivered=%d inflight=%d",
			inj, del, inflight)
	}
	return nil
}

// l1copy is one core's valid L1D copy of a line.
type l1copy struct {
	core int
	st   coherence.State
}

// collectL1Copies builds the line -> copies map across every core's L1D.
// The map is L1-sized (at most cores x sets x ways entries).
func collectL1Copies(t *Target) map[uint64][]l1copy {
	copies := make(map[uint64][]l1copy)
	for i := range t.Cores {
		core := i
		t.Hier.ForEachL1DLine(core, func(ln uint64, st coherence.State) {
			copies[ln] = append(copies[ln], l1copy{core: core, st: st})
		})
	}
	return copies
}

// checkSWMR enforces single-writer/multiple-reader: a line held Exclusive or
// Modified by one core may have no other valid copy. Lines with an in-flight
// inclusive-LLC recall are exempt (the stale copy is already condemned; its
// invalidation event is scheduled), as are lines locked by a directory
// transaction (ownership legitimately in transit).
func checkSWMR(t *Target) error {
	for ln, cs := range collectL1Copies(t) {
		owners := 0
		for _, c := range cs {
			if c.st == coherence.Exclusive || c.st == coherence.Modified {
				owners++
			}
		}
		if owners == 0 || (owners == 1 && len(cs) == 1) {
			continue
		}
		if t.Hier.RecallPending(ln) || t.Hier.BankBusy(ln) {
			continue
		}
		return fmt.Errorf("SWMR broken for line %#x: %d owned copies among %d total %v",
			ln, owners, len(cs), describeCopies(cs))
	}
	return nil
}

// checkDirectory enforces that every L1D copy is (a) registered in the
// line's directory entry with the matching role and (b) backed by a resident
// LLC line (inclusivity). Both only hold when no transaction is mid-flight
// on the line, so busy and recall-pending lines are exempt.
func checkDirectory(t *Target) error {
	for ln, cs := range collectL1Copies(t) {
		if t.Hier.BankBusy(ln) || t.Hier.RecallPending(ln) {
			continue
		}
		present, dir := t.Hier.LLCLineDir(ln)
		if !present {
			return fmt.Errorf("inclusivity broken: line %#x cached in L1 %v but absent from LLC",
				ln, describeCopies(cs))
		}
		for _, c := range cs {
			switch c.st {
			case coherence.Exclusive, coherence.Modified:
				if dir.Owner != c.core {
					return fmt.Errorf(
						"directory broken: core%d holds line %#x in %v but directory owner is %d",
						c.core, ln, c.st, dir.Owner)
				}
			case coherence.Shared:
				if !dir.HasSharer(c.core) && dir.Owner != c.core {
					return fmt.Errorf(
						"directory broken: core%d holds line %#x Shared but is not registered (sharers=%#x owner=%d)",
						c.core, ln, dir.Sharers, dir.Owner)
				}
			default:
				return fmt.Errorf("core%d L1D line %#x in impossible state %v", c.core, ln, c.st)
			}
		}
	}
	return nil
}

// checkLLCSBExclusive enforces the InvisiSpec LLC-SB exclusivity invariant:
// a valid LLC-SB entry exists only for lines the Spec-GetS found absent from
// the LLC, and any later non-speculative fetch purges it before installing
// the line — so a line can never be valid in an LLC-SB and resident in the
// LLC (or, transitively through inclusion, in the owning core's L1) at once.
// A stale SB entry would let a validation hit data that memory has since
// changed.
func checkLLCSBExclusive(t *Target) error {
	if !t.Run.Machine.LLCSBEnabled {
		return nil
	}
	for i := range t.Cores {
		for _, ln := range t.Hier.LLCSBValidLines(i) {
			if t.Hier.BankBusy(ln) || t.Hier.RecallPending(ln) {
				continue
			}
			if present, _ := t.Hier.LLCLineDir(ln); present {
				return fmt.Errorf(
					"LLC-SB exclusivity broken: core%d LLC-SB holds line %#x which is resident in the LLC",
					i, ln)
			}
		}
	}
	return nil
}

func describeCopies(cs []l1copy) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = fmt.Sprintf("core%d=%v", c.core, c.st)
	}
	return out
}
