// Package invariant is the simulator's hardening layer: a registry of
// pluggable checkers that a sim.Machine runs every N cycles to audit
// structural, coherence, and InvisiSpec-specific invariants, plus a
// forward-progress watchdog that converts silent protocol deadlocks into
// typed errors carrying a full diagnostic dump.
//
// The checkers observe the machine only at cycle boundaries (between Step
// calls), where the event-driven hierarchy is quiescent for the cycle. Some
// coherence invariants have legitimate transient windows even then — a
// directory transaction holding a line's bank lock, or an inclusive-LLC
// recall whose L1 invalidations are still in flight — so those checks are
// gated on Hierarchy.BankBusy and Hierarchy.RecallPending rather than
// papered over with weaker assertions.
//
// The package deliberately has no dependency on internal/sim: the engine
// fills in a Target and calls Check/Watch, so checkers stay testable in
// isolation and the registry is reusable by any driver (harness, cmd, tests).
package invariant

import (
	"errors"
	"fmt"
	"strings"

	"invisispec/internal/config"
	"invisispec/internal/core"
	"invisispec/internal/memsys"
)

// Sentinel errors, matched with errors.Is through the typed wrappers below.
var (
	// ErrViolation is wrapped by every ViolationError.
	ErrViolation = errors.New("invariant violation")
	// ErrDeadlock is wrapped by every DeadlockError.
	ErrDeadlock = errors.New("forward progress lost")
)

// Target is the machine state a checker observes. The simulation engine
// fills one in per check; checkers must treat it as read-only.
type Target struct {
	Cycle uint64
	Run   config.Run
	Cores []*core.Core
	Hier  *memsys.Hierarchy
	// FFJumps and FFSkipped are the fast-forward kernel's skip statistics
	// (sim.Machine.FastForwardStats) at observation time, both zero under
	// the reference stepper. Diagnostics only — they appear in Dump and in
	// DeadlockError so a hang under the fast kernel shows how much idle
	// time was jumped before the stall.
	FFJumps   uint64
	FFSkipped uint64
}

// Checker is one pluggable invariant: Check returns nil when the invariant
// holds, or a descriptive error naming the first violation found.
type Checker struct {
	Name  string
	Check func(t *Target) error
}

// ViolationError reports a failed invariant check with the machine state
// attached.
type ViolationError struct {
	Checker string
	Cycle   uint64
	Err     error  // the checker's description of the violation
	Dump    string // core + hierarchy diagnostic dump
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("cycle %d: invariant %q violated: %v", e.Cycle, e.Checker, e.Err)
}

// Unwrap makes errors.Is(err, ErrViolation) true.
func (e *ViolationError) Unwrap() error { return ErrViolation }

// DeadlockError reports that no core retired an instruction for Window
// cycles while the machine was not done.
type DeadlockError struct {
	Cycle   uint64
	Window  uint64   // cycles since the last retirement anywhere
	Retired []uint64 // per-core retired counts at detection
	PCs     []int    // per-core fetch PCs at detection
	// FFJumps and FFSkipped snapshot the fast kernel's clock-jump stats at
	// detection (zero under the reference stepper), so hang triage can see
	// how many cycles were legitimately skipped before progress stopped.
	FFJumps   uint64
	FFSkipped uint64
	Dump      string // core + hierarchy diagnostic dump
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("cycle %d: no core retired an instruction in %d cycles (retired=%v pcs=%v)",
		e.Cycle, e.Window, e.Retired, e.PCs)
}

// Unwrap makes errors.Is(err, ErrDeadlock) true.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// Options tunes the registry.
type Options struct {
	// Interval is the cycle stride between full checker sweeps (default
	// 4096). Checks scan L1-sized state only, so the default costs well
	// under 1% of simulation time.
	Interval uint64
	// WatchdogK is the forward-progress window: if no core retires for K
	// cycles while the machine is not done, Watch returns a DeadlockError
	// (default 200000 — far above any legitimate stall in this simulator,
	// including a full write-buffer drain behind a DRAM-bound miss chain
	// under fault injection).
	WatchdogK uint64
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 4096
	}
	if o.WatchdogK == 0 {
		o.WatchdogK = 200000
	}
	return o
}

// Registry holds the active checkers and the watchdog state for one machine.
type Registry struct {
	opts     Options
	checkers []Checker

	// Watchdog state.
	lastRetired  []uint64
	lastProgress uint64
}

// NewRegistry returns a registry with the standard checker set (see
// Standard) and the given options.
func NewRegistry(opts Options) *Registry {
	r := &Registry{opts: opts.withDefaults()}
	for _, c := range Standard() {
		r.Register(c)
	}
	return r
}

// Register appends a checker to the sweep.
func (r *Registry) Register(c Checker) { r.checkers = append(r.checkers, c) }

// Interval returns the configured cycle stride between sweeps.
func (r *Registry) Interval() uint64 { return r.opts.Interval }

// Checkers returns the names of the registered checkers.
func (r *Registry) Checkers() []string {
	out := make([]string, len(r.checkers))
	for i, c := range r.checkers {
		out[i] = c.Name
	}
	return out
}

// Check runs every registered checker against the target and returns a
// *ViolationError (wrapping ErrViolation) for the first failure, with the
// diagnostic dump attached.
func (r *Registry) Check(t *Target) error {
	for _, c := range r.checkers {
		if err := c.Check(t); err != nil {
			return &ViolationError{Checker: c.Name, Cycle: t.Cycle, Err: err, Dump: Dump(t)}
		}
	}
	return nil
}

// Watch feeds the forward-progress watchdog. Call it at every sweep (it is
// O(cores)); it returns a *DeadlockError (wrapping ErrDeadlock) once no core
// has retired an instruction for WatchdogK cycles while done is false.
// Halted cores are expected to stop retiring; the watchdog only trips while
// the machine as a whole still owes work.
//
// The watchdog is skip-aware by construction: its window is the simulated
// cycle delta between sweeps that observed progress, not a count of Watch
// calls. The fast-forward kernel (internal/engine) caps every clock jump at
// the sweep stride, so sweeps land on the same cycles under both kernels and
// a k-cycle jump — legitimate idleness, cores stalled on far-future memory
// events — widens the window by exactly k, the same as k stepped idle
// cycles. A genuine retire stall therefore trips the watchdog at the
// identical cycle under either kernel (the mutation self-tests assert
// this), while fast-forwarding over healthy DRAM-bound windows cannot be
// mistaken for lost progress any more than stepping through them is.
func (r *Registry) Watch(t *Target, done bool) error {
	if r.lastRetired == nil {
		r.lastRetired = make([]uint64, len(t.Cores))
		r.lastProgress = t.Cycle
	}
	progressed := false
	for i, c := range t.Cores {
		retired, _, _ := c.Progress()
		if retired != r.lastRetired[i] {
			r.lastRetired[i] = retired
			progressed = true
		}
	}
	if progressed || done {
		r.lastProgress = t.Cycle
		return nil
	}
	if window := t.Cycle - r.lastProgress; window >= r.opts.WatchdogK {
		retired := make([]uint64, len(t.Cores))
		pcs := make([]int, len(t.Cores))
		for i, c := range t.Cores {
			retired[i], pcs[i], _ = c.Progress()
		}
		return &DeadlockError{
			Cycle: t.Cycle, Window: window, Retired: retired, PCs: pcs,
			FFJumps: t.FFJumps, FFSkipped: t.FFSkipped, Dump: Dump(t),
		}
	}
	return nil
}

// Dump renders the full diagnostic snapshot attached to violation and
// deadlock errors: per-core pipeline state (including the last squash) and
// the hierarchy summary.
func Dump(t *Target) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== machine dump at cycle %d ===\n", t.Cycle)
	fmt.Fprintf(&b, "fast-forward: %d jumps skipped %d cycles\n", t.FFJumps, t.FFSkipped)
	b.WriteString(t.Hier.DebugSummary())
	for i, c := range t.Cores {
		retired, pc, halted := c.Progress()
		fmt.Fprintf(&b, "--- core %d (retired=%d pc=%d halted=%v epoch=%d) ---\n",
			i, retired, pc, halted, c.Epoch())
		b.WriteString(core.DebugDump(c))
	}
	return b.String()
}
