package isa

import (
	"fmt"
	"sort"
)

// Builder assembles a Program from a fluent instruction stream. Branch
// targets are written as label names and resolved at Build time; errors
// (unknown labels, bad sizes) are accumulated and reported by Build.
type Builder struct {
	name    string
	insts   []Inst
	labels  map[string]int
	fixups  []fixup
	chunks  []InitChunk
	handler string
	errs    []error
}

type fixup struct {
	inst  int
	label string
	// imm selects which field the resolved label index patches: the
	// branch Target (false, the default) or the Imm of an OpLui (true,
	// emitted by LiLabel so code addresses can be stored to memory and
	// jumped through indirectly).
	imm bool
}

// NewBuilder returns an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: map[string]int{}}
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.insts) }

// Label binds name to the next instruction's index.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.insts)
	return b
}

// Handler designates the label of the exception handler.
func (b *Builder) Handler(label string) *Builder {
	b.handler = label
	return b
}

// Data registers an initial memory image chunk at addr.
func (b *Builder) Data(addr uint64, data []byte) *Builder {
	c := InitChunk{Addr: addr, Data: append([]byte(nil), data...)}
	b.chunks = append(b.chunks, c)
	return b
}

// DataU64 registers a sequence of little-endian 64-bit words at addr.
func (b *Builder) DataU64(addr uint64, words ...uint64) *Builder {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(w >> (8 * j))
		}
	}
	return b.Data(addr, buf)
}

func (b *Builder) emit(in Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

func (b *Builder) emitBranch(in Inst, label string) *Builder {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label})
	return b.emit(in)
}

func (b *Builder) checkSize(size uint8) uint8 {
	switch size {
	case 1, 2, 4, 8:
		return size
	}
	b.errs = append(b.errs, fmt.Errorf("isa: invalid access size %d", size))
	return 8
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Inst{Op: OpNop}) }

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpSub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpOr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpXor, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shl emits rd = rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpShl, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shr emits rd = rs1 >> rs2.
func (b *Builder) Shr(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpShr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpMul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd = rs1 / rs2 (all-ones on divide by zero).
func (b *Builder) Div(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpDiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// DivS emits rd = rs1 / rs2 signed (all-ones on divide by zero; MinInt64/-1
// wraps to MinInt64).
func (b *Builder) DivS(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpDivS, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// RemU emits rd = rs1 % rs2 unsigned (the dividend on remainder by zero).
func (b *Builder) RemU(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpRemU, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Slt emits rd = (rs1 < rs2) ? 1 : 0 (unsigned).
func (b *Builder) Slt(rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpSlt, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AddI emits rd = rs1 + imm.
func (b *Builder) AddI(rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Inst{Op: OpAddI, Rd: rd, Rs1: rs1, Imm: imm})
}

// AndI emits rd = rs1 & imm.
func (b *Builder) AndI(rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Inst{Op: OpAndI, Rd: rd, Rs1: rs1, Imm: imm})
}

// ShlI emits rd = rs1 << imm.
func (b *Builder) ShlI(rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Inst{Op: OpShlI, Rd: rd, Rs1: rs1, Imm: imm})
}

// ShrI emits rd = rs1 >> imm.
func (b *Builder) ShrI(rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Inst{Op: OpShrI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li loads the 64-bit immediate v into rd.
func (b *Builder) Li(rd uint8, v uint64) *Builder {
	return b.emit(Inst{Op: OpLui, Rd: rd, Imm: int64(v)})
}

// LiLabel loads the instruction index of label into rd, resolved at Build
// time. Combined with St/Ld and JmpI/Ret it lets a program materialize code
// addresses as data — the dispatch-slot idiom the indirect-branch attack
// templates use.
func (b *Builder) LiLabel(rd uint8, label string) *Builder {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label, imm: true})
	return b.emit(Inst{Op: OpLui, Rd: rd})
}

// Mov copies rs into rd.
func (b *Builder) Mov(rd, rs uint8) *Builder { return b.AddI(rd, rs, 0) }

// Ld emits rd = Mem[rs1+imm] with the given size in bytes.
func (b *Builder) Ld(size uint8, rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Inst{Op: OpLoad, Rd: rd, Rs1: rs1, Imm: imm, Size: b.checkSize(size)})
}

// LdSafe emits a load annotated as statically proven safe to execute
// speculatively (see Inst.Safe).
func (b *Builder) LdSafe(size uint8, rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Inst{Op: OpLoad, Rd: rd, Rs1: rs1, Imm: imm, Size: b.checkSize(size), Safe: true})
}

// LdPriv emits a privileged load that raises an exception at retirement.
func (b *Builder) LdPriv(size uint8, rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Inst{Op: OpLoad, Rd: rd, Rs1: rs1, Imm: imm, Size: b.checkSize(size), Priv: true})
}

// St emits Mem[rs1+imm] = rs2 with the given size in bytes.
func (b *Builder) St(size uint8, rs1 uint8, imm int64, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpStore, Rs1: rs1, Rs2: rs2, Imm: imm, Size: b.checkSize(size)})
}

// Beq branches to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 uint8, label string) *Builder {
	return b.emitBranch(Inst{Op: OpBeq, Rs1: rs1, Rs2: rs2}, label)
}

// Bne branches to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 uint8, label string) *Builder {
	return b.emitBranch(Inst{Op: OpBne, Rs1: rs1, Rs2: rs2}, label)
}

// Blt branches to label when rs1 < rs2 (unsigned).
func (b *Builder) Blt(rs1, rs2 uint8, label string) *Builder {
	return b.emitBranch(Inst{Op: OpBlt, Rs1: rs1, Rs2: rs2}, label)
}

// Bge branches to label when rs1 >= rs2 (unsigned).
func (b *Builder) Bge(rs1, rs2 uint8, label string) *Builder {
	return b.emitBranch(Inst{Op: OpBge, Rs1: rs1, Rs2: rs2}, label)
}

// Jmp jumps unconditionally to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitBranch(Inst{Op: OpJmp}, label)
}

// JmpI jumps to the instruction index held in rs1.
func (b *Builder) JmpI(rs1 uint8) *Builder {
	return b.emit(Inst{Op: OpJmpI, Rs1: rs1})
}

// Call jumps to label, writing the return address (PC+1) into rd.
func (b *Builder) Call(rd uint8, label string) *Builder {
	return b.emitBranch(Inst{Op: OpCall, Rd: rd}, label)
}

// Ret jumps to the return address held in rs1.
func (b *Builder) Ret(rs1 uint8) *Builder {
	return b.emit(Inst{Op: OpRet, Rs1: rs1})
}

// Fence emits a full memory fence.
func (b *Builder) Fence() *Builder { return b.emit(Inst{Op: OpFence}) }

// Acquire emits an RC acquire barrier.
func (b *Builder) Acquire() *Builder { return b.emit(Inst{Op: OpAcquire}) }

// Release emits an RC release barrier.
func (b *Builder) Release() *Builder { return b.emit(Inst{Op: OpRelease}) }

// RMW emits an atomic fetch-and-add: rd = Mem[rs1]; Mem[rs1] += rs2.
func (b *Builder) RMW(size uint8, rd, rs1, rs2 uint8) *Builder {
	return b.emit(Inst{Op: OpRMW, Rd: rd, Rs1: rs1, Rs2: rs2, Size: b.checkSize(size)})
}

// Prefetch emits a software prefetch of the line containing rs1+imm.
func (b *Builder) Prefetch(rs1 uint8, imm int64) *Builder {
	return b.emit(Inst{Op: OpPrefetch, Rs1: rs1, Imm: imm})
}

// Flush emits a clflush of the line containing rs1+imm.
func (b *Builder) Flush(rs1 uint8, imm int64) *Builder {
	return b.emit(Inst{Op: OpFlush, Rs1: rs1, Imm: imm})
}

// Cycle emits rd = <current cycle>, ordered after rs1 becomes available.
func (b *Builder) Cycle(rd, rs1 uint8) *Builder {
	return b.emit(Inst{Op: OpCycle, Rd: rd, Rs1: rs1})
}

// Halt stops the hardware thread.
func (b *Builder) Halt() *Builder { return b.emit(Inst{Op: OpHalt}) }

// Build resolves labels and returns the assembled program.
func (b *Builder) Build() (*Program, error) {
	insts := append([]Inst(nil), b.insts...)
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("isa: undefined label %q", f.label))
			continue
		}
		if f.imm {
			insts[f.inst].Imm = int64(pc)
		} else {
			insts[f.inst].Target = pc
		}
	}
	handler := -1
	if b.handler != "" {
		pc, ok := b.labels[b.handler]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("isa: undefined handler label %q", b.handler))
		} else {
			handler = pc
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	chunks := append([]InitChunk(nil), b.chunks...)
	sort.SliceStable(chunks, func(i, j int) bool { return chunks[i].Addr < chunks[j].Addr })
	p := &Program{
		Name:    b.name,
		Insts:   insts,
		Handler: handler,
		InitMem: chunks,
		Labels:  labels,
	}
	// Every assembled program carries the bb metadata extension
	// (basic-block leader/length marks); ISA-assisted defenses consume it
	// in the front end, everything else ignores it.
	p.ComputeBB()
	return p, nil
}

// MustBuild is Build that panics on assembly errors; it is intended for
// statically-known programs in examples and tests.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
