package isa

import (
	"errors"
	"fmt"
)

// Interp is a single-threaded functional interpreter — the golden model the
// out-of-order core is cross-checked against. It executes instructions one
// at a time, in program order, with no speculation, so its final
// architectural state is the reference for any single-threaded program.
type Interp struct {
	Prog *Program
	Mem  *Memory
	Regs [NumRegs]uint64
	PC   int
	// Halted is set once OpHalt retires or an unhandled exception occurs.
	Halted bool
	// Faults counts exceptions taken (privileged loads).
	Faults uint64
	// Retired counts architecturally executed instructions.
	Retired uint64
}

// ErrRunaway is returned when the step budget is exhausted before a halt.
var ErrRunaway = errors.New("isa: interpreter exceeded step budget")

// NewInterp builds an interpreter with the program image loaded into a fresh
// memory.
func NewInterp(p *Program) *Interp {
	m := NewMemory()
	m.LoadProgramImage(p)
	return &Interp{Prog: p, Mem: m, PC: p.Entry}
}

// Step executes one instruction. It reports whether the machine is still
// running afterwards.
func (it *Interp) Step() bool {
	if it.Halted {
		return false
	}
	in := it.Prog.At(it.PC)
	next := it.PC + 1
	switch {
	case in.Op == OpHalt:
		it.Halted = true
		it.Retired++
		return false
	case in.Op == OpLoad:
		if in.Priv {
			// Exception at retirement: architectural state is not modified
			// by the load; control transfers to the handler (or halts).
			it.Faults++
			it.Retired++
			if it.Prog.Handler >= 0 {
				it.PC = it.Prog.Handler
				return true
			}
			it.Halted = true
			return false
		}
		addr := AlignAddr(it.Regs[in.Rs1]+uint64(in.Imm), in.Size)
		it.Regs[in.Rd] = it.Mem.Read(addr, in.Size)
	case in.Op == OpStore:
		addr := AlignAddr(it.Regs[in.Rs1]+uint64(in.Imm), in.Size)
		it.Mem.Write(addr, in.Size, it.Regs[in.Rs2])
	case in.Op == OpRMW:
		addr := AlignAddr(it.Regs[in.Rs1], in.Size)
		old := it.Mem.Read(addr, in.Size)
		it.Mem.Write(addr, in.Size, old+it.Regs[in.Rs2])
		it.Regs[in.Rd] = old
	case in.Op == OpCycle:
		it.Regs[in.Rd] = 0 // the golden model has no clock
	case in.Op == OpPrefetch, in.Op == OpFlush, in.Op == OpFence, in.Op == OpAcquire,
		in.Op == OpRelease, in.Op == OpNop:
		// No architectural effect.
	case in.Op.IsCondBranch():
		if BranchTaken(in.Op, it.Regs[in.Rs1], it.Regs[in.Rs2]) {
			next = in.Target
		}
	case in.Op == OpJmp:
		next = in.Target
	case in.Op == OpJmpI:
		next = int(it.Regs[in.Rs1])
	case in.Op == OpCall:
		it.Regs[in.Rd] = uint64(it.PC + 1)
		next = in.Target
	case in.Op == OpRet:
		next = int(it.Regs[in.Rs1])
	case in.Op.IsALU():
		it.Regs[in.Rd] = EvalALU(in.Op, it.Regs[in.Rs1], it.Regs[in.Rs2], in.Imm)
	default:
		panic(fmt.Sprintf("isa: interpreter cannot execute %v", in.Op))
	}
	it.PC = next
	it.Retired++
	return true
}

// Run executes until halt or until maxSteps instructions have retired.
func (it *Interp) Run(maxSteps uint64) error {
	for i := uint64(0); i < maxSteps; i++ {
		if !it.Step() {
			return nil
		}
	}
	if it.Halted {
		return nil
	}
	return ErrRunaway
}
