// Package isa defines the small RISC instruction set executed by the
// simulator: instruction encodings, a label-resolving program builder, a
// sparse byte-addressed memory image, and a functional (golden-model)
// interpreter used to cross-check the out-of-order core.
//
// The ISA is deliberately minimal but complete enough to express every
// behaviour the InvisiSpec paper depends on: data-dependent conditional
// branches (mis-speculation sources), indirect jumps (BTB targets), calls and
// returns (RAS), loads and stores of 1/2/4/8 bytes, fences,
// acquire/release synchronisation for release consistency, atomic
// read-modify-writes, software prefetches, and privileged loads that fault at
// retirement (Meltdown-style exception sources).
package isa

import "fmt"

// NumRegs is the number of architectural integer registers. Register 0 is a
// normal general-purpose register (it is not hard-wired to zero).
const NumRegs = 32

// Op enumerates instruction opcodes.
type Op uint8

// Opcode values.
const (
	OpNop Op = iota
	// ALU register-register: Rd = Rs1 <op> Rs2.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMul
	OpDiv // unsigned divide; divide by zero yields all-ones (RISC-V DIVU)
	// OpDivS is signed divide with RISC-V edge semantics: divide by zero
	// yields all-ones; MinInt64 / -1 wraps to MinInt64 (no trap).
	OpDivS
	// OpRemU is unsigned remainder; remainder by zero yields the dividend
	// (RISC-V REMU).
	OpRemU
	OpSlt // set-less-than (unsigned): Rd = (Rs1 < Rs2) ? 1 : 0
	// ALU register-immediate: Rd = Rs1 <op> Imm.
	OpAddI
	OpAndI
	OpShlI
	OpShrI
	// OpLui loads a 64-bit immediate: Rd = Imm.
	OpLui
	// Memory. Effective address = AlignAddr(Rs1 + Imm, Size); accesses are
	// naturally aligned by construction. Size gives the width in bytes.
	OpLoad  // Rd = Mem[Rs1+Imm]
	OpStore // Mem[Rs1+Imm] = Rs2
	// Control flow. Direct targets are instruction indices resolved from labels.
	OpBeq // branch to Target if Rs1 == Rs2
	OpBne // branch to Target if Rs1 != Rs2
	OpBlt // branch to Target if Rs1 < Rs2 (unsigned)
	OpBge // branch to Target if Rs1 >= Rs2 (unsigned)
	OpJmp // unconditional direct jump to Target
	OpJmpI
	// OpJmpI is an indirect jump: PC = value of Rs1 (an instruction index).
	OpCall // Rd = PC+1; PC = Target (predicted via BTB, pushes RAS)
	OpRet  // PC = value of Rs1 (predicted via RAS)
	// Synchronisation.
	OpFence   // full fence: completes when all prior accesses performed
	OpAcquire // RC acquire barrier: later accesses may not move above it
	OpRelease // RC release barrier: completes after all prior accesses performed
	OpRMW     // atomic fetch-and-add: Rd = Mem[Rs1]; Mem[Rs1] += Rs2 (fence semantics)
	// OpPrefetch is a software prefetch of the line containing Rs1+Imm.
	OpPrefetch
	// OpFlush evicts the line containing Rs1+Imm from every cache
	// (clflush-style); it executes non-speculatively at the ROB head.
	OpFlush
	// OpCycle reads the cycle counter into Rd once Rs1 is available
	// (rdtsc-style, with an explicit serializing dependence — the timing
	// primitive cache side-channel attacks rely on). The functional
	// interpreter, which has no clock, returns 0.
	OpCycle
	// OpHalt stops the hardware thread.
	OpHalt
	numOps
)

// NumOps is the number of defined opcodes (exported for exhaustive tables in
// tests and the conformance generator).
const NumOps = int(numOps)

var opNames = [numOps]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpMul: "mul", OpDiv: "div",
	OpDivS: "divs", OpRemU: "remu", OpSlt: "slt", OpAddI: "addi", OpAndI: "andi", OpShlI: "shli",
	OpShrI: "shri", OpLui: "lui", OpLoad: "ld", OpStore: "st",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpJmp: "jmp",
	OpJmpI: "jmpi", OpCall: "call", OpRet: "ret", OpFence: "fence",
	OpAcquire: "acquire", OpRelease: "release", OpRMW: "rmw",
	OpPrefetch: "prefetch", OpFlush: "flush", OpCycle: "cycle", OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsALU reports whether the opcode is executed by an arithmetic unit.
func (o Op) IsALU() bool {
	switch o {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv,
		OpDivS, OpRemU, OpSlt, OpAddI, OpAndI, OpShlI, OpShrI, OpLui, OpNop:
		return true
	}
	return false
}

// IsBranch reports whether the opcode redirects control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpJmpI, OpCall, OpRet:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional direct branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsLoad reports whether the opcode reads data memory into a register.
func (o Op) IsLoad() bool { return o == OpLoad }

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool { return o == OpStore }

// IsMem reports whether the opcode accesses data memory (including
// prefetches and atomics).
func (o Op) IsMem() bool {
	switch o {
	case OpLoad, OpStore, OpRMW, OpPrefetch, OpFlush:
		return true
	}
	return false
}

// IsFence reports whether the opcode has ordering (fence-like) semantics.
func (o Op) IsFence() bool {
	switch o {
	case OpFence, OpAcquire, OpRelease, OpRMW:
		return true
	}
	return false
}

// HasDest reports whether the opcode writes a destination register.
func (o Op) HasDest() bool {
	switch o {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv,
		OpDivS, OpRemU, OpSlt, OpAddI, OpAndI, OpShlI, OpShrI, OpLui, OpLoad,
		OpCall, OpRMW, OpCycle:
		return true
	}
	return false
}

// Inst is one static instruction.
type Inst struct {
	Op     Op
	Rd     uint8 // destination register
	Rs1    uint8 // first source register (base register for memory ops)
	Rs2    uint8 // second source register (data register for stores)
	Imm    int64 // immediate / address offset
	Target int   // direct branch/jump/call target (instruction index)
	Size   uint8 // memory access width in bytes (1, 2, 4 or 8)
	Priv   bool  // privileged load: raises an exception at retirement
	// Safe marks a load statically proven unable to leak (e.g. its index
	// is masked in-bounds to non-secret data). The paper's §XI names
	// exploiting such proofs as future work; machines with
	// TrustSafeAnnotations set execute these loads as normal accesses
	// under InvisiSpec.
	Safe bool
}

// String renders the instruction in a readable assembly-like form.
func (in Inst) String() string {
	switch {
	case in.Op == OpLoad:
		p := ""
		if in.Priv {
			p = ".priv"
		}
		return fmt.Sprintf("ld%s.%d r%d, [r%d%+d]", p, in.Size, in.Rd, in.Rs1, in.Imm)
	case in.Op == OpStore:
		return fmt.Sprintf("st.%d [r%d%+d], r%d", in.Size, in.Rs1, in.Imm, in.Rs2)
	case in.Op == OpRMW:
		return fmt.Sprintf("rmw.%d r%d, [r%d], r%d", in.Size, in.Rd, in.Rs1, in.Rs2)
	case in.Op == OpPrefetch:
		return fmt.Sprintf("prefetch [r%d%+d]", in.Rs1, in.Imm)
	case in.Op == OpFlush:
		return fmt.Sprintf("flush [r%d%+d]", in.Rs1, in.Imm)
	case in.Op.IsCondBranch():
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.Rs1, in.Rs2, in.Target)
	case in.Op == OpJmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case in.Op == OpCall:
		return fmt.Sprintf("call r%d, @%d", in.Rd, in.Target)
	case in.Op == OpJmpI, in.Op == OpRet:
		return fmt.Sprintf("%s r%d", in.Op, in.Rs1)
	case in.Op == OpLui:
		return fmt.Sprintf("lui r%d, %d", in.Rd, in.Imm)
	case in.Op == OpAddI, in.Op == OpAndI, in.Op == OpShlI, in.Op == OpShrI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op.IsALU() && in.Op != OpNop:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	default:
		return in.Op.String()
	}
}

// EvalALU computes the result of an ALU opcode over the given operand values.
// For immediate forms, b is ignored and the instruction's immediate is used.
func EvalALU(op Op, a, b uint64, imm int64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case OpDivS:
		if b == 0 {
			return ^uint64(0)
		}
		// Go defines MinInt64 / -1 to wrap to MinInt64 for non-constant
		// operands, matching RISC-V's overflow rule, so no special case.
		return uint64(int64(a) / int64(b))
	case OpRemU:
		if b == 0 {
			return a
		}
		return a % b
	case OpSlt:
		if a < b {
			return 1
		}
		return 0
	case OpAddI:
		return a + uint64(imm)
	case OpAndI:
		return a & uint64(imm)
	case OpShlI:
		return a << (uint64(imm) & 63)
	case OpShrI:
		return a >> (uint64(imm) & 63)
	case OpLui:
		return uint64(imm)
	case OpNop:
		return 0
	}
	panic(fmt.Sprintf("isa: EvalALU on non-ALU op %v", op))
}

// AlignAddr aligns a computed memory address down to the access width's
// natural boundary. The ISA defines every 1/2/4/8-byte access as naturally
// aligned: hardware that tracks data at cache-line granularity (the LSQ's
// forwarding masks, the speculative buffer's 64-byte lines) relies on no
// access straddling a line, and the golden interpreter applies the same
// masking so both sides compute identical effective addresses.
func AlignAddr(addr uint64, size uint8) uint64 {
	if size == 0 {
		return addr
	}
	return addr &^ (uint64(size) - 1)
}

// BranchTaken evaluates a conditional branch's outcome over operand values.
func BranchTaken(op Op, a, b uint64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return a < b
	case OpBge:
		return a >= b
	}
	panic(fmt.Sprintf("isa: BranchTaken on non-conditional op %v", op))
}

// Program is an assembled program: a static instruction sequence plus the
// initial data image and metadata.
type Program struct {
	Name    string
	Insts   []Inst
	Entry   int // initial PC (instruction index)
	Handler int // exception handler PC, or -1 to halt on exceptions
	// InitMem holds the initial contents of data memory as (address, bytes)
	// pairs, applied in order when a machine loads the program.
	InitMem []InitChunk
	// Labels maps label names to instruction indices (useful in tests).
	Labels map[string]int
	// BlockLen is the bb metadata extension: BlockLen[i] > 0 marks
	// instruction i as a basic-block leader and gives the block's length
	// in instructions; 0 marks a block-interior instruction. The builder
	// computes it for every assembled program (ComputeBB); hand-built
	// programs may leave it nil, in which case consumers fall back to the
	// static computation (BlockLeaders). The metadata is purely a
	// front-end hint — the golden interpreter ignores it, so programs
	// with and without it are architecturally identical.
	BlockLen []int
}

// InitChunk is an initial-data segment of a program image.
type InitChunk struct {
	Addr uint64
	Data []byte
}

// At returns the instruction at pc, or a halt if pc is out of range (fetch
// down a wrong path may run off the end of the program).
func (p *Program) At(pc int) Inst {
	if pc < 0 || pc >= len(p.Insts) {
		return Inst{Op: OpHalt}
	}
	return p.Insts[pc]
}

// Valid reports whether pc addresses a real instruction.
func (p *Program) Valid(pc int) bool { return pc >= 0 && pc < len(p.Insts) }

// BlockLeaders returns, per instruction, whether it starts a basic block.
// When the program carries bb metadata (BlockLen, set by the builder) the
// leaders are read from it; otherwise they are computed from static
// control flow: the entry point, the exception handler, every label
// (labels are the only legal indirect-jump targets in builder-assembled
// programs), every direct branch/jump/call target, and the instruction
// after every control-flow instruction (a branch always terminates its
// block). Dynamic indirect targets that coincide with none of these are
// treated as block-interior — a conservative under-approximation for
// schemes that stall at block boundaries, never an architectural change.
func (p *Program) BlockLeaders() []bool {
	n := len(p.Insts)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n)
	if p.BlockLen != nil {
		for i := 0; i < n && i < len(p.BlockLen); i++ {
			leader[i] = p.BlockLen[i] > 0
		}
		return leader
	}
	mark := func(i int) {
		if i >= 0 && i < n {
			leader[i] = true
		}
	}
	mark(p.Entry)
	mark(p.Handler)
	for _, idx := range p.Labels {
		mark(idx)
	}
	for i, in := range p.Insts {
		if !in.Op.IsBranch() {
			continue
		}
		mark(i + 1)
		switch in.Op {
		case OpJmpI, OpRet:
			// Indirect: target unknown statically (labels cover the
			// builder's jump tables; return sites are call.next, already
			// marked as post-control leaders).
		default:
			mark(in.Target)
		}
	}
	return leader
}

// ComputeBB fills in the bb metadata from the program's block leaders:
// BlockLen[i] is the distance from leader i to the next leader (or the
// end of the program), 0 for block-interior instructions. The builder
// calls it on every assembled program; it is idempotent and safe to call
// on hand-built programs too.
func (p *Program) ComputeBB() {
	p.BlockLen = nil // force BlockLeaders to recompute from control flow
	leaders := p.BlockLeaders()
	p.BlockLen = make([]int, len(leaders))
	for i, isLeader := range leaders {
		if !isLeader {
			continue
		}
		end := i + 1
		for end < len(leaders) && !leaders[end] {
			end++
		}
		p.BlockLen[i] = end - i
	}
}
