package isa

// PageSize is the granularity of the sparse memory image. It matches the
// simulated virtual-memory page size used by the TLB model.
const PageSize = 4096

// Memory is a sparse, byte-addressed functional memory image. The timing
// model (caches, coherence) is tag/state-only; architectural values live
// here. Loads read it when they perform; stores write it when they drain
// from the write buffer having obtained ownership, which is the moment a
// store becomes globally visible under the simulated coherence protocol.
//
// Memory is not safe for concurrent use; the simulation engine is
// single-goroutine and deterministic by design.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// NewMemory returns an empty memory image. Unwritten bytes read as zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[PageSize]byte {
	pn := addr / PageSize
	p := m.pages[pn]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr%PageSize]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr%PageSize] = b
}

// Read returns the little-endian unsigned value of the given byte width at
// addr. Width must be 1, 2, 4 or 8.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low `size` bytes of v little-endian at addr.
func (m *Memory) Write(addr uint64, size uint8, v uint64) {
	for i := uint8(0); i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.ByteAt(addr + uint64(i))
	}
	return out
}

// SetBytes stores data starting at addr.
func (m *Memory) SetBytes(addr uint64, data []byte) {
	for i, b := range data {
		m.SetByte(addr+uint64(i), b)
	}
}

// LoadProgramImage applies a program's initial data chunks.
func (m *Memory) LoadProgramImage(p *Program) {
	for _, c := range p.InitMem {
		m.SetBytes(c.Addr, c.Data)
	}
}

// Footprint returns the number of distinct pages touched so far.
func (m *Memory) Footprint() int { return len(m.pages) }
