package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                              Op
		alu, branch, load, store, fence bool
	}{
		{OpAdd, true, false, false, false, false},
		{OpLui, true, false, false, false, false},
		{OpLoad, false, false, true, false, false},
		{OpStore, false, false, false, true, false},
		{OpBeq, false, true, false, false, false},
		{OpJmpI, false, true, false, false, false},
		{OpRet, false, true, false, false, false},
		{OpFence, false, false, false, false, true},
		{OpRMW, false, false, false, false, true},
		{OpAcquire, false, false, false, false, true},
	}
	for _, c := range cases {
		if got := c.op.IsALU(); got != c.alu {
			t.Errorf("%v IsALU = %v, want %v", c.op, got, c.alu)
		}
		if got := c.op.IsBranch(); got != c.branch {
			t.Errorf("%v IsBranch = %v, want %v", c.op, got, c.branch)
		}
		if got := c.op.IsLoad(); got != c.load {
			t.Errorf("%v IsLoad = %v, want %v", c.op, got, c.load)
		}
		if got := c.op.IsStore(); got != c.store {
			t.Errorf("%v IsStore = %v, want %v", c.op, got, c.store)
		}
		if got := c.op.IsFence(); got != c.fence {
			t.Errorf("%v IsFence = %v, want %v", c.op, got, c.fence)
		}
	}
}

func TestEvalALU(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		imm  int64
		want uint64
	}{
		{OpAdd, 3, 4, 0, 7},
		{OpSub, 3, 4, 0, ^uint64(0)},
		{OpAnd, 0xF0, 0x3C, 0, 0x30},
		{OpOr, 0xF0, 0x0C, 0, 0xFC},
		{OpXor, 0xFF, 0x0F, 0, 0xF0},
		{OpShl, 1, 65, 0, 2}, // shift amount masked to 6 bits
		{OpShr, 8, 2, 0, 2},
		{OpMul, 7, 6, 0, 42},
		{OpDiv, 42, 6, 0, 7},
		{OpDiv, 42, 0, 0, ^uint64(0)},
		{OpSlt, 1, 2, 0, 1},
		{OpSlt, 2, 1, 0, 0},
		{OpAddI, 10, 99, -3, 7},
		{OpAndI, 0xFF, 99, 0x0F, 0x0F},
		{OpShlI, 1, 99, 4, 16},
		{OpShrI, 16, 99, 4, 1},
		{OpLui, 99, 99, 1234, 1234},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d, %d) = %d, want %d", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{OpBeq, 5, 5, true}, {OpBeq, 5, 6, false},
		{OpBne, 5, 6, true}, {OpBne, 5, 5, false},
		{OpBlt, 5, 6, true}, {OpBlt, 6, 5, false}, {OpBlt, 5, 5, false},
		{OpBge, 6, 5, true}, {OpBge, 5, 5, true}, {OpBge, 4, 5, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EvalALU(OpLoad) did not panic")
		}
	}()
	EvalALU(OpLoad, 0, 0, 0)
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Write(100, 8, 0x1122334455667788)
	if got := m.Read(100, 8); got != 0x1122334455667788 {
		t.Fatalf("Read(100,8) = %#x", got)
	}
	if got := m.Read(100, 4); got != 0x55667788 {
		t.Fatalf("Read(100,4) = %#x", got)
	}
	if got := m.Read(104, 4); got != 0x11223344 {
		t.Fatalf("Read(104,4) = %#x", got)
	}
	if got := m.Read(100, 1); got != 0x88 {
		t.Fatalf("Read(100,1) = %#x", got)
	}
}

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if got := m.Read(1<<40, 8); got != 0 {
		t.Fatalf("unwritten memory read %#x, want 0", got)
	}
	if m.Footprint() != 0 {
		t.Fatalf("reads must not allocate pages; footprint = %d", m.Footprint())
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(PageSize - 3)
	m.Write(addr, 8, 0xAABBCCDDEEFF0011)
	if got := m.Read(addr, 8); got != 0xAABBCCDDEEFF0011 {
		t.Fatalf("cross-page read = %#x", got)
	}
	if m.Footprint() != 2 {
		t.Fatalf("footprint = %d, want 2 pages", m.Footprint())
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64, szSel uint8) bool {
		addr %= 1 << 30
		size := []uint8{1, 2, 4, 8}[szSel%4]
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want &= (1 << (8 * uint(size))) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderLabelsAndData(t *testing.T) {
	b := NewBuilder("t")
	b.Li(1, 10).
		Label("loop").
		AddI(1, 1, -1).
		Bne(1, 0, "loop").
		Halt().
		DataU64(0x1000, 42, 43)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["loop"] != 1 {
		t.Fatalf("label loop at %d, want 1", p.Labels["loop"])
	}
	if p.Insts[2].Target != 1 {
		t.Fatalf("branch target %d, want 1", p.Insts[2].Target)
	}
	if len(p.InitMem) != 1 || p.InitMem[0].Addr != 0x1000 || len(p.InitMem[0].Data) != 16 {
		t.Fatalf("bad init chunks: %+v", p.InitMem)
	}
	m := NewMemory()
	m.LoadProgramImage(p)
	if m.Read(0x1008, 8) != 43 {
		t.Fatalf("image word = %d, want 43", m.Read(0x1008, 8))
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("t").Jmp("nowhere").Build(); err == nil {
		t.Error("undefined label not reported")
	}
	if _, err := NewBuilder("t").Label("a").Label("a").Build(); err == nil {
		t.Error("duplicate label not reported")
	}
	if _, err := NewBuilder("t").Handler("missing").Build(); err == nil {
		t.Error("undefined handler not reported")
	}
	if _, err := NewBuilder("t").Ld(3, 1, 2, 0).Build(); err == nil {
		t.Error("invalid size not reported")
	}
}

func TestProgramAtOutOfRange(t *testing.T) {
	p := NewBuilder("t").Nop().MustBuild()
	if got := p.At(-1).Op; got != OpHalt {
		t.Errorf("At(-1) = %v, want halt", got)
	}
	if got := p.At(99).Op; got != OpHalt {
		t.Errorf("At(99) = %v, want halt", got)
	}
	if !p.Valid(0) || p.Valid(1) {
		t.Error("Valid range wrong")
	}
}

func TestInterpCountdownLoop(t *testing.T) {
	p := NewBuilder("t").
		Li(1, 5).
		Li(2, 0).
		Label("loop").
		Add(2, 2, 1).
		AddI(1, 1, -1).
		Bne(1, 0, "loop").
		Li(3, 0x2000).
		St(8, 3, 0, 2).
		Halt().
		MustBuild()
	it := NewInterp(p)
	if err := it.Run(1000); err != nil {
		t.Fatal(err)
	}
	if it.Regs[2] != 15 {
		t.Fatalf("sum = %d, want 15", it.Regs[2])
	}
	if got := it.Mem.Read(0x2000, 8); got != 15 {
		t.Fatalf("stored sum = %d, want 15", got)
	}
}

func TestInterpCallRetAndIndirect(t *testing.T) {
	// main: call f; after return r5 = 7; jump-table dispatch via JmpI.
	b := NewBuilder("t")
	b.Call(30, "f").
		Li(5, 7).
		Li(6, 0). // index into table
		Li(7, 0).
		Jmp("dispatch")
	b.Label("f").Li(4, 99).Ret(30)
	b.Label("dispatch").
		Li(8, 0)
	// Compute target = table[0] loaded from memory.
	b.Li(9, 0x3000).
		Ld(8, 10, 9, 0).
		JmpI(10)
	b.Label("case0").Li(11, 123).Halt()
	p := b.MustBuild()
	p.InitMem = append(p.InitMem, InitChunk{Addr: 0x3000, Data: u64le(uint64(p.Labels["case0"]))})
	it := NewInterp(p)
	if err := it.Run(1000); err != nil {
		t.Fatal(err)
	}
	if it.Regs[4] != 99 || it.Regs[5] != 7 || it.Regs[11] != 123 {
		t.Fatalf("regs = r4:%d r5:%d r11:%d", it.Regs[4], it.Regs[5], it.Regs[11])
	}
}

func u64le(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func TestInterpRMW(t *testing.T) {
	p := NewBuilder("t").
		Li(1, 0x4000).
		Li(2, 5).
		RMW(8, 3, 1, 2).
		RMW(8, 4, 1, 2).
		Halt().
		MustBuild()
	it := NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[3] != 0 || it.Regs[4] != 5 {
		t.Fatalf("rmw results %d,%d want 0,5", it.Regs[3], it.Regs[4])
	}
	if got := it.Mem.Read(0x4000, 8); got != 10 {
		t.Fatalf("mem = %d, want 10", got)
	}
}

func TestInterpPrivLoadFaultsToHandler(t *testing.T) {
	p := NewBuilder("t").
		Li(1, 0x5000).
		LdPriv(8, 2, 1, 0).
		Li(3, 1). // skipped: fault redirects
		Halt().
		Label("handler").
		Li(4, 0xDEAD).
		Halt().
		Handler("handler").
		MustBuild()
	it := NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[2] != 0 {
		t.Fatalf("privileged load modified architectural state: r2=%d", it.Regs[2])
	}
	if it.Regs[3] != 0 {
		t.Fatal("instruction after fault executed")
	}
	if it.Regs[4] != 0xDEAD {
		t.Fatal("handler did not run")
	}
	if it.Faults != 1 {
		t.Fatalf("faults = %d, want 1", it.Faults)
	}
}

func TestInterpPrivLoadHaltsWithoutHandler(t *testing.T) {
	p := NewBuilder("t").
		Li(1, 0x5000).
		LdPriv(8, 2, 1, 0).
		Li(3, 1).
		Halt().
		MustBuild()
	it := NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if !it.Halted || it.Regs[3] != 0 {
		t.Fatal("unhandled fault did not halt")
	}
}

func TestInterpRunaway(t *testing.T) {
	p := NewBuilder("t").Label("x").Jmp("x").MustBuild()
	it := NewInterp(p)
	if err := it.Run(100); err != ErrRunaway {
		t.Fatalf("err = %v, want ErrRunaway", err)
	}
}

func TestInstString(t *testing.T) {
	// Smoke-test the formatter on every op so broken cases show up.
	insts := []Inst{
		{Op: OpLoad, Rd: 1, Rs1: 2, Imm: 8, Size: 4},
		{Op: OpLoad, Rd: 1, Rs1: 2, Imm: 8, Size: 8, Priv: true},
		{Op: OpStore, Rs1: 2, Rs2: 3, Imm: -8, Size: 8},
		{Op: OpRMW, Rd: 1, Rs1: 2, Rs2: 3, Size: 8},
		{Op: OpPrefetch, Rs1: 4, Imm: 64},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Target: 7},
		{Op: OpJmp, Target: 3},
		{Op: OpCall, Rd: 30, Target: 9},
		{Op: OpJmpI, Rs1: 5},
		{Op: OpRet, Rs1: 30},
		{Op: OpLui, Rd: 3, Imm: 42},
		{Op: OpAddI, Rd: 3, Rs1: 4, Imm: -1},
		{Op: OpAdd, Rd: 3, Rs1: 4, Rs2: 5},
		{Op: OpFence},
		{Op: OpHalt},
	}
	for _, in := range insts {
		if s := in.String(); s == "" {
			t.Errorf("empty String() for %v", in.Op)
		}
	}
}

func TestBuilderExtendedOps(t *testing.T) {
	p := NewBuilder("ext").
		LdSafe(8, 1, 2, 16).
		Flush(3, 64).
		Cycle(4, 1).
		Halt().
		MustBuild()
	if !p.Insts[0].Safe || p.Insts[0].Op != OpLoad {
		t.Error("LdSafe lost its annotation")
	}
	if p.Insts[1].Op != OpFlush || p.Insts[1].Imm != 64 {
		t.Error("Flush encoding wrong")
	}
	if p.Insts[2].Op != OpCycle || p.Insts[2].Rd != 4 || p.Insts[2].Rs1 != 1 {
		t.Error("Cycle encoding wrong")
	}
	// Both execute as no-ops/zero in the golden model.
	it := NewInterp(p)
	if err := it.Run(10); err != nil {
		t.Fatal(err)
	}
	if it.Regs[4] != 0 {
		t.Error("interp OpCycle must read 0")
	}
	// Formatter smoke test for the new ops.
	for _, in := range []Inst{{Op: OpFlush, Rs1: 1}, {Op: OpCycle, Rd: 2, Rs1: 3}} {
		if in.String() == "" {
			t.Error("empty format")
		}
	}
}

// TestALUEdgeSemantics pins the agreed divide/multiply/shift edge cases.
// EvalALU is shared by the interpreter and the core's exec unit, so these
// rows define the architecture for both sides (RISC-V M-extension rules:
// divide by zero yields all-ones for quotients and the dividend for
// remainders; signed MinInt64 / -1 wraps; multiplies and shifts wrap
// modulo 2^64 with shift counts masked to 6 bits).
func TestALUEdgeSemantics(t *testing.T) {
	const minI64 = uint64(1) << 63 // math.MinInt64 as a bit pattern
	cases := []struct {
		name string
		op   Op
		a, b uint64
		want uint64
	}{
		{"div-by-zero", OpDiv, 7, 0, ^uint64(0)},
		{"div-zero-by-zero", OpDiv, 0, 0, ^uint64(0)},
		{"div-basic", OpDiv, 100, 7, 14},
		{"divs-by-zero", OpDivS, 7, 0, ^uint64(0)},
		{"divs-neg-by-zero", OpDivS, negU64(7), 0, ^uint64(0)},
		{"divs-overflow-wraps", OpDivS, minI64, ^uint64(0), minI64},
		{"divs-basic-neg", OpDivS, negU64(100), 7, negU64(14)},
		{"divs-neg-divisor", OpDivS, 100, negU64(7), negU64(14)},
		{"remu-by-zero-yields-dividend", OpRemU, 12345, 0, 12345},
		{"remu-basic", OpRemU, 100, 7, 2},
		{"remu-max", OpRemU, ^uint64(0), minI64, minI64 - 1},
		{"mul-wraps", OpMul, minI64, 2, 0},
		{"mul-neg-identity", OpMul, ^uint64(0), ^uint64(0), 1},
		{"shl-count-masked", OpShl, 1, 64, 1},
		{"shl-count-63", OpShl, 1, 63, minI64},
		{"shr-count-masked", OpShr, minI64, 65, minI64 >> 1},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b, 0); got != c.want {
			t.Errorf("%s: EvalALU(%v, %#x, %#x) = %#x, want %#x",
				c.name, c.op, c.a, c.b, got, c.want)
		}
	}
	// The same rows must hold end-to-end through the interpreter, which
	// proves the golden model routes these ops through EvalALU.
	for _, c := range cases {
		p := NewBuilder("edge").
			Li(1, c.a).
			Li(2, c.b).
			MustBuild()
		p.Insts = append(p.Insts, Inst{Op: c.op, Rd: 3, Rs1: 1, Rs2: 2}, Inst{Op: OpHalt})
		it := NewInterp(p)
		if err := it.Run(10); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if it.Regs[3] != c.want {
			t.Errorf("%s: interp got %#x, want %#x", c.name, it.Regs[3], c.want)
		}
	}
}

// TestAlignAddr pins the natural-alignment rule shared by the interpreter
// and the core's address generation.
func TestAlignAddr(t *testing.T) {
	cases := []struct {
		addr uint64
		size uint8
		want uint64
	}{
		{0x1003, 1, 0x1003},
		{0x1003, 2, 0x1002},
		{0x1003, 4, 0x1000},
		{0x1007, 8, 0x1000},
		{0x1038, 8, 0x1038}, // already aligned
		{0x103f, 8, 0x1038}, // would straddle a line unaligned
		{0x1040, 4, 0x1040},
		{0xffffffffffffffff, 8, 0xfffffffffffffff8},
		{0x55, 0, 0x55}, // size-0 (prefetch-style Inst) passes through
	}
	for _, c := range cases {
		if got := AlignAddr(c.addr, c.size); got != c.want {
			t.Errorf("AlignAddr(%#x, %d) = %#x, want %#x", c.addr, c.size, got, c.want)
		}
	}
	// Aligned accesses never straddle a 64-byte line: the LSQ forwarding
	// masks and the speculative buffer rely on this.
	for size := uint8(1); size <= 8; size *= 2 {
		for addr := uint64(0); addr < 256; addr++ {
			a := AlignAddr(addr, size)
			if a/64 != (a+uint64(size)-1)/64 {
				t.Fatalf("AlignAddr(%#x, %d) = %#x straddles a line", addr, size, a)
			}
		}
	}
}

// TestInterpAppliesAlignment checks loads, stores, and RMWs all mask their
// effective address identically.
func TestInterpAppliesAlignment(t *testing.T) {
	p := NewBuilder("align").
		Li(1, 0x1000).
		Li(2, 0x1122334455667788).
		MustBuild()
	p.Insts = append(p.Insts,
		Inst{Op: OpStore, Rs1: 1, Rs2: 2, Imm: 5, Size: 8}, // st.8 -> 0x1000
		Inst{Op: OpLoad, Rd: 3, Rs1: 1, Imm: 3, Size: 8},   // ld.8 <- 0x1000
		Inst{Op: OpLoad, Rd: 4, Rs1: 1, Imm: 6, Size: 4},   // ld.4 <- 0x1004
		Inst{Op: OpRMW, Rd: 5, Rs1: 1, Rs2: 0, Size: 8},    // rmw @0x1000 (aligned)
		Inst{Op: OpHalt})
	it := NewInterp(p)
	if err := it.Run(20); err != nil {
		t.Fatal(err)
	}
	if it.Regs[3] != 0x1122334455667788 {
		t.Errorf("aligned ld.8 got %#x", it.Regs[3])
	}
	if it.Regs[4] != 0x11223344 {
		t.Errorf("aligned ld.4 got %#x", it.Regs[4])
	}
	if it.Regs[5] != 0x1122334455667788 {
		t.Errorf("rmw old value got %#x", it.Regs[5])
	}
}

func negU64(v uint64) uint64 { return -v }

// TestBuilderLiLabel covers the dispatch-slot idiom the indirect-branch
// attack templates rely on: LiLabel materializes a forward label's
// instruction index as an immediate at Build time, the program stores it
// to memory, reloads it, and jumps through it with JmpI.
func TestBuilderLiLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Li(3, 0x2000).
		LiLabel(1, "target").
		St(8, 3, 0, 1). // dispatch slot holds target's pc
		Ld(8, 2, 3, 0).
		JmpI(2).
		Li(5, 99). // skipped: the jump must hop over it
		Halt().
		Label("target").
		Li(5, 7).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(p.Labels["target"])
	if got := p.Insts[1].Imm; got != want {
		t.Fatalf("LiLabel patched Imm = %d, want label index %d", got, want)
	}
	it := NewInterp(p)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[5] != 7 {
		t.Fatalf("r5 = %d, want 7 (indirect jump through the dispatch slot)", it.Regs[5])
	}
	if _, err := NewBuilder("t").LiLabel(1, "nowhere").Halt().Build(); err == nil {
		t.Fatal("LiLabel to an undefined label not reported")
	}
}
