// Package bpred implements the branch prediction machinery of the simulated
// core: a tournament direction predictor (local two-bit counters and a
// gshare-style global predictor arbitrated by a chooser), a branch target
// buffer for indirect jumps, and a return address stack.
//
// Prediction happens at fetch along the speculative path, so all predictor
// speculation state (global history, RAS) is checkpointable: the core takes
// a Snapshot at every predicted branch and Restores it when the branch turns
// out to be mispredicted. Counter tables and the BTB are trained at
// retirement only, so wrong-path instructions never pollute them.
package bpred

import "invisispec/internal/isa"

// Config sizes the predictor structures. The defaults follow Table IV of
// the paper: tournament predictor, 4096 BTB entries, 16 RAS entries.
type Config struct {
	LocalBits  uint // log2 of local predictor entries
	GlobalBits uint // log2 of global (gshare) predictor entries
	ChoiceBits uint // log2 of chooser entries
	BTBEntries int
	RASEntries int
}

// DefaultConfig mirrors the simulated architecture of the paper.
func DefaultConfig() Config {
	return Config{
		LocalBits:  12,
		GlobalBits: 12,
		ChoiceBits: 12,
		BTBEntries: 4096,
		RASEntries: 16,
	}
}

// Predictor is the per-core branch prediction unit.
type Predictor struct {
	cfg    Config
	local  []uint8 // 2-bit saturating counters indexed by PC
	global []uint8 // 2-bit counters indexed by PC ^ history
	choice []uint8 // 2-bit chooser: >=2 selects global
	btb    []btbEntry
	ghr    uint64 // speculative global history (youngest outcome in bit 0)
	ras    []int
	rasTop int // index of next push slot

	// Stats.
	CondPredicts   uint64
	CondMispredics uint64
	BTBLookups     uint64
	BTBMisses      uint64
}

type btbEntry struct {
	pc     int
	target int
	valid  bool
}

// New builds a predictor with all counters weakly not-taken.
func New(cfg Config) *Predictor {
	if cfg.BTBEntries <= 0 || cfg.RASEntries <= 0 {
		panic("bpred: BTB and RAS sizes must be positive")
	}
	return &Predictor{
		cfg:    cfg,
		local:  make([]uint8, 1<<cfg.LocalBits),
		global: make([]uint8, 1<<cfg.GlobalBits),
		choice: make([]uint8, 1<<cfg.ChoiceBits),
		btb:    make([]btbEntry, cfg.BTBEntries),
		ras:    make([]int, cfg.RASEntries),
	}
}

// State is a checkpoint of the predictor's speculative state.
type State struct {
	ghr    uint64
	ras    []int
	rasTop int
}

// Snapshot captures the speculative state (history and RAS) so that it can
// be restored after a squash.
func (p *Predictor) Snapshot() State {
	return State{ghr: p.ghr, ras: append([]int(nil), p.ras...), rasTop: p.rasTop}
}

// GHR returns the global history captured in the snapshot; the core trains
// the direction tables at retirement with the history that was live when
// the branch predicted.
func (s State) GHR() uint64 { return s.ghr }

// Restore rewinds speculative state to a previously captured snapshot.
func (p *Predictor) Restore(s State) {
	p.ghr = s.ghr
	copy(p.ras, s.ras)
	p.rasTop = s.rasTop
}

func (p *Predictor) localIdx(pc int) int {
	return pc & ((1 << p.cfg.LocalBits) - 1)
}

func (p *Predictor) globalIdx(pc int) int {
	return (pc ^ int(p.ghr)) & ((1 << p.cfg.GlobalBits) - 1)
}

func (p *Predictor) globalIdxAt(pc int, ghr uint64) int {
	return (pc ^ int(ghr)) & ((1 << p.cfg.GlobalBits) - 1)
}

func (p *Predictor) choiceIdx(pc int) int {
	return pc & ((1 << p.cfg.ChoiceBits) - 1)
}

func taken(counter uint8) bool { return counter >= 2 }

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// PredictCond predicts the direction of the conditional branch at pc and
// speculatively updates the global history with the prediction.
func (p *Predictor) PredictCond(pc int) bool {
	p.CondPredicts++
	var pred bool
	if taken(p.choice[p.choiceIdx(pc)]) {
		pred = taken(p.global[p.globalIdx(pc)])
	} else {
		pred = taken(p.local[p.localIdx(pc)])
	}
	p.ghr <<= 1
	if pred {
		p.ghr |= 1
	}
	return pred
}

// PredictIndirect predicts the target of an indirect jump or return-less
// indirect call at pc via the BTB. ok is false on a BTB miss (the core then
// stalls fetch until the jump resolves, as a real front end would on a
// missing target).
func (p *Predictor) PredictIndirect(pc int) (target int, ok bool) {
	p.BTBLookups++
	e := p.btb[pc%len(p.btb)]
	if e.valid && e.pc == pc {
		return e.target, true
	}
	p.BTBMisses++
	return 0, false
}

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(returnPC int) {
	p.ras[p.rasTop] = returnPC
	p.rasTop = (p.rasTop + 1) % len(p.ras)
}

// PopRAS predicts a return target.
func (p *Predictor) PopRAS() int {
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	return p.ras[p.rasTop]
}

// TrainCond updates the direction tables for a retired conditional branch.
// ghrAtPredict must be the global history value that was live when the
// branch was predicted (the core keeps it in the branch's snapshot).
func (p *Predictor) TrainCond(pc int, outcome bool, ghrAtPredict uint64) {
	li := p.localIdx(pc)
	gi := p.globalIdxAt(pc, ghrAtPredict)
	ci := p.choiceIdx(pc)
	localRight := taken(p.local[li]) == outcome
	globalRight := taken(p.global[gi]) == outcome
	if localRight != globalRight {
		p.choice[ci] = bump(p.choice[ci], globalRight)
	}
	p.local[li] = bump(p.local[li], outcome)
	p.global[gi] = bump(p.global[gi], outcome)
}

// TrainTarget installs the resolved target of an indirect jump in the BTB.
func (p *Predictor) TrainTarget(pc, target int) {
	p.btb[pc%len(p.btb)] = btbEntry{pc: pc, target: target, valid: true}
}

// NoteMisprediction counts a resolved conditional misprediction (for stats).
func (p *Predictor) NoteMisprediction() { p.CondMispredics++ }

// FixupHistory corrects the youngest speculative history bit after a
// conditional misprediction: the core restores the snapshot taken at the
// branch and then records the actual outcome.
func (p *Predictor) FixupHistory(outcome bool) {
	p.ghr <<= 1
	if outcome {
		p.ghr |= 1
	}
}

// PredictsFor reports what the front end does with op: whether it needs a
// direction prediction, an indirect target, or RAS handling.
func PredictsFor(op isa.Op) (cond, indirect, call, ret bool) {
	switch {
	case op.IsCondBranch():
		return true, false, false, false
	case op == isa.OpJmpI:
		return false, true, false, false
	case op == isa.OpCall:
		return false, false, true, false
	case op == isa.OpRet:
		return false, false, false, true
	}
	return false, false, false, false
}
