package bpred

import (
	"math/rand"
	"testing"

	"invisispec/internal/isa"
)

func TestAlwaysTakenBranchLearns(t *testing.T) {
	p := New(DefaultConfig())
	pc := 42
	mispredicts := 0
	for i := 0; i < 100; i++ {
		snap := p.Snapshot()
		pred := p.PredictCond(pc)
		if !pred {
			mispredicts++
			p.Restore(snap)
			p.FixupHistory(true)
		}
		p.TrainCond(pc, true, snap.ghr)
	}
	if mispredicts > 3 {
		t.Fatalf("always-taken branch mispredicted %d/100 times", mispredicts)
	}
	// After warmup the prediction must be stable.
	if !p.PredictCond(pc) {
		t.Fatal("trained always-taken branch predicted not-taken")
	}
}

func TestAlternatingBranchGlobalWins(t *testing.T) {
	// A strict alternation is perfectly predictable from global history.
	p := New(DefaultConfig())
	pc := 7
	late := 0
	for i := 0; i < 400; i++ {
		outcome := i%2 == 0
		snap := p.Snapshot()
		pred := p.PredictCond(pc)
		if pred != outcome {
			if i >= 200 {
				late++
			}
			p.Restore(snap)
			p.FixupHistory(outcome)
		}
		p.TrainCond(pc, outcome, snap.ghr)
	}
	if late > 10 {
		t.Fatalf("alternating branch mispredicted %d/200 times after warmup", late)
	}
}

func TestBTBMissThenHit(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.PredictIndirect(100); ok {
		t.Fatal("cold BTB must miss")
	}
	p.TrainTarget(100, 555)
	tgt, ok := p.PredictIndirect(100)
	if !ok || tgt != 555 {
		t.Fatalf("BTB predicted (%d,%v), want (555,true)", tgt, ok)
	}
	// An aliasing PC (same set) with a different tag must miss.
	alias := 100 + DefaultConfig().BTBEntries
	if _, ok := p.PredictIndirect(alias); ok {
		t.Fatal("aliased BTB entry must not hit")
	}
}

func TestRASLifo(t *testing.T) {
	p := New(DefaultConfig())
	p.PushRAS(10)
	p.PushRAS(20)
	p.PushRAS(30)
	for _, want := range []int{30, 20, 10} {
		if got := p.PopRAS(); got != want {
			t.Fatalf("PopRAS = %d, want %d", got, want)
		}
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 4
	p := New(cfg)
	for i := 0; i < 6; i++ {
		p.PushRAS(i)
	}
	// Entries 5,4,3,2 survive; older ones were overwritten.
	for _, want := range []int{5, 4, 3, 2} {
		if got := p.PopRAS(); got != want {
			t.Fatalf("PopRAS = %d, want %d", got, want)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := New(DefaultConfig())
	p.PushRAS(1)
	p.PredictCond(5)
	snap := p.Snapshot()
	p.PushRAS(2)
	p.PushRAS(3)
	p.PredictCond(6)
	p.PredictCond(7)
	p.Restore(snap)
	if got := p.PopRAS(); got != 1 {
		t.Fatalf("restored RAS top = %d, want 1", got)
	}
	if p.ghr != snap.ghr {
		t.Fatalf("restored ghr = %#x, want %#x", p.ghr, snap.ghr)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	p := New(DefaultConfig())
	p.PushRAS(1)
	snap := p.Snapshot()
	p.PushRAS(2) // mutate after snapshot
	p.Restore(snap)
	p.PushRAS(9)
	if got := p.PopRAS(); got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
	if got := p.PopRAS(); got != 1 {
		t.Fatalf("snapshot was aliased: got %d, want 1", got)
	}
}

func TestPredictsFor(t *testing.T) {
	cases := []struct {
		op                        isa.Op
		cond, indirect, call, ret bool
	}{
		{isa.OpBeq, true, false, false, false},
		{isa.OpBge, true, false, false, false},
		{isa.OpJmpI, false, true, false, false},
		{isa.OpCall, false, false, true, false},
		{isa.OpRet, false, false, false, true},
		{isa.OpJmp, false, false, false, false},
		{isa.OpAdd, false, false, false, false},
	}
	for _, c := range cases {
		cond, ind, call, ret := PredictsFor(c.op)
		if cond != c.cond || ind != c.indirect || call != c.call || ret != c.ret {
			t.Errorf("PredictsFor(%v) = %v,%v,%v,%v", c.op, cond, ind, call, ret)
		}
	}
}

func TestRandomOutcomesMispredictHeavily(t *testing.T) {
	// A predictor cannot learn a random sequence; misprediction rate should
	// hover near 50%. This guards against accidental oracle behaviour.
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	pc := 3
	mis := 0
	const n = 2000
	for i := 0; i < n; i++ {
		outcome := rng.Intn(2) == 0
		snap := p.Snapshot()
		pred := p.PredictCond(pc)
		if pred != outcome {
			mis++
			p.Restore(snap)
			p.FixupHistory(outcome)
		}
		p.TrainCond(pc, outcome, snap.ghr)
	}
	rate := float64(mis) / n
	if rate < 0.3 || rate > 0.7 {
		t.Fatalf("random-branch misprediction rate %.2f outside [0.3,0.7]", rate)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero BTB did not panic")
		}
	}()
	New(Config{LocalBits: 4, GlobalBits: 4, ChoiceBits: 4, BTBEntries: 0, RASEntries: 4})
}

// TestRASDeepNestSquashRestore drives the RAS through a speculative CALL/RET
// nest deeper than its 16 entries — wrapping rasTop past the snapshot point —
// then restores and checks the stack predicts exactly as before the wrong
// path: rasTop is back where it was and no stale wrong-path entry survives,
// even for pops that reach entries the wrong path overwrote after wrapping.
func TestRASDeepNestSquashRestore(t *testing.T) {
	p := New(DefaultConfig())
	depth := p.cfg.RASEntries // 16
	// Architecturally committed prefix: half-fill the stack.
	for i := 0; i < depth/2; i++ {
		p.PushRAS(100 + i)
	}
	snap := p.Snapshot()
	wantTop := p.rasTop

	// Wrong path 1: overflow. Push 2.5x the capacity so rasTop wraps twice
	// and every slot — including the committed prefix — is overwritten.
	for i := 0; i < depth*5/2; i++ {
		p.PushRAS(9000 + i)
	}
	p.Restore(snap)
	if p.rasTop != wantTop {
		t.Fatalf("after overflow restore: rasTop = %d, want %d", p.rasTop, wantTop)
	}
	for i := depth/2 - 1; i >= 0; i-- {
		if got := p.PopRAS(); got != 100+i {
			t.Fatalf("after overflow restore: pop %d = %d, want %d", i, got, 100+i)
		}
	}
	p.Restore(snap)

	// Wrong path 2: underflow. Pop far past the live depth so rasTop wraps
	// backwards through stale slots, then push new wrong-path entries.
	for i := 0; i < depth*2; i++ {
		p.PopRAS()
	}
	p.PushRAS(7777)
	p.PushRAS(8888)
	p.Restore(snap)
	if p.rasTop != wantTop {
		t.Fatalf("after underflow restore: rasTop = %d, want %d", p.rasTop, wantTop)
	}
	for i := depth/2 - 1; i >= 0; i-- {
		if got := p.PopRAS(); got != 100+i {
			t.Fatalf("after underflow restore: pop %d = %d, want %d", i, got, 100+i)
		}
	}

	// Interleaved nests: snapshot inside a nest, speculate a deeper nest
	// with returns, restore, and check the outer nest still unwinds.
	p = New(DefaultConfig())
	for i := 0; i < 3; i++ {
		p.PushRAS(10 + i)
	}
	snap = p.Snapshot()
	for i := 0; i < depth+4; i++ { // deeper than capacity
		p.PushRAS(5000 + i)
	}
	for i := 0; i < depth+4; i++ {
		p.PopRAS()
	}
	p.Restore(snap)
	for i := 2; i >= 0; i-- {
		if got := p.PopRAS(); got != 10+i {
			t.Fatalf("nested restore: pop = %d, want %d", got, 10+i)
		}
	}
}
