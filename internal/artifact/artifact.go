// Package artifact holds the pieces shared by every campaign artifact the
// repo emits (bench-JSON, leakage-report, conform-report): the uniform
// file-writing path that guarantees a CLI cannot exit zero after a silently
// truncated or unflushed artifact, and the degraded-cell block that resilient
// campaigns (internal/campaign) attach to an artifact instead of aborting
// when cells fail permanently.
//
// The package sits below both internal/runner and internal/campaign on
// purpose: runner's bench artifact and the leakage/conform reports embed
// DegradedCell without importing the campaign machinery, and campaign
// produces []DegradedCell without importing any artifact schema.
package artifact

import (
	"fmt"
	"io"
	"os"
)

// DegradedCell records one campaign cell that failed permanently — a
// deterministic simulator outcome, or a transient failure that exhausted its
// retry budget — in an artifact's degraded block. The campaign completes and
// the artifact is written; the CLI exits non-zero and prints these entries so
// a degraded sweep is loud, diagnosable, and individually re-runnable.
type DegradedCell struct {
	// Name is the cell's human label (e.g. "mcf/IS-Sp/TSO").
	Name string `json:"name"`
	// Key is the cell's content-hash identity in the campaign journal.
	Key string `json:"key"`
	// Error is the terminal failure.
	Error string `json:"error"`
	// Class is the failure classification: "deterministic" (failed fast,
	// never retried) or "transient" (retries exhausted).
	Class string `json:"class"`
	// Attempts is how many times the cell ran before being written off.
	Attempts int `json:"attempts"`
	// Repro is a ready-to-run command that re-executes the failed cell.
	Repro string `json:"repro,omitempty"`
}

// Write creates path and streams the artifact through write, surfacing every
// failure — create, write, or close — as one wrapped error. It is the uniform
// artifact-write path for the campaign CLIs: any error must turn into a
// non-zero exit, so CI can never upload a silently truncated artifact.
func Write(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating artifact %s: %w", path, err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing artifact %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing artifact %s: %w", path, err)
	}
	return nil
}
