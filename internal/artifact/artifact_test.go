package artifact

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, `{"ok":true}`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("artifact content %q", data)
	}
}

func TestWriteSurfacesCreateError(t *testing.T) {
	err := Write(filepath.Join(t.TempDir(), "no-such-dir", "out.json"), func(w io.Writer) error {
		t.Error("write callback ran despite create failure")
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "creating artifact") {
		t.Fatalf("create failure not surfaced: %v", err)
	}
}

func TestWriteSurfacesCallbackError(t *testing.T) {
	boom := errors.New("encoder exploded")
	path := filepath.Join(t.TempDir(), "out.json")
	err := Write(path, func(w io.Writer) error { return boom })
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "writing artifact") {
		t.Fatalf("callback failure not surfaced: %v", err)
	}
	// The truncated file may exist, but the non-nil error is what forces the
	// CLI's non-zero exit — CI must never trust the artifact on error.
}
