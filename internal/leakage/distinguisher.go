package leakage

import (
	"fmt"
	"math"
	"sort"
)

// Verdict classifies one (attack, defense) cell.
type Verdict int

const (
	// VerdictBlocked: the probe scan shows no covert-channel signal — the
	// defense (or a disabled attack ingredient) closed the leak.
	VerdictBlocked Verdict = iota
	// VerdictLeak: the scan recovers the planted secret reliably across
	// trials.
	VerdictLeak
	// VerdictInconclusive: the scan shows hot lines but does not recover
	// the secret — cache residue, a broken attack, or a half-closed
	// channel. The gate treats unexpected Inconclusive as a violation:
	// "we can't tell" is not a security result.
	VerdictInconclusive
)

// String names the verdict the way the report and table print it.
func (v Verdict) String() string {
	switch v {
	case VerdictBlocked:
		return "blocked"
	case VerdictLeak:
		return "leak"
	case VerdictInconclusive:
		return "inconclusive"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// MarshalText serializes the verdict by name so report JSON is readable
// and stable against enum reordering.
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses a verdict name.
func (v *Verdict) UnmarshalText(b []byte) error {
	switch string(b) {
	case "blocked":
		*v = VerdictBlocked
	case "leak":
		*v = VerdictLeak
	case "inconclusive":
		*v = VerdictInconclusive
	default:
		return fmt.Errorf("leakage: unknown verdict %q", b)
	}
	return nil
}

// Thresholds tunes the distinguisher. The zero value selects
// DefaultThresholds.
type Thresholds struct {
	// HitRatio is the hot-line test: probe line i is hot in a trial when
	// latency[i] * HitRatio < median(latencies). 2 separates an LLC hit
	// (~20 cycles) or L1 hit (~1-3) from the DRAM floor (~115) with a wide
	// guard band on both sides.
	HitRatio float64 `json:"hit_ratio"`
	// LeakRate is the leak threshold: the cell is a leak when the secret
	// is recovered in at least this fraction of trials. A strict majority
	// (0.6) tolerates the occasional fault-injected trial whose noise
	// closes the speculation window — a real attack under timing noise
	// misses sometimes — while still requiring most trials to agree.
	LeakRate float64 `json:"leak_rate"`
	// BlockRate is the blocked threshold: the cell is blocked when at most
	// this fraction of trials shows ANY hot line. Between the two rates
	// the cell is inconclusive.
	BlockRate float64 `json:"block_rate"`
}

// DefaultThresholds returns the distinguisher settings the scanner and
// CLI default to.
func DefaultThresholds() Thresholds {
	return Thresholds{HitRatio: 2, LeakRate: 0.6, BlockRate: 0.25}
}

// orDefault resolves the zero value to the defaults.
func (t Thresholds) orDefault() Thresholds {
	if t == (Thresholds{}) {
		return DefaultThresholds()
	}
	return t
}

// Analysis is the distinguisher's summary of one (attack, defense) cell
// over repeated trials.
type Analysis struct {
	// Verdict is the classification under the thresholds.
	Verdict Verdict `json:"verdict"`
	// RecoveredByte is the majority-vote recovered secret across trials,
	// or -1 when the majority of trials recovered nothing.
	RecoveredByte int `json:"recovered_byte"`
	// HitRate is the fraction of trials whose recovered byte equals the
	// planted secret.
	HitRate float64 `json:"hit_rate"`
	// HotRate is the fraction of trials with at least one hot probe line.
	HotRate float64 `json:"hot_rate"`
	// Margin is the mean over trials of (median - latency[secret])/median:
	// how far the secret line sits below the scan's latency floor,
	// normalized. ~0 when blocked, ~0.8+ for a clean LLC-hit leak.
	Margin float64 `json:"margin"`
	// SNR is the mean secret-line signal (median - latency[secret])
	// divided by the standard deviation of the non-secret lines'
	// deviations from the median (floored at 1 cycle): signal strength in
	// units of scan noise.
	SNR float64 `json:"snr"`
	// Confidence scores the verdict: the supporting trial fraction for
	// leak (HitRate) and blocked (1 - HotRate), 0 for inconclusive.
	Confidence float64 `json:"confidence"`
	// MedianLatency and SecretLatency are per-trial means of the scan's
	// median latency and the secret line's latency, for reading reports
	// without the raw distributions.
	MedianLatency float64 `json:"median_latency"`
	// SecretLatency is the mean latency of the secret's probe line.
	SecretLatency float64 `json:"secret_latency"`
}

// Analyze classifies one cell from its per-trial probe-line latency
// distributions. trials[t][i] is the latency of probe line i in trial t;
// secret is the planted byte (the probe index the attack should light
// up).
//
// Per trial: the median latency estimates the cold floor (at most a
// handful of the lines are hot, so the median is robust to the signal
// itself); a line is hot when it beats the median by HitRatio; the
// recovered byte is the LOWEST hot index, because the transient access
// touches exactly the secret line while the prefetcher may warm lines
// above it. Across trials: the cell leaks if the secret is recovered in
// ≥ LeakRate of trials, is blocked if ≤ BlockRate of trials show any hot
// line, and is inconclusive otherwise (e.g. a stray hot line that is not
// the secret in every trial).
func Analyze(trials [][]uint64, secret int, th Thresholds) Analysis {
	th = th.orDefault()
	a := Analysis{RecoveredByte: -1}
	if len(trials) == 0 {
		a.Verdict = VerdictInconclusive
		return a
	}
	var (
		hits, hots     int
		marginSum      float64
		snrSum         float64
		medSum, secSum float64
		votes          = map[int]int{}
	)
	for _, lat := range trials {
		med := medianU64(lat)
		recovered := -1
		for i, l := range lat {
			if float64(l)*th.HitRatio < float64(med) {
				recovered = i
				break
			}
		}
		if recovered >= 0 {
			hots++
		}
		if recovered == secret {
			hits++
		}
		votes[recovered]++
		var secLat float64
		if secret >= 0 && secret < len(lat) {
			secLat = float64(lat[secret])
		}
		medSum += float64(med)
		secSum += secLat
		// Zero-median clamp: a degenerate trial (every probe line
		// reporting zero latency — a fully-cached or truncated sweep)
		// contributes 0 to the margin instead of dividing by med.
		if med > 0 {
			marginSum += (float64(med) - secLat) / float64(med)
		}
		// Noise: spread of the non-secret lines around the median.
		var sq float64
		n := 0
		for i, l := range lat {
			if i == secret {
				continue
			}
			d := float64(l) - float64(med)
			sq += d * d
			n++
		}
		noise := 1.0
		if n > 0 {
			if s := math.Sqrt(sq / float64(n)); s > noise {
				noise = s
			}
		}
		snrSum += (float64(med) - secLat) / noise
	}
	n := float64(len(trials))
	a.HitRate = float64(hits) / n
	a.HotRate = float64(hots) / n
	a.Margin = clampFinite(marginSum / n)
	a.SNR = clampFinite(snrSum / n)
	a.MedianLatency = clampFinite(medSum / n)
	a.SecretLatency = clampFinite(secSum / n)
	a.RecoveredByte = majority(votes)
	switch {
	case a.HitRate >= th.LeakRate:
		a.Verdict = VerdictLeak
		a.Confidence = a.HitRate
	case a.HotRate <= th.BlockRate:
		a.Verdict = VerdictBlocked
		a.Confidence = 1 - a.HotRate
	default:
		a.Verdict = VerdictInconclusive
	}
	return a
}

// clampFinite maps NaN and ±Inf to 0. The per-trial loop already guards
// its divisions (zero-median margin skip, noise floored at 1), but every
// Analysis field flows straight into encoding/json, which refuses
// non-finite values and would fail the whole report write — so the
// aggregates are clamped here as a last line of defense rather than
// trusting every future edit of the loop above.
func clampFinite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// medianU64 returns the median of xs (upper of the two middles for even
// lengths — the scan wants the cold floor, so rounding up is harmless).
func medianU64(xs []uint64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]uint64, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// majority returns the most-voted recovered byte, breaking ties toward
// the smaller value so aggregation is deterministic.
func majority(votes map[int]int) int {
	best, bestN := -1, -1
	keys := make([]int, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if votes[k] > bestN {
			best, bestN = k, votes[k]
		}
	}
	return best
}
