package leakage

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"invisispec/internal/campaign"
	"invisispec/internal/config"
	"invisispec/internal/defense"
)

// weakSSBSeed is a deliberately weak search starting point: the SSB
// class's SNR grows monotonically with ProbeLines (more cold lines pull
// the scan noise down relative to the fixed sentinel lines), so a seed at
// the bottom of the lattice gives the hill-climb a multi-step gradient to
// compound along.
func weakSSBSeed() AttackSpec {
	s := AttackSpec{
		ID:          "ssb-weak-seed",
		Template:    TemplateSSB,
		Secret:      10,
		TrainRounds: 8,
		ProbeLines:  16,
		ProbeStride: 64,
		FlushBounds: true,
		FlushProbe:  true,
	}
	return s
}

func searchOpts(blind bool) SearchOptions {
	return SearchOptions{
		Seed:     7,
		Budget:   12,
		Seeds:    []AttackSpec{weakSSBSeed()},
		Defenses: []config.Defense{config.Base},
		Trials:   1,
		Blind:    blind,
		Name:     "self-test",
	}
}

// TestSearchHillClimbBeatsBlindFuzz is the seeded self-test of the search
// loop's feedback: with the same seed, budget, and mutation operators,
// the hill-climb's compounding acceptance must reach a strictly higher
// SNR than blind fuzzing (which mutates from the immutable seed, so it
// can never take more than one lattice step).
func TestSearchHillClimbBeatsBlindFuzz(t *testing.T) {
	hill, _, err := Search(context.Background(), searchOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	blind, _, err := Search(context.Background(), searchOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	hb, bb := hill.Best[0], blind.Best[0]
	if hb.Score <= bb.Score {
		t.Fatalf("hill-climb best %.2f (%s) does not beat blind fuzzing best %.2f (%s)",
			hb.Score, hb.Attack, bb.Score, bb.Attack)
	}
	// The climb must actually have compounded: at least two accepted
	// improvements after the seed evaluation.
	accepted := 0
	for _, s := range hill.Steps {
		if s.Iter > 0 && s.Accepted {
			accepted++
		}
	}
	if accepted < 2 {
		t.Fatalf("hill-climb accepted %d improvements, want >= 2 (no compounding)", accepted)
	}
	if len(hill.Finds) != 0 {
		t.Fatalf("search on Base alone reported %d finds, want 0 (Base cells expect leaks)", len(hill.Finds))
	}
}

// TestSearchDeterministicAcrossJobs: same seed + budget must produce a
// byte-identical search report at any worker count.
func TestSearchDeterministicAcrossJobs(t *testing.T) {
	payload := func(jobs int) []byte {
		opts := searchOpts(false)
		opts.Budget = 6
		opts.Jobs = jobs
		rep, _, err := Search(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := payload(1)
	four := payload(4)
	if !bytes.Equal(one, four) {
		t.Fatalf("search report differs between 1 and 4 workers:\n%s\n--- vs ---\n%s", one, four)
	}
}

// leakyGate is a deliberately broken countermeasure registered only in
// this test binary: it claims to be a defense (so the expected-outcome
// matrix predicts blocked for canonical full-flush specs) but takes no
// action at all, so every Spectre variant leaks through it. It exists to
// exercise the search's find -> shrink -> promote path, which no genuine
// defense should ever trigger.
type leakyGate struct{ defense.Unprotected }

func (leakyGate) Name() string        { return "LeakyGate" }
func (leakyGate) Description() string { return "test-only: claims to defend, does nothing" }
func (leakyGate) ThreatModel() string { return "none (deliberately broken)" }

func registerLeakyGate(t *testing.T) config.Defense {
	t.Helper()
	if err := defense.Register(leakyGate{}); err != nil {
		// Already registered by an earlier test in this binary.
		if _, lerr := defense.Lookup("LeakyGate"); lerr != nil {
			t.Fatal(err)
		}
	}
	return config.Defense("LeakyGate")
}

// TestSearchFindMinimizesAndPromotes: a candidate leaking through a
// defense the matrix says blocks it is a find; the find must be ddmin-
// minimized against the broken defense and promoted to a replayable
// trace.
func TestSearchFindMinimizesAndPromotes(t *testing.T) {
	if testing.Short() {
		t.Skip("shrink loop in -short")
	}
	leaky := registerLeakyGate(t)
	seed := CanonicalSpectreSpec(10)
	seed.ProbeLines = 64 // small geometry keeps each shrink oracle eval fast
	seed = seed.withID()
	rep, traces, err := Search(context.Background(), SearchOptions{
		Seed:         3,
		Budget:       1, // the seed itself already breaks the leaky gate
		Seeds:        []AttackSpec{seed},
		Defenses:     []config.Defense{leaky},
		Trials:       1,
		ShrinkBudget: 400,
		Name:         "find-path",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Finds) == 0 {
		t.Fatal("no finds against the deliberately leaky defense")
	}
	f := rep.Finds[0]
	if f.Defense != "LeakyGate" || f.Attack != seed.ID {
		t.Fatalf("find = %s under %s, want %s under LeakyGate", f.Attack, f.Defense, seed.ID)
	}
	if !f.Minimized {
		t.Fatalf("find was not minimized: %+v", f)
	}
	if f.ShrinkTo >= f.ShrinkFrom {
		t.Fatalf("shrink did not reduce the program: %d -> %d insts", f.ShrinkFrom, f.ShrinkTo)
	}
	if f.TraceName == "" || len(traces) != 1 || traces[0].Name != f.TraceName {
		t.Fatalf("find was not promoted to a trace: name=%q traces=%d", f.TraceName, len(traces))
	}
}

// TestTrialSpecKeyHashesFullParams is the satellite-3 audit: the campaign
// journal key must be a content hash of the FULL parameter set, so a
// mutant that reuses an ID with different parameters (or renames the same
// parameters) can never be served a stale journaled cell.
func TestTrialSpecKeyHashesFullParams(t *testing.T) {
	base := TrialSpec{Attack: CanonicalSSBSpec(84), Defense: config.Base, Consistency: config.TSO, Trial: 0, MaxCycles: 1000}
	key := func(ts TrialSpec) string {
		t.Helper()
		k, err := campaign.Key(ts)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	same := base
	if key(base) != key(same) {
		t.Fatal("identical specs hash differently")
	}
	mutated := base
	mutated.Attack.TrainRounds = 16 // same ID string, different parameters
	if key(base) == key(mutated) {
		t.Fatal("journal key ignores TrainRounds: a stale cell could be served for a mutated spec")
	}
	renamed := base
	renamed.Attack.ID = "renamed"
	if key(base) == key(renamed) {
		t.Fatal("journal key ignores the ID: distinct report rows would collide in the journal")
	}
	for _, mut := range []func(*TrialSpec){
		func(ts *TrialSpec) { ts.Attack.Secret = 85 },
		func(ts *TrialSpec) { ts.Attack.ProbeLines = 128 },
		func(ts *TrialSpec) { ts.Attack.ProbeStride = 128 },
		func(ts *TrialSpec) { ts.Attack.FlushProbe = false },
		func(ts *TrialSpec) { ts.Defense = config.ISFuture },
		func(ts *TrialSpec) { ts.Trial = 1 },
		func(ts *TrialSpec) { ts.MaxCycles = 2000 },
	} {
		m := base
		mut(&m)
		if key(base) == key(m) {
			t.Fatalf("journal key collision after mutation: %+v vs %+v", base, m)
		}
	}
}

// TestChaosSearchKillResume: a journaled search SIGKILLed at seeded
// random checkpoint appends must resume to a byte-identical report — the
// kill-mid-search coverage of the satellite-3 journal-identity audit.
func TestChaosSearchKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("search chaos in -short")
	}
	base := searchOpts(false)
	base.Budget = 6

	run := func(opts SearchOptions) (*SearchReport, error) {
		rep, _, err := Search(context.Background(), opts)
		return rep, err
	}
	clean, err := run(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	// Upper bound on journal appends: every iteration could scan one new
	// candidate across all defense columns and trials.
	maxAppends := base.Budget * len(base.Defenses) * base.Trials

	for _, seed := range []int64{11, 22, 33} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed%d-w%d", seed, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				opts := base
				opts.Jobs = workers
				opts.Campaign = campaign.Options{
					Journal: filepath.Join(t.TempDir(), "j.jsonl"),
					Retries: 1,
					Seed:    seed,
				}
				opts.Campaign.Chaos = &campaign.ChaosOptions{
					Seed:         rng.Int63(),
					KillAtAppend: 1 + rng.Intn(maxAppends),
				}
				rep, err := run(opts)
				if err != nil {
					if !errors.Is(err, campaign.ErrKilled) {
						t.Fatal(err)
					}
					resumed := opts
					resumed.Campaign.Chaos = nil
					resumed.Campaign.Resume = true
					rep, err = run(resumed)
					if err != nil {
						t.Fatal(err)
					}
				}
				got, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("resumed search report drifted from clean run:\n%s\n--- want ---\n%s", got, want)
				}
			})
		}
	}
}
