package leakage

import (
	"bytes"
	"context"
	"testing"

	"invisispec/internal/config"
)

// TestAnnotatedLeakReopensUnderTrust is the threat-model boundary table
// test: the safe-annotated Spectre variant under TrustSafeAnnotations
// must leak again on the InvisiSpec defenses (the annotation bypasses the
// USL machinery, so a wrong safety proof re-opens the channel), stay
// blocked under fences, and the report must classify those leaks as
// expected — violations of nothing.
func TestAnnotatedLeakReopensUnderTrust(t *testing.T) {
	spec := AttackSpec{
		Template:         TemplateSpectre,
		Secret:           84,
		TrainRounds:      16,
		ProbeLines:       256,
		ProbeStride:      64,
		FlushBounds:      true,
		FlushProbe:       true,
		Annotate:         true,
		TrustAnnotations: true,
	}.withID()
	rep, err := Scan(context.Background(), []AttackSpec{spec}, ScanOptions{
		Defenses: []config.Defense{config.Base, config.ISSpectre, config.ISFuture},
		Trials:   1,
		Name:     "annotated-boundary",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Verdict != VerdictLeak {
			t.Errorf("%s under %s: verdict %v, want leak (annotation bypasses the USL path)", c.Attack, c.Defense, c.Verdict)
		}
		if c.RecoveredByte != 84 {
			t.Errorf("%s under %s: recovered %d, want 84", c.Attack, c.Defense, c.RecoveredByte)
		}
		if !c.ExpectedLeak {
			t.Errorf("%s under %s: leak not flagged as expected", c.Attack, c.Defense)
		}
		if c.Violation {
			t.Errorf("%s under %s: expected leak reported as a violation", c.Attack, c.Defense)
		}
	}
}

// TestControlVariants checks the two designed controls: removing the
// bounds flush closes the speculation window even on Base, and skipping
// the probe flush leaves training residue the distinguisher must refuse
// to classify.
func TestControlVariants(t *testing.T) {
	noFB := CanonicalSpectreSpec(84)
	noFB.FlushBounds = false
	noFB = noFB.withID()
	noFP := CanonicalSpectreSpec(84)
	noFP.FlushProbe = false
	noFP = noFP.withID()
	rep, err := Scan(context.Background(), []AttackSpec{noFB, noFP}, ScanOptions{
		Defenses: []config.Defense{config.Base},
		Trials:   1,
		Name:     "controls",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Cells[0].Verdict; got != VerdictBlocked {
		t.Errorf("no-flush-bounds on Base: verdict %v, want blocked (window closes)", got)
	}
	if got := rep.Cells[1].Verdict; got != VerdictInconclusive {
		t.Errorf("no-flush-probe on Base: verdict %v, want inconclusive (residue on line 0)", got)
	}
	for _, c := range rep.Cells {
		if c.Violation {
			t.Errorf("%s: control variant flagged as violation", c.Attack)
		}
	}
}

// TestScanDeterministicAcrossWorkers is the artifact-stability criterion:
// the JSON report must be byte-identical between a serial scan and a
// 4-worker scan of the same corpus — including every post-v1 attack class.
func TestScanDeterministicAcrossWorkers(t *testing.T) {
	specs := []AttackSpec{
		CanonicalSpectreSpec(84),
		CanonicalBTBSpec(84),
		CanonicalRSBSpec(84),
		CanonicalSSBSpec(84),
		CanonicalLLCSBSpec(84),
	}
	opts := ScanOptions{
		Defenses: []config.Defense{config.Base, config.ISSpectre},
		Trials:   2,
		Name:     "determinism",
	}
	var bufs [2]bytes.Buffer
	for i, jobs := range []int{1, 4} {
		o := opts
		o.Jobs = jobs
		rep, err := Scan(context.Background(), specs, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&bufs[i], rep); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("report differs between 1 and 4 workers:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", bufs[0].String(), bufs[1].String())
	}
}

// TestScanReportRoundTrip checks the artifact survives a write/read cycle
// and the schema tag is enforced.
func TestScanReportRoundTrip(t *testing.T) {
	rep, err := Scan(context.Background(), []AttackSpec{CanonicalSpectreSpec(23)}, ScanOptions{
		Defenses: []config.Defense{config.Base},
		Trials:   1,
		Name:     "roundtrip",
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(rep.Cells) || got.Cells[0] != rep.Cells[0] {
		t.Fatalf("report did not round-trip: %+v vs %+v", got.Cells, rep.Cells)
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("bad schema accepted")
	}
	if rep.Cells[0].Verdict != VerdictLeak || rep.Cells[0].Violation {
		t.Fatalf("canonical attack on Base: %+v, want clean leak", rep.Cells[0])
	}
}

// TestScanRejectsInvalidSpec checks malformed corpora fail fast instead
// of burning simulation time.
func TestScanRejectsInvalidSpec(t *testing.T) {
	bad := CanonicalSpectreSpec(84)
	bad.Secret = 0
	if _, err := Scan(context.Background(), []AttackSpec{bad.withID()}, ScanOptions{Trials: 1}); err == nil {
		t.Fatal("scan accepted a zero secret")
	}
	noID := CanonicalSpectreSpec(84)
	noID.ID = ""
	if _, err := Scan(context.Background(), []AttackSpec{noID}, ScanOptions{Trials: 1}); err == nil {
		t.Fatal("scan accepted a spec without an ID")
	}
}
