package leakage

import (
	"encoding/json"
	"math"
	"testing"
)

// synthTrial builds one synthetic probe-line latency scan: every line at
// the cold floor except the listed hot lines.
func synthTrial(n int, cold uint64, hot map[int]uint64) []uint64 {
	lat := make([]uint64, n)
	for i := range lat {
		lat[i] = cold
	}
	for i, l := range hot {
		lat[i] = l
	}
	return lat
}

func TestAnalyzeCleanLeak(t *testing.T) {
	// Every trial: secret line is an L1-fast outlier against a DRAM floor.
	var trials [][]uint64
	for i := 0; i < 5; i++ {
		trials = append(trials, synthTrial(256, 115, map[int]uint64{84: 2}))
	}
	a := Analyze(trials, 84, Thresholds{})
	if a.Verdict != VerdictLeak {
		t.Fatalf("verdict = %v, want leak", a.Verdict)
	}
	if a.RecoveredByte != 84 {
		t.Fatalf("recovered = %d, want 84", a.RecoveredByte)
	}
	if a.HitRate != 1 || a.Confidence != 1 {
		t.Fatalf("hit rate = %v, confidence = %v, want 1, 1", a.HitRate, a.Confidence)
	}
	if a.Margin < 0.9 {
		t.Fatalf("margin = %v, want close to 1", a.Margin)
	}
	if a.SNR < 10 {
		t.Fatalf("SNR = %v, want strong signal", a.SNR)
	}
}

func TestAnalyzeNoisyLeak(t *testing.T) {
	// 3 of 5 trials recover the secret; 2 miss entirely (the speculation
	// window closed under noise). A strict majority still means leak.
	trials := [][]uint64{
		synthTrial(256, 115, map[int]uint64{84: 20}),
		synthTrial(256, 115, nil),
		synthTrial(256, 115, map[int]uint64{84: 23}),
		synthTrial(256, 115, nil),
		synthTrial(256, 115, map[int]uint64{84: 18}),
	}
	a := Analyze(trials, 84, Thresholds{})
	if a.Verdict != VerdictLeak {
		t.Fatalf("verdict = %v, want leak", a.Verdict)
	}
	if a.RecoveredByte != 84 {
		t.Fatalf("recovered = %d, want 84", a.RecoveredByte)
	}
	if a.HitRate != 0.6 {
		t.Fatalf("hit rate = %v, want 0.6", a.HitRate)
	}
}

func TestAnalyzeNoLeak(t *testing.T) {
	// Flat scans with mild jitter: no hot line anywhere.
	trials := [][]uint64{
		synthTrial(256, 115, map[int]uint64{10: 117, 200: 119}),
		synthTrial(256, 115, map[int]uint64{42: 121}),
		synthTrial(256, 115, nil),
	}
	a := Analyze(trials, 84, Thresholds{})
	if a.Verdict != VerdictBlocked {
		t.Fatalf("verdict = %v, want blocked", a.Verdict)
	}
	if a.RecoveredByte != -1 {
		t.Fatalf("recovered = %d, want -1", a.RecoveredByte)
	}
	if a.Confidence != 1 {
		t.Fatalf("confidence = %v, want 1", a.Confidence)
	}
}

func TestAnalyzeWrongLineInconclusive(t *testing.T) {
	// Every trial shows a hot line that is NOT the secret (e.g. training
	// residue on line 0 when the probe array is not flushed): too hot to
	// call blocked, wrong line to call leak.
	var trials [][]uint64
	for i := 0; i < 4; i++ {
		trials = append(trials, synthTrial(256, 115, map[int]uint64{0: 2}))
	}
	a := Analyze(trials, 84, Thresholds{})
	if a.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %v, want inconclusive", a.Verdict)
	}
	if a.RecoveredByte != 0 {
		t.Fatalf("recovered = %d, want 0 (the residue line)", a.RecoveredByte)
	}
	if a.Confidence != 0 {
		t.Fatalf("confidence = %v, want 0", a.Confidence)
	}
}

func TestAnalyzeLowestHotIndexWins(t *testing.T) {
	// The prefetcher may warm lines above the secret; the recovered byte
	// is the lowest hot index.
	trials := [][]uint64{
		synthTrial(256, 115, map[int]uint64{84: 2, 85: 3, 86: 20}),
	}
	a := Analyze(trials, 84, Thresholds{})
	if a.Verdict != VerdictLeak || a.RecoveredByte != 84 {
		t.Fatalf("verdict = %v recovered = %d, want leak 84", a.Verdict, a.RecoveredByte)
	}
}

func TestAnalyzeEmptyTrials(t *testing.T) {
	a := Analyze(nil, 84, Thresholds{})
	if a.Verdict != VerdictInconclusive || a.RecoveredByte != -1 {
		t.Fatalf("empty trials: verdict = %v recovered = %d, want inconclusive -1", a.Verdict, a.RecoveredByte)
	}
}

func TestVerdictTextRoundTrip(t *testing.T) {
	for _, v := range []Verdict{VerdictBlocked, VerdictLeak, VerdictInconclusive} {
		b, err := v.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got Verdict
		if err := got.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip %v -> %s -> %v", v, b, got)
		}
	}
	var v Verdict
	if err := v.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("unmarshal of bogus verdict succeeded")
	}
}

func TestAnalyzeZeroMedianTrials(t *testing.T) {
	// Degenerate sweeps — every probe line reporting zero latency, or no
	// probe lines at all — must produce finite, JSON-encodable aggregates
	// (encoding/json refuses NaN/Inf and would fail the whole report
	// write), not divide by the zero median.
	for name, trials := range map[string][][]uint64{
		"all-zero":  {make([]uint64, 256), make([]uint64, 256)},
		"empty-lat": {{}, {}},
		"mixed":     {make([]uint64, 256), synthTrial(256, 115, map[int]uint64{84: 2})},
	} {
		a := Analyze(trials, 84, Thresholds{})
		for field, v := range map[string]float64{
			"Margin": a.Margin, "SNR": a.SNR,
			"MedianLatency": a.MedianLatency, "SecretLatency": a.SecretLatency,
			"HitRate": a.HitRate, "HotRate": a.HotRate, "Confidence": a.Confidence,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: %s = %v, want finite", name, field, v)
			}
		}
		if _, err := json.Marshal(a); err != nil {
			t.Fatalf("%s: json.Marshal: %v", name, err)
		}
	}
}

func TestClampFinite(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{math.Inf(-1), 0},
		{1.5, 1.5},
		{-3, -3},
		{0, 0},
	} {
		if got := clampFinite(tc.in); got != tc.want {
			t.Fatalf("clampFinite(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
