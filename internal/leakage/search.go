package leakage

// Feedback-driven attack search (leakscan -search): a seeded,
// deterministic hill-climb over the attack-template parameter space,
// steered by the distinguisher's SNR. Each search lane starts from one
// seed spec (by default the canonical variant of every template class)
// and repeatedly proposes a local mutation — one step on one parameter
// axis — of its incumbent; the batch of proposals is fanned through the
// scan runner, each candidate is scored by the strongest SNR any defense
// column shows, and a candidate that beats its lane's incumbent becomes
// the new incumbent. Blind mode (the fuzz baseline the self-test compares
// against) mutates from the immutable seed instead, so improvements
// cannot compound.
//
// Any candidate cell that leaks where the defense-outcome matrix says
// blocked is a find: a defense broken by a searched attack. Finds are
// minimized with the conform ddmin shrinker (the oracle re-runs the
// candidate program under the broken defense and demands the same
// recovered byte) and promoted to replayable traces via conform.EmitTrace
// — the same promotion path the conformance fuzzer uses — so a find
// becomes a committed, importable corpus entry rather than a transcript
// anecdote.
//
// Everything is deterministic at any worker count: mutation draws happen
// on the single search goroutine in lane order, scores come from the
// scan's byte-identical cells, and the journal keys every trial by the
// full parameter set (campaign.Key over TrialSpec, which embeds the whole
// AttackSpec), so -resume can never serve a stale cell for a renamed or
// re-parameterized mutant.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"invisispec/internal/campaign"
	"invisispec/internal/config"
	"invisispec/internal/conform"
	"invisispec/internal/harness"
	"invisispec/internal/isa"
	"invisispec/internal/trace"
	"invisispec/internal/workload"
)

// SearchSchema versions the search artifact.
const SearchSchema = "leakage-search/v1"

// SearchOptions tunes a Search.
type SearchOptions struct {
	// Seed drives every mutation draw. Same seed + budget ⇒ byte-identical
	// report at any Jobs count.
	Seed int64
	// Budget is how many candidates each lane evaluates, including its
	// seed spec. Zero or negative means 8.
	Budget int
	// Seeds are the lanes' starting specs. Nil means the canonical variant
	// of every searchable class: Spectre v1, BTB, RSB, SSB, LLC-SB.
	Seeds []AttackSpec
	// Defenses selects the matrix columns every candidate is scanned
	// against. Nil means config.AllDefenses().
	Defenses []config.Defense
	// Consistency is the memory model (TSO default).
	Consistency config.Consistency
	// Trials per (candidate, defense) cell. Zero or negative means 2.
	Trials int
	// Jobs, Timeout, MaxCycles, Thresholds, Progress, Campaign: exactly
	// ScanOptions' fields, passed through to each iteration's scan batch.
	Jobs       int
	Timeout    time.Duration
	MaxCycles  uint64
	Thresholds Thresholds
	Progress   io.Writer
	// Campaign carries the resilience knobs. When a Journal is set, every
	// iteration after the first resumes from it automatically (the cells
	// of earlier iterations are already journaled), so one journal file
	// checkpoints the whole search and a killed search resumes to a
	// byte-identical report.
	Campaign campaign.Options
	// Name labels the report and the campaign journal entries.
	Name string
	// Blind disables the hill-climb: every mutation starts from the lane's
	// seed spec instead of its incumbent, so improvements cannot compound.
	// This is the fuzz baseline the hill-climb self-test compares against.
	Blind bool
	// ShrinkBudget bounds the ddmin oracle evaluations spent minimizing
	// each find. Zero or negative means 512 (enough for the shrink to
	// reach its fixpoint on the attack templates); set it small in smoke
	// runs where wall-clock matters more than minimality.
	ShrinkBudget int
}

// SearchStep records one candidate evaluation.
type SearchStep struct {
	// Class is the lane's seed spec ID (stable across the lane's steps).
	Class string `json:"class"`
	// Iter is the evaluation round, 0 = the seed itself.
	Iter int `json:"iter"`
	// Attack is the candidate's derived ID.
	Attack string `json:"attack"`
	// Score is the candidate's strongest SNR across the defense columns.
	Score float64 `json:"score"`
	// Accepted marks the candidate replacing the lane's incumbent.
	Accepted bool `json:"accepted"`
	// Best is the lane's incumbent score after this step.
	Best float64 `json:"best"`
	// Repeat marks a candidate whose parameters were already evaluated
	// this search (the mutator re-drew a visited point); its journaled
	// score is replayed without re-scanning.
	Repeat bool `json:"repeat,omitempty"`
}

// SearchFind is a candidate cell that leaked where the defense-outcome
// matrix says blocked — a defense broken by a searched attack.
type SearchFind struct {
	Attack  string     `json:"attack"`
	Defense string     `json:"defense"`
	Spec    AttackSpec `json:"spec"`
	SNR     float64    `json:"snr"`
	// Minimized reports whether the ddmin shrinker reduced the attack
	// program; From/To/Evals are the shrink stats when it ran.
	Minimized   bool `json:"minimized"`
	ShrinkFrom  int  `json:"shrink_from,omitempty"`
	ShrinkTo    int  `json:"shrink_to,omitempty"`
	ShrinkEvals int  `json:"shrink_evals,omitempty"`
	// TraceName names the promoted replayable trace ("" when the find is
	// not promotable — multi-core specs record a schedule-dependent
	// interleaving, so only single-program finds promote).
	TraceName string `json:"trace_name,omitempty"`
	// Note documents why minimization or promotion was skipped.
	Note string `json:"note,omitempty"`
}

// SearchLaneBest is a lane's final incumbent.
type SearchLaneBest struct {
	Class  string     `json:"class"`
	Attack string     `json:"attack"`
	Spec   AttackSpec `json:"spec"`
	Score  float64    `json:"score"`
}

// SearchReport is the deterministic search artifact.
type SearchReport struct {
	Schema   string           `json:"schema"`
	Name     string           `json:"name"`
	Seed     int64            `json:"seed"`
	Budget   int              `json:"budget"`
	Blind    bool             `json:"blind,omitempty"`
	Trials   int              `json:"trials"`
	Defenses []string         `json:"defenses"`
	Steps    []SearchStep     `json:"steps"`
	Best     []SearchLaneBest `json:"best"`
	Finds    []SearchFind     `json:"finds"`
}

// DefaultSearchSeeds returns the canonical starting spec of every
// searchable class, in lane order.
func DefaultSearchSeeds() []AttackSpec {
	return []AttackSpec{
		CanonicalSpectreSpec(84),
		CanonicalBTBSpec(84),
		CanonicalRSBSpec(84),
		CanonicalSSBSpec(84),
		CanonicalLLCSBSpec(84),
	}
}

// Geometry lattices the mutator steps along: the power-of-two values the
// template validators admit.
var (
	searchLines   = []int{16, 32, 64, 128, 256}
	searchStrides = []int{64, 128, 256}
)

// searchRoundsRange returns the template's admissible TrainRounds range —
// the same bounds the per-class validators enforce, so a mutation clamped
// here always assembles.
func searchRoundsRange(t Template) (lo, hi int) {
	switch t {
	case TemplateSpectreRSB:
		return 1, 8
	case TemplateSpectreBTB, TemplateSSB:
		return 1, 64
	default:
		return 1, 256
	}
}

func latticeStep(lattice []int, cur int, up bool) (int, bool) {
	for i, v := range lattice {
		if v != cur {
			continue
		}
		if up && i+1 < len(lattice) {
			return lattice[i+1], true
		}
		if !up && i > 0 {
			return lattice[i-1], true
		}
		return cur, false
	}
	return cur, false
}

// mutateSpec proposes one local move from s: a single step on one
// parameter axis, clamped to the template's admissible ranges. It re-rolls
// until the mutant is valid and differs from s, and returns s unchanged
// (a repeat) if sixteen attempts cannot leave the current point.
func mutateSpec(s AttackSpec, rng *rand.Rand) AttackSpec {
	for attempt := 0; attempt < 16; attempt++ {
		m := s
		switch rng.Intn(4) {
		case 0: // secret: a local hop within the probe geometry
			deltas := [...]int{-16, -1, 1, 16}
			v := int(m.Secret) + deltas[rng.Intn(len(deltas))]
			if v < 1 {
				v = 1
			}
			if v > 255 {
				v = 255
			}
			if v >= m.ProbeLines {
				v = m.ProbeLines - 1
			}
			m.Secret = byte(v)
		case 1: // training depth: halve or double within the class range
			lo, hi := searchRoundsRange(m.Template)
			r := m.TrainRounds
			if rng.Intn(2) == 0 {
				r *= 2
			} else {
				r /= 2
			}
			if r < lo {
				r = lo
			}
			if r > hi {
				r = hi
			}
			m.TrainRounds = r
		case 2: // probe lines: one lattice step; keep the secret encodable
			v, ok := latticeStep(searchLines, m.ProbeLines, rng.Intn(2) == 0)
			if !ok {
				continue
			}
			m.ProbeLines = v
			if int(m.Secret) >= m.ProbeLines {
				m.Secret = byte(m.ProbeLines - 1)
			}
		case 3: // probe stride: one lattice step
			v, ok := latticeStep(searchStrides, m.ProbeStride, rng.Intn(2) == 0)
			if !ok {
				continue
			}
			m.ProbeStride = v
		}
		m = m.withID()
		if m.ID != s.ID && m.Validate() == nil {
			return m
		}
	}
	return s
}

// searchLane is one seed's hill-climb state.
type searchLane struct {
	class string
	seed  AttackSpec
	best  AttackSpec
	score float64
}

// Search runs the feedback-driven attack search and returns its report
// plus the replayable traces of any minimized finds (cmd/leakscan writes
// them to the -promote directory). The returned report is byte-identical
// for the same (Seed, Budget, Seeds, Defenses, Trials) at any Jobs count.
func Search(ctx context.Context, opts SearchOptions) (*SearchReport, []*trace.Trace, error) {
	budget := opts.Budget
	if budget <= 0 {
		budget = 8
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 2
	}
	shrinkBudget := opts.ShrinkBudget
	if shrinkBudget <= 0 {
		shrinkBudget = 512
	}
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = DefaultSearchSeeds()
	}
	defenses := opts.Defenses
	if len(defenses) == 0 {
		defenses = config.AllDefenses()
	}
	for _, s := range seeds {
		if err := s.Validate(); err != nil {
			return nil, nil, fmt.Errorf("leakage: search seed: %w", err)
		}
		if s.Workload != "" {
			return nil, nil, fmt.Errorf("leakage: search seed %s replays a fixed workload; the search mutates template parameters", s.ID)
		}
	}

	rep := &SearchReport{
		Schema: SearchSchema,
		Name:   opts.Name,
		Seed:   opts.Seed,
		Budget: budget,
		Blind:  opts.Blind,
		Trials: trials,
	}
	for _, d := range defenses {
		rep.Defenses = append(rep.Defenses, d.String())
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	lanes := make([]*searchLane, len(seeds))
	for i, s := range seeds {
		lanes[i] = &searchLane{class: s.ID, seed: s}
	}
	scores := map[string]float64{} // candidate ID -> score, across all lanes
	var finds []SearchFind
	seenFinds := map[string]bool{} // "attack/defense" -> recorded

	for iter := 0; iter < budget; iter++ {
		// Propose this round's candidates, one per lane, drawing from the
		// rng in lane order on this single goroutine — worker count never
		// touches the mutation sequence.
		cands := make([]AttackSpec, len(lanes))
		parents := make([]AttackSpec, len(lanes))
		for li, lane := range lanes {
			if iter == 0 {
				cands[li], parents[li] = lane.seed, lane.seed
				continue
			}
			parent := lane.best
			if opts.Blind {
				parent = lane.seed
			}
			parents[li] = parent
			cands[li] = mutateSpec(parent, rng)
		}
		prescored := map[string]bool{}
		for _, c := range cands {
			_, prescored[c.ID] = scores[c.ID]
		}

		// Scan the candidates not yet scored, as one batch through the
		// runner. Batch dedup keeps IDs unique within the scan.
		var batch []AttackSpec
		inBatch := map[string]bool{}
		for _, c := range cands {
			if _, done := scores[c.ID]; done || inBatch[c.ID] {
				continue
			}
			inBatch[c.ID] = true
			batch = append(batch, c)
		}
		if len(batch) > 0 {
			sopts := ScanOptions{
				Defenses:    defenses,
				Consistency: opts.Consistency,
				Trials:      trials,
				Jobs:        opts.Jobs,
				Timeout:     opts.Timeout,
				MaxCycles:   opts.MaxCycles,
				Thresholds:  opts.Thresholds,
				Progress:    opts.Progress,
				// Every iteration scans under the same campaign name: the
				// journal binds to it, and one journal checkpoints the
				// whole search.
				Name:     opts.Name,
				Campaign: opts.Campaign,
			}
			// One journal file checkpoints the whole search: iterations
			// after the first must resume from it, not truncate it.
			if iter > 0 && sopts.Campaign.Journal != "" {
				sopts.Campaign.Resume = true
			}
			scanRep, err := Scan(ctx, batch, sopts)
			if err != nil {
				return nil, nil, err
			}
			// Score each candidate by its strongest column; collect finds.
			byAttack := map[string]float64{}
			for _, cell := range scanRep.Cells {
				if cell.SNR > byAttack[cell.Attack] {
					byAttack[cell.Attack] = cell.SNR
				}
				if cell.Verdict == VerdictLeak && cell.Expected == VerdictBlocked &&
					cell.RecoveredByte == cell.Secret {
					key := cell.Attack + "/" + cell.Defense
					if !seenFinds[key] {
						seenFinds[key] = true
						var spec AttackSpec
						for _, b := range batch {
							if b.ID == cell.Attack {
								spec = b
							}
						}
						finds = append(finds, SearchFind{
							Attack:  cell.Attack,
							Defense: cell.Defense,
							Spec:    spec,
							SNR:     cell.SNR,
						})
					}
				}
			}
			for _, b := range batch {
				scores[b.ID] = byAttack[b.ID]
			}
		}

		// Update lanes and record steps, in lane order.
		for li, lane := range lanes {
			c := cands[li]
			score := scores[c.ID]
			step := SearchStep{
				Class:  lane.class,
				Iter:   iter,
				Attack: c.ID,
				Score:  score,
			}
			if iter == 0 {
				lane.best, lane.score = c, score
				step.Accepted = true
			} else {
				// A repeat is a re-drawn point: the mutator could not
				// leave the parent, or the candidate was already scored
				// in an earlier round. Its journaled score is replayed,
				// and it may still be accepted (another lane's earlier
				// candidate can beat this lane's incumbent).
				step.Repeat = c.ID == parents[li].ID || prescored[c.ID]
				if score > lane.score {
					lane.best, lane.score = c, score
					step.Accepted = true
				}
			}
			step.Best = lane.score
			rep.Steps = append(rep.Steps, step)
		}
	}

	for _, lane := range lanes {
		rep.Best = append(rep.Best, SearchLaneBest{
			Class:  lane.class,
			Attack: lane.best.ID,
			Spec:   lane.best,
			Score:  lane.score,
		})
	}

	// Minimize and promote the finds, sequentially (deterministic).
	var traces []*trace.Trace
	for i := range finds {
		t, err := minimizeFind(ctx, &finds[i], opts, shrinkBudget)
		if err != nil {
			finds[i].Note = err.Error()
			continue
		}
		if t != nil {
			traces = append(traces, t)
		}
	}
	rep.Finds = finds
	return rep, traces, nil
}

// minimizeFind shrinks a find's attack program with the conform ddmin
// shrinker — the oracle re-runs the candidate under the broken defense
// and demands a leak recovering the planted secret — and promotes the
// minimized program to a replayable trace. Multi-core specs are left
// unminimized: their recorded interleaving is schedule-dependent.
func minimizeFind(ctx context.Context, f *SearchFind, opts SearchOptions, shrinkBudget int) (*trace.Trace, error) {
	if f.Spec.Cores() != 1 {
		f.Note = "multi-core find: shrink and trace promotion need a single program"
		return nil, nil
	}
	progs, err := f.Spec.Programs()
	if err != nil {
		return nil, err
	}
	d, err := config.ParseDefense(f.Defense)
	if err != nil {
		return nil, err
	}
	maxCycles := opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = 30_000_000
	}
	th := opts.Thresholds.orDefault()
	// The find itself must leak fault-free (Shrink requires its input to
	// satisfy the oracle); its measured runtime then bounds every shrink
	// candidate's budget — a mutilated candidate that deadlocks or loses
	// its halt must fail in ~2x the attack's cycles, not burn the full
	// trial budget.
	lat, cycles, err := runFindProgram(ctx, f.Spec, progs[0], d, opts.Consistency, maxCycles)
	if err != nil {
		f.Note = "leak does not reproduce in a fault-free trial; not minimized"
		return nil, nil
	}
	a := Analyze([][]uint64{lat}, int(f.Spec.Secret), th)
	if a.Verdict != VerdictLeak || a.RecoveredByte != int(f.Spec.Secret) {
		f.Note = "leak does not reproduce in a fault-free trial; not minimized"
		return nil, nil
	}
	oracleBudget := 2*cycles + 10_000
	oracle := func(p *isa.Program) (bool, string) {
		lat, _, err := runFindProgram(ctx, f.Spec, p, d, opts.Consistency, oracleBudget)
		if err != nil {
			return false, ""
		}
		a := Analyze([][]uint64{lat}, int(f.Spec.Secret), th)
		if a.Verdict == VerdictLeak && a.RecoveredByte == int(f.Spec.Secret) {
			return true, "still leaks " + f.Spec.ID
		}
		return false, ""
	}
	min, st := conform.Shrink(progs[0], oracle, shrinkBudget)
	f.Minimized = true
	f.ShrinkFrom, f.ShrinkTo, f.ShrinkEvals = st.From, st.To, st.Evals
	min.Name = fmt.Sprintf("find-%s-%s-min", f.Attack, f.Defense)
	t, err := conform.EmitTrace(min)
	if err != nil {
		// The shrunk attack still leaks but does not halt inside the
		// interpreter budget — keep the minimization, skip the promotion.
		f.Note = "not promoted: " + err.Error()
		return nil, nil
	}
	f.TraceName = min.Name
	return t, nil
}

// runFindProgram runs one candidate program on the find's machine shape
// under the broken defense, fault-free, and returns the probe latencies
// and the cycles the run took.
func runFindProgram(ctx context.Context, s AttackSpec, p *isa.Program, d config.Defense, cm config.Consistency, maxCycles uint64) ([]uint64, uint64, error) {
	run := config.Run{Machine: s.Machine(), Defense: d, Consistency: cm}
	m, err := harness.Complete(run, s.ID, []*isa.Program{p}, maxCycles, harness.WithContext(ctx))
	if err != nil {
		return nil, 0, err
	}
	return workload.ScanLatencies(m.Mem, s.ResultsBase(), s.ResultLines()), m.Cycle(), nil
}
