package leakage

import (
	"testing"

	"invisispec/internal/config"
)

func TestSmokeCorpusValid(t *testing.T) {
	specs := SmokeCorpus()
	if len(specs) < 5 {
		t.Fatalf("smoke corpus has %d specs, want at least 5", len(specs))
	}
	seen := map[string]bool{}
	var templates = map[Template]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("smoke spec invalid: %v", err)
		}
		if seen[s.ID] {
			t.Errorf("duplicate smoke spec ID %s", s.ID)
		}
		seen[s.ID] = true
		templates[s.Template] = true
		if _, err := s.Programs(); err != nil {
			t.Errorf("%s does not assemble: %v", s.ID, err)
		}
	}
	for _, want := range []Template{
		TemplateSpectre, TemplateSpectreCross, TemplateMeltdown,
		TemplateSpectreBTB, TemplateSpectreRSB, TemplateSSB, TemplateLLCSBContend,
	} {
		if !templates[want] {
			t.Errorf("smoke corpus has no %s variant", want)
		}
	}
}

func TestSmokeCorpusCoversThreatModelBoundary(t *testing.T) {
	found := false
	for _, s := range SmokeCorpus() {
		if s.Annotate && s.TrustAnnotations {
			found = true
			if s.Expect(config.ISSpectre) != VerdictLeak || s.Expect(config.ISFuture) != VerdictLeak {
				t.Errorf("%s: annotated spec under trust must expect a leak on IS defenses", s.ID)
			}
			if s.Expect(config.FenceSpectre) != VerdictBlocked {
				t.Errorf("%s: fences still block annotated loads", s.ID)
			}
		}
	}
	if !found {
		t.Fatal("smoke corpus has no annotated+trusted variant")
	}
}

func TestCorpusDeterministicAndPrefix(t *testing.T) {
	a := Corpus(42, 8)
	b := Corpus(42, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs across identical generations: %+v vs %+v", i, a[i], b[i])
		}
	}
	longer := Corpus(42, 12)
	for i := range a {
		if a[i] != longer[i] {
			t.Fatalf("Corpus(42, 8) is not a prefix of Corpus(42, 12) at %d", i)
		}
	}
	other := Corpus(43, 8)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestCorpusSpecsAssemble(t *testing.T) {
	for _, s := range Corpus(7, 16) {
		if err := s.Validate(); err != nil {
			t.Errorf("fuzzed spec invalid: %v", err)
			continue
		}
		progs, err := s.Programs()
		if err != nil {
			t.Errorf("%s does not assemble: %v", s.ID, err)
			continue
		}
		if len(progs) != s.Cores() {
			t.Errorf("%s: %d programs for %d cores", s.ID, len(progs), s.Cores())
		}
	}
}

func TestExpectMatrix(t *testing.T) {
	canonical := CanonicalSpectreSpec(84)
	noFB := canonical
	noFB.FlushBounds = false
	noFP := canonical
	noFP.FlushProbe = false
	meltdown := AttackSpec{ID: "m", Template: TemplateMeltdown, Secret: 9}
	cases := []struct {
		name string
		spec AttackSpec
		want map[config.Defense]Verdict
	}{
		{"canonical", canonical, map[config.Defense]Verdict{
			config.Base:         VerdictLeak,
			config.FenceSpectre: VerdictBlocked,
			config.ISSpectre:    VerdictBlocked,
			config.FenceFuture:  VerdictBlocked,
			config.ISFuture:     VerdictBlocked,
			config.SpecBox:      VerdictBlocked,
			config.BasicBlocker: VerdictBlocked,
		}},
		{"no-flush-bounds", noFB, map[config.Defense]Verdict{
			config.Base:         VerdictBlocked,
			config.ISSpectre:    VerdictBlocked,
			config.SpecBox:      VerdictBlocked,
			config.BasicBlocker: VerdictBlocked,
		}},
		{"no-flush-probe", noFP, map[config.Defense]Verdict{
			config.Base:      VerdictInconclusive,
			config.ISFuture:  VerdictInconclusive,
			config.ISSpectre: VerdictInconclusive,
			config.SpecBox:   VerdictInconclusive,
		}},
		{"meltdown", meltdown, map[config.Defense]Verdict{
			config.Base:         VerdictLeak,
			config.FenceSpectre: VerdictLeak,
			config.ISSpectre:    VerdictLeak,
			config.FenceFuture:  VerdictBlocked,
			config.ISFuture:     VerdictBlocked,
			config.SpecBox:      VerdictBlocked,
			config.BasicBlocker: VerdictLeak,
		}},
		// The two post-paper schemes' threat-model boundaries, validated
		// empirically by the smoke scan: SpecBox quarantines fills until the
		// ROB head so even exception transients stay invisible, but the §XI
		// annotation bypass precedes its issue hook; BasicBlocker's
		// block-boundary stall closes every branch-shaped window (annotated
		// or not) but cannot separate a faulting load from a dependent
		// transmit in the same basic block.
		{"annot-trust", func() AttackSpec {
			s := canonical
			s.Annotate, s.TrustAnnotations = true, true
			return s
		}(), map[config.Defense]Verdict{
			config.Base:         VerdictLeak,
			config.FenceSpectre: VerdictBlocked,
			config.ISSpectre:    VerdictLeak,
			config.FenceFuture:  VerdictBlocked,
			config.ISFuture:     VerdictLeak,
			config.SpecBox:      VerdictLeak,
			config.BasicBlocker: VerdictBlocked,
		}},
		// The post-v1 classes. BTB and RSB variants follow the v1 rows
		// exactly — the window opener is an indirect jump / return, but
		// those are still branches to every defense — as does LLC-SB
		// contention (the victim gadget is v1's behind a bounds check).
		{"btb", CanonicalBTBSpec(84), map[config.Defense]Verdict{
			config.Base:         VerdictLeak,
			config.FenceSpectre: VerdictBlocked,
			config.ISSpectre:    VerdictBlocked,
			config.FenceFuture:  VerdictBlocked,
			config.ISFuture:     VerdictBlocked,
			config.SpecBox:      VerdictBlocked,
			config.BasicBlocker: VerdictBlocked,
		}},
		{"rsb", CanonicalRSBSpec(84), map[config.Defense]Verdict{
			config.Base:         VerdictLeak,
			config.FenceSpectre: VerdictBlocked,
			config.ISFuture:     VerdictBlocked,
			config.BasicBlocker: VerdictBlocked,
		}},
		{"llcsb", CanonicalLLCSBSpec(84), map[config.Defense]Verdict{
			config.Base:      VerdictLeak,
			config.ISSpectre: VerdictBlocked,
			config.ISFuture:  VerdictBlocked,
			config.SpecBox:   VerdictBlocked,
		}},
		// SSB's window is an older store's unresolved address — no branch
		// anywhere — so every branch-scoped defense misses it by design:
		// the store-queue analogue of Meltdown's exception rows.
		{"ssb", CanonicalSSBSpec(84), map[config.Defense]Verdict{
			config.Base:         VerdictLeak,
			config.FenceSpectre: VerdictLeak,
			config.ISSpectre:    VerdictLeak,
			config.FenceFuture:  VerdictBlocked,
			config.ISFuture:     VerdictBlocked,
			config.SpecBox:      VerdictBlocked,
			config.BasicBlocker: VerdictLeak,
		}},
		{"ssb-no-flush-probe", func() AttackSpec {
			s := CanonicalSSBSpec(84)
			s.FlushProbe = false
			return s.withID()
		}(), map[config.Defense]Verdict{
			config.Base:         VerdictInconclusive,
			config.FenceSpectre: VerdictInconclusive,
			config.ISFuture:     VerdictInconclusive,
		}},
	}
	for _, tc := range cases {
		for d, want := range tc.want {
			if got := tc.spec.Expect(d); got != want {
				t.Errorf("%s under %s: Expect = %v, want %v", tc.name, d, got, want)
			}
		}
	}
}
