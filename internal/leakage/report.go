package leakage

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"invisispec/internal/artifact"
)

// ReportSchema identifies the artifact format; readers refuse other
// versions.
const ReportSchema = "leakage-report/v1"

// Cell is one (attack, defense) entry of the verdict matrix. Everything
// but Error is deterministic: the simulations are single-goroutine and
// seeded, and the scanner aggregates by matrix index, so the same corpus
// and options produce byte-identical cells at any worker count.
type Cell struct {
	Attack   string `json:"attack"`
	Template string `json:"template"`
	Secret   int    `json:"secret"`
	Defense  string `json:"defense"`
	// Trials is how many trials completed and fed the distinguisher
	// (fewer than requested when some trials failed).
	Trials  int     `json:"trials"`
	Verdict Verdict `json:"verdict"`
	// Expected is the defense-outcome matrix's prediction
	// (AttackSpec.Expect); ExpectedLeak flags cells where that prediction
	// is a leak — Base rows, Meltdown under Spectre-model defenses, and
	// the annotated variant under TrustSafeAnnotations — so report
	// consumers can tell a designed leak from a regression.
	Expected     Verdict `json:"expected"`
	ExpectedLeak bool    `json:"expected_leak,omitempty"`
	// Violation marks a gate failure: a trial error, a verdict that
	// contradicts the expectation, or an expected leak that recovered the
	// wrong byte.
	Violation     bool    `json:"violation,omitempty"`
	RecoveredByte int     `json:"recovered_byte"`
	HitRate       float64 `json:"hit_rate"`
	HotRate       float64 `json:"hot_rate"`
	Margin        float64 `json:"margin"`
	SNR           float64 `json:"snr"`
	Confidence    float64 `json:"confidence"`
	MedianLatency float64 `json:"median_latency"`
	SecretLatency float64 `json:"secret_latency"`
	// Error is the first trial failure, when any trial failed. It can
	// carry nondeterministic detail (timeouts depend on host speed), but
	// any error already fails the gate, so determinism of the passing
	// artifact is preserved.
	Error string `json:"error,omitempty"`
}

// ReportHost quarantines the nondeterministic host facts, mirroring the
// bench artifact's host block: everything outside it is byte-stable.
type ReportHost struct {
	WallMS float64 `json:"wall_ms"`
	Jobs   int     `json:"jobs"`
	CPUs   int     `json:"cpus"`
	GoOS   string  `json:"goos"`
	GoVer  string  `json:"go"`
}

// Report is a full leakage-scan artifact.
type Report struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	// Seed and Count identify a fuzzed corpus (Corpus(seed, count));
	// both zero for the fixed smoke corpus.
	Seed       int64      `json:"seed,omitempty"`
	Count      int        `json:"count,omitempty"`
	Trials     int        `json:"trials"`
	Thresholds Thresholds `json:"thresholds"`
	Defenses   []string   `json:"defenses"`
	Cells      []Cell     `json:"cells"`
	// Degraded lists the cells whose trials exhausted their retry budget
	// (campaign graceful degradation): the scan completed without them, the
	// CLI exits non-zero, and each entry carries a ready-to-run repro
	// command.
	Degraded []artifact.DegradedCell `json:"degraded,omitempty"`
	Host     *ReportHost             `json:"host,omitempty"`
}

// DeterministicPayload returns a copy with the host block stripped — the
// bytes that must be identical across worker counts, kernel choices, and
// interrupted-then-resumed campaigns. The chaos tests compare these.
func (r *Report) DeterministicPayload() *Report {
	cp := *r
	cp.Host = nil
	return &cp
}

// Violations returns the cells that fail the gate, in matrix order.
func (r *Report) Violations() []Cell {
	var out []Cell
	for _, c := range r.Cells {
		if c.Violation {
			out = append(out, c)
		}
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("leakage: writing report JSON: %w", err)
	}
	return nil
}

// ReadJSON parses a report and validates its schema tag.
func ReadJSON(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("leakage: reading report JSON: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("leakage: report JSON schema %q, want %q", r.Schema, ReportSchema)
	}
	return &r, nil
}

// cellMark renders one cell for the verdict table: the observed verdict,
// "*" when the matrix expects a leak there, "!" when the cell violates
// the gate.
func cellMark(c Cell) string {
	var s string
	switch c.Verdict {
	case VerdictLeak:
		s = "LEAK"
	case VerdictBlocked:
		s = "ok"
	default:
		s = "??"
	}
	if c.ExpectedLeak {
		s += "*"
	}
	if c.Violation {
		s += "!"
	}
	return s
}

// WriteTable prints the attack x defense verdict matrix the way
// cmd/leakscan shows it, with one row per attack and a legend.
func (r *Report) WriteTable(w io.Writer) {
	// Column order is the report's defense list; rows keep corpus order.
	byAttack := make(map[string]map[string]Cell)
	var attacks []string
	for _, c := range r.Cells {
		row, ok := byAttack[c.Attack]
		if !ok {
			row = make(map[string]Cell, len(r.Defenses))
			byAttack[c.Attack] = row
			attacks = append(attacks, c.Attack)
		}
		row[c.Defense] = c
	}
	wide := 6
	for _, a := range attacks {
		if len(a) > wide {
			wide = len(a)
		}
	}
	fmt.Fprintf(w, "%-*s", wide+2, "attack")
	for _, d := range r.Defenses {
		fmt.Fprintf(w, "%8s", d)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", wide+2+8*len(r.Defenses)))
	for _, a := range attacks {
		fmt.Fprintf(w, "%-*s", wide+2, a)
		for _, d := range r.Defenses {
			fmt.Fprintf(w, "%8s", cellMark(byAttack[a][d]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "LEAK = secret recovered, ok = no covert-channel signal, ?? = inconclusive")
	fmt.Fprintln(w, "*    = matrix expects a leak here (undefended baseline or designed threat-model gap)")
	fmt.Fprintln(w, "!    = VIOLATION: observed verdict contradicts the expectation (or trial error)")
}
