package leakage

import (
	"context"
	"testing"

	"invisispec/internal/config"
)

// Per-class leak/block tests: each post-v1 attack class's canonical spec
// must leak the planted secret on undefended Base and land exactly where
// the expected-outcome matrix says under IS-Fu — blocked for the
// branch-shaped classes (BTB, RSB, LLC-SB contention) and for SSB, whose
// bypassing loads are unsafe under the Futuristic model (an older
// unperformed store) so their fills stay invisible.
func testClassOnBaseAndISFu(t *testing.T, spec AttackSpec) {
	t.Helper()
	rep, err := Scan(context.Background(), []AttackSpec{spec}, ScanOptions{
		Defenses: []config.Defense{config.Base, config.ISFuture},
		Trials:   1,
		Name:     "class-" + spec.Template.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Violation {
			t.Errorf("%s under %s: violation (%v, expected %v)", c.Attack, c.Defense, c.Verdict, c.Expected)
		}
		switch config.Defense(c.Defense) {
		case config.Base:
			if c.Verdict != VerdictLeak {
				t.Errorf("%s on Base: verdict %v, want leak", c.Attack, c.Verdict)
			}
			if c.RecoveredByte != int(spec.Secret) {
				t.Errorf("%s on Base: recovered byte %d, want %d", c.Attack, c.RecoveredByte, spec.Secret)
			}
		case config.ISFuture:
			if c.Verdict != VerdictBlocked {
				t.Errorf("%s on IS-Fu: verdict %v, want blocked", c.Attack, c.Verdict)
			}
		}
	}
}

func TestClassBTBLeaksBaseBlockedISFu(t *testing.T) {
	testClassOnBaseAndISFu(t, CanonicalBTBSpec(84))
}

func TestClassRSBLeaksBaseBlockedISFu(t *testing.T) {
	testClassOnBaseAndISFu(t, CanonicalRSBSpec(84))
}

func TestClassSSBLeaksBaseBlockedISFu(t *testing.T) {
	testClassOnBaseAndISFu(t, CanonicalSSBSpec(84))
}

func TestClassLLCSBLeaksBaseBlockedISFu(t *testing.T) {
	testClassOnBaseAndISFu(t, CanonicalLLCSBSpec(84))
}

// TestRSBLeaksAtEveryDepth pins the emitLateCopy fix: the RSB victim has
// no training phase, so the gadget's cold instruction fetches trail the
// window-opening slot load by tens of cycles — the serialized divide
// chain must hold the return address unresolved long enough at every
// admissible call-nesting depth, not just the canonical one.
func TestRSBLeaksAtEveryDepth(t *testing.T) {
	for _, depth := range []int{1, 2, 4, 8} {
		spec := classSpec(TemplateSpectreRSB, 84, depth)
		rep, err := Scan(context.Background(), []AttackSpec{spec}, ScanOptions{
			Defenses: []config.Defense{config.Base},
			Trials:   1,
			Name:     "rsb-depth",
		})
		if err != nil {
			t.Fatal(err)
		}
		c := rep.Cells[0]
		if c.Verdict != VerdictLeak || c.RecoveredByte != 84 {
			t.Errorf("rsb depth %d on Base: verdict %v recovered %d, want leak of 84", depth, c.Verdict, c.RecoveredByte)
		}
	}
}

// TestSSBLeaksThroughBranchDefenses pins SSB's designed threat-model
// boundary: the speculation window is an older store's unresolved
// address, not a branch, so the branch-scoped defenses (fences after
// branches, IS-Sp's unresolved-branch test, BasicBlocker's block
// boundaries) miss it by design — documented expected-leak rows, not
// violations.
func TestSSBLeaksThroughBranchDefenses(t *testing.T) {
	rep, err := Scan(context.Background(), []AttackSpec{CanonicalSSBSpec(84)}, ScanOptions{
		Defenses: []config.Defense{config.FenceSpectre, config.ISSpectre, config.BasicBlocker},
		Trials:   1,
		Name:     "ssb-boundary",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Verdict != VerdictLeak || c.RecoveredByte != 84 {
			t.Errorf("ssb under %s: verdict %v recovered %d, want leak of 84", c.Defense, c.Verdict, c.RecoveredByte)
		}
		if !c.ExpectedLeak || c.Violation {
			t.Errorf("ssb under %s: designed threat-model leak misclassified (expected=%v violation=%v)", c.Defense, c.ExpectedLeak, c.Violation)
		}
	}
}
