package leakage

// Chaos self-test for the leakage campaign: a journaled scan SIGKILLed at
// seeded random checkpoint appends must resume to a report whose
// deterministic payload is byte-identical to an uninterrupted scan's, at 1
// and 4 workers. Part of `make chaos`.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"invisispec/internal/campaign"
	"invisispec/internal/config"
)

func TestChaosLeakageKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("leakage chaos in -short")
	}
	specs := SmokeCorpus()[:2]
	base := ScanOptions{
		Defenses:    []config.Defense{config.Base, config.ISSpectre},
		Consistency: config.TSO,
		Trials:      2,
		Name:        "chaos",
	}

	payload := func(r *Report) []byte {
		t.Helper()
		b, err := json.Marshal(r.DeterministicPayload())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	clean, err := Scan(context.Background(), specs, base)
	if err != nil {
		t.Fatal(err)
	}
	want := payload(clean)
	cellCount := len(specs) * len(base.Defenses) * base.Trials

	for _, seed := range []int64{11, 22, 33} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed%d-w%d", seed, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				opts := base
				opts.Jobs = workers
				opts.Campaign = campaign.Options{
					Journal: filepath.Join(t.TempDir(), "j.jsonl"),
					Retries: 1,
					Seed:    seed,
				}
				// Kill the scan at a random checkpoint append, then resume;
				// a kill point past the remaining appends means the scan
				// completed this round.
				opts.Campaign.Chaos = &campaign.ChaosOptions{
					Seed:         rng.Int63(),
					KillAtAppend: 1 + rng.Intn(cellCount),
				}
				rep, err := Scan(context.Background(), specs, opts)
				if err != nil {
					if !errors.Is(err, campaign.ErrKilled) {
						t.Fatal(err)
					}
					resumed := opts
					resumed.Campaign.Chaos = nil
					resumed.Campaign.Resume = true
					rep, err = Scan(context.Background(), specs, resumed)
					if err != nil {
						t.Fatal(err)
					}
				}
				if got := payload(rep); !bytes.Equal(got, want) {
					t.Fatalf("resumed leakage payload drifted from clean run:\n%s\n--- want ---\n%s", got, want)
				}
			})
		}
	}
}
