package leakage

import (
	"fmt"
	"math/rand"
)

// This file generates attack corpora. Both generators are deterministic:
// SmokeCorpus is a fixed list, Corpus derives everything from its seed, so
// a report names its corpus by (generator, seed, n) and any row can be
// replayed.

// defaultID derives the spec's report name from its parameters, so a
// report row identifies its variant without a side table.
func (s AttackSpec) defaultID() string {
	switch s.Template {
	case TemplateMeltdown:
		return fmt.Sprintf("meltdown-s%d", s.Secret)
	default:
		id := fmt.Sprintf("%s-s%d-r%d-%dx%d", s.Template, s.Secret, s.TrainRounds, s.ProbeLines, s.ProbeStride)
		if !s.FlushBounds {
			id += "-nofb"
		}
		if !s.FlushProbe {
			id += "-nofp"
		}
		if s.Annotate {
			id += "-annot"
		}
		if s.TrustAnnotations {
			id += "-trust"
		}
		return id
	}
}

// withID fills in the derived ID.
func (s AttackSpec) withID() AttackSpec {
	s.ID = s.defaultID()
	return s
}

// ViaWorkload returns a copy of the spec that resolves its programs
// through the named registry workload — an imported trace recorded from a
// program this spec's parameters describe. The ID gains an "@workload"
// suffix so scan cells and journal identities stay distinct from the
// template-assembled spec's.
func (s AttackSpec) ViaWorkload(name string) AttackSpec {
	s.Workload = name
	s.ID += "@" + name
	return s
}

// spectreSpec builds a same-thread Spectre spec with the canonical flush
// settings.
func spectreSpec(secret byte, rounds, lines, stride int) AttackSpec {
	return AttackSpec{
		Template:    TemplateSpectre,
		Secret:      secret,
		TrainRounds: rounds,
		ProbeLines:  lines,
		ProbeStride: stride,
		FlushBounds: true,
		FlushProbe:  true,
	}.withID()
}

// CanonicalSpectreSpec returns the paper's Figure 1 attack with the given
// secret: same-thread placement, 16 training rounds, 256 probe lines of
// 64 bytes, bounds and probe array flushed. cmd/spectre-poc runs exactly
// this spec.
func CanonicalSpectreSpec(secret byte) AttackSpec {
	return spectreSpec(secret, 16, 256, 64)
}

// classSpec builds a spec of any Spectre-shaped template with the
// canonical flush settings and probe geometry. TrainRounds means what the
// template says it means: BTB training calls for v2, call-nesting depth
// for the RSB variant, bypass rounds for SSB.
func classSpec(t Template, secret byte, rounds int) AttackSpec {
	return AttackSpec{
		Template:    t,
		Secret:      secret,
		TrainRounds: rounds,
		ProbeLines:  256,
		ProbeStride: 64,
		FlushBounds: true,
		FlushProbe:  true,
	}.withID()
}

// Canonical per-class specs: the representative variant of each of the
// four post-v1 attack classes, used by the smoke corpus, the search
// loop's seeds, and the per-class unit tests.
func CanonicalBTBSpec(secret byte) AttackSpec   { return classSpec(TemplateSpectreBTB, secret, 16) }
func CanonicalRSBSpec(secret byte) AttackSpec   { return classSpec(TemplateSpectreRSB, secret, 4) }
func CanonicalSSBSpec(secret byte) AttackSpec   { return classSpec(TemplateSSB, secret, 8) }
func CanonicalLLCSBSpec(secret byte) AttackSpec { return classSpec(TemplateLLCSBContend, secret, 16) }

// SmokeCorpus returns the fixed ten-variant corpus the CI gate scans: one
// representative of every template and threat-model corner, small enough
// to run in CI yet covering the canonical attack, the fuzz axes (training
// depth, probe geometry), the cross-thread placement, the annotation
// threat-model boundary, Meltdown, and the four post-v1 classes (BTB,
// RSB, store bypass, LLC-SB contention).
func SmokeCorpus() []AttackSpec {
	canonical := spectreSpec(84, 16, 256, 64)
	deepTrain := spectreSpec(173, 32, 256, 64)
	wideStride := spectreSpec(61, 16, 128, 128)
	cross := AttackSpec{
		Template:    TemplateSpectreCross,
		Secret:      199,
		TrainRounds: 16,
		ProbeLines:  256,
		ProbeStride: 64,
		FlushBounds: true,
		FlushProbe:  true,
	}.withID()
	annotated := AttackSpec{
		Template:         TemplateSpectre,
		Secret:           84,
		TrainRounds:      16,
		ProbeLines:       256,
		ProbeStride:      64,
		FlushBounds:      true,
		FlushProbe:       true,
		Annotate:         true,
		TrustAnnotations: true,
	}.withID()
	meltdown := AttackSpec{Template: TemplateMeltdown, Secret: 90}.withID()
	return []AttackSpec{
		canonical, deepTrain, wideStride, cross, annotated, meltdown,
		CanonicalBTBSpec(77), CanonicalRSBSpec(118), CanonicalSSBSpec(151), CanonicalLLCSBSpec(202),
	}
}

// Corpus generates n fuzzed attack specs from seed, deterministically:
// the same (seed, n) always yields the same corpus, and Corpus(seed, n)
// is a prefix of Corpus(seed, n+k). The mix weights same-thread Spectre
// variants (with fuzzed training depth, probe geometry, and secret)
// heaviest, and sprinkles in cross-thread placements, the annotation
// threat-model corner, the no-flush-bounds negative control, and
// Meltdown. Duplicate parameter draws are deduplicated by ID re-rolling,
// bounded so pathological (seed, n) pairs still terminate.
func Corpus(seed int64, n int) []AttackSpec {
	rng := rand.New(rand.NewSource(seed))
	var (
		specs = make([]AttackSpec, 0, n)
		seen  = map[string]bool{}
	)
	rounds := []int{4, 8, 16, 32}
	rsbDepths := []int{1, 2, 4, 8}
	lines := []int{64, 128, 256}
	strides := []int{64, 128, 256}
	for len(specs) < n {
		var s AttackSpec
		// Up to 32 re-rolls to find an unseen variant; after that accept
		// the duplicate (tiny parameter spaces saturate).
		for attempt := 0; attempt < 32; attempt++ {
			switch roll := rng.Intn(14); {
			case roll < 5: // same-thread Spectre, fuzzed axes
				l := lines[rng.Intn(len(lines))]
				s = spectreSpec(
					byte(1+rng.Intn(l-1)),
					rounds[rng.Intn(len(rounds))],
					l,
					strides[rng.Intn(len(strides))],
				)
			case roll < 7: // cross-thread placement, fuzzed secret + depth
				s = AttackSpec{
					Template:    TemplateSpectreCross,
					Secret:      byte(1 + rng.Intn(255)),
					TrainRounds: rounds[rng.Intn(len(rounds))],
					ProbeLines:  256,
					ProbeStride: 64,
					FlushBounds: true,
					FlushProbe:  true,
				}.withID()
			case roll < 8: // annotation threat-model corner
				s = AttackSpec{
					Template:         TemplateSpectre,
					Secret:           byte(1 + rng.Intn(255)),
					TrainRounds:      16,
					ProbeLines:       256,
					ProbeStride:      64,
					FlushBounds:      true,
					FlushProbe:       true,
					Annotate:         true,
					TrustAnnotations: true,
				}.withID()
			case roll < 9: // negative control: window never opens
				base := spectreSpec(byte(1+rng.Intn(255)), 16, 256, 64)
				base.FlushBounds = false
				s = base.withID()
			case roll < 10: // Meltdown, fuzzed secret
				s = AttackSpec{Template: TemplateMeltdown, Secret: byte(1 + rng.Intn(255))}.withID()
			case roll < 11: // Spectre v2 (BTB), fuzzed secret + training depth
				s = classSpec(TemplateSpectreBTB, byte(1+rng.Intn(255)), rounds[rng.Intn(len(rounds))])
			case roll < 12: // RSB variant, fuzzed secret + nesting depth (RAS-capped)
				s = classSpec(TemplateSpectreRSB, byte(1+rng.Intn(255)), rsbDepths[rng.Intn(len(rsbDepths))])
			case roll < 13: // store bypass, fuzzed secret + bypass rounds
				s = classSpec(TemplateSSB, byte(1+rng.Intn(255)), rounds[rng.Intn(len(rounds))])
			default: // LLC-SB contention, fuzzed secret + training depth
				s = classSpec(TemplateLLCSBContend, byte(1+rng.Intn(255)), rounds[rng.Intn(len(rounds))])
			}
			if !seen[s.ID] {
				break
			}
		}
		seen[s.ID] = true
		specs = append(specs, s)
	}
	return specs
}
