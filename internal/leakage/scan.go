package leakage

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"invisispec/internal/campaign"
	"invisispec/internal/config"
	"invisispec/internal/harness"
	"invisispec/internal/workload"
)

// ScanOptions tunes a Scan.
type ScanOptions struct {
	// Defenses selects the matrix columns. Nil means config.AllDefenses().
	Defenses []config.Defense
	// Consistency is the memory model every cell runs under (TSO default).
	Consistency config.Consistency
	// Trials is how many repeated simulations feed each cell's
	// distinguisher. Trial 0 is fault-free; trials 1..n-1 run with
	// deterministic fault injection seeded from (spec, defense, trial),
	// so the distinguisher sees realistic timing noise without losing
	// reproducibility. Zero or negative means 3.
	Trials int
	// Jobs is the worker-pool width (runner.Options.Jobs semantics).
	Jobs int
	// Timeout bounds each trial's host wall-clock time. Zero means none.
	Timeout time.Duration
	// MaxCycles bounds each trial's simulated time. Zero means 30M cycles,
	// comfortably above the slowest corpus variant under the slowest
	// defense.
	MaxCycles uint64
	// Thresholds tunes the distinguisher. Zero value means defaults.
	Thresholds Thresholds
	// Progress, when non-nil, receives the runner's per-trial progress
	// lines.
	Progress io.Writer
	// Name labels the report (e.g. "smoke" or "fuzz-seed42").
	Name string
	// Campaign carries the resilience knobs (journal/resume/retries/
	// isolation/chaos) through to the execution layer; Jobs, Timeout, and
	// Progress above override its pool fields.
	Campaign campaign.Options
	// Repro, when non-nil, builds the ready-to-run reproduction command
	// recorded for a degraded cell (cmd/leakscan supplies one from its
	// flags).
	Repro func(TrialSpec) string
}

// TrialSpec is one scan cell's content identity — attack, defense,
// consistency model, trial index, cycle budget — used as the journal hash
// key and shipped to isolated workers, which re-run it via RunTrialSpec.
type TrialSpec struct {
	Attack      AttackSpec         `json:"attack"`
	Defense     config.Defense     `json:"defense"`
	Consistency config.Consistency `json:"consistency"`
	Trial       int                `json:"trial"`
	MaxCycles   uint64             `json:"max_cycles"`
}

// RunTrialSpec executes one trial from its spec alone and returns the
// probe-line latencies — the in-process cell body and the -cellworker
// handler for isolation mode.
func RunTrialSpec(ctx context.Context, ts TrialSpec) ([]uint64, error) {
	return runTrial(ctx, ts.Attack, ts.Defense, ts.Consistency, ts.Trial, ts.MaxCycles)
}

// Scan runs every spec under every defense for Trials repetitions,
// sharded across the runner pool, and aggregates each (spec, defense)
// cell through the distinguisher into a Report. Cells are emitted in
// spec-major, defense-minor order and every per-trial result is addressed
// by its matrix index, so the report is byte-identical regardless of
// worker count or completion order.
//
// Scan returns an error only for malformed inputs (an invalid spec); a
// failing trial — timeout, budget exhaustion, simulator panic — is
// recorded in its cell, which the gate then counts as a violation.
func Scan(ctx context.Context, specs []AttackSpec, opts ScanOptions) (*Report, error) {
	defenses := opts.Defenses
	if len(defenses) == 0 {
		defenses = config.AllDefenses()
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 3
	}
	maxCycles := opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = 30_000_000
	}
	th := opts.Thresholds.orDefault()
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}

	cells := make([]campaign.Cell, 0, len(specs)*len(defenses)*trials)
	cellSpecs := make([]TrialSpec, 0, cap(cells))
	for _, s := range specs {
		for _, d := range defenses {
			for t := 0; t < trials; t++ {
				ts := TrialSpec{Attack: s, Defense: d, Consistency: opts.Consistency, Trial: t, MaxCycles: maxCycles}
				cellSpecs = append(cellSpecs, ts)
				cells = append(cells, campaign.Cell{
					Name: fmt.Sprintf("%s/%s/t%d", s.ID, d, t),
					Spec: ts,
					Run: func(ctx context.Context) (any, error) {
						return RunTrialSpec(ctx, ts)
					},
				})
			}
		}
	}
	copts := opts.Campaign
	copts.Workers = opts.Jobs
	copts.CellTimeout = opts.Timeout
	copts.Progress = opts.Progress
	results, err := campaign.Run(ctx, "leakscan-"+opts.Name, cells, copts)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Schema:     ReportSchema,
		Name:       opts.Name,
		Trials:     trials,
		Thresholds: th,
	}
	for _, d := range defenses {
		rep.Defenses = append(rep.Defenses, d.String())
	}
	idx := 0
	for _, s := range specs {
		for _, d := range defenses {
			lats := make([][]uint64, 0, trials)
			firstErr := ""
			for t := 0; t < trials; t++ {
				tr := results[idx]
				idx++
				if tr.Err != nil {
					if firstErr == "" {
						firstErr = tr.Err.Error()
					}
					continue
				}
				var trial []uint64
				if err := json.Unmarshal(tr.Value, &trial); err != nil {
					return nil, fmt.Errorf("leakage: decoding journaled trial %s: %w", tr.Name, err)
				}
				lats = append(lats, trial)
			}
			a := Analyze(lats, int(s.Secret), th)
			expected := s.Expect(d)
			cell := Cell{
				Attack:        s.ID,
				Template:      s.Template.String(),
				Secret:        int(s.Secret),
				Defense:       d.String(),
				Trials:        len(lats),
				Verdict:       a.Verdict,
				Expected:      expected,
				ExpectedLeak:  expected == VerdictLeak,
				RecoveredByte: a.RecoveredByte,
				HitRate:       a.HitRate,
				HotRate:       a.HotRate,
				Margin:        a.Margin,
				SNR:           a.SNR,
				Confidence:    a.Confidence,
				MedianLatency: a.MedianLatency,
				SecretLatency: a.SecretLatency,
				Error:         firstErr,
			}
			// A cell violates the gate when any trial failed outright,
			// when the observed verdict contradicts the matrix, or when a
			// leak "worked" but exfiltrated the wrong byte (a corpus
			// whose attacks recover garbage tests nothing).
			cell.Violation = firstErr != "" ||
				cell.Verdict != cell.Expected ||
				(cell.Expected == VerdictLeak && cell.RecoveredByte != cell.Secret)
			rep.Cells = append(rep.Cells, cell)
		}
	}
	rep.Degraded = campaign.Degraded(results, func(o campaign.Outcome) string {
		if opts.Repro == nil {
			return ""
		}
		return opts.Repro(cellSpecs[o.Index])
	})
	return rep, nil
}

// runTrial assembles and runs one (spec, defense, trial) simulation to
// completion and extracts the probe-line latencies from its functional
// memory.
func runTrial(ctx context.Context, s AttackSpec, d config.Defense, cm config.Consistency, trial int, maxCycles uint64) ([]uint64, error) {
	progs, err := s.Programs()
	if err != nil {
		return nil, err
	}
	run := config.Run{Machine: s.Machine(), Defense: d, Consistency: cm}
	hopts := []harness.Option{harness.WithContext(ctx)}
	if trial > 0 {
		hopts = append(hopts, harness.WithFaultSeed(trialSeed(s.ID, d, trial)))
	}
	m, err := harness.Complete(run, s.ID, progs, maxCycles, hopts...)
	if err != nil {
		return nil, err
	}
	return workload.ScanLatencies(m.Mem, s.ResultsBase(), s.ResultLines()), nil
}

// SingleTrialLatencies runs one fault-free trial of the spec under a
// defense and returns the raw probe-line latencies — the distribution
// behind a cell, for CLIs that want to print it (spectre-poc -full).
func SingleTrialLatencies(ctx context.Context, s AttackSpec, d config.Defense) ([]uint64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return runTrial(ctx, s, d, config.TSO, 0, 30_000_000)
}

// trialSeed derives the deterministic fault-injection seed for one trial
// from the cell's identity, so reruns and resumes reproduce the exact
// noise.
func trialSeed(id string, d config.Defense, trial int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", id, d, trial)
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}
