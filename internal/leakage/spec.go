// Package leakage is the automated leakage-testing subsystem: a seeded
// corpus of transient-attack variants (parameterizing the Spectre v1 and
// Meltdown templates in internal/workload), a statistical distinguisher
// that turns repeated per-probe-line latency measurements into leak
// verdicts with confidence scores, and a scanner that fans the
// corpus x defense matrix through the internal/runner worker pool and
// emits a deterministic JSON report. cmd/leakscan wires it into CI as a
// security regression gate: the InvisiSpec defenses must block every
// attack they claim to block, and the attacks themselves must still work
// on the undefended baseline (a corpus whose attacks silently stopped
// leaking tests nothing).
package leakage

import (
	"fmt"

	"invisispec/internal/config"
	"invisispec/internal/isa"
	"invisispec/internal/workload"
)

// Template selects which transient-attack program family a spec
// instantiates.
type Template int

const (
	// TemplateSpectre is the same-thread Spectre v1 bounds-check bypass
	// (workload.SpectreV1With): attacker and victim share one core, the
	// paper's SameThread setting.
	TemplateSpectre Template = iota
	// TemplateSpectreCross is the cross-thread placement
	// (workload.SpectreV1CrossThread): victim on core 0, attacker on
	// core 1, leaking through the shared LLC.
	TemplateSpectreCross
	// TemplateMeltdown is the exception-based attack (workload.Meltdown):
	// a privileged load faults at retirement but its dependents run
	// transiently. Spectre-model defenses do not squash exception-caused
	// transients, so this template distinguishes the Spectre and
	// Futuristic threat models.
	TemplateMeltdown
	// TemplateSpectreBTB is Spectre v2 (workload.SpectreV2With): the
	// attacker poisons the BTB so the victim's indirect dispatch
	// transiently jumps to a secret-reading gadget. TrainRounds counts
	// BTB training calls; FlushBounds flushes the dispatch slot.
	TemplateSpectreBTB
	// TemplateSpectreRSB is the return-based variant
	// (workload.SpectreRSBWith): a deep call chain whose innermost frame
	// returns through a flushed memory slot, so the RAS-predicted return
	// site — the gadget — runs transiently. TrainRounds is the nesting
	// depth; FlushBounds flushes the return slot.
	TemplateSpectreRSB
	// TemplateSSB is the speculative store bypass (workload.SSBWith): a
	// load issues past an older store with an unresolved address and
	// reads the stale secret. No branch opens the window, so
	// branch-scoped defenses never engage — the store-queue analogue of
	// Meltdown's threat-model split. TrainRounds counts bypass rounds.
	TemplateSSB
	// TemplateLLCSBContend is the cross-core speculative-buffer residue
	// test (workload.LLCSBContendWith): an autonomous victim runs one
	// out-of-bounds gadget call whose transient loads burst at the
	// secret-indexed line; a purely passive observer on the second core
	// then times the probe array. Under InvisiSpec the fills are confined
	// to the victim's per-core LLC-SB and must stay invisible.
	TemplateLLCSBContend
)

// String names the template the way the report's cells do.
func (t Template) String() string {
	switch t {
	case TemplateSpectre:
		return "spectre"
	case TemplateSpectreCross:
		return "spectre-cross"
	case TemplateMeltdown:
		return "meltdown"
	case TemplateSpectreBTB:
		return "spectre-btb"
	case TemplateSpectreRSB:
		return "spectre-rsb"
	case TemplateSSB:
		return "ssb"
	case TemplateLLCSBContend:
		return "llcsb-contend"
	}
	return fmt.Sprintf("Template(%d)", int(t))
}

// AttackSpec is one corpus entry: a fully-parameterized transient attack
// that assembles to concrete programs. Every field is plain data so specs
// serialize, compare, and replay deterministically.
type AttackSpec struct {
	// ID names the spec in reports, errors, and progress lines. Corpus
	// generators derive it from the parameters so a report row is
	// reproducible from its name alone.
	ID string
	// Template picks the program family.
	Template Template
	// Secret is the byte the attack tries to exfiltrate. Must be nonzero
	// (probe line 0 collects training/prefetch residue) and, for Spectre
	// templates, less than ProbeLines.
	Secret byte
	// TrainRounds, ProbeLines, ProbeStride, FlushBounds, FlushProbe and
	// Annotate parameterize the Spectre templates exactly as
	// workload.SpectreParams does; Meltdown ignores them (its probe
	// geometry is fixed at 256 lines x 64 bytes).
	TrainRounds int
	ProbeLines  int
	ProbeStride int
	FlushBounds bool
	FlushProbe  bool
	Annotate    bool
	// TrustAnnotations runs the machine with
	// config.Machine.TrustSafeAnnotations set (§XI): annotated-safe loads
	// bypass the USL machinery. Combined with Annotate this re-opens the
	// leak under IS-Sp/IS-Fu — deliberately, to pin the threat-model
	// boundary; the report marks those cells as expected leaks.
	TrustAnnotations bool
	// Workload, when set, resolves the programs through the workload
	// registry instead of assembling the template — the imported-trace
	// path: a recorded attack replays byte-identically while the template
	// and geometry fields keep driving the expected-outcome matrix, the
	// probe scan, and the machine shape. The named workload must have been
	// recorded from a program this spec's parameters describe; the
	// omitempty tag keeps journal identities of template-assembled specs
	// unchanged.
	Workload string `json:",omitempty"`
}

// params converts the spec to the workload parameter block.
func (s AttackSpec) params() workload.SpectreParams {
	return workload.SpectreParams{
		Secret:      s.Secret,
		TrainRounds: s.TrainRounds,
		ProbeLines:  s.ProbeLines,
		ProbeStride: s.ProbeStride,
		FlushBounds: s.FlushBounds,
		FlushProbe:  s.FlushProbe,
		Annotate:    s.Annotate,
	}
}

// Validate checks the spec assembles to a well-formed attack.
func (s AttackSpec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("leakage: spec has no ID")
	}
	if s.Secret == 0 {
		return fmt.Errorf("leakage: %s: secret must be nonzero (line 0 collects training residue)", s.ID)
	}
	switch s.Template {
	case TemplateSpectre, TemplateSpectreCross, TemplateLLCSBContend:
		if err := s.params().Validate(); err != nil {
			return fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
	case TemplateSpectreBTB:
		if err := s.params().ValidateBTB(); err != nil {
			return fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
	case TemplateSpectreRSB:
		if err := s.params().ValidateRSB(); err != nil {
			return fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
	case TemplateSSB:
		if err := s.params().ValidateSSB(); err != nil {
			return fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
		if s.TrustAnnotations {
			return fmt.Errorf("leakage: %s: TrustAnnotations unsupported (ssb has no annotated loads)", s.ID)
		}
	case TemplateMeltdown:
		// Geometry is fixed; only the secret matters.
	default:
		return fmt.Errorf("leakage: %s: unknown template %d", s.ID, int(s.Template))
	}
	return nil
}

// Cores returns how many cores the spec's machine needs.
func (s AttackSpec) Cores() int {
	if s.Template == TemplateSpectreCross || s.Template == TemplateLLCSBContend {
		return 2
	}
	return 1
}

// Machine returns the machine configuration the spec runs on.
func (s AttackSpec) Machine() config.Machine {
	m := config.Default(s.Cores())
	m.TrustSafeAnnotations = s.TrustAnnotations
	return m
}

// Programs assembles the spec, one program per core: from the registry
// when Workload names an imported recording, from the template otherwise.
func (s AttackSpec) Programs() ([]*isa.Program, error) {
	if s.Workload != "" {
		w, err := workload.Lookup(s.Workload)
		if err != nil {
			return nil, fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
		progs, err := w.Programs(w.DefaultCores())
		if err != nil {
			return nil, fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
		if len(progs) != s.Cores() {
			return nil, fmt.Errorf("leakage: %s: workload %q provides %d core(s), template %s needs %d",
				s.ID, s.Workload, len(progs), s.Template, s.Cores())
		}
		return progs, nil
	}
	switch s.Template {
	case TemplateSpectre:
		p, err := workload.SpectreV1With(s.params())
		if err != nil {
			return nil, fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
		return []*isa.Program{p}, nil
	case TemplateSpectreCross:
		progs, err := workload.SpectreV1CrossThread(s.params())
		if err != nil {
			return nil, fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
		return progs, nil
	case TemplateMeltdown:
		return []*isa.Program{workload.Meltdown(s.Secret)}, nil
	case TemplateSpectreBTB:
		p, err := workload.SpectreV2With(s.params())
		if err != nil {
			return nil, fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
		return []*isa.Program{p}, nil
	case TemplateSpectreRSB:
		p, err := workload.SpectreRSBWith(s.params())
		if err != nil {
			return nil, fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
		return []*isa.Program{p}, nil
	case TemplateSSB:
		p, err := workload.SSBWith(s.params())
		if err != nil {
			return nil, fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
		return []*isa.Program{p}, nil
	case TemplateLLCSBContend:
		progs, err := workload.LLCSBContendWith(s.params())
		if err != nil {
			return nil, fmt.Errorf("leakage: %s: %w", s.ID, err)
		}
		return progs, nil
	}
	return nil, fmt.Errorf("leakage: %s: unknown template %d", s.ID, int(s.Template))
}

// ResultsBase returns where the attacker's per-probe-line latencies land
// in functional memory.
func (s AttackSpec) ResultsBase() uint64 {
	if s.Template == TemplateMeltdown {
		return workload.MeltdownResultsBase
	}
	return workload.SpectreResultsBase
}

// ResultLines returns how many probe-line latencies the attack records.
func (s AttackSpec) ResultLines() int {
	if s.Template == TemplateMeltdown {
		return 256
	}
	return s.ProbeLines
}

// Expect returns the verdict the defense-outcome matrix predicts for this
// spec under defense d. The matrix is empirical ground truth, established
// by running every variant class under every defense:
//
//   - Spectre (both placements, full flush): leaks only on Base. All four
//     defenses close it — fences serialize the window shut, InvisiSpec
//     keeps the squashed loads invisible.
//   - FlushProbe=false: probe line 0 stays hot with training residue in
//     every configuration, so the scan cannot distinguish leak from
//     blocked — Inconclusive everywhere (a distinguisher control).
//   - FlushBounds=false (with the probe flushed): the bounds load hits in
//     L1, the branch resolves before the secret arrives, and the window
//     closes — Blocked everywhere, Base included (a negative control).
//   - Annotate+TrustAnnotations: safe-annotated loads bypass the USL
//     machinery, so the leak re-opens on every invisible-load scheme
//     (IS-Sp, IS-Fu, SpecBox) and Base; the fence defenses and
//     BasicBlocker still close the window in the front end, which the
//     annotation does not touch. This is the §XI threat-model boundary,
//     reported as an expected leak.
//   - Meltdown: exceptions are a Futuristic squash source, so it leaks on
//     Base, Fe-Sp and IS-Sp; Fe-Fu/IS-Fu block it. SpecBox blocks it too
//     (fills stay quarantined until the ROB head, and the faulting load
//     never reaches the head un-squashed); BasicBlocker leaks it — the
//     faulting load and its dependent transmit load share a basic block,
//     so no block-boundary stall separates them.
//   - Spectre-BTB and Spectre-RSB follow the v1 rows exactly: the window
//     opener is an indirect jump / return instead of a conditional
//     branch, but all of those are branches to every defense (fences
//     serialize after them, IS-Sp's unresolved-branch test covers them,
//     BasicBlocker's block boundaries fall at them), so the full-flush
//     variants leak only on Base and the control/annotation axes behave
//     as in v1.
//   - SSB: the window is an older store's unresolved address — no branch
//     anywhere — so every branch-scoped defense misses it BY DESIGN:
//     leaks on Base, Fe-Sp, IS-Sp and BasicBlocker (documented
//     threat-model rows, the store-queue analogue of Meltdown's
//     exception rows; InvisiSpec's Spectre model only covers branch
//     speculation). Fe-Fu's per-load fences wait out the store, and
//     under IS-Fu/SpecBox the bypassing loads are unsafe (an older
//     unperformed store) so their fills stay invisible: Blocked.
//   - LLC-SB contention: the victim-side gadget is v1's behind the same
//     bounds check, so the rows match the cross-thread placement —
//     full-flush leaks only on Base; under every InvisiSpec scheme the
//     burst fills land in the victim's LLC-SB and stay invisible to the
//     observer core.
func (s AttackSpec) Expect(d config.Defense) Verdict {
	if s.Template == TemplateMeltdown {
		switch d {
		case config.Base, config.FenceSpectre, config.ISSpectre, config.BasicBlocker:
			return VerdictLeak
		}
		return VerdictBlocked
	}
	if s.Template == TemplateSSB {
		if !s.FlushProbe {
			return VerdictInconclusive
		}
		switch d {
		case config.Base, config.FenceSpectre, config.ISSpectre, config.BasicBlocker:
			return VerdictLeak
		}
		return VerdictBlocked
	}
	if !s.FlushProbe {
		return VerdictInconclusive
	}
	if !s.FlushBounds {
		return VerdictBlocked
	}
	if s.Annotate && s.TrustAnnotations {
		switch d {
		case config.Base, config.ISSpectre, config.ISFuture, config.SpecBox:
			return VerdictLeak
		}
		return VerdictBlocked
	}
	if d == config.Base {
		return VerdictLeak
	}
	return VerdictBlocked
}
