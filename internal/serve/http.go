package serve

// HTTP surface: the JSON API and the HTML dashboard (rendered by
// internal/report). Routing uses the method+pattern mux so handlers are
// method-exact and path parameters come from r.PathValue.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"invisispec/internal/conform"
	"invisispec/internal/leakage"
	"invisispec/internal/report"
	"invisispec/internal/runner"
)

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /api/v1/jobs/{id}/verdict", s.handleVerdict)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /{$}", s.handleDashIndex)
	mux.HandleFunc("GET /jobs/{id}", s.handleDashJob)
	mux.HandleFunc("GET /trends", s.handleDashTrends)
	return mux
}

// jsonEncoder is the API's uniform encoder: two-space indent, trailing
// newline (encoding/json.Encoder semantics).
func jsonEncoder(w io.Writer) *json.Encoder {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc
}

// writeJSON emits a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	jsonEncoder(w).Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// jobStatus is the GET /api/v1/jobs/{id} document (and the list entry).
type jobStatus struct {
	ID       string   `json:"id"`
	Type     string   `json:"type"`
	Name     string   `json:"name"`
	State    JobState `json:"state"`
	Created  string   `json:"created"`
	Started  string   `json:"started,omitempty"`
	Finished string   `json:"finished,omitempty"`
	Progress struct {
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Total     int   `json:"total"`
	} `json:"progress"`
	Cache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Cancelled int64 `json:"cancelled,omitempty"`
	} `json:"cache"`
	Degraded    int    `json:"degraded,omitempty"`
	Error       string `json:"error,omitempty"`
	ArtifactURL string `json:"artifact_url,omitempty"`
	VerdictURL  string `json:"verdict_url,omitempty"`
}

// statusFor snapshots a job. Callers must NOT hold s.mu.
func (s *Server) statusFor(j *Job) jobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

func (s *Server) statusLocked(j *Job) jobStatus {
	st := jobStatus{
		ID:      j.ID,
		Type:    j.Req.Type,
		Name:    j.Req.Name,
		State:   j.stateV,
		Created: j.Created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	st.Progress.Completed = j.completed.Load()
	st.Progress.Failed = j.failed.Load()
	st.Progress.Total = j.totalCells
	st.Cache.Hits = j.cacheHits.Load()
	st.Cache.Misses = j.cacheMisses.Load()
	st.Cache.Cancelled = j.cancelled.Load()
	st.Degraded = j.degraded
	st.Error = j.errText
	if j.stateV == StateDone {
		st.ArtifactURL = "/api/v1/jobs/" + j.ID + "/artifact"
		if j.verdict != nil {
			st.VerdictURL = "/api/v1/jobs/" + j.ID + "/verdict"
		}
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining; resubmit after restart (completed cells are cached)")
		return
	}
	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("j%d", s.nextID),
		Req:     req,
		Created: time.Now(),
		stateV:  StatePending,
		srv:     s,
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runJob(job)
	writeJSON(w, http.StatusAccepted, s.statusFor(job))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobStatus `json:"jobs"`
	}{Jobs: out})
}

// jobFor resolves the {id} path parameter (nil after writing a 404).
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, s.statusFor(j))
	}
}

// handleArtifact streams the finished job's artifact bytes — exactly the
// bytes the executor assembled, so clients can compare them byte-for-byte
// with CLI-produced artifacts.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state, art, ct := j.stateV, j.artifact, j.contentType
	s.mu.Unlock()
	if state != StateDone {
		writeError(w, http.StatusConflict, "job %s is %s; artifact available once done", j.ID, state)
		return
	}
	w.Header().Set("Content-Type", ct)
	w.Write(art)
}

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state, v := j.stateV, j.verdict
	s.mu.Unlock()
	switch {
	case state != StateDone:
		writeError(w, http.StatusConflict, "job %s is %s; verdict available once done", j.ID, state)
	case v == nil:
		writeError(w, http.StatusNotFound, "job %s has no verdict (not a sweep, or no baseline configured)", j.ID)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(v)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	if s.isDraining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": state})
}

// reportRow converts a job snapshot for the dashboard.
func reportRow(st jobStatus) report.JobRow {
	return report.JobRow{
		ID: st.ID, Type: st.Type, Name: st.Name, State: string(st.State),
		Completed: int(st.Progress.Completed), Failed: int(st.Progress.Failed),
		Total: st.Progress.Total, Degraded: st.Degraded,
		CacheHits: st.Cache.Hits, CacheMisses: st.Cache.Misses,
		Error: st.Error,
	}
}

func (s *Server) handleDashIndex(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rows := make([]report.JobRow, 0, len(s.order))
	for _, id := range s.order {
		rows = append(rows, reportRow(s.statusLocked(s.jobs[id])))
	}
	s.mu.Unlock()
	m := s.Metrics()
	d := report.IndexData{
		Jobs: rows,
		Metrics: report.MetricsView{
			HitRate: m.CacheHitRate, Hits: m.Cache.Hits, Misses: m.Cache.Misses,
			FlightHits: m.Cache.FlightHits, Evictions: m.Cache.Evictions,
			Corrupt: m.Cache.Corrupt, Entries: m.Cache.Entries, Bytes: m.Cache.Bytes,
			QueueDepth: int(m.QueueDepth), WorkersBusy: int(m.WorkersBusy),
			WorkersTotal: m.WorkersTotal,
		},
		Draining:  m.Draining,
		HasTrends: s.opts.HistoryDir != "",
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	report.RenderIndex(w, d)
}

func (s *Server) handleDashJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	st := s.statusFor(j)
	page := report.JobPage{Job: reportRow(st), Cell: r.URL.Query().Get("cell")}
	s.mu.Lock()
	art, verdict := j.artifact, j.verdict
	s.mu.Unlock()
	if st.State == StateDone && art != nil {
		switch st.Type {
		case TypeSweep:
			if b, err := runner.ReadBenchJSON(bytes.NewReader(art)); err == nil {
				page.Bench = b
			}
			if verdict != nil {
				var v runner.DiffVerdict
				if json.Unmarshal(verdict, &v) == nil {
					page.Verdict = &v
				}
			}
		case TypeLeakscan:
			if rep, err := leakage.ReadJSON(bytes.NewReader(art)); err == nil {
				page.Leakage = rep
			}
		case TypeConform:
			if rep, err := conform.ReadReportJSON(bytes.NewReader(art)); err == nil {
				page.Conform = rep
			}
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	report.RenderJob(w, page)
}

func (s *Server) handleDashTrends(w http.ResponseWriter, r *http.Request) {
	if s.opts.HistoryDir == "" {
		writeError(w, http.StatusNotFound, "no history directory configured")
		return
	}
	hist, err := report.LoadHistory(s.opts.HistoryDir)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading history: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	report.RenderTrends(w, hist)
}
