package serve

// Job requests, validation, lifecycle state, and the three job executors
// (sweep, leakscan, conform). Every executor routes its cells through the
// server's memoized campaign Exec hook, so all three job types share the
// content-addressed cache and the global compute-slot pool.
//
// The sweep executor replicates cmd/benchtable's artifact assembly exactly
// — same matrix order, same campaign cells under the same kernel, same
// bench-JSON writer, no host block — which is what makes an HTTP-fetched
// sweep artifact byte-identical to `benchtable -benchjson -benchhost=false`
// over the same matrix.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"invisispec/internal/campaign"
	"invisispec/internal/config"
	"invisispec/internal/conform"
	"invisispec/internal/engine"
	"invisispec/internal/leakage"
	"invisispec/internal/runner"
	"invisispec/internal/workload"
)

// Job types accepted by POST /api/v1/jobs.
const (
	TypeSweep    = "sweep"
	TypeLeakscan = "leakscan"
	TypeConform  = "conform"
)

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle: pending -> running -> done | failed | interrupted.
const (
	StatePending JobState = "pending"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	// StateInterrupted marks a job whose cells were refused by a drain: the
	// completed cells are journaled and cached, the rest re-run (mostly from
	// cache) on resubmission.
	StateInterrupted JobState = "interrupted"
)

// JobRequest is the POST /api/v1/jobs body. Type selects the job family;
// the other fields parameterize it (zero values take documented defaults).
type JobRequest struct {
	// Type is "sweep", "leakscan", or "conform".
	Type string `json:"type"`
	// Name labels the artifact (default: the type). For sweep jobs it is
	// embedded in the bench JSON, so byte-identity with a benchtable run
	// requires matching -benchname.
	Name string `json:"name,omitempty"`

	// Sweep: the experiment matrix. Workloads defaults to the full SPEC
	// (or PARSEC) suite, Defenses to every registered scheme, Consistency
	// to [TSO, RC], Seeds to the fault-free single seed, Warmup/Measure to
	// the smoke budget (5000/20000), Kernel to "fast".
	Workloads   []string `json:"workloads,omitempty"`
	Parsec      bool     `json:"parsec,omitempty"`
	Defenses    []string `json:"defenses,omitempty"`
	Consistency []string `json:"consistency,omitempty"`
	Seeds       []int64  `json:"seeds,omitempty"`
	Warmup      uint64   `json:"warmup,omitempty"`
	Measure     uint64   `json:"measure,omitempty"`
	Kernel      string   `json:"kernel,omitempty"`

	// Leakscan: Corpus is "smoke" (default) or "fuzz"; Seed/N parameterize
	// the fuzz corpus; Trials is per-cell trial count (default 3).
	Corpus string `json:"corpus,omitempty"`
	Trials int    `json:"trials,omitempty"`

	// Seed/N are shared by leakscan fuzz corpora and conform campaigns
	// (conform: N generated programs from Seed, default 8).
	Seed int64 `json:"seed,omitempty"`
	N    int   `json:"n,omitempty"`
}

// normalize validates the request and fills defaults in place.
func (r *JobRequest) normalize() error {
	switch r.Type {
	case TypeSweep:
		if len(r.Workloads) == 0 {
			r.Workloads = workload.SuiteNames(r.Parsec)
		}
		// Validate names at submission, not at cell time: a typo'd workload
		// fails the POST with the sorted registry listing, instead of
		// surfacing mid-campaign as degraded cells.
		for _, name := range r.Workloads {
			if _, err := workload.Lookup(name); err != nil {
				return err
			}
		}
		if r.Warmup == 0 {
			r.Warmup = 5000
		}
		if r.Measure == 0 {
			r.Measure = 20000
		}
		if r.Kernel == "" {
			r.Kernel = engine.KernelFast.String()
		}
		if _, err := engine.ParseKernel(r.Kernel); err != nil {
			return err
		}
		if _, err := config.ParseConsistencies(r.Consistency); err != nil {
			return err
		}
	case TypeLeakscan:
		if r.Corpus == "" {
			r.Corpus = "smoke"
		}
		if r.Corpus != "smoke" && r.Corpus != "fuzz" {
			return fmt.Errorf("serve: unknown corpus %q (want smoke or fuzz)", r.Corpus)
		}
		if r.Trials <= 0 {
			r.Trials = 3
		}
		if r.Seed == 0 {
			r.Seed = 1
		}
		if r.N <= 0 {
			r.N = 12
		}
	case TypeConform:
		if r.N <= 0 {
			r.N = 8
		}
	case "":
		return fmt.Errorf("serve: job request missing \"type\" (want sweep, leakscan, or conform)")
	default:
		return fmt.Errorf("serve: unknown job type %q (want sweep, leakscan, or conform)", r.Type)
	}
	if r.Name == "" {
		r.Name = r.Type
	}
	if _, err := parseDefenseList(r.Defenses); err != nil {
		return err
	}
	return nil
}

// parseDefenseList resolves defense names; empty means nil (callers treat
// nil as "every registered scheme").
func parseDefenseList(names []string) ([]config.Defense, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]config.Defense, len(names))
	for i, n := range names {
		d, err := config.ParseDefense(n)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// Job is one submitted job's full state. Immutable fields are set at
// submission; mutable ones are guarded by the server mutex (stateV, error,
// artifact) or are atomics (progress and cache counters).
type Job struct {
	ID      string
	Req     JobRequest
	Created time.Time

	// Guarded by Server.mu.
	stateV      JobState
	started     time.Time
	finished    time.Time
	errText     string
	artifact    []byte
	verdict     []byte
	degraded    int
	totalCells  int
	contentType string

	// Atomics: updated from worker goroutines, read by status handlers.
	completed atomic.Int64
	failed    atomic.Int64
	cacheHits atomic.Int64
	// cacheMisses counts cells this job actually computed (or led the
	// singleflight for). A fully cached resubmission reports zero — the
	// observable the CI cache gate asserts on.
	cacheMisses atomic.Int64
	cancelled   atomic.Int64

	srv *Server
}

func (j *Job) state() JobState {
	j.srv.mu.Lock()
	defer j.srv.mu.Unlock()
	return j.stateV
}

// cancelledOrFailed tallies a cell the executor could not complete.
func (j *Job) cancelledOrFailed(err error) {
	if errors.Is(err, context.Canceled) {
		j.cancelled.Add(1)
	}
}

// errInterrupted marks a job cut short by a drain.
var errInterrupted = errors.New("serve: job interrupted by shutdown")

// runJob drives one job to a terminal state. It runs on its own goroutine;
// the drain path waits for it through the server WaitGroup.
func (s *Server) runJob(job *Job) {
	defer s.wg.Done()
	s.mu.Lock()
	job.stateV = StateRunning
	job.started = time.Now()
	s.mu.Unlock()
	s.logLine("job", map[string]any{"job": job.ID, "type": job.Req.Type, "state": string(StateRunning)})

	art, verdict, err := s.execute(context.Background(), job)

	s.mu.Lock()
	job.finished = time.Now()
	switch {
	case errors.Is(err, errInterrupted):
		job.stateV = StateInterrupted
		job.errText = err.Error()
	case err != nil:
		job.stateV = StateFailed
		job.errText = err.Error()
	default:
		job.stateV = StateDone
		job.artifact = art
		job.verdict = verdict
		job.contentType = "application/json"
	}
	state, errText := job.stateV, job.errText
	s.mu.Unlock()
	fields := map[string]any{
		"job": job.ID, "type": job.Req.Type, "state": string(state),
		"cache_hits": job.cacheHits.Load(), "cache_misses": job.cacheMisses.Load(),
	}
	if errText != "" {
		fields["error"] = errText
	}
	s.logLine("job", fields)
}

// execute dispatches to the job family's executor.
func (s *Server) execute(ctx context.Context, job *Job) (art, verdict []byte, err error) {
	switch job.Req.Type {
	case TypeSweep:
		return s.runSweep(ctx, job)
	case TypeLeakscan:
		art, err = s.runLeakscan(ctx, job)
	case TypeConform:
		art, err = s.runConform(ctx, job)
	default:
		err = fmt.Errorf("serve: unknown job type %q", job.Req.Type)
	}
	return art, nil, err
}

// interruption inspects campaign outcomes for drain-refused cells.
func interruption(outcomes []campaign.Outcome) error {
	for _, o := range outcomes {
		if o.Class == campaign.ClassCancelled {
			return errInterrupted
		}
	}
	return nil
}

// runSweep executes a bench matrix and assembles the bench-JSON artifact,
// byte-identically to cmd/benchtable's -benchjson path (same matrix order,
// same kernel, no host block).
func (s *Server) runSweep(ctx context.Context, job *Job) (art, verdict []byte, err error) {
	req := job.Req
	defs, _ := parseDefenseList(req.Defenses)
	if defs == nil {
		defs = config.AllDefenses()
	}
	cms, err := config.ParseConsistencies(req.Consistency)
	if err != nil {
		return nil, nil, err
	}
	kernel, err := engine.ParseKernel(req.Kernel)
	if err != nil {
		return nil, nil, err
	}
	jobs := runner.Matrix(req.Workloads, req.Parsec, cms, defs, req.Seeds, req.Warmup, req.Measure)
	cells := campaign.JobCells(jobs, kernel, 0)
	s.setTotal(job, len(cells))
	outcomes, err := campaign.Run(ctx, "simserver-"+job.ID, cells, s.campaignOpts(job))
	if err != nil {
		return nil, nil, err
	}
	if err := interruption(outcomes); err != nil {
		return nil, nil, err
	}
	results, err := campaign.JobResults(jobs, outcomes)
	if err != nil {
		return nil, nil, err
	}
	degraded := campaign.Degraded(outcomes, nil)
	b := runner.NewBench(req.Name, req.Warmup, req.Measure, results)
	b.Degraded = degraded
	var buf bytes.Buffer
	if err := runner.WriteBenchJSON(&buf, b); err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	job.degraded = len(degraded)
	s.mu.Unlock()
	verdict = s.sweepVerdict(b)
	return buf.Bytes(), verdict, nil
}

// sweepVerdict gates a finished sweep against the configured baseline and
// returns the benchdiff-verdict/v1 document (nil without a baseline or when
// the baseline is unreadable — the verdict is advisory, never fatal).
func (s *Server) sweepVerdict(cand *runner.Bench) []byte {
	if s.opts.Baseline == "" {
		return nil
	}
	f, err := os.Open(s.opts.Baseline)
	if err != nil {
		s.logLine("verdict", map[string]any{"error": err.Error()})
		return nil
	}
	defer f.Close()
	base, err := runner.ReadBenchJSON(f)
	if err != nil {
		s.logLine("verdict", map[string]any{"error": err.Error()})
		return nil
	}
	v := runner.CompareBench(base, cand, 0.10, 0.02)
	var buf bytes.Buffer
	enc := jsonEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		return nil
	}
	return buf.Bytes()
}

// runLeakscan executes a leakage scan and returns the leakage-report/v1
// artifact (deterministic: the server never attaches the host block).
func (s *Server) runLeakscan(ctx context.Context, job *Job) ([]byte, error) {
	req := job.Req
	defs, _ := parseDefenseList(req.Defenses)
	var specs []leakage.AttackSpec
	if req.Corpus == "fuzz" {
		specs = leakage.Corpus(req.Seed, req.N)
	} else {
		specs = leakage.SmokeCorpus()
	}
	nDefs := len(defs)
	if nDefs == 0 {
		nDefs = len(config.AllDefenses())
	}
	s.setTotal(job, len(specs)*nDefs*req.Trials)
	rep, err := leakage.Scan(ctx, specs, leakage.ScanOptions{
		Defenses: defs,
		Trials:   req.Trials,
		Jobs:     s.opts.workers(),
		Timeout:  s.opts.CellTimeout,
		Name:     req.Name,
		Campaign: s.campaignOpts(job),
	})
	if err != nil {
		return nil, err
	}
	if job.cancelled.Load() > 0 {
		return nil, errInterrupted
	}
	if req.Corpus == "fuzz" {
		rep.Seed, rep.Count = req.Seed, req.N
	}
	var buf bytes.Buffer
	if err := leakage.WriteJSON(&buf, rep); err != nil {
		return nil, err
	}
	s.mu.Lock()
	job.degraded = len(rep.Degraded)
	s.mu.Unlock()
	return buf.Bytes(), nil
}

// runConform executes a conformance fuzz campaign and returns the
// conform-report/v1 artifact (its host block is nondeterministic by
// design, like cmd/conformfuzz's).
func (s *Server) runConform(ctx context.Context, job *Job) ([]byte, error) {
	req := job.Req
	defs, _ := parseDefenseList(req.Defenses)
	s.setTotal(job, req.N)
	rep, err := conform.Campaign(ctx, conform.Options{
		Seed:     uint64(req.Seed),
		N:        req.N,
		Jobs:     s.opts.workers(),
		Defenses: defs,
		Timeout:  s.opts.CellTimeout,
		Campaign: s.campaignOpts(job),
	})
	if err != nil {
		return nil, err
	}
	if job.cancelled.Load() > 0 {
		return nil, errInterrupted
	}
	var buf bytes.Buffer
	if err := conform.WriteReportJSON(&buf, rep); err != nil {
		return nil, err
	}
	s.mu.Lock()
	job.degraded = len(rep.Degraded)
	s.mu.Unlock()
	return buf.Bytes(), nil
}

func (s *Server) setTotal(job *Job, n int) {
	s.mu.Lock()
	job.totalCells = n
	s.mu.Unlock()
}

// journalPath is the per-job campaign checkpoint file.
func (s *Server) journalPath(jobID string) string {
	return filepath.Join(s.opts.JournalDir, jobID+".jsonl")
}
